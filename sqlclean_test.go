package sqlclean_test

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"sqlclean"
)

func table1Log() sqlclean.Log {
	base := time.Date(2026, 1, 2, 10, 0, 0, 0, time.UTC)
	mk := func(off time.Duration, stmt string) sqlclean.Entry {
		return sqlclean.Entry{Time: base.Add(off), User: "192.0.2.1", Statement: stmt}
	}
	return sqlclean.Log{
		mk(0, "SELECT E.Id FROM Employees E WHERE E.department = 'sales'"),
		mk(time.Second, "SELECT E.name, E.surname FROM Employees E WHERE E.id = 12"),
		mk(2*time.Second, "SELECT E.name, E.surname FROM Employees E WHERE E.id = 15"),
		mk(3*time.Second, "SELECT E.name, E.surname FROM Employees E WHERE E.id = 16"),
	}
}

func TestCleanPublicAPI(t *testing.T) {
	res, err := sqlclean.Clean(table1Log(), sqlclean.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clean) != 2 {
		t.Fatalf("clean: %+v", res.Clean)
	}
	kinds := map[sqlclean.Kind]bool{}
	for _, in := range res.Instances {
		kinds[in.Kind] = true
	}
	if !kinds[sqlclean.KindCTH] || !kinds[sqlclean.KindDWStifle] {
		t.Errorf("kinds: %v", kinds)
	}
}

func TestAnalyzeDoesNotRewrite(t *testing.T) {
	res, err := sqlclean.Analyze(table1Log(), sqlclean.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clean) != 4 {
		t.Errorf("analyze must not rewrite: %d entries", len(res.Clean))
	}
	if len(res.Instances) == 0 {
		t.Error("analyze must still detect")
	}
}

func TestTSVRoundTripThroughPublicAPI(t *testing.T) {
	var buf bytes.Buffer
	if err := sqlclean.WriteLogTSV(&buf, table1Log()); err != nil {
		t.Fatal(err)
	}
	back, err := sqlclean.ReadLogTSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 4 || back[1].Statement != table1Log()[1].Statement {
		t.Errorf("round trip: %+v", back)
	}
}

func TestWorkloadThroughPublicAPI(t *testing.T) {
	cfg := sqlclean.DefaultWorkloadConfig().Scale(0.1)
	log, truth := sqlclean.GenerateWorkload(cfg)
	if len(log) == 0 || len(truth.Labels) != len(log) {
		t.Fatalf("log %d, labels %d", len(log), len(truth.Labels))
	}
	res, err := sqlclean.Clean(log, sqlclean.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clean) >= len(log) {
		t.Error("cleaning must shrink a bot-heavy log")
	}
}

func TestCatalogConstruction(t *testing.T) {
	cat := sqlclean.NewCatalog()
	cat.AddTable("t", sqlclean.Column{Name: "id", Type: "int", Key: true})
	if !cat.IsKey("t", "id") {
		t.Error("custom catalog key lost")
	}
	sky := sqlclean.SkyServerCatalog()
	if !sky.IsKey("photoprimary", "objid") {
		t.Error("SkyServer catalog incomplete")
	}
}

func TestOverlapDistancePublicAPI(t *testing.T) {
	res, err := sqlclean.Analyze(table1Log(), sqlclean.Config{})
	if err != nil {
		t.Fatal(err)
	}
	var infos []*sqlclean.QueryInfo
	for _, pe := range res.Parsed {
		if pe.Info != nil {
			infos = append(infos, pe.Info)
		}
	}
	if len(infos) < 3 {
		t.Fatalf("infos: %d", len(infos))
	}
	// Queries 2 and 3 (ids 12 vs 15) access disjoint points: distance 1.
	if d := sqlclean.OverlapDistance(infos[1], infos[2]); d != 1 {
		t.Errorf("distance: %v", d)
	}
	if d := sqlclean.OverlapDistance(infos[1], infos[1]); d != 0 {
		t.Errorf("self distance: %v", d)
	}
}

func TestUnrestrictedDedup(t *testing.T) {
	base := time.Date(2026, 1, 2, 10, 0, 0, 0, time.UTC)
	log := sqlclean.Log{
		{Time: base, User: "u", Statement: "SELECT a FROM t"},
		{Time: base.Add(time.Hour), User: "u", Statement: "SELECT a FROM t"},
	}
	res, err := sqlclean.Clean(log, sqlclean.Config{DuplicateThreshold: sqlclean.UnrestrictedDedup})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PreClean) != 1 {
		t.Errorf("unrestricted dedup kept %d", len(res.PreClean))
	}
}

// customRule demonstrates (and pins down) the public extension surface: a
// Rule implemented outside the internal packages.
type customRule struct{}

func (customRule) Kind() sqlclean.Kind { return sqlclean.Kind("OrderByEverything") }

func (customRule) Detect(pl sqlclean.ParsedLog, sess sqlclean.Session) []sqlclean.Instance {
	var out []sqlclean.Instance
	for _, idx := range sess.Indices {
		e := pl[idx]
		if e.Info == nil {
			continue
		}
		if len(e.Info.Stmt.OrderBy) > 0 && e.Info.Stmt.Where == nil {
			skel := e.Info.SkeletonText()
			out = append(out, sqlclean.Instance{
				Kind: "OrderByEverything", Indices: []int{idx}, User: sess.User,
				Identity: skel, First: skel, Second: skel,
			})
		}
	}
	return out
}

func TestCustomRuleViaPublicAPI(t *testing.T) {
	base := time.Date(2026, 1, 2, 10, 0, 0, 0, time.UTC)
	log := sqlclean.Log{
		{Time: base, User: "u", Statement: "SELECT name FROM Employees ORDER BY name"},
	}
	res, err := sqlclean.Clean(log, sqlclean.Config{ExtraRules: []sqlclean.Rule{customRule{}}})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, in := range res.Instances {
		if in.Kind == sqlclean.Kind("OrderByEverything") {
			found = true
		}
	}
	if !found {
		t.Error("custom rule did not fire")
	}
	if !strings.Contains(res.Report.String(), "OrderByEverything") {
		t.Error("custom kind missing from the report")
	}
}

func TestStreamFacade(t *testing.T) {
	log, _ := sqlclean.GenerateWorkload(sqlclean.DefaultWorkloadConfig().Scale(0.1))
	log.SortStable()
	out, st, err := sqlclean.CleanStream(log, sqlclean.StreamConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) == 0 || st.In != len(log) {
		t.Fatalf("stream: %d out, %+v", len(out), st)
	}
	p := sqlclean.NewStream(sqlclean.StreamConfig{})
	if _, err := p.Add(log[0]); err != nil {
		t.Fatal(err)
	}
	p.Close()
}

func TestScanLogTSVFacade(t *testing.T) {
	var buf bytes.Buffer
	if err := sqlclean.WriteLogTSV(&buf, table1Log()); err != nil {
		t.Fatal(err)
	}
	n := 0
	if err := sqlclean.ScanLogTSV(&buf, func(e sqlclean.Entry) error {
		n++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("scanned %d", n)
	}
}

func TestRetailFacade(t *testing.T) {
	cfg := sqlclean.DefaultRetailConfig()
	cfg.SalesPerRegister = 5
	log, truth := sqlclean.GenerateRetailWorkload(cfg)
	if len(log) == 0 || len(truth.Labels) != len(log) {
		t.Fatal("retail generation broken")
	}
	res, err := sqlclean.Analyze(log, sqlclean.Config{Catalog: sqlclean.RetailCatalog()})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sequences) == 0 {
		t.Error("no sequence patterns on the retail log")
	}
}

func TestExtraRulesFacade(t *testing.T) {
	cat := sqlclean.SkyServerCatalog()
	base := time.Date(2026, 1, 2, 10, 0, 0, 0, time.UTC)
	log := sqlclean.Log{
		{Time: base, User: "u", Statement: "SELECT * FROM specobj WHERE specobjid = 1"},
		{Time: base.Add(time.Minute), User: "u", Statement: "SELECT name FROM dbobjects WHERE name LIKE '%gal%'"},
	}
	res, err := sqlclean.Clean(log, sqlclean.Config{
		Catalog:      cat,
		ExtraRules:   sqlclean.ExtraAntipatternRules(cat),
		ExtraSolvers: sqlclean.ExtraAntipatternSolvers(cat),
	})
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[sqlclean.Kind]bool{}
	for _, in := range res.Instances {
		kinds[in.Kind] = true
	}
	if !kinds[sqlclean.KindImplicitColumns] || !kinds[sqlclean.KindLeadingWildcard] {
		t.Errorf("kinds: %v", kinds)
	}
	// The star was expanded.
	if !strings.Contains(res.Clean[0].Statement, "specobjid, bestobjid") {
		t.Errorf("clean: %q", res.Clean[0].Statement)
	}
}

func TestResultJSONFacade(t *testing.T) {
	res, err := sqlclean.Clean(table1Log(), sqlclean.Config{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sqlclean.WriteResultJSON(&buf, res, 0); err != nil {
		t.Fatal(err)
	}
	doc, err := sqlclean.ReadResultJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Report.SizeOriginal != 4 || len(doc.Instances) == 0 {
		t.Errorf("doc: %+v", doc.Report)
	}
}

func TestTrafficFacade(t *testing.T) {
	log, _ := sqlclean.GenerateWorkload(sqlclean.DefaultWorkloadConfig().Scale(0.1))
	log.SortStable()
	rep := sqlclean.ComputeTraffic(log, sqlclean.TrafficOptions{})
	if rep.Entries != len(log) || rep.Users == 0 {
		t.Errorf("report: %+v", rep)
	}
}

func TestRecommenderFacade(t *testing.T) {
	res, err := sqlclean.Analyze(table1Log(), sqlclean.Config{})
	if err != nil {
		t.Fatal(err)
	}
	m := sqlclean.TrainRecommender(res)
	if m.Observations() == 0 {
		t.Fatal("no bigrams")
	}
	recs := m.Recommend(res.Parsed[0].Info.Fingerprint, 3)
	if len(recs) == 0 {
		t.Error("no recommendations")
	}
}

func TestSWSModeFacadeConstants(t *testing.T) {
	log, _ := sqlclean.GenerateWorkload(sqlclean.DefaultWorkloadConfig().Scale(0.2))
	keep, err := sqlclean.Clean(log, sqlclean.Config{SWSMode: sqlclean.SWSKeep})
	if err != nil {
		t.Fatal(err)
	}
	excl, err := sqlclean.Clean(log, sqlclean.Config{SWSMode: sqlclean.SWSExclude})
	if err != nil {
		t.Fatal(err)
	}
	if len(excl.Clean) >= len(keep.Clean) {
		t.Error("SWSExclude did not shrink the clean log")
	}
}

func TestReadSkyServerCSVFacade(t *testing.T) {
	csv := "theTime,clientIP,statement\n2003-06-01 00:00:00,10.0.0.1,SELECT 1\n"
	log, err := sqlclean.ReadSkyServerCSV(strings.NewReader(csv))
	if err != nil || len(log) != 1 {
		t.Fatalf("csv: %v %v", log, err)
	}
}
