package sqlclean_test

import (
	"fmt"
	"time"

	"sqlclean"
)

// ExampleClean replays the paper's running example (Table 1): the DW-Stifle
// follow-up queries are merged into one IN query (Table 3).
func ExampleClean() {
	base := time.Date(2026, 1, 2, 10, 0, 0, 0, time.UTC)
	queryLog := sqlclean.Log{
		{Time: base, User: "u", Statement: "SELECT E.Id FROM Employees E WHERE E.department = 'sales'"},
		{Time: base.Add(1 * time.Second), User: "u", Statement: "SELECT E.name, E.surname FROM Employees E WHERE E.id = 12"},
		{Time: base.Add(2 * time.Second), User: "u", Statement: "SELECT E.name, E.surname FROM Employees E WHERE E.id = 15"},
		{Time: base.Add(3 * time.Second), User: "u", Statement: "SELECT E.name, E.surname FROM Employees E WHERE E.id = 16"},
	}
	res, err := sqlclean.Clean(queryLog, sqlclean.Config{})
	if err != nil {
		panic(err)
	}
	for _, e := range res.Clean {
		fmt.Println(e.Statement)
	}
	// Output:
	// SELECT E.Id FROM Employees E WHERE E.department = 'sales'
	// SELECT E.id, E.name, E.surname FROM Employees AS E WHERE E.id IN (12, 15, 16)
}

// ExampleAnalyze detects without rewriting: the instances report what the
// log contains.
func ExampleAnalyze() {
	base := time.Date(2026, 1, 2, 10, 0, 0, 0, time.UTC)
	queryLog := sqlclean.Log{
		{Time: base, User: "u", Statement: "SELECT name FROM Employees WHERE id = 8"},
		{Time: base.Add(time.Second), User: "u", Statement: "SELECT name FROM Employees WHERE id = 9"},
		{Time: base.Add(2 * time.Second), User: "u", Statement: "SELECT * FROM Employees WHERE phone = NULL"},
	}
	res, err := sqlclean.Analyze(queryLog, sqlclean.Config{})
	if err != nil {
		panic(err)
	}
	for _, in := range res.Instances {
		fmt.Printf("%s over %d queries (solvable: %v)\n", in.Kind, in.Len(), in.Solvable)
	}
	fmt.Println("log unchanged:", len(res.Clean) == len(queryLog))
	// Output:
	// DW-Stifle over 2 queries (solvable: true)
	// SNC over 1 queries (solvable: true)
	// log unchanged: true
}

// ExampleOverlapDistance shows the §6.9 clustering distance: identical
// regions are at distance 0, disjoint ones at 1.
func ExampleOverlapDistance() {
	base := time.Date(2026, 1, 2, 10, 0, 0, 0, time.UTC)
	queryLog := sqlclean.Log{
		{Time: base, User: "u", Statement: "SELECT a FROM t WHERE id = 5"},
		{Time: base.Add(time.Minute), User: "u", Statement: "SELECT b FROM t WHERE id = 5"},
		{Time: base.Add(2 * time.Minute), User: "u", Statement: "SELECT a FROM t WHERE id = 6"},
	}
	res, err := sqlclean.Analyze(queryLog, sqlclean.Config{})
	if err != nil {
		panic(err)
	}
	q := res.Parsed
	fmt.Println(sqlclean.OverlapDistance(q[0].Info, q[1].Info))
	fmt.Println(sqlclean.OverlapDistance(q[0].Info, q[2].Info))
	// Output:
	// 0
	// 1
}
