// Command benchjson converts `go test -bench` output on stdin into a JSON
// map keyed by benchmark name, so benchmark snapshots can be diffed across
// PRs without parsing the free-text format again. The GOMAXPROCS suffix
// (`-8`) is stripped from names; sub-benchmarks keep their slash-separated
// path.
//
// Usage:
//
//	go test -bench <regex> -benchmem -run '^$' . | go run ./cmd/benchjson
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Result is one benchmark line's measurements. Fields absent from the line
// (e.g. allocs without -benchmem) stay zero.
type Result struct {
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// benchLine matches e.g.
//
//	BenchmarkPipelineParallel/workers=4-8   42  28519481 ns/op  11863931 B/op  178062 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(.*)$`)

func main() {
	results := map[string]Result{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		ns, _ := strconv.ParseFloat(m[3], 64)
		r := Result{Iterations: iters, NsPerOp: ns}
		var lastInt int64
		for _, f := range strings.Fields(m[4]) {
			// The tail alternates value/unit; remember the last value.
			if v, err := strconv.ParseInt(f, 10, 64); err == nil {
				lastInt = v
				continue
			}
			switch f {
			case "B/op":
				r.BytesPerOp = lastInt
			case "allocs/op":
				r.AllocsPerOp = lastInt
			}
		}
		results[m[1]] = r
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
