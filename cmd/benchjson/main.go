// Command benchjson converts `go test -bench` output on stdin into a JSON
// map keyed by benchmark name, so benchmark snapshots can be diffed across
// PRs without parsing the free-text format again. The GOMAXPROCS suffix
// (`-8`) is stripped from names; sub-benchmarks keep their slash-separated
// path.
//
// Usage:
//
//	go test -bench <regex> -benchmem -run '^$' . | go run ./cmd/benchjson
//	go test -bench <regex> -benchmem -run '^$' . | go run ./cmd/benchjson -compare BENCH_pipeline.json
//
// With -compare the new results are diffed against a committed baseline
// instead of printed: one line per benchmark with the ns/op and allocs/op
// deltas, and a non-zero exit (unless -warn-only) when any benchmark
// regressed past -threshold. That is the perf-regression gate CI runs.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark line's measurements. Fields absent from the line
// (e.g. allocs without -benchmem) stay zero.
type Result struct {
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// benchLine matches e.g.
//
//	BenchmarkPipelineParallel/workers=4-8   42  28519481 ns/op  11863931 B/op  178062 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(.*)$`)

func parseBench(r io.Reader) (map[string]Result, error) {
	results := map[string]Result{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		ns, _ := strconv.ParseFloat(m[3], 64)
		res := Result{Iterations: iters, NsPerOp: ns}
		var lastInt int64
		for _, f := range strings.Fields(m[4]) {
			// The tail alternates value/unit; remember the last value.
			if v, err := strconv.ParseInt(f, 10, 64); err == nil {
				lastInt = v
				continue
			}
			switch f {
			case "B/op":
				res.BytesPerOp = lastInt
			case "allocs/op":
				res.AllocsPerOp = lastInt
			}
		}
		results[m[1]] = res
	}
	return results, sc.Err()
}

// pctDelta returns the relative change new vs old in percent; 0 when the
// old value is zero (nothing to compare against).
func pctDelta(old, new float64) float64 {
	if old == 0 {
		return 0
	}
	return 100 * (new - old) / old
}

// compare diffs new results against a baseline and writes one report line
// per benchmark. It returns the number of benchmarks whose ns/op or
// allocs/op regressed by more than threshold percent.
func compare(w io.Writer, baseline, results map[string]Result, threshold float64) int {
	names := make([]string, 0, len(results))
	for n := range results {
		names = append(names, n)
	}
	sort.Strings(names)

	regressions := 0
	for _, n := range names {
		nr := results[n]
		old, ok := baseline[n]
		if !ok {
			fmt.Fprintf(w, "NEW   %-45s %12.0f ns/op %9d allocs/op (no baseline)\n", n, nr.NsPerOp, nr.AllocsPerOp)
			continue
		}
		dns := pctDelta(old.NsPerOp, nr.NsPerOp)
		dallocs := pctDelta(float64(old.AllocsPerOp), float64(nr.AllocsPerOp))
		status := "OK   "
		if dns > threshold || dallocs > threshold {
			status = "WARN "
			regressions++
		}
		fmt.Fprintf(w, "%s %-45s ns/op %12.0f -> %12.0f (%+6.1f%%)   allocs/op %9d -> %9d (%+6.1f%%)\n",
			status, n, old.NsPerOp, nr.NsPerOp, dns, old.AllocsPerOp, nr.AllocsPerOp, dallocs)
	}
	for n := range baseline {
		if _, ok := results[n]; !ok {
			fmt.Fprintf(w, "GONE  %-45s (in baseline, not in this run)\n", n)
		}
	}
	return regressions
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}

func main() {
	comparePath := flag.String("compare", "", "baseline JSON (from a previous benchjson run) to diff against instead of emitting JSON")
	threshold := flag.Float64("threshold", 10, "regression warn threshold in percent (ns/op or allocs/op above baseline)")
	warnOnly := flag.Bool("warn-only", false, "with -compare: always exit 0, even when benchmarks regressed past the threshold")
	flag.Parse()

	results, err := parseBench(os.Stdin)
	if err != nil {
		fatal(err)
	}
	if len(results) == 0 {
		fatal(fmt.Errorf("no benchmark lines on stdin"))
	}

	if *comparePath != "" {
		data, err := os.ReadFile(*comparePath)
		if err != nil {
			fatal(err)
		}
		baseline := map[string]Result{}
		if err := json.Unmarshal(data, &baseline); err != nil {
			fatal(fmt.Errorf("parsing %s: %v", *comparePath, err))
		}
		regressions := compare(os.Stdout, baseline, results, *threshold)
		if regressions > 0 {
			fmt.Fprintf(os.Stderr, "benchjson: %d benchmark(s) regressed more than %.0f%% vs %s\n", regressions, *threshold, *comparePath)
			if !*warnOnly {
				os.Exit(1)
			}
		}
		return
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fatal(err)
	}
}
