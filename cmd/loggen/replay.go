package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"sqlclean"
)

// Replay mode turns loggen into a closed-loop traffic driver: N clients
// partition the generated workload by user (preserving each user's query
// order), rewrite event timestamps to send time (so the engine's watermark
// sees a live stream, not a years-old archive), and POST batches against a
// running sqlcleand until the duration elapses — cycling through the
// workload as often as needed. The harness measures per-request ingest
// latency, the 429 backpressure rate, and the post-load drain time, and
// reports them in the same shape as `go test -bench` output: bench-text
// lines on stdout (pipeable into benchjson, including `benchjson
// -compare`) plus an optional benchjson-format JSON file usable as a
// -compare baseline.

type replayOptions struct {
	addr     string        // host:port or URL of the sqlcleand daemon
	clients  int           // concurrent closed-loop clients
	rate     float64       // target entries/sec across all clients; 0 = unthrottled
	duration time.Duration // load duration
	batch    int           // entries per POST
	benchOut string        // write benchjson-format JSON here ("" = skip)
	seed     int64         // -seed: drives generation AND the user→client layout
}

// mix64 is the splitmix64 finalizer: FNV's low bits avalanche poorly, and a
// plain XOR with the seed would leave small seeds touching only the bits the
// modulo reads. The finalizer spreads every seed bit across the word.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

type clientStats struct {
	requests    int64
	entriesSent int64
	accepted    int64
	rejected429 int64
	errors      int64
	latencies   []time.Duration
}

func runReplay(log sqlclean.Log, o replayOptions) error {
	if o.clients <= 0 {
		o.clients = 4
	}
	if o.batch <= 0 {
		o.batch = 100
	}
	if o.duration <= 0 {
		o.duration = 10 * time.Second
	}
	base := o.addr
	if !bytes.HasPrefix([]byte(base), []byte("http")) {
		base = "http://" + base
	}

	// Partition by user: a user's entries always flow through one client,
	// so per-user order — the engine's ordering contract — is preserved.
	// The seed is mixed into the assignment so two hosts replaying with the
	// same -seed drive identical user→client layouts (and different seeds
	// exercise different ones) — cross-host reproducible load shapes.
	parts := make([]sqlclean.Log, o.clients)
	for _, e := range log {
		h := fnv.New64a()
		h.Write([]byte(e.User))
		c := int(mix64(h.Sum64()^uint64(o.seed)) % uint64(o.clients))
		parts[c] = append(parts[c], e)
	}

	// One keep-alive connection per client: the default transport caps idle
	// connections per host at 2, which forces the other clients into a TCP
	// handshake per request — at small batch sizes that dwarfs the daemon's
	// own service time and measures the harness, not the server.
	tp := http.DefaultTransport.(*http.Transport).Clone()
	tp.MaxIdleConns = 2 * o.clients
	tp.MaxIdleConnsPerHost = 2 * o.clients
	httpc := &http.Client{Timeout: 30 * time.Second, Transport: tp}
	if _, err := healthz(httpc, base); err != nil {
		return fmt.Errorf("daemon not reachable at %s: %w", base, err)
	}
	m0 := scrapeMetrics(httpc, base)

	stats := make([]clientStats, o.clients)
	deadline := time.Now().Add(o.duration)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < o.clients; c++ {
		if len(parts[c]) == 0 {
			continue
		}
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			replayClient(httpc, base, parts[c], o, deadline, &stats[c])
		}(c)
	}
	wg.Wait()
	loadElapsed := time.Since(start)

	// Drain: the daemon acknowledged entries into bounded queues; time how
	// long it takes the shard drains to apply everything.
	drainStart := time.Now()
	drainDeadline := drainStart.Add(60 * time.Second)
	for {
		h, err := healthz(httpc, base)
		if err == nil && h.QueueDepth == 0 {
			break
		}
		if time.Now().After(drainDeadline) {
			return fmt.Errorf("daemon did not drain within 60s")
		}
		time.Sleep(50 * time.Millisecond)
	}
	drain := time.Since(drainStart)
	m1 := scrapeMetrics(httpc, base)

	// Merge per-client stats.
	var total clientStats
	for _, st := range stats {
		total.requests += st.requests
		total.entriesSent += st.entriesSent
		total.accepted += st.accepted
		total.rejected429 += st.rejected429
		total.errors += st.errors
		total.latencies = append(total.latencies, st.latencies...)
	}
	if total.requests == 0 || len(total.latencies) == 0 {
		return fmt.Errorf("no requests completed against %s", base)
	}
	sort.Slice(total.latencies, func(i, j int) bool { return total.latencies[i] < total.latencies[j] })
	pct := func(p float64) time.Duration {
		i := int(p * float64(len(total.latencies)-1))
		return total.latencies[i]
	}
	rate429 := 100 * float64(total.rejected429) / float64(total.requests)
	nsPerEntry := 0.0
	if total.accepted > 0 {
		nsPerEntry = float64(loadElapsed.Nanoseconds()) / float64(total.accepted)
	}

	// benchjson's Result shape, keyed like go test -bench names.
	type result struct {
		Iterations int64   `json:"iterations"`
		NsPerOp    float64 `json:"ns_per_op"`
	}
	results := map[string]result{
		"BenchmarkReplayIngestP50":  {int64(len(total.latencies)), float64(pct(0.50).Nanoseconds())},
		"BenchmarkReplayIngestP95":  {int64(len(total.latencies)), float64(pct(0.95).Nanoseconds())},
		"BenchmarkReplayIngestP99":  {int64(len(total.latencies)), float64(pct(0.99).Nanoseconds())},
		"BenchmarkReplayDrain":      {1, float64(drain.Nanoseconds())},
		"BenchmarkReplayThroughput": {total.accepted, nsPerEntry},
		"BenchmarkReplay429Rate":    {total.requests, rate429},
	}

	// Group-commit effectiveness, from the daemon's own counters: the delta
	// of journal fsyncs over the delta of accepted entries across the run.
	// With per-request commits amortized by the journal's group commit, this
	// should sit far below 1000 fsyncs per 1000 entries even at -fsync
	// always. Skipped when the daemon runs without a journal (no fsync
	// deltas) or predates the /metrics surface.
	fsyncsPerEntry := -1.0
	if m0.ok && m1.ok {
		dAcc := m1.accepted - m0.accepted
		dFsync := m1.fsyncs - m0.fsyncs
		if dAcc > 0 && dFsync > 0 {
			fsyncsPerEntry = dFsync / dAcc
			results["BenchmarkReplayFsyncsPer1kEntries"] = result{int64(dAcc), 1000 * fsyncsPerEntry}
		}
		if dCount := m1.gcCount - m0.gcCount; dCount > 0 {
			results["BenchmarkReplayEntriesPerFsync"] = result{int64(dCount), (m1.gcSum - m0.gcSum) / dCount}
		}
	}
	names := make([]string, 0, len(results))
	for n := range results {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		r := results[n]
		fmt.Printf("%s \t%8d\t%12.0f ns/op\n", n, r.Iterations, r.NsPerOp)
	}
	if o.benchOut != "" {
		f, err := os.Create(o.benchOut)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	logger.Info("replay done",
		"seed", o.seed,
		"duration", o.duration.String(), "requests", total.requests,
		"entries_sent", total.entriesSent, "accepted", total.accepted,
		"rejected_429", total.rejected429, "rejected_429_pct", rate429,
		"errors", total.errors, "p99", pct(0.99).String(), "drain", drain.String())
	if fsyncsPerEntry >= 0 {
		logger.Info("journal group commit",
			"fsyncs", int64(m1.fsyncs-m0.fsyncs),
			"commits", int64(m1.commits-m0.commits),
			"accepted", int64(m1.accepted-m0.accepted),
			"fsyncs_per_entry", fsyncsPerEntry)
	}
	return nil
}

// metricsSample carries the journal and ingest counters scraped from the
// daemon's Prometheus /metrics page. Two samples bracketing the load give
// deltas that are immune to whatever traffic preceded the run.
type metricsSample struct {
	accepted float64 // sqlclean_ingest_accepted_total
	commits  float64 // sqlclean_journal_commits_total
	fsyncs   float64 // sqlclean_journal_fsync_ns_count
	gcSum    float64 // sqlclean_journal_group_commit_entries_sum
	gcCount  float64 // sqlclean_journal_group_commit_entries_count
	ok       bool
}

// scrapeMetrics best-effort reads the counters above; ok=false (daemon
// without the /metrics surface, or a scrape error) just suppresses the
// group-commit bench lines rather than failing the run.
func scrapeMetrics(httpc *http.Client, base string) metricsSample {
	var m metricsSample
	resp, err := httpc.Get(base + "/metrics")
	if err != nil {
		return m
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return m
	}
	want := map[string]*float64{
		"sqlclean_ingest_accepted_total":              &m.accepted,
		"sqlclean_journal_commits_total":              &m.commits,
		"sqlclean_journal_fsync_ns_count":             &m.fsyncs,
		"sqlclean_journal_group_commit_entries_sum":   &m.gcSum,
		"sqlclean_journal_group_commit_entries_count": &m.gcCount,
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || line[0] == '#' {
			continue
		}
		name, val, found := strings.Cut(line, " ")
		if !found {
			continue
		}
		if p, tracked := want[name]; tracked {
			if v, err := strconv.ParseFloat(val, 64); err == nil {
				*p = v
			}
		}
	}
	m.ok = sc.Err() == nil
	return m
}

// replayClient is one closed-loop producer: it cycles through its partition
// in order, rewriting timestamps to now, pacing to its share of the target
// rate, and backing off when the daemon sheds load with 429.
func replayClient(httpc *http.Client, base string, part sqlclean.Log, o replayOptions, deadline time.Time, st *clientStats) {
	var interval time.Duration
	if o.rate > 0 {
		perClient := o.rate / float64(o.clients)
		interval = time.Duration(float64(o.batch) / perClient * float64(time.Second))
	}
	next := time.Now()
	cursor := 0
	var buf bytes.Buffer
	batch := make(sqlclean.Log, 0, o.batch)
	for time.Now().Before(deadline) {
		if interval > 0 {
			if now := time.Now(); now.Before(next) {
				time.Sleep(next.Sub(now))
			}
			next = next.Add(interval)
			if next.Before(time.Now()) {
				next = time.Now() // shed pacing debt instead of bursting
			}
		}

		batch = batch[:0]
		now := time.Now()
		for len(batch) < o.batch {
			e := part[cursor]
			e.Time = now
			batch = append(batch, e)
			cursor++
			if cursor == len(part) {
				cursor = 0 // closed loop: wrap around the workload
			}
		}
		buf.Reset()
		if err := sqlclean.WriteLogTSV(&buf, batch); err != nil {
			st.errors++
			continue
		}

		t0 := time.Now()
		resp, err := httpc.Post(base+"/ingest?format=tsv", "text/tab-separated-values", &buf)
		if err != nil {
			st.errors++
			continue
		}
		var ir struct {
			Accepted int `json:"accepted"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&ir)
		resp.Body.Close()
		st.latencies = append(st.latencies, time.Since(t0))
		st.requests++
		st.entriesSent += int64(len(batch))
		st.accepted += int64(ir.Accepted)
		switch {
		case resp.StatusCode == http.StatusOK:
		case resp.StatusCode == http.StatusTooManyRequests:
			st.rejected429++
			backoff := 100 * time.Millisecond
			if ra := resp.Header.Get("Retry-After"); ra != "" {
				if s, err := strconv.Atoi(ra); err == nil && s > 0 {
					backoff = time.Duration(s) * time.Second
				}
			}
			if backoff > time.Second {
				backoff = time.Second
			}
			time.Sleep(backoff)
		default:
			st.errors++
		}
	}
}

type healthPayload struct {
	Status     string `json:"status"`
	QueueDepth int    `json:"queue_depth"`
}

func healthz(httpc *http.Client, base string) (healthPayload, error) {
	var h healthPayload
	resp, err := httpc.Get(base + "/healthz")
	if err != nil {
		return h, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return h, fmt.Errorf("healthz: status %d", resp.StatusCode)
	}
	err = json.NewDecoder(resp.Body).Decode(&h)
	return h, err
}
