// Command loggen generates a synthetic SkyServer-style SQL query log in the
// framework's TSV format (time, user, session, rows, statement).
//
// Usage:
//
//	loggen [-scale 1.0] [-seed 1] [-o log.tsv] [-truth truth.tsv]
package main

import (
	"flag"
	"fmt"
	"os"

	"sqlclean"
)

func main() {
	var (
		scale     = flag.Float64("scale", 1.0, "size multiplier over the ~10k-entry default composition")
		seed      = flag.Int64("seed", 1, "random seed (same seed, same log)")
		out       = flag.String("o", "", "output file (default stdout)")
		truthPath = flag.String("truth", "", "also write ground-truth labels (seq<TAB>kind<TAB>group) to this file")
		retail    = flag.Bool("retail", false, "generate the retail OLTP workload (paper Example 7) instead of the SkyServer one")
	)
	flag.Parse()

	var log sqlclean.Log
	var truth *sqlclean.Truth
	if *retail {
		cfg := sqlclean.DefaultRetailConfig()
		cfg.Seed = *seed
		cfg.SalesPerRegister = int(float64(cfg.SalesPerRegister) * *scale)
		log, truth = sqlclean.GenerateRetailWorkload(cfg)
	} else {
		cfg := sqlclean.DefaultWorkloadConfig().Scale(*scale)
		cfg.Seed = *seed
		log, truth = sqlclean.GenerateWorkload(cfg)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := sqlclean.WriteLogTSV(w, log); err != nil {
		fatal(err)
	}
	if *truthPath != "" {
		f, err := os.Create(*truthPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		for seq, l := range truth.Labels {
			fmt.Fprintf(f, "%d\t%s\t%d\n", seq, l.Kind, l.Group)
		}
	}
	fmt.Fprintf(os.Stderr, "loggen: wrote %d entries (%d users)\n", len(log), log.Users())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "loggen:", err)
	os.Exit(1)
}
