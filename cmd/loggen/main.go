// Command loggen generates a synthetic SkyServer-style SQL query log in the
// framework's TSV format (time, user, session, rows, statement), or — with
// -replay — drives the generated workload as closed-loop HTTP traffic
// against a running sqlcleand and reports ingest latency, backpressure and
// drain time in benchjson-compatible form.
//
// Usage:
//
//	loggen [-scale 1.0] [-seed 1] [-o log.tsv] [-truth truth.tsv] [-retail]
//	loggen -replay host:port [-clients 4] [-rate 2000] [-duration 10s]
//	       [-batch 100] [-bench-out replay.json] [-scale 1.0] [-seed 1]
//
// Both modes accept -log-level and -log-format for the structured stderr
// diagnostics; the TSV log and the bench-text replay lines stay on stdout.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"time"

	"sqlclean"
)

// logger carries structured stderr diagnostics; the TSV log on stdout and
// the replay bench-text lines keep their stdout contracts untouched.
var logger *slog.Logger

func main() {
	var (
		scale     = flag.Float64("scale", 1.0, "size multiplier over the ~10k-entry default composition")
		seed      = flag.Int64("seed", 1, "random seed (same seed, same log; in -replay it also pins the user-to-client layout, so two hosts with one seed drive identical load shapes)")
		out       = flag.String("o", "", "output file (default stdout)")
		truthPath = flag.String("truth", "", "also write ground-truth labels (seq<TAB>kind<TAB>group) to this file")
		retail    = flag.Bool("retail", false, "generate the retail OLTP workload (paper Example 7) instead of the SkyServer one")

		replay   = flag.String("replay", "", "replay the workload against a sqlcleand at this address instead of writing a file")
		clients  = flag.Int("clients", 4, "replay: concurrent closed-loop clients")
		rate     = flag.Float64("rate", 2000, "replay: target entries/sec across all clients (0 = unthrottled)")
		duration = flag.Duration("duration", 10*time.Second, "replay: load duration")
		batch    = flag.Int("batch", 100, "replay: entries per ingest request")
		benchOut = flag.String("bench-out", "", "replay: write benchjson-format JSON results to this file")

		logLevel  = flag.String("log-level", "info", "stderr log verbosity: debug | info | warn | error")
		logFormat = flag.String("log-format", "text", "stderr log format: text | json")
	)
	flag.Parse()
	l, lerr := sqlclean.NewLogger(os.Stderr, *logLevel, *logFormat)
	if lerr != nil {
		fatal(lerr)
	}
	logger = l.With("component", "loggen")

	var log sqlclean.Log
	var truth *sqlclean.Truth
	if *retail {
		cfg := sqlclean.DefaultRetailConfig()
		cfg.Seed = *seed
		cfg.SalesPerRegister = int(float64(cfg.SalesPerRegister) * *scale)
		log, truth = sqlclean.GenerateRetailWorkload(cfg)
	} else {
		cfg := sqlclean.DefaultWorkloadConfig().Scale(*scale)
		cfg.Seed = *seed
		log, truth = sqlclean.GenerateWorkload(cfg)
	}

	if *replay != "" {
		err := runReplay(log, replayOptions{
			addr:     *replay,
			clients:  *clients,
			rate:     *rate,
			duration: *duration,
			batch:    *batch,
			benchOut: *benchOut,
			seed:     *seed,
		})
		if err != nil {
			fatal(err)
		}
		return
	}

	// Output files are closed explicitly, not deferred: Close surfaces the
	// final flush's write errors (a full disk would otherwise truncate the
	// log silently).
	w := os.Stdout
	var f *os.File
	if *out != "" {
		var err error
		f, err = os.Create(*out)
		if err != nil {
			fatal(err)
		}
		w = f
	}
	if err := sqlclean.WriteLogTSV(w, log); err != nil {
		fatal(err)
	}
	if f != nil {
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
	if *truthPath != "" {
		tf, err := os.Create(*truthPath)
		if err != nil {
			fatal(err)
		}
		for seq, l := range truth.Labels {
			if _, err := fmt.Fprintf(tf, "%d\t%s\t%d\n", seq, l.Kind, l.Group); err != nil {
				fatal(err)
			}
		}
		if err := tf.Close(); err != nil {
			fatal(err)
		}
	}
	logger.Info("workload written", "entries", len(log), "users", log.Users())
}

func fatal(err error) {
	if logger != nil {
		logger.Error("fatal", "error", err)
	} else {
		fmt.Fprintln(os.Stderr, "loggen:", err)
	}
	os.Exit(1)
}
