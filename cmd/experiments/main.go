// Command experiments regenerates every table and figure of the paper's
// evaluation plus the beyond-paper experiments. Run with -run all or a
// comma-separated subset; see internal/experiments for the registry.
//
// Usage:
//
//	experiments -run all [-scale 1.0] [-seed 1] [-top 5]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"sqlclean/internal/experiments"
)

func main() {
	var (
		run   = flag.String("run", "all", "experiment to run (comma-separated), or 'all'")
		scale = flag.Float64("scale", 1.0, "workload size multiplier")
		seed  = flag.Int64("seed", 1, "workload random seed")
		top   = flag.Int("top", 5, "rows to print in top-k tables")
		list  = flag.Bool("list", false, "list available experiments and exit")
	)
	flag.Parse()

	if *list {
		for _, ex := range experiments.All() {
			fmt.Printf("%-10s %s\n", ex.Name, ex.Title)
		}
		return
	}
	err := experiments.Run(os.Stdout, experiments.Options{
		Names: strings.Split(*run, ","),
		Scale: *scale,
		Seed:  *seed,
		Top:   *top,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(2)
	}
}
