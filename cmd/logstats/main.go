// Command logstats prints a SkyServer-Traffic-Report-style summary of a
// query log: activity per period, statement classes, session shapes, user
// concentration and top users.
//
// Usage:
//
//	logstats [-format tsv|csv] [-period 720h] [-top 10] [log file]
//
// With no file argument the log is read from stdin.
package main

import (
	"compress/gzip"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"sqlclean"
)

func main() {
	var (
		format = flag.String("format", "tsv", "input format: tsv or csv (SkyServer SqlLog export)")
		period = flag.Duration("period", 30*24*time.Hour, "activity bucket width")
		top    = flag.Int("top", 10, "number of top users to print")
	)
	flag.Parse()

	var r io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
		if strings.HasSuffix(flag.Arg(0), ".gz") {
			zr, err := gzip.NewReader(f)
			if err != nil {
				fatal(err)
			}
			defer zr.Close()
			r = zr
		}
	}
	var log sqlclean.Log
	var err error
	switch *format {
	case "tsv":
		log, err = sqlclean.ReadLogTSV(r)
	case "csv":
		log, err = sqlclean.ReadSkyServerCSV(r)
	default:
		fatal(fmt.Errorf("unknown -format %q", *format))
	}
	if err != nil {
		fatal(err)
	}
	log.SortStable()

	rep := sqlclean.ComputeTraffic(log, sqlclean.TrafficOptions{Period: *period, TopN: *top})
	fmt.Print(rep)
	fmt.Println("\nactivity per period:")
	for _, p := range rep.ByPeriod {
		fmt.Printf("  %s  %7d queries from %4d users\n", p.Start.Format("2006-01-02"), p.Queries, p.Users)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "logstats:", err)
	os.Exit(1)
}
