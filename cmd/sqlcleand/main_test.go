package main

import (
	"testing"

	"sqlclean"
)

// TestExtraRuleSet pins what -extra-rules registers on the daemon's engine:
// both optional kinds, with the ImplicitColumns solver alongside.
func TestExtraRuleSet(t *testing.T) {
	rules, solvers := extraRuleSet()
	if len(rules) == 0 || len(solvers) == 0 {
		t.Fatalf("extraRuleSet: %d rules, %d solvers", len(rules), len(solvers))
	}
	kinds := map[string]bool{}
	for _, r := range rules {
		kinds[string(r.Kind())] = true
	}
	if !kinds[string(sqlclean.KindImplicitColumns)] || !kinds[string(sqlclean.KindLeadingWildcard)] {
		t.Fatalf("rule kinds = %v, want ImplicitColumns and LeadingWildcard", kinds)
	}
}
