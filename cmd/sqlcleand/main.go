// Command sqlcleand is the log-cleaning daemon: it accepts raw query-log
// entries over HTTP while they are being produced and keeps an incremental
// cleaning report current.
//
// Usage:
//
//	sqlcleand [-addr :8080] [-dup 1s] [-gap 5m] [-no-key-check]
//	          [-shards 0] [-queue 1024] [-max-body 32] [-clean out.tsv]
//	          [-data-dir DIR] [-fsync interval] [-fsync-interval 1s]
//	          [-snapshot-interval 5m] [-max-skew 0] [-no-clusters]
//	          [-cluster-threshold 0.9] [-cluster-max-boxes 4096]
//	          [-no-sketches] [-hll-precision 14] [-topk 128] [-sws-window 1h]
//	          [-log-level info] [-log-format text] [-slow-request 1s]
//	          [-version]
//
// Endpoints:
//
//	POST /ingest   NDJSON entries {"time","user","session","rows","statement"},
//	               or TSV lines with ?format=tsv; 429 + Retry-After when the
//	               ingest queues are full
//	GET  /report   incremental cleaning report (JSON), including the sketch
//	               block: HLL distinct-identity estimate and windowed SWS
//	               classification
//	GET  /toplist  heavy-hitter templates by the SpaceSaving sketch (?k=N)
//	GET  /clusters overlap clustering of the observed predicate boxes
//	GET  /healthz  liveness, version, queue, session and watermark state
//	GET  /statusz  human status page (?format=text for plain text)
//	GET  /debug/requests  recent and slowest request traces (?view=slow)
//	GET  /metrics  Prometheus text; /debug/pprof/ and /debug/vars too
//
// Every POST /ingest is traced end to end (admission, enqueue, journal
// group-commit, async emit) under a trace ID that is honored from or echoed
// into the X-Trace-Id header; requests slower than -slow-request log a warn
// line with per-stage timings. Logs are structured (-log-format json for
// machine-readable lines).
//
// SIGINT/SIGTERM shut down gracefully: in-flight requests finish, the queues
// drain, and every open session is flushed through detection and solving
// before the process exits.
//
// With -data-dir the daemon is crash-durable: every accepted entry is
// journaled before its request is acknowledged, periodic snapshots checkpoint
// the engine, and a restart with the same directory replays the journal tail
// so no acknowledged entry is lost even across a SIGKILL.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"sqlclean"
	"sqlclean/internal/buildinfo"
	"sqlclean/internal/journal"
	"sqlclean/internal/logmodel"
	"sqlclean/internal/obs"
	"sqlclean/internal/server"
	"sqlclean/internal/sketch"
	"sqlclean/internal/stream"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		dup        = flag.Duration("dup", time.Second, "duplicate time threshold")
		gap        = flag.Duration("gap", 5*time.Minute, "session gap: silence that closes a user's session")
		noKeyCheck = flag.Bool("no-key-check", false, "drop Definition 11's key-attribute requirement for Stifles")
		shards     = flag.Int("shards", 0, "user-hash partitions (0 = 2×GOMAXPROCS, min 8; rounded up to a power of two)")
		queue      = flag.Int("queue", 1024, "per-shard ingest queue capacity")
		maxBody    = flag.Int64("max-body", 32, "maximum request body in MiB")
		cleanOut   = flag.String("clean", "", "append cleaned entries (TSV) to this file as sessions close")
		drainWait  = flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown budget for draining queues and flushing sessions")
		dataDir    = flag.String("data-dir", "", "durability directory: journal accepted entries and checkpoint the engine there (empty = in-memory only)")
		fsyncMode  = flag.String("fsync", "interval", "journal fsync policy: always | interval | never")
		fsyncEvery = flag.Duration("fsync-interval", time.Second, "background fsync cadence for -fsync interval")
		snapEvery  = flag.Duration("snapshot-interval", 5*time.Minute, "checkpoint cadence (<0 disables periodic snapshots)")
		retain     = flag.Bool("retain", false, "compact snapshot-covered journal segments into columnar blocks instead of deleting them (requires -data-dir); serves GET /history")
		retainDir  = flag.String("retain-dir", "", "columnar block directory (empty = <data-dir>/colstore)")
		retainMax  = flag.Int64("retain-max-bytes", 0, "evict oldest retention blocks past this many bytes (0 keeps everything)")
		extraRules = flag.Bool("extra-rules", false, "also detect the optional §5.4 antipatterns (Implicit Columns, leading-wildcard LIKE)")
		maxSkew    = flag.Duration("max-skew", 0, "reject entries this far past the event-time watermark (0 = disabled)")
		noClusters = flag.Bool("no-clusters", false, "disable the GET /clusters overlap-clustering surface")
		clusterT   = flag.Float64("cluster-threshold", 0.9, "default overlap-distance threshold for GET /clusters")
		clusterMax = flag.Int("cluster-max-boxes", 4096, "distinct predicate boxes kept for clustering (further ones are counted as dropped)")
		noSketch   = flag.Bool("no-sketches", false, "disable the approximate-analytics sketches (HLL, top-k, windowed SWS)")
		hllPrec    = flag.Int("hll-precision", 0, "HLL precision p: 2^p registers for the distinct-identity estimate (0 = default 14)")
		topK       = flag.Int("topk", 0, "SpaceSaving heavy-hitter capacity for GET /toplist (0 = default 128)")
		swsWindow  = flag.Duration("sws-window", 0, "event-time window width for streaming SWS evidence (0 = default 1h)")
		logLevel   = flag.String("log-level", "info", "log verbosity: debug | info | warn | error")
		logFormat  = flag.String("log-format", "text", "log output format: text | json")
		slowReq    = flag.Duration("slow-request", time.Second, "log a warn line with stage timings for ingest requests at or above this latency (<0 disables)")
		version    = flag.Bool("version", false, "print the build stamp and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println("sqlcleand", buildinfo.String())
		return
	}

	// The server and journal tag their own component attr, so they get the
	// base logger; the daemon's own lines carry component=sqlcleand.
	baseLogger, err := obs.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		fatalPlain(err)
	}
	logger := baseLogger.With("component", "sqlcleand")
	fatal := func(err error) {
		logger.Error("fatal", "error", err)
		os.Exit(1)
	}

	var emit func(logmodel.Log)
	var cleanFile *os.File
	if *cleanOut != "" {
		f, err := os.OpenFile(*cleanOut, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fatal(err)
		}
		cleanFile = f
		// The server serializes Emit calls, so plain writes are safe.
		emit = func(l logmodel.Log) {
			if err := logmodel.WriteTSV(f, l); err != nil {
				logger.Error("write clean log failed", "path", *cleanOut, "error", err)
			}
		}
	}

	policy, err := journal.ParseFsyncPolicy(*fsyncMode)
	if err != nil {
		fatal(err)
	}

	metrics := sqlclean.NewMetrics()
	sqlclean.InstrumentParallel(metrics)
	streamCfg := stream.Config{
		DuplicateThreshold: *dup,
		SessionGap:         *gap,
		DisableKeyCheck:    *noKeyCheck,
		Sketches: sketch.Config{
			Disabled:     *noSketch,
			HLLPrecision: *hllPrec,
			TopK:         *topK,
			SWSWindow:    *swsWindow,
		},
	}
	if *extraRules {
		streamCfg.ExtraRules, streamCfg.ExtraSolvers = extraRuleSet()
	}
	srv, err := server.New(server.Config{
		Stream: stream.ShardedConfig{
			Shards:        *shards,
			MaxFutureSkew: *maxSkew,
			Config:        streamCfg,
		},
		QueueSize:        *queue,
		MaxBodyBytes:     *maxBody << 20,
		Metrics:          metrics,
		Logger:           baseLogger,
		SlowRequest:      *slowReq,
		Emit:             emit,
		ClustersDisabled: *noClusters,
		ClusterThreshold: *clusterT,
		ClusterMaxBoxes:  *clusterMax,
		DataDir:          *dataDir,
		Fsync:            policy,
		FsyncInterval:    *fsyncEvery,
		SnapshotInterval: *snapEvery,
		Retain:           *retain,
		RetainDir:        *retainDir,
		RetainMaxBytes:   *retainMax,
	})
	if err != nil {
		fatal(err)
	}
	if *dataDir != "" {
		logger.Info("durability enabled",
			"data_dir", *dataDir, "fsync", string(policy), "replayed", srv.Replayed())
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	logger.Info("listening",
		"version", buildinfo.Short(), "addr", *addr, "shards", srv.Engine().NumShards(),
		"log_level", *logLevel, "slow_request", slowReq.String())

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		fatal(err)
	case sig := <-sigc:
		logger.Info("draining", "signal", sig.String())
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Error("http shutdown failed", "error", err)
	}
	if err := srv.Close(ctx); err != nil {
		fatal(fmt.Errorf("drain: %w", err))
	}
	// Close the cleaned-log sink only after the drain: the final flush still
	// writes through it, and its Close error is the last chance to learn the
	// appended sessions didn't stick.
	if cleanFile != nil {
		if err := cleanFile.Close(); err != nil {
			fatal(fmt.Errorf("close %s: %w", *cleanOut, err))
		}
	}
	st := srv.Engine().Stats()
	logger.Info("drained",
		"in", st.In, "selects", st.Selects, "duplicates", st.Duplicates,
		"out", st.Out, "sessions", st.SessionsEmitted)
}

// extraRuleSet assembles the optional §5.4 rule set behind -extra-rules:
// Karwin's Implicit Columns and leading-wildcard LIKE, with the matching
// solvers, over the SkyServer demo catalog.
func extraRuleSet() ([]sqlclean.Rule, []sqlclean.Solver) {
	cat := sqlclean.SkyServerCatalog()
	return sqlclean.ExtraAntipatternRules(cat), sqlclean.ExtraAntipatternSolvers(cat)
}

// fatalPlain reports an error from before the logger exists.
func fatalPlain(err error) {
	fmt.Fprintln(os.Stderr, "sqlcleand:", err)
	os.Exit(1)
}
