// Command sqlcleand is the log-cleaning daemon: it accepts raw query-log
// entries over HTTP while they are being produced and keeps an incremental
// cleaning report current.
//
// Usage:
//
//	sqlcleand [-addr :8080] [-dup 1s] [-gap 5m] [-no-key-check]
//	          [-shards 0] [-queue 1024] [-max-body 32] [-clean out.tsv]
//	          [-data-dir DIR] [-fsync interval] [-fsync-interval 1s]
//	          [-snapshot-interval 5m] [-max-skew 0] [-no-clusters]
//	          [-cluster-threshold 0.9] [-cluster-max-boxes 4096] [-version]
//
// Endpoints:
//
//	POST /ingest   NDJSON entries {"time","user","session","rows","statement"},
//	               or TSV lines with ?format=tsv; 429 + Retry-After when the
//	               ingest queues are full
//	GET  /report   incremental cleaning report (JSON)
//	GET  /clusters overlap clustering of the observed predicate boxes
//	GET  /healthz  liveness, version, queue and session state
//	GET  /metrics  Prometheus text; /debug/pprof/ and /debug/vars too
//
// SIGINT/SIGTERM shut down gracefully: in-flight requests finish, the queues
// drain, and every open session is flushed through detection and solving
// before the process exits.
//
// With -data-dir the daemon is crash-durable: every accepted entry is
// journaled before its request is acknowledged, periodic snapshots checkpoint
// the engine, and a restart with the same directory replays the journal tail
// so no acknowledged entry is lost even across a SIGKILL.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"sqlclean"
	"sqlclean/internal/buildinfo"
	"sqlclean/internal/journal"
	"sqlclean/internal/logmodel"
	"sqlclean/internal/server"
	"sqlclean/internal/stream"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		dup        = flag.Duration("dup", time.Second, "duplicate time threshold")
		gap        = flag.Duration("gap", 5*time.Minute, "session gap: silence that closes a user's session")
		noKeyCheck = flag.Bool("no-key-check", false, "drop Definition 11's key-attribute requirement for Stifles")
		shards     = flag.Int("shards", 0, "user-hash partitions (0 = 2×GOMAXPROCS, min 8; rounded up to a power of two)")
		queue      = flag.Int("queue", 1024, "per-shard ingest queue capacity")
		maxBody    = flag.Int64("max-body", 32, "maximum request body in MiB")
		cleanOut   = flag.String("clean", "", "append cleaned entries (TSV) to this file as sessions close")
		drainWait  = flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown budget for draining queues and flushing sessions")
		dataDir    = flag.String("data-dir", "", "durability directory: journal accepted entries and checkpoint the engine there (empty = in-memory only)")
		fsyncMode  = flag.String("fsync", "interval", "journal fsync policy: always | interval | never")
		fsyncEvery = flag.Duration("fsync-interval", time.Second, "background fsync cadence for -fsync interval")
		snapEvery  = flag.Duration("snapshot-interval", 5*time.Minute, "checkpoint cadence (<0 disables periodic snapshots)")
		maxSkew    = flag.Duration("max-skew", 0, "reject entries this far past the event-time watermark (0 = disabled)")
		noClusters = flag.Bool("no-clusters", false, "disable the GET /clusters overlap-clustering surface")
		clusterT   = flag.Float64("cluster-threshold", 0.9, "default overlap-distance threshold for GET /clusters")
		clusterMax = flag.Int("cluster-max-boxes", 4096, "distinct predicate boxes kept for clustering (further ones are counted as dropped)")
		version    = flag.Bool("version", false, "print the build stamp and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println("sqlcleand", buildinfo.String())
		return
	}

	var emit func(logmodel.Log)
	if *cleanOut != "" {
		f, err := os.OpenFile(*cleanOut, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		// The server serializes Emit calls, so plain writes are safe.
		emit = func(l logmodel.Log) {
			if err := logmodel.WriteTSV(f, l); err != nil {
				fmt.Fprintln(os.Stderr, "sqlcleand: write clean log:", err)
			}
		}
	}

	policy, err := journal.ParseFsyncPolicy(*fsyncMode)
	if err != nil {
		fatal(err)
	}

	metrics := sqlclean.NewMetrics()
	sqlclean.InstrumentParallel(metrics)
	srv, err := server.New(server.Config{
		Stream: stream.ShardedConfig{
			Shards:        *shards,
			MaxFutureSkew: *maxSkew,
			Config: stream.Config{
				DuplicateThreshold: *dup,
				SessionGap:         *gap,
				DisableKeyCheck:    *noKeyCheck,
			},
		},
		QueueSize:        *queue,
		MaxBodyBytes:     *maxBody << 20,
		Metrics:          metrics,
		Emit:             emit,
		ClustersDisabled: *noClusters,
		ClusterThreshold: *clusterT,
		ClusterMaxBoxes:  *clusterMax,
		DataDir:          *dataDir,
		Fsync:            policy,
		FsyncInterval:    *fsyncEvery,
		SnapshotInterval: *snapEvery,
	})
	if err != nil {
		fatal(err)
	}
	if *dataDir != "" {
		fmt.Fprintf(os.Stderr, "sqlcleand: durable in %s (fsync=%s), replayed %d journal entries\n",
			*dataDir, policy, srv.Replayed())
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "sqlcleand %s listening on %s (%d shards)\n",
		buildinfo.Short(), *addr, srv.Engine().NumShards())

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		fatal(err)
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "sqlcleand: %v, draining\n", sig)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "sqlcleand: http shutdown:", err)
	}
	if err := srv.Close(ctx); err != nil {
		fatal(fmt.Errorf("drain: %w", err))
	}
	st := srv.Engine().Stats()
	fmt.Fprintf(os.Stderr, "sqlcleand: done: %d in, %d selects, %d duplicates, %d out, %d sessions\n",
		st.In, st.Selects, st.Duplicates, st.Out, st.SessionsEmitted)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sqlcleand:", err)
	os.Exit(1)
}
