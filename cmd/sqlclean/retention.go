// Offline columnar-retention plumbing: -compact turns a daemon's journal
// directory into compressed columnar blocks without running the daemon, and
// -scan reads blocks back out as TSV. Together they make the retention store
// a standalone archive format, not something only sqlcleand can touch.
package main

import (
	"fmt"
	"os"
	"time"

	"sqlclean"
	"sqlclean/internal/colstore"
	"sqlclean/internal/logmodel"
	"sqlclean/internal/parsedlog"
)

// runCompact compacts every WAL segment in walDir (the active one included —
// offline, nothing is appending) into columnar blocks under retainDir.
func runCompact(walDir, retainDir string, maxBytes int64) {
	if walDir == "" || retainDir == "" {
		fatal(fmt.Errorf("-compact needs -data-dir (journal) and -retain-dir (blocks)"))
	}
	st, err := colstore.Open(colstore.Options{Dir: retainDir, MaxBytes: maxBytes})
	if err != nil {
		fatal(err)
	}
	// Offline compaction has no live engine to ask for verdicts: stamp each
	// template's engine fingerprint (so later daemon queries still match it)
	// and leave the verdict list empty.
	parser := parsedlog.NewParser()
	classify := func(stmt string) colstore.Classification {
		pe := parser.ParseEntry(logmodel.Entry{Statement: stmt})
		if pe.Info == nil {
			return colstore.Classification{}
		}
		return colstore.Classification{EngineFP: pe.Info.Fingerprint}
	}
	entries, err := st.CompactWALDir(walDir, true, classify)
	if err != nil {
		fatal(err)
	}
	blocks, bytes := st.Stats()
	logger.Info("compacted journal into columnar blocks",
		"wal_dir", walDir, "retain_dir", retainDir,
		"entries", entries, "blocks", blocks, "bytes", bytes)
	fmt.Printf("compacted %d entries into %d blocks (%d bytes) under %s\n",
		entries, blocks, bytes, retainDir)
}

// runScan streams block entries matching the time/template filter back to
// stdout as TSV, bit-identical to the journal frames they were compacted from.
func runScan(retainDir, from, to string, template uint64) {
	if retainDir == "" {
		fatal(fmt.Errorf("-scan needs -retain-dir"))
	}
	opts := colstore.ScanOptions{}
	var err error
	if opts.From, err = parseScanTime(from); err != nil {
		fatal(err)
	}
	if opts.To, err = parseScanTime(to); err != nil {
		fatal(err)
	}
	if template != 0 {
		opts.Templates = map[uint64]bool{template: true}
	}
	n := 0
	err = colstore.NewReader(retainDir).Scan(opts, func(_ uint64, e logmodel.Entry) error {
		n++
		return logmodel.WriteTSV(os.Stdout, logmodel.Log{e})
	})
	if err != nil {
		fatal(err)
	}
	logger.Info("scanned retention blocks", "retain_dir", retainDir, "entries", n)
}

// parseScanTime accepts the same formats the daemon's ingest path does.
func parseScanTime(v string) (time.Time, error) {
	if v == "" {
		return time.Time{}, nil
	}
	for _, f := range []string{time.RFC3339Nano, logmodel.TimeFormat} {
		if t, err := time.Parse(f, v); err == nil {
			return t, nil
		}
	}
	return time.Time{}, fmt.Errorf("bad time %q (want RFC3339 or %s)", v, logmodel.TimeFormat)
}

// extraRuleSet assembles the optional §5.4 rule set behind -extra-rules:
// Karwin's Implicit Columns and leading-wildcard LIKE, with the matching
// solvers, over the SkyServer demo catalog.
func extraRuleSet() ([]sqlclean.Rule, []sqlclean.Solver) {
	cat := sqlclean.SkyServerCatalog()
	return sqlclean.ExtraAntipatternRules(cat), sqlclean.ExtraAntipatternSolvers(cat)
}
