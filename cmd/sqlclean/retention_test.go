package main

import (
	"testing"

	"sqlclean"
)

// TestExtraRuleSet pins what -extra-rules actually registers: both optional
// kinds, and a solver for every solvable one (LeadingWildcard is detect-only).
func TestExtraRuleSet(t *testing.T) {
	rules, solvers := extraRuleSet()
	kinds := map[string]bool{}
	for _, r := range rules {
		kinds[string(r.Kind())] = true
	}
	if !kinds[string(sqlclean.KindImplicitColumns)] || !kinds[string(sqlclean.KindLeadingWildcard)] {
		t.Fatalf("rule kinds = %v, want ImplicitColumns and LeadingWildcard", kinds)
	}
	solved := map[string]bool{}
	for _, s := range solvers {
		solved[string(s.Kind())] = true
	}
	if !solved[string(sqlclean.KindImplicitColumns)] {
		t.Errorf("solver kinds = %v, want ImplicitColumns", solved)
	}
	if solved[string(sqlclean.KindLeadingWildcard)] {
		t.Errorf("LeadingWildcard has a solver; the rule is documented detect-only")
	}
}

// TestParseScanTime covers both accepted formats and the error path.
func TestParseScanTime(t *testing.T) {
	if ts, err := parseScanTime("2026-01-01T00:00:00Z"); err != nil || ts.IsZero() {
		t.Errorf("RFC3339: %v %v", ts, err)
	}
	if ts, err := parseScanTime(""); err != nil || !ts.IsZero() {
		t.Errorf("empty: %v %v", ts, err)
	}
	if _, err := parseScanTime("yesterday"); err == nil {
		t.Error("bad time accepted")
	}
}
