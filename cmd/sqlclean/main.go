// Command sqlclean runs the full antipattern-cleaning pipeline over a query
// log in TSV format and reports statistics.
//
// Usage:
//
//	sqlclean [-dup 1s] [-gap 5m] [-no-key-check] [-no-users] [-workers 0]
//	         [-clean out.tsv] [-removal out.tsv] [-top 15] log.tsv
//
// With no file argument the log is read from stdin.
package main

import (
	"compress/gzip"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"sqlclean"
)

func main() {
	var (
		dup        = flag.Duration("dup", time.Second, "duplicate time threshold (0 keeps the default 1s; use -no-dedup to disable)")
		noDedup    = flag.Bool("no-dedup", false, "skip duplicate deletion")
		gap        = flag.Duration("gap", 5*time.Minute, "session gap: maximum time between queries of one pattern instance")
		noKeyCheck = flag.Bool("no-key-check", false, "drop Definition 11's key-attribute requirement for Stifles")
		noUsers    = flag.Bool("no-users", false, "ignore user/session columns (paper §6.8 minimal-input mode)")
		format     = flag.String("format", "tsv", "input format: tsv (time/user/session/rows/statement) or csv (SkyServer SqlLog export)")
		fixpoint   = flag.Bool("fixpoint", false, "re-solve until no solvable antipattern remains (§5.5)")
		cleanOut   = flag.String("clean", "", "write the cleaned log to this file")
		removalOut = flag.String("removal", "", "write the removal log (antipatterns dropped) to this file")
		jsonOut    = flag.String("json", "", "write the full analysis (report, templates, instances) as JSON to this file")
		streaming  = flag.Bool("stream", false, "bounded-memory streaming mode (TSV input only): sessions are cleaned and written as they close")
		workers    = flag.Int("workers", 0, "parallelism for the parse/detect stages: 0 = all CPUs, 1 = serial")
		top        = flag.Int("top", 15, "number of top patterns/antipatterns to print")
	)
	flag.Parse()

	var r io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
		if strings.HasSuffix(flag.Arg(0), ".gz") {
			zr, err := gzip.NewReader(f)
			if err != nil {
				fatal(err)
			}
			defer zr.Close()
			r = zr
		}
	}
	if *streaming {
		if *format != "tsv" {
			fatal(fmt.Errorf("-stream supports tsv input only"))
		}
		runStreaming(r, *dup, *gap, *noKeyCheck, *cleanOut)
		return
	}

	var log sqlclean.Log
	var err error
	switch *format {
	case "tsv":
		log, err = sqlclean.ReadLogTSV(r)
	case "csv":
		log, err = sqlclean.ReadSkyServerCSV(r)
	default:
		fatal(fmt.Errorf("unknown -format %q (want tsv or csv)", *format))
	}
	if err != nil {
		fatal(err)
	}
	if *noUsers {
		log = log.StripUsers()
	}

	cfg := sqlclean.Config{
		DuplicateThreshold: *dup,
		NoDedup:            *noDedup,
		SessionGap:         *gap,
		DisableKeyCheck:    *noKeyCheck,
		SolveToFixpoint:    *fixpoint,
		Workers:            *workers,
	}
	res, err := sqlclean.Clean(log, cfg)
	if err != nil {
		fatal(err)
	}

	fmt.Print(res.Report)
	fmt.Println()
	anti := res.AntipatternTemplates()
	fmt.Printf("Top %d patterns (★ marks templates involved in antipatterns):\n", *top)
	for i, t := range res.Templates {
		if i >= *top {
			break
		}
		mark := " "
		if anti[t.Fingerprint] {
			mark = "★"
		}
		sws := ""
		if res.SWS[t.Fingerprint] {
			sws = " [SWS]"
		}
		fmt.Printf("%2d. %s freq=%-8d users=%-5d %s%s\n", i+1, mark, t.Frequency, t.UserPopularity, truncate(t.Skeleton, 100), sws)
	}
	fmt.Println()
	for _, s := range res.Report.SolveStats {
		fmt.Printf("solved %-10s: %d instances, %d → %d queries\n", s.Kind, s.Solved, s.QueriesBefore, s.QueriesAfter)
	}

	if *cleanOut != "" {
		if err := writeLog(*cleanOut, res.Clean); err != nil {
			fatal(err)
		}
	}
	if *removalOut != "" {
		if err := writeLog(*removalOut, res.Removal); err != nil {
			fatal(err)
		}
	}
	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := sqlclean.WriteResultJSON(f, res, 0); err != nil {
			fatal(err)
		}
	}
}

func writeLog(path string, l sqlclean.Log) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return sqlclean.WriteLogTSV(f, l)
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sqlclean:", err)
	os.Exit(1)
}

// runStreaming cleans the log with the bounded-memory streaming pipeline,
// writing cleaned entries as their sessions close.
func runStreaming(r io.Reader, dup, gap time.Duration, noKeyCheck bool, cleanOut string) {
	out := os.Stdout
	if cleanOut != "" {
		f, err := os.Create(cleanOut)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		out = f
	}
	p := sqlclean.NewStream(sqlclean.StreamConfig{
		DuplicateThreshold: dup,
		SessionGap:         gap,
		DisableKeyCheck:    noKeyCheck,
	})
	emit := func(l sqlclean.Log) {
		if len(l) > 0 {
			if err := sqlclean.WriteLogTSV(out, l); err != nil {
				fatal(err)
			}
		}
	}
	err := sqlclean.ScanLogTSV(r, func(e sqlclean.Entry) error {
		emitted, err := p.Add(e)
		if err != nil {
			return err
		}
		emit(emitted)
		return nil
	})
	if err != nil {
		fatal(err)
	}
	emit(p.Close())
	st := p.Stats()
	fmt.Fprintf(os.Stderr, "stream: %d in, %d selects, %d duplicates, %d out, %d queries solved away\n",
		st.In, st.Selects, st.Duplicates, st.Out, st.Selects-st.Duplicates-st.Out)
}
