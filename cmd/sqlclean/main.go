// Command sqlclean runs the full antipattern-cleaning pipeline over a query
// log in TSV format and reports statistics.
//
// Usage:
//
//	sqlclean [-dup 1s] [-gap 5m] [-no-key-check] [-no-users] [-workers 0]
//	         [-cluster 0.9] [-clean out.tsv] [-removal out.tsv] [-top 15]
//	         [-progress] [-debug-addr :6060] [-log-level info]
//	         [-log-format text] log.tsv
//
// With no file argument the log is read from stdin. -progress renders a
// live rate/ETA line on stderr; -debug-addr serves /metrics (Prometheus
// text), /debug/pprof/ and /debug/vars while the run is in flight. All
// stderr diagnostics are structured log lines (-log-format json for
// machine-readable output); the report on stdout is untouched.
package main

import (
	"compress/gzip"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"sort"
	"strings"
	"time"

	"sqlclean"
)

func main() {
	var (
		dup        = flag.Duration("dup", time.Second, "duplicate time threshold (0 keeps the default 1s; use -no-dedup to disable)")
		noDedup    = flag.Bool("no-dedup", false, "skip duplicate deletion")
		gap        = flag.Duration("gap", 5*time.Minute, "session gap: maximum time between queries of one pattern instance")
		noKeyCheck = flag.Bool("no-key-check", false, "drop Definition 11's key-attribute requirement for Stifles")
		noUsers    = flag.Bool("no-users", false, "ignore user/session columns (paper §6.8 minimal-input mode)")
		format     = flag.String("format", "tsv", "input format: tsv (time/user/session/rows/statement) or csv (SkyServer SqlLog export)")
		fixpoint   = flag.Bool("fixpoint", false, "re-solve until no solvable antipattern remains (§5.5)")
		cleanOut   = flag.String("clean", "", "write the cleaned log to this file")
		removalOut = flag.String("removal", "", "write the removal log (antipatterns dropped) to this file")
		jsonOut    = flag.String("json", "", "write the full analysis (report, templates, instances) as JSON to this file")
		streaming  = flag.Bool("stream", false, "bounded-memory streaming mode (TSV input only): sessions are cleaned and written as they close")
		workers    = flag.Int("workers", 0, "parallelism for the parse/detect stages: 0 = all CPUs, 1 = serial")
		clusterT   = flag.Float64("cluster", 0, "overlap-distance threshold for §6.9 access-area clustering (0 disables; the paper uses 0.9)")
		top        = flag.Int("top", 15, "number of top patterns/antipatterns to print")
		progress   = flag.Bool("progress", false, "render a live progress line (rate, ETA) on stderr")
		debugAddr  = flag.String("debug-addr", "", "serve /metrics, /debug/pprof/ and /debug/vars on this address (e.g. :6060)")
		timing     = flag.Bool("timing", false, "print the per-stage timing tree after the run")
		extraRules = flag.Bool("extra-rules", false, "also detect the optional §5.4 antipatterns (Implicit Columns, leading-wildcard LIKE)")
		compact    = flag.Bool("compact", false, "offline retention: compact a daemon journal (-data-dir) into columnar blocks (-retain-dir) and exit")
		scanBlocks = flag.Bool("scan", false, "offline retention: scan columnar blocks (-retain-dir) back to TSV on stdout and exit")
		dataDir    = flag.String("data-dir", "", "journal directory (wal-*.log) for -compact")
		retainDir  = flag.String("retain-dir", "", "columnar block directory for -compact / -scan")
		retainMax  = flag.Int64("retain-max-bytes", 0, "evict oldest blocks past this many bytes during -compact (0 keeps everything)")
		scanFrom   = flag.String("from", "", "lower time bound for -scan (RFC3339 or log timestamp format)")
		scanTo     = flag.String("to", "", "upper time bound for -scan")
		scanTmpl   = flag.Uint64("template", 0, "only -scan entries of this template fingerprint (engine or lexical)")
		logLevel   = flag.String("log-level", "info", "stderr log verbosity: debug | info | warn | error")
		logFormat  = flag.String("log-format", "text", "stderr log format: text | json")
		version    = flag.Bool("version", false, "print the build stamp and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println("sqlclean", sqlclean.Version())
		return
	}
	// Diagnostics go to stderr as structured logs; the report, cleaned log
	// and progress line keep their stdout/stderr contracts untouched.
	l, lerr := sqlclean.NewLogger(os.Stderr, *logLevel, *logFormat)
	if lerr != nil {
		fatal(lerr)
	}
	logger = l.With("component", "sqlclean")

	if *compact {
		runCompact(*dataDir, *retainDir, *retainMax)
		return
	}
	if *scanBlocks {
		runScan(*retainDir, *scanFrom, *scanTo, *scanTmpl)
		return
	}

	// Observability: one registry feeds the debug endpoint, the progress
	// reporter and the pipeline's hot-path counters.
	var metrics *sqlclean.Metrics
	if *debugAddr != "" || *progress {
		metrics = sqlclean.NewMetrics()
		sqlclean.InstrumentParallel(metrics)
	}
	if *debugAddr != "" {
		addr, _, err := sqlclean.ServeDebug(*debugAddr, metrics)
		if err != nil {
			fatal(err)
		}
		logger.Info("debug server listening",
			"url", "http://"+addr, "endpoints", "/metrics /debug/pprof/ /debug/vars")
	}

	var r io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
		if strings.HasSuffix(flag.Arg(0), ".gz") {
			zr, err := gzip.NewReader(f)
			if err != nil {
				fatal(err)
			}
			defer zr.Close()
			r = zr
		}
	}
	if *streaming {
		if *format != "tsv" {
			fatal(fmt.Errorf("-stream supports tsv input only"))
		}
		runStreaming(r, *dup, *gap, *noKeyCheck, *extraRules, *cleanOut, *jsonOut, metrics, *progress)
		return
	}

	var log sqlclean.Log
	var err error
	switch *format {
	case "tsv":
		log, err = sqlclean.ReadLogTSV(r)
	case "csv":
		log, err = sqlclean.ReadSkyServerCSV(r)
	default:
		fatal(fmt.Errorf("unknown -format %q (want tsv or csv)", *format))
	}
	if err != nil {
		fatal(err)
	}
	if *noUsers {
		log = log.StripUsers()
	}

	cfg := sqlclean.Config{
		DuplicateThreshold: *dup,
		NoDedup:            *noDedup,
		SessionGap:         *gap,
		DisableKeyCheck:    *noKeyCheck,
		SolveToFixpoint:    *fixpoint,
		Workers:            *workers,
		ClusterThreshold:   *clusterT,
		Metrics:            metrics,
	}
	if *extraRules {
		cfg.ExtraRules, cfg.ExtraSolvers = extraRuleSet()
	}
	if *progress {
		total := int64(len(log))
		pr := sqlclean.NewProgress(os.Stderr, 0, func() sqlclean.ProgressSample {
			// Fixpoint and SWS-mode passes re-parse rewritten statements,
			// so the parse counter can exceed the input size; clamp it.
			done := metrics.Counter("parse_entries_total").Value()
			if done > total {
				done = total
			}
			return sqlclean.ProgressSample{
				Stage: metrics.Text("pipeline_stage").Get(),
				Done:  done,
				Total: total,
			}
		})
		pr.Start()
		defer pr.Stop()
	}
	res, err := sqlclean.Clean(log, cfg)
	if err != nil {
		fatal(err)
	}
	if *timing {
		printTiming(os.Stderr, res.Report.Stages, 0)
	}

	fmt.Print(res.Report)
	fmt.Println()
	anti := res.AntipatternTemplates()
	fmt.Printf("Top %d patterns (★ marks templates involved in antipatterns):\n", *top)
	for i, t := range res.Templates {
		if i >= *top {
			break
		}
		mark := " "
		if anti[t.Fingerprint] {
			mark = "★"
		}
		sws := ""
		if res.SWS[t.Fingerprint] {
			sws = " [SWS]"
		}
		fmt.Printf("%2d. %s freq=%-8d users=%-5d %s%s\n", i+1, mark, t.Frequency, t.UserPopularity, truncate(t.Skeleton, 100), sws)
	}
	fmt.Println()
	for _, s := range res.Report.SolveStats {
		fmt.Printf("solved %-10s: %d instances, %d → %d queries\n", s.Kind, s.Solved, s.QueriesBefore, s.QueriesAfter)
	}
	// The per-run Overlap-call count depends on worker scheduling (the
	// parallel driver probes pre-batch clusters the serial order would
	// short-circuit), so the report prints only worker-invariant figures:
	// the clustering itself and the leader-scan counterfactual.
	if *clusterT > 0 {
		fmt.Printf("clusters (threshold %g): %d, avg size %.1f (grid pruned a %d-comparison leader scan)\n",
			*clusterT, res.Report.ClusterCount, res.Report.ClusterAvgSize,
			res.Report.ClusterWork.ScanComparisons)
	}

	if *cleanOut != "" {
		if err := writeLog(*cleanOut, res.Clean); err != nil {
			fatal(err)
		}
	}
	if *removalOut != "" {
		if err := writeLog(*removalOut, res.Removal); err != nil {
			fatal(err)
		}
	}
	if *jsonOut != "" {
		if err := writeFile(*jsonOut, func(f *os.File) error {
			return sqlclean.WriteResultJSON(f, res, 0)
		}); err != nil {
			fatal(err)
		}
	}
}

// writeFile creates path, runs write, and surfaces the Close error too: a
// failed Close after buffered writes is data loss, and a deferred Close
// would swallow it while the process exits 0.
func writeFile(path string, write func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("close %s: %w", path, err)
	}
	return nil
}

func writeLog(path string, l sqlclean.Log) error {
	return writeFile(path, func(f *os.File) error {
		return sqlclean.WriteLogTSV(f, l)
	})
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}

// logger carries structured stderr diagnostics; nil only before flag
// parsing, when fatal falls back to a plain line.
var logger *slog.Logger

func fatal(err error) {
	if logger != nil {
		logger.Error("fatal", "error", err)
	} else {
		fmt.Fprintln(os.Stderr, "sqlclean:", err)
	}
	os.Exit(1)
}

// printTiming renders the stage-timing tree (one line per span, indented by
// depth) with durations and recorded attributes.
func printTiming(w io.Writer, st sqlclean.StageTiming, depth int) {
	if st.Name == "" {
		return
	}
	fmt.Fprintf(w, "%*s%-12s %12v", depth*2, "", st.Name, time.Duration(st.DurationNS).Round(time.Microsecond))
	if len(st.Attrs) > 0 {
		keys := make([]string, 0, len(st.Attrs))
		for k := range st.Attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(w, "  %s=%d", k, st.Attrs[k])
		}
	}
	fmt.Fprintln(w)
	for _, c := range st.Children {
		printTiming(w, c, depth+1)
	}
}

// runStreaming cleans the log with the bounded-memory streaming pipeline,
// writing cleaned entries as their sessions close. -json exports the
// streaming stats and template statistics (same JSON names as the daemon's
// GET /report "stream" block).
func runStreaming(r io.Reader, dup, gap time.Duration, noKeyCheck, extraRules bool, cleanOut, jsonOut string, metrics *sqlclean.Metrics, progress bool) {
	out := os.Stdout
	var outFile *os.File
	if cleanOut != "" {
		f, err := os.Create(cleanOut)
		if err != nil {
			fatal(err)
		}
		out, outFile = f, f
	}
	scfg := sqlclean.StreamConfig{
		DuplicateThreshold: dup,
		SessionGap:         gap,
		DisableKeyCheck:    noKeyCheck,
		Metrics:            metrics,
	}
	if extraRules {
		scfg.ExtraRules, scfg.ExtraSolvers = extraRuleSet()
	}
	p := sqlclean.NewStream(scfg)
	if progress {
		pr := sqlclean.NewProgress(os.Stderr, 0, func() sqlclean.ProgressSample {
			return sqlclean.ProgressSample{
				Stage: "stream",
				Done:  metrics.Counter("stream_entries_in_total").Value(),
			}
		})
		pr.Start()
		defer pr.Stop()
	}
	emit := func(l sqlclean.Log) {
		if len(l) > 0 {
			if err := sqlclean.WriteLogTSV(out, l); err != nil {
				fatal(err)
			}
		}
	}
	err := sqlclean.ScanLogTSV(r, func(e sqlclean.Entry) error {
		emitted, err := p.Add(e)
		if err != nil {
			return err
		}
		emit(emitted)
		return nil
	})
	if err != nil {
		fatal(err)
	}
	emit(p.Close())
	// The cleaned log was written incrementally; its Close error is the last
	// chance to learn the writes didn't stick.
	if outFile != nil {
		if err := outFile.Close(); err != nil {
			fatal(fmt.Errorf("close %s: %w", cleanOut, err))
		}
	}
	st := p.Stats()
	logger.Info("stream done",
		"in", st.In, "selects", st.Selects, "duplicates", st.Duplicates,
		"out", st.Out, "solved_away", st.Selects-st.Duplicates-st.Out)
	if jsonOut != "" {
		if err := writeFile(jsonOut, func(f *os.File) error {
			return sqlclean.WriteStreamJSON(f, p)
		}); err != nil {
			fatal(err)
		}
	}
}
