module sqlclean

go 1.22
