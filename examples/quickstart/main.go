// Quickstart: clean a small SQL query log with the public API.
//
// The log below replays the paper's running example (Table 1): a user first
// resolves an employee id, then issues follow-up queries against that id.
// The pipeline detects the Circuitous Treasure Hunt and the DW-Stifle and
// rewrites the solvable Stifle into a single IN query (the paper's Table 3).
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"sqlclean"
)

func main() {
	base := time.Date(2026, 1, 2, 10, 0, 0, 0, time.UTC)
	entry := func(offset time.Duration, stmt string) sqlclean.Entry {
		return sqlclean.Entry{Time: base.Add(offset), User: "192.0.2.1", Statement: stmt}
	}
	queryLog := sqlclean.Log{
		entry(0, "SELECT E.Id FROM Employees E WHERE E.department = 'sales'"),
		entry(1*time.Second, "SELECT E.name, E.surname FROM Employees E WHERE E.id = 12"),
		entry(2*time.Second, "SELECT E.name, E.surname FROM Employees E WHERE E.id = 15"),
		entry(3*time.Second, "SELECT E.name, E.surname FROM Employees E WHERE E.id = 16"),
	}

	res, err := sqlclean.Clean(queryLog, sqlclean.Config{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Detected antipatterns:")
	for _, inst := range res.Instances {
		fmt.Printf("  %-9s over %d queries (solvable: %v)\n", inst.Kind, inst.Len(), inst.Solvable)
	}

	fmt.Println("\nClean query log:")
	for _, e := range res.Clean {
		fmt.Printf("  %s  %s\n", e.Time.Format("15:04:05"), e.Statement)
	}

	fmt.Printf("\n%d statements in, %d statements out\n", len(queryLog), len(res.Clean))
}
