// Downstream user-interest clustering (paper §6.9): cluster the raw, the
// cleaned and the removal variants of a synthetic log by the overlap of the
// data space the queries access, and compare cluster counts and sizes. The
// paper's finding: the raw log fragments into many small antipattern-made
// clusters; removing or rewriting antipatterns leaves fewer, bigger,
// interpretable clusters.
//
// Run with: go run ./examples/clustering [-threshold 0.9]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"sqlclean"
)

func main() {
	threshold := flag.Float64("threshold", 0.9, "clustering distance threshold")
	flag.Parse()

	wcfg := sqlclean.DefaultWorkloadConfig().Scale(0.5)
	queryLog, _ := sqlclean.GenerateWorkload(wcfg)
	res, err := sqlclean.Clean(queryLog, sqlclean.Config{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-10s %10s %10s %10s %12s\n", "log", "queries", "clusters", "avg size", "runtime")
	for _, v := range []struct {
		name string
		l    sqlclean.Log
	}{
		{"raw", res.PreClean},
		{"cleaning", res.Clean},
		{"removal", res.Removal},
	} {
		n, avg, elapsed := cluster(v.l, *threshold)
		fmt.Printf("%-10s %10d %10d %10.1f %12v\n", v.name, len(v.l), n, avg, elapsed.Round(time.Millisecond))
	}
}

// cluster groups queries with the leader algorithm over the public
// OverlapDistance, exactly like the paper's clustering procedure.
func cluster(l sqlclean.Log, threshold float64) (count int, avgSize float64, elapsed time.Duration) {
	// Parse via a throwaway Analyze run to reuse the cached parser.
	res, err := sqlclean.Analyze(l, sqlclean.Config{NoDedup: true})
	if err != nil {
		log.Fatal(err)
	}
	var infos []*sqlclean.QueryInfo
	for _, pe := range res.Parsed {
		if pe.Info != nil {
			infos = append(infos, pe.Info)
		}
	}
	start := time.Now()
	var leaders []*sqlclean.QueryInfo
	var sizes []int
	for _, in := range infos {
		placed := false
		for i, leader := range leaders {
			if sqlclean.OverlapDistance(in, leader) < threshold {
				sizes[i]++
				placed = true
				break
			}
		}
		if !placed {
			leaders = append(leaders, in)
			sizes = append(sizes, 1)
		}
	}
	elapsed = time.Since(start)
	total := 0
	for _, s := range sizes {
		total += s
	}
	if len(sizes) > 0 {
		avgSize = float64(total) / float64(len(sizes))
	}
	return len(sizes), avgSize, elapsed
}
