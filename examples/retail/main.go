// Sequence patterns in an OLTP log (paper Example 7): a shoe retailer's BUY
// procedure issues the same three SELECTs for every sale. Mining the log
// recovers exactly that sequence as the dominant Definition-7 pattern, run
// by every point-of-sale register — and the CTH detector correctly flags
// its dependent lookups as candidates.
//
// Run with: go run ./examples/retail
package main

import (
	"fmt"
	"log"

	"sqlclean"
	"sqlclean/internal/workload"
)

func main() {
	queryLog, _ := workload.GenerateRetail(workload.DefaultRetailConfig())
	fmt.Printf("retail log: %d statements from %d users\n\n", len(queryLog), queryLog.Users())

	res, err := sqlclean.Analyze(queryLog, sqlclean.Config{Catalog: workload.RetailCatalog()})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Top sequence patterns (Definition 7: sequences of query templates):")
	for i, sp := range res.Sequences {
		if i >= 5 {
			break
		}
		fmt.Printf("%d. freq=%d users=%d, %d templates:\n", i+1, sp.Frequency, sp.UserPopularity, len(sp.Signature))
		for _, skel := range sp.Skeletons {
			fmt.Printf("     %s\n", skel)
		}
	}

	fmt.Println("\nAntipattern candidates in the OLTP traffic:")
	if len(res.Report.AntipatternSummary) == 0 {
		// The paper's point exactly: the BUY procedure is a *pattern* — a
		// recurring solution representing real functionality — not an
		// antipattern. Its stock check carries two predicates and its
		// lookups do not chain on a single returned key, so neither the
		// Stifle nor the CTH definitions fire.
		fmt.Println("  (none — the BUY sequence is a legitimate pattern, not an antipattern)")
	}
	for _, s := range res.Report.AntipatternSummary {
		fmt.Printf("  %-10s %d distinct, %d instances, %d queries\n", s.Kind, s.Distinct, s.Instances, s.Queries)
	}
}
