// SkyServer case study in miniature (paper §6): generate a synthetic
// SkyServer-style log, run the full cleaning pipeline and inspect what the
// case study inspected — the results overview, the most popular patterns
// with antipatterns marked, and the sliding-window-search bots.
//
// Run with: go run ./examples/skyserver [-scale 1.0]
package main

import (
	"flag"
	"fmt"
	"log"

	"sqlclean"
)

func main() {
	scale := flag.Float64("scale", 1.0, "workload size multiplier")
	flag.Parse()

	wcfg := sqlclean.DefaultWorkloadConfig().Scale(*scale)
	queryLog, _ := sqlclean.GenerateWorkload(wcfg)
	fmt.Printf("generated %d log entries from %d users\n\n", len(queryLog), queryLog.Users())

	res, err := sqlclean.Clean(queryLog, sqlclean.Config{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Results overview (cf. paper Table 5):")
	fmt.Print(res.Report)

	anti := res.AntipatternTemplates()
	fmt.Println("\nTop 15 patterns (cf. paper Fig. 2a; ★ = antipattern, ≈ = SWS):")
	for i, t := range res.Templates {
		if i >= 15 {
			break
		}
		first, second := " ", " "
		if anti[t.Fingerprint] {
			first = "★"
		}
		if res.SWS[t.Fingerprint] {
			second = "≈"
		}
		mark := first + second
		fmt.Printf("%2d. %s freq=%-6d users=%-4d %s\n", i+1, mark, t.Frequency, t.UserPopularity, short(t.Skeleton))
	}

	fmt.Println("\nSolving summary:")
	for _, s := range res.Report.SolveStats {
		fmt.Printf("  %-10s %4d instances solved, %5d → %4d statements\n",
			s.Kind, s.Solved, s.QueriesBefore, s.QueriesAfter)
	}
	fmt.Printf("\nlog size: %d original → %d clean (%.1f%% reduction)\n",
		res.Report.SizeOriginal, len(res.Clean),
		100*(1-float64(len(res.Clean))/float64(res.Report.SizeOriginal)))
}

func short(s string) string {
	if len(s) > 90 {
		return s[:89] + "…"
	}
	return s
}
