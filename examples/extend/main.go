// Extending the framework with a custom antipattern (paper §5.4).
//
// The paper describes the extension recipe: formalize the new antipattern,
// provide a detection rule, and — if possible — a solving solution, then
// plug both into the pipeline. This example adds "Implicit Columns"
// (SELECT * — antipattern 10 in Karwin's SQL Antipatterns): the detection
// rule flags star-selects over a single cataloged table, and the solver
// rewrites them to name the columns explicitly.
//
// Run with: go run ./examples/extend
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"sqlclean"
)

// KindImplicitColumns is the custom antipattern kind.
const KindImplicitColumns = sqlclean.Kind("ImplicitColumns")

// implicitColumnsRule detects SELECT * queries over exactly one cataloged
// table. It is a single-query pattern, like the built-in SNC.
type implicitColumnsRule struct {
	catalog *sqlclean.Catalog
}

func (r *implicitColumnsRule) Kind() sqlclean.Kind { return KindImplicitColumns }

func (r *implicitColumnsRule) Detect(pl sqlclean.ParsedLog, sess sqlclean.Session) []sqlclean.Instance {
	var out []sqlclean.Instance
	for _, idx := range sess.Indices {
		e := pl[idx]
		if e.Info == nil || len(e.Info.TableNames) != 1 {
			continue
		}
		if len(e.Info.SelectCols) != 1 || e.Info.SelectCols[0] != "*" {
			continue
		}
		if _, ok := r.catalog.Table(e.Info.TableNames[0]); !ok {
			continue
		}
		skel := e.Info.SkeletonText()
		out = append(out, sqlclean.Instance{
			Kind:     KindImplicitColumns,
			Indices:  []int{idx},
			User:     sess.User,
			Identity: skel,
			First:    skel,
			Second:   skel,
			Solvable: true,
		})
	}
	return out
}

// implicitColumnsSolver expands the star into the table's column list.
type implicitColumnsSolver struct {
	catalog *sqlclean.Catalog
}

func (s *implicitColumnsSolver) Kind() sqlclean.Kind { return KindImplicitColumns }

func (s *implicitColumnsSolver) Solve(pl sqlclean.ParsedLog, inst sqlclean.Instance) (string, error) {
	e := pl[inst.Indices[0]]
	table, ok := s.catalog.Table(e.Info.TableNames[0])
	if !ok {
		return "", fmt.Errorf("table %s not in catalog", e.Info.TableNames[0])
	}
	var names []string
	for _, c := range table.Columns {
		names = append(names, c.Name)
	}
	stmt := e.Statement
	star := strings.Index(stmt, "*")
	if star < 0 {
		return "", fmt.Errorf("no star in %q", stmt)
	}
	return stmt[:star] + strings.Join(names, ", ") + stmt[star+1:], nil
}

func main() {
	catalog := sqlclean.SkyServerCatalog()
	base := time.Date(2026, 1, 2, 9, 0, 0, 0, time.UTC)
	queryLog := sqlclean.Log{
		{Time: base, User: "u1", Statement: "SELECT * FROM specobj WHERE specobjid = 75094094447116288"},
		{Time: base.Add(time.Minute), User: "u1", Statement: "SELECT name FROM DBObjects WHERE type = 'U'"},
		{Time: base.Add(2 * time.Minute), User: "u2", Statement: "SELECT * FROM dbobjects WHERE name = 'Galaxy'"},
	}

	cfg := sqlclean.Config{
		Catalog:      catalog,
		ExtraRules:   []sqlclean.Rule{&implicitColumnsRule{catalog: catalog}},
		ExtraSolvers: []sqlclean.Solver{&implicitColumnsSolver{catalog: catalog}},
	}
	res, err := sqlclean.Clean(queryLog, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Detected:")
	for _, inst := range res.Instances {
		fmt.Printf("  %-15s %s\n", inst.Kind, inst.Identity)
	}
	fmt.Println("\nClean log:")
	for _, e := range res.Clean {
		fmt.Printf("  %s\n", e.Statement)
	}
}
