// Query recommendation on raw vs cleaned logs (paper §7 future work): a
// next-query recommender trained on the original log keeps suggesting
// antipattern queries (follow-up lookups by meaningless internal ids);
// trained on the cleaned log, its suggestions are dominated by meaningful
// patterns.
//
// Run with: go run ./examples/recommendation
package main

import (
	"fmt"
	"log"

	"sqlclean"
)

func main() {
	wcfg := sqlclean.DefaultWorkloadConfig().Scale(0.5)
	queryLog, _ := sqlclean.GenerateWorkload(wcfg)
	res, err := sqlclean.Clean(queryLog, sqlclean.Config{})
	if err != nil {
		log.Fatal(err)
	}
	anti := res.AntipatternTemplates()

	rawModel := sqlclean.TrainRecommender(res)
	cleanRes, err := sqlclean.Analyze(res.Clean, sqlclean.Config{NoDedup: true})
	if err != nil {
		log.Fatal(err)
	}
	cleanModel := sqlclean.TrainRecommender(cleanRes)

	rawRep := rawModel.Contamination(anti)
	cleanRep := cleanModel.Contamination(anti)
	fmt.Printf("recommender trained on the raw log:   %5.1f%% of recommendation mass is antipatterns\n",
		100*rawRep.MassAntipattern)
	fmt.Printf("recommender trained on the clean log: %5.1f%% of recommendation mass is antipatterns\n",
		100*cleanRep.MassAntipattern)

	// Show what each model suggests after the most common human query.
	var humanFP uint64
	for _, t := range res.Templates {
		if t.UserPopularity > 10 { // a genuinely popular (human) pattern
			humanFP = t.Fingerprint
			break
		}
	}
	if humanFP == 0 {
		return
	}
	fmt.Println("\nTop suggestions after the most popular human query:")
	for name, m := range map[string]*sqlclean.Recommender{"raw": rawModel, "clean": cleanModel} {
		fmt.Printf("  [%s]\n", name)
		for _, s := range m.Recommend(humanFP, 3) {
			mark := " "
			if anti[s.Fingerprint] {
				mark = "★"
			}
			fmt.Printf("    %.2f %s %.80s\n", s.Score, mark, s.Skeleton)
		}
	}
}
