GO ?= go

# The benchmarks of record (see `bench` below).
BENCH_REGEX = BenchmarkParseParallel|BenchmarkPipelineParallel|BenchmarkPipelineSeedSerial

.PHONY: check build test race bench bench-json vet

# Default: everything the CI gate runs.
check: vet test race

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The concurrency tests (parsedlog hammer, core determinism) are only
# meaningful under the race detector.
race:
	$(GO) test -race ./...

# Benchmarks of record: parse/pipeline scaling across worker counts plus the
# seed-cost baseline (see DESIGN.md, "Parallel execution").
bench:
	$(GO) test -bench '$(BENCH_REGEX)' -benchmem -run '^$$' .

# Machine-readable snapshot of the benchmarks of record: name → ns/op,
# B/op, allocs/op. Commit BENCH_pipeline.json to track regressions per PR.
bench-json:
	$(GO) test -bench '$(BENCH_REGEX)' -benchmem -run '^$$' . | $(GO) run ./cmd/benchjson > BENCH_pipeline.json

vet:
	$(GO) vet ./...
