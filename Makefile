GO ?= go

# Version stamp injected into both binaries (see internal/buildinfo).
VERSION ?= $(shell git describe --tags --always --dirty 2>/dev/null || echo dev)
COMMIT  ?= $(shell git rev-parse HEAD 2>/dev/null || echo "")
DATE    ?= $(shell date -u +%Y-%m-%dT%H:%M:%SZ)
LDFLAGS  = -X sqlclean/internal/buildinfo.Version=$(VERSION) \
           -X sqlclean/internal/buildinfo.Commit=$(COMMIT) \
           -X sqlclean/internal/buildinfo.Date=$(DATE)

# The benchmarks of record (see `bench` below).
BENCH_REGEX = BenchmarkParseParallel|BenchmarkPipelineParallel|BenchmarkPipelineSeedSerial|BenchmarkDedupSharded|BenchmarkStreamSharded|BenchmarkSketchIngest|BenchmarkClusterBoxes|BenchmarkColstore

.PHONY: check build binaries test race bench bench-json bench-compare bench-ingest bench-ingest-compare profile vet smoke

# Default: everything the CI gate runs.
check: vet test race

build:
	$(GO) build ./...

# Version-stamped binaries: the batch CLI and the ingestion daemon.
binaries:
	$(GO) build -ldflags "$(LDFLAGS)" -o bin/sqlclean ./cmd/sqlclean
	$(GO) build -ldflags "$(LDFLAGS)" -o bin/sqlcleand ./cmd/sqlcleand

test:
	$(GO) test ./...

# The concurrency tests (parsedlog hammer, core determinism, sharded stream
# and server) are only meaningful under the race detector.
race:
	$(GO) test -race ./...

# Benchmarks of record: parse/pipeline scaling across worker counts, the
# seed-cost baseline, and the sharded dedup/stream engines (see DESIGN.md,
# "Parallel execution" and "Service architecture").
bench:
	$(GO) test -bench '$(BENCH_REGEX)' -benchmem -run '^$$' .

# Machine-readable snapshot of the benchmarks of record: name → ns/op,
# B/op, allocs/op. Commit BENCH_pipeline.json to track regressions per PR.
bench-json:
	$(GO) test -bench '$(BENCH_REGEX)' -benchmem -run '^$$' . | $(GO) run ./cmd/benchjson > BENCH_pipeline.json

# Perf-regression gate: rerun the benchmarks of record (short benchtime —
# this is a smoke-level gate, not a measurement) and diff against the
# committed baseline. Warn-only by default; drop -warn-only for a hard gate.
BENCH_COMPARE_TIME ?= 1x
bench-compare:
	$(GO) test -bench '$(BENCH_REGEX)' -benchmem -benchtime $(BENCH_COMPARE_TIME) -run '^$$' . \
	  | $(GO) run ./cmd/benchjson -compare BENCH_pipeline.json -threshold 25 -warn-only

# Ingest benchmark of record: closed-loop replay (32 clients, unthrottled)
# against a crash-durable daemon at -fsync always. Snapshots throughput,
# latency percentiles, drain time and the group-commit fsync amortization
# into BENCH_ingest.json; commit it to track the ingest hot path per PR.
bench-ingest: binaries
	./scripts/bench_ingest.sh

# Warn-only ingest perf gate: rerun the replay and diff against the
# committed BENCH_ingest.json via benchjson -compare.
bench-ingest-compare: binaries
	COMPARE=1 ./scripts/bench_ingest.sh

# CPU + allocation profiles of the pipeline benchmark on the seed workload.
# Inspect with: go tool pprof -top profiles/cpu.prof
profile:
	mkdir -p profiles
	$(GO) test -bench 'BenchmarkPipelineParallel/workers=1' -run '^$$' -benchtime 5x \
	  -cpuprofile profiles/cpu.prof -memprofile profiles/mem.prof .
	$(GO) tool pprof -top -nodecount 15 profiles/cpu.prof
	$(GO) tool pprof -top -nodecount 15 -sample_index=alloc_objects profiles/mem.prof

# End-to-end smoke of the ingestion daemon: build, start, ingest a generated
# log over HTTP, assert /healthz and a non-empty /report, drain.
smoke: binaries
	./scripts/smoke.sh

vet:
	$(GO) vet ./...
