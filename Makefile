GO ?= go

.PHONY: check build test race bench vet

# Default: everything the CI gate runs.
check: vet test race

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The concurrency tests (parsedlog hammer, core determinism) are only
# meaningful under the race detector.
race:
	$(GO) test -race ./...

# Benchmarks of record: parse/pipeline scaling across worker counts plus the
# seed-cost baseline (see DESIGN.md, "Parallel execution").
bench:
	$(GO) test -bench 'BenchmarkParseParallel|BenchmarkPipelineParallel|BenchmarkPipelineSeedSerial' -benchmem -run '^$$' .

vet:
	$(GO) vet ./...
