// Package sqlclean detects patterns and antipatterns in SQL query logs and
// cleans (rewrites) the antipatterns, implementing the framework of
// Arzamasova, Schäler and Böhm: "Cleaning Antipatterns in an SQL Query Log"
// (ICDE 2018).
//
// A query log flows through the pipeline of the paper's Fig. 1:
//
//	original log → delete duplicates → parse statements →
//	templates & patterns → detect antipatterns → solve antipatterns →
//	clean log + statistics
//
// The built-in antipatterns are the three Stifle classes (DW, DS, DF —
// similar queries that should have been one), Circuitous-Treasure-Hunt
// candidates (dependent query chains), and Searching-Nullable-Columns
// (= NULL comparisons). Stifles and SNC are solvable: the framework rewrites
// each instance into a single equivalent statement. New antipatterns plug in
// via Config.ExtraRules / Config.ExtraSolvers.
//
// Minimal use:
//
//	log, _ := sqlclean.ReadLogTSV(file)
//	res, err := sqlclean.Clean(log, sqlclean.Config{})
//	// res.Clean is the rewritten log, res.Report the Table-5-style summary.
package sqlclean

import (
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"time"

	"sqlclean/internal/antipattern"
	"sqlclean/internal/buildinfo"
	"sqlclean/internal/core"
	"sqlclean/internal/dedup"
	"sqlclean/internal/logmodel"
	"sqlclean/internal/obs"
	"sqlclean/internal/overlap"
	"sqlclean/internal/parallel"
	"sqlclean/internal/parsedlog"
	"sqlclean/internal/pattern"
	"sqlclean/internal/recommend"
	"sqlclean/internal/rewrite"
	"sqlclean/internal/schema"
	"sqlclean/internal/session"
	"sqlclean/internal/skeleton"
	"sqlclean/internal/sketch"
	"sqlclean/internal/stream"
	"sqlclean/internal/traffic"
	"sqlclean/internal/workload"
)

// Entry is one query-log record: statement, timestamp, optional user (IP),
// session label and result-row count.
type Entry = logmodel.Entry

// Log is an in-memory query log.
type Log = logmodel.Log

// Config configures a pipeline run; the zero value applies the paper's
// defaults.
type Config = core.Config

// Result is the full outcome of a pipeline run: the clean and removal logs,
// templates, antipattern instances and statistics.
type Result = core.Result

// Report is the Table-5-style results overview.
type Report = core.Report

// TemplateStats aggregates the occurrences of one query template.
type TemplateStats = pattern.TemplateStats

// SWSOptions are the sliding-window-search thresholds.
type SWSOptions = pattern.SWSOptions

// Instance is one detected antipattern occurrence.
type Instance = antipattern.Instance

// Kind names an antipattern type.
type Kind = antipattern.Kind

// Rule is a pluggable antipattern detection rule.
type Rule = antipattern.Rule

// Solver is a pluggable antipattern rewriter.
type Solver = rewrite.Solver

// Catalog is the schema metadata consulted for key attributes.
type Catalog = schema.Catalog

// Column describes one catalog column.
type Column = schema.Column

// QueryInfo is the parsed-and-summarized form of one SELECT statement (its
// skeleton clauses, template fingerprint, and predicate summary).
type QueryInfo = skeleton.Info

// ParsedEntry is one log entry annotated with its parse result; custom
// rules receive the parsed log.
type ParsedEntry = parsedlog.Entry

// ParsedLog is the parsed query log handed to detection rules.
type ParsedLog = parsedlog.Log

// Session is one user's burst of consecutive queries; detection rules scan
// the log session by session.
type Session = session.Session

// WorkloadConfig sizes the synthetic SkyServer-style log generator.
type WorkloadConfig = workload.Config

// Truth is the generator's ground-truth labeling.
type Truth = workload.Truth

// The built-in antipattern kinds.
const (
	KindDWStifle = antipattern.DWStifle
	KindDSStifle = antipattern.DSStifle
	KindDFStifle = antipattern.DFStifle
	KindCTH      = antipattern.CTH
	KindSNC      = antipattern.SNC
)

// Optional antipattern kinds (see ExtraAntipatternRules).
const (
	KindImplicitColumns = antipattern.ImplicitColumns
	KindLeadingWildcard = antipattern.LeadingWildcard
)

// ExtraAntipatternRules returns optional detection rules beyond the paper's
// core set (Implicit Columns, leading-wildcard LIKE), ready for
// Config.ExtraRules.
func ExtraAntipatternRules(cat *Catalog) []Rule { return antipattern.ExtraRules(cat) }

// ExtraAntipatternSolvers returns the solvers matching
// ExtraAntipatternRules, ready for Config.ExtraSolvers.
func ExtraAntipatternSolvers(cat *Catalog) []Solver { return rewrite.ExtraSolvers(cat) }

// UnrestrictedDedup removes every later repeat of a statement regardless of
// elapsed time when used as Config.DuplicateThreshold.
const UnrestrictedDedup = dedup.Unrestricted

// Clean runs the full pipeline (Fig. 1) over the log.
func Clean(l Log, cfg Config) (*Result, error) { return core.Run(l, cfg) }

// Analyze runs the pipeline with solving disabled: antipatterns are
// detected and reported but the log is left unchanged.
func Analyze(l Log, cfg Config) (*Result, error) {
	cfg.DisableSolve = true
	return core.Run(l, cfg)
}

// ReadLogTSV reads a query log in the tab-separated format
// (time, user, session, rows, statement per line).
func ReadLogTSV(r io.Reader) (Log, error) { return logmodel.ReadTSV(r) }

// WriteLogTSV writes a query log in the tab-separated format.
func WriteLogTSV(w io.Writer, l Log) error { return logmodel.WriteTSV(w, l) }

// ReadSkyServerCSV reads a log in the CSV export format of the SkyServer
// SqlLog table (header row naming at least a timestamp and a statement
// column; clientIP/seq/rows are picked up when present).
func ReadSkyServerCSV(r io.Reader) (Log, error) { return logmodel.ReadSkyServerCSV(r) }

// SkyServerCatalog returns the demo catalog modeled on the SDSS SkyServer
// schema subset the paper's case study touches.
func SkyServerCatalog() *Catalog { return schema.SkyServer() }

// NewCatalog returns an empty schema catalog.
func NewCatalog() *Catalog { return schema.New() }

// DefaultWorkloadConfig sizes a ≈10k-entry synthetic log with paper-like
// composition.
func DefaultWorkloadConfig() WorkloadConfig { return workload.DefaultConfig() }

// GenerateWorkload builds a deterministic synthetic SkyServer-style log
// plus ground-truth labels.
func GenerateWorkload(cfg WorkloadConfig) (Log, *Truth) { return workload.Generate(cfg) }

// OverlapDistance returns 1 − overlap of the data-space regions accessed by
// two parsed queries — the clustering distance of the §6.9 downstream
// experiment.
func OverlapDistance(a, b *QueryInfo) float64 {
	return overlap.Distance(overlap.FromInfo(a), overlap.FromInfo(b))
}

// Recommender is a next-query-template recommender (a first-order Markov
// chain over templates) — the downstream consumer the paper's §7 future
// work studies.
type Recommender = recommend.Model

// Suggestion is one recommended next query template.
type Suggestion = recommend.Suggestion

// ContaminationReport quantifies how much recommendation mass lands on
// antipattern templates.
type ContaminationReport = recommend.ContaminationReport

// TrainRecommender builds a next-query recommender from a pipeline result's
// parsed log and sessions.
func TrainRecommender(res *Result) *Recommender {
	return recommend.Train(res.Parsed, res.Sessions)
}

// TrafficReport is a SkyServer-Traffic-Report-style descriptive summary of
// a query log.
type TrafficReport = traffic.Report

// TrafficOptions configure traffic-report computation.
type TrafficOptions = traffic.Options

// ComputeTraffic builds the traffic report for a time-sorted log.
func ComputeTraffic(l Log, opt TrafficOptions) TrafficReport { return traffic.Compute(l, opt) }

// The SWS treatment modes for Config.SWSMode (§6.5).
const (
	SWSKeep    = core.SWSKeep
	SWSExclude = core.SWSExclude
	SWSUnion   = core.SWSUnion
)

// AnalysisDoc is the machine-readable export of a pipeline run.
type AnalysisDoc = core.ExportDoc

// WriteResultJSON writes the full analysis (report, templates, sequences,
// antipattern instances, replacements) as indented JSON. maxInstances
// bounds the instance list; 0 exports all.
func WriteResultJSON(w io.Writer, res *Result, maxInstances int) error {
	return core.WriteJSON(w, res, maxInstances)
}

// ReadResultJSON reads back an analysis document written by
// WriteResultJSON.
func ReadResultJSON(r io.Reader) (AnalysisDoc, error) { return core.ReadJSON(r) }

// Metrics is the observability registry: atomic counters, gauges with
// high-water marks, fixed-bucket histograms and text metrics, scrape-able
// as Prometheus text. Pass one as Config.Metrics / StreamConfig.Metrics to
// instrument a run's hot paths; a nil registry keeps every instrumented
// path on the zero-overhead fast path.
type Metrics = obs.Registry

// NewMetrics returns an empty observability registry.
func NewMetrics() *Metrics { return obs.NewRegistry() }

// StageTiming is one node of a run's stage-timing tree (Report.Stages).
type StageTiming = obs.StageTiming

// MetricsSnapshot is a point-in-time copy of a registry's metrics.
type MetricsSnapshot = obs.Snapshot

// ProgressSample is one observation for a progress reporter.
type ProgressSample = obs.ProgressSample

// Progress periodically renders a one-line live status of a long run.
type Progress = obs.Progress

// NewProgress returns an unstarted progress reporter writing to w every
// interval (0 selects 1 s); sample is called on each tick and must be safe
// to call concurrently with the run (registry reads are).
func NewProgress(w io.Writer, interval time.Duration, sample func() ProgressSample) *Progress {
	return obs.NewProgress(w, interval, sample)
}

// NewLogger returns a structured leveled logger writing to w. level is one
// of debug|info|warn|error (empty selects info); format is text or json.
func NewLogger(w io.Writer, level, format string) (*slog.Logger, error) {
	return obs.NewLogger(w, level, format)
}

// InstrumentParallel publishes worker-pool utilization metrics
// (parallel_* counters and the workers-active gauge) into the registry.
// Process-wide; a nil registry detaches.
func InstrumentParallel(m *Metrics) { parallel.Instrument(m) }

// ServeDebug starts the observability HTTP server on addr (e.g. ":6060"),
// serving /metrics (Prometheus text), /debug/pprof/ and /debug/vars. It
// returns the bound address (useful with ":0") and the server handle.
func ServeDebug(addr string, m *Metrics) (string, *http.Server, error) {
	return obs.Serve(addr, m)
}

// StreamConfig configures the bounded-memory streaming pipeline.
type StreamConfig = stream.Config

// SketchConfig sizes the streaming approximate-analytics layer (the
// StreamConfig.Sketches field): HLL distinct-identity counter, SpaceSaving
// heavy-hitter tracker and windowed SWS evidence.
type SketchConfig = sketch.Config

// StreamStats are the streaming pipeline's counters.
type StreamStats = stream.Stats

// StreamProcessor processes a time-ordered log incrementally: sessions are
// detected, solved and emitted as soon as they close, so memory stays
// bounded by the open sessions — the right shape for logs of the real
// SkyServer's 42-million-entry size.
type StreamProcessor = stream.Processor

// NewStream returns a streaming processor.
func NewStream(cfg StreamConfig) *StreamProcessor { return stream.New(cfg) }

// CleanStream runs a whole log through a fresh streaming processor. The
// cleaned output is equivalent to Clean's (same statements; emitted in
// session-close order; no SWS handling).
func CleanStream(l Log, cfg StreamConfig) (Log, StreamStats, error) { return stream.Run(l, cfg) }

// ScanLogTSV streams a TSV log entry by entry with constant memory,
// pairing with StreamProcessor for end-to-end bounded-memory cleaning.
func ScanLogTSV(r io.Reader, fn func(Entry) error) error { return logmodel.ScanTSV(r, fn) }

// StreamSketchJSON is the sketch block of the streaming -json export: the
// approximate analytics accumulated alongside the exact counters. Present
// only when the processor runs with sketches enabled.
type StreamSketchJSON struct {
	// DistinctUsersEstimate is the HLL distinct-identity estimate.
	DistinctUsersEstimate int64 `json:"distinct_users_estimate"`
	// SWSTemplates/SWSQueries classify the drained windowed evidence with
	// the default thresholds — matching the batch pipeline's decision.
	SWSTemplates int `json:"sws_templates"`
	SWSQueries   int `json:"sws_queries"`
	// Toplist is the SpaceSaving heavy-hitter summary, count-descending;
	// each entry's true frequency lies in [count−err, count].
	Toplist []sketch.HeavyHitter `json:"toplist"`
}

// WriteStreamJSON writes a streaming run's counters, accumulated template
// statistics and sketch analytics as indented JSON — the batch -json
// export's streaming counterpart, using the same JSON names as the daemon's
// GET /report payload.
func WriteStreamJSON(w io.Writer, p *StreamProcessor) error {
	doc := struct {
		Stream    StreamStats         `json:"stream"`
		Templates []core.TemplateJSON `json:"templates"`
		Sketches  *StreamSketchJSON   `json:"sketches,omitempty"`
	}{Stream: p.Stats()}
	var sws map[uint64]bool
	if sk := p.Sketches(); sk != nil {
		sws = p.ClassifySWS(pattern.DefaultSWSOptions())
		sj := &StreamSketchJSON{
			DistinctUsersEstimate: sk.HLL.Count(),
			SWSTemplates:          len(sws),
			Toplist:               sk.Top.Top(0),
		}
		for fp, ev := range sk.SWS.MergedEvidence() {
			if sws[fp] {
				sj.SWSQueries += ev.Freq
			}
		}
		doc.Sketches = sj
	}
	for _, t := range p.Templates() {
		doc.Templates = append(doc.Templates, core.TemplateJSON{
			Fingerprint:    t.Fingerprint,
			Skeleton:       t.Skeleton,
			Frequency:      t.Frequency,
			UserPopularity: t.UserPopularity,
			SWS:            sws[t.Fingerprint],
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// ShardedStreamConfig configures the sharded (multi-core) streaming engine.
type ShardedStreamConfig = stream.ShardedConfig

// ShardedStream is the multi-core streaming engine: entries are partitioned
// by user hash into independent shard processors (dedup keys and sessions
// are per user, so both stay shard-local), and a global event-time
// watermark closes sessions in quiet partitions. Safe for concurrent use;
// each user's entries must keep their time order (route one user through
// one goroutine or queue).
type ShardedStream = stream.Sharded

// NewShardedStream returns a sharded streaming engine.
func NewShardedStream(cfg ShardedStreamConfig) *ShardedStream { return stream.NewSharded(cfg) }

// CleanStreamSharded runs a whole log through a fresh sharded streaming
// engine, processing user partitions concurrently on the worker pool. The
// cleaned output is the same multiset of statements as CleanStream's,
// sorted by time.
func CleanStreamSharded(l Log, cfg ShardedStreamConfig) (Log, StreamStats, error) {
	return stream.RunSharded(l, cfg)
}

// Version returns the build stamp baked into the binary (see the Makefile's
// LDFLAGS; unstamped builds fall back to VCS metadata).
func Version() string { return buildinfo.String() }

// RetailWorkloadConfig sizes the retail OLTP workload (paper Example 7).
type RetailWorkloadConfig = workload.RetailConfig

// DefaultRetailConfig returns a ≈2k-entry retail log configuration.
func DefaultRetailConfig() RetailWorkloadConfig { return workload.DefaultRetailConfig() }

// GenerateRetailWorkload builds the shoe retailer's BUY-procedure log with
// ground truth; pair with RetailCatalog for analysis.
func GenerateRetailWorkload(cfg RetailWorkloadConfig) (Log, *Truth) {
	return workload.GenerateRetail(cfg)
}

// RetailCatalog returns the retail schema of the paper's Example 7.
func RetailCatalog() *Catalog { return workload.RetailCatalog() }
