#!/usr/bin/env bash
# End-to-end smoke of the sqlcleand ingestion daemon: start it, ingest a
# generated log over HTTP, assert /healthz is OK and /report is non-empty,
# then drain gracefully. A second phase checks crash durability: SIGKILL the
# daemon mid-feed, restart it on the same -data-dir (journal replay), finish
# the feed, and require the Add-driven /report numbers to equal an
# uninterrupted run's. A third phase drives the closed-loop replay harness
# (loggen -replay) against the daemon for a few seconds, requires its
# bench-text/JSON output to round-trip through `benchjson -compare`, and
# asserts GET /clusters returns a non-empty clustering, /debug/requests
# holds completed traces, and the JSON log carries slow-request lines with
# trace IDs. Run via `make smoke` (which builds bin/ first).
set -euo pipefail

cd "$(dirname "$0")/.."

BIN=${BIN:-./bin/sqlcleand}
ADDR=${ADDR:-127.0.0.1:18321}
TMP=$(mktemp -d)
trap 'kill "$PID" 2>/dev/null || true; rm -rf "$TMP"' EXIT

go run ./cmd/loggen -scale 0.2 -o "$TMP/log.tsv"

"$BIN" -addr "$ADDR" -clean "$TMP/clean.tsv" 2>"$TMP/daemon.log" &
PID=$!

# Wait for the daemon to listen.
for i in $(seq 1 50); do
  if curl -sf "http://$ADDR/healthz" >/dev/null 2>&1; then break; fi
  if ! kill -0 "$PID" 2>/dev/null; then
    echo "smoke: daemon died:" >&2; cat "$TMP/daemon.log" >&2; exit 1
  fi
  sleep 0.1
done

curl -sf -X POST --data-binary "@$TMP/log.tsv" \
  "http://$ADDR/ingest?format=tsv" >"$TMP/ingest.json"
grep -q '"accepted": *[1-9]' "$TMP/ingest.json" || {
  echo "smoke: ingest accepted nothing:" >&2; cat "$TMP/ingest.json" >&2; exit 1
}

curl -sf "http://$ADDR/healthz" >"$TMP/healthz.json"
grep -q '"status": *"ok"' "$TMP/healthz.json" || {
  echo "smoke: healthz not ok:" >&2; cat "$TMP/healthz.json" >&2; exit 1
}

curl -sf "http://$ADDR/report" >"$TMP/report.json"
grep -q '"size_original": *[1-9]' "$TMP/report.json" || {
  echo "smoke: report empty:" >&2; cat "$TMP/report.json" >&2; exit 1
}

# The status page must render in both shapes.
curl -sf "http://$ADDR/statusz" >"$TMP/statusz.html"
grep -q '<h1>sqlcleand' "$TMP/statusz.html" || {
  echo "smoke: /statusz did not render:" >&2; head "$TMP/statusz.html" >&2; exit 1
}
curl -sf "http://$ADDR/statusz?format=text" >"$TMP/statusz.txt"
grep -q 'sqlcleand status: ok' "$TMP/statusz.txt" || {
  echo "smoke: /statusz?format=text did not render:" >&2; cat "$TMP/statusz.txt" >&2; exit 1
}

# Buffer /metrics to a file: piping into grep -q under pipefail is racy —
# grep exits at the first match and curl's SIGPIPE fails the pipeline.
curl -sf "http://$ADDR/metrics" >"$TMP/metrics.txt"
grep -q ingest_accepted_total "$TMP/metrics.txt" || {
  echo "smoke: /metrics missing ingest counters" >&2; exit 1
}

# Graceful drain: SIGTERM, wait, check the cleaned log was flushed.
kill -TERM "$PID"
wait "$PID"
[ -s "$TMP/clean.tsv" ] || { echo "smoke: drain wrote no cleaned entries" >&2; exit 1; }

echo "smoke: ok ($(wc -l <"$TMP/log.tsv") in, $(wc -l <"$TMP/clean.tsv") cleaned)"

# ---------------------------------------------------------------------------
# Crash durability: acknowledged entries must survive a SIGKILL. Session-
# boundary stats depend on sweep timing under concurrent drains, so the
# comparison covers the Add-driven report fields, which are deterministic.
# ---------------------------------------------------------------------------

TOTAL=$(wc -l <"$TMP/log.tsv")
HALF=$((TOTAL / 2))
head -n "$HALF" "$TMP/log.tsv" >"$TMP/log1.tsv"
tail -n +"$((HALF + 1))" "$TMP/log.tsv" >"$TMP/log2.tsv"

start_daemon() { # $1 data dir, $2 daemon log
  "$BIN" -addr "$ADDR" -data-dir "$1" 2>>"$2" &
  PID=$!
  for i in $(seq 1 50); do
    if curl -sf "http://$ADDR/healthz" >/dev/null 2>&1; then return 0; fi
    if ! kill -0 "$PID" 2>/dev/null; then
      echo "smoke: daemon died:" >&2; cat "$2" >&2; exit 1
    fi
    sleep 0.1
  done
  echo "smoke: daemon never listened" >&2; exit 1
}

ingest_tsv() { # $1 file
  curl -sf -X POST --data-binary "@$1" "http://$ADDR/ingest?format=tsv" >/dev/null
}

wait_applied() { # $1 expected entries_in
  for i in $(seq 1 100); do
    curl -sf "http://$ADDR/healthz" >"$TMP/h.json" 2>/dev/null || true
    if grep -q "\"entries_in\": *$1," "$TMP/h.json" &&
       grep -q '"queue_depth": *0,' "$TMP/h.json"; then return 0; fi
    sleep 0.1
  done
  echo "smoke: daemon never converged to $1 applied entries:" >&2
  cat "$TMP/h.json" >&2; exit 1
}

add_driven_report() { # $1 out file
  curl -sf "http://$ADDR/report" | grep -oE \
    '"(size_original|count_select|size_after_dedup|duplicates_found|count_templates|max_template_frequency)": *[0-9]+' \
    >"$1"
}

# Uninterrupted reference run.
start_daemon "$TMP/data-ref" "$TMP/ref.log"
ingest_tsv "$TMP/log.tsv"
wait_applied "$TOTAL"
add_driven_report "$TMP/report-ref.txt"
kill -TERM "$PID"
wait "$PID"

# Crash run: half the feed, SIGKILL (no drain, no snapshot), restart on the
# same directory, finish the feed.
start_daemon "$TMP/data" "$TMP/crash.log"
ingest_tsv "$TMP/log1.tsv"
kill -9 "$PID"
wait "$PID" 2>/dev/null || true

start_daemon "$TMP/data" "$TMP/crash.log"
# The restart's structured "durability enabled" line carries the replay count.
grep -q "replayed=$HALF" "$TMP/crash.log" || {
  echo "smoke: restart did not replay the $HALF journaled entries:" >&2
  cat "$TMP/crash.log" >&2; exit 1
}
ingest_tsv "$TMP/log2.tsv"
wait_applied "$TOTAL"
add_driven_report "$TMP/report-crash.txt"
kill -TERM "$PID"
wait "$PID"

diff "$TMP/report-ref.txt" "$TMP/report-crash.txt" >&2 || {
  echo "smoke: crash-recovered report diverged from the uninterrupted run" >&2
  exit 1
}

echo "smoke: crash recovery ok (SIGKILL after $HALF entries, replayed and converged at $TOTAL)"

# ---------------------------------------------------------------------------
# Replay load harness + /clusters: drive the daemon with loggen's closed-loop
# replay mode for 5 seconds, require the harness to finish (preflight, load,
# drain) and its results to round-trip through `benchjson -compare` (the
# bench-text lines on stdout against the -bench-out JSON it wrote — byte-level
# proof both outputs speak benchjson's schema), then require a non-empty
# overlap clustering of the predicate boxes the run produced.
# ---------------------------------------------------------------------------

# JSON logs plus a 1µs slow-request threshold: every replayed request must
# produce a machine-readable slow-request line carrying its trace ID.
"$BIN" -addr "$ADDR" -log-format json -slow-request 1us 2>"$TMP/replay-daemon.log" &
PID=$!
for i in $(seq 1 50); do
  if curl -sf "http://$ADDR/healthz" >/dev/null 2>&1; then break; fi
  if ! kill -0 "$PID" 2>/dev/null; then
    echo "smoke: daemon died:" >&2; cat "$TMP/replay-daemon.log" >&2; exit 1
  fi
  sleep 0.1
done

go run ./cmd/loggen -replay "$ADDR" -scale 0.2 -clients 4 -rate 3000 \
  -duration 5s -bench-out "$TMP/replay.json" >"$TMP/replay.txt" || {
  echo "smoke: replay harness failed:" >&2; cat "$TMP/replay-daemon.log" >&2; exit 1
}
grep -q 'BenchmarkReplayIngestP99' "$TMP/replay.txt" || {
  echo "smoke: replay emitted no p99 line:" >&2; cat "$TMP/replay.txt" >&2; exit 1
}
grep -q 'BenchmarkReplayDrain' "$TMP/replay.txt" || {
  echo "smoke: replay emitted no drain line:" >&2; cat "$TMP/replay.txt" >&2; exit 1
}
go run ./cmd/benchjson -compare "$TMP/replay.json" <"$TMP/replay.txt" >/dev/null || {
  echo "smoke: benchjson -compare rejected the replay harness output" >&2; exit 1
}

curl -sf "http://$ADDR/clusters?top=5" >"$TMP/clusters.json"
grep -q '"cluster_count": *[1-9]' "$TMP/clusters.json" || {
  echo "smoke: /clusters returned an empty clustering:" >&2
  cat "$TMP/clusters.json" >&2; exit 1
}

# Sketches: after the replay load, the heavy-hitter endpoint must report
# tracked templates with counts, and a live distinct-identity estimate.
curl -sf "http://$ADDR/toplist?k=5" >"$TMP/toplist.json"
grep -q '"tracked_templates": *[1-9]' "$TMP/toplist.json" || {
  echo "smoke: /toplist tracked no templates:" >&2
  cat "$TMP/toplist.json" >&2; exit 1
}
grep -q '"skeleton": *"' "$TMP/toplist.json" || {
  echo "smoke: /toplist entries carry no skeletons:" >&2
  cat "$TMP/toplist.json" >&2; exit 1
}
grep -q '"distinct_users_estimate": *[1-9]' "$TMP/toplist.json" || {
  echo "smoke: /toplist distinct-identity estimate is zero:" >&2
  cat "$TMP/toplist.json" >&2; exit 1
}

# Tracing: the replay traffic must be visible as completed request traces,
# and the 1µs threshold must have produced structured slow-request lines.
curl -sf "http://$ADDR/debug/requests?n=5" >"$TMP/requests.json"
grep -q '"id":' "$TMP/requests.json" || {
  echo "smoke: /debug/requests returned no traces:" >&2
  cat "$TMP/requests.json" >&2; exit 1
}
grep -q '"msg":"slow request".*"trace_id":' "$TMP/replay-daemon.log" || {
  echo "smoke: no slow-request line with a trace_id in the JSON log:" >&2
  tail "$TMP/replay-daemon.log" >&2; exit 1
}

kill -TERM "$PID"
wait "$PID"

echo "smoke: replay ok ($(awk '/BenchmarkReplayIngestP99/{print $3}' "$TMP/replay.txt") ns p99, non-empty /clusters)"

# ---------------------------------------------------------------------------
# Columnar retention: offline-compact the crash phase's surviving journal
# into blocks, require a bit-identical scan (entry count matches), then start
# the daemon with -retain on the same data dir and require GET /history to
# answer from the blocks.
# ---------------------------------------------------------------------------

CLI=${CLI:-./bin/sqlclean}

"$CLI" -compact -data-dir "$TMP/data" -retain-dir "$TMP/blocks" \
  >"$TMP/compact.txt" 2>>"$TMP/retention.log"
grep -q "compacted $TOTAL entries into [1-9]" "$TMP/compact.txt" || {
  echo "smoke: offline compaction did not cover all $TOTAL entries:" >&2
  cat "$TMP/compact.txt" "$TMP/retention.log" >&2; exit 1
}

"$CLI" -scan -retain-dir "$TMP/blocks" >"$TMP/scan.tsv" 2>>"$TMP/retention.log"
SCANNED=$(wc -l <"$TMP/scan.tsv")
[ "$SCANNED" -eq "$TOTAL" ] || {
  echo "smoke: block scan returned $SCANNED of $TOTAL entries" >&2; exit 1
}

"$BIN" -addr "$ADDR" -data-dir "$TMP/data" -retain -retain-dir "$TMP/blocks" \
  2>"$TMP/retention-daemon.log" &
PID=$!
for i in $(seq 1 50); do
  if curl -sf "http://$ADDR/healthz" >/dev/null 2>&1; then break; fi
  if ! kill -0 "$PID" 2>/dev/null; then
    echo "smoke: daemon died:" >&2; cat "$TMP/retention-daemon.log" >&2; exit 1
  fi
  sleep 0.1
done

# The history endpoint answers from the block indexes alone — no journal read.
curl -sf "http://$ADDR/history?step=168h" >"$TMP/history.json"
grep -q "\"entries\": *$TOTAL" "$TMP/history.json" || {
  echo "smoke: /history did not count all $TOTAL retained entries:" >&2
  cat "$TMP/history.json" >&2; exit 1
}
grep -q '"windows": *\[' "$TMP/history.json" || {
  echo "smoke: /history returned no windows:" >&2
  cat "$TMP/history.json" >&2; exit 1
}
curl -sf "http://$ADDR/healthz" >"$TMP/healthz-retain.json"
grep -q '"retain_blocks": *[1-9]' "$TMP/healthz-retain.json" || {
  echo "smoke: healthz reports no retained blocks:" >&2
  cat "$TMP/healthz-retain.json" >&2; exit 1
}

kill -TERM "$PID"
wait "$PID"

echo "smoke: retention ok ($TOTAL entries compacted, scanned back and served via /history)"
