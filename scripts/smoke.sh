#!/usr/bin/env bash
# End-to-end smoke of the sqlcleand ingestion daemon: start it, ingest a
# generated log over HTTP, assert /healthz is OK and /report is non-empty,
# then drain gracefully. Run via `make smoke` (which builds bin/ first).
set -euo pipefail

cd "$(dirname "$0")/.."

BIN=${BIN:-./bin/sqlcleand}
ADDR=${ADDR:-127.0.0.1:18321}
TMP=$(mktemp -d)
trap 'kill "$PID" 2>/dev/null || true; rm -rf "$TMP"' EXIT

go run ./cmd/loggen -scale 0.2 -o "$TMP/log.tsv"

"$BIN" -addr "$ADDR" -clean "$TMP/clean.tsv" 2>"$TMP/daemon.log" &
PID=$!

# Wait for the daemon to listen.
for i in $(seq 1 50); do
  if curl -sf "http://$ADDR/healthz" >/dev/null 2>&1; then break; fi
  if ! kill -0 "$PID" 2>/dev/null; then
    echo "smoke: daemon died:" >&2; cat "$TMP/daemon.log" >&2; exit 1
  fi
  sleep 0.1
done

curl -sf -X POST --data-binary "@$TMP/log.tsv" \
  "http://$ADDR/ingest?format=tsv" >"$TMP/ingest.json"
grep -q '"accepted": *[1-9]' "$TMP/ingest.json" || {
  echo "smoke: ingest accepted nothing:" >&2; cat "$TMP/ingest.json" >&2; exit 1
}

curl -sf "http://$ADDR/healthz" >"$TMP/healthz.json"
grep -q '"status": *"ok"' "$TMP/healthz.json" || {
  echo "smoke: healthz not ok:" >&2; cat "$TMP/healthz.json" >&2; exit 1
}

curl -sf "http://$ADDR/report" >"$TMP/report.json"
grep -q '"size_original": *[1-9]' "$TMP/report.json" || {
  echo "smoke: report empty:" >&2; cat "$TMP/report.json" >&2; exit 1
}

curl -sf "http://$ADDR/metrics" | grep -q ingest_accepted_total || {
  echo "smoke: /metrics missing ingest counters" >&2; exit 1
}

# Graceful drain: SIGTERM, wait, check the cleaned log was flushed.
kill -TERM "$PID"
wait "$PID"
[ -s "$TMP/clean.tsv" ] || { echo "smoke: drain wrote no cleaned entries" >&2; exit 1; }

echo "smoke: ok ($(wc -l <"$TMP/log.tsv") in, $(wc -l <"$TMP/clean.tsv") cleaned)"
