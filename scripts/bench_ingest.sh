#!/usr/bin/env bash
# Ingest-path benchmark of record: drive a crash-durable sqlcleand running
# its strictest journal policy (-fsync always) with loggen's closed-loop
# replay harness, and snapshot throughput, latency percentiles, drain time
# and the group-commit fsync amortization (fsyncs per 1k accepted entries,
# entries per group-commit fsync — scraped from /metrics deltas).
#
# Default mode refreshes the committed BENCH_ingest.json baseline
# (`make bench-ingest`). With COMPARE=1 the results are instead diffed
# against that baseline through `benchjson -compare` warn-only
# (`make bench-ingest-compare`, the CI wiring) — end-to-end timings on
# shared runners are too noisy for a hard gate, but the delta table makes
# an ingest-path regression visible at review time.
set -euo pipefail

cd "$(dirname "$0")/.."

BIN=${BIN:-./bin/sqlcleand}
ADDR=${ADDR:-127.0.0.1:18341}
CLIENTS=${CLIENTS:-32}
DURATION=${DURATION:-5s}
SCALE=${SCALE:-0.5}
BATCH=${BATCH:-100}
TMP=$(mktemp -d)
trap 'kill "$PID" 2>/dev/null || true; rm -rf "$TMP"' EXIT

"$BIN" -addr "$ADDR" -data-dir "$TMP/data" -fsync always 2>"$TMP/daemon.log" &
PID=$!
for i in $(seq 1 50); do
  if curl -sf "http://$ADDR/healthz" >/dev/null 2>&1; then break; fi
  if ! kill -0 "$PID" 2>/dev/null; then
    echo "bench-ingest: daemon died:" >&2; cat "$TMP/daemon.log" >&2; exit 1
  fi
  sleep 0.1
done

go run ./cmd/loggen -replay "$ADDR" -scale "$SCALE" -clients "$CLIENTS" \
  -batch "$BATCH" -rate 0 -duration "$DURATION" -bench-out "$TMP/replay.json" \
  | tee "$TMP/bench.txt"

# The fsync amortization line is the point of this benchmark: its absence
# means the daemon was not journaling (or /metrics went missing) and the
# run measured the wrong thing.
grep -q 'BenchmarkReplayFsyncsPer1kEntries' "$TMP/bench.txt" || {
  echo "bench-ingest: no fsyncs-per-entry line — daemon not journaling?" >&2
  cat "$TMP/daemon.log" >&2; exit 1
}

kill -TERM "$PID"
wait "$PID"

if [ "${COMPARE:-0}" = "1" ]; then
  go run ./cmd/benchjson -compare BENCH_ingest.json -threshold 40 -warn-only \
    <"$TMP/bench.txt"
else
  cp "$TMP/replay.json" BENCH_ingest.json
  echo "bench-ingest: wrote BENCH_ingest.json"
fi
