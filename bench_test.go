// Benchmarks regenerating the paper's tables and figures (one per
// experiment; see DESIGN.md's per-experiment index) plus the ablation
// benches for the design choices DESIGN.md calls out. The printable versions
// of the experiments live in cmd/experiments; the benchmarks here measure
// the work each experiment does.
package sqlclean_test

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"sqlclean"
	"sqlclean/internal/colstore"
	"sqlclean/internal/core"
	"sqlclean/internal/journal"
	"sqlclean/internal/dedup"
	"sqlclean/internal/exec"
	"sqlclean/internal/logmodel"
	"sqlclean/internal/obs"
	"sqlclean/internal/overlap"
	"sqlclean/internal/parallel"
	"sqlclean/internal/parsedlog"
	"sqlclean/internal/pattern"
	"sqlclean/internal/recommend"
	"sqlclean/internal/schema"
	"sqlclean/internal/skeleton"
	"sqlclean/internal/sketch"
	"sqlclean/internal/sqlparser"
	"sqlclean/internal/storage"
	"sqlclean/internal/stream"
	"sqlclean/internal/workload"
)

// benchScale keeps the per-iteration work small enough for -bench=. runs
// while still exercising every code path of the full pipeline.
const benchScale = 0.25

var (
	benchOnce sync.Once
	benchLog  logmodel.Log
	benchRes  *core.Result
)

func benchSetup(b *testing.B) (logmodel.Log, *core.Result) {
	b.Helper()
	benchOnce.Do(func() {
		benchLog, _ = workload.Generate(workload.DefaultConfig().Scale(benchScale))
		res, err := core.Run(benchLog, core.Config{})
		if err != nil {
			b.Fatal(err)
		}
		benchRes = res
	})
	return benchLog, benchRes
}

// ---------------------------------------------------------------------------
// Tables
// ---------------------------------------------------------------------------

// BenchmarkTable4DedupThreshold measures the duplicate-threshold sweep of
// Table 4 over the SELECT log.
func BenchmarkTable4DedupThreshold(b *testing.B) {
	log, _ := benchSetup(b)
	parsed, _ := parsedlog.Parse(log)
	selects := parsed.SelectsRaw()
	for _, th := range []struct {
		name string
		d    time.Duration
	}{
		{"1s", time.Second},
		{"10s", 10 * time.Second},
		{"unrestricted", dedup.Unrestricted},
	} {
		b.Run(th.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				out, _ := dedup.Remove(selects, th.d)
				if len(out) == 0 {
					b.Fatal("empty result")
				}
			}
		})
	}
}

// BenchmarkTable5Pipeline measures the full Fig. 1 pipeline (the results
// overview of Table 5 is a by-product of one run).
func BenchmarkTable5Pipeline(b *testing.B) {
	log, _ := benchSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.Run(log, core.Config{})
		if err != nil {
			b.Fatal(err)
		}
		if res.Report.FinalSize == 0 {
			b.Fatal("empty clean log")
		}
	}
}

// BenchmarkTable6TopAntipatterns measures aggregating detected instances
// into the most-popular-antipatterns table.
func BenchmarkTable6TopAntipatterns(b *testing.B) {
	_, res := benchSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := map[string]int{}
		for _, in := range res.Instances {
			rows[string(in.Kind)+"|"+in.Identity] += len(in.Indices)
		}
		if len(rows) == 0 {
			b.Fatal("no antipatterns")
		}
	}
}

// BenchmarkTable7TopPatterns measures re-mining templates over the removal
// log (the patterns that remain after cleaning).
func BenchmarkTable7TopPatterns(b *testing.B) {
	_, res := benchSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		parsed, _ := parsedlog.Parse(res.Removal)
		ts := pattern.Templates(parsed)
		if len(ts) == 0 {
			b.Fatal("no templates")
		}
	}
}

// BenchmarkTable8SWSSweep measures the 4×5 SWS threshold grid of Table 8.
func BenchmarkTable8SWSSweep(b *testing.B) {
	_, res := benchSetup(b)
	freqs := []float64{10, 1, 0.1, 0.01}
	pops := []int{1, 2, 4, 8, 16}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		grid := pattern.SWSSweep(res.Templates, len(res.PreClean), freqs, pops, 0.5)
		if len(grid) != len(pops) {
			b.Fatal("bad grid")
		}
	}
}

// ---------------------------------------------------------------------------
// §6.3 runtime experiment
// ---------------------------------------------------------------------------

type runtimeFixture struct {
	db        *storage.DB
	originals []string
	rewritten []string
	// packed holds one semicolon-joined batch per solvable instance — the
	// Pack refactoring of Example 6.
	packed []string
}

var (
	runtimeOnce sync.Once
	runtimeFix  runtimeFixture
)

func runtimeSetup(b *testing.B) runtimeFixture {
	b.Helper()
	runtimeOnce.Do(func() {
		cfg := workload.DefaultConfig()
		cfg.Humans, cfg.WebUISessions, cfg.SWSBots, cfg.SNCQueries = 0, 0, 0, 0
		cfg.CTHTrueGroups, cfg.CTHFalseGroups = 0, 0
		cfg.DWRuns, cfg.DSRuns, cfg.DFRuns = 20, 0, 5
		cfg.RunLenMin, cfg.RunLenMax = 30, 50
		log, _ := workload.Generate(cfg)
		res, err := core.Run(log, core.Config{})
		if err != nil {
			panic(err)
		}
		for _, in := range res.Instances {
			if !in.Solvable {
				continue
			}
			var members []string
			for _, idx := range in.Indices {
				members = append(members, res.Parsed[idx].Statement)
			}
			runtimeFix.originals = append(runtimeFix.originals, members...)
			runtimeFix.packed = append(runtimeFix.packed, strings.Join(members, "; "))
		}
		for _, r := range res.Replacements {
			runtimeFix.rewritten = append(runtimeFix.rewritten, r.Statement)
		}
		db := storage.NewDB(schema.SkyServer())
		tbl, _ := db.Table("photoprimary")
		all, _ := db.Table("photoobjall")
		// Insert rows for the objids the statements mention.
		seen := map[string]bool{}
		for _, s := range runtimeFix.originals {
			sel, err := sqlparser.ParseSelect(s)
			if err != nil {
				continue
			}
			in := skeleton.Analyze(sel)
			for _, p := range in.Predicates {
				for _, lit := range p.Literals {
					if lit.Kind != "num" || seen[lit.Val] {
						continue
					}
					seen[lit.Val] = true
					row := make(storage.Row, len(tbl.Def.Columns))
					for i, c := range tbl.Def.Columns {
						if c.Name == "objid" {
							var v int64
							for _, ch := range lit.Val {
								v = v*10 + int64(ch-'0')
							}
							row[i] = storage.Int(v)
						} else {
							row[i] = storage.Float(1)
						}
					}
					_ = tbl.Insert(row)
					_ = all.Insert(append(storage.Row{}, row...))
				}
			}
		}
		runtimeFix.db = db
	})
	return runtimeFix
}

// BenchmarkRuntimeOriginal executes the original antipattern statements.
func BenchmarkRuntimeOriginal(b *testing.B) {
	fix := runtimeSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := exec.New(fix.db)
		exec.RegisterSkyFuncs(eng)
		for _, s := range fix.originals {
			if _, err := eng.Execute(s); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(len(fix.originals)), "stmts/op")
}

// BenchmarkRuntimeRewritten executes the rewritten statements; the paper's
// §6.3 speedup is the cost-model ratio of the two runs (see
// cmd/experiments -run runtime).
func BenchmarkRuntimeRewritten(b *testing.B) {
	fix := runtimeSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := exec.New(fix.db)
		exec.RegisterSkyFuncs(eng)
		for _, s := range fix.rewritten {
			if _, err := eng.Execute(s); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(len(fix.rewritten)), "stmts/op")
}

// BenchmarkAblationPackVsMerge compares the three ways of issuing an
// antipattern instance's work: one statement per query (original), one
// batched request (the Pack refactoring of Example 6), and the merged
// single query (the paper's solving solution). Pack saves round trips only;
// merge saves round trips and server work — the paper's argument for
// merging. The per-op metric reports the virtual cost under the
// client-server cost model.
func BenchmarkAblationPackVsMerge(b *testing.B) {
	fix := runtimeSetup(b)
	model := exec.DefaultCostModel()
	run := func(b *testing.B, stmts []string, batch bool) {
		b.Helper()
		b.ReportAllocs()
		var cost time.Duration
		for i := 0; i < b.N; i++ {
			eng := exec.New(fix.db)
			exec.RegisterSkyFuncs(eng)
			for _, s := range stmts {
				var err error
				if batch {
					_, err = eng.ExecuteBatch(s)
				} else {
					_, err = eng.Execute(s)
				}
				if err != nil {
					b.Fatal(err)
				}
			}
			cost = eng.Stats.Cost(model)
		}
		b.ReportMetric(cost.Seconds(), "virtual-s/op")
	}
	b.Run("original", func(b *testing.B) { run(b, fix.originals, false) })
	b.Run("pack", func(b *testing.B) { run(b, fix.packed, true) })
	b.Run("merge", func(b *testing.B) { run(b, fix.rewritten, false) })
}

// ---------------------------------------------------------------------------
// Figures
// ---------------------------------------------------------------------------

// BenchmarkFig2aRankSeries measures building the before/after rank series of
// Fig. 2(a): templates of the pre-clean log with antipattern marks plus
// templates of the clean log.
func BenchmarkFig2aRankSeries(b *testing.B) {
	_, res := benchSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		anti := res.AntipatternTemplates()
		parsed, _ := parsedlog.Parse(res.Clean)
		after := pattern.Templates(parsed)
		if len(anti) == 0 || len(after) == 0 {
			b.Fatal("empty series")
		}
	}
}

// BenchmarkFig2bFrequencyPopularity measures the frequency/user-popularity
// scatter data of Fig. 2(b).
func BenchmarkFig2bFrequencyPopularity(b *testing.B) {
	log, _ := benchSetup(b)
	parsed, _ := parsedlog.Parse(log)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ts := pattern.Templates(parsed)
		lowPop := 0
		for _, t := range ts {
			if t.UserPopularity == 1 {
				lowPop++
			}
		}
		if lowPop == 0 {
			b.Fatal("no single-user patterns")
		}
	}
}

// BenchmarkFig2cNoUserInfo measures the minimal-input pipeline (timestamps
// only, §6.8) of Fig. 2(c).
func BenchmarkFig2cNoUserInfo(b *testing.B) {
	log, _ := benchSetup(b)
	stripped := log.StripUsers()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.Run(stripped, core.Config{})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Templates) == 0 {
			b.Fatal("no templates")
		}
	}
}

// BenchmarkFig2dCTHAggregation measures grouping CTH candidates by identity
// for Fig. 2(d).
func BenchmarkFig2dCTHAggregation(b *testing.B) {
	_, res := benchSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := map[string]int{}
		for _, in := range res.Instances {
			if in.Kind == sqlclean.KindCTH {
				rows[in.Identity] += len(in.Indices)
			}
		}
		if len(rows) == 0 {
			b.Fatal("no CTH candidates")
		}
	}
}

func clusterBoxes(b *testing.B, l logmodel.Log) []overlap.Box {
	b.Helper()
	parsed, _ := parsedlog.Parse(l)
	cache := map[*skeleton.Info]overlap.Box{}
	var boxes []overlap.Box
	for _, pe := range parsed {
		if pe.Info == nil {
			continue
		}
		bx, ok := cache[pe.Info]
		if !ok {
			bx = overlap.FromInfo(pe.Info)
			cache[pe.Info] = bx
		}
		boxes = append(boxes, bx)
	}
	return boxes
}

// BenchmarkFig3Clustering measures the §6.9 clustering on the three log
// variants (raw / clean / removal) at threshold 0.9.
func BenchmarkFig3Clustering(b *testing.B) {
	_, res := benchSetup(b)
	for _, v := range []struct {
		name string
		l    logmodel.Log
	}{
		{"raw", res.PreClean},
		{"cleaning", res.Clean},
		{"removal", res.Removal},
	} {
		boxes := clusterBoxes(b, v.l)
		b.Run(v.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				clusters := overlap.ClusterBoxes(boxes, 0.9)
				if len(clusters) == 0 {
					b.Fatal("no clusters")
				}
			}
		})
	}
}

// BenchmarkFig4ClusterSizes measures the cluster-size-by-rank computation of
// Fig. 4 (clustering plus descending-size summary).
func BenchmarkFig4ClusterSizes(b *testing.B) {
	_, res := benchSetup(b)
	boxes := clusterBoxes(b, res.Clean)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := overlap.Summarize(overlap.ClusterBoxes(boxes, 0.9))
		if !sort.SliceIsSorted(st.Sizes, func(a, c int) bool { return st.Sizes[a] > st.Sizes[c] }) {
			b.Fatal("sizes not sorted")
		}
	}
}

// synthOverlapBoxes builds n boxes drawn from `distinct` SkyServer-bot-shaped
// templates (htmid windows marching across the sky in a few widths, with
// occasional ra constraints). distinct == n gives the grid's worst input for
// a leader scan — every box founds or probes against a long leader list —
// while a small distinct count models the crawler-dominated real mix.
func synthOverlapBoxes(n, distinct int) []overlap.Box {
	widths := []float64{1e5, 2e5, 5e5}
	templates := make([]overlap.Box, distinct)
	for i := range templates {
		w := widths[i%len(widths)]
		lo := float64(i) * 1e5
		bx := overlap.Box{
			Tables: map[string]bool{"photoobj": true},
			Dims:   map[string]overlap.Dim{"htmid": {Interval: overlap.Interval{Lo: lo, Hi: lo + w}}},
		}
		if i%7 == 0 {
			ra := float64(i % 360)
			bx.Dims["ra"] = overlap.Dim{Interval: overlap.Interval{Lo: ra, Hi: ra + 0.5}}
		}
		templates[i] = bx
	}
	boxes := make([]overlap.Box, n)
	for i := range boxes {
		boxes[i] = templates[i%distinct]
	}
	return boxes
}

// BenchmarkClusterBoxes is the quadratic leader-scan baseline at 1k and 10k
// boxes, low (64 distinct) and high (all distinct) distinctness.
func BenchmarkClusterBoxes(b *testing.B) {
	for _, c := range []struct {
		name        string
		n, distinct int
	}{
		{"1k_low", 1000, 64},
		{"1k_high", 1000, 1000},
		{"10k_low", 10000, 64},
		{"10k_high", 10000, 10000},
	} {
		boxes := synthOverlapBoxes(c.n, c.distinct)
		b.Run(c.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if len(overlap.ClusterBoxes(boxes, 0.9)) == 0 {
					b.Fatal("no clusters")
				}
			}
		})
	}
}

// BenchmarkClusterBoxesGrid is the bucketed replacement on the same inputs
// (serial grid; the parallel driver is exercised by the pipeline benches).
func BenchmarkClusterBoxesGrid(b *testing.B) {
	for _, c := range []struct {
		name        string
		n, distinct int
	}{
		{"1k_low", 1000, 64},
		{"1k_high", 1000, 1000},
		{"10k_low", 10000, 64},
		{"10k_high", 10000, 10000},
	} {
		boxes := synthOverlapBoxes(c.n, c.distinct)
		b.Run(c.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if len(overlap.ClusterBoxesGrid(boxes, 0.9)) == 0 {
					b.Fatal("no clusters")
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Ablations (DESIGN.md)
// ---------------------------------------------------------------------------

// BenchmarkAblationFingerprintVsLoose compares the exact-fingerprint
// template matching (used) against a looser clause-wise grouping that first
// buckets by FROM skeleton and then compares the remaining clauses pairwise.
func BenchmarkAblationFingerprintVsLoose(b *testing.B) {
	log, _ := benchSetup(b)
	parsed, _ := parsedlog.Parse(log)
	sel := parsed.Selects()

	b.Run("fingerprint", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			counts := map[uint64]int{}
			for _, pe := range sel {
				counts[pe.Info.Fingerprint]++
			}
			if len(counts) == 0 {
				b.Fatal("no templates")
			}
		}
	})
	b.Run("loose", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			type repr struct{ swc, ssc string }
			buckets := map[string][]repr{}
			matched := 0
			for _, pe := range sel {
				in := pe.Info
				found := false
				for _, r := range buckets[in.SFC] {
					if r.swc == in.SWC && strings.HasPrefix(r.ssc, in.SSC) {
						found = true
						break
					}
				}
				if found {
					matched++
					continue
				}
				buckets[in.SFC] = append(buckets[in.SFC], repr{in.SWC, in.SSC})
			}
			if matched == 0 {
				b.Fatal("nothing matched")
			}
		}
	})
}

// BenchmarkAblationKeyCheck compares Stifle detection with and without
// Definition 11's key-attribute axiom.
func BenchmarkAblationKeyCheck(b *testing.B) {
	log, _ := benchSetup(b)
	for _, v := range []struct {
		name    string
		disable bool
	}{{"with-key-check", false}, {"without-key-check", true}} {
		b.Run(v.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := core.Run(log, core.Config{DisableKeyCheck: v.disable})
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Instances) == 0 {
					b.Fatal("no instances")
				}
			}
		})
	}
}

// BenchmarkAblationDedupStrategy compares the streaming hash-window dedup
// (used) against a sort-based batch dedup.
func BenchmarkAblationDedupStrategy(b *testing.B) {
	log, _ := benchSetup(b)
	parsed, _ := parsedlog.Parse(log)
	selects := parsed.SelectsRaw()

	b.Run("hash-window", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			out, _ := dedup.Remove(selects, time.Second)
			if len(out) == 0 {
				b.Fatal("empty")
			}
		}
	})
	b.Run("sort-based", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			work := selects.Clone()
			sort.SliceStable(work, func(x, y int) bool {
				if work[x].User != work[y].User {
					return work[x].User < work[y].User
				}
				if work[x].Statement != work[y].Statement {
					return work[x].Statement < work[y].Statement
				}
				return work[x].Time.Before(work[y].Time)
			})
			kept := work[:0]
			for j, e := range work {
				if j > 0 && work[j-1].User == e.User && work[j-1].Statement == e.Statement &&
					e.Time.Sub(work[j-1].Time) <= time.Second {
					continue
				}
				kept = append(kept, e)
			}
			out := logmodel.Log(kept).Clone()
			out.SortStable()
			if len(out) == 0 {
				b.Fatal("empty")
			}
		}
	})
}

// BenchmarkAblationFixpoint compares one cleaning pass (used; §5.5 found a
// 0.09 % residue) against cleaning to a fixpoint.
func BenchmarkAblationFixpoint(b *testing.B) {
	log, _ := benchSetup(b)
	b.Run("single-pass", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.Run(log, core.Config{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("fixpoint", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cur := log
			for pass := 0; pass < 5; pass++ {
				res, err := core.Run(cur, core.Config{NoDedup: pass > 0})
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Clean) == len(cur) {
					break
				}
				cur = res.Clean
			}
		}
	})
}

// ---------------------------------------------------------------------------
// Microbenchmarks for the hot substrates
// ---------------------------------------------------------------------------

// BenchmarkParseStatement measures parsing one SkyServer-style statement.
func BenchmarkParseStatement(b *testing.B) {
	const q = "SELECT g.objid, g.ra, g.dec FROM photoobjall as g JOIN fGetNearbyObjEq(180.5, 2.3, 1.0) as gn on g.objid=gn.objid LEFT OUTER JOIN specobj s ON s.bestobjid=gn.objid"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sqlparser.ParseSelect(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSkeletonize measures template extraction for a parsed statement.
func BenchmarkSkeletonize(b *testing.B) {
	sel, err := sqlparser.ParseSelect("SELECT p.objid, p.ra FROM fGetObjFromRect(1, 2, 3, 4) n, photoprimary p WHERE n.objid = p.objid AND p.r BETWEEN 14 AND 18")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in := skeleton.Analyze(sel)
		if in.Fingerprint == 0 {
			b.Fatal("zero fingerprint")
		}
	}
}

// BenchmarkParsedLogCache measures parsing a full log with the
// statement-text cache (real logs repeat a few templates millions of times).
func BenchmarkParsedLogCache(b *testing.B) {
	log, _ := benchSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pl, st := parsedlog.Parse(log)
		if st.Selects == 0 || len(pl) != len(log) {
			b.Fatal("bad parse")
		}
	}
}

// BenchmarkParseParallel measures the sharded concurrent parser at several
// worker counts against the same log; workers=1 is the serial fallback. On
// multi-core hosts the speedup approaches the worker count until the memory
// bus saturates; on a single-core host all rows collapse to the serial cost.
func BenchmarkParseParallel(b *testing.B) {
	log, _ := benchSetup(b)
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				pl, st := parsedlog.ParseParallel(log, w)
				if st.Selects == 0 || len(pl) != len(log) {
					b.Fatal("bad parse")
				}
			}
		})
	}
}

// BenchmarkPipelineParallel measures the full pipeline at several worker
// counts (workers=1 is the serial path), making the serial-vs-parallel
// crossover visible in BENCH snapshots. Compare against the seed's
// BenchmarkTable5Pipeline for the total win: the single-parse rework speeds
// up every worker count, and parallelism stacks on top where cores exist.
func BenchmarkPipelineParallel(b *testing.B) {
	log, _ := benchSetup(b)
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := core.Run(log, core.Config{Workers: w})
				if err != nil {
					b.Fatal(err)
				}
				if res.Report.FinalSize == 0 {
					b.Fatal("empty clean log")
				}
			}
		})
	}
}

// BenchmarkPipelineSeedSerial reproduces the seed pipeline's cost — the new
// serial run plus the fresh-cache re-parse of the pre-clean log the seed's
// stage 3 performed — so the algorithmic part of the PipelineParallel win
// stays measurable after the seed code is gone.
func BenchmarkPipelineSeedSerial(b *testing.B) {
	log, _ := benchSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.Run(log, core.Config{Workers: 1})
		if err != nil {
			b.Fatal(err)
		}
		reparsed, _ := parsedlog.Parse(res.PreClean)
		if len(reparsed) == 0 {
			b.Fatal("bad parse")
		}
	}
}

// benchBig caches a scale-4 (~40k entry) log: large enough that the sharded
// dedup takes its parallel path (it falls back to the serial window below a
// few thousand entries, where fan-out costs more than it saves).
var (
	benchBigOnce sync.Once
	benchBigLog  logmodel.Log
)

func benchBigSetup(b *testing.B) logmodel.Log {
	b.Helper()
	benchBigOnce.Do(func() {
		benchBigLog, _ = workload.Generate(workload.DefaultConfig().Scale(4))
		benchBigLog.SortStable()
	})
	return benchBigLog
}

// BenchmarkDedupSharded measures §5.2 duplicate deletion: the serial sliding
// window against the sharded variant at several worker counts on the scale-4
// log. The sharded form partitions by (user, statement) hash — every dedup
// key lives wholly in one shard, so the per-shard windows are independent.
// On multi-core hosts the speedup approaches the worker count; on a
// single-core host the rows collapse to the serial cost plus the bucketing
// passes.
func BenchmarkDedupSharded(b *testing.B) {
	log := benchBigSetup(b)
	b.Run("serial", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			out, res := dedup.Remove(log, time.Second)
			if len(out) == 0 || res.Removed == 0 {
				b.Fatal("bad dedup")
			}
		}
	})
	for _, w := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				out, res := dedup.RemoveSharded(log, time.Second, w)
				if len(out) == 0 || res.Removed == 0 {
					b.Fatal("bad dedup")
				}
			}
		})
	}
}

// BenchmarkStreamSharded measures the streaming pipeline: the serial
// processor against the user-sharded engine at several worker counts
// (sessions are per user, so partitions process concurrently end to end —
// parse, dedup, detect, solve).
func BenchmarkStreamSharded(b *testing.B) {
	log, _ := benchSetup(b)
	sorted := append(logmodel.Log(nil), log...)
	sorted.SortStable()
	b.Run("serial", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			out, st, err := stream.Run(sorted, stream.Config{})
			if err != nil {
				b.Fatal(err)
			}
			if len(out) == 0 || st.Out == 0 {
				b.Fatal("empty stream output")
			}
		}
	})
	for _, w := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				out, st, err := stream.RunSharded(sorted, stream.ShardedConfig{Workers: w})
				if err != nil {
					b.Fatal(err)
				}
				if len(out) == 0 || st.Out == 0 {
					b.Fatal("empty stream output")
				}
			}
		})
	}
}

// BenchmarkSketchIngest measures the sketch layer's per-entry hot path: one
// HLL distinct-identity update plus one SpaceSaving heavy-hitter update, the
// cost every accepted entry pays when the daemon runs with sketches enabled.
func BenchmarkSketchIngest(b *testing.B) {
	_, res := benchSetup(b)
	parsed := res.Parsed
	if len(parsed) == 0 {
		b.Fatal("empty parsed log")
	}
	// Skeleton texts are cached by the stream's template aggregates; render
	// them outside the timer so the bench isolates the sketch updates.
	skeletons := make([]string, len(parsed))
	for i := range parsed {
		skeletons[i] = parsed[i].Info.SkeletonText()
	}
	sk := sketch.New(sketch.Config{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pe := parsed[i%len(parsed)]
		sk.HLL.AddString(pe.User)
		sk.Top.Observe(pe.Info.Fingerprint, skeletons[i%len(parsed)])
	}
	if sk.HLL.Occupied() == 0 {
		b.Fatal("sketch saw no identities")
	}
}

// BenchmarkRecommendTraining measures training the §7 next-query
// recommender on the pre-clean log.
func BenchmarkRecommendTraining(b *testing.B) {
	_, res := benchSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := recommend.Train(res.Parsed, res.Sessions)
		if m.Observations() == 0 {
			b.Fatal("no observations")
		}
	}
}

// BenchmarkRecommendContamination measures the contamination evaluation of
// a trained model.
func BenchmarkRecommendContamination(b *testing.B) {
	_, res := benchSetup(b)
	m := recommend.Train(res.Parsed, res.Sessions)
	anti := res.AntipatternTemplates()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := m.Contamination(anti)
		if rep.States == 0 {
			b.Fatal("no states")
		}
	}
}

// BenchmarkAblationClusterFastVsSlow compares the naive O(n·k) leader
// clustering against the identical-box-deduplicated variant that exploits
// the paper's observation that distances are almost always 0 or 1.
func BenchmarkAblationClusterFastVsSlow(b *testing.B) {
	_, res := benchSetup(b)
	boxes := clusterBoxes(b, res.PreClean)
	b.Run("naive", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if len(overlap.ClusterBoxes(boxes, 0.9)) == 0 {
				b.Fatal("no clusters")
			}
		}
	})
	b.Run("dedup", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if len(overlap.ClusterBoxesFast(boxes, 0.9)) == 0 {
				b.Fatal("no clusters")
			}
		}
	})
}

// BenchmarkObsOverhead measures the cost of the observability layer: the
// same pipeline run with no metrics sink (the nil fast path every library
// caller gets by default) versus a fully attached registry with the worker
// pool instrumented. The two must stay within a few percent of each other —
// the contract that lets instrumentation stay on in production.
func BenchmarkObsOverhead(b *testing.B) {
	log, _ := benchSetup(b)
	b.Run("off", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := core.Run(log, core.Config{})
			if err != nil {
				b.Fatal(err)
			}
			if res.Report.FinalSize == 0 {
				b.Fatal("empty clean log")
			}
		}
	})
	b.Run("on", func(b *testing.B) {
		reg := obs.NewRegistry()
		parallel.Instrument(reg)
		defer parallel.Instrument(nil)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := core.Run(log, core.Config{Metrics: reg})
			if err != nil {
				b.Fatal(err)
			}
			if res.Report.FinalSize == 0 {
				b.Fatal("empty clean log")
			}
		}
	})
}

// benchColstoreSetup journals the bench log into a fresh WAL directory
// (small segments, so compaction produces several blocks) and returns it
// together with the journaled byte size and the offline classifier the
// -compact subcommand uses. The classifier's parser caches by statement
// text, so repeated templates cost a map hit — the daemon's steady state.
func benchColstoreSetup(b *testing.B) (walDir string, walBytes int64, classify colstore.Classifier) {
	b.Helper()
	log, _ := benchSetup(b)
	walDir = filepath.Join(b.TempDir(), "wal")
	jw, err := journal.Open(journal.Options{Dir: walDir, SegmentBytes: 64 << 10, Policy: journal.FsyncNever})
	if err != nil {
		b.Fatal(err)
	}
	var buf []byte
	for _, e := range log {
		buf = journal.EncodeEntry(buf[:0], e)
		if _, err := jw.Append(buf); err != nil {
			b.Fatal(err)
		}
	}
	if err := jw.Close(); err != nil {
		b.Fatal(err)
	}
	segs, err := filepath.Glob(filepath.Join(walDir, "wal-*.log"))
	if err != nil {
		b.Fatal(err)
	}
	for _, s := range segs {
		fi, err := os.Stat(s)
		if err != nil {
			b.Fatal(err)
		}
		walBytes += fi.Size()
	}
	parser := parsedlog.NewParser()
	classify = func(stmt string) colstore.Classification {
		pe := parser.ParseEntry(logmodel.Entry{Statement: stmt})
		if pe.Info == nil {
			return colstore.Classification{}
		}
		return colstore.Classification{EngineFP: pe.Info.Fingerprint}
	}
	return walDir, walBytes, classify
}

// BenchmarkColstoreCompact measures compacting a full WAL directory into
// columnar blocks — the work the daemon's snapshot path does under -retain.
// The compressed-ratio metric is block bytes over journal bytes (the
// acceptance bar is ≤0.20 on the 100k-entry log).
func BenchmarkColstoreCompact(b *testing.B) {
	log, _ := benchSetup(b)
	walDir, walBytes, classify := benchColstoreSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	var blockBytes int64
	for i := 0; i < b.N; i++ {
		st, err := colstore.Open(colstore.Options{Dir: filepath.Join(b.TempDir(), fmt.Sprintf("col%d", i))})
		if err != nil {
			b.Fatal(err)
		}
		n, err := st.CompactWALDir(walDir, true, classify)
		if err != nil {
			b.Fatal(err)
		}
		if n != len(log) {
			b.Fatalf("compacted %d of %d entries", n, len(log))
		}
		_, blockBytes = st.Stats()
	}
	b.ReportMetric(float64(len(log)), "entries/op")
	if walBytes > 0 {
		b.ReportMetric(float64(blockBytes)/float64(walBytes), "compressed-ratio")
	}
}

// BenchmarkColstoreScan measures reading every entry back out of the blocks
// — the full-decode path behind sqlclean -scan and the server's retention
// reads (GET /history takes the cheaper index-plus-two-columns path).
func BenchmarkColstoreScan(b *testing.B) {
	log, _ := benchSetup(b)
	walDir, _, classify := benchColstoreSetup(b)
	dir := filepath.Join(b.TempDir(), "col")
	st, err := colstore.Open(colstore.Options{Dir: dir})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := st.CompactWALDir(walDir, true, classify); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		err := colstore.NewReader(dir).Scan(colstore.ScanOptions{}, func(_ uint64, e logmodel.Entry) error {
			if e.Statement == "" {
				return fmt.Errorf("empty statement at entry %d", n)
			}
			n++
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
		if n != len(log) {
			b.Fatalf("scanned %d of %d entries", n, len(log))
		}
	}
	b.ReportMetric(float64(len(log)), "entries/op")
}

// BenchmarkStreamPipeline measures the bounded-memory streaming pipeline
// against the batch pipeline (BenchmarkTable5Pipeline) on the same log.
func BenchmarkStreamPipeline(b *testing.B) {
	log, _ := benchSetup(b)
	sorted := log.Clone()
	sorted.SortStable()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, _, err := stream.Run(sorted, stream.Config{})
		if err != nil {
			b.Fatal(err)
		}
		if len(out) == 0 {
			b.Fatal("empty output")
		}
	}
}
