package traffic

import (
	"strings"
	"testing"
	"time"

	"sqlclean/internal/logmodel"
	"sqlclean/internal/workload"
)

func TestComputeEmptyLog(t *testing.T) {
	rep := Compute(nil, Options{})
	if rep.Entries != 0 || rep.Users != 0 || len(rep.ByPeriod) != 0 {
		t.Errorf("empty report: %+v", rep)
	}
}

func TestComputeBasic(t *testing.T) {
	base := time.Date(2003, 6, 1, 0, 0, 0, 0, time.UTC)
	l := logmodel.Log{
		{Time: base, User: "bot", Statement: "SELECT a FROM t WHERE id = 1"},
		{Time: base.Add(time.Second), User: "bot", Statement: "SELECT a FROM t WHERE id = 2"},
		{Time: base.Add(2 * time.Second), User: "bot", Statement: "SELECT a FROM t WHERE id = 3"},
		{Time: base.Add(40 * 24 * time.Hour), User: "human", Statement: "SELECT count(*) FROM t"},
		{Time: base.Add(40*24*time.Hour + time.Minute), User: "human", Statement: "INSERT INTO t VALUES (1)"},
	}
	rep := Compute(l, Options{})
	if rep.Entries != 5 || rep.Users != 2 {
		t.Fatalf("report: %+v", rep)
	}
	// Two 30-day buckets.
	if len(rep.ByPeriod) != 2 || rep.ByPeriod[0].Queries != 3 || rep.ByPeriod[1].Queries != 2 {
		t.Errorf("periods: %+v", rep.ByPeriod)
	}
	if rep.Classes["select"] != 4 || rep.Classes["dml"] != 1 {
		t.Errorf("classes: %v", rep.Classes)
	}
	if rep.Sessions.Count != 2 || rep.Sessions.MaxLength != 3 {
		t.Errorf("sessions: %+v", rep.Sessions)
	}
	if rep.TopUsers[0].User != "bot" || rep.TopUsers[0].Queries != 3 {
		t.Errorf("top users: %+v", rep.TopUsers)
	}
	// 2 users → top 1 % rounds up to 1 user → 3/5 concentration.
	if rep.Concentration != 0.6 {
		t.Errorf("concentration: %v", rep.Concentration)
	}
	s := rep.String()
	for _, want := range []string{"entries: 5", "select=4", "top users"} {
		if !strings.Contains(s, want) {
			t.Errorf("report text missing %q:\n%s", want, s)
		}
	}
}

func TestBotConcentrationOnWorkload(t *testing.T) {
	l, _ := workload.Generate(workload.DefaultConfig().Scale(0.5))
	rep := Compute(l, Options{})
	// The SkyServer reports' signature: a handful of IPs (bots) dominate
	// traffic volume while humans dominate the user count.
	if rep.Concentration < 0.1 {
		t.Errorf("concentration: %v", rep.Concentration)
	}
	if rep.Users < 100 {
		t.Errorf("users: %d", rep.Users)
	}
	if rep.TopUsers[0].Queries < 100 {
		t.Errorf("top user: %+v", rep.TopUsers[0])
	}
}

func TestOptionsDefaultsAndTopN(t *testing.T) {
	l, _ := workload.Generate(workload.DefaultConfig().Scale(0.2))
	rep := Compute(l, Options{TopN: 3})
	if len(rep.TopUsers) != 3 {
		t.Errorf("topN: %d", len(rep.TopUsers))
	}
	for i := 1; i < len(rep.TopUsers); i++ {
		if rep.TopUsers[i-1].Queries < rep.TopUsers[i].Queries {
			t.Errorf("top users unsorted: %+v", rep.TopUsers)
		}
	}
}
