// Package traffic computes SkyServer-Traffic-Report-style statistics over a
// query log — the descriptive companion analyses of the papers the case
// study builds on (Singh et al., "SkyServer Traffic Report — The First Five
// Years" [9]; Raddick et al., "Ten Years of SkyServer" [10, 11]): activity
// per period, user concentration, session shapes, and statement-class
// composition. These views contextualize antipattern findings: bot-driven
// traffic dominates volume while humans dominate the distinct-user counts.
package traffic

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"sqlclean/internal/logmodel"
	"sqlclean/internal/parsedlog"
	"sqlclean/internal/session"
	"sqlclean/internal/sqlast"
)

// PeriodStat is activity within one time bucket.
type PeriodStat struct {
	Start   time.Time
	Queries int
	Users   int
}

// UserStat is one user's activity.
type UserStat struct {
	User    string
	Queries int
	// Sessions is the number of bursts (gap-separated) the user produced.
	Sessions int
}

// SessionStat summarizes session shapes.
type SessionStat struct {
	Count int
	// MeanLength and MaxLength count queries per session.
	MeanLength float64
	MaxLength  int
	// MeanDuration is the mean time between a session's first and last
	// query.
	MeanDuration time.Duration
}

// Report is the full traffic report.
type Report struct {
	Entries  int
	Users    int
	Span     time.Duration
	ByPeriod []PeriodStat
	TopUsers []UserStat
	Sessions SessionStat
	// Classes counts statements per class (select, dml, ddl, exec, error).
	Classes map[string]int
	// Concentration is the share of all queries issued by the top 1 % of
	// users (rounded up) — the "machine download" signature: a handful of
	// IPs produce most traffic.
	Concentration float64
}

// Options configure report computation.
type Options struct {
	// Period is the bucketing width for ByPeriod; zero selects 30 days.
	Period time.Duration
	// TopN bounds TopUsers; zero selects 10.
	TopN int
	// SessionGap splits sessions; zero selects 30 minutes.
	SessionGap time.Duration
}

func (o Options) withDefaults() Options {
	if o.Period == 0 {
		o.Period = 30 * 24 * time.Hour
	}
	if o.TopN == 0 {
		o.TopN = 10
	}
	if o.SessionGap == 0 {
		o.SessionGap = 30 * time.Minute
	}
	return o
}

// Compute builds the traffic report for a time-sorted log.
func Compute(l logmodel.Log, opt Options) Report {
	opt = opt.withDefaults()
	rep := Report{Entries: len(l), Classes: map[string]int{}}
	if len(l) == 0 {
		return rep
	}

	// Statement classes.
	parsed, _ := parsedlog.Parse(l)
	for _, pe := range parsed {
		rep.Classes[pe.Class.String()]++
	}
	_ = sqlast.ClassSelect // explicit dependency: classes are sqlast classes

	// Per-period activity.
	start := l[0].Time
	rep.Span = l[len(l)-1].Time.Sub(start)
	type bucket struct {
		queries int
		users   map[string]bool
	}
	buckets := map[int]*bucket{}
	perUser := map[string]int{}
	for _, e := range l {
		i := int(e.Time.Sub(start) / opt.Period)
		b, ok := buckets[i]
		if !ok {
			b = &bucket{users: map[string]bool{}}
			buckets[i] = b
		}
		b.queries++
		b.users[e.User] = true
		perUser[e.User]++
	}
	var idxs []int
	for i := range buckets {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	for _, i := range idxs {
		rep.ByPeriod = append(rep.ByPeriod, PeriodStat{
			Start:   start.Add(time.Duration(i) * opt.Period),
			Queries: buckets[i].queries,
			Users:   len(buckets[i].users),
		})
	}
	rep.Users = len(perUser)

	// Sessions.
	sessions := session.Build(l, session.Options{MaxGap: opt.SessionGap})
	rep.Sessions.Count = len(sessions)
	perUserSessions := map[string]int{}
	totalLen := 0
	var totalDur time.Duration
	for _, s := range sessions {
		perUserSessions[s.User]++
		totalLen += s.Len()
		if s.Len() > rep.Sessions.MaxLength {
			rep.Sessions.MaxLength = s.Len()
		}
		first := l[s.Indices[0]].Time
		last := l[s.Indices[len(s.Indices)-1]].Time
		totalDur += last.Sub(first)
	}
	if len(sessions) > 0 {
		rep.Sessions.MeanLength = float64(totalLen) / float64(len(sessions))
		rep.Sessions.MeanDuration = totalDur / time.Duration(len(sessions))
	}

	// Top users and concentration.
	users := make([]UserStat, 0, len(perUser))
	for u, n := range perUser {
		users = append(users, UserStat{User: u, Queries: n, Sessions: perUserSessions[u]})
	}
	sort.Slice(users, func(i, j int) bool {
		if users[i].Queries != users[j].Queries {
			return users[i].Queries > users[j].Queries
		}
		return users[i].User < users[j].User
	})
	onePct := (len(users) + 99) / 100
	if onePct < 1 {
		onePct = 1
	}
	topQueries := 0
	for i := 0; i < onePct && i < len(users); i++ {
		topQueries += users[i].Queries
	}
	rep.Concentration = float64(topQueries) / float64(len(l))
	if len(users) > opt.TopN {
		users = users[:opt.TopN]
	}
	rep.TopUsers = users
	return rep
}

// String renders the report as text.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "entries: %d, users: %d, span: %v\n", r.Entries, r.Users, r.Span.Round(time.Hour))
	fmt.Fprintf(&b, "classes:")
	var classNames []string
	for c := range r.Classes {
		classNames = append(classNames, c)
	}
	sort.Strings(classNames)
	for _, c := range classNames {
		fmt.Fprintf(&b, " %s=%d", c, r.Classes[c])
	}
	fmt.Fprintln(&b)
	fmt.Fprintf(&b, "sessions: %d (mean %.1f queries, max %d, mean duration %v)\n",
		r.Sessions.Count, r.Sessions.MeanLength, r.Sessions.MaxLength, r.Sessions.MeanDuration.Round(time.Second))
	fmt.Fprintf(&b, "top-1%% of users issue %.1f%% of all queries\n", 100*r.Concentration)
	fmt.Fprintf(&b, "top users:\n")
	for _, u := range r.TopUsers {
		fmt.Fprintf(&b, "  %-16s %7d queries in %d sessions\n", u.User, u.Queries, u.Sessions)
	}
	return b.String()
}
