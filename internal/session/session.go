// Package session groups a query log into per-user sessions. Definition 8
// of the paper requires the queries of a pattern instance to (i) come from
// one user, (ii) be consecutive in that user's stream, and (iii) have short
// time gaps. Grouping each user's time-ordered queries and splitting on
// large gaps (or on a change of the logged session label) yields exactly the
// candidate windows the pattern and antipattern detectors scan.
package session

import (
	"sort"
	"time"

	"sqlclean/internal/logmodel"
	"sqlclean/internal/parallel"
)

// Session is one user's burst of consecutive queries. Indices refer to
// positions in the log the session was built from.
type Session struct {
	User    string
	Indices []int
}

// Len returns the number of queries in the session.
func (s Session) Len() int { return len(s.Indices) }

// Options configure sessionization.
type Options struct {
	// MaxGap splits a session when two consecutive queries of the same user
	// are further apart. Zero or negative means no gap-based splitting.
	MaxGap time.Duration
	// SplitOnLabel additionally splits when the logged session label
	// changes (empty labels never split).
	SplitOnLabel bool
}

// Build groups the log into sessions. When the log has no user information
// (all User fields empty), every query is attributed to one anonymous user,
// matching the paper's minimal-input mode (§6.8). Sessions are returned in
// order of their first query.
func Build(l logmodel.Log, opt Options) []Session {
	return BuildParallel(l, opt, 1)
}

// splitUser cuts one user's index stream into sessions at MaxGap /
// label-change boundaries.
func splitUser(l logmodel.Log, u string, idxs []int, opt Options) []Session {
	var out []Session
	cur := Session{User: u}
	for k, idx := range idxs {
		if k > 0 {
			prev := idxs[k-1]
			split := false
			if opt.MaxGap > 0 && l[idx].Time.Sub(l[prev].Time) > opt.MaxGap {
				split = true
			}
			if opt.SplitOnLabel && l[idx].Session != "" && l[prev].Session != "" && l[idx].Session != l[prev].Session {
				split = true
			}
			if split {
				out = append(out, cur)
				cur = Session{User: u}
			}
		}
		cur.Indices = append(cur.Indices, idx)
	}
	if len(cur.Indices) > 0 {
		out = append(out, cur)
	}
	return out
}

// BuildParallel is Build using up to `workers` goroutines. Users are natural
// partition boundaries — a session never spans two users — so the per-user
// splitting fans out while grouping and the final ordering sort stay the
// serial code. Output is bit-identical to Build for every worker count: the
// fan-out writes each user's sessions into that user's slot, the flatten
// walks users in first-appearance order (the serial emission order), and the
// final stable sort of an identical pre-order yields an identical result.
func BuildParallel(l logmodel.Log, opt Options, workers int) []Session {
	// Group indices per user, preserving log order (the log is expected to
	// be sorted by time already).
	perUser := map[string][]int{}
	var userOrder []string
	for i, e := range l {
		if _, ok := perUser[e.User]; !ok {
			userOrder = append(userOrder, e.User)
		}
		perUser[e.User] = append(perUser[e.User], i)
	}

	perUserSessions := parallel.Map(workers, userOrder, func(_ int, u string) []Session {
		return splitUser(l, u, perUser[u], opt)
	})
	var out []Session
	for _, ss := range perUserSessions {
		out = append(out, ss...)
	}

	// Order sessions by the time of their first query for deterministic,
	// log-order reporting.
	sort.SliceStable(out, func(i, j int) bool {
		a, b := l[out[i].Indices[0]], l[out[j].Indices[0]]
		if !a.Time.Equal(b.Time) {
			return a.Time.Before(b.Time)
		}
		return a.Seq < b.Seq
	})
	return out
}
