package session

import (
	"reflect"
	"testing"
	"time"

	"sqlclean/internal/workload"
)

// TestBuildParallelDeterminism pins user-boundary fan-out: BuildParallel
// must return byte-identical sessions to the serial Build for every worker
// count, across the gap/label option combinations the pipeline uses.
func TestBuildParallelDeterminism(t *testing.T) {
	log, _ := workload.Generate(workload.DefaultConfig().Scale(0.1))
	opts := []Options{
		{MaxGap: 5 * time.Minute, SplitOnLabel: true},
		{MaxGap: 30 * time.Second},
		{SplitOnLabel: true},
		{},
	}
	for _, opt := range opts {
		want := Build(log, opt)
		if len(want) == 0 {
			t.Fatalf("options %+v: no sessions from seeded workload", opt)
		}
		for _, workers := range []int{1, 2, 4, 8} {
			got := BuildParallel(log, opt, workers)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("options %+v workers=%d: sessions differ (%d vs %d)", opt, workers, len(got), len(want))
			}
		}
	}
}
