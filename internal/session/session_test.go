package session

import (
	"testing"
	"time"

	"sqlclean/internal/logmodel"
)

func mk(user, sess string, at time.Duration) logmodel.Entry {
	base := time.Date(2003, 6, 1, 0, 0, 0, 0, time.UTC)
	return logmodel.Entry{User: user, Session: sess, Time: base.Add(at), Statement: "SELECT 1"}
}

func TestGroupsByUser(t *testing.T) {
	l := logmodel.Log{
		mk("u1", "", 0),
		mk("u2", "", time.Second),
		mk("u1", "", 2*time.Second),
	}
	out := Build(l, Options{})
	if len(out) != 2 {
		t.Fatalf("sessions: %d", len(out))
	}
	var u1 *Session
	for i := range out {
		if out[i].User == "u1" {
			u1 = &out[i]
		}
	}
	if u1 == nil || len(u1.Indices) != 2 || u1.Indices[0] != 0 || u1.Indices[1] != 2 {
		t.Fatalf("u1 session: %+v", out)
	}
}

func TestGapSplitting(t *testing.T) {
	l := logmodel.Log{
		mk("u", "", 0),
		mk("u", "", time.Minute),
		mk("u", "", time.Hour), // big gap
		mk("u", "", time.Hour+time.Minute),
	}
	out := Build(l, Options{MaxGap: 5 * time.Minute})
	if len(out) != 2 || out[0].Len() != 2 || out[1].Len() != 2 {
		t.Fatalf("sessions: %+v", out)
	}
}

func TestNoGapSplittingWhenDisabled(t *testing.T) {
	l := logmodel.Log{
		mk("u", "", 0),
		mk("u", "", 100*time.Hour),
	}
	out := Build(l, Options{})
	if len(out) != 1 || out[0].Len() != 2 {
		t.Fatalf("sessions: %+v", out)
	}
}

func TestLabelSplitting(t *testing.T) {
	l := logmodel.Log{
		mk("u", "s1", 0),
		mk("u", "s1", time.Second),
		mk("u", "s2", 2*time.Second),
	}
	out := Build(l, Options{SplitOnLabel: true})
	if len(out) != 2 {
		t.Fatalf("sessions: %+v", out)
	}
	// Empty labels never split.
	l = logmodel.Log{mk("u", "", 0), mk("u", "s1", time.Second), mk("u", "", 2*time.Second)}
	out = Build(l, Options{SplitOnLabel: true})
	if len(out) != 1 {
		t.Fatalf("empty labels split: %+v", out)
	}
}

func TestAnonymousLogIsOneUser(t *testing.T) {
	l := logmodel.Log{mk("", "", 0), mk("", "", time.Second), mk("", "", 2*time.Second)}
	out := Build(l, Options{})
	if len(out) != 1 || out[0].Len() != 3 {
		t.Fatalf("sessions: %+v", out)
	}
}

func TestSessionsOrderedByFirstQuery(t *testing.T) {
	l := logmodel.Log{
		mk("late", "", 10*time.Second),
		mk("early", "", 0),
		mk("late", "", 11*time.Second),
	}
	out := Build(l, Options{})
	if out[0].User != "early" || out[1].User != "late" {
		t.Fatalf("order: %+v", out)
	}
}

func TestEmptyLog(t *testing.T) {
	if out := Build(nil, Options{}); len(out) != 0 {
		t.Fatalf("got %v", out)
	}
}

func TestIndicesWithinBounds(t *testing.T) {
	var l logmodel.Log
	for i := 0; i < 100; i++ {
		u := "a"
		if i%3 == 0 {
			u = "b"
		}
		l = append(l, mk(u, "", time.Duration(i)*time.Second))
	}
	out := Build(l, Options{MaxGap: 2 * time.Second})
	seen := map[int]bool{}
	for _, s := range out {
		for _, idx := range s.Indices {
			if idx < 0 || idx >= len(l) {
				t.Fatalf("index out of bounds: %d", idx)
			}
			if seen[idx] {
				t.Fatalf("index %d in two sessions", idx)
			}
			seen[idx] = true
			if l[idx].User != s.User {
				t.Fatalf("index %d user mismatch", idx)
			}
		}
	}
	if len(seen) != len(l) {
		t.Fatalf("covered %d of %d entries", len(seen), len(l))
	}
}
