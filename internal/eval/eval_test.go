package eval

import (
	"testing"
	"time"

	"sqlclean/internal/core"
	"sqlclean/internal/workload"
)

func runDefault(t *testing.T, scale float64) (*core.Result, *workload.Truth) {
	t.Helper()
	log, truth := workload.Generate(workload.DefaultConfig().Scale(scale))
	res, err := core.Run(log, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return res, truth
}

func metric(ms []Metrics, name string) Metrics {
	for _, m := range ms {
		if m.Name == name {
			return m
		}
	}
	return Metrics{}
}

func TestDetectorAccuracyOnDefaultWorkload(t *testing.T) {
	res, truth := runDefault(t, 0.5)
	ms := DetectorAccuracy(res, truth)
	if len(ms) != 6 {
		t.Fatalf("metrics: %+v", ms)
	}
	// The Stifle detectors must be highly precise and recall most of what
	// the generator planted (dedup and run-boundary effects cost a little).
	for _, name := range []string{"DW-Stifle", "Stifle (any)", "SNC"} {
		m := metric(ms, name)
		if m.Precision() < 0.95 {
			t.Errorf("%s precision %.3f (%+v)", name, m.Precision(), m)
		}
		if m.Recall() < 0.85 {
			t.Errorf("%s recall %.3f (%+v)", name, m.Recall(), m)
		}
	}
	m := metric(ms, "DS-Stifle")
	if m.Recall() < 0.5 {
		t.Errorf("DS recall %.3f (%+v)", m.Recall(), m)
	}
	cth := metric(ms, "CTH candidate")
	if cth.TP == 0 {
		t.Errorf("CTH candidates: %+v", cth)
	}
}

func TestMetricsArithmetic(t *testing.T) {
	m := Metrics{Name: "x", TP: 8, FP: 2, FN: 2}
	if m.Precision() != 0.8 || m.Recall() != 0.8 {
		t.Errorf("p=%v r=%v", m.Precision(), m.Recall())
	}
	if f1 := m.F1(); f1 < 0.799 || f1 > 0.801 {
		t.Errorf("f1=%v", f1)
	}
	var zero Metrics
	if zero.Precision() != 0 || zero.Recall() != 0 || zero.F1() != 0 {
		t.Error("zero metrics must not divide by zero")
	}
	if s := m.String(); s == "" {
		t.Error("empty string rendering")
	}
}

func TestTrueCTHClassification(t *testing.T) {
	res, truth := runDefault(t, 0.5)
	m := TrueCTHClassification(res, truth)
	if m.TP == 0 {
		t.Fatalf("no real CTHs found: %+v", m)
	}
	if m.FP == 0 {
		t.Fatalf("no false candidates found (generator plants them): %+v", m)
	}
	// The paper found 28 real among 50 candidates — a mixed set; both
	// classes must be present and most true chains must be covered.
	if m.Recall() < 0.8 {
		t.Errorf("true-chain coverage %.3f (%+v)", m.Recall(), m)
	}
}

func TestRecallDropsWithTinySessionGap(t *testing.T) {
	log, truth := workload.Generate(workload.DefaultConfig().Scale(0.5))
	normal, err := core.Run(log, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	tiny, err := core.Run(log, core.Config{SessionGap: 120 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	rNormal := metric(DetectorAccuracy(normal, truth), "Stifle (any)").Recall()
	rTiny := metric(DetectorAccuracy(tiny, truth), "Stifle (any)").Recall()
	if rTiny >= rNormal {
		t.Errorf("tiny session gap should cut runs apart: %.3f vs %.3f", rTiny, rNormal)
	}
}
