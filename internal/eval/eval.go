// Package eval measures detector accuracy against the workload generator's
// ground truth. The paper could not compute precision/recall ("these
// metrics require a ground truth ... one would have to interview thousands
// of SkyServer users", §6.6); the synthetic workload knows which entries
// were generated as which antipattern, so this reproduction can quantify
// what the paper could only argue for.
package eval

import (
	"fmt"

	"sqlclean/internal/antipattern"
	"sqlclean/internal/core"
	"sqlclean/internal/workload"
)

// Metrics is membership-level precision/recall for one detector target:
// the detected set is the log entries covered by instances of the kind(s),
// the truth set is the entries the generator labeled accordingly.
type Metrics struct {
	Name string
	// TP/FP/FN count log entries (of the pipeline's parsed pre-clean log).
	TP, FP, FN int
}

// Precision is TP / (TP + FP); 0 when nothing was detected.
func (m Metrics) Precision() float64 {
	if m.TP+m.FP == 0 {
		return 0
	}
	return float64(m.TP) / float64(m.TP+m.FP)
}

// Recall is TP / (TP + FN); 0 when the truth set is empty.
func (m Metrics) Recall() float64 {
	if m.TP+m.FN == 0 {
		return 0
	}
	return float64(m.TP) / float64(m.TP+m.FN)
}

// F1 is the harmonic mean of precision and recall.
func (m Metrics) F1() float64 {
	p, r := m.Precision(), m.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

func (m Metrics) String() string {
	return fmt.Sprintf("%-16s P=%.3f R=%.3f F1=%.3f (tp=%d fp=%d fn=%d)",
		m.Name, m.Precision(), m.Recall(), m.F1(), m.TP, m.FP, m.FN)
}

// target pairs detector kinds with generator label kinds.
type target struct {
	name   string
	kinds  map[antipattern.Kind]bool
	labels map[string]bool
}

// DetectorAccuracy computes membership-level metrics for every built-in
// detector against the generator truth. Entries that dedup removed are
// not part of the evaluation universe (the detector never saw them).
//
// Note the deliberate cross-listings: the generator's dependent CTH
// followers are legitimate DW-Stifle members too (the paper's Table 2 shows
// queries carrying both marks), so the Stifle targets accept cth-true
// labels as true positives, and the CTH target accepts nothing but cth
// labels.
func DetectorAccuracy(res *core.Result, truth *workload.Truth) []Metrics {
	targets := []target{
		{
			name:   "DW-Stifle",
			kinds:  map[antipattern.Kind]bool{antipattern.DWStifle: true},
			labels: map[string]bool{workload.KindDW: true, workload.KindCTHTrue: true, workload.KindCTHFalse: true, workload.KindWebUI: true},
		},
		{
			name:   "DS-Stifle",
			kinds:  map[antipattern.Kind]bool{antipattern.DSStifle: true},
			labels: map[string]bool{workload.KindDS: true, workload.KindWebUI: true},
		},
		{
			name:   "DF-Stifle",
			kinds:  map[antipattern.Kind]bool{antipattern.DFStifle: true},
			labels: map[string]bool{workload.KindDF: true},
		},
		{
			name: "Stifle (any)",
			kinds: map[antipattern.Kind]bool{
				antipattern.DWStifle: true, antipattern.DSStifle: true, antipattern.DFStifle: true,
			},
			labels: map[string]bool{
				workload.KindDW: true, workload.KindDS: true, workload.KindDF: true,
				workload.KindCTHTrue: true, workload.KindCTHFalse: true, workload.KindWebUI: true,
			},
		},
		{
			name:   "CTH candidate",
			kinds:  map[antipattern.Kind]bool{antipattern.CTH: true},
			labels: map[string]bool{workload.KindCTHTrue: true, workload.KindCTHFalse: true},
		},
		{
			name:   "SNC",
			kinds:  map[antipattern.Kind]bool{antipattern.SNC: true},
			labels: map[string]bool{workload.KindSNC: true},
		},
	}

	out := make([]Metrics, 0, len(targets))
	for _, tg := range targets {
		detected := map[int64]bool{}
		for _, in := range res.Instances {
			if !tg.kinds[in.Kind] {
				continue
			}
			for _, idx := range in.Indices {
				detected[res.Parsed[idx].Seq] = true
			}
		}
		m := Metrics{Name: tg.name}
		// Universe: entries the detector saw (the parsed pre-clean log).
		for _, pe := range res.Parsed {
			lab := truth.Label(pe.Seq)
			inTruth := tg.labels[lab.Kind]
			inDet := detected[pe.Seq]
			switch {
			case inDet && inTruth:
				m.TP++
			case inDet && !inTruth:
				m.FP++
			case !inDet && inTruth && strictLabel(lab.Kind, tg):
				m.FN++
			}
		}
		out = append(out, m)
	}
	return out
}

// strictLabel narrows the FN universe to the target's own generator kinds:
// cross-listed labels (webui browsing that may or may not form runs,
// cth-followers) count as true positives when detected but are not missed
// detections when not — their membership in a Stifle depends on run timing
// the generator does not promise.
func strictLabel(label string, tg target) bool {
	switch tg.name {
	case "DW-Stifle":
		return label == workload.KindDW
	case "DS-Stifle":
		return label == workload.KindDS
	case "DF-Stifle":
		return label == workload.KindDF
	case "Stifle (any)":
		return label == workload.KindDW || label == workload.KindDS || label == workload.KindDF
	case "CTH candidate":
		return label == workload.KindCTHTrue
	default:
		return tg.labels[label]
	}
}

// TrueCTHClassification evaluates the Fig. 2(d)-style real-vs-false CTH
// separation: for every detected CTH candidate instance, the
// majority-ground-truth label decides "real"; the returned metrics treat
// instances (not entries) as the unit and the generator's cth-true groups
// as the truth.
func TrueCTHClassification(res *core.Result, truth *workload.Truth) Metrics {
	m := Metrics{Name: "CTH real"}
	for _, in := range res.Instances {
		if in.Kind != antipattern.CTH {
			continue
		}
		trueCnt := 0
		for _, idx := range in.Indices {
			if truth.Label(res.Parsed[idx].Seq).Kind == workload.KindCTHTrue {
				trueCnt++
			}
		}
		isTrue := trueCnt*2 > len(in.Indices)
		if isTrue {
			m.TP++
		} else {
			m.FP++ // structurally valid candidate, not a real dependency
		}
	}
	// FN: true chains that produced no candidate instance at all.
	covered := map[int]bool{}
	for _, in := range res.Instances {
		if in.Kind != antipattern.CTH {
			continue
		}
		for _, idx := range in.Indices {
			if lab := truth.Label(res.Parsed[idx].Seq); lab.Kind == workload.KindCTHTrue {
				covered[lab.Group] = true
			}
		}
	}
	allGroups := map[int]bool{}
	for _, pe := range res.Parsed {
		if lab := truth.Label(pe.Seq); lab.Kind == workload.KindCTHTrue {
			allGroups[lab.Group] = true
		}
	}
	for g := range allGroups {
		if !covered[g] {
			m.FN++
		}
	}
	return m
}
