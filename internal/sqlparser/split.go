package sqlparser

import (
	"strings"

	"sqlclean/internal/sqltoken"
)

// SplitStatements splits a batch of SQL statements on top-level semicolons,
// using the lexer so that semicolons inside string literals, comments or
// bracketed identifiers do not split. Empty statements are dropped. The
// returned statements preserve their original text (trimmed).
func SplitStatements(src string) ([]string, error) {
	toks, err := sqltoken.Tokenize(src)
	if err != nil {
		return nil, err
	}
	var out []string
	start := 0
	flush := func(end int) {
		s := strings.TrimSpace(src[start:end])
		if s != "" {
			out = append(out, s)
		}
	}
	for _, t := range toks {
		if t.Kind == sqltoken.Op && t.Val == ";" {
			flush(t.Pos)
			start = t.Pos + 1
		}
	}
	flush(len(src))
	return out, nil
}
