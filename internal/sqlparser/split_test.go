package sqlparser

import (
	"reflect"
	"testing"
)

func TestSplitStatements(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"SELECT 1", []string{"SELECT 1"}},
		{"SELECT 1; SELECT 2", []string{"SELECT 1", "SELECT 2"}},
		{"SELECT 1; SELECT 2;", []string{"SELECT 1", "SELECT 2"}},
		{";;", nil},
		{"", nil},
		{"SELECT 'a;b'; SELECT 2", []string{"SELECT 'a;b'", "SELECT 2"}},
		{"SELECT [a;b] FROM t; SELECT 2", []string{"SELECT [a;b] FROM t", "SELECT 2"}},
		{"SELECT 1 -- c;omment\n; SELECT 2", []string{"SELECT 1 -- c;omment", "SELECT 2"}},
		{"SELECT 1 /* a;b */; SELECT 2", []string{"SELECT 1 /* a;b */", "SELECT 2"}},
	}
	for _, c := range cases {
		got, err := SplitStatements(c.in)
		if err != nil {
			t.Fatalf("%q: %v", c.in, err)
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("%q: got %q, want %q", c.in, got, c.want)
		}
	}
}

func TestSplitStatementsLexError(t *testing.T) {
	if _, err := SplitStatements("SELECT 'unterminated"); err == nil {
		t.Fatal("want lex error")
	}
}
