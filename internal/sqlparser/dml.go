package sqlparser

import (
	"sqlclean/internal/sqlast"
	"sqlclean/internal/sqltoken"
)

// DML parsing. The cleaning pipeline only classifies DML (the paper cleans
// SELECT logs), but the execution engine models INSERT/UPDATE/DELETE so
// OLTP workloads like the paper's Example 7 BUY procedure run end to end.
// parseStatement calls these tolerantly: when a typed parse fails, the
// statement degrades to an OtherStatement with ClassDML, never ClassError —
// real logs carry DML dialects beyond this model, and they must still be
// counted as DML.

func (p *parser) parseInsert() (sqlast.Statement, bool) {
	p.advance() // INSERT
	if !p.acceptKw("INTO") {
		return nil, false
	}
	schema, name, err := p.parseQualifiedName()
	if err != nil {
		return nil, false
	}
	st := &sqlast.InsertStatement{Table: &sqlast.TableRef{Schema: schema, Name: name}}
	if p.isOp("(") {
		// Column list — but "(" could also start VALUES-less syntax; here
		// only a column list is legal before VALUES.
		p.advance()
		for {
			t := p.cur()
			if t.Kind != sqltoken.Ident && t.Kind != sqltoken.QuotedIdent && t.Kind != sqltoken.Keyword {
				return nil, false
			}
			p.advance()
			st.Columns = append(st.Columns, t.Val)
			if !p.acceptOp(",") {
				break
			}
		}
		if !p.acceptOp(")") {
			return nil, false
		}
	}
	if !p.acceptKw("VALUES") {
		return nil, false // INSERT ... SELECT and other forms degrade
	}
	for {
		if !p.acceptOp("(") {
			return nil, false
		}
		var row []sqlast.Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, false
			}
			row = append(row, e)
			if !p.acceptOp(",") {
				break
			}
		}
		if !p.acceptOp(")") {
			return nil, false
		}
		st.Rows = append(st.Rows, row)
		if !p.acceptOp(",") {
			break
		}
	}
	if !p.atEndOfStatement() {
		return nil, false
	}
	return st, true
}

func (p *parser) parseUpdate() (sqlast.Statement, bool) {
	p.advance() // UPDATE
	schema, name, err := p.parseQualifiedName()
	if err != nil {
		return nil, false
	}
	st := &sqlast.UpdateStatement{Table: &sqlast.TableRef{Schema: schema, Name: name}}
	if !p.acceptKw("SET") {
		return nil, false
	}
	for {
		t := p.cur()
		if t.Kind != sqltoken.Ident && t.Kind != sqltoken.QuotedIdent && t.Kind != sqltoken.Keyword {
			return nil, false
		}
		p.advance()
		if !p.acceptOp("=") {
			return nil, false
		}
		v, err := p.parseExpr()
		if err != nil {
			return nil, false
		}
		st.Set = append(st.Set, sqlast.SetClause{Column: t.Val, Value: v})
		if !p.acceptOp(",") {
			break
		}
	}
	if p.acceptKw("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, false
		}
		st.Where = w
	}
	if !p.atEndOfStatement() {
		return nil, false
	}
	return st, true
}

func (p *parser) parseDelete() (sqlast.Statement, bool) {
	p.advance() // DELETE
	if !p.acceptKw("FROM") {
		return nil, false
	}
	schema, name, err := p.parseQualifiedName()
	if err != nil {
		return nil, false
	}
	st := &sqlast.DeleteStatement{Table: &sqlast.TableRef{Schema: schema, Name: name}}
	if p.acceptKw("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, false
		}
		st.Where = w
	}
	if !p.atEndOfStatement() {
		return nil, false
	}
	return st, true
}

// atEndOfStatement consumes an optional trailing semicolon and reports
// whether the token stream is exhausted.
func (p *parser) atEndOfStatement() bool {
	p.acceptOp(";")
	return p.cur().Kind == sqltoken.EOF
}
