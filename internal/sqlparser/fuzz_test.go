package sqlparser

import (
	"testing"

	"sqlclean/internal/skeleton"
	"sqlclean/internal/sqlast"
)

// FuzzParse throws arbitrary bytes at the parser: it must never panic, and
// whenever it accepts a SELECT, the printer's output must reparse to the
// same canonical form (the round-trip invariant). Run with
// `go test -fuzz=FuzzParse ./internal/sqlparser` for real fuzzing; under
// plain `go test` the seed corpus below is exercised.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"SELECT a FROM t WHERE a = 1",
		"SELECT * FROM dbo.fGetNearestObjEq(145.38708,0.12532,0.1);",
		"SELECT g.objid FROM photoobjall as g JOIN f(@ra) gn on g.objid=gn.objid",
		"SELECT TOP 5 PERCENT a, count(*) FROM t GROUP BY a HAVING count(*) > 1 ORDER BY a DESC",
		"SELECT CASE WHEN a > 0 THEN 'p' ELSE 'n' END FROM t",
		"SELECT CAST(a AS varchar(30)) FROM t WHERE b BETWEEN 1 AND 2",
		"SELECT a FROM t1 UNION ALL SELECT a FROM t2",
		"SELECT 'it''s' FROM [my table] WHERE x <> NULL",
		"INSERT INTO t VALUES (1)",
		"SELECT -- comment\n a FROM t /* block */",
		"SELECT a FROM",
		"SELEC T",
		"",
		"@@",
		"SELECT a FROM t WHERE a IN (SELECT b FROM u)",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		st, err := Parse(src)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		sel, ok := st.(*sqlast.SelectStatement)
		if !ok {
			return
		}
		printed := sqlast.Print(sel, sqlast.PrintOptions{})
		re, err := ParseSelect(printed)
		if err != nil {
			t.Fatalf("printer output does not reparse: %q (from %q): %v", printed, src, err)
		}
		if c1, c2 := sqlast.Canonical(sel), sqlast.Canonical(re); c1 != c2 {
			t.Fatalf("canonical form unstable:\n1: %s\n2: %s", c1, c2)
		}
		// Skeleton analysis must not panic on anything the parser accepts.
		in := skeleton.Analyze(sel)
		if in.Fingerprint == 0 && in.SkeletonText() != "" {
			// A zero FNV fingerprint is astronomically unlikely; treat it
			// as corruption.
			t.Fatalf("zero fingerprint for %q", printed)
		}
	})
}

// FuzzSplitStatements checks the lexer-driven splitter never panics and
// yields statements that concatenate (with separators) into the input's
// token stream.
func FuzzSplitStatements(f *testing.F) {
	for _, s := range []string{
		"SELECT 1; SELECT 2",
		"SELECT 'a;b'; SELECT 2;",
		";;;",
		"SELECT [x;y] FROM t",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		parts, err := SplitStatements(src)
		if err != nil {
			return
		}
		for _, p := range parts {
			if p == "" {
				t.Fatal("empty statement emitted")
			}
		}
	})
}
