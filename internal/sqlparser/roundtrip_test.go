package sqlparser

import (
	"math/rand"
	"testing"

	"sqlclean/internal/skeleton"
	"sqlclean/internal/sqlast"
)

// Random AST generation for property testing: every generated statement must
// print to text the parser accepts, and printing must be a fixpoint.

type astGen struct {
	rng *rand.Rand
}

func (g *astGen) pick(n int) int { return g.rng.Intn(n) }

func (g *astGen) ident() string {
	names := []string{"objid", "ra", "dec", "name", "surname", "htmid", "r", "flags", "empId", "department"}
	return names[g.pick(len(names))]
}

func (g *astGen) table() string {
	names := []string{"photoprimary", "Employees", "specobj", "dbobjects", "Orders"}
	return names[g.pick(len(names))]
}

func (g *astGen) literal() *sqlast.Literal {
	switch g.pick(4) {
	case 0:
		return &sqlast.Literal{Kind: "num", Val: []string{"0", "42", "3.5", "587731186740822117", "-7"}[g.pick(5)]}
	case 1:
		return &sqlast.Literal{Kind: "str", Val: []string{"sales", "Galaxy", "x%", "it's"}[g.pick(4)]}
	case 2:
		return &sqlast.Literal{Kind: "null"}
	default:
		return &sqlast.Literal{Kind: "num", Val: "1"}
	}
}

func (g *astGen) scalar(depth int) sqlast.Expr {
	if depth <= 0 {
		if g.pick(2) == 0 {
			return g.literal()
		}
		return &sqlast.ColumnRef{Name: g.ident()}
	}
	switch g.pick(6) {
	case 0:
		return g.literal()
	case 1:
		q := ""
		if g.pick(2) == 0 {
			q = "t"
		}
		return &sqlast.ColumnRef{Qualifier: q, Name: g.ident()}
	case 2:
		return &sqlast.Variable{Name: "@v"}
	case 3:
		return &sqlast.BinaryExpr{Op: []string{"+", "-", "*"}[g.pick(3)], Left: g.scalar(depth - 1), Right: g.scalar(depth - 1)}
	case 4:
		return &sqlast.FuncCall{Name: []string{"abs", "str", "floor"}[g.pick(3)], Args: []sqlast.Expr{g.scalar(depth - 1)}}
	default:
		return &sqlast.CastExpr{X: g.scalar(depth - 1), Type: []string{"int", "float", "varchar"}[g.pick(3)]}
	}
}

func (g *astGen) predicate(depth int) sqlast.Expr {
	if depth <= 0 {
		return &sqlast.BinaryExpr{Op: "=", Left: &sqlast.ColumnRef{Name: g.ident()}, Right: g.literal()}
	}
	switch g.pick(8) {
	case 0:
		return &sqlast.BinaryExpr{Op: []string{"=", "<>", "<", ">", "<=", ">="}[g.pick(6)], Left: g.scalar(1), Right: g.scalar(1)}
	case 1:
		return &sqlast.BinaryExpr{Op: "AND", Left: g.predicate(depth - 1), Right: g.predicate(depth - 1)}
	case 2:
		return &sqlast.BinaryExpr{Op: "OR", Left: g.predicate(depth - 1), Right: g.predicate(depth - 1)}
	case 3:
		return &sqlast.UnaryExpr{Op: "NOT", X: &sqlast.ParenExpr{X: g.predicate(depth - 1)}}
	case 4:
		in := &sqlast.InExpr{X: &sqlast.ColumnRef{Name: g.ident()}, Not: g.pick(3) == 0}
		for i := 0; i <= g.pick(3); i++ {
			in.List = append(in.List, g.literal())
		}
		return in
	case 5:
		return &sqlast.BetweenExpr{X: &sqlast.ColumnRef{Name: g.ident()}, Lo: g.scalar(0), Hi: g.scalar(0)}
	case 6:
		return &sqlast.IsNullExpr{X: &sqlast.ColumnRef{Name: g.ident()}, Not: g.pick(2) == 0}
	default:
		return &sqlast.LikeExpr{X: &sqlast.ColumnRef{Name: g.ident()}, Pattern: &sqlast.Literal{Kind: "str", Val: "x%"}}
	}
}

func (g *astGen) tableSource(depth int) sqlast.TableSource {
	if depth <= 0 {
		return &sqlast.TableRef{Name: g.table()}
	}
	switch g.pick(5) {
	case 0:
		alias := ""
		if g.pick(2) == 0 {
			alias = "t"
		}
		return &sqlast.TableRef{Name: g.table(), Alias: alias}
	case 1:
		return &sqlast.FuncSource{
			Call:  &sqlast.FuncCall{Schema: "dbo", Name: "fGetNearbyObjEq", Args: []sqlast.Expr{g.literal(), g.literal(), g.literal()}},
			Alias: "n",
		}
	case 2:
		return &sqlast.DerivedTable{Sub: g.selectStmt(depth - 1), Alias: "sub"}
	case 3:
		return &sqlast.Join{
			Kind: []sqlast.JoinKind{sqlast.InnerJoin, sqlast.LeftJoin, sqlast.RightJoin}[g.pick(3)],
			Left: &sqlast.TableRef{Name: g.table(), Alias: "a"}, Right: &sqlast.TableRef{Name: g.table(), Alias: "b"},
			Cond: &sqlast.BinaryExpr{Op: "=",
				Left:  &sqlast.ColumnRef{Qualifier: "a", Name: g.ident()},
				Right: &sqlast.ColumnRef{Qualifier: "b", Name: g.ident()}},
		}
	default:
		return &sqlast.Join{Kind: sqlast.CrossJoin,
			Left: &sqlast.TableRef{Name: g.table(), Alias: "a"}, Right: &sqlast.TableRef{Name: g.table(), Alias: "b"}}
	}
}

func (g *astGen) selectStmt(depth int) *sqlast.SelectStatement {
	s := &sqlast.SelectStatement{}
	if g.pick(4) == 0 {
		s.Distinct = true
	}
	if g.pick(4) == 0 {
		s.Top = &sqlast.Literal{Kind: "num", Val: "10"}
	}
	nItems := 1 + g.pick(3)
	for i := 0; i < nItems; i++ {
		it := sqlast.SelectItem{Expr: g.scalar(depth)}
		if g.pick(3) == 0 {
			it.Alias = "c" + string(rune('a'+i))
		}
		s.Items = append(s.Items, it)
	}
	if g.pick(6) == 0 {
		s.Items = []sqlast.SelectItem{{Expr: &sqlast.ColumnRef{Star: true}}}
	}
	nFrom := 1 + g.pick(2)
	for i := 0; i < nFrom; i++ {
		s.From = append(s.From, g.tableSource(depth))
	}
	if g.pick(2) == 0 {
		s.Where = g.predicate(depth)
	}
	if g.pick(4) == 0 {
		s.GroupBy = []sqlast.Expr{&sqlast.ColumnRef{Name: g.ident()}}
		s.Items = []sqlast.SelectItem{
			{Expr: &sqlast.ColumnRef{Name: g.ident()}},
			{Expr: &sqlast.FuncCall{Name: "count", Star: true}},
		}
		if g.pick(2) == 0 {
			s.Having = &sqlast.BinaryExpr{Op: ">", Left: &sqlast.FuncCall{Name: "count", Star: true}, Right: &sqlast.Literal{Kind: "num", Val: "1"}}
		}
	}
	if g.pick(3) == 0 {
		s.OrderBy = []sqlast.OrderItem{{Expr: &sqlast.ColumnRef{Name: g.ident()}, Desc: g.pick(2) == 0}}
	}
	return s
}

// TestRandomASTPrintParseFixpoint generates random SELECT ASTs; printing
// them must produce parseable SQL, and print∘parse must be a fixpoint.
func TestRandomASTPrintParseFixpoint(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	g := &astGen{rng: rng}
	for i := 0; i < 500; i++ {
		stmt := g.selectStmt(2)
		printed := sqlast.Print(stmt, sqlast.PrintOptions{})
		reparsed, err := ParseSelect(printed)
		if err != nil {
			t.Fatalf("case %d: printed SQL does not parse: %q: %v", i, printed, err)
		}
		again := sqlast.Print(reparsed, sqlast.PrintOptions{})
		if printed != again {
			t.Fatalf("case %d: print/parse not a fixpoint:\n1: %s\n2: %s", i, printed, again)
		}
		// The canonical skeleton must be stable too (template identity is
		// preserved by the round trip).
		if sqlast.Canonical(stmt) != sqlast.Canonical(reparsed) {
			t.Fatalf("case %d: canonical form changed:\n1: %s\n2: %s",
				i, sqlast.Canonical(stmt), sqlast.Canonical(reparsed))
		}
	}
}

// TestRandomASTCloneIndependence checks CloneSelect produces equal but
// independent trees for random ASTs.
func TestRandomASTCloneIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := &astGen{rng: rng}
	for i := 0; i < 200; i++ {
		stmt := g.selectStmt(2)
		clone := sqlast.CloneSelect(stmt)
		before := sqlast.Print(stmt, sqlast.PrintOptions{})
		if got := sqlast.Print(clone, sqlast.PrintOptions{}); got != before {
			t.Fatalf("case %d: clone differs", i)
		}
		// Mutate every literal in the clone; the original must not change.
		sqlast.Walk(clone, func(n sqlast.Node) bool {
			if l, ok := n.(*sqlast.Literal); ok {
				l.Val = "MUTATED"
				l.Kind = "str"
			}
			return true
		})
		if got := sqlast.Print(stmt, sqlast.PrintOptions{}); got != before {
			t.Fatalf("case %d: mutation leaked into the original", i)
		}
	}
}

// TestRandomASTSkeletonInvariants checks that skeleton analysis never
// panics and that fingerprints ignore literal values: rewriting every
// literal's value must keep the fingerprint.
func TestRandomASTSkeletonInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	g := &astGen{rng: rng}
	for i := 0; i < 300; i++ {
		stmt := g.selectStmt(2)
		in1 := skeleton.Analyze(stmt)

		mutated := sqlast.CloneSelect(stmt)
		sqlast.Walk(mutated, func(n sqlast.Node) bool {
			if l, ok := n.(*sqlast.Literal); ok && l.Kind == "num" {
				l.Val = "123456"
			}
			if l, ok := n.(*sqlast.Literal); ok && l.Kind == "str" {
				l.Val = "other"
			}
			return true
		})
		in2 := skeleton.Analyze(mutated)
		if in1.Fingerprint != in2.Fingerprint {
			t.Fatalf("case %d: fingerprint depends on literal values:\n%s\n%s",
				i, in1.SkeletonText(), in2.SkeletonText())
		}
		if in1.CP() != in2.CP() {
			t.Fatalf("case %d: CP changed with literal values", i)
		}
	}
}
