package sqlparser

import (
	"strings"
	"testing"

	"sqlclean/internal/sqlast"
)

func mustSelect(t *testing.T, q string) *sqlast.SelectStatement {
	t.Helper()
	sel, err := ParseSelect(q)
	if err != nil {
		t.Fatalf("parse %q: %v", q, err)
	}
	return sel
}

func TestParseSimpleSelect(t *testing.T) {
	sel := mustSelect(t, "SELECT name, surname FROM Employee WHERE id = 12")
	if len(sel.Items) != 2 {
		t.Fatalf("items: %v", sel.Items)
	}
	if len(sel.From) != 1 {
		t.Fatalf("from: %v", sel.From)
	}
	tr, ok := sel.From[0].(*sqlast.TableRef)
	if !ok || tr.Name != "Employee" {
		t.Fatalf("from: %#v", sel.From[0])
	}
	be, ok := sel.Where.(*sqlast.BinaryExpr)
	if !ok || be.Op != "=" {
		t.Fatalf("where: %#v", sel.Where)
	}
}

func TestParseAliases(t *testing.T) {
	sel := mustSelect(t, "SELECT E.name AS n, E.age a FROM Employees AS E")
	if sel.Items[0].Alias != "n" || sel.Items[1].Alias != "a" {
		t.Errorf("aliases: %+v", sel.Items)
	}
	if sel.From[0].(*sqlast.TableRef).Alias != "E" {
		t.Errorf("table alias: %+v", sel.From[0])
	}
}

func TestParseTSQLAssignmentAlias(t *testing.T) {
	sel := mustSelect(t, "SELECT n = count(*) FROM t")
	if sel.Items[0].Alias != "n" {
		t.Errorf("assignment alias: %+v", sel.Items[0])
	}
	if _, ok := sel.Items[0].Expr.(*sqlast.FuncCall); !ok {
		t.Errorf("expr: %#v", sel.Items[0].Expr)
	}
}

func TestParseTopVariants(t *testing.T) {
	sel := mustSelect(t, "SELECT TOP 10 * FROM t")
	if sel.Top == nil || sel.Top.Val != "10" || sel.TopPercent {
		t.Errorf("top: %+v", sel)
	}
	sel = mustSelect(t, "SELECT TOP (5) PERCENT a FROM t")
	if sel.Top == nil || sel.Top.Val != "5" || !sel.TopPercent {
		t.Errorf("top percent: %+v", sel)
	}
	if _, err := ParseSelect("SELECT TOP x a FROM t"); err == nil {
		t.Error("want error for non-numeric TOP")
	}
}

func TestParseDistinct(t *testing.T) {
	if !mustSelect(t, "SELECT DISTINCT a FROM t").Distinct {
		t.Error("distinct not set")
	}
	if mustSelect(t, "SELECT ALL a FROM t").Distinct {
		t.Error("ALL must not set distinct")
	}
}

func TestParseJoins(t *testing.T) {
	sel := mustSelect(t, "SELECT a FROM t1 JOIN t2 ON t1.x = t2.x LEFT JOIN t3 ON t2.y = t3.y")
	j, ok := sel.From[0].(*sqlast.Join)
	if !ok || j.Kind != sqlast.LeftJoin {
		t.Fatalf("outer join: %#v", sel.From[0])
	}
	inner, ok := j.Left.(*sqlast.Join)
	if !ok || inner.Kind != sqlast.InnerJoin {
		t.Fatalf("inner join: %#v", j.Left)
	}
}

func TestParseJoinVarieties(t *testing.T) {
	cases := map[string]sqlast.JoinKind{
		"SELECT a FROM t1 INNER JOIN t2 ON t1.x = t2.x":      sqlast.InnerJoin,
		"SELECT a FROM t1 LEFT OUTER JOIN t2 ON t1.x = t2.x": sqlast.LeftJoin,
		"SELECT a FROM t1 RIGHT JOIN t2 ON t1.x = t2.x":      sqlast.RightJoin,
		"SELECT a FROM t1 FULL OUTER JOIN t2 ON t1.x = t2.x": sqlast.FullJoin,
		"SELECT a FROM t1 CROSS JOIN t2":                     sqlast.CrossJoin,
		"SELECT a FROM t1 CROSS APPLY f(t1.x) x":             sqlast.CrossApply,
	}
	for q, want := range cases {
		sel := mustSelect(t, q)
		j, ok := sel.From[0].(*sqlast.Join)
		if !ok || j.Kind != want {
			t.Errorf("%q: got %#v", q, sel.From[0])
		}
	}
}

func TestParseCommaFrom(t *testing.T) {
	sel := mustSelect(t, "SELECT a FROM t1, t2 WHERE t1.x = t2.x")
	if len(sel.From) != 2 {
		t.Fatalf("from: %v", sel.From)
	}
}

func TestParseTableValuedFunction(t *testing.T) {
	sel := mustSelect(t, "SELECT * FROM dbo.fGetNearbyObjEq(@ra, @dec, @r) AS n")
	fs, ok := sel.From[0].(*sqlast.FuncSource)
	if !ok {
		t.Fatalf("from: %#v", sel.From[0])
	}
	if fs.Call.Schema != "dbo" || fs.Call.Name != "fGetNearbyObjEq" || len(fs.Call.Args) != 3 || fs.Alias != "n" {
		t.Errorf("func source: %+v", fs)
	}
}

func TestParseDerivedTable(t *testing.T) {
	sel := mustSelect(t, "SELECT o.c FROM (SELECT empId, count(*) AS c FROM Orders GROUP BY empId) o")
	dt, ok := sel.From[0].(*sqlast.DerivedTable)
	if !ok || dt.Alias != "o" {
		t.Fatalf("from: %#v", sel.From[0])
	}
	if len(dt.Sub.GroupBy) != 1 {
		t.Errorf("subquery group by: %+v", dt.Sub)
	}
}

func TestParseParenthesizedJoin(t *testing.T) {
	sel := mustSelect(t, "SELECT a FROM (t1 JOIN t2 ON t1.x = t2.x)")
	if _, ok := sel.From[0].(*sqlast.Join); !ok {
		t.Fatalf("from: %#v", sel.From[0])
	}
}

func TestParseWherePrecedence(t *testing.T) {
	sel := mustSelect(t, "SELECT a FROM t WHERE x = 1 OR y = 2 AND z = 3")
	or, ok := sel.Where.(*sqlast.BinaryExpr)
	if !ok || or.Op != "OR" {
		t.Fatalf("want OR at top: %#v", sel.Where)
	}
	and, ok := or.Right.(*sqlast.BinaryExpr)
	if !ok || and.Op != "AND" {
		t.Fatalf("want AND under OR: %#v", or.Right)
	}
}

func TestParseNotPrecedence(t *testing.T) {
	sel := mustSelect(t, "SELECT a FROM t WHERE NOT x = 1 AND y = 2")
	and := sel.Where.(*sqlast.BinaryExpr)
	if and.Op != "AND" {
		t.Fatalf("top: %#v", sel.Where)
	}
	if _, ok := and.Left.(*sqlast.UnaryExpr); !ok {
		t.Fatalf("NOT binds tighter than AND: %#v", and.Left)
	}
}

func TestParseArithmeticPrecedence(t *testing.T) {
	sel := mustSelect(t, "SELECT a FROM t WHERE x + 2 * 3 = 7")
	cmp := sel.Where.(*sqlast.BinaryExpr)
	add := cmp.Left.(*sqlast.BinaryExpr)
	if add.Op != "+" {
		t.Fatalf("want + at left: %#v", cmp.Left)
	}
	if mul, ok := add.Right.(*sqlast.BinaryExpr); !ok || mul.Op != "*" {
		t.Fatalf("want * under +: %#v", add.Right)
	}
}

func TestParseInBetweenLikeIsNull(t *testing.T) {
	sel := mustSelect(t, "SELECT a FROM t WHERE a IN (1, 2) AND b NOT IN ('x') AND c BETWEEN 1 AND 9 AND d NOT LIKE 'z%' AND e IS NOT NULL")
	text := sqlast.PrintExpr(sel.Where, sqlast.PrintOptions{})
	want := "a IN (1, 2) AND b NOT IN ('x') AND c BETWEEN 1 AND 9 AND d NOT LIKE 'z%' AND e IS NOT NULL"
	if text != want {
		t.Errorf("got %q, want %q", text, want)
	}
}

func TestParseInSubquery(t *testing.T) {
	sel := mustSelect(t, "SELECT a FROM t WHERE a IN (SELECT b FROM u)")
	in, ok := sel.Where.(*sqlast.InExpr)
	if !ok || in.Sub == nil {
		t.Fatalf("where: %#v", sel.Where)
	}
}

func TestParseExistsAndScalarSubquery(t *testing.T) {
	sel := mustSelect(t, "SELECT a FROM t WHERE EXISTS (SELECT 1 FROM u) AND b = (SELECT max(c) FROM v)")
	and := sel.Where.(*sqlast.BinaryExpr)
	if _, ok := and.Left.(*sqlast.ExistsExpr); !ok {
		t.Errorf("left: %#v", and.Left)
	}
	cmp := and.Right.(*sqlast.BinaryExpr)
	if _, ok := cmp.Right.(*sqlast.SubqueryExpr); !ok {
		t.Errorf("right: %#v", cmp.Right)
	}
}

func TestParseCase(t *testing.T) {
	sel := mustSelect(t, "SELECT CASE WHEN a > 0 THEN 'p' WHEN a < 0 THEN 'n' ELSE 'z' END FROM t")
	c, ok := sel.Items[0].Expr.(*sqlast.CaseExpr)
	if !ok || len(c.Whens) != 2 || c.Else == nil {
		t.Fatalf("case: %#v", sel.Items[0].Expr)
	}
	sel = mustSelect(t, "SELECT CASE a WHEN 1 THEN 'one' END FROM t")
	c = sel.Items[0].Expr.(*sqlast.CaseExpr)
	if c.Operand == nil {
		t.Error("operand CASE lost its operand")
	}
	if _, err := ParseSelect("SELECT CASE END FROM t"); err == nil {
		t.Error("CASE without WHEN must fail")
	}
}

func TestParseUnaryMinusFoldsIntoLiteral(t *testing.T) {
	sel := mustSelect(t, "SELECT a FROM t WHERE x = -5")
	cmp := sel.Where.(*sqlast.BinaryExpr)
	lit, ok := cmp.Right.(*sqlast.Literal)
	if !ok || lit.Val != "-5" {
		t.Fatalf("want folded literal, got %#v", cmp.Right)
	}
}

func TestParseNegativeComparisonOperators(t *testing.T) {
	sel := mustSelect(t, "SELECT a FROM t WHERE x != 1 AND y !> 2 AND z !< 3")
	text := sqlast.PrintExpr(sel.Where, sqlast.PrintOptions{})
	// != normalizes to <>, !> to <=, !< to >=.
	if text != "x <> 1 AND y <= 2 AND z >= 3" {
		t.Errorf("got %q", text)
	}
}

func TestParseGroupByHavingOrderBy(t *testing.T) {
	sel := mustSelect(t, "SELECT a, count(*) FROM t GROUP BY a, b HAVING count(*) > 1 ORDER BY a DESC, b ASC")
	if len(sel.GroupBy) != 2 || sel.Having == nil || len(sel.OrderBy) != 2 {
		t.Fatalf("clauses: %+v", sel)
	}
	if !sel.OrderBy[0].Desc || sel.OrderBy[1].Desc {
		t.Errorf("order: %+v", sel.OrderBy)
	}
}

func TestParseUnion(t *testing.T) {
	sel := mustSelect(t, "SELECT a FROM t1 UNION SELECT a FROM t2 UNION ALL SELECT a FROM t3")
	if sel.SetOp != "UNION" || sel.SetRight == nil {
		t.Fatalf("set op: %+v", sel)
	}
	if sel.SetRight.SetOp != "UNION ALL" {
		t.Errorf("nested set op: %+v", sel.SetRight)
	}
}

func TestParseSelectInto(t *testing.T) {
	sel := mustSelect(t, "SELECT a INTO #tmp FROM t WHERE a > 1")
	if sel.Where == nil {
		t.Error("WHERE lost after INTO")
	}
}

func TestParseQualifiedStar(t *testing.T) {
	sel := mustSelect(t, "SELECT p.* FROM photoprimary p")
	c, ok := sel.Items[0].Expr.(*sqlast.ColumnRef)
	if !ok || !c.Star || c.Qualifier != "p" {
		t.Fatalf("got %#v", sel.Items[0].Expr)
	}
}

func TestParseThreePartName(t *testing.T) {
	sel := mustSelect(t, "SELECT db.t.c FROM db.t")
	c := sel.Items[0].Expr.(*sqlast.ColumnRef)
	if c.Qualifier != "t" || c.Name != "c" {
		t.Errorf("got %+v", c)
	}
	tr := sel.From[0].(*sqlast.TableRef)
	if tr.Schema != "db" || tr.Name != "t" {
		t.Errorf("got %+v", tr)
	}
}

func TestParseBuiltinWordFunctions(t *testing.T) {
	// LEFT/RIGHT are join keywords but also string functions.
	sel := mustSelect(t, "SELECT left(name, 3) FROM t")
	f, ok := sel.Items[0].Expr.(*sqlast.FuncCall)
	if !ok || f.Name != "left" {
		t.Fatalf("got %#v", sel.Items[0].Expr)
	}
}

func TestParseTrailingSemicolonAndGarbage(t *testing.T) {
	if _, err := ParseSelect("SELECT a FROM t;"); err != nil {
		t.Errorf("trailing semicolon: %v", err)
	}
	if _, err := ParseSelect("SELECT a FROM t; SELECT b FROM u"); err == nil {
		t.Error("want error for trailing second statement")
	}
}

func TestClassify(t *testing.T) {
	cases := map[string]sqlast.StatementClass{
		"SELECT 1":                        sqlast.ClassSelect,
		"INSERT INTO t VALUES (1)":        sqlast.ClassDML,
		"UPDATE t SET a = 1":              sqlast.ClassDML,
		"DELETE FROM t":                   sqlast.ClassDML,
		"TRUNCATE TABLE t":                sqlast.ClassDML,
		"CREATE TABLE t (a int)":          sqlast.ClassDDL,
		"DROP TABLE t":                    sqlast.ClassDDL,
		"ALTER TABLE t ADD b int":         sqlast.ClassDDL,
		"GRANT SELECT ON t TO u":          sqlast.ClassDDL,
		"EXEC sp_help":                    sqlast.ClassExec,
		"DECLARE @x int":                  sqlast.ClassExec,
		"SELECT FROM t":                   sqlast.ClassError,
		"SELECT a FROM":                   sqlast.ClassError,
		"":                                sqlast.ClassError,
		"bogus statement":                 sqlast.ClassError,
		"SELECT a FROM t WHERE":           sqlast.ClassError,
		"SELECT a FROM t WHERE a = 'x":    sqlast.ClassError,
		"SELECT a FROM t GROUP a":         sqlast.ClassError,
		"SELECT a FROM t1 JOIN t2":        sqlast.ClassError,
		"SELECT count( FROM t":            sqlast.ClassError,
		"SELECT a FROM t WHERE a NOT = 1": sqlast.ClassError,
	}
	for q, want := range cases {
		if got := Classify(q); got != want {
			t.Errorf("%q: got %v, want %v", q, got, want)
		}
	}
}

func TestParseErrorsCarryPosition(t *testing.T) {
	_, err := Parse("SELECT a FROM t WHERE a = ")
	if err == nil {
		t.Fatal("want error")
	}
	var pe *ParseError
	if !errorAs(err, &pe) {
		t.Fatalf("want *ParseError, got %T: %v", err, err)
	}
	if pe.Pos <= 0 {
		t.Errorf("position: %d", pe.Pos)
	}
	if !strings.Contains(pe.Error(), "byte") {
		t.Errorf("message: %q", pe.Error())
	}
}

func errorAs(err error, target **ParseError) bool {
	pe, ok := err.(*ParseError)
	if ok {
		*target = pe
	}
	return ok
}

// TestPrintReparseFixpoint checks that printing a parsed statement and
// parsing it again yields the same canonical text — the parser and printer
// agree on the dialect.
func TestPrintReparseFixpoint(t *testing.T) {
	queries := []string{
		"SELECT E.empId FROM Employees E WHERE E.department = 'sales'",
		"SELECT count(orders) FROM Orders O WHERE O.empId = 12",
		"SELECT g.objid FROM photoobjall as g JOIN fgetnearbyobjeq(@ra, @dec, @r) as gn on g.objid=gn.objid left outer join specobj s on s.bestobjid=gn.objid",
		"SELECT p.objid FROM fgetobjfromrect(1, 2, 3, 4) n, photoprimary p WHERE n.objid=p.objid and r between 10 and 20",
		"SELECT TOP 10 * FROM dbo.fGetNearestObjEq(145.38708, 0.12532, 0.1)",
		"SELECT name, type FROM DBObjects WHERE type='U' AND name NOT IN ('a', 'b') ORDER BY name",
		"SELECT DISTINCT a, b FROM t WHERE a LIKE 'x%' GROUP BY a, b HAVING count(*) > 2 ORDER BY a DESC",
		"SELECT a FROM t1 UNION ALL SELECT a FROM t2",
		"SELECT CASE WHEN r > 10 THEN 'big' ELSE 'small' END AS sz FROM t",
		"SELECT * FROM Bugs WHERE assigned_to = NULL",
		"SELECT e.c FROM (SELECT c FROM u WHERE c > 0) e",
	}
	for _, q := range queries {
		sel1 := mustSelect(t, q)
		printed := sqlast.Print(sel1, sqlast.PrintOptions{})
		sel2, err := ParseSelect(printed)
		if err != nil {
			t.Errorf("reparse of %q failed: %v", printed, err)
			continue
		}
		again := sqlast.Print(sel2, sqlast.PrintOptions{})
		if printed != again {
			t.Errorf("not a fixpoint:\n1st: %s\n2nd: %s", printed, again)
		}
		// The canonical (skeleton) forms must also agree.
		if sqlast.Canonical(sel1) != sqlast.Canonical(sel2) {
			t.Errorf("canonical mismatch for %q", q)
		}
	}
}

func TestParseCastAndConvert(t *testing.T) {
	sel := mustSelect(t, "SELECT CAST(ra AS varchar(30)), CAST(objid AS float) FROM t WHERE CAST(x AS int) = 3")
	c, ok := sel.Items[0].Expr.(*sqlast.CastExpr)
	if !ok || c.Type != "varchar" || len(c.TypeArgs) != 1 || c.TypeArgs[0] != "30" {
		t.Fatalf("cast: %#v", sel.Items[0].Expr)
	}
	printed := sqlast.Print(sel, sqlast.PrintOptions{})
	if !strings.Contains(printed, "CAST(ra AS varchar(30))") {
		t.Errorf("printed: %q", printed)
	}
	// CONVERT parses to the same node shape; the style argument is dropped.
	sel = mustSelect(t, "SELECT CONVERT(varchar(10), ra, 101) FROM t")
	c, ok = sel.Items[0].Expr.(*sqlast.CastExpr)
	if !ok || c.Type != "varchar" {
		t.Fatalf("convert: %#v", sel.Items[0].Expr)
	}
	// Round trip through the printer.
	printed = sqlast.Print(sel, sqlast.PrintOptions{})
	if _, err := ParseSelect(printed); err != nil {
		t.Errorf("reparse %q: %v", printed, err)
	}
	// Errors.
	for _, bad := range []string{
		"SELECT CAST(ra varchar) FROM t",
		"SELECT CAST(ra AS ) FROM t",
		"SELECT CONVERT(varchar) FROM t",
	} {
		if _, err := ParseSelect(bad); err == nil {
			t.Errorf("%q: want error", bad)
		}
	}
}

func TestParseTypedDML(t *testing.T) {
	st, err := Parse("INSERT INTO Sales (saleid, barcode) VALUES (1, 4000000001), (2, 4000000002)")
	if err != nil {
		t.Fatal(err)
	}
	ins, ok := st.(*sqlast.InsertStatement)
	if !ok || len(ins.Columns) != 2 || len(ins.Rows) != 2 {
		t.Fatalf("insert: %#v", st)
	}
	st, err = Parse("UPDATE InPresence SET count = count - 1, size = 42 WHERE model = 'runner'")
	if err != nil {
		t.Fatal(err)
	}
	upd, ok := st.(*sqlast.UpdateStatement)
	if !ok || len(upd.Set) != 2 || upd.Where == nil {
		t.Fatalf("update: %#v", st)
	}
	st, err = Parse("DELETE FROM Sales WHERE saleid = 1;")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := st.(*sqlast.DeleteStatement); !ok {
		t.Fatalf("delete: %#v", st)
	}
}

func TestDMLPrintRoundTrip(t *testing.T) {
	for _, q := range []string{
		"INSERT INTO Sales (saleid, barcode) VALUES (1, 2)",
		"INSERT INTO t VALUES (1, 'x', NULL)",
		"UPDATE t SET a = a + 1 WHERE b = 'x'",
		"DELETE FROM t WHERE a BETWEEN 1 AND 2",
	} {
		st, err := Parse(q)
		if err != nil {
			t.Fatalf("%q: %v", q, err)
		}
		printed := sqlast.PrintStatement(st, sqlast.PrintOptions{})
		st2, err := Parse(printed)
		if err != nil {
			t.Fatalf("reparse %q: %v", printed, err)
		}
		again := sqlast.PrintStatement(st2, sqlast.PrintOptions{})
		if printed != again {
			t.Errorf("not a fixpoint:\n1: %s\n2: %s", printed, again)
		}
	}
}

func TestUnmodeledDMLDegradesToOther(t *testing.T) {
	for _, q := range []string{
		"INSERT INTO t SELECT * FROM u",
		"UPDATE t SET a = 1 FROM u WHERE t.x = u.x",
		"DELETE t FROM t JOIN u ON t.x = u.x",
		"TRUNCATE TABLE t",
	} {
		st, err := Parse(q)
		if err != nil {
			t.Fatalf("%q: %v", q, err)
		}
		o, ok := st.(*sqlast.OtherStatement)
		if !ok || o.Class != sqlast.ClassDML {
			t.Errorf("%q: %#v", q, st)
		}
	}
}
