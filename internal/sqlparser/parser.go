// Package sqlparser parses the T-SQL-ish SELECT dialect found in
// SkyServer-style query logs into sqlast trees. Non-SELECT statements are
// classified (DML, DDL, EXEC) without being deeply modeled, because the
// framework cleans a log of SELECT statements only (paper §2.2).
package sqlparser

import (
	"fmt"
	"strings"
	"sync"

	"sqlclean/internal/sqlast"
	"sqlclean/internal/sqltoken"
)

// ParseError describes a syntax error with the byte offset where it occurred.
type ParseError struct {
	Pos int
	Msg string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("sql parse error at byte %d: %s", e.Pos, e.Msg)
}

// tokenBufs recycles token slices across Parse calls. AST nodes keep only
// strings (aliasing src or interned keywords), never Tokens, so the buffer
// can be returned to the pool as soon as parsing finishes.
var tokenBufs = sync.Pool{
	New: func() any { b := make([]sqltoken.Token, 0, 128); return &b },
}

// Parse parses a single SQL statement. SELECT statements get a full AST;
// DML/DDL/EXEC statements are classified into OtherStatement. A trailing
// semicolon is allowed.
func Parse(src string) (sqlast.Statement, error) {
	bp := tokenBufs.Get().(*[]sqltoken.Token)
	toks, err := sqltoken.TokenizeAppend((*bp)[:0], src)
	if err != nil {
		*bp = toks[:0]
		tokenBufs.Put(bp)
		return nil, err
	}
	p := &parser{toks: toks, src: src}
	st, err := p.parseStatement()
	*bp = toks[:0]
	tokenBufs.Put(bp)
	return st, err
}

// ParseSelect parses src, requiring it to be a SELECT statement.
func ParseSelect(src string) (*sqlast.SelectStatement, error) {
	st, err := Parse(src)
	if err != nil {
		return nil, err
	}
	sel, ok := st.(*sqlast.SelectStatement)
	if !ok {
		return nil, fmt.Errorf("not a SELECT statement: %s", Classify(src))
	}
	return sel, nil
}

// Classify is a fast pre-pass that labels a statement without a full parse
// of non-SELECT statements. For SELECTs it still performs the full parse so
// that syntax errors are detected.
func Classify(src string) sqlast.StatementClass {
	st, err := Parse(src)
	if err != nil {
		return sqlast.ClassError
	}
	switch s := st.(type) {
	case *sqlast.SelectStatement:
		return sqlast.ClassSelect
	case *sqlast.InsertStatement, *sqlast.UpdateStatement, *sqlast.DeleteStatement:
		return sqlast.ClassDML
	case *sqlast.OtherStatement:
		return s.Class
	}
	return sqlast.ClassError
}

type parser struct {
	toks []sqltoken.Token
	pos  int
	src  string
}

func (p *parser) cur() sqltoken.Token {
	if p.pos < len(p.toks) {
		return p.toks[p.pos]
	}
	return sqltoken.Token{Kind: sqltoken.EOF, Pos: len(p.src)}
}

func (p *parser) peek(off int) sqltoken.Token {
	if p.pos+off < len(p.toks) {
		return p.toks[p.pos+off]
	}
	return sqltoken.Token{Kind: sqltoken.EOF, Pos: len(p.src)}
}

func (p *parser) advance() sqltoken.Token {
	t := p.cur()
	p.pos++
	return t
}

func (p *parser) errf(format string, args ...any) error {
	return &ParseError{Pos: p.cur().Pos, Msg: fmt.Sprintf(format, args...)}
}

// isKw reports whether the current token is the given keyword.
func (p *parser) isKw(kw string) bool {
	t := p.cur()
	return t.Kind == sqltoken.Keyword && t.Val == kw
}

// acceptKw consumes the keyword if present.
func (p *parser) acceptKw(kw string) bool {
	if p.isKw(kw) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectKw(kw string) error {
	if !p.acceptKw(kw) {
		return p.errf("expected %s, found %s", kw, p.describeCur())
	}
	return nil
}

// isOp reports whether the current token is the given operator.
func (p *parser) isOp(op string) bool {
	t := p.cur()
	return t.Kind == sqltoken.Op && t.Val == op
}

func (p *parser) acceptOp(op string) bool {
	if p.isOp(op) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectOp(op string) error {
	if !p.acceptOp(op) {
		return p.errf("expected %q, found %s", op, p.describeCur())
	}
	return nil
}

func (p *parser) describeCur() string {
	t := p.cur()
	if t.Kind == sqltoken.EOF {
		return "end of statement"
	}
	return fmt.Sprintf("%s %q", strings.ToLower(t.Kind.String()), t.Val)
}

// ---------------------------------------------------------------------------
// Statement dispatch
// ---------------------------------------------------------------------------

func (p *parser) parseStatement() (sqlast.Statement, error) {
	t := p.cur()
	if t.Kind == sqltoken.EOF {
		return nil, p.errf("empty statement")
	}
	if t.Kind != sqltoken.Keyword {
		return nil, p.errf("statement must start with a keyword, found %s", p.describeCur())
	}
	switch t.Val {
	case "SELECT":
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		p.acceptOp(";")
		if p.cur().Kind != sqltoken.EOF {
			return nil, p.errf("unexpected trailing input: %s", p.describeCur())
		}
		return sel, nil
	case "INSERT", "UPDATE", "DELETE", "TRUNCATE":
		// Attempt the typed parse; dialect forms beyond the model degrade
		// to an OtherStatement so classification stays ClassDML.
		save := p.pos
		var st sqlast.Statement
		var ok bool
		switch t.Val {
		case "INSERT":
			st, ok = p.parseInsert()
		case "UPDATE":
			st, ok = p.parseUpdate()
		case "DELETE":
			st, ok = p.parseDelete()
		}
		if ok {
			return st, nil
		}
		p.pos = save
		return &sqlast.OtherStatement{Class: sqlast.ClassDML, Verb: t.Val, Raw: p.src}, nil
	case "CREATE", "DROP", "ALTER", "GRANT", "REVOKE":
		return &sqlast.OtherStatement{Class: sqlast.ClassDDL, Verb: t.Val, Raw: p.src}, nil
	case "EXEC", "EXECUTE", "DECLARE", "BEGIN", "SET":
		return &sqlast.OtherStatement{Class: sqlast.ClassExec, Verb: t.Val, Raw: p.src}, nil
	}
	return nil, p.errf("unsupported statement verb %s", t.Val)
}

// ---------------------------------------------------------------------------
// SELECT
// ---------------------------------------------------------------------------

func (p *parser) parseSelect() (*sqlast.SelectStatement, error) {
	if err := p.expectKw("SELECT"); err != nil {
		return nil, err
	}
	s := &sqlast.SelectStatement{}
	if p.acceptKw("DISTINCT") {
		s.Distinct = true
	} else {
		p.acceptKw("ALL")
	}
	if p.acceptKw("TOP") {
		paren := p.acceptOp("(")
		t := p.cur()
		if t.Kind != sqltoken.Number {
			return nil, p.errf("expected number after TOP, found %s", p.describeCur())
		}
		p.advance()
		s.Top = &sqlast.Literal{Kind: "num", Val: t.Val}
		if paren {
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
		}
		if p.cur().Kind == sqltoken.Ident && sqltoken.Canon(p.cur().Val) == "PERCENT" {
			p.advance()
			s.TopPercent = true
		}
	}
	items, err := p.parseSelectList()
	if err != nil {
		return nil, err
	}
	s.Items = items

	if p.acceptKw("INTO") {
		// SELECT ... INTO target: the target is a side effect out of scope
		// for log cleaning; consume the name so the rest still parses.
		if _, _, err := p.parseQualifiedName(); err != nil {
			return nil, err
		}
	}

	if p.acceptKw("FROM") {
		from, err := p.parseFromList()
		if err != nil {
			return nil, err
		}
		s.From = from
	}
	if p.acceptKw("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Where = w
	}
	if p.isKw("GROUP") {
		p.advance()
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			s.GroupBy = append(s.GroupBy, e)
			if !p.acceptOp(",") {
				break
			}
		}
	}
	if p.acceptKw("HAVING") {
		h, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Having = h
	}
	if p.isKw("ORDER") {
		p.advance()
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			oi := sqlast.OrderItem{Expr: e}
			if p.acceptKw("DESC") {
				oi.Desc = true
			} else {
				p.acceptKw("ASC")
			}
			s.OrderBy = append(s.OrderBy, oi)
			if !p.acceptOp(",") {
				break
			}
		}
	}
	// Set operations chain right-associatively.
	for _, op := range []string{"UNION", "EXCEPT", "INTERSECT"} {
		if p.isKw(op) {
			p.advance()
			setOp := op
			if op == "UNION" && p.acceptKw("ALL") {
				setOp = "UNION ALL"
			}
			right, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			s.SetOp = setOp
			s.SetRight = right
			break
		}
	}
	return s, nil
}

func (p *parser) parseSelectList() ([]sqlast.SelectItem, error) {
	var items []sqlast.SelectItem
	for {
		it, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		items = append(items, it)
		if !p.acceptOp(",") {
			break
		}
	}
	return items, nil
}

func (p *parser) parseSelectItem() (sqlast.SelectItem, error) {
	// alias = expr form (T-SQL): ident '=' expr, where ident is not followed
	// by '.' or '('. Disambiguate from a comparison by requiring the '='
	// directly after a bare identifier and treating it as assignment alias
	// only in the select list.
	if p.cur().Kind == sqltoken.Ident && p.peek(1).Kind == sqltoken.Op && p.peek(1).Val == "=" {
		// Could be "alias = expr". SELECT items rarely start with a bare
		// comparison, but to stay conservative only treat it as an alias
		// when the identifier is not qualified.
		alias := p.cur().Val
		p.pos += 2
		e, err := p.parseExpr()
		if err != nil {
			return sqlast.SelectItem{}, err
		}
		return sqlast.SelectItem{Expr: e, Alias: alias}, nil
	}
	if p.isOp("*") && p.starIsWholeItem() {
		p.advance()
		it := sqlast.SelectItem{Expr: &sqlast.ColumnRef{Star: true}}
		// "alias = *" round-trips as "* AS alias"; only an explicit AS
		// introduces it (a bare identifier after * would be ambiguous).
		if p.acceptKw("AS") {
			t := p.cur()
			if t.Kind != sqltoken.Ident && t.Kind != sqltoken.QuotedIdent && t.Kind != sqltoken.Keyword {
				return sqlast.SelectItem{}, p.errf("expected alias after AS, found %s", p.describeCur())
			}
			p.advance()
			it.Alias = t.Val
		}
		return it, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return sqlast.SelectItem{}, err
	}
	it := sqlast.SelectItem{Expr: e}
	if alias, ok := p.parseOptionalAlias(); ok {
		it.Alias = alias
	}
	return it, nil
}

// starIsWholeItem reports whether a '*' at the current position is a whole
// select item (SELECT *, SELECT * AS a, SELECT *, b FROM ...) rather than a
// multiplication operand (SELECT * % 2 — star as a value is nonsense SQL,
// but it must round-trip through expression parsing, not the item
// shortcut).
func (p *parser) starIsWholeItem() bool {
	nxt := p.peek(1)
	switch nxt.Kind {
	case sqltoken.EOF, sqltoken.Keyword:
		return true
	case sqltoken.Op:
		return nxt.Val == "," || nxt.Val == ";"
	}
	return false
}

// parseOptionalAlias consumes [AS] ident if present.
func (p *parser) parseOptionalAlias() (string, bool) {
	if p.acceptKw("AS") {
		t := p.cur()
		if t.Kind == sqltoken.Ident || t.Kind == sqltoken.QuotedIdent {
			p.advance()
			return t.Val, true
		}
		// AS must be followed by a name; tolerate keyword-like aliases.
		if t.Kind == sqltoken.Keyword {
			p.advance()
			return t.Val, true
		}
		return "", false
	}
	t := p.cur()
	if t.Kind == sqltoken.Ident || t.Kind == sqltoken.QuotedIdent {
		p.advance()
		return t.Val, true
	}
	return "", false
}

// ---------------------------------------------------------------------------
// FROM clause
// ---------------------------------------------------------------------------

func (p *parser) parseFromList() ([]sqlast.TableSource, error) {
	var out []sqlast.TableSource
	for {
		ts, err := p.parseJoinChain()
		if err != nil {
			return nil, err
		}
		out = append(out, ts)
		if !p.acceptOp(",") {
			break
		}
	}
	return out, nil
}

func (p *parser) parseJoinChain() (sqlast.TableSource, error) {
	left, err := p.parseTablePrimary()
	if err != nil {
		return nil, err
	}
	for {
		kind, ok := p.parseJoinKind()
		if !ok {
			return left, nil
		}
		right, err := p.parseTablePrimary()
		if err != nil {
			return nil, err
		}
		j := &sqlast.Join{Kind: kind, Left: left, Right: right}
		if kind != sqlast.CrossJoin && kind != sqlast.CrossApply && kind != sqlast.OuterApply {
			if err := p.expectKw("ON"); err != nil {
				return nil, err
			}
			cond, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			j.Cond = cond
		}
		left = j
	}
}

func (p *parser) parseJoinKind() (sqlast.JoinKind, bool) {
	switch {
	case p.isKw("JOIN"):
		p.advance()
		return sqlast.InnerJoin, true
	case p.isKw("INNER"):
		p.advance()
		p.acceptKw("JOIN")
		return sqlast.InnerJoin, true
	case p.isKw("LEFT"):
		p.advance()
		p.acceptKw("OUTER")
		p.acceptKw("JOIN")
		return sqlast.LeftJoin, true
	case p.isKw("RIGHT"):
		p.advance()
		p.acceptKw("OUTER")
		p.acceptKw("JOIN")
		return sqlast.RightJoin, true
	case p.isKw("FULL"):
		p.advance()
		p.acceptKw("OUTER")
		p.acceptKw("JOIN")
		return sqlast.FullJoin, true
	case p.isKw("CROSS"):
		p.advance()
		if p.acceptKw("APPLY") {
			return sqlast.CrossApply, true
		}
		p.acceptKw("JOIN")
		return sqlast.CrossJoin, true
	case p.isKw("OUTER"):
		p.advance()
		p.acceptKw("APPLY")
		return sqlast.OuterApply, true
	}
	return 0, false
}

func (p *parser) parseTablePrimary() (sqlast.TableSource, error) {
	if p.acceptOp("(") {
		if p.isKw("SELECT") {
			sub, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			dt := &sqlast.DerivedTable{Sub: sub}
			if alias, ok := p.parseOptionalAlias(); ok {
				dt.Alias = alias
			}
			return dt, nil
		}
		// Parenthesized join chain.
		ts, err := p.parseJoinChain()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return ts, nil
	}
	schema, name, err := p.parseQualifiedName()
	if err != nil {
		return nil, err
	}
	if p.isOp("(") {
		// Table-valued function.
		call := &sqlast.FuncCall{Schema: schema, Name: name}
		if err := p.parseCallArgs(call); err != nil {
			return nil, err
		}
		fs := &sqlast.FuncSource{Call: call}
		if alias, ok := p.parseOptionalAlias(); ok {
			fs.Alias = alias
		}
		return fs, nil
	}
	tr := &sqlast.TableRef{Schema: schema, Name: name}
	if alias, ok := p.parseOptionalAlias(); ok {
		tr.Alias = alias
	}
	return tr, nil
}

// parseQualifiedName parses ident[.ident] and returns (schema, name). A
// single identifier yields ("", name).
func (p *parser) parseQualifiedName() (schema, name string, err error) {
	t := p.cur()
	if t.Kind != sqltoken.Ident && t.Kind != sqltoken.QuotedIdent {
		return "", "", p.errf("expected table name, found %s", p.describeCur())
	}
	p.advance()
	name = t.Val
	for p.isOp(".") {
		p.advance()
		t = p.cur()
		if t.Kind != sqltoken.Ident && t.Kind != sqltoken.QuotedIdent {
			return "", "", p.errf("expected name after '.', found %s", p.describeCur())
		}
		p.advance()
		schema, name = name, t.Val
	}
	return schema, name, nil
}

func (p *parser) parseCallArgs(call *sqlast.FuncCall) error {
	if err := p.expectOp("("); err != nil {
		return err
	}
	if p.acceptOp(")") {
		return nil
	}
	if p.acceptKw("DISTINCT") {
		call.Distinct = true
	}
	if p.isOp("*") && p.peek(1).Kind == sqltoken.Op && p.peek(1).Val == ")" {
		p.advance()
		call.Star = true
		return p.expectOp(")")
	}
	for {
		a, err := p.parseExpr()
		if err != nil {
			return err
		}
		call.Args = append(call.Args, a)
		if !p.acceptOp(",") {
			break
		}
	}
	return p.expectOp(")")
}

// ---------------------------------------------------------------------------
// Expressions (precedence climbing)
// ---------------------------------------------------------------------------

func (p *parser) parseExpr() (sqlast.Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (sqlast.Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.isKw("OR") {
		p.advance()
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &sqlast.BinaryExpr{Op: "OR", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (sqlast.Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.isKw("AND") {
		p.advance()
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &sqlast.BinaryExpr{Op: "AND", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseNot() (sqlast.Expr, error) {
	if p.acceptKw("NOT") {
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &sqlast.UnaryExpr{Op: "NOT", X: x}, nil
	}
	return p.parseComparison()
}

var comparisonOps = map[string]string{
	"=": "=", "<>": "<>", "!=": "<>", "<": "<", ">": ">", "<=": "<=",
	">=": ">=", "!<": ">=", "!>": "<=",
}

func (p *parser) parseComparison() (sqlast.Expr, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	t := p.cur()
	if t.Kind == sqltoken.Op {
		if norm, ok := comparisonOps[t.Val]; ok {
			p.advance()
			right, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			return &sqlast.BinaryExpr{Op: norm, Left: left, Right: right}, nil
		}
	}
	not := false
	if p.isKw("NOT") {
		nxt := p.peek(1)
		if nxt.Kind == sqltoken.Keyword && (nxt.Val == "IN" || nxt.Val == "BETWEEN" || nxt.Val == "LIKE") {
			p.advance()
			not = true
		}
	}
	switch {
	case p.acceptKw("IN"):
		return p.parseInTail(left, not)
	case p.acceptKw("BETWEEN"):
		lo, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &sqlast.BetweenExpr{X: left, Not: not, Lo: lo, Hi: hi}, nil
	case p.acceptKw("LIKE"):
		pat, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &sqlast.LikeExpr{X: left, Not: not, Pattern: pat}, nil
	case p.acceptKw("IS"):
		isNot := p.acceptKw("NOT")
		if err := p.expectKw("NULL"); err != nil {
			return nil, err
		}
		return &sqlast.IsNullExpr{X: left, Not: isNot}, nil
	}
	if not {
		return nil, p.errf("dangling NOT")
	}
	return left, nil
}

func (p *parser) parseInTail(left sqlast.Expr, not bool) (sqlast.Expr, error) {
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	in := &sqlast.InExpr{X: left, Not: not}
	if p.isKw("SELECT") {
		sub, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		in.Sub = sub
	} else {
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			in.List = append(in.List, e)
			if !p.acceptOp(",") {
				break
			}
		}
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return in, nil
}

func (p *parser) parseAdditive() (sqlast.Expr, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.Kind == sqltoken.Op && (t.Val == "+" || t.Val == "-" || t.Val == "&" || t.Val == "|" || t.Val == "^") {
			p.advance()
			right, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			left = &sqlast.BinaryExpr{Op: t.Val, Left: left, Right: right}
			continue
		}
		return left, nil
	}
}

func (p *parser) parseMultiplicative() (sqlast.Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.Kind == sqltoken.Op && (t.Val == "*" || t.Val == "/" || t.Val == "%") {
			p.advance()
			right, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			left = &sqlast.BinaryExpr{Op: t.Val, Left: left, Right: right}
			continue
		}
		return left, nil
	}
}

func (p *parser) parseUnary() (sqlast.Expr, error) {
	t := p.cur()
	if t.Kind == sqltoken.Op && (t.Val == "-" || t.Val == "+" || t.Val == "~") {
		p.advance()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		// Fold unary minus into a numeric literal so that "-5" skeletonizes
		// to a single <num> placeholder. Already-negative literals are left
		// as a unary expression ("--5" would lex as a comment).
		if t.Val == "-" {
			if lit, ok := x.(*sqlast.Literal); ok && lit.Kind == "num" && !strings.HasPrefix(lit.Val, "-") {
				return &sqlast.Literal{Kind: "num", Val: "-" + lit.Val}, nil
			}
		}
		if t.Val == "+" {
			if lit, ok := x.(*sqlast.Literal); ok && lit.Kind == "num" {
				return lit, nil
			}
		}
		return &sqlast.UnaryExpr{Op: t.Val, X: x}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (sqlast.Expr, error) {
	t := p.cur()
	switch t.Kind {
	case sqltoken.Number:
		p.advance()
		return &sqlast.Literal{Kind: "num", Val: t.Val}, nil
	case sqltoken.String:
		p.advance()
		return &sqlast.Literal{Kind: "str", Val: t.Val}, nil
	case sqltoken.Variable:
		p.advance()
		return &sqlast.Variable{Name: t.Val}, nil
	case sqltoken.Keyword:
		switch t.Val {
		case "NULL":
			p.advance()
			return &sqlast.Literal{Kind: "null"}, nil
		case "CASE":
			return p.parseCase()
		case "CAST":
			return p.parseCast()
		case "CONVERT":
			return p.parseConvert()
		case "EXISTS":
			p.advance()
			if err := p.expectOp("("); err != nil {
				return nil, err
			}
			sub, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return &sqlast.ExistsExpr{Sub: sub}, nil
		case "COUNT", "SUM", "AVG", "MIN", "MAX", "LEFT", "RIGHT":
			// Aggregate and builtin names are lexed as keywords; when
			// followed by '(' they are function calls, otherwise they are
			// ordinary (non-reserved) column names, like T-SQL's "count".
			if p.peek(1).Kind == sqltoken.Op && p.peek(1).Val == "(" {
				p.advance()
				call := &sqlast.FuncCall{Name: strings.ToLower(t.Val)}
				if err := p.parseCallArgs(call); err != nil {
					return nil, err
				}
				return call, nil
			}
			p.advance()
			return &sqlast.ColumnRef{Name: strings.ToLower(t.Val)}, nil
		}
		return nil, p.errf("unexpected keyword %s in expression", t.Val)
	case sqltoken.Op:
		if t.Val == "(" {
			p.advance()
			if p.isKw("SELECT") {
				sub, err := p.parseSelect()
				if err != nil {
					return nil, err
				}
				if err := p.expectOp(")"); err != nil {
					return nil, err
				}
				return &sqlast.SubqueryExpr{Sub: sub}, nil
			}
			x, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return &sqlast.ParenExpr{X: x}, nil
		}
		if t.Val == "*" {
			p.advance()
			return &sqlast.ColumnRef{Star: true}, nil
		}
		return nil, p.errf("unexpected %q in expression", t.Val)
	case sqltoken.Ident, sqltoken.QuotedIdent:
		return p.parseNameExpr()
	}
	return nil, p.errf("unexpected %s in expression", p.describeCur())
}

// parseNameExpr handles identifiers: column refs (possibly qualified,
// possibly .*) and function calls (possibly schema-qualified).
func (p *parser) parseNameExpr() (sqlast.Expr, error) {
	first := p.advance()
	// Qualified names have at most 3 useful parts (db.table.column); a
	// stack-backed array keeps this very hot path allocation-free (one slot
	// of slack so a 4-part name still reaches the error below).
	var partsBuf [4]string
	parts := append(partsBuf[:0], first.Val)
	for p.isOp(".") {
		if nxt := p.peek(1); nxt.Kind == sqltoken.Op && nxt.Val == "*" {
			p.pos += 2
			if len(parts) > 2 {
				return nil, p.errf("too many qualifiers before .*")
			}
			return &sqlast.ColumnRef{Qualifier: parts[len(parts)-1], Star: true}, nil
		}
		nxt := p.peek(1)
		if nxt.Kind != sqltoken.Ident && nxt.Kind != sqltoken.QuotedIdent && nxt.Kind != sqltoken.Keyword {
			return nil, p.errf("expected name after '.'")
		}
		p.pos += 2
		parts = append(parts, nxt.Val)
	}
	if p.isOp("(") {
		call := &sqlast.FuncCall{Name: parts[len(parts)-1]}
		if len(parts) >= 2 {
			call.Schema = parts[len(parts)-2]
		}
		if len(parts) > 2 {
			return nil, p.errf("function name has too many qualifiers")
		}
		if err := p.parseCallArgs(call); err != nil {
			return nil, err
		}
		return call, nil
	}
	switch len(parts) {
	case 1:
		return &sqlast.ColumnRef{Name: parts[0]}, nil
	case 2:
		return &sqlast.ColumnRef{Qualifier: parts[0], Name: parts[1]}, nil
	case 3:
		// db.table.column — keep the last two components.
		return &sqlast.ColumnRef{Qualifier: parts[1], Name: parts[2]}, nil
	}
	return nil, p.errf("name has too many qualifiers")
}

// parseTypeName parses a type name with optional length/precision
// arguments: int, float, varchar(30), decimal(10, 2).
func (p *parser) parseTypeName() (name string, args []string, err error) {
	t := p.cur()
	if t.Kind != sqltoken.Ident && t.Kind != sqltoken.QuotedIdent && t.Kind != sqltoken.Keyword {
		return "", nil, p.errf("expected type name, found %s", p.describeCur())
	}
	p.advance()
	name = t.Val
	if p.acceptOp("(") {
		for {
			a := p.cur()
			if a.Kind != sqltoken.Number && a.Kind != sqltoken.Ident {
				return "", nil, p.errf("expected type argument, found %s", p.describeCur())
			}
			p.advance()
			args = append(args, a.Val)
			if !p.acceptOp(",") {
				break
			}
		}
		if err := p.expectOp(")"); err != nil {
			return "", nil, err
		}
	}
	return name, args, nil
}

// parseCast parses CAST(expr AS type).
func (p *parser) parseCast() (sqlast.Expr, error) {
	p.advance() // CAST
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	x, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("AS"); err != nil {
		return nil, err
	}
	name, args, err := p.parseTypeName()
	if err != nil {
		return nil, err
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return &sqlast.CastExpr{X: x, Type: name, TypeArgs: args}, nil
}

// parseConvert parses T-SQL CONVERT(type, expr [, style]) into a CastExpr;
// the optional style argument is discarded (it only affects formatting).
func (p *parser) parseConvert() (sqlast.Expr, error) {
	p.advance() // CONVERT
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	name, args, err := p.parseTypeName()
	if err != nil {
		return nil, err
	}
	if err := p.expectOp(","); err != nil {
		return nil, err
	}
	x, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.acceptOp(",") {
		if p.cur().Kind != sqltoken.Number {
			return nil, p.errf("expected CONVERT style number, found %s", p.describeCur())
		}
		p.advance()
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return &sqlast.CastExpr{X: x, Type: name, TypeArgs: args}, nil
}

func (p *parser) parseCase() (sqlast.Expr, error) {
	if err := p.expectKw("CASE"); err != nil {
		return nil, err
	}
	c := &sqlast.CaseExpr{}
	if !p.isKw("WHEN") {
		op, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Operand = op
	}
	for p.acceptKw("WHEN") {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("THEN"); err != nil {
			return nil, err
		}
		then, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Whens = append(c.Whens, sqlast.CaseWhen{Cond: cond, Then: then})
	}
	if len(c.Whens) == 0 {
		return nil, p.errf("CASE without WHEN")
	}
	if p.acceptKw("ELSE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Else = e
	}
	if err := p.expectKw("END"); err != nil {
		return nil, err
	}
	return c, nil
}
