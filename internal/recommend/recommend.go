// Package recommend implements the query-recommendation study the paper
// outlines as future work (§7): a next-query recommender trained on a query
// log, used to quantify how antipatterns in the training log contaminate
// the recommendations. The model is a first-order Markov chain over query
// templates — per session, each consecutive template pair (A → B) is one
// training observation — which is the simplest member of the
// session-based recommender family of QueRIE [6].
package recommend

import (
	"sort"

	"sqlclean/internal/parsedlog"
	"sqlclean/internal/session"
	"sqlclean/internal/sqlast"
)

// Suggestion is one recommended next query template.
type Suggestion struct {
	Fingerprint uint64
	// Skeleton is the template's skeleton text.
	Skeleton string
	// Example is a concrete statement instantiating the template.
	Example string
	// Score is the conditional probability P(next = this | current).
	Score float64
}

// Model is a trained next-template recommender.
type Model struct {
	// transitions[from][to] counts observed template bigrams.
	transitions map[uint64]map[uint64]int
	// fromTotals[from] is the row sum of transitions[from].
	fromTotals map[uint64]int
	skeletons  map[uint64]string
	examples   map[uint64]string
}

// Train builds a model from the sessions of a parsed log. Non-SELECT
// entries break the bigram chain.
func Train(pl parsedlog.Log, sessions []session.Session) *Model {
	m := &Model{
		transitions: map[uint64]map[uint64]int{},
		fromTotals:  map[uint64]int{},
		skeletons:   map[uint64]string{},
		examples:    map[uint64]string{},
	}
	for _, sess := range sessions {
		var prev uint64
		havePrev := false
		for _, idx := range sess.Indices {
			e := pl[idx]
			if e.Class != sqlast.ClassSelect || e.Info == nil {
				havePrev = false
				continue
			}
			fp := e.Info.Fingerprint
			if _, ok := m.skeletons[fp]; !ok {
				m.skeletons[fp] = e.Info.SkeletonText()
				m.examples[fp] = e.Statement
			}
			if havePrev {
				row, ok := m.transitions[prev]
				if !ok {
					row = map[uint64]int{}
					m.transitions[prev] = row
				}
				row[fp]++
				m.fromTotals[prev]++
			}
			prev = fp
			havePrev = true
		}
	}
	return m
}

// States returns the number of templates with at least one outgoing
// transition.
func (m *Model) States() int { return len(m.transitions) }

// Observations returns the total number of training bigrams.
func (m *Model) Observations() int {
	n := 0
	for _, t := range m.fromTotals {
		n += t
	}
	return n
}

// Skeleton returns the skeleton text of a known template.
func (m *Model) Skeleton(fp uint64) (string, bool) {
	s, ok := m.skeletons[fp]
	return s, ok
}

// Recommend returns the top-k next templates after current, most probable
// first (ties broken by skeleton text for determinism). Unknown states
// yield nil.
func (m *Model) Recommend(current uint64, k int) []Suggestion {
	row, ok := m.transitions[current]
	if !ok || m.fromTotals[current] == 0 {
		return nil
	}
	total := float64(m.fromTotals[current])
	out := make([]Suggestion, 0, len(row))
	for fp, n := range row {
		out = append(out, Suggestion{
			Fingerprint: fp,
			Skeleton:    m.skeletons[fp],
			Example:     m.examples[fp],
			Score:       float64(n) / total,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Skeleton < out[j].Skeleton
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// ContaminationReport quantifies how much of the model's recommendation
// mass lands on antipattern templates.
type ContaminationReport struct {
	// States is the number of predictable states.
	States int
	// Top1Antipattern is the share of states (weighted by how often the
	// state occurs as a predecessor) whose top-1 recommendation is an
	// antipattern template.
	Top1Antipattern float64
	// MassAntipattern is the share of total transition probability mass
	// (weighted the same way) pointing at antipattern templates.
	MassAntipattern float64
}

// Contamination evaluates the model against a set of antipattern template
// fingerprints (e.g. core.Result.AntipatternTemplates of the training log's
// pipeline run).
func (m *Model) Contamination(anti map[uint64]bool) ContaminationReport {
	rep := ContaminationReport{States: len(m.transitions)}
	totalWeight := 0.0
	top1 := 0.0
	mass := 0.0
	for from, row := range m.transitions {
		weight := float64(m.fromTotals[from])
		totalWeight += weight
		best := Suggestion{}
		for fp, n := range row {
			p := float64(n) / float64(m.fromTotals[from])
			if anti[fp] {
				mass += weight * p
			}
			if p > best.Score || (p == best.Score && m.skeletons[fp] < best.Skeleton) {
				best = Suggestion{Fingerprint: fp, Skeleton: m.skeletons[fp], Score: p}
			}
		}
		if anti[best.Fingerprint] {
			top1 += weight
		}
	}
	if totalWeight > 0 {
		rep.Top1Antipattern = top1 / totalWeight
		rep.MassAntipattern = mass / totalWeight
	}
	return rep
}
