package recommend

import (
	"testing"
	"time"

	"sqlclean/internal/core"
	"sqlclean/internal/logmodel"
	"sqlclean/internal/parsedlog"
	"sqlclean/internal/session"
	"sqlclean/internal/workload"
)

func trainOn(t *testing.T, stmts ...string) (*Model, parsedlog.Log) {
	t.Helper()
	base := time.Date(2003, 6, 1, 0, 0, 0, 0, time.UTC)
	var l logmodel.Log
	for i, s := range stmts {
		l = append(l, logmodel.Entry{Seq: int64(i), Time: base.Add(time.Duration(i) * time.Second), User: "u", Statement: s})
	}
	pl, _ := parsedlog.Parse(l)
	sessions := session.Build(l, session.Options{})
	return Train(pl, sessions), pl
}

func TestTrainAndRecommend(t *testing.T) {
	m, pl := trainOn(t,
		"SELECT a FROM t WHERE id = 1", // A
		"SELECT b FROM u WHERE k = 1",  // B
		"SELECT a FROM t WHERE id = 2", // A
		"SELECT b FROM u WHERE k = 2",  // B
		"SELECT a FROM t WHERE id = 3", // A
		"SELECT c FROM v WHERE m = 1",  // C
	)
	if m.States() != 2 { // A and B have successors
		t.Fatalf("states: %d", m.States())
	}
	if m.Observations() != 5 {
		t.Fatalf("observations: %d", m.Observations())
	}
	fpA := pl[0].Info.Fingerprint
	recs := m.Recommend(fpA, 5)
	if len(recs) != 2 {
		t.Fatalf("recs: %+v", recs)
	}
	// A → B twice, A → C once.
	if recs[0].Skeleton != pl[1].Info.SkeletonText() || recs[0].Score < 0.66 {
		t.Errorf("top rec: %+v", recs[0])
	}
	if recs[1].Score > recs[0].Score {
		t.Error("not sorted by score")
	}
	// Top-k truncation.
	if got := m.Recommend(fpA, 1); len(got) != 1 {
		t.Errorf("k=1: %+v", got)
	}
	// Unknown state.
	if got := m.Recommend(0xdead, 3); got != nil {
		t.Errorf("unknown state: %+v", got)
	}
}

func TestNonSelectBreaksChain(t *testing.T) {
	m, _ := trainOn(t,
		"SELECT a FROM t WHERE id = 1",
		"INSERT INTO t VALUES (1)",
		"SELECT b FROM u WHERE k = 1",
	)
	if m.Observations() != 0 {
		t.Fatalf("observations across a non-select: %d", m.Observations())
	}
}

func TestSessionsDoNotBleed(t *testing.T) {
	base := time.Date(2003, 6, 1, 0, 0, 0, 0, time.UTC)
	l := logmodel.Log{
		{Seq: 0, Time: base, User: "u1", Statement: "SELECT a FROM t WHERE id = 1"},
		{Seq: 1, Time: base.Add(time.Second), User: "u2", Statement: "SELECT b FROM u WHERE k = 1"},
	}
	pl, _ := parsedlog.Parse(l)
	sessions := session.Build(l, session.Options{})
	m := Train(pl, sessions)
	if m.Observations() != 0 {
		t.Fatalf("bigram crossed users: %d", m.Observations())
	}
}

func TestContamination(t *testing.T) {
	m, pl := trainOn(t,
		"SELECT a FROM t WHERE id = 1", // A
		"SELECT b FROM u WHERE k = 1",  // B (we'll mark B as antipattern)
		"SELECT a FROM t WHERE id = 2", // A
		"SELECT b FROM u WHERE k = 2",  // B
	)
	anti := map[uint64]bool{pl[1].Info.Fingerprint: true}
	rep := m.Contamination(anti)
	// A → B always; B → A always. Weighted: A occurs twice as predecessor,
	// B once. Top-1 from A is B (anti), from B is A (clean):
	// top1 = 2/3, mass = 2/3.
	if rep.Top1Antipattern < 0.66 || rep.Top1Antipattern > 0.67 {
		t.Errorf("top1: %v", rep.Top1Antipattern)
	}
	if rep.MassAntipattern < 0.66 || rep.MassAntipattern > 0.67 {
		t.Errorf("mass: %v", rep.MassAntipattern)
	}
	empty := m.Contamination(nil)
	if empty.Top1Antipattern != 0 || empty.MassAntipattern != 0 {
		t.Errorf("no antipatterns: %+v", empty)
	}
}

// TestCleaningReducesContamination is the paper's §7 hypothesis: a
// recommender trained on the cleaned log recommends far fewer antipattern
// queries than one trained on the raw log.
func TestCleaningReducesContamination(t *testing.T) {
	log, _ := workload.Generate(workload.DefaultConfig().Scale(0.3))
	res, err := core.Run(log, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	anti := res.AntipatternTemplates()

	rawModel := Train(res.Parsed, res.Sessions)
	rawRep := rawModel.Contamination(anti)

	cleanParsed, _ := parsedlog.Parse(res.Clean)
	cleanSessions := session.Build(res.Clean, session.Options{MaxGap: 5 * time.Minute})
	cleanModel := Train(cleanParsed, cleanSessions)
	cleanRep := cleanModel.Contamination(anti)

	if rawRep.MassAntipattern == 0 {
		t.Fatal("raw log must contain antipattern transitions")
	}
	if cleanRep.MassAntipattern >= rawRep.MassAntipattern {
		t.Errorf("cleaning did not reduce contamination: raw %.3f, clean %.3f",
			rawRep.MassAntipattern, cleanRep.MassAntipattern)
	}
	// The reduction should be substantial (the Stifle mass is gone).
	if cleanRep.MassAntipattern > rawRep.MassAntipattern/2 {
		t.Errorf("reduction too small: raw %.3f, clean %.3f",
			rawRep.MassAntipattern, cleanRep.MassAntipattern)
	}
}
