package server

import (
	"context"
	"net/http"
	"testing"
	"time"

	"sqlclean/internal/logmodel"
	"sqlclean/internal/workload"
)

// TestClustersEndpoint ingests a SkyServer-mix workload, drains, and checks
// that /clusters reports a non-empty clustering with working counters.
func TestClustersEndpoint(t *testing.T) {
	s, ts := newTestServer(t, Config{})

	log, _ := workload.Generate(workload.DefaultConfig().Scale(0.05))
	ir := postIngest(t, ts.URL, ndjsonBody(log))
	if ir.Accepted != len(log) {
		t.Fatalf("accepted %d, want %d", ir.Accepted, len(log))
	}

	// Close flushes every open session, so all cleaned entries have been
	// observed by the box registry.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Close(ctx); err != nil {
		t.Fatal(err)
	}

	var cp ClustersPayload
	getJSON(t, ts.URL+"/clusters?top=5", &cp)
	if cp.DistinctBoxes == 0 || cp.TotalQueries == 0 {
		t.Fatalf("empty box registry: %+v", cp)
	}
	if cp.ClusterCount == 0 || len(cp.Clusters) == 0 {
		t.Fatalf("no clusters: %+v", cp)
	}
	if cp.Threshold != defaultClusterThreshold {
		t.Errorf("default threshold %g, want %g", cp.Threshold, defaultClusterThreshold)
	}
	if len(cp.Clusters) > 5 {
		t.Errorf("top=5 returned %d clusters", len(cp.Clusters))
	}
	if cp.Clusters[0].Example == "" || cp.Clusters[0].Queries == 0 {
		t.Errorf("top cluster lacks example/weight: %+v", cp.Clusters[0])
	}
	var total int64
	for _, c := range cp.Clusters {
		total += c.Queries
	}
	if total > cp.TotalQueries {
		t.Errorf("cluster weights %d exceed total queries %d", total, cp.TotalQueries)
	}

	// A per-request threshold override must be honored; threshold 1 merges
	// only overlapping regions, so the count can only grow or stay equal
	// relative to 0.9... it is in fact a different clustering; just check
	// the override is echoed and the result is still non-empty.
	var cp1 ClustersPayload
	getJSON(t, ts.URL+"/clusters?threshold=0.5", &cp1)
	if cp1.Threshold != 0.5 || cp1.ClusterCount == 0 {
		t.Errorf("threshold override: %+v", cp1)
	}

	// Metrics surface the clustering work.
	if s.mBoxesClustered.Value() == 0 {
		t.Error("cluster_boxes_clustered_total not incremented")
	}

	resp, err := http.Get(ts.URL + "/clusters?threshold=2")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("threshold=2: status %d, want 400", resp.StatusCode)
	}
}

// TestClustersDisabled checks the opt-out: no registry, 404 on the route.
func TestClustersDisabled(t *testing.T) {
	s, ts := newTestServer(t, Config{ClustersDisabled: true})
	if s.boxes != nil {
		t.Fatal("registry allocated despite ClustersDisabled")
	}
	base := time.Date(2003, 6, 1, 12, 0, 0, 0, time.UTC)
	postIngest(t, ts.URL, ndjsonBody(logmodel.Log{
		{Time: base, User: "alice", Statement: "SELECT name FROM Employees WHERE id = 1"},
	}))
	resp, err := http.Get(ts.URL + "/clusters")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("status %d, want 404", resp.StatusCode)
	}
}
