package server

import (
	"net/http"
	"strings"
	"testing"
	"time"

	"sqlclean/internal/logmodel"
	"sqlclean/internal/sketch"
	"sqlclean/internal/stream"
	"sqlclean/internal/workload"
)

// TestToplistEndpoint ingests a workload and checks the heavy-hitter payload:
// ordering, bracket guarantee shape, and the distinct-identity estimate.
func TestToplistEndpoint(t *testing.T) {
	log, _ := workload.Generate(workload.DefaultConfig().Scale(0.05))
	log.SortStable()
	_, ts := newTestServer(t, Config{
		Stream: stream.ShardedConfig{Config: stream.Config{Sketches: sketch.Config{TopK: 16}}},
	})
	postIngest(t, ts.URL, ndjsonBody(log))

	var p ToplistPayload
	getJSON(t, ts.URL+"/toplist?k=5", &p)
	if p.K != 5 || p.Capacity != 16 {
		t.Fatalf("payload echo: %+v", p)
	}
	if len(p.Entries) == 0 || len(p.Entries) > 5 {
		t.Fatalf("entries = %d, want 1..5", len(p.Entries))
	}
	for i, hh := range p.Entries {
		if hh.Skeleton == "" || hh.Count <= 0 || hh.Err < 0 || hh.Err >= hh.Count {
			t.Errorf("entry %d ill-formed: %+v", i, hh)
		}
		if i > 0 && hh.Count > p.Entries[i-1].Count {
			t.Errorf("entries not count-descending at %d", i)
		}
	}
	if p.ObservedQueries <= 0 || p.Tracked <= 0 {
		t.Errorf("sketch counters empty: %+v", p)
	}
	users := map[string]struct{}{}
	for _, e := range log {
		users[e.User] = struct{}{}
	}
	n := int64(len(users))
	if p.DistinctUsersEstimate < n-n/20 || p.DistinctUsersEstimate > n+n/20 {
		t.Errorf("distinct estimate %d for %d users", p.DistinctUsersEstimate, n)
	}

	// The report payload carries the same sketch summary.
	var rp ReportPayload
	getJSON(t, ts.URL+"/report", &rp)
	if rp.Sketch == nil {
		t.Fatal("report payload missing sketches block")
	}
	if rp.Sketch.DistinctUsersEstimate != p.DistinctUsersEstimate {
		t.Errorf("report estimate %d, toplist estimate %d", rp.Sketch.DistinctUsersEstimate, p.DistinctUsersEstimate)
	}
	if rp.Report.DistinctUsers != int(p.DistinctUsersEstimate) {
		t.Errorf("report.distinct_users = %d, want the estimate %d", rp.Report.DistinctUsers, p.DistinctUsersEstimate)
	}
}

// TestToplistDisabledAndBadK pins the error paths.
func TestToplistDisabledAndBadK(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Stream: stream.ShardedConfig{Config: stream.Config{Sketches: sketch.Config{Disabled: true}}},
	})
	resp, err := http.Get(ts.URL + "/toplist")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("disabled sketches: status %d, want 404", resp.StatusCode)
	}

	_, ts2 := newTestServer(t, Config{})
	resp, err = http.Get(ts2.URL + "/toplist?k=-1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("k=-1: status %d, want 400", resp.StatusCode)
	}
}

// TestJSONEndpointsContentTypeAndMethods pins the HTTP contract for the JSON
// read endpoints: Content-Type carries an explicit charset, and non-GET
// methods are rejected with 405.
func TestJSONEndpointsContentTypeAndMethods(t *testing.T) {
	base := time.Date(2003, 6, 1, 12, 0, 0, 0, time.UTC)
	_, ts := newTestServer(t, Config{})
	postIngest(t, ts.URL, ndjsonBody(logmodel.Log{
		{Time: base, User: "alice", Statement: "SELECT name FROM Employees WHERE id = 1"},
	}))
	for _, path := range []string{"/report", "/clusters", "/toplist", "/healthz", "/statusz"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %d", path, resp.StatusCode)
		}
		ct := resp.Header.Get("Content-Type")
		if path == "/statusz" {
			// The one HTML page; everything else is JSON with charset.
			if ct != "text/html; charset=utf-8" {
				t.Errorf("GET %s: Content-Type %q, want text/html; charset=utf-8", path, ct)
			}
		} else if ct != "application/json; charset=utf-8" {
			t.Errorf("GET %s: Content-Type %q, want application/json; charset=utf-8", path, ct)
		}

		for _, method := range []string{http.MethodPost, http.MethodDelete} {
			req, err := http.NewRequest(method, ts.URL+path, strings.NewReader(""))
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusMethodNotAllowed {
				t.Errorf("%s %s: status %d, want 405", method, path, resp.StatusCode)
			}
		}
	}
	// And the write endpoint the other way around.
	resp, err := http.Get(ts.URL + "/ingest")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /ingest: status %d, want 405", resp.StatusCode)
	}
}
