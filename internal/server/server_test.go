package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"sqlclean/internal/core"
	"sqlclean/internal/logmodel"
	"sqlclean/internal/obs"
	"sqlclean/internal/stream"
	"sqlclean/internal/workload"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Close(ctx)
	})
	return s, ts
}

func ndjsonBody(l logmodel.Log) *bytes.Buffer {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, e := range l {
		rows := e.Rows
		enc.Encode(map[string]any{
			"time":      e.Time.UTC().Format(time.RFC3339Nano),
			"user":      e.User,
			"session":   e.Session,
			"rows":      rows,
			"statement": e.Statement,
		})
	}
	return &buf
}

func postIngest(t *testing.T, url string, body *bytes.Buffer) ingestResponse {
	t.Helper()
	resp, err := http.Post(url+"/ingest", "application/x-ndjson", body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ir ingestResponse
	if err := json.NewDecoder(resp.Body).Decode(&ir); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: status %d: %+v", resp.StatusCode, ir)
	}
	return ir
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

// TestIngestReportHealthz is the end-to-end happy path: ingest a small log
// over HTTP, close, and check the report and health documents.
func TestIngestReportHealthz(t *testing.T) {
	base := time.Date(2003, 6, 1, 12, 0, 0, 0, time.UTC)
	log := logmodel.Log{
		{Time: base, User: "alice", Statement: "SELECT name FROM Employees WHERE id = 1"},
		{Time: base.Add(time.Second), User: "alice", Statement: "SELECT name FROM Employees WHERE id = 1"}, // duplicate
		{Time: base.Add(2 * time.Second), User: "bob", Statement: "SELECT age FROM Employees WHERE id = 2"},
	}
	var mu sync.Mutex
	var emitted logmodel.Log
	s, ts := newTestServer(t, Config{
		Emit: func(l logmodel.Log) {
			mu.Lock()
			emitted = append(emitted, l...)
			mu.Unlock()
		},
	})

	ir := postIngest(t, ts.URL, ndjsonBody(log))
	if ir.Accepted != 3 {
		t.Fatalf("accepted %d, want 3", ir.Accepted)
	}

	var h HealthPayload
	getJSON(t, ts.URL+"/healthz", &h)
	if h.Status != "ok" || h.Version == "" || h.Shards != s.Engine().NumShards() {
		t.Errorf("healthz: %+v", h)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Close(ctx); err != nil {
		t.Fatal(err)
	}

	var rp ReportPayload
	getJSON(t, ts.URL+"/report", &rp)
	if rp.Report.SizeOriginal != 3 || rp.Report.DuplicatesFound != 1 || rp.Report.FinalSize != 2 {
		t.Errorf("report: %+v", rp.Report)
	}
	if rp.Stream.In != 3 || rp.Stream.Duplicates != 1 {
		t.Errorf("stream stats: %+v", rp.Stream)
	}
	if len(rp.Templates) == 0 {
		t.Error("no templates in report")
	}

	mu.Lock()
	defer mu.Unlock()
	if len(emitted) != 2 {
		t.Errorf("emitted %d entries, want 2", len(emitted))
	}

	getJSON(t, ts.URL+"/healthz", &h)
	if h.Status != "draining" || h.OpenSessions != 0 {
		t.Errorf("healthz after close: %+v", h)
	}
}

// TestIngestMatchesBatchPipeline is the acceptance equivalence at the service
// boundary: a workload ingested over HTTP in chunks must yield the same
// duplicate count and cleaned-statement multiset as the batch pipeline.
func TestIngestMatchesBatchPipeline(t *testing.T) {
	log, _ := workload.Generate(workload.DefaultConfig().Scale(0.2))
	log.SortStable()
	batch, err := core.Run(log, core.Config{})
	if err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	var emitted logmodel.Log
	s, ts := newTestServer(t, Config{
		Stream: stream.ShardedConfig{Shards: 8},
		Emit: func(l logmodel.Log) {
			mu.Lock()
			emitted = append(emitted, l...)
			mu.Unlock()
		},
	})

	// Chunked ingest, as a tailer would send it.
	const chunk = 64
	for i := 0; i < len(log); i += chunk {
		end := i + chunk
		if end > len(log) {
			end = len(log)
		}
		postIngest(t, ts.URL, ndjsonBody(log[i:end]))
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Close(ctx); err != nil {
		t.Fatal(err)
	}

	st := s.Engine().Stats()
	if st.In != len(log) {
		t.Fatalf("ingested %d entries, want %d", st.In, len(log))
	}
	if st.Duplicates != batch.Dedup.Removed {
		t.Errorf("duplicates: service %d, batch %d", st.Duplicates, batch.Dedup.Removed)
	}
	mu.Lock()
	defer mu.Unlock()
	counts := map[string]int{}
	for _, e := range emitted {
		counts[e.Statement]++
	}
	for _, e := range batch.Clean {
		counts[e.Statement]--
	}
	for stmt, n := range counts {
		if n != 0 {
			t.Fatalf("statement multiset mismatch at %q: off by %d", stmt, n)
		}
	}
}

// TestIngestBackpressure pins the 429 path deterministically: one shard, a
// one-slot queue, and a drainer wedged on a blocking Emit gate. The second
// enqueue must be rejected with 429 and an accurate accepted count — and
// nothing may be lost once the gate opens.
func TestIngestBackpressure(t *testing.T) {
	gate := make(chan struct{})
	var once sync.Once
	var mu sync.Mutex
	var emitted logmodel.Log
	s, ts := newTestServer(t, Config{
		Stream:    stream.ShardedConfig{Shards: 1, Config: stream.Config{SessionGap: time.Minute}},
		QueueSize: 1,
		Emit: func(l logmodel.Log) {
			<-gate
			mu.Lock()
			emitted = append(emitted, l...)
			mu.Unlock()
		},
	})

	base := time.Date(2003, 6, 1, 12, 0, 0, 0, time.UTC)
	// Alternate skeletons so no two same-template queries share a session —
	// the cleaner would legitimately merge such a run and skew the counts.
	cols := []string{"name", "age"}
	line := func(i int, ts time.Time) string {
		return fmt.Sprintf(`{"time":%q,"user":"u","statement":"SELECT %s FROM Employees WHERE id = %d"}`+"\n",
			ts.UTC().Format(time.RFC3339), cols[i%2], i)
	}
	// Entry 0 opens a session; entry 1 (next session, 2×gap later so even
	// lateness-slack eviction fires) forces the drainer into the gated Emit.
	// With the drainer wedged, entry 2 occupies the single queue slot and
	// entry 3 must bounce.
	postIngest(t, ts.URL, bytes.NewBufferString(line(0, base)))
	postIngest(t, ts.URL, bytes.NewBufferString(line(1, base.Add(3*time.Minute))))

	// Wait until the drainer is actually blocked in Emit (queue drained).
	deadline := time.Now().Add(5 * time.Second)
	for s.qDepth.Value() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("drainer never picked up the session-closing entry")
		}
		time.Sleep(time.Millisecond)
	}

	postIngest(t, ts.URL, bytes.NewBufferString(line(2, base.Add(3*time.Minute+time.Second))))

	body := bytes.NewBufferString(line(3, base.Add(3*time.Minute+2*time.Second)))
	resp, err := http.Post(ts.URL+"/ingest", "application/x-ndjson", body)
	if err != nil {
		t.Fatal(err)
	}
	var ir ingestResponse
	json.NewDecoder(resp.Body).Decode(&ir)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429 (%+v)", resp.StatusCode, ir)
	}
	if ir.Accepted != 0 {
		t.Errorf("accepted %d in rejected request, want 0", ir.Accepted)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}

	once.Do(func() { close(gate) })
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Close(ctx); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	// Entries 0, 1 and 2 were accepted; 3 was rejected. No accepted entry
	// may be dropped.
	if len(emitted) != 3 {
		t.Errorf("emitted %d entries, want 3 (accepted ones only)", len(emitted))
	}
}

// TestConcurrentIngestGracefulShutdown is the acceptance race test: 8
// concurrent HTTP clients, then a graceful Close — every accepted entry must
// come out. The clients proceed in lockstep rounds with one shared timestamp
// per round: within a round all 8 POST concurrently (racing on the queues,
// the shard locks and the sweep), and the barrier between rounds bounds the
// cross-client skew the per-shard ordering contract requires. Run with -race.
func TestConcurrentIngestGracefulShutdown(t *testing.T) {
	const (
		clients = 8
		rounds  = 30
	)
	var mu sync.Mutex
	var emitted logmodel.Log
	s, ts := newTestServer(t, Config{
		Stream: stream.ShardedConfig{Shards: 4, SweepEvery: 16},
		Emit: func(l logmodel.Log) {
			mu.Lock()
			emitted = append(emitted, l...)
			mu.Unlock()
		},
	})

	base := time.Date(2003, 6, 1, 0, 0, 0, 0, time.UTC)
	for r := 0; r < rounds; r++ {
		var wg sync.WaitGroup
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				l := logmodel.Log{{
					Time:      base.Add(time.Duration(r) * 20 * time.Minute), // each round its own session
					User:      fmt.Sprintf("client%02d", c),
					Statement: fmt.Sprintf("SELECT name FROM Employees WHERE id = %d", c*10000+r),
				}}
				postIngest(t, ts.URL, ndjsonBody(l))
			}(c)
		}
		wg.Wait()
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Close(ctx); err != nil {
		t.Fatal(err)
	}

	want := clients * rounds
	st := s.Engine().Stats()
	if st.In != want || st.Out != want {
		t.Errorf("stats in=%d out=%d, want both %d", st.In, st.Out, want)
	}
	if st.SessionsEmitted != want {
		t.Errorf("sessions emitted %d, want %d", st.SessionsEmitted, want)
	}
	if n := s.mRejectedOrder.Value(); n != 0 {
		t.Errorf("%d entries rejected as out of order, want 0", n)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(emitted) != want {
		t.Errorf("emitted %d entries, want %d (graceful shutdown must not drop)", len(emitted), want)
	}
	// After Close, new ingests are refused with 503.
	resp, err := http.Post(ts.URL+"/ingest", "application/x-ndjson",
		bytes.NewBufferString(`{"time":"2003-06-01T00:00:00Z","user":"x","statement":"SELECT 1"}`+"\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("ingest after close: status %d, want 503", resp.StatusCode)
	}
}

// TestIngestTSV exercises the TSV wire format end to end.
func TestIngestTSV(t *testing.T) {
	base := time.Date(2003, 6, 1, 12, 0, 0, 0, time.UTC)
	log := logmodel.Log{
		{Time: base, User: "alice", Rows: 3, Statement: "SELECT name FROM Employees WHERE id = 1"},
		{Time: base.Add(time.Second), User: "bob", Rows: -1, Statement: "SELECT age FROM Employees WHERE id = 2"},
	}
	var buf bytes.Buffer
	if err := logmodel.WriteTSV(&buf, log); err != nil {
		t.Fatal(err)
	}
	s, ts := newTestServer(t, Config{})
	resp, err := http.Post(ts.URL+"/ingest?format=tsv", "text/tab-separated-values", &buf)
	if err != nil {
		t.Fatal(err)
	}
	var ir ingestResponse
	json.NewDecoder(resp.Body).Decode(&ir)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || ir.Accepted != 2 {
		t.Fatalf("tsv ingest: status %d, %+v", resp.StatusCode, ir)
	}
	if st := s.Engine().Stats(); st.In != 2 {
		t.Errorf("engine saw %d entries, want 2", st.In)
	}
}

// TestIngestBadInput covers the 400 and 405 paths.
func TestIngestBadInput(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	resp, err := http.Post(ts.URL+"/ingest", "application/x-ndjson",
		bytes.NewBufferString("{not json}\n"))
	if err != nil {
		t.Fatal(err)
	}
	var ir ingestResponse
	json.NewDecoder(resp.Body).Decode(&ir)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || ir.Line != 1 {
		t.Errorf("bad json: status %d, %+v", resp.StatusCode, ir)
	}

	resp, err = http.Post(ts.URL+"/ingest", "application/x-ndjson",
		bytes.NewBufferString(`{"time":"2003-06-01T00:00:00Z","user":"u"}`+"\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing statement: status %d, want 400", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/ingest")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /ingest: status %d, want 405", resp.StatusCode)
	}
}

// TestDebugMuxMounted checks the obs debug surface is reachable through the
// service mux.
func TestDebugMuxMounted(t *testing.T) {
	reg := obs.NewRegistry()
	_, ts := newTestServer(t, Config{Metrics: reg})
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: status %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "ingest_requests_total") {
		t.Error("/metrics missing ingest counters")
	}
}
