package server

import (
	"net/http"
	"strconv"

	"sqlclean/internal/sketch"
)

// GET /toplist serves the heavy-hitter summary: the k most frequent query
// templates by the SpaceSaving sketch, each with its count and overestimation
// error, plus the distinct-identity estimate — the daemon's answer to "what
// dominates this log right now" without a full template scan.

// ToplistPayload is the GET /toplist document.
type ToplistPayload struct {
	// K echoes the request's ?k= (0 = all tracked entries).
	K int `json:"k"`
	// Capacity and Tracked describe the sketch: Tracked ≤ Capacity entries
	// are live; any template with frequency > observed/capacity is among
	// them (the SpaceSaving guarantee).
	Capacity int `json:"capacity"`
	Tracked  int `json:"tracked_templates"`
	// ObservedQueries is the number of accepted SELECTs the sketch has seen;
	// Evictions counts slot replacements (0 means every count is exact).
	ObservedQueries int64 `json:"observed_queries"`
	Evictions       int64 `json:"evictions"`
	// DistinctUsersEstimate is the merged HLL's identity estimate.
	DistinctUsersEstimate int64 `json:"distinct_users_estimate"`
	// Entries are the heavy hitters, count-descending. For each, the true
	// frequency lies in [count−err, count].
	Entries []sketch.HeavyHitter `json:"entries"`
}

// Toplist assembles the heavy-hitter payload from the merged cross-shard
// sketches, or nil when the daemon runs with sketches disabled.
func (s *Server) Toplist(k int) *ToplistPayload {
	sk := s.eng.Sketches()
	if sk == nil {
		return nil
	}
	s.gHLLOcc.Set(int64(sk.HLL.Occupied()))
	return &ToplistPayload{
		K:                     k,
		Capacity:              sk.Top.Capacity(),
		Tracked:               sk.Top.Len(),
		ObservedQueries:       sk.Top.Observed(),
		Evictions:             sk.Top.Evictions(),
		DistinctUsersEstimate: sk.HLL.Count(),
		Entries:               sk.Top.Top(k),
	}
}

func (s *Server) handleToplist(w http.ResponseWriter, r *http.Request) {
	k := 0
	if v := r.URL.Query().Get("k"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": "k must be a non-negative integer"})
			return
		}
		k = n
	}
	p := s.Toplist(k)
	if p == nil {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "sketches disabled"})
		return
	}
	writeJSON(w, http.StatusOK, p)
}
