package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"sqlclean/internal/logmodel"
	"sqlclean/internal/obs"
)

// logBuffer is a concurrency-safe sink for the server's structured logs.
type logBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *logBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *logBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

type tracePayload struct {
	View     string                 `json:"view"`
	Requests []obs.ReqTraceSnapshot `json:"requests"`
}

// TestIngestTraceEndToEnd follows one replayed ingest request end to end:
// the supplied X-Trace-Id is echoed back, shows up in GET /debug/requests
// with admission/enqueue/journal timings plus the async emit stage, and is
// attached to at least one structured log line.
func TestIngestTraceEndToEnd(t *testing.T) {
	var logs logBuffer
	logger, err := obs.NewLogger(&logs, "debug", "json")
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{
		DataDir: t.TempDir(), // journal on: the journal stage must be traced
		Logger:  logger,
	})

	base := time.Date(2003, 6, 1, 12, 0, 0, 0, time.UTC)
	body := ndjsonBody(logmodel.Log{
		{Time: base, User: "alice", Statement: "SELECT name FROM Employees WHERE id = 1"},
		{Time: base.Add(time.Second), User: "bob", Statement: "SELECT age FROM Employees WHERE id = 2"},
	})
	const traceID = "cafe0000deadbeef"
	req, err := http.NewRequest("POST", ts.URL+"/ingest", body)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Trace-Id", traceID)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Trace-Id"); got != traceID {
		t.Fatalf("X-Trace-Id echoed %q, want %q", got, traceID)
	}

	// The emit stage is stamped asynchronously by the drain goroutine that
	// applies the request's last entry; poll the trace view until it lands.
	var trace obs.ReqTraceSnapshot
	deadline := time.Now().Add(5 * time.Second)
	for {
		var p tracePayload
		getJSON(t, ts.URL+"/debug/requests?n=10", &p)
		for _, r := range p.Requests {
			if r.ID == traceID {
				trace = r
			}
		}
		if trace.ID != "" && hasTraceStage(trace, "emit") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("trace %s with emit stage not visible; got %+v", traceID, trace)
		}
		time.Sleep(5 * time.Millisecond)
	}
	for _, want := range []string{"admission", "enqueue", "journal", "emit"} {
		if !hasTraceStage(trace, want) {
			t.Errorf("trace missing stage %q: %+v", want, trace.Stages)
		}
	}
	if trace.Attrs["accepted"] != 2 {
		t.Errorf("trace accepted attr = %d, want 2", trace.Attrs["accepted"])
	}
	if trace.Status != http.StatusOK || trace.Active {
		t.Errorf("trace status=%d active=%v, want 200/finished", trace.Status, trace.Active)
	}
	if trace.TotalNS < trace.DurationNS || trace.DurationNS <= 0 {
		t.Errorf("trace durations: sync=%d total=%d", trace.DurationNS, trace.TotalNS)
	}

	// The slowest view must surface the same request.
	var slow tracePayload
	getJSON(t, ts.URL+"/debug/requests?view=slow&n=10", &slow)
	found := false
	for _, r := range slow.Requests {
		found = found || r.ID == traceID
	}
	if !found {
		t.Errorf("trace %s absent from slowest view", traceID)
	}

	// And at least one structured log line must carry the trace ID.
	if !strings.Contains(logs.String(), `"trace_id":"`+traceID+`"`) {
		t.Errorf("no structured log line with trace_id %s:\n%s", traceID, logs.String())
	}
}

func hasTraceStage(s obs.ReqTraceSnapshot, name string) bool {
	for _, st := range s.Stages {
		if st.Name == name {
			return true
		}
	}
	return false
}

// TestSlowRequestLogged forces the slow-request path with a 1ns threshold
// and checks the warn line carries the trace ID and stage timings.
func TestSlowRequestLogged(t *testing.T) {
	var logs logBuffer
	logger, err := obs.NewLogger(&logs, "info", "json")
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{Logger: logger, SlowRequest: time.Nanosecond})

	base := time.Date(2003, 6, 1, 12, 0, 0, 0, time.UTC)
	postIngest(t, ts.URL, ndjsonBody(logmodel.Log{
		{Time: base, User: "alice", Statement: "SELECT 1 FROM T WHERE a = 1"},
	}))

	out := logs.String()
	if !strings.Contains(out, `"msg":"slow request"`) {
		t.Fatalf("no slow-request line:\n%s", out)
	}
	var rec map[string]any
	line := out[strings.Index(out, "{"):]
	if err := json.Unmarshal([]byte(line[:strings.Index(line, "\n")]), &rec); err != nil {
		t.Fatalf("slow-request line is not JSON: %v\n%s", err, line)
	}
	if rec["trace_id"] == "" || rec["trace_id"] == nil {
		t.Errorf("slow-request line missing trace_id: %v", rec)
	}
	if _, ok := rec["stage_enqueue_ms"]; !ok {
		t.Errorf("slow-request line missing stage timings: %v", rec)
	}
}

// TestSlowRequestDisabled checks a negative threshold suppresses the warn.
func TestSlowRequestDisabled(t *testing.T) {
	var logs logBuffer
	logger, err := obs.NewLogger(&logs, "info", "json")
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{Logger: logger, SlowRequest: -1})
	base := time.Date(2003, 6, 1, 12, 0, 0, 0, time.UTC)
	postIngest(t, ts.URL, ndjsonBody(logmodel.Log{
		{Time: base, User: "alice", Statement: "SELECT 1 FROM T WHERE a = 1"},
	}))
	if strings.Contains(logs.String(), "slow request") {
		t.Errorf("slow-request logging not disabled:\n%s", logs.String())
	}
}

// TestStatusz checks both renderings of the status page.
func TestStatusz(t *testing.T) {
	_, ts := newTestServer(t, Config{DataDir: t.TempDir()})
	base := time.Date(2003, 6, 1, 12, 0, 0, 0, time.UTC)
	postIngest(t, ts.URL, ndjsonBody(logmodel.Log{
		{Time: base, User: "alice", Statement: "SELECT name FROM Employees WHERE id = 1"},
	}))

	resp, err := http.Get(ts.URL + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	var html bytes.Buffer
	html.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("statusz: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/html") {
		t.Errorf("statusz content type %q", ct)
	}
	page := html.String()
	for _, want := range []string{"sqlcleand", "Ingest", "Shards", "Durability", "Go process", "journal LSN", "/debug/requests"} {
		if !strings.Contains(page, want) {
			t.Errorf("statusz HTML missing %q", want)
		}
	}

	resp, err = http.Get(ts.URL + "/statusz?format=text")
	if err != nil {
		t.Fatal(err)
	}
	var text bytes.Buffer
	text.ReadFrom(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("statusz text content type %q", ct)
	}
	for _, want := range []string{"sqlcleand status: ok", "goroutines", "shard 000", "journal lsn"} {
		if !strings.Contains(text.String(), want) {
			t.Errorf("statusz text missing %q:\n%s", want, text.String())
		}
	}
}

// TestHealthzWatermarkLag checks the lag sentinel before traffic and the
// real lag after entries flow.
func TestHealthzWatermarkLag(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var h HealthPayload
	getJSON(t, ts.URL+"/healthz", &h)
	if h.WatermarkLagSeconds != -1 {
		t.Errorf("pre-traffic lag = %v, want -1", h.WatermarkLagSeconds)
	}
	for _, lag := range h.ShardWatermarkLagSeconds {
		if lag != -1 {
			t.Errorf("pre-traffic shard lag = %v, want -1", lag)
		}
	}

	// Event times one hour in the past: the lag must land near 3600s.
	base := time.Now().UTC().Add(-time.Hour)
	postIngest(t, ts.URL, ndjsonBody(logmodel.Log{
		{Time: base, User: "alice", Statement: "SELECT name FROM Employees WHERE id = 1"},
	}))
	deadline := time.Now().Add(5 * time.Second)
	for {
		getJSON(t, ts.URL+"/healthz", &h)
		if h.WatermarkLagSeconds > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("watermark lag never rose: %+v", h)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if h.WatermarkLagSeconds < 3500 || h.WatermarkLagSeconds > 3700 {
		t.Errorf("lag = %.0fs, want ≈ 3600s", h.WatermarkLagSeconds)
	}
	if len(h.ShardWatermarkLagSeconds) != h.Shards {
		t.Errorf("shard lags %d, want %d", len(h.ShardWatermarkLagSeconds), h.Shards)
	}
	// Exactly one shard (alice's) has traffic; the rest stay at the sentinel.
	withTraffic := 0
	for _, lag := range h.ShardWatermarkLagSeconds {
		if lag != -1 {
			withTraffic++
		}
	}
	if withTraffic != 1 {
		t.Errorf("shards with traffic = %d, want 1", withTraffic)
	}
}

// TestPerShardQueueGauges checks the per-shard depth gauges exist and sum to
// zero once drained.
func TestPerShardQueueGauges(t *testing.T) {
	reg := obs.NewRegistry()
	s, ts := newTestServer(t, Config{Metrics: reg})
	base := time.Date(2003, 6, 1, 12, 0, 0, 0, time.UTC)
	postIngest(t, ts.URL, ndjsonBody(logmodel.Log{
		{Time: base, User: "alice", Statement: "SELECT name FROM Employees WHERE id = 1"},
		{Time: base.Add(time.Second), User: "bob", Statement: "SELECT age FROM Employees WHERE id = 2"},
	}))
	deadline := time.Now().Add(5 * time.Second)
	for s.qDepth.Value() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("queues never drained")
		}
		time.Sleep(time.Millisecond)
	}
	snap := reg.Snapshot()
	found := 0
	for i := 0; i < s.eng.NumShards(); i++ {
		name := "ingest_queue_depth_shard" + pad3(i)
		g, ok := snap.Gauges[name]
		if !ok {
			t.Fatalf("missing gauge %s", name)
		}
		if g.Value != 0 {
			t.Errorf("%s = %d after drain, want 0", name, g.Value)
		}
		found += int(g.Max)
	}
	if found < 1 {
		t.Error("no shard gauge ever saw an entry (high-water sum = 0)")
	}
}

func pad3(i int) string {
	s := "00" + itoa(i)
	return s[len(s)-3:]
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}

// TestEndpointMiddleware checks the per-endpoint HTTP metrics feed.
func TestEndpointMiddleware(t *testing.T) {
	reg := obs.NewRegistry()
	_, ts := newTestServer(t, Config{Metrics: reg})
	base := time.Date(2003, 6, 1, 12, 0, 0, 0, time.UTC)
	postIngest(t, ts.URL, ndjsonBody(logmodel.Log{
		{Time: base, User: "alice", Statement: "SELECT name FROM Employees WHERE id = 1"},
	}))
	var h HealthPayload
	getJSON(t, ts.URL+"/healthz", &h)

	snap := reg.Snapshot()
	if n := snap.Counters["http_ingest_requests_total"]; n != 1 {
		t.Errorf("http_ingest_requests_total = %d, want 1", n)
	}
	if n := snap.Counters["http_ingest_status_2xx_total"]; n != 1 {
		t.Errorf("http_ingest_status_2xx_total = %d, want 1", n)
	}
	if n := snap.Counters["http_healthz_requests_total"]; n != 1 {
		t.Errorf("http_healthz_requests_total = %d, want 1", n)
	}
	if lat := snap.Histograms["http_ingest_latency_ns"]; lat.Count != 1 {
		t.Errorf("ingest latency observations = %d, want 1", lat.Count)
	}
	if n := snap.Counters["http_ingest_response_bytes_total"]; n <= 0 {
		t.Errorf("http_ingest_response_bytes_total = %d, want > 0", n)
	}
}
