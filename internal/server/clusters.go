// The /clusters surface: the daemon keeps a bounded registry of the
// distinct predicate boxes it has cleaned (updated as sessions close, so it
// costs one signature per emitted entry — the statements themselves are
// parse-cache hits) and clusters them on demand with the exact grid path.
// This is the §6.9 user-interest view, live: which regions of the data
// space the traffic touches, and how many queries share each region.
package server

import (
	"net/http"
	"strconv"

	"sqlclean/internal/logmodel"
	"sqlclean/internal/overlap"
)

const (
	defaultClusterThreshold = 0.9
	defaultClusterMaxBoxes  = 4096
)

// boxRegistry accumulates distinct predicate boxes with occurrence counts.
// Memory is bounded: once maxBoxes distinct signatures exist, new distinct
// boxes are counted as dropped instead of stored (queries matching an
// already-known box still count normally).
type boxRegistry struct {
	// The registry is only mutated under Server.emitMu (observe runs inside
	// emit) and snapshotted under it (snapshot), so it needs no lock of its
	// own beyond that discipline.
	maxBoxes int
	bySig    map[string]int
	boxes    []overlap.Box
	counts   []int64
	examples []string
	total    int64 // queries observed, including ones hitting dropped boxes
	dropped  int64 // distinct boxes not stored because the registry was full
}

func newBoxRegistry(maxBoxes int) *boxRegistry {
	if maxBoxes <= 0 {
		maxBoxes = defaultClusterMaxBoxes
	}
	return &boxRegistry{maxBoxes: maxBoxes, bySig: map[string]int{}}
}

// observe folds one cleaned batch into the registry. Statements were just
// parsed by the engine, so the shared parser resolves them from cache.
func (s *Server) observeBoxes(l logmodel.Log) {
	parsed, _ := s.cfg.Stream.Parser.ParseParallelSpan(l, 1, nil)
	r := s.boxes
	for _, pe := range parsed {
		if pe.Info == nil {
			continue
		}
		r.total++
		b := overlap.FromInfo(pe.Info)
		sig := overlap.Signature(b)
		di, ok := r.bySig[sig]
		if !ok {
			if len(r.boxes) >= r.maxBoxes {
				r.dropped++
				s.mBoxesDropped.Inc()
				continue
			}
			di = len(r.boxes)
			r.bySig[sig] = di
			r.boxes = append(r.boxes, b)
			r.counts = append(r.counts, 0)
			r.examples = append(r.examples, pe.Statement)
			s.gDistinctBoxes.Set(int64(len(r.boxes)))
		}
		r.counts[di]++
	}
}

// snapshot copies the registry state for lock-free clustering. The box
// slice is append-only, so sharing the backing array with a length-bounded
// reslice is safe.
func (s *Server) snapshotBoxes() (boxes []overlap.Box, counts []int64, examples []string, total, dropped int64) {
	s.emitMu.Lock()
	defer s.emitMu.Unlock()
	r := s.boxes
	boxes = r.boxes[:len(r.boxes):len(r.boxes)]
	counts = append([]int64(nil), r.counts...)
	examples = r.examples[:len(r.examples):len(r.examples)]
	return boxes, counts, examples, r.total, r.dropped
}

// ClusterInfo is one cluster in the /clusters response.
type ClusterInfo struct {
	// Size is the number of distinct boxes in the cluster.
	Size int `json:"size"`
	// Queries is the number of observed queries across those boxes.
	Queries int64 `json:"queries"`
	// Example is a statement whose box is the cluster's representative.
	Example string `json:"example"`
}

// ClustersPayload is the GET /clusters document.
type ClustersPayload struct {
	Threshold     float64 `json:"threshold"`
	DistinctBoxes int     `json:"distinct_boxes"`
	TotalQueries  int64   `json:"total_queries"`
	// DroppedBoxes counts distinct boxes beyond the registry bound; when
	// non-zero the clustering covers a prefix of the distinct traffic.
	DroppedBoxes int64   `json:"dropped_boxes,omitempty"`
	ClusterCount int     `json:"cluster_count"`
	AvgSize      float64 `json:"avg_size"`
	// Grid work counters for this clustering call.
	Comparisons        int64 `json:"comparisons"`
	ComparisonsAvoided int64 `json:"comparisons_avoided"`
	CellsProbed        int64 `json:"cells_probed"`
	// Clusters are the top clusters by observed query count.
	Clusters []ClusterInfo `json:"clusters,omitempty"`
}

// Clusters clusters the observed distinct boxes at the given threshold and
// returns the top clusters by query weight. Safe to call while ingestion
// runs.
func (s *Server) Clusters(threshold float64, top int) ClustersPayload {
	if threshold <= 0 {
		threshold = s.clusterThreshold()
	}
	if top <= 0 {
		top = 20
	}
	boxes, counts, examples, total, dropped := s.snapshotBoxes()

	var ctr overlap.Counters
	clusters := overlap.ClusterBoxesGridParallelCounted(boxes, threshold, 0, &ctr)
	st := overlap.Summarize(clusters)

	s.mBoxesClustered.Add(ctr.Boxes)
	s.mClusterCells.Add(ctr.CellsProbed)
	s.mClusterAvoided.Add(ctr.Avoided())

	p := ClustersPayload{
		Threshold:          threshold,
		DistinctBoxes:      len(boxes),
		TotalQueries:       total,
		DroppedBoxes:       dropped,
		ClusterCount:       st.Count,
		AvgSize:            st.AvgSize,
		Comparisons:        ctr.Comparisons,
		ComparisonsAvoided: ctr.Avoided(),
		CellsProbed:        ctr.CellsProbed,
	}
	infos := make([]ClusterInfo, len(clusters))
	for i, c := range clusters {
		var q int64
		for _, m := range c.Members {
			q += counts[m]
		}
		infos[i] = ClusterInfo{Size: c.Size(), Queries: q, Example: examples[c.Representative]}
	}
	// Partial selection sort: top is small and the list is rebuilt per
	// request, so O(top·n) beats pulling in a heap.
	for i := 0; i < len(infos) && i < top; i++ {
		best := i
		for j := i + 1; j < len(infos); j++ {
			if infos[j].Queries > infos[best].Queries {
				best = j
			}
		}
		infos[i], infos[best] = infos[best], infos[i]
	}
	if len(infos) > top {
		infos = infos[:top]
	}
	p.Clusters = infos
	return p
}

func (s *Server) clusterThreshold() float64 {
	if s.cfg.ClusterThreshold > 0 {
		return s.cfg.ClusterThreshold
	}
	return defaultClusterThreshold
}

func (s *Server) handleClusters(w http.ResponseWriter, r *http.Request) {
	if s.boxes == nil {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "clustering disabled"})
		return
	}
	threshold := 0.0
	if v := r.URL.Query().Get("threshold"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil || f <= 0 || f > 1 {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": "threshold must be in (0, 1]"})
			return
		}
		threshold = f
	}
	top, err := parseTop(r, 0) // 0: Clusters applies its own default
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, s.Clusters(threshold, top))
}
