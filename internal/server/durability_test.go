package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"sqlclean/internal/journal"
	"sqlclean/internal/logmodel"
	"sqlclean/internal/stream"
	"sqlclean/internal/workload"
)

// crash simulates a SIGKILL for test purposes: the process vanishes with no
// final snapshot and no engine flush — recovery must come from the journal
// alone. (Queues are closed and drained only so the goroutines exit; the
// engine they fed is abandoned, exactly as a killed process's memory is.)
func (s *Server) crash() {
	s.closeMu.Lock()
	s.closed.Store(true)
	s.closeMu.Unlock()
	close(s.snapStop)
	s.ingestWG.Wait()
	for _, q := range s.queues {
		close(q)
	}
	s.drainWG.Wait()
	s.snapWG.Wait()
	if s.jw != nil {
		// A SIGKILLed process still leaves its buffered writes in the OS page
		// cache; Close flushes, which models the same survival.
		s.jw.Close()
	}
}

func durableConfig(dir string) Config {
	return Config{
		Stream:           stream.ShardedConfig{Shards: 4, SweepEvery: 16},
		DataDir:          dir,
		Fsync:            journal.FsyncNever, // process-kill durability needs no fsync
		SnapshotInterval: -1,                 // tests trigger snapshots explicitly
	}
}

// comparableReport strips the fields that cannot be equal across runs for
// trivial reasons (wall clock, build stamp) so the rest must match exactly.
// Valid only for strictly-fed runs: with concurrent shard drains, the global
// watermark can run ahead of a lagging queue and a sweep may close a session
// the sequential order would have kept open, so session-derived numbers are
// only deterministic when every entry is applied before the next is sent.
func comparableReport(s *Server) ReportPayload {
	p := s.Report(10)
	p.Version = ""
	p.UptimeSeconds = 0
	p.Report.DurationNS = 0
	p.Stream.OpenSessionsHighWater = 0
	return p
}

// addDriven is the subset of the report that is deterministic even under
// concurrent drains: everything computed at Add time (arrival counting,
// per-shard dedup, template aggregation) before sessionization's
// sweep-timing races can matter.
type addDriven struct {
	In, Selects, Duplicates                                                                     int
	SizeOriginal, CountSelect, SizeAfterDedup, DuplicatesFound, CountTemplates, MaxTemplateFreq int
	Templates                                                                                   []string
}

func addDrivenSummary(s *Server) addDriven {
	p := s.Report(10)
	d := addDriven{
		In: p.Stream.In, Selects: p.Stream.Selects, Duplicates: p.Stream.Duplicates,
		SizeOriginal: p.Report.SizeOriginal, CountSelect: p.Report.CountSelect,
		SizeAfterDedup: p.Report.SizeAfterDedup, DuplicatesFound: p.Report.DuplicatesFound,
		CountTemplates: p.Report.CountTemplates, MaxTemplateFreq: p.Report.MaxTemplateFreq,
	}
	for _, tm := range p.Templates {
		d.Templates = append(d.Templates, fmt.Sprintf("%x freq=%d users=%d", tm.Fingerprint, tm.Frequency, tm.UserPopularity))
	}
	return d
}

func feedChunks(t *testing.T, url string, log logmodel.Log) {
	t.Helper()
	const chunk = 64
	for i := 0; i < len(log); i += chunk {
		end := i + chunk
		if end > len(log) {
			end = len(log)
		}
		postIngest(t, url, ndjsonBody(log[i:end]))
	}
}

// feedStrict posts one entry at a time and waits for it to be applied before
// sending the next, so every run applies the feed in the identical global
// order — the precondition for full-report equality (see comparableReport).
func feedStrict(t *testing.T, s *Server, url string, log logmodel.Log) {
	t.Helper()
	for i := range log {
		postIngest(t, url, ndjsonBody(log[i:i+1]))
		deadline := time.Now().Add(10 * time.Second)
		for s.pending.Load() != 0 {
			if time.Now().After(deadline) {
				t.Fatal("feedStrict: entry never applied")
			}
			time.Sleep(20 * time.Microsecond)
		}
	}
}

// TestKillAndReplay is the PR's acceptance property: SIGKILL the daemon mid-
// ingest, restart it on the same data directory, finish the feed — the final
// report (counts, stream stats, top templates) must equal an uninterrupted
// run's, because every acknowledged entry was journaled before its request
// was acknowledged. Strict feeding pins the apply order, so the whole report
// must match, sessionization included.
func TestKillAndReplay(t *testing.T) {
	log, _ := workload.Generate(workload.DefaultConfig().Scale(0.1))
	log.SortStable()

	// Uninterrupted reference run.
	ref, err := New(durableConfig(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	refTS := httptest.NewServer(ref.Handler())
	feedStrict(t, ref, refTS.URL, log)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := ref.Close(ctx); err != nil {
		t.Fatal(err)
	}
	want := comparableReport(ref)
	refTS.Close()

	// Crashed run: feed half, kill, restart on the same directory, feed the
	// rest.
	dir := t.TempDir()
	half := len(log) / 2
	s1, err := New(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())
	feedStrict(t, s1, ts1.URL, log[:half])
	ts1.Close()
	s1.crash()

	s2, err := New(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	if s2.Replayed() != half {
		t.Errorf("replayed %d entries after crash, want %d", s2.Replayed(), half)
	}
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	feedStrict(t, s2, ts2.URL, log[half:])
	if err := s2.Close(ctx); err != nil {
		t.Fatal(err)
	}
	got := comparableReport(s2)

	wantJSON, _ := json.MarshalIndent(want, "", " ")
	gotJSON, _ := json.MarshalIndent(got, "", " ")
	if !bytes.Equal(wantJSON, gotJSON) {
		t.Errorf("recovered report diverged from uninterrupted run:\n got %s\nwant %s", gotJSON, wantJSON)
	}
}

// TestKillAndReplayConcurrent is the same crash-recovery property under
// realistic chunked ingestion, where concurrent shard drains make
// session-boundary stats timing-dependent: every Add-driven number (arrival
// counts, dedup, templates) must still converge exactly.
func TestKillAndReplayConcurrent(t *testing.T) {
	log, _ := workload.Generate(workload.DefaultConfig().Scale(0.1))
	log.SortStable()

	ref, err := New(durableConfig(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	refTS := httptest.NewServer(ref.Handler())
	feedChunks(t, refTS.URL, log)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := ref.Close(ctx); err != nil {
		t.Fatal(err)
	}
	want := addDrivenSummary(ref)
	refTS.Close()

	dir := t.TempDir()
	half := len(log) / 2
	s1, err := New(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())
	feedChunks(t, ts1.URL, log[:half])
	ts1.Close()
	s1.crash()

	s2, err := New(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	if s2.Replayed() != half {
		t.Errorf("replayed %d entries after crash, want %d", s2.Replayed(), half)
	}
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	feedChunks(t, ts2.URL, log[half:])
	if err := s2.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if got := addDrivenSummary(s2); !reflect.DeepEqual(got, want) {
		t.Errorf("add-driven stats diverged after crash recovery:\n got %+v\nwant %+v", got, want)
	}
}

// TestSnapshotSkipsReplayedPrefix pins the checkpoint contract: after a
// snapshot, a restart replays only the journal tail past it, and still
// converges to the uninterrupted report.
func TestSnapshotSkipsReplayedPrefix(t *testing.T) {
	log, _ := workload.Generate(workload.DefaultConfig().Scale(0.1))
	log.SortStable()
	half, tail := len(log)/2, len(log)*3/4

	ref, err := New(durableConfig(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	refTS := httptest.NewServer(ref.Handler())
	feedStrict(t, ref, refTS.URL, log)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := ref.Close(ctx); err != nil {
		t.Fatal(err)
	}
	want := comparableReport(ref)
	refTS.Close()

	dir := t.TempDir()
	cfg := durableConfig(dir)
	cfg.SegmentBytes = 4096 // several rotations, so truncation is visible
	s1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())
	feedStrict(t, s1, ts1.URL, log[:half])
	if err := s1.takeSnapshot(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	segsAfterSnap := s1.jw.Segments()
	feedStrict(t, s1, ts1.URL, log[half:tail])
	ts1.Close()
	s1.crash()

	if segsAfterSnap > 2 {
		t.Errorf("journal kept %d segments after a covering snapshot, want <= 2", segsAfterSnap)
	}
	snaps, err := filepath.Glob(filepath.Join(dir, "snapshot-*.json"))
	if err != nil || len(snaps) != 1 {
		t.Fatalf("snapshot files = %v (err=%v), want exactly one", snaps, err)
	}

	s2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Replayed() != tail-half {
		t.Errorf("replayed %d entries, want only the %d past the snapshot", s2.Replayed(), tail-half)
	}
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	feedStrict(t, s2, ts2.URL, log[tail:])
	if err := s2.Close(ctx); err != nil {
		t.Fatal(err)
	}
	got := comparableReport(s2)

	wantJSON, _ := json.Marshal(want)
	gotJSON, _ := json.Marshal(got)
	if !bytes.Equal(wantJSON, gotJSON) {
		t.Errorf("snapshot+replay report diverged:\n got %s\nwant %s", gotJSON, wantJSON)
	}
}

// TestGracefulRestartUsesFinalSnapshot pins the clean-shutdown path: Close
// writes a covering snapshot, so the next start replays nothing.
func TestGracefulRestartUsesFinalSnapshot(t *testing.T) {
	dir := t.TempDir()
	s1, err := New(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())
	base := time.Date(2003, 6, 1, 12, 0, 0, 0, time.UTC)
	feedChunks(t, ts1.URL, logmodel.Log{
		{Time: base, User: "alice", Statement: "SELECT name FROM Employees WHERE id = 1"},
		{Time: base.Add(time.Second), User: "bob", Statement: "SELECT age FROM Employees WHERE id = 2"},
	})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s1.Close(ctx); err != nil {
		t.Fatal(err)
	}
	ts1.Close()

	s2, err := New(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer s2.crash()
	if s2.Replayed() != 0 {
		t.Errorf("replayed %d entries after graceful shutdown, want 0 (snapshot covers all)", s2.Replayed())
	}
	if st := s2.Engine().Stats(); st.In != 2 {
		t.Errorf("restored engine saw %d entries, want 2", st.In)
	}
}

// TestRestoreRejectsShardMismatch: restarting with a different shard count
// must fail loudly instead of scattering restored state across the wrong
// partitions.
func TestRestoreRejectsShardMismatch(t *testing.T) {
	dir := t.TempDir()
	s1, err := New(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())
	postIngest(t, ts1.URL, ndjsonBody(logmodel.Log{{
		Time: time.Date(2003, 6, 1, 12, 0, 0, 0, time.UTC),
		User: "alice", Statement: "SELECT name FROM Employees WHERE id = 1",
	}}))
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s1.Close(ctx); err != nil {
		t.Fatal(err)
	}
	ts1.Close()

	cfg := durableConfig(dir)
	cfg.Stream.Shards = 8
	if _, err := New(cfg); err == nil || !strings.Contains(err.Error(), "shards") {
		t.Errorf("New with mismatched shard count: err=%v, want shard-mismatch error", err)
	}
}

// TestCloseIngestRace hammers Close against concurrent handleIngest calls.
// Before beginIngest, the handler did ingestWG.Add(1) and only then checked
// closed — racing Close's Wait up from zero, the documented WaitGroup misuse
// (a panic under -race). Run with -race.
func TestCloseIngestRace(t *testing.T) {
	line := `{"time":"2003-06-01T12:00:00Z","user":"u","statement":"SELECT name FROM Employees WHERE id = 1"}` + "\n"
	for iter := 0; iter < 30; iter++ {
		s, err := New(Config{Stream: stream.ShardedConfig{Shards: 2}})
		if err != nil {
			t.Fatal(err)
		}
		start := make(chan struct{})
		var wg sync.WaitGroup
		for c := 0; c < 8; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				for j := 0; j < 5; j++ {
					req := httptest.NewRequest(http.MethodPost, "/ingest", strings.NewReader(line))
					s.handleIngest(httptest.NewRecorder(), req)
				}
			}()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			if err := s.Close(ctx); err != nil {
				t.Error(err)
			}
		}()
		close(start)
		wg.Wait()
	}
}

// TestTSVLineNumbers pins the reported 1-based line on the TSV error paths:
// blank lines count, so the number matches the client's own payload, not the
// count of parsed entries.
func TestTSVLineNumbers(t *testing.T) {
	base := time.Date(2003, 6, 1, 12, 0, 0, 0, time.UTC)
	tsvLine := func(i int, tm time.Time) string {
		cols := []string{"name", "age"}
		return fmt.Sprintf("%s\tu\t\t\tSELECT %s FROM Employees WHERE id = %d\n",
			tm.UTC().Format(logmodel.TimeFormat), cols[i%2], i)
	}

	// 400 path: a parse failure after blank lines reports the real line.
	_, ts := newTestServer(t, Config{})
	body := tsvLine(0, base) + "\n\n" + "garbage line\n"
	resp, err := http.Post(ts.URL+"/ingest?format=tsv", "text/tab-separated-values",
		bytes.NewBufferString(body))
	if err != nil {
		t.Fatal(err)
	}
	var ir ingestResponse
	json.NewDecoder(resp.Body).Decode(&ir)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || ir.Line != 4 || ir.Accepted != 1 {
		t.Errorf("tsv parse error: status %d, %+v; want 400 at line 4 with 1 accepted", resp.StatusCode, ir)
	}

	// 429 path: wedge the single drainer in a gated Emit (as in
	// TestIngestBackpressure), fill the one queue slot, then send a TSV body
	// whose rejected entry sits after blank lines.
	gate := make(chan struct{})
	var once sync.Once
	defer once.Do(func() { close(gate) })
	s, ts2 := newTestServer(t, Config{
		Stream:    stream.ShardedConfig{Shards: 1, Config: stream.Config{SessionGap: time.Minute}},
		QueueSize: 1,
		Emit:      func(logmodel.Log) { <-gate },
	})
	post := func(body string) (*http.Response, ingestResponse) {
		resp, err := http.Post(ts2.URL+"/ingest?format=tsv", "text/tab-separated-values",
			bytes.NewBufferString(body))
		if err != nil {
			t.Fatal(err)
		}
		var ir ingestResponse
		json.NewDecoder(resp.Body).Decode(&ir)
		resp.Body.Close()
		return resp, ir
	}
	post(tsvLine(0, base))
	post(tsvLine(1, base.Add(3*time.Minute))) // closes the session, wedges Emit
	deadline := time.Now().Add(5 * time.Second)
	for s.qDepth.Value() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("drainer never wedged in Emit")
		}
		time.Sleep(time.Millisecond)
	}
	post(tsvLine(2, base.Add(3*time.Minute+time.Second))) // occupies the slot

	resp2, ir2 := post("\n\n" + tsvLine(3, base.Add(3*time.Minute+2*time.Second)))
	if resp2.StatusCode != http.StatusTooManyRequests || ir2.Line != 3 || ir2.Accepted != 0 {
		t.Errorf("tsv queue-full: status %d, %+v; want 429 at line 3", resp2.StatusCode, ir2)
	}
	once.Do(func() { close(gate) })
}

// TestJournalSurvivesTornTail: a torn final frame (half-written at the kill)
// must not block recovery of the intact prefix.
func TestJournalSurvivesTornTail(t *testing.T) {
	dir := t.TempDir()
	s1, err := New(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())
	base := time.Date(2003, 6, 1, 12, 0, 0, 0, time.UTC)
	var log logmodel.Log
	for i := 0; i < 10; i++ {
		log = append(log, logmodel.Entry{
			Time: base.Add(time.Duration(i) * time.Second), User: "alice",
			Statement: fmt.Sprintf("SELECT name FROM Employees WHERE id = %d", i),
		})
	}
	feedChunks(t, ts1.URL, log)
	ts1.Close()
	s1.crash()

	// Tear the journal's tail: chop bytes off the last segment.
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("wal segments: %v (err=%v)", segs, err)
	}
	last := segs[len(segs)-1]
	fi, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(last, fi.Size()-5); err != nil {
		t.Fatal(err)
	}

	s2, err := New(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer s2.crash()
	if s2.Replayed() != len(log)-1 {
		t.Errorf("replayed %d entries past a torn tail, want %d (all intact frames)", s2.Replayed(), len(log)-1)
	}
}
