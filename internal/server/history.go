// GET /history — template trend queries over the columnar retention store.
// The live engine answers "what does this template look like now"; /history
// answers "how did its volume and verdicts evolve", long after the journal
// segments that carried the traffic are gone. The whole query runs on block
// indexes plus the time and template-ID columns: no statement, user or
// parameter bytes are ever materialized.
package server

import (
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"time"

	"sqlclean/internal/colstore"
)

// maxHistoryWindows bounds one response; a range/step pair that exceeds it
// is a client error, not a reason to allocate without bound.
const maxHistoryWindows = 4096

// HistoryWindow is one time bucket of a trend query.
type HistoryWindow struct {
	Start time.Time `json:"start"`
	Count int       `json:"count"`
}

// HistoryPayload is the GET /history document.
type HistoryPayload struct {
	// Template echoes the queried engine fingerprint (0 = all templates).
	Template uint64    `json:"template,omitempty"`
	From     time.Time `json:"from"`
	To       time.Time `json:"to"`
	Step     string    `json:"step"`
	// Verdicts is the union of antipattern verdicts stamped on the matching
	// templates at compaction time.
	Verdicts []string `json:"verdicts,omitempty"`
	// Entries is the total count across windows.
	Entries int `json:"entries"`
	// BlocksScanned/BlocksPruned report the index pruning: pruned blocks
	// were rejected on their min/max time or template index alone.
	BlocksScanned int `json:"blocks_scanned"`
	BlocksPruned  int `json:"blocks_pruned"`
	// Windows are the non-empty buckets, ascending by start time.
	Windows []HistoryWindow `json:"windows"`
}

func (s *Server) handleHistory(w http.ResponseWriter, r *http.Request) {
	if s.store == nil {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "retention disabled (start with -retain)"})
		return
	}
	q := r.URL.Query()

	var template uint64
	if v := q.Get("template"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": fmt.Sprintf("template must be a decimal fingerprint, got %q", v)})
			return
		}
		template = n
	}
	parseTime := func(key string) (time.Time, bool) {
		v := q.Get(key)
		if v == "" {
			return time.Time{}, true
		}
		for _, f := range timeFormats {
			if t, err := time.Parse(f, v); err == nil {
				return t, true
			}
		}
		return time.Time{}, false
	}
	from, ok := parseTime("from")
	if !ok {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": fmt.Sprintf("bad from time %q", q.Get("from"))})
		return
	}
	to, ok := parseTime("to")
	if !ok {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": fmt.Sprintf("bad to time %q", q.Get("to"))})
		return
	}
	if !from.IsZero() && !to.IsZero() && to.Before(from) {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "to is before from"})
		return
	}
	step := time.Hour
	if v := q.Get("step"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d <= 0 {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": fmt.Sprintf("step must be a positive duration, got %q", v)})
			return
		}
		step = d
	}

	p, err := s.history(template, from, to, step)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, p)
}

// history runs one trend query against the retention store.
func (s *Server) history(template uint64, from, to time.Time, step time.Duration) (HistoryPayload, error) {
	p := HistoryPayload{Template: template, Step: step.String()}
	blocks, err := s.store.Reader().Blocks()
	if err != nil {
		// Blocks skips corrupt files and still returns the readable ones;
		// a trend over the surviving history beats a 500.
		s.log.Warn("history: skipping corrupt block", "component", "server", "error", err)
	}

	type matched struct {
		b     *colstore.Block
		match []bool
	}
	var work []matched
	verdicts := map[string]struct{}{}
	for _, b := range blocks {
		kept := false
		var match []bool
		if blockInRange(b, from, to) {
			match = make([]bool, len(b.Templates))
			for ti, tmpl := range b.Templates {
				if template != 0 && tmpl.EngineFP != template && tmpl.LexicalFP() != template {
					continue
				}
				if !from.IsZero() && tmpl.MaxTime.Before(from) {
					continue
				}
				if !to.IsZero() && tmpl.MinTime.After(to) {
					continue
				}
				match[ti] = true
				kept = true
				for _, v := range tmpl.Verdicts {
					verdicts[v] = struct{}{}
				}
			}
		}
		if kept {
			work = append(work, matched{b: b, match: match})
		} else {
			p.BlocksPruned++
		}
	}
	p.BlocksScanned = len(work)
	for v := range verdicts {
		p.Verdicts = append(p.Verdicts, v)
	}
	sort.Strings(p.Verdicts)

	// The window origin: an explicit from, else the earliest matching data;
	// likewise for the end.
	origin, end := from, to
	for _, m := range work {
		if from.IsZero() && (origin.IsZero() || m.b.Meta.MinTime.Before(origin)) {
			origin = m.b.Meta.MinTime
		}
		if to.IsZero() && (end.IsZero() || m.b.Meta.MaxTime.After(end)) {
			end = m.b.Meta.MaxTime
		}
	}
	p.From, p.To = origin, end
	if len(work) == 0 {
		return p, nil
	}
	if n := end.Sub(origin)/step + 1; n > maxHistoryWindows {
		return p, fmt.Errorf("range/step yields %d windows (max %d); widen step or narrow the range", n, maxHistoryWindows)
	}

	counts := map[int64]int{} // window index → count
	for _, m := range work {
		timesNS, tids, err := m.b.LoadColumns()
		if err != nil {
			s.log.Warn("history: bad block columns", "component", "server",
				"block", m.b.Meta.Path, "error", err)
			continue
		}
		originNS := origin.UnixNano()
		fromNS, toNS := int64(0), int64(0)
		if !from.IsZero() {
			fromNS = from.UnixNano()
		}
		if !to.IsZero() {
			toNS = to.UnixNano()
		}
		for i, ns := range timesNS {
			if !m.match[tids[i]] {
				continue
			}
			if fromNS != 0 && ns < fromNS {
				continue
			}
			if toNS != 0 && ns > toNS {
				continue
			}
			counts[(ns-originNS)/int64(step)]++
			p.Entries++
		}
	}
	idxs := make([]int64, 0, len(counts))
	for i := range counts {
		idxs = append(idxs, i)
	}
	sort.Slice(idxs, func(a, b int) bool { return idxs[a] < idxs[b] })
	for _, i := range idxs {
		p.Windows = append(p.Windows, HistoryWindow{
			Start: origin.Add(time.Duration(i) * step),
			Count: counts[i],
		})
	}
	return p, nil
}

func blockInRange(b *colstore.Block, from, to time.Time) bool {
	if !from.IsZero() && b.Meta.MaxTime.Before(from) {
		return false
	}
	if !to.IsZero() && b.Meta.MinTime.After(to) {
		return false
	}
	return true
}
