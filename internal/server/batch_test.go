// Batched-ingest tests: the per-shard batch dispatch and cross-request group
// commit must be invisible in every observable — reports, toplists, watermark
// state, 429 accounting and crash recovery are pinned against the per-entry
// semantics they replaced.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"sqlclean/internal/logmodel"
	"sqlclean/internal/stream"
	"sqlclean/internal/workload"
)

func getBody(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestBatchSizeEquivalence pins batch-size invariance on a single shard: the
// same input fed in request bodies of 1, 7, 64 and 600 lines (600 crosses the
// flushEvery staging boundary, so one request spans several flushes) must
// produce a byte-identical report, a byte-identical /toplist document and the
// same watermark. A single shard applies its queue in input order, so every
// run is fully deterministic — sessionization included.
func TestBatchSizeEquivalence(t *testing.T) {
	log, _ := workload.Generate(workload.DefaultConfig().Scale(0.1))
	log.SortStable()

	run := func(batch int) (reportJSON, toplist []byte, watermark time.Time) {
		s, ts := newTestServer(t, Config{
			Stream:    stream.ShardedConfig{Shards: 1, SweepEvery: 16},
			QueueSize: 4096,
		})
		for i := 0; i < len(log); i += batch {
			end := i + batch
			if end > len(log) {
				end = len(log)
			}
			ir := postIngest(t, ts.URL, ndjsonBody(log[i:end]))
			if ir.Accepted != end-i {
				t.Fatalf("batch %d: accepted %d of %d", batch, ir.Accepted, end-i)
			}
		}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Close(ctx); err != nil {
			t.Fatal(err)
		}
		rj, err := json.MarshalIndent(comparableReport(s), "", " ")
		if err != nil {
			t.Fatal(err)
		}
		return rj, getBody(t, ts.URL+"/toplist?k=20"), s.eng.Watermark()
	}

	wantReport, wantTop, wantWM := run(1)
	for _, batch := range []int{7, 64, 600} {
		gotReport, gotTop, gotWM := run(batch)
		if !bytes.Equal(gotReport, wantReport) {
			t.Errorf("batch %d: report diverged from per-entry feed:\n got %s\nwant %s", batch, gotReport, wantReport)
		}
		if !bytes.Equal(gotTop, wantTop) {
			t.Errorf("batch %d: toplist diverged:\n got %s\nwant %s", batch, gotTop, wantTop)
		}
		if !gotWM.Equal(wantWM) {
			t.Errorf("batch %d: watermark %v, want %v", batch, gotWM, wantWM)
		}
	}
}

// TestConcurrentClientsEquivalence feeds the same log through 1, 4 and 8
// concurrent clients (each owning a disjoint user partition, preserving the
// per-user ordering contract) over 4 shards. Concurrent drains make
// session-boundary timing nondeterministic, so the comparison pins what must
// be exact anyway: every Add-driven statistic, the toplist and the watermark.
func TestConcurrentClientsEquivalence(t *testing.T) {
	log, _ := workload.Generate(workload.DefaultConfig().Scale(0.1))
	log.SortStable()

	run := func(clients int) (addDriven, []byte, time.Time) {
		s, ts := newTestServer(t, Config{
			Stream:    stream.ShardedConfig{Shards: 4, SweepEvery: 16},
			QueueSize: 4096,
		})
		// Partition entries by user so each client's sub-feed is in order.
		parts := make([]logmodel.Log, clients)
		for _, e := range log {
			i := int(s.eng.ShardFor(e.User)) % clients
			parts[i] = append(parts[i], e)
		}
		var wg sync.WaitGroup
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(part logmodel.Log) {
				defer wg.Done()
				const chunk = 48
				for i := 0; i < len(part); i += chunk {
					end := i + chunk
					if end > len(part) {
						end = len(part)
					}
					postIngest(t, ts.URL, ndjsonBody(part[i:end]))
				}
			}(parts[c])
		}
		wg.Wait()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Close(ctx); err != nil {
			t.Fatal(err)
		}
		return addDrivenSummary(s), getBody(t, ts.URL+"/toplist?k=20"), s.eng.Watermark()
	}

	wantAdd, wantTop, wantWM := run(1)
	for _, clients := range []int{4, 8} {
		gotAdd, gotTop, gotWM := run(clients)
		if fmt.Sprintf("%+v", gotAdd) != fmt.Sprintf("%+v", wantAdd) {
			t.Errorf("%d clients: add-driven stats diverged:\n got %+v\nwant %+v", clients, gotAdd, wantAdd)
		}
		if !bytes.Equal(gotTop, wantTop) {
			t.Errorf("%d clients: toplist diverged:\n got %s\nwant %s", clients, gotTop, wantTop)
		}
		if !gotWM.Equal(wantWM) {
			t.Errorf("%d clients: watermark %v, want %v", clients, gotWM, wantWM)
		}
	}
}

// TestQueueFullMidBatchAccounting pins prefix-exact 429 accounting inside one
// request body: when the queue fills mid-batch, the journaled-and-dispatched
// prefix is acknowledged, the failing 1-based line (blank lines included)
// is reported, and a restart replays exactly the acknowledged entries.
func TestQueueFullMidBatchAccounting(t *testing.T) {
	dir := t.TempDir()
	gate := make(chan struct{})
	var once sync.Once
	defer once.Do(func() { close(gate) })
	cfg := durableConfig(dir)
	cfg.Stream = stream.ShardedConfig{Shards: 1, Config: stream.Config{SessionGap: time.Minute}}
	cfg.QueueSize = 2
	cfg.Emit = func(logmodel.Log) { <-gate }
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	base := time.Date(2003, 6, 1, 12, 0, 0, 0, time.UTC)
	line := func(i int, tm time.Time) string {
		cols := []string{"name", "age"}
		return fmt.Sprintf(`{"time":%q,"user":"u","statement":"SELECT %s FROM Employees WHERE id = %d"}`+"\n",
			tm.UTC().Format(time.RFC3339), cols[i%2], i)
	}
	// Wedge the single drain in the gated Emit (entry 1 closes entry 0's
	// session), then wait until the queue is empty again.
	postIngest(t, ts.URL, bytes.NewBufferString(line(0, base)))
	postIngest(t, ts.URL, bytes.NewBufferString(line(1, base.Add(3*time.Minute))))
	deadline := time.Now().Add(5 * time.Second)
	for s.qDepth.Value() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("drainer never wedged in Emit")
		}
		time.Sleep(time.Millisecond)
	}

	// One body, four entries across blank lines: entries on lines 1, 2, 4, 5.
	// Two queue slots remain, so lines 1 and 2 are accepted and line 4 is the
	// first failure.
	body := line(2, base.Add(3*time.Minute+time.Second)) +
		line(3, base.Add(3*time.Minute+2*time.Second)) +
		"\n" +
		line(4, base.Add(3*time.Minute+3*time.Second)) +
		line(5, base.Add(3*time.Minute+4*time.Second))
	resp, err := http.Post(ts.URL+"/ingest", "application/x-ndjson", bytes.NewBufferString(body))
	if err != nil {
		t.Fatal(err)
	}
	var ir ingestResponse
	json.NewDecoder(resp.Body).Decode(&ir)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429 (%+v)", resp.StatusCode, ir)
	}
	if ir.Accepted != 2 || ir.Line != 4 {
		t.Errorf("partial batch: accepted %d at line %d, want 2 accepted failing at line 4", ir.Accepted, ir.Line)
	}

	// Unwedge, let everything apply, then crash and restart: the journal must
	// hold exactly the four acknowledged entries.
	once.Do(func() { close(gate) })
	ts.Close()
	s.crash()
	s2, err := New(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	if s2.Replayed() != 4 {
		t.Errorf("replayed %d entries, want 4 (the acknowledged prefix only)", s2.Replayed())
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	s2.Close(ctx)
}

// TestConcurrentBatchedKillAndReplay extends the PR 4 crash property to the
// batched path under concurrency: 8 goroutines POST chunked bodies through
// per-shard batch dispatch and group commit, the daemon is killed after the
// acks, and a restart must replay every acknowledged entry — converging on
// the same Add-driven statistics as an uninterrupted run.
func TestConcurrentBatchedKillAndReplay(t *testing.T) {
	log, _ := workload.Generate(workload.DefaultConfig().Scale(0.1))
	log.SortStable()

	// Uninterrupted reference.
	ref, err := New(durableConfig(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	refTS := httptest.NewServer(ref.Handler())
	feedChunks(t, refTS.URL, log)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := ref.Close(ctx); err != nil {
		t.Fatal(err)
	}
	want := addDrivenSummary(ref)
	refTS.Close()

	dir := t.TempDir()
	s1, err := New(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())

	const clients = 8
	parts := make([]logmodel.Log, clients)
	for _, e := range log {
		i := int(s1.eng.ShardFor(e.User)) % clients
		parts[i] = append(parts[i], e)
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	acked := 0
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(part logmodel.Log) {
			defer wg.Done()
			const chunk = 32
			for i := 0; i < len(part); i += chunk {
				end := i + chunk
				if end > len(part) {
					end = len(part)
				}
				ir := postIngest(t, ts1.URL, ndjsonBody(part[i:end]))
				mu.Lock()
				acked += ir.Accepted
				mu.Unlock()
			}
		}(parts[c])
	}
	wg.Wait()
	ts1.Close()
	s1.crash()
	if acked != len(log) {
		t.Fatalf("acked %d of %d entries before the crash", acked, len(log))
	}

	s2, err := New(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	if s2.Replayed() != acked {
		t.Errorf("replayed %d entries, want every acknowledged one (%d)", s2.Replayed(), acked)
	}
	if err := s2.Close(ctx); err != nil {
		t.Fatal(err)
	}
	got := addDrivenSummary(s2)
	if fmt.Sprintf("%+v", got) != fmt.Sprintf("%+v", want) {
		t.Errorf("recovered stats diverged from uninterrupted run:\n got %+v\nwant %+v", got, want)
	}
}
