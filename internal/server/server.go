// Package server is the log-cleaning service: a long-running HTTP ingestion
// daemon wrapped around the sharded streaming engine. The paper cleans the
// SkyServer log after the fact; the log itself is produced continuously by
// live web and bot traffic, so the service accepts raw entries as they
// happen (POST /ingest, NDJSON or TSV lines), pushes them through per-shard
// bounded queues into stream.Sharded, and keeps an incremental report
// (GET /report) current the whole time.
//
// Flow control is explicit: every shard has one bounded queue and one drain
// goroutine (one goroutine per user partition preserves the engine's
// per-user ordering contract), enqueue never blocks, and a full queue turns
// the request into 429 so the producer — not the daemon's memory — absorbs
// the burst. Shutdown is graceful by construction: Close stops new requests,
// waits for in-flight ones, drains every queue, then flushes all open
// sessions through the engine — an accepted entry is never dropped.
package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sqlclean/internal/buildinfo"
	"sqlclean/internal/core"
	"sqlclean/internal/logmodel"
	"sqlclean/internal/obs"
	"sqlclean/internal/parsedlog"
	"sqlclean/internal/stream"
)

// Config configures the service.
type Config struct {
	// Stream configures the sharded engine (shard count, session gap,
	// duplicate window, ...). Stream.Config.Metrics and Stream.Config.Parser
	// default to the server's own registry and shared parser.
	Stream stream.ShardedConfig
	// QueueSize is the per-shard ingest queue capacity (0 selects 1024).
	// Total buffered entries are bounded by Shards × QueueSize.
	QueueSize int
	// MaxBodyBytes caps one request body (0 selects 32 MiB).
	MaxBodyBytes int64
	// Metrics is the observability registry served on /metrics. Nil creates
	// a fresh one.
	Metrics *obs.Registry
	// Version is surfaced on /healthz and /report; empty selects the
	// build stamp.
	Version string
	// Emit, when non-nil, receives every batch of cleaned entries as
	// sessions close (and the final flush). Calls are serialized.
	Emit func(logmodel.Log)
}

func (c Config) withDefaults() Config {
	if c.QueueSize <= 0 {
		c.QueueSize = 1024
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 32 << 20
	}
	if c.Metrics == nil {
		c.Metrics = obs.NewRegistry()
	}
	if c.Version == "" {
		c.Version = buildinfo.String()
	}
	return c
}

// Server is the ingestion daemon. Create with New, expose Handler over an
// http.Server, and Close to flush.
type Server struct {
	cfg    Config
	reg    *obs.Registry
	eng    *stream.Sharded
	queues []chan logmodel.Entry

	drainWG  sync.WaitGroup // drain goroutines
	ingestWG sync.WaitGroup // in-flight ingest requests
	closed   atomic.Bool
	closeOne sync.Once
	seq      atomic.Int64
	start    time.Time
	emitMu   sync.Mutex

	mRequests      *obs.Counter
	mAccepted      *obs.Counter
	mRejectedFull  *obs.Counter
	mRejectedOrder *obs.Counter
	mBadLines      *obs.Counter
	mEmitted       *obs.Counter
	qDepth         *obs.Gauge
}

// New builds the engine, starts one drain goroutine per shard and returns
// the server, ready for Handler.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	if cfg.Stream.Metrics == nil {
		cfg.Stream.Metrics = cfg.Metrics
	}
	if cfg.Stream.Parser == nil {
		// One parse cache for the whole daemon: every shard, and any batch
		// run sharing this parser, sees one hit/miss account.
		cfg.Stream.Parser = parsedlog.NewParser()
		cfg.Stream.Parser.Instrument(cfg.Stream.Metrics)
	}
	s := &Server{
		cfg:   cfg,
		reg:   cfg.Metrics,
		eng:   stream.NewSharded(cfg.Stream),
		start: time.Now(),

		mRequests:      cfg.Metrics.Counter("ingest_requests_total"),
		mAccepted:      cfg.Metrics.Counter("ingest_accepted_total"),
		mRejectedFull:  cfg.Metrics.Counter("ingest_rejected_full_total"),
		mRejectedOrder: cfg.Metrics.Counter("ingest_rejected_order_total"),
		mBadLines:      cfg.Metrics.Counter("ingest_bad_lines_total"),
		mEmitted:       cfg.Metrics.Counter("server_emitted_entries_total"),
		qDepth:         cfg.Metrics.Gauge("ingest_queue_depth"),
	}
	s.queues = make([]chan logmodel.Entry, s.eng.NumShards())
	for i := range s.queues {
		s.queues[i] = make(chan logmodel.Entry, cfg.QueueSize)
		s.drainWG.Add(1)
		go s.drain(i)
	}
	return s
}

// Engine exposes the underlying sharded engine (stats, templates).
func (s *Server) Engine() *stream.Sharded { return s.eng }

// drain is shard i's single consumer: it preserves per-user ordering and
// feeds the shard processor, emitting cleaned sessions as they close.
func (s *Server) drain(i int) {
	defer s.drainWG.Done()
	for e := range s.queues[i] {
		s.qDepth.Add(-1)
		out, err := s.eng.AddShard(i, e)
		if err != nil {
			// Out-of-order beyond the session gap: the engine's ordering
			// contract rejects it. Counted, never fatal to the stream.
			s.mRejectedOrder.Inc()
			continue
		}
		s.emit(out)
	}
}

func (s *Server) emit(l logmodel.Log) {
	if len(l) == 0 {
		return
	}
	s.mEmitted.Add(int64(len(l)))
	if s.cfg.Emit != nil {
		s.emitMu.Lock()
		s.cfg.Emit(l)
		s.emitMu.Unlock()
	}
}

// Close gracefully shuts the pipeline down: refuse new ingests, wait for
// in-flight requests, drain every queue, then flush all open sessions
// through the engine (the final cleaned entries go to Emit). Safe to call
// more than once. The context bounds the wait; on expiry the drain keeps
// running in the background and ctx.Err is returned.
func (s *Server) Close(ctx context.Context) error {
	var err error
	s.closeOne.Do(func() {
		s.closed.Store(true)
		done := make(chan struct{})
		go func() {
			defer close(done)
			// Enqueues are non-blocking, so in-flight requests finish as
			// fast as they can read their bodies; only then is closing the
			// queues free of lost sends.
			s.ingestWG.Wait()
			for _, q := range s.queues {
				close(q)
			}
			s.drainWG.Wait()
			s.emit(s.eng.Close())
		}()
		select {
		case <-done:
		case <-ctx.Done():
			err = ctx.Err()
		}
	})
	return err
}

// Handler returns the service mux:
//
//	POST /ingest   NDJSON (default) or TSV log lines; 429 on full queue
//	GET  /report   incremental cleaning report (JSON)
//	GET  /healthz  liveness, version, queue and session state
//	/metrics, /debug/pprof/, /debug/vars   the obs debug surface
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /ingest", s.handleIngest)
	mux.HandleFunc("GET /report", s.handleReport)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	debug := obs.NewDebugMux(s.reg)
	mux.Handle("/metrics", debug)
	mux.Handle("/debug/", debug)
	return mux
}

// wireEntry is the NDJSON ingest record.
type wireEntry struct {
	Time      string `json:"time"`
	User      string `json:"user"`
	Session   string `json:"session"`
	Rows      *int64 `json:"rows"`
	Statement string `json:"statement"`
}

// timeFormats accepted on ingest, tried in order.
var timeFormats = []string{time.RFC3339Nano, logmodel.TimeFormat}

func (w wireEntry) entry() (logmodel.Entry, error) {
	if w.Statement == "" {
		return logmodel.Entry{}, errors.New("missing statement")
	}
	var t time.Time
	var err error
	for _, f := range timeFormats {
		if t, err = time.Parse(f, w.Time); err == nil {
			break
		}
	}
	if err != nil {
		return logmodel.Entry{}, fmt.Errorf("bad time %q", w.Time)
	}
	rows := int64(-1)
	if w.Rows != nil {
		rows = *w.Rows
	}
	return logmodel.Entry{Time: t, User: w.User, Session: w.Session, Rows: rows, Statement: w.Statement}, nil
}

// errQueueFull aborts an ingest scan when a shard queue rejects an entry.
var errQueueFull = errors.New("ingest queue full")

// enqueue routes one entry; it never blocks.
func (s *Server) enqueue(e logmodel.Entry) error {
	e.Seq = s.seq.Add(1) - 1
	i := s.eng.ShardFor(e.User)
	select {
	case s.queues[i] <- e:
		s.qDepth.Add(1)
		s.mAccepted.Inc()
		return nil
	default:
		s.mRejectedFull.Inc()
		return errQueueFull
	}
}

type ingestResponse struct {
	Accepted int    `json:"accepted"`
	Error    string `json:"error,omitempty"`
	Line     int    `json:"line,omitempty"` // 1-based line of the first failure
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	s.mRequests.Inc()
	s.ingestWG.Add(1)
	defer s.ingestWG.Done()
	if s.closed.Load() {
		writeJSON(w, http.StatusServiceUnavailable, ingestResponse{Error: "server draining"})
		return
	}
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)

	format := r.URL.Query().Get("format")
	if format == "" && strings.Contains(r.Header.Get("Content-Type"), "tab-separated") {
		format = "tsv"
	}

	accepted, line, err := s.ingestLines(body, format)
	switch {
	case err == nil:
		writeJSON(w, http.StatusOK, ingestResponse{Accepted: accepted})
	case errors.Is(err, errQueueFull):
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, ingestResponse{Accepted: accepted, Error: err.Error(), Line: line})
	default:
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeJSON(w, http.StatusRequestEntityTooLarge, ingestResponse{Accepted: accepted, Error: err.Error(), Line: line})
			return
		}
		s.mBadLines.Inc()
		writeJSON(w, http.StatusBadRequest, ingestResponse{Accepted: accepted, Error: err.Error(), Line: line})
	}
}

// ingestLines scans the body line by line — constant memory per request —
// and enqueues each entry. It stops at the first failure, returning the
// count accepted so far and the failing 1-based line.
func (s *Server) ingestLines(body io.Reader, format string) (accepted, line int, err error) {
	if format == "tsv" {
		err = logmodel.ScanTSV(body, func(e logmodel.Entry) error {
			line++
			if qerr := s.enqueue(e); qerr != nil {
				return qerr
			}
			accepted++
			return nil
		})
		if err != nil {
			if errors.Is(err, errQueueFull) {
				return accepted, line, err
			}
			return accepted, line + 1, err
		}
		return accepted, 0, nil
	}
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var we wireEntry
		if err := json.Unmarshal([]byte(text), &we); err != nil {
			return accepted, line, fmt.Errorf("line %d: %v", line, err)
		}
		e, err := we.entry()
		if err != nil {
			return accepted, line, fmt.Errorf("line %d: %v", line, err)
		}
		if err := s.enqueue(e); err != nil {
			return accepted, line, err
		}
		accepted++
	}
	if err := sc.Err(); err != nil {
		return accepted, line + 1, err
	}
	return accepted, 0, nil
}

// ReportPayload is the GET /report document: the incremental counterpart of
// the batch pipeline's export. Fields that need global statistics the stream
// does not track (SWS classification, distinct-identity counts) stay zero.
type ReportPayload struct {
	Version       string              `json:"version"`
	UptimeSeconds float64             `json:"uptime_seconds"`
	Report        core.ReportJSON     `json:"report"`
	Stream        stream.Stats        `json:"stream"`
	OpenSessions  int                 `json:"open_sessions"`
	QueueDepth    int                 `json:"queue_depth"`
	QueueCapacity int                 `json:"queue_capacity"`
	Templates     []core.TemplateJSON `json:"templates,omitempty"`
}

// Report assembles the current incremental report. Safe to call while
// ingestion runs; numbers are a consistent-enough snapshot for monitoring,
// not a barrier.
func (s *Server) Report(topTemplates int) ReportPayload {
	st := s.eng.Stats()
	templates := s.eng.Templates()
	p := ReportPayload{
		Version:       s.cfg.Version,
		UptimeSeconds: time.Since(s.start).Seconds(),
		Stream:        st,
		OpenSessions:  s.eng.OpenSessions(),
		QueueDepth:    int(s.qDepth.Value()),
		QueueCapacity: len(s.queues) * s.cfg.QueueSize,
	}
	p.Report = core.ReportJSON{
		SizeOriginal:    st.In,
		CountSelect:     st.Selects + st.Duplicates,
		SizeAfterDedup:  st.Selects,
		DuplicatesFound: st.Duplicates,
		FinalSize:       st.Out,
		CountTemplates:  len(templates),
		SolvePasses:     1,
		DurationNS:      int64(time.Since(s.start)),
	}
	if len(templates) > 0 {
		p.Report.MaxTemplateFreq = templates[0].Frequency
	}
	for kind, n := range st.Antipatterns {
		p.Report.Antipatterns = append(p.Report.Antipatterns, core.AntipatternSummaryJSON{
			Kind: string(kind), Instances: n,
		})
	}
	sortAntipatterns(p.Report.Antipatterns)
	if topTemplates <= 0 {
		topTemplates = 20
	}
	for i, t := range templates {
		if i >= topTemplates {
			break
		}
		p.Templates = append(p.Templates, core.TemplateJSON{
			Fingerprint:    t.Fingerprint,
			Skeleton:       t.Skeleton,
			Frequency:      t.Frequency,
			UserPopularity: t.UserPopularity,
		})
	}
	return p
}

func sortAntipatterns(a []core.AntipatternSummaryJSON) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j].Kind < a[j-1].Kind; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	top := 20
	if v := r.URL.Query().Get("top"); v != "" {
		if n, err := strconv.Atoi(v); err == nil {
			top = n
		}
	}
	writeJSON(w, http.StatusOK, s.Report(top))
}

// HealthPayload is the GET /healthz document.
type HealthPayload struct {
	Status          string  `json:"status"` // "ok" or "draining"
	Version         string  `json:"version"`
	UptimeSeconds   float64 `json:"uptime_seconds"`
	Shards          int     `json:"shards"`
	OpenSessions    int     `json:"open_sessions"`
	QueueDepth      int     `json:"queue_depth"`
	QueueCapacity   int     `json:"queue_capacity"`
	EntriesIn       int     `json:"entries_in"`
	EntriesOut      int     `json:"entries_out"`
	SessionsEmitted int     `json:"sessions_emitted"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	st := s.eng.Stats()
	status := "ok"
	if s.closed.Load() {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, HealthPayload{
		Status:          status,
		Version:         s.cfg.Version,
		UptimeSeconds:   time.Since(s.start).Seconds(),
		Shards:          s.eng.NumShards(),
		OpenSessions:    s.eng.OpenSessions(),
		QueueDepth:      int(s.qDepth.Value()),
		QueueCapacity:   len(s.queues) * s.cfg.QueueSize,
		EntriesIn:       st.In,
		EntriesOut:      st.Out,
		SessionsEmitted: st.SessionsEmitted,
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
