// Package server is the log-cleaning service: a long-running HTTP ingestion
// daemon wrapped around the sharded streaming engine. The paper cleans the
// SkyServer log after the fact; the log itself is produced continuously by
// live web and bot traffic, so the service accepts raw entries as they
// happen (POST /ingest, NDJSON or TSV lines), pushes them through per-shard
// bounded queues into stream.Sharded, and keeps an incremental report
// (GET /report) current the whole time.
//
// Flow control is explicit: every shard has one bounded queue and one drain
// goroutine (one goroutine per user partition preserves the engine's
// per-user ordering contract), enqueue never blocks, and a full queue turns
// the request into 429 so the producer — not the daemon's memory — absorbs
// the burst. Shutdown is graceful by construction: Close stops new requests,
// waits for in-flight ones, drains every queue, then flushes all open
// sessions through the engine — an accepted entry is never dropped.
//
// Durability is opt-in via Config.DataDir: every accepted entry is framed
// into a write-ahead journal (internal/journal) before the request is
// acknowledged, and a periodic + on-drain snapshot of the engine state
// truncates the journal behind it. A restarted daemon restores the latest
// snapshot and replays the journal's tail through the engine, so open
// sessions, dedup windows and template aggregates survive a crash — see
// durability.go.
package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sqlclean/internal/buildinfo"
	"sqlclean/internal/colstore"
	"sqlclean/internal/core"
	"sqlclean/internal/journal"
	"sqlclean/internal/logmodel"
	"sqlclean/internal/obs"
	"sqlclean/internal/parsedlog"
	"sqlclean/internal/pattern"
	"sqlclean/internal/sketch"
	"sqlclean/internal/stream"
)

// Config configures the service.
type Config struct {
	// Stream configures the sharded engine (shard count, session gap,
	// duplicate window, ...). Stream.Config.Metrics and Stream.Config.Parser
	// default to the server's own registry and shared parser.
	Stream stream.ShardedConfig
	// QueueSize is the per-shard ingest queue capacity (0 selects 1024).
	// Total buffered entries are bounded by Shards × QueueSize.
	QueueSize int
	// MaxBodyBytes caps one request body (0 selects 32 MiB).
	MaxBodyBytes int64
	// Metrics is the observability registry served on /metrics. Nil creates
	// a fresh one.
	Metrics *obs.Registry
	// Logger receives structured diagnostics (slow requests, snapshot and
	// journal events). Nil discards them.
	Logger *slog.Logger
	// SlowRequest is the ingest latency at or above which a completed
	// request logs a warn-level line with its trace ID and stage timings
	// (0 selects 1s; negative disables slow-request logging).
	SlowRequest time.Duration
	// RequestLogSize is the capacity of the recent-requests ring behind
	// GET /debug/requests (0 selects 256).
	RequestLogSize int
	// Version is surfaced on /healthz and /report; empty selects the
	// build stamp.
	Version string
	// Emit, when non-nil, receives every batch of cleaned entries as
	// sessions close (and the final flush). Calls are serialized. With a
	// DataDir, sessions closed between the last snapshot and a crash are
	// re-emitted on replay: Emit delivery is at-least-once across restarts.
	Emit func(logmodel.Log)

	// ClustersDisabled turns off the live overlap-clustering surface
	// (GET /clusters). By default the daemon keeps a bounded registry of
	// the distinct predicate boxes it has cleaned and clusters them on
	// demand.
	ClustersDisabled bool
	// ClusterThreshold is the default overlap-distance threshold for
	// GET /clusters (0 selects 0.9, the paper's operating point); requests
	// can override it per call.
	ClusterThreshold float64
	// ClusterMaxBoxes bounds the distinct boxes the registry stores (0
	// selects 4096); further distinct boxes are counted as dropped.
	ClusterMaxBoxes int

	// DataDir enables crash durability: it holds the write-ahead journal
	// (DataDir/wal-*.log) and engine snapshots (DataDir/snapshot-*.json).
	// Empty keeps the daemon purely in-memory.
	DataDir string
	// Fsync is the journal fsync policy (empty selects journal.FsyncInterval).
	Fsync journal.FsyncPolicy
	// FsyncInterval is the cadence for journal.FsyncInterval (0 selects the
	// journal default).
	FsyncInterval time.Duration
	// SegmentBytes is the journal segment rotation size (0 selects the
	// journal default).
	SegmentBytes int64
	// SnapshotInterval is the periodic checkpoint cadence (0 selects 5
	// minutes; negative disables periodic snapshots — the on-drain snapshot
	// still runs). Each snapshot truncates the journal behind it.
	SnapshotInterval time.Duration

	// Retain enables the columnar retention store (requires DataDir): WAL
	// segments a snapshot has made disposable are compacted into compressed
	// columnar blocks instead of deleted, and GET /history serves template
	// trend queries from them long after the journal is gone.
	Retain bool
	// RetainDir is the block directory (empty selects DataDir/colstore).
	RetainDir string
	// RetainMaxBytes caps total block bytes; the oldest blocks are evicted
	// when compaction pushes the store over. 0 keeps everything.
	RetainMaxBytes int64
}

func (c Config) withDefaults() Config {
	if c.QueueSize <= 0 {
		c.QueueSize = 1024
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 32 << 20
	}
	if c.Metrics == nil {
		c.Metrics = obs.NewRegistry()
	}
	if c.Logger == nil {
		c.Logger = obs.NopLogger()
	}
	if c.SlowRequest == 0 {
		c.SlowRequest = time.Second
	}
	if c.Version == "" {
		c.Version = buildinfo.String()
	}
	if c.SnapshotInterval == 0 {
		c.SnapshotInterval = 5 * time.Minute
	}
	return c
}

// Server is the ingestion daemon. Create with New, expose Handler over an
// http.Server, and Close to flush.
type Server struct {
	cfg    Config
	reg    *obs.Registry
	log    *slog.Logger
	reqlog *obs.RequestLog
	eng    *stream.Sharded
	// queues carry batches: one request's entries for one shard travel as a
	// single []queued — one channel send, one drain receive, one journal
	// AppendBatch per (request, shard) instead of one of each per entry.
	queues []chan []queued
	// qMu serializes same-shard enqueues so that, with a journal, a shard's
	// frame order in the WAL equals its queue order — the invariant that
	// makes a replay apply entries exactly as the crashed run did. A batch
	// flush touching several shards locks them in ascending index order.
	qMu []sync.Mutex

	drainWG  sync.WaitGroup // drain goroutines
	ingestWG sync.WaitGroup // in-flight ingest requests
	// closeMu orders ingest admission against Close: handleIngest joins
	// ingestWG only under the read lock with closed still false, and Close
	// flips closed under the write lock — so ingestWG.Wait never races an
	// Add from zero (the documented sync.WaitGroup misuse).
	closeMu  sync.RWMutex
	closed   atomic.Bool
	closeOne sync.Once
	seq      atomic.Int64
	start    time.Time
	emitMu   sync.Mutex

	// Durability state; jw is nil without Config.DataDir (see durability.go).
	jw *journal.Writer
	// store is the columnar retention store; nil without Config.Retain.
	store *colstore.Store
	// enqMu freezes the enqueue path while a snapshot captures engine state;
	// pending counts entries enqueued but not yet applied by a drain.
	enqMu    sync.RWMutex
	pending  atomic.Int64
	snapMu   sync.Mutex
	snapStop chan struct{}
	snapWG   sync.WaitGroup
	replayed int
	// lastSnapshotNS is the wall-clock unix nanos of the newest on-disk
	// snapshot (written this run, or the restored file's mtime); 0 = none.
	lastSnapshotNS atomic.Int64

	mRequests      *obs.Counter
	mAccepted      *obs.Counter
	mRejectedFull  *obs.Counter
	mRejectedOrder *obs.Counter
	mRejectedSkew  *obs.Counter
	mBadLines      *obs.Counter
	mEmitted       *obs.Counter
	qDepth         *obs.Gauge
	// qDepthShard mirrors qDepth per partition: a single hot shard (one
	// pathological user) is invisible in the aggregate gauge.
	qDepthShard []*obs.Gauge

	mReplayed     *obs.Counter
	mReplayRej    *obs.Counter
	mSnapshots    *obs.Counter
	mSnapshotErrs *obs.Counter
	mJournalErrs  *obs.Counter
	gSnapshotLSN  *obs.Gauge

	// boxes is the distinct-predicate-box registry behind GET /clusters;
	// nil when Config.ClustersDisabled is set. Mutated only under emitMu.
	boxes           *boxRegistry
	mBoxesDropped   *obs.Counter
	mBoxesClustered *obs.Counter
	mClusterCells   *obs.Counter
	mClusterAvoided *obs.Counter
	gDistinctBoxes  *obs.Gauge

	// gHLLOcc mirrors the merged distinct-identity sketch's register
	// occupancy — refreshed on every /report and /toplist assembly, the
	// points where the merged cross-shard view is computed anyway.
	gHLLOcc *obs.Gauge
}

// New builds the engine, restores durable state when Config.DataDir is set
// (snapshot restore + journal replay, before any traffic is admitted),
// starts one drain goroutine per shard and returns the server, ready for
// Handler.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.Retain && cfg.DataDir == "" {
		return nil, errors.New("server: retention (-retain) requires a data dir (-data-dir)")
	}
	if cfg.Stream.Metrics == nil {
		cfg.Stream.Metrics = cfg.Metrics
	}
	if cfg.Stream.Parser == nil {
		// One parse cache for the whole daemon: every shard, and any batch
		// run sharing this parser, sees one hit/miss account.
		cfg.Stream.Parser = parsedlog.NewParser()
		cfg.Stream.Parser.Instrument(cfg.Stream.Metrics)
	}
	s := &Server{
		cfg:      cfg,
		reg:      cfg.Metrics,
		log:      cfg.Logger,
		reqlog:   obs.NewRequestLog(cfg.RequestLogSize, 0),
		eng:      stream.NewSharded(cfg.Stream),
		start:    time.Now(),
		snapStop: make(chan struct{}),

		mRequests:      cfg.Metrics.Counter("ingest_requests_total"),
		mAccepted:      cfg.Metrics.Counter("ingest_accepted_total"),
		mRejectedFull:  cfg.Metrics.Counter("ingest_rejected_full_total"),
		mRejectedOrder: cfg.Metrics.Counter("ingest_rejected_order_total"),
		mRejectedSkew:  cfg.Metrics.Counter("ingest_rejected_skew_total"),
		mBadLines:      cfg.Metrics.Counter("ingest_bad_lines_total"),
		mEmitted:       cfg.Metrics.Counter("server_emitted_entries_total"),
		qDepth:         cfg.Metrics.Gauge("ingest_queue_depth"),

		mReplayed:     cfg.Metrics.Counter("journal_replayed_entries_total"),
		mReplayRej:    cfg.Metrics.Counter("journal_replay_rejected_total"),
		mSnapshots:    cfg.Metrics.Counter("snapshots_written_total"),
		mSnapshotErrs: cfg.Metrics.Counter("snapshot_errors_total"),
		mJournalErrs:  cfg.Metrics.Counter("journal_append_errors_total"),
		gSnapshotLSN:  cfg.Metrics.Gauge("snapshot_last_lsn"),

		mBoxesDropped:   cfg.Metrics.Counter("cluster_boxes_dropped_total"),
		mBoxesClustered: cfg.Metrics.Counter("cluster_boxes_clustered_total"),
		mClusterCells:   cfg.Metrics.Counter("cluster_cells_probed_total"),
		mClusterAvoided: cfg.Metrics.Counter("cluster_comparisons_avoided_total"),
		gDistinctBoxes:  cfg.Metrics.Gauge("cluster_distinct_boxes"),

		gHLLOcc: cfg.Metrics.Gauge("sketch_hll_registers_occupied"),
	}
	if !cfg.ClustersDisabled {
		// Created before durability replay so re-emitted sessions populate
		// the registry exactly like live traffic.
		s.boxes = newBoxRegistry(cfg.ClusterMaxBoxes)
	}
	if cfg.DataDir != "" {
		// Restore + replay runs before the drain goroutines exist, so the
		// engine is applied to strictly in journal order.
		if err := s.openDurability(); err != nil {
			return nil, err
		}
	}
	s.queues = make([]chan []queued, s.eng.NumShards())
	s.qMu = make([]sync.Mutex, len(s.queues))
	s.qDepthShard = make([]*obs.Gauge, len(s.queues))
	for i := range s.queues {
		// Capacity QueueSize is in batches, but admission bounds the shard's
		// queued entries to QueueSize and every batch holds at least one
		// entry, so batches in flight can never exceed the capacity either —
		// the dispatch-side send is provably non-blocking.
		s.queues[i] = make(chan []queued, cfg.QueueSize)
		s.qDepthShard[i] = cfg.Metrics.Gauge(fmt.Sprintf("ingest_queue_depth_shard%03d", i))
		s.drainWG.Add(1)
		go s.drain(i)
	}
	if s.jw != nil && cfg.SnapshotInterval > 0 {
		s.snapWG.Add(1)
		go s.snapshotLoop()
	}
	return s, nil
}

// Engine exposes the underlying sharded engine (stats, templates).
func (s *Server) Engine() *stream.Sharded { return s.eng }

// Replayed reports how many journal entries the server re-applied at startup.
func (s *Server) Replayed() int { return s.replayed }

// queued is one ingest queue element: the entry plus the trace of the
// request that carried it, so the drain can stamp the async emit stage.
// Traces ride the queue, never the WAL — replayed entries carry a nil trace.
type queued struct {
	e  logmodel.Entry
	tr *obs.ReqTrace
}

// drain is shard i's single consumer: it preserves per-user ordering and
// feeds the shard processor, emitting cleaned sessions as they close. It
// receives whole batches but applies them entry by entry through the
// engine's faithful batch loop, so ordering, watermark and sweep semantics
// are exactly those of per-entry dispatch.
func (s *Server) drain(i int) {
	defer s.drainWG.Done()
	var entries []logmodel.Entry // per-batch scratch, reused
	for batch := range s.queues[i] {
		// The whole batch leaves the queue at once. Admission reads these
		// gauges as its capacity budget, so they drop at receive time — the
		// batched analogue of the per-entry path's receive-time decrement.
		s.qDepth.Add(-int64(len(batch)))
		s.qDepthShard[i].Add(-int64(len(batch)))
		entries = entries[:0]
		for _, q := range batch {
			entries = append(entries, q.e)
		}
		s.eng.AddShardBatch(i, entries, func(k int, out logmodel.Log, err error) {
			if err != nil {
				switch {
				case errors.Is(err, stream.ErrFutureSkew):
					// Corrupted far-future timestamp: the watermark guard
					// refused it before it could poison every shard's sessions.
					s.mRejectedSkew.Inc()
				default:
					// Out-of-order beyond the session gap: the engine's ordering
					// contract rejects it. Counted, never fatal to the stream.
					s.mRejectedOrder.Inc()
				}
			} else {
				s.emit(out)
			}
			// Applied (and emitted): only now may a snapshot consider this
			// entry covered. Decremented after emit so a quiescence wait also
			// proves the Emit callback is idle.
			batch[k].tr.DonePending("emit")
			s.pending.Add(-1)
		})
	}
}

func (s *Server) emit(l logmodel.Log) {
	if len(l) == 0 {
		return
	}
	s.mEmitted.Add(int64(len(l)))
	if s.cfg.Emit == nil && s.boxes == nil {
		return
	}
	s.emitMu.Lock()
	defer s.emitMu.Unlock()
	if s.boxes != nil {
		s.observeBoxes(l)
	}
	if s.cfg.Emit != nil {
		s.cfg.Emit(l)
	}
}

// Close gracefully shuts the pipeline down: refuse new ingests, wait for
// in-flight requests, drain every queue, then flush all open sessions
// through the engine (the final cleaned entries go to Emit). With a DataDir
// it then writes a final snapshot — a clean restart restores instead of
// replaying — and closes the journal. Safe to call more than once. The
// context bounds the wait; on expiry the drain keeps running in the
// background and ctx.Err is returned.
func (s *Server) Close(ctx context.Context) error {
	var err error
	s.closeOne.Do(func() {
		// The write lock orders this flip against every in-flight
		// handleIngest admission: after Unlock, either the handler saw
		// closed and never joined ingestWG, or it joined before we Wait.
		s.closeMu.Lock()
		s.closed.Store(true)
		s.closeMu.Unlock()
		close(s.snapStop)
		done := make(chan struct{})
		go func() {
			defer close(done)
			// Enqueues are non-blocking, so in-flight requests finish as
			// fast as they can read their bodies; only then is closing the
			// queues free of lost sends.
			s.ingestWG.Wait()
			for _, q := range s.queues {
				close(q)
			}
			s.drainWG.Wait()
			s.emit(s.eng.Close())
			s.snapWG.Wait()
			s.closeDurability()
		}()
		select {
		case <-done:
		case <-ctx.Done():
			err = ctx.Err()
		}
	})
	return err
}

// Handler returns the service mux:
//
//	POST /ingest   NDJSON (default) or TSV log lines; 429 on full queue
//	GET  /report   incremental cleaning report (JSON)
//	GET  /clusters overlap clustering of observed predicate boxes (§6.9)
//	GET  /healthz  liveness, version, queue, session and watermark state
//	GET  /statusz  self-contained human status page (?format=text for plain)
//	GET  /debug/requests   recent / slowest request traces (?view=slow)
//	/metrics, /debug/pprof/, /debug/vars   the obs debug surface
//
// Every endpoint is wrapped in per-endpoint latency/status/bytes middleware
// feeding the registry (http_<endpoint>_* series).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	handle := func(pattern, endpoint string, h http.Handler) {
		mux.Handle(pattern, obs.InstrumentHandler(s.reg, endpoint, h))
	}
	handle("POST /ingest", "ingest", http.HandlerFunc(s.handleIngest))
	handle("GET /report", "report", http.HandlerFunc(s.handleReport))
	handle("GET /clusters", "clusters", http.HandlerFunc(s.handleClusters))
	handle("GET /toplist", "toplist", http.HandlerFunc(s.handleToplist))
	handle("GET /history", "history", http.HandlerFunc(s.handleHistory))
	handle("GET /healthz", "healthz", http.HandlerFunc(s.handleHealthz))
	handle("GET /statusz", "statusz", http.HandlerFunc(s.handleStatusz))
	// More specific than the debug mux's /debug/ subtree, so it wins.
	handle("GET /debug/requests", "debug_requests", s.reqlog)
	debug := obs.NewDebugMux(s.reg)
	mux.Handle("/metrics", debug)
	mux.Handle("/debug/", debug)
	return mux
}

// wireEntry is the NDJSON ingest record.
type wireEntry struct {
	Time      string `json:"time"`
	User      string `json:"user"`
	Session   string `json:"session"`
	Rows      *int64 `json:"rows"`
	Statement string `json:"statement"`
}

// timeFormats accepted on ingest, tried in order.
var timeFormats = []string{time.RFC3339Nano, logmodel.TimeFormat}

func (w wireEntry) entry() (logmodel.Entry, error) {
	if w.Statement == "" {
		return logmodel.Entry{}, errors.New("missing statement")
	}
	var t time.Time
	var err error
	for _, f := range timeFormats {
		if t, err = time.Parse(f, w.Time); err == nil {
			break
		}
	}
	if err != nil {
		return logmodel.Entry{}, fmt.Errorf("bad time %q", w.Time)
	}
	rows := int64(-1)
	if w.Rows != nil {
		rows = *w.Rows
	}
	return logmodel.Entry{Time: t, User: w.User, Session: w.Session, Rows: rows, Statement: w.Statement}, nil
}

// errQueueFull aborts an ingest scan when a shard queue rejects an entry.
var errQueueFull = errors.New("ingest queue full")

// errJournal aborts an ingest scan when the write-ahead journal rejects an
// append (disk full, I/O error): the entries framed before the failure are
// queued and acknowledged, everything after it is dropped — the journal and
// the queues always agree on the accepted prefix.
var errJournal = errors.New("journal append failed")

// flushEvery bounds a request's staging buffer: decoded entries are
// dispatched to the shards (and the journal) in chunks of at most this many,
// so one huge request body cannot defer admission-control or durability
// decisions indefinitely.
const flushEvery = 512

// stagedEntry is one decoded ingest line waiting for batch dispatch.
type stagedEntry struct {
	e     logmodel.Entry
	shard int
	line  int // 1-based input line, for failure reporting
}

// stager accumulates one request's decoded entries and dispatches them in
// per-shard batches: one qMu acquisition, one journal AppendBatch, one
// channel send and one set of pending/qDepth updates per (flush, shard),
// instead of one of each per entry.
type stager struct {
	s        *Server
	tr       *obs.ReqTrace
	buf      []stagedEntry
	accepted int // entries dispatched and journaled across all flushes
	failLine int // input line of the first rejected entry (0 = none)

	// Per-shard scratch, reused across flushes.
	room    []int            // remaining queue capacity during a flush
	count   []int            // entries bound for each shard in this flush
	entries []logmodel.Entry // journal batch, in input order
	touched []int            // shard indexes this flush uses, ascending
}

func newStager(s *Server, tr *obs.ReqTrace) *stager {
	n := len(s.queues)
	return &stager{
		s: s, tr: tr,
		buf:     make([]stagedEntry, 0, flushEvery),
		room:    make([]int, n),
		count:   make([]int, n),
		entries: make([]logmodel.Entry, 0, flushEvery),
	}
}

// add stages one decoded entry, flushing when the chunk is full.
func (st *stager) add(e logmodel.Entry, line int) error {
	st.buf = append(st.buf, stagedEntry{e: e, shard: st.s.eng.ShardFor(e.User), line: line})
	if len(st.buf) >= flushEvery {
		return st.flush()
	}
	return nil
}

// finish flushes whatever remains staged at the end of the scan.
func (st *stager) finish() error { return st.flush() }

// flush dispatches the staged chunk. Under the snapshot freeze and the
// touched shards' locks (ascending order — the only multi-lock path, so no
// ordering cycle exists) it:
//
//  1. computes each shard's remaining capacity from the depth gauge and
//     finds the global cut: the first staged entry, in input order, whose
//     shard has no room (everything before it is admitted — prefix-exact
//     429 accounting across shards);
//  2. assigns the admitted prefix its seq numbers with one atomic add;
//  3. frames the prefix into the journal with one AppendBatch call (an I/O
//     error shortens the prefix to what the journal actually holds);
//  4. sends each shard its batch — one send, one AddPending, one set of
//     gauge updates per shard.
//
// Journal-before-queue: an entry is only ever dispatched after its frame is
// buffered in the WAL, so queue order equals WAL order per shard and a
// replayed journal re-applies exactly what the queues saw.
func (st *stager) flush() error {
	n := len(st.buf)
	if n == 0 {
		return nil
	}
	s := st.s
	defer func() { st.buf = st.buf[:0] }()

	st.touched = st.touched[:0]
	for k := range st.buf {
		i := st.buf[k].shard
		if st.count[i] == 0 {
			st.touched = append(st.touched, i)
		}
		st.count[i]++
	}
	sort.Ints(st.touched)

	// Read side of the snapshot freeze: while a checkpoint captures engine
	// state, no new entry may slip past the recorded journal position.
	s.enqMu.RLock()
	defer s.enqMu.RUnlock()
	for _, i := range st.touched {
		s.qMu[i].Lock()
	}
	defer func() {
		for _, i := range st.touched {
			s.qMu[i].Unlock()
		}
	}()

	// The depth gauge is incremented under qMu (by flushes) and decremented
	// by the drain at batch receive, so reading it here is conservative:
	// never below the true queue population. room is therefore a safe
	// admission budget.
	for _, i := range st.touched {
		st.room[i] = s.cfg.QueueSize - int(s.qDepthShard[i].Value())
	}
	cut, full := n, false
	for k := range st.buf {
		i := st.buf[k].shard
		if st.room[i] <= 0 {
			cut, full = k, true
			break
		}
		st.room[i]--
	}

	journaled := cut
	var jerr error
	if cut > 0 {
		base := s.seq.Add(int64(cut)) - int64(cut)
		st.entries = st.entries[:0]
		for k := 0; k < cut; k++ {
			st.buf[k].e.Seq = base + int64(k)
			st.entries = append(st.entries, st.buf[k].e)
		}
		if s.jw != nil {
			p, _, err := s.jw.AppendBatch(st.entries)
			if err != nil {
				s.mJournalErrs.Inc()
				journaled = p
				jerr = fmt.Errorf("%w: %v", errJournal, err)
			}
		}
		for _, i := range st.touched {
			// count covers the whole staged chunk; when the cut (or a journal
			// error) shortened the dispatched prefix, recount over it so no
			// shard gets an empty — or short-capped — batch.
			c := st.count[i]
			if journaled < n {
				c = 0
				for k := 0; k < journaled; k++ {
					if st.buf[k].shard == i {
						c++
					}
				}
			}
			if c == 0 {
				continue
			}
			batch := make([]queued, 0, c)
			for k := 0; k < journaled; k++ {
				if st.buf[k].shard == i {
					batch = append(batch, queued{e: st.buf[k].e, tr: st.tr})
				}
			}
			// Register the async completions before the send: the drain may
			// apply the batch the instant it lands, and its DonePending calls
			// must not race the counter to zero ahead of this registration.
			// The gauges rise before the send too, so the admission budget
			// above never under-counts a batch the drain already received.
			st.tr.AddPending(int64(len(batch)))
			s.pending.Add(int64(len(batch)))
			s.qDepth.Add(int64(len(batch)))
			s.qDepthShard[i].Add(int64(len(batch)))
			s.queues[i] <- batch // non-blocking by construction (see New)
		}
		s.mAccepted.Add(int64(journaled))
		st.accepted += journaled
	}
	for _, i := range st.touched {
		st.count[i] = 0
	}

	switch {
	case jerr != nil:
		// The journal failure line precedes any queue-full line.
		st.failLine = st.buf[journaled].line
		return jerr
	case full:
		st.failLine = st.buf[cut].line
		s.mRejectedFull.Inc()
		return errQueueFull
	}
	return nil
}

type ingestResponse struct {
	Accepted int    `json:"accepted"`
	Error    string `json:"error,omitempty"`
	Line     int    `json:"line,omitempty"` // 1-based line of the first failure
}

// beginIngest admits one ingest request, or reports that the server is
// draining. The closed check and the WaitGroup join happen under one read
// lock: Close flips closed under the write lock before Wait, so an Add can
// never race Wait up from zero — the panic mode of a bare Add-then-check.
func (s *Server) beginIngest() bool {
	s.closeMu.RLock()
	defer s.closeMu.RUnlock()
	if s.closed.Load() {
		return false
	}
	s.ingestWG.Add(1)
	return true
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	s.mRequests.Inc()
	// The trace honors an upstream X-Trace-Id (so a client can follow its own
	// request through the daemon's logs) and is echoed back either way.
	tr := s.reqlog.StartWithID(r.Header.Get("X-Trace-Id"))
	w.Header().Set("X-Trace-Id", tr.ID())
	admStart := time.Now()
	if !s.beginIngest() {
		tr.Stage("admission", time.Since(admStart))
		writeJSON(w, http.StatusServiceUnavailable, ingestResponse{Error: "server draining"})
		s.finishTrace(tr, http.StatusServiceUnavailable, "draining", 0)
		return
	}
	defer s.ingestWG.Done()
	// The handler holds one pending reference for the whole request, so the
	// async emit stage can only be stamped by the drain that applies the
	// request's true last entry — never mid-scan when a queue briefly empties.
	tr.AddPending(1)
	tr.Stage("admission", time.Since(admStart))
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)

	format := r.URL.Query().Get("format")
	if format == "" && strings.Contains(r.Header.Get("Content-Type"), "tab-separated") {
		format = "tsv"
	}

	scanStart := time.Now()
	accepted, line, err := s.ingestLines(body, format, tr)
	tr.Stage("enqueue", time.Since(scanStart))
	tr.SetInt("accepted", int64(accepted))
	// Group commit: one flush (and fsync, per policy) per request, before
	// any acknowledgement — including partial-failure responses, whose
	// accepted count is a promise too.
	if s.jw != nil {
		jStart := time.Now()
		cerr := s.jw.Commit()
		tr.Stage("journal", time.Since(jStart))
		if cerr != nil {
			s.mJournalErrs.Inc()
			writeJSON(w, http.StatusInternalServerError, ingestResponse{Accepted: accepted, Error: "journal commit: " + cerr.Error()})
			s.finishTrace(tr, http.StatusInternalServerError, "journal commit failed", accepted)
			return
		}
	}
	switch {
	case err == nil:
		writeJSON(w, http.StatusOK, ingestResponse{Accepted: accepted})
		s.finishTrace(tr, http.StatusOK, "ok", accepted)
	case errors.Is(err, errQueueFull):
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, ingestResponse{Accepted: accepted, Error: err.Error(), Line: line})
		s.finishTrace(tr, http.StatusTooManyRequests, "queue full", accepted)
	case errors.Is(err, errJournal):
		writeJSON(w, http.StatusInternalServerError, ingestResponse{Accepted: accepted, Error: err.Error(), Line: line})
		s.finishTrace(tr, http.StatusInternalServerError, "journal append failed", accepted)
	default:
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeJSON(w, http.StatusRequestEntityTooLarge, ingestResponse{Accepted: accepted, Error: err.Error(), Line: line})
			s.finishTrace(tr, http.StatusRequestEntityTooLarge, "body too large", accepted)
			return
		}
		s.mBadLines.Inc()
		writeJSON(w, http.StatusBadRequest, ingestResponse{Accepted: accepted, Error: err.Error(), Line: line})
		s.finishTrace(tr, http.StatusBadRequest, "bad line", accepted)
	}
}

// finishTrace completes an ingest trace: it freezes the synchronous duration,
// releases the handler's pending reference (letting the drain's final entry
// stamp the emit stage), and logs the request — warn with stage timings when
// it breached the slow-request threshold, debug otherwise.
func (s *Server) finishTrace(tr *obs.ReqTrace, status int, outcome string, accepted int) {
	tr.Finish(status, outcome)
	tr.DonePending("emit")
	d := tr.SyncDuration()
	slow := s.cfg.SlowRequest > 0 && d >= s.cfg.SlowRequest
	if !slow && !s.log.Enabled(context.Background(), slog.LevelDebug) {
		return
	}
	attrs := []any{
		"component", "server",
		"trace_id", tr.ID(),
		"status", status,
		"outcome", outcome,
		"accepted", accepted,
		"duration_ms", float64(d) / float64(time.Millisecond),
	}
	if slow {
		for _, st := range tr.Snapshot().Stages {
			attrs = append(attrs, "stage_"+st.Name+"_ms", float64(st.DurationNS)/float64(time.Millisecond))
		}
		s.log.Warn("slow request", attrs...)
		return
	}
	s.log.Debug("ingest request", attrs...)
}

// ingestLines scans the body line by line — constant memory per request —
// staging decoded entries and dispatching them in per-shard batches. It
// stops at the first failure, returning the count accepted so far and the
// failing 1-based input line (real line numbers: blank lines the scanners
// skip still count, so the reported line matches the client's own view of
// its payload). Entries staged before a parse failure are still dispatched:
// they were valid, and the per-entry path accepted them too. When both a
// dispatch failure and a parse failure occur, the dispatch failure wins —
// its line is always the earlier one.
func (s *Server) ingestLines(body io.Reader, format string, tr *obs.ReqTrace) (accepted, line int, err error) {
	st := newStager(s, tr)
	var scanErr error
	badLine := 0
	if format == "tsv" {
		lastLine := 0
		scanErr = logmodel.ScanTSVLines(body, func(lineNo int, e logmodel.Entry) error {
			lastLine = lineNo
			return st.add(e, lineNo)
		})
		if scanErr != nil {
			var le *logmodel.LineError
			switch {
			case errors.As(scanErr, &le):
				badLine = le.Line
			case errors.Is(scanErr, errQueueFull) || errors.Is(scanErr, errJournal):
				badLine = st.failLine
			default:
				badLine = lastLine + 1
			}
		}
	} else {
		sc := bufio.NewScanner(body)
		sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
		for sc.Scan() && scanErr == nil {
			line++
			text := strings.TrimSpace(sc.Text())
			if text == "" {
				continue
			}
			var we wireEntry
			if uerr := json.Unmarshal([]byte(text), &we); uerr != nil {
				scanErr, badLine = fmt.Errorf("line %d: %v", line, uerr), line
				break
			}
			e, eerr := we.entry()
			if eerr != nil {
				scanErr, badLine = fmt.Errorf("line %d: %v", line, eerr), line
				break
			}
			if aerr := st.add(e, line); aerr != nil {
				scanErr, badLine = aerr, st.failLine
				break
			}
		}
		if scanErr == nil {
			if serr := sc.Err(); serr != nil {
				scanErr, badLine = serr, line+1
			}
		}
	}
	flushErr := st.finish()
	if flushErr != nil {
		// The staged tail failed to dispatch; its line precedes any parse
		// failure the scan hit afterwards.
		return st.accepted, st.failLine, flushErr
	}
	if scanErr != nil {
		return st.accepted, badLine, scanErr
	}
	return st.accepted, 0, nil
}

// ReportPayload is the GET /report document: the incremental counterpart of
// the batch pipeline's export. The global statistics the exact stream
// counters cannot afford — SWS classification, distinct-identity counts —
// come from the sketch layer: distinct_users is the HLL estimate,
// sws_templates/sws_queries classify the windowed evidence (exact below the
// configured user cap), and the sketches block summarizes the sketch state
// itself. All of it is omitted when the daemon runs with sketches disabled.
type ReportPayload struct {
	Version       string              `json:"version"`
	UptimeSeconds float64             `json:"uptime_seconds"`
	Report        core.ReportJSON     `json:"report"`
	Stream        stream.Stats        `json:"stream"`
	OpenSessions  int                 `json:"open_sessions"`
	QueueDepth    int                 `json:"queue_depth"`
	QueueCapacity int                 `json:"queue_capacity"`
	Templates     []core.TemplateJSON `json:"templates,omitempty"`
	Sketch        *SketchReport       `json:"sketches,omitempty"`
}

// SketchReport summarizes the merged cross-shard sketch state.
type SketchReport struct {
	// DistinctUsersEstimate is the HLL estimate of distinct identities over
	// every entry the stream accepted (±~0.8 % at the default precision).
	DistinctUsersEstimate int64 `json:"distinct_users_estimate"`
	// HLLPrecision/HLLRegistersOccupied describe the counter's state.
	HLLPrecision         int `json:"hll_precision"`
	HLLRegistersOccupied int `json:"hll_registers_occupied"`
	// TopKCapacity/TopKTracked/TopKEvictions describe the heavy-hitter
	// tracker; the entries themselves live on GET /toplist.
	TopKCapacity  int   `json:"topk_capacity"`
	TopKTracked   int   `json:"topk_tracked"`
	TopKEvictions int64 `json:"topk_evictions"`
	// SWSTemplates/SWSQueries classify the windowed evidence with the
	// default thresholds against the stream's accepted-SELECT total —
	// the streaming counterpart of the batch report's columns.
	SWSTemplates int `json:"sws_templates"`
	SWSQueries   int `json:"sws_queries"`
	// SWSWindows/SWSWindowFlushes describe the evidence windowing.
	SWSWindows       int   `json:"sws_windows"`
	SWSWindowFlushes int64 `json:"sws_window_flushes"`
}

// Report assembles the current incremental report. Safe to call while
// ingestion runs; numbers are a consistent-enough snapshot for monitoring,
// not a barrier.
func (s *Server) Report(topTemplates int) ReportPayload {
	st := s.eng.Stats()
	templates := s.eng.Templates()
	p := ReportPayload{
		Version:       s.cfg.Version,
		UptimeSeconds: time.Since(s.start).Seconds(),
		Stream:        st,
		OpenSessions:  s.eng.OpenSessions(),
		QueueDepth:    int(s.qDepth.Value()),
		QueueCapacity: len(s.queues) * s.cfg.QueueSize,
	}
	p.Report = core.ReportJSON{
		SizeOriginal:    st.In,
		CountSelect:     st.Selects + st.Duplicates,
		SizeAfterDedup:  st.Selects,
		DuplicatesFound: st.Duplicates,
		FinalSize:       st.Out,
		CountTemplates:  len(templates),
		SolvePasses:     1,
		DurationNS:      int64(time.Since(s.start)),
	}
	if len(templates) > 0 {
		p.Report.MaxTemplateFreq = templates[0].Frequency
	}
	var sws map[uint64]bool
	var evidence map[uint64]sketch.Evidence
	if sk := s.eng.Sketches(); sk != nil {
		sws = sk.SWS.Classify(st.Selects, pattern.DefaultSWSOptions())
		evidence = sk.SWS.MergedEvidence()
		sr := &SketchReport{
			DistinctUsersEstimate: sk.HLL.Count(),
			HLLPrecision:          sk.HLL.Precision(),
			HLLRegistersOccupied:  sk.HLL.Occupied(),
			TopKCapacity:          sk.Top.Capacity(),
			TopKTracked:           sk.Top.Len(),
			TopKEvictions:         sk.Top.Evictions(),
			SWSTemplates:          len(sws),
			SWSWindows:            sk.SWS.Windows(),
			SWSWindowFlushes:      sk.SWS.Flushes(),
		}
		for fp, ev := range evidence {
			if sws[fp] {
				sr.SWSQueries += ev.Freq
			}
		}
		p.Sketch = sr
		p.Report.DistinctUsers = int(sr.DistinctUsersEstimate)
		p.Report.SWSTemplates = sr.SWSTemplates
		p.Report.SWSQueries = sr.SWSQueries
		s.gHLLOcc.Set(int64(sr.HLLRegistersOccupied))
	}
	for kind, n := range st.Antipatterns {
		p.Report.Antipatterns = append(p.Report.Antipatterns, core.AntipatternSummaryJSON{
			Kind: string(kind), Instances: n,
		})
	}
	sortAntipatterns(p.Report.Antipatterns)
	if topTemplates <= 0 {
		topTemplates = 20
	}
	for i, t := range templates {
		if i >= topTemplates {
			break
		}
		tj := core.TemplateJSON{
			Fingerprint:    t.Fingerprint,
			Skeleton:       t.Skeleton,
			Frequency:      t.Frequency,
			UserPopularity: t.UserPopularity,
			SWS:            sws[t.Fingerprint],
		}
		if ev, ok := evidence[t.Fingerprint]; ok && ev.Freq > 0 {
			tj.DisjointRatio = float64(len(ev.WCs)) / float64(ev.Freq)
		}
		p.Templates = append(p.Templates, tj)
	}
	return p
}

func sortAntipatterns(a []core.AntipatternSummaryJSON) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j].Kind < a[j-1].Kind; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// parseTop validates a ?top= query parameter: absent selects def, anything
// that is not a positive integer is a client error (silently substituting
// the default would make /report?top=abc indistinguishable from top=20).
func parseTop(r *http.Request, def int) (int, error) {
	v := r.URL.Query().Get("top")
	if v == "" {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil || n <= 0 {
		return 0, fmt.Errorf("top must be a positive integer, got %q", v)
	}
	return n, nil
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	top, err := parseTop(r, 20)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, s.Report(top))
}

// DurabilityHealth is the durability corner of /healthz, present only when
// the daemon runs with a data directory.
type DurabilityHealth struct {
	DataDir string `json:"data_dir"`
	// JournalLSN is the LSN of the last appended frame.
	JournalLSN uint64 `json:"journal_lsn"`
	// SnapshotLSN is the journal position the last snapshot covered.
	SnapshotLSN uint64 `json:"snapshot_lsn"`
	// JournalSegments counts live WAL segment files.
	JournalSegments int `json:"journal_segments"`
	// ReplayedOnStart counts entries replayed from the journal at startup.
	ReplayedOnStart int `json:"replayed_on_start"`
	// RetainBlocks/RetainBytes describe the columnar retention store
	// (absent when retention is off).
	RetainBlocks int   `json:"retain_blocks,omitempty"`
	RetainBytes  int64 `json:"retain_bytes,omitempty"`
}

// HealthPayload is the GET /healthz document.
type HealthPayload struct {
	Status          string  `json:"status"` // "ok" or "draining"
	Version         string  `json:"version"`
	UptimeSeconds   float64 `json:"uptime_seconds"`
	Shards          int     `json:"shards"`
	OpenSessions    int     `json:"open_sessions"`
	QueueDepth      int     `json:"queue_depth"`
	QueueCapacity   int     `json:"queue_capacity"`
	EntriesIn       int     `json:"entries_in"`
	EntriesOut      int     `json:"entries_out"`
	SessionsEmitted int     `json:"sessions_emitted"`
	// WatermarkLagSeconds is wall-clock now minus the global event-time
	// watermark (-1 before any entry is accepted). On a live feed this is
	// the ingestion delay; on a historical replay it is legitimately huge —
	// the event clock lags reality by the age of the log.
	WatermarkLagSeconds float64 `json:"watermark_lag_seconds"`
	// ShardWatermarkLagSeconds is the same lag per shard (-1 for a shard
	// that has seen no entries); a shard far behind the rest has queue
	// backlog or a stalled drain.
	ShardWatermarkLagSeconds []float64         `json:"shard_watermark_lag_seconds,omitempty"`
	Durability               *DurabilityHealth `json:"durability,omitempty"`
}

// watermarkLagSeconds converts an event-time watermark to a lag against now
// (-1 for the zero watermark: no entries yet).
func watermarkLagSeconds(now time.Time, wm time.Time) float64 {
	if wm.IsZero() {
		return -1
	}
	return now.Sub(wm).Seconds()
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	st := s.eng.Stats()
	status := "ok"
	if s.closed.Load() {
		status = "draining"
	}
	now := time.Now()
	shardLags := make([]float64, 0, s.eng.NumShards())
	for _, wm := range s.eng.ShardWatermarks() {
		shardLags = append(shardLags, watermarkLagSeconds(now, wm))
	}
	h := HealthPayload{
		Status:          status,
		Version:         s.cfg.Version,
		UptimeSeconds:   time.Since(s.start).Seconds(),
		Shards:          s.eng.NumShards(),
		OpenSessions:    s.eng.OpenSessions(),
		QueueDepth:      int(s.qDepth.Value()),
		QueueCapacity:   len(s.queues) * s.cfg.QueueSize,
		EntriesIn:       st.In,
		EntriesOut:      st.Out,
		SessionsEmitted: st.SessionsEmitted,

		WatermarkLagSeconds:      watermarkLagSeconds(now, s.eng.Watermark()),
		ShardWatermarkLagSeconds: shardLags,
	}
	if s.jw != nil {
		h.Durability = &DurabilityHealth{
			DataDir:         s.cfg.DataDir,
			JournalLSN:      s.jw.LastLSN(),
			SnapshotLSN:     uint64(s.gSnapshotLSN.Value()),
			JournalSegments: s.jw.Segments(),
			ReplayedOnStart: s.replayed,
		}
		if s.store != nil {
			h.Durability.RetainBlocks, h.Durability.RetainBytes = s.store.Stats()
		}
	}
	writeJSON(w, http.StatusOK, h)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
