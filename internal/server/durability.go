// Durability: the daemon's crash-recovery layer. The design is the WAL +
// checkpoint + replay triad every production ingest stack converges on:
//
//   - every accepted entry is framed into a write-ahead journal
//     (internal/journal) before its request is acknowledged (enqueue
//     appends, handleIngest group-commits once per request);
//   - a periodic + on-drain snapshot serializes the engine (stream
//     snapshot/restore: merged stats, open sessions, dedup windows,
//     template aggregates, watermarks) at a known journal position and
//     truncates the journal behind it;
//   - startup restores the newest snapshot and replays the journal's tail
//     through the sharded engine, in journal order, before any HTTP traffic
//     is admitted.
//
// Consistency between a snapshot and its journal position is enforced by a
// short enqueue freeze: takeSnapshot blocks new enqueues (enqMu), waits for
// the pending count to drain to zero (every journaled frame applied), and
// only then records the LSN and captures state — serialization happens
// inside the freeze, file I/O outside the hot path's way. Shard routing is
// deterministic across processes (stream.ShardFor), so replayed entries and
// restored per-shard state land on the shards that produced them.
//
// Emit semantics across a crash are at-least-once: sessions closed after
// the last snapshot are re-emitted during replay.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"sqlclean/internal/colstore"
	"sqlclean/internal/journal"
	"sqlclean/internal/logmodel"
	"sqlclean/internal/pattern"
	"sqlclean/internal/stream"
)

// snapshotFile is the on-disk checkpoint: the engine state plus the journal
// position it covers and the next ingest sequence number.
type snapshotFile struct {
	Version int `json:"version"`
	// AppliedLSN: every journal frame with LSN <= AppliedLSN is reflected
	// in Engine; replay starts at AppliedLSN+1.
	AppliedLSN uint64 `json:"applied_lsn"`
	// NextSeq resumes the global arrival sequence.
	NextSeq int64                  `json:"next_seq"`
	Engine  stream.ShardedSnapshot `json:"engine"`
}

const (
	snapshotVersion = 1
	snapPrefix      = "snapshot-"
	snapSuffix      = ".json"
)

func snapshotName(lsn uint64) string {
	return fmt.Sprintf("%s%016x%s", snapPrefix, lsn, snapSuffix)
}

// openDurability restores the newest snapshot, replays the journal tail and
// opens the journal for appending. Called by New before drain goroutines
// start, so replay applies to the engine single-threaded, in journal order.
func (s *Server) openDurability() error {
	dir := s.cfg.DataDir
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("server: data dir: %w", err)
	}
	applied, err := s.restoreSnapshot(dir)
	if err != nil {
		return err
	}
	if applied > 0 {
		s.log.Info("restored snapshot",
			"component", "server", "data_dir", dir, "applied_lsn", applied,
			"open_sessions", s.eng.OpenSessions())
	}
	res, err := journal.Replay(dir, applied+1, func(_ uint64, payload []byte) error {
		e, err := journal.DecodeEntry(payload)
		if err != nil {
			// A decoded-but-corrupt frame passed its CRC, so this is a
			// version mismatch or a bug, not bit rot: stop rather than
			// misattribute entries.
			return err
		}
		if e.Seq >= s.seq.Load() {
			s.seq.Store(e.Seq + 1)
		}
		out, aerr := s.eng.AddShard(s.eng.ShardFor(e.User), e)
		if aerr != nil {
			// The original run rejected this entry too (ordering contract
			// or skew guard); count and continue like drain does.
			s.mReplayRej.Inc()
			return nil
		}
		s.replayed++
		s.mReplayed.Inc()
		s.emit(out)
		return nil
	})
	if err != nil {
		return fmt.Errorf("server: journal replay: %w", err)
	}
	if res.Frames > 0 || res.Torn {
		s.log.Info("journal replay complete",
			"component", "server", "frames", res.Frames, "entries_applied", s.replayed,
			"bytes", res.Bytes, "torn_tail", res.Torn, "last_lsn", res.LastLSN)
	}
	jw, err := journal.Open(journal.Options{
		Dir:          dir,
		SegmentBytes: s.cfg.SegmentBytes,
		Policy:       s.cfg.Fsync,
		Interval:     s.cfg.FsyncInterval,
		Metrics:      s.reg,
		Logger:       s.log,
	})
	if err != nil {
		return fmt.Errorf("server: open journal: %w", err)
	}
	s.jw = jw
	if s.cfg.Retain {
		retainDir := s.cfg.RetainDir
		if retainDir == "" {
			retainDir = filepath.Join(dir, "colstore")
		}
		st, err := colstore.Open(colstore.Options{
			Dir:      retainDir,
			MaxBytes: s.cfg.RetainMaxBytes,
			Metrics:  s.reg,
			Logger:   s.log,
		})
		if err != nil {
			return fmt.Errorf("server: open retention store: %w", err)
		}
		s.store = st
		blocks, bytes := st.Stats()
		s.log.Info("retention store open",
			"component", "server", "retain_dir", retainDir,
			"blocks", blocks, "bytes", bytes, "max_bytes", s.cfg.RetainMaxBytes)
	}
	return nil
}

// restoreSnapshot loads the newest readable snapshot into the engine and
// returns the journal position it covers (0 when starting empty).
func (s *Server) restoreSnapshot(dir string) (uint64, error) {
	names, err := listSnapshots(dir)
	if err != nil {
		return 0, err
	}
	// Newest first; fall back past unreadable files (e.g. a torn write that
	// never got renamed would not be listed, but be defensive anyway).
	for i := len(names) - 1; i >= 0; i-- {
		blob, err := os.ReadFile(filepath.Join(dir, names[i]))
		if err != nil {
			continue
		}
		var sf snapshotFile
		if err := json.Unmarshal(blob, &sf); err != nil || sf.Version != snapshotVersion {
			continue
		}
		if err := s.eng.Restore(sf.Engine); err != nil {
			// A shard-count mismatch is an operator error, not a reason to
			// silently drop months of state.
			return 0, fmt.Errorf("server: restore %s: %w", names[i], err)
		}
		s.seq.Store(sf.NextSeq)
		s.gSnapshotLSN.Set(int64(sf.AppliedLSN))
		// The restored file's mtime anchors snapshot age across restarts.
		if fi, err := os.Stat(filepath.Join(dir, names[i])); err == nil {
			s.lastSnapshotNS.Store(fi.ModTime().UnixNano())
		}
		return sf.AppliedLSN, nil
	}
	return 0, nil
}

// snapshotLoop checkpoints every Config.SnapshotInterval until Close.
func (s *Server) snapshotLoop() {
	defer s.snapWG.Done()
	t := time.NewTicker(s.cfg.SnapshotInterval)
	defer t.Stop()
	for {
		select {
		case <-s.snapStop:
			return
		case <-t.C:
			if err := s.takeSnapshot(30 * time.Second); err != nil {
				s.mSnapshotErrs.Inc()
				s.log.Error("periodic snapshot failed", "component", "server", "error", err)
			}
		}
	}
}

// takeSnapshot checkpoints the engine at a consistent journal position: it
// freezes enqueues, waits (bounded) for every journaled frame to be applied,
// serializes the engine state, releases the freeze, then writes the file and
// truncates the journal outside the freeze.
func (s *Server) takeSnapshot(quiesce time.Duration) error {
	if s.jw == nil {
		return nil
	}
	s.snapMu.Lock()
	defer s.snapMu.Unlock()

	s.enqMu.Lock()
	deadline := time.Now().Add(quiesce)
	for s.pending.Load() != 0 {
		if time.Now().After(deadline) {
			s.enqMu.Unlock()
			return errors.New("server: snapshot: queues did not quiesce (drain stalled?)")
		}
		time.Sleep(200 * time.Microsecond)
	}
	lsn := s.jw.LastLSN()
	nextSeq := s.seq.Load()
	snap := s.eng.Snapshot()
	s.enqMu.Unlock()

	return s.writeSnapshot(snapshotFile{
		Version:    snapshotVersion,
		AppliedLSN: lsn,
		NextSeq:    nextSeq,
		Engine:     snap,
	})
}

// finalSnapshot runs at the end of a graceful drain, when the engine is
// already quiescent by construction (queues closed, drains joined).
func (s *Server) finalSnapshot() error {
	if s.jw == nil {
		return nil
	}
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	return s.writeSnapshot(snapshotFile{
		Version:    snapshotVersion,
		AppliedLSN: s.jw.LastLSN(),
		NextSeq:    s.seq.Load(),
		Engine:     s.eng.Snapshot(),
	})
}

// writeSnapshot persists one checkpoint atomically (tmp + fsync + rename +
// dir fsync), prunes older snapshots and truncates the journal behind it.
func (s *Server) writeSnapshot(sf snapshotFile) error {
	blob, err := json.Marshal(sf)
	if err != nil {
		return fmt.Errorf("server: marshal snapshot: %w", err)
	}
	dir := s.cfg.DataDir
	final := filepath.Join(dir, snapshotName(sf.AppliedLSN))
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(blob); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := syncDir(dir); err != nil {
		return err
	}
	// Older snapshots and fully-covered journal segments are now garbage.
	if names, err := listSnapshots(dir); err == nil {
		for _, name := range names {
			if name != snapshotName(sf.AppliedLSN) {
				os.Remove(filepath.Join(dir, name))
			}
		}
	}
	// With retention on, every disposable segment is compacted into the
	// columnar store before the journal deletes it. A failed compaction
	// retains the failed segment and everything after it (truncation stops
	// short) — the entries stay in the WAL and the next snapshot retries.
	truncBelow := sf.AppliedLSN + 1
	if s.store != nil {
		classify := s.colstoreClassifier()
		for _, seg := range s.jw.SealedSegmentsBelow(truncBelow) {
			if _, cerr := s.store.CompactSegment(seg, classify); cerr != nil {
				s.log.Error("segment compaction failed, retaining journal segment",
					"component", "server", "segment", filepath.Base(seg), "error", cerr)
				truncBelow = segmentFirstLSN(seg)
				break
			}
		}
	}
	if truncBelow > 0 {
		if _, err := s.jw.TruncateBefore(truncBelow); err != nil {
			return fmt.Errorf("server: truncate journal: %w", err)
		}
	}
	s.mSnapshots.Inc()
	s.gSnapshotLSN.Set(int64(sf.AppliedLSN))
	s.lastSnapshotNS.Store(time.Now().UnixNano())
	s.log.Debug("snapshot written",
		"component", "server", "applied_lsn", sf.AppliedLSN, "bytes", len(blob))
	return nil
}

// closeDurability writes the final checkpoint and closes the journal; called
// at the end of a graceful drain.
func (s *Server) closeDurability() {
	if s.jw == nil {
		return
	}
	if err := s.finalSnapshot(); err != nil {
		s.mSnapshotErrs.Inc()
		s.log.Error("final snapshot failed", "component", "server", "error", err)
	}
	_ = s.jw.Close()
}

// segmentFirstLSN parses a segment file's first LSN out of its
// wal-<hex>.log name; 0 (truncate nothing) when the name is unparsable.
func segmentFirstLSN(path string) uint64 {
	name := strings.TrimSuffix(strings.TrimPrefix(filepath.Base(path), "wal-"), ".log")
	lsn, err := strconv.ParseUint(name, 16, 64)
	if err != nil {
		return 0
	}
	return lsn
}

// colstoreClassifier captures one consistent engine view for a compaction
// round: the live antipattern verdicts per template plus the SWS
// classification, keyed by engine fingerprint. Each distinct lexical
// template costs one parse of a representative statement — literals are
// masked the same way in both identities, so one representative suffices.
func (s *Server) colstoreClassifier() colstore.Classifier {
	kinds := s.eng.TemplateKinds()
	var sws map[uint64]bool
	if sk := s.eng.Sketches(); sk != nil {
		sws = sk.SWS.Classify(s.eng.Stats().Selects, pattern.DefaultSWSOptions())
	}
	parser := s.cfg.Stream.Parser
	return func(stmt string) colstore.Classification {
		pe := parser.ParseEntry(logmodel.Entry{Statement: stmt})
		if pe.Info == nil {
			return colstore.Classification{}
		}
		fp := pe.Info.Fingerprint
		c := colstore.Classification{EngineFP: fp, Verdicts: kinds[fp]}
		if sws[fp] {
			c.Verdicts = append(append([]string(nil), c.Verdicts...), "sws")
		}
		return c
	}
}

// listSnapshots returns snapshot file names sorted by LSN ascending.
func listSnapshots(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var names []string
	for _, ent := range ents {
		name := ent.Name()
		if ent.IsDir() || !strings.HasPrefix(name, snapPrefix) || !strings.HasSuffix(name, snapSuffix) {
			continue
		}
		if _, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, snapPrefix), snapSuffix), 16, 64); err != nil {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// syncDir fsyncs a directory so renames in it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
