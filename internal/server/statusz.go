// GET /statusz: a self-contained human status page — the one URL an operator
// opens first on a suspect node. Everything on it comes from state the daemon
// already tracks (the obs registry, the engine, the journal), assembled at
// request time; there is no background renderer to keep alive. ?format=text
// serves the same content as plain text for curl-only environments.
package server

import (
	"fmt"
	"html/template"
	"net/http"
	"strings"
	"time"

	"sqlclean/internal/obs"
)

// statuszShard is one row of the per-shard table.
type statuszShard struct {
	Shard      int
	QueueDepth int64
	// LagSeconds is wall-clock now minus the shard's event-time watermark;
	// -1 when the shard has seen no entries.
	LagSeconds float64
}

// statuszData is everything the page renders.
type statuszData struct {
	Version       string
	Status        string
	Uptime        time.Duration
	ProcessUptime time.Duration

	Shards        []statuszShard
	GlobalLag     float64
	OpenSessions  int
	QueueDepth    int64
	QueueCapacity int

	IngestRequests int64
	IngestAccepted int64
	IngestP50ms    float64
	IngestP95ms    float64
	IngestP99ms    float64

	HasJournal  bool
	JournalLSN  uint64
	SnapshotLSN int64
	Segments    int
	FsyncP50us  float64
	FsyncP99us  float64
	// Group-commit effectiveness: commits and fsyncs are counted
	// independently, so fsyncs ÷ accepted entries (and entries per fsync)
	// make the cross-request coalescing visible in production.
	Commits         int64
	Fsyncs          int64
	FsyncsPerEntry  float64       // journal_fsync_ns count ÷ ingest_accepted_total
	EntriesPerFsync float64       // mean of journal_group_commit_entries
	SnapshotAge     time.Duration // -1 encoded as HasSnapshot=false
	HasSnapshot     bool
	ReplayedOnBoot  int

	HasClusters   bool
	DistinctBoxes int64
	BoxesMax      int
	BoxesDropped  int64

	Goroutines int64
	HeapInuse  int64
	GCRuns     int64
	GCPauseP99 float64
}

func (s *Server) statuszData() statuszData {
	// Refresh the shared runtime collector so the Go process rows are current.
	s.reg.Runtime().Collect()
	snap := s.reg.Snapshot()

	d := statuszData{
		Version:       s.cfg.Version,
		Status:        "ok",
		Uptime:        time.Since(s.start).Round(time.Second),
		ProcessUptime: obs.Uptime().Round(time.Second),
		OpenSessions:  s.eng.OpenSessions(),
		QueueDepth:    s.qDepth.Value(),
		QueueCapacity: len(s.queues) * s.cfg.QueueSize,
	}
	if s.closed.Load() {
		d.Status = "draining"
	}
	now := time.Now()
	d.GlobalLag = watermarkLagSeconds(now, s.eng.Watermark())
	for i, wm := range s.eng.ShardWatermarks() {
		d.Shards = append(d.Shards, statuszShard{
			Shard:      i,
			QueueDepth: s.qDepthShard[i].Value(),
			LagSeconds: watermarkLagSeconds(now, wm),
		})
	}

	d.IngestRequests = snap.Counters["ingest_requests_total"]
	d.IngestAccepted = snap.Counters["ingest_accepted_total"]
	if lat, ok := snap.Histograms["http_ingest_latency_ns"]; ok {
		const ms = float64(time.Millisecond)
		d.IngestP50ms = lat.Quantile(0.50) / ms
		d.IngestP95ms = lat.Quantile(0.95) / ms
		d.IngestP99ms = lat.Quantile(0.99) / ms
	}

	if s.jw != nil {
		d.HasJournal = true
		d.JournalLSN = s.jw.LastLSN()
		d.Segments = s.jw.Segments()
		d.SnapshotLSN = s.gSnapshotLSN.Value()
		d.ReplayedOnBoot = s.replayed
		d.Commits = snap.Counters["journal_commits_total"]
		if fs, ok := snap.Histograms["journal_fsync_ns"]; ok && fs.Count > 0 {
			const us = float64(time.Microsecond)
			d.FsyncP50us = fs.Quantile(0.50) / us
			d.FsyncP99us = fs.Quantile(0.99) / us
			d.Fsyncs = fs.Count
			if d.IngestAccepted > 0 {
				d.FsyncsPerEntry = float64(fs.Count) / float64(d.IngestAccepted)
			}
		}
		if gc, ok := snap.Histograms["journal_group_commit_entries"]; ok && gc.Count > 0 {
			d.EntriesPerFsync = float64(gc.Sum) / float64(gc.Count)
		}
		if ns := s.lastSnapshotNS.Load(); ns > 0 {
			d.HasSnapshot = true
			d.SnapshotAge = now.Sub(time.Unix(0, ns)).Round(time.Second)
		}
	}

	if s.boxes != nil {
		d.HasClusters = true
		d.DistinctBoxes = s.gDistinctBoxes.Value()
		d.BoxesMax = s.boxes.maxBoxes
		d.BoxesDropped = s.mBoxesDropped.Value()
	}

	d.Goroutines = snap.Gauges["go_goroutines"].Value
	d.HeapInuse = snap.Gauges["go_heap_inuse_bytes"].Value
	d.GCRuns = snap.Counters["go_gc_runs_total"]
	if gp, ok := snap.Histograms["go_gc_pause_ns"]; ok && gp.Count > 0 {
		d.GCPauseP99 = gp.Quantile(0.99) / float64(time.Microsecond)
	}
	return d
}

var statuszTmpl = template.Must(template.New("statusz").Funcs(template.FuncMap{
	"lag": fmtLag,
	"f1":  func(v float64) string { return fmt.Sprintf("%.1f", v) },
	"f3":  func(v float64) string { return fmt.Sprintf("%.3f", v) },
	"mib": func(v int64) string { return fmt.Sprintf("%.1f MiB", float64(v)/(1<<20)) },
}).Parse(`<!DOCTYPE html>
<html><head><title>sqlcleand statusz</title><style>
body{font-family:sans-serif;margin:1.5em;color:#222}
h1{font-size:1.3em} h2{font-size:1.05em;margin-top:1.4em;border-bottom:1px solid #ccc}
table{border-collapse:collapse;margin:.4em 0} td,th{padding:.15em .8em;text-align:right;border-bottom:1px solid #eee}
th{background:#f5f5f5} .k{text-align:left} .warn{color:#b00}
</style></head><body>
<h1>sqlcleand — {{.Status}}</h1>
<table>
<tr><td class=k>version</td><td>{{.Version}}</td></tr>
<tr><td class=k>server uptime</td><td>{{.Uptime}}</td></tr>
<tr><td class=k>process uptime</td><td>{{.ProcessUptime}}</td></tr>
</table>
<h2>Ingest</h2>
<table>
<tr><td class=k>requests</td><td>{{.IngestRequests}}</td></tr>
<tr><td class=k>entries accepted</td><td>{{.IngestAccepted}}</td></tr>
<tr><td class=k>latency p50 / p95 / p99 (ms)</td><td>{{f1 .IngestP50ms}} / {{f1 .IngestP95ms}} / {{f1 .IngestP99ms}}</td></tr>
<tr><td class=k>queue depth / capacity</td><td>{{.QueueDepth}} / {{.QueueCapacity}}</td></tr>
<tr><td class=k>open sessions</td><td>{{.OpenSessions}}</td></tr>
<tr><td class=k>global watermark lag</td><td>{{lag .GlobalLag}}</td></tr>
</table>
<h2>Shards</h2>
<table><tr><th>shard</th><th>queue depth</th><th>watermark lag</th></tr>
{{range .Shards}}<tr><td>{{.Shard}}</td><td>{{.QueueDepth}}</td><td>{{lag .LagSeconds}}</td></tr>
{{end}}</table>
{{if .HasJournal}}<h2>Durability</h2>
<table>
<tr><td class=k>journal LSN</td><td>{{.JournalLSN}}</td></tr>
<tr><td class=k>snapshot LSN</td><td>{{.SnapshotLSN}}</td></tr>
<tr><td class=k>journal segments</td><td>{{.Segments}}</td></tr>
<tr><td class=k>fsync p50 / p99 (µs)</td><td>{{f1 .FsyncP50us}} / {{f1 .FsyncP99us}}</td></tr>
<tr><td class=k>commits / fsyncs</td><td>{{.Commits}} / {{.Fsyncs}}</td></tr>
<tr><td class=k>fsyncs per accepted entry</td><td>{{f3 .FsyncsPerEntry}}</td></tr>
<tr><td class=k>entries per group-commit fsync</td><td>{{f1 .EntriesPerFsync}}</td></tr>
<tr><td class=k>snapshot age</td><td>{{if .HasSnapshot}}{{.SnapshotAge}}{{else}}never{{end}}</td></tr>
<tr><td class=k>replayed on boot</td><td>{{.ReplayedOnBoot}}</td></tr>
</table>{{end}}
{{if .HasClusters}}<h2>Cluster registry</h2>
<table>
<tr><td class=k>distinct boxes</td><td>{{.DistinctBoxes}} / {{.BoxesMax}}</td></tr>
<tr><td class=k>boxes dropped</td><td>{{.BoxesDropped}}</td></tr>
</table>{{end}}
<h2>Go process</h2>
<table>
<tr><td class=k>goroutines</td><td>{{.Goroutines}}</td></tr>
<tr><td class=k>heap in use</td><td>{{mib .HeapInuse}}</td></tr>
<tr><td class=k>GC runs</td><td>{{.GCRuns}}</td></tr>
<tr><td class=k>GC pause p99 (µs)</td><td>{{f1 .GCPauseP99}}</td></tr>
</table>
<p><a href="/debug/requests">recent requests</a> · <a href="/debug/requests?view=slow">slowest requests</a> · <a href="/metrics">metrics</a> · <a href="/report">report</a> · <a href="/debug/pprof/">pprof</a></p>
</body></html>
`))

// fmtLag renders a watermark lag, mapping the -1 sentinel to "no traffic".
func fmtLag(v float64) string {
	if v < 0 {
		return "no traffic"
	}
	return (time.Duration(v * float64(time.Second))).Round(time.Millisecond).String()
}

func (s *Server) handleStatusz(w http.ResponseWriter, r *http.Request) {
	d := s.statuszData()
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		writeStatuszText(w, d)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if err := statuszTmpl.Execute(w, d); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// writeStatuszText renders the same data as aligned plain text.
func writeStatuszText(w http.ResponseWriter, d statuszData) {
	var b strings.Builder
	row := func(k string, format string, args ...any) {
		fmt.Fprintf(&b, "%-28s %s\n", k, fmt.Sprintf(format, args...))
	}
	fmt.Fprintf(&b, "sqlcleand status: %s\n\n", d.Status)
	row("version", "%s", d.Version)
	row("server uptime", "%s", d.Uptime)
	row("process uptime", "%s", d.ProcessUptime)
	b.WriteString("\ningest\n")
	row("  requests", "%d", d.IngestRequests)
	row("  entries accepted", "%d", d.IngestAccepted)
	row("  latency p50/p95/p99 ms", "%.1f / %.1f / %.1f", d.IngestP50ms, d.IngestP95ms, d.IngestP99ms)
	row("  queue depth/capacity", "%d / %d", d.QueueDepth, d.QueueCapacity)
	row("  open sessions", "%d", d.OpenSessions)
	row("  global watermark lag", "%s", fmtLag(d.GlobalLag))
	b.WriteString("\nshards (queue depth, watermark lag)\n")
	for _, sh := range d.Shards {
		row(fmt.Sprintf("  shard %03d", sh.Shard), "%d  %s", sh.QueueDepth, fmtLag(sh.LagSeconds))
	}
	if d.HasJournal {
		b.WriteString("\ndurability\n")
		row("  journal lsn", "%d", d.JournalLSN)
		row("  snapshot lsn", "%d", d.SnapshotLSN)
		row("  journal segments", "%d", d.Segments)
		row("  fsync p50/p99 us", "%.1f / %.1f", d.FsyncP50us, d.FsyncP99us)
		row("  commits / fsyncs", "%d / %d", d.Commits, d.Fsyncs)
		row("  fsyncs per accepted entry", "%.3f", d.FsyncsPerEntry)
		row("  entries per gc fsync", "%.1f", d.EntriesPerFsync)
		if d.HasSnapshot {
			row("  snapshot age", "%s", d.SnapshotAge)
		} else {
			row("  snapshot age", "never")
		}
		row("  replayed on boot", "%d", d.ReplayedOnBoot)
	}
	if d.HasClusters {
		b.WriteString("\ncluster registry\n")
		row("  distinct boxes", "%d / %d", d.DistinctBoxes, d.BoxesMax)
		row("  boxes dropped", "%d", d.BoxesDropped)
	}
	b.WriteString("\ngo process\n")
	row("  goroutines", "%d", d.Goroutines)
	row("  heap in use", "%.1f MiB", float64(d.HeapInuse)/(1<<20))
	row("  gc runs", "%d", d.GCRuns)
	row("  gc pause p99 us", "%.1f", d.GCPauseP99)
	_, _ = w.Write([]byte(b.String()))
}
