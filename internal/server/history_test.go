package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"sqlclean/internal/antipattern"
	"sqlclean/internal/colstore"
	"sqlclean/internal/logmodel"
)

// getStatus GETs a URL, decodes the JSON body into v (when non-nil) and
// returns the status code — for endpoints where non-200 is the point.
func getStatus(t *testing.T, url string, v any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("GET %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

// TestHistoryAfterRetention is the tentpole acceptance path: run the daemon
// with retention, feed a log whose dominant template accumulates a stifle
// verdict, shut down gracefully (final snapshot → compaction → journal
// truncation), and answer template trend queries from the columnar blocks
// after the originating journal segments are gone.
func TestHistoryAfterRetention(t *testing.T) {
	dir := t.TempDir()
	cfg := durableConfig(dir)
	cfg.Retain = true
	cfg.SegmentBytes = 2048 // many sealed segments → many blocks

	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	base := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	var log logmodel.Log
	// alice: a 150-query stifle run, one per minute — one long session whose
	// template earns a DWStifle verdict when it closes.
	for i := 0; i < 150; i++ {
		log = append(log, logmodel.Entry{
			Time: base.Add(time.Duration(i) * time.Minute), User: "alice",
			Statement: fmt.Sprintf("SELECT name FROM Employees WHERE id = %d", i),
		})
	}
	// bob: sparse singleton sessions (10 min apart > the 5 min gap), so his
	// template stays verdict-free.
	for i := 0; i < 15; i++ {
		log = append(log, logmodel.Entry{
			Time: base.Add(time.Duration(i) * 10 * time.Minute), User: "bob",
			Statement: fmt.Sprintf("SELECT age FROM Employees WHERE age = %d", i),
		})
	}
	log.SortStable()
	feedStrict(t, s, ts.URL, log)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Close(ctx); err != nil {
		t.Fatal(err)
	}

	// The final snapshot compacted every sealed segment; only the active one
	// survives in the journal.
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil || len(segs) != 1 {
		t.Fatalf("journal segments after retention close = %v (err=%v), want exactly the active one", segs, err)
	}
	var h HealthPayload
	getJSON(t, ts.URL+"/healthz", &h)
	if h.Durability == nil || h.Durability.RetainBlocks < 2 || h.Durability.RetainBytes <= 0 {
		t.Fatalf("healthz durability = %+v, want >=2 retention blocks", h.Durability)
	}

	// Ground truth from the store itself: the history total must equal the
	// compacted entry count, and those entries are no longer in the journal.
	var compacted int
	blocks, err := colstore.NewReader(filepath.Join(dir, "colstore")).Blocks()
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range blocks {
		compacted += b.Meta.Entries
	}
	if compacted == 0 {
		t.Fatal("nothing was compacted")
	}

	var p HistoryPayload
	if code := getStatus(t, ts.URL+"/history", &p); code != http.StatusOK {
		t.Fatalf("/history: status %d", code)
	}
	if p.Entries != compacted || len(p.Windows) == 0 {
		t.Fatalf("history entries = %d over %d windows, want %d compacted entries", p.Entries, len(p.Windows), compacted)
	}
	sum := 0
	for _, win := range p.Windows {
		sum += win.Count
	}
	if sum != p.Entries {
		t.Errorf("window counts sum to %d, entries = %d", sum, p.Entries)
	}
	if p.BlocksScanned != len(blocks) || p.BlocksPruned != 0 {
		t.Errorf("scanned %d pruned %d of %d blocks", p.BlocksScanned, p.BlocksPruned, len(blocks))
	}

	// The dominant template (alice's) by engine fingerprint: filtered trend
	// plus the verdict stamped at compaction time.
	var rp ReportPayload
	getJSON(t, ts.URL+"/report?top=1", &rp)
	if len(rp.Templates) != 1 || rp.Templates[0].Frequency != 150 {
		t.Fatalf("report top template: %+v", rp.Templates)
	}
	fp := rp.Templates[0].Fingerprint
	var pt HistoryPayload
	url := fmt.Sprintf("%s/history?template=%d&step=30m", ts.URL, fp)
	if code := getStatus(t, url, &pt); code != http.StatusOK {
		t.Fatalf("template history: status %d", code)
	}
	if pt.Entries == 0 || pt.Entries >= p.Entries {
		t.Fatalf("template-filtered entries = %d, want 0 < n < %d", pt.Entries, p.Entries)
	}
	found := false
	for _, v := range pt.Verdicts {
		if v == string(antipattern.DWStifle) {
			found = true
		}
	}
	if !found {
		t.Errorf("template verdicts = %v, want %s", pt.Verdicts, antipattern.DWStifle)
	}

	// Time-range pruning: a half-hour slice stays inside the range and below
	// the full count; a disjoint future range prunes every block.
	var pr HistoryPayload
	rangeURL := fmt.Sprintf("%s/history?from=%s&to=%s&step=10m", ts.URL,
		base.Format(time.RFC3339), base.Add(29*time.Minute).Format(time.RFC3339))
	if code := getStatus(t, rangeURL, &pr); code != http.StatusOK {
		t.Fatalf("range history: status %d", code)
	}
	if pr.Entries == 0 || pr.Entries >= p.Entries {
		t.Fatalf("range entries = %d, want 0 < n < %d", pr.Entries, p.Entries)
	}
	for _, win := range pr.Windows {
		if win.Start.Before(base) || win.Start.After(base.Add(29*time.Minute)) {
			t.Errorf("window %v outside requested range", win.Start)
		}
	}
	var pf HistoryPayload
	futureURL := ts.URL + "/history?from=2030-01-01T00:00:00Z&to=2030-01-02T00:00:00Z"
	if code := getStatus(t, futureURL, &pf); code != http.StatusOK {
		t.Fatalf("future range: status %d", code)
	}
	if pf.Entries != 0 || pf.BlocksScanned != 0 || pf.BlocksPruned != len(blocks) {
		t.Errorf("future range: %+v, want all %d blocks pruned", pf, len(blocks))
	}

	// Unknown template: empty result, not an error.
	var pu HistoryPayload
	if code := getStatus(t, ts.URL+"/history?template=123456789", &pu); code != http.StatusOK {
		t.Fatalf("unknown template: status %d", code)
	}
	if pu.Entries != 0 || len(pu.Windows) != 0 {
		t.Errorf("unknown template returned data: %+v", pu)
	}

	// Bad parameters are client errors.
	for _, q := range []string{
		"template=xyz",
		"from=yesterday",
		"to=tomorrow",
		"from=2026-01-02T00:00:00Z&to=2026-01-01T00:00:00Z",
		"step=abc",
		"step=-1h",
		"step=0s",
		"step=1ms", // full range / 1ms blows the window cap
	} {
		var e map[string]string
		if code := getStatus(t, ts.URL+"/history?"+q, &e); code != http.StatusBadRequest {
			t.Errorf("/history?%s: status %d, want 400 (%v)", q, code, e)
		} else if e["error"] == "" {
			t.Errorf("/history?%s: 400 without an error message", q)
		}
	}
}

// TestHistoryDisabled: without retention the endpoint is absent, not empty.
func TestHistoryDisabled(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var e map[string]string
	if code := getStatus(t, ts.URL+"/history", &e); code != http.StatusNotFound {
		t.Fatalf("/history without retention: status %d, want 404", code)
	}
	if !strings.Contains(e["error"], "retention") {
		t.Errorf("404 body: %v", e)
	}
}

// TestRetainRequiresDataDir: retention without a journal to compact is a
// configuration error, caught at startup.
func TestRetainRequiresDataDir(t *testing.T) {
	if _, err := New(Config{Retain: true}); err == nil || !strings.Contains(err.Error(), "data dir") {
		t.Fatalf("New(Retain, no DataDir): err = %v, want data-dir error", err)
	}
}

// TestTopParamValidation pins the 400 contract on ?top= for /report and
// /clusters: a malformed or non-positive value must not be silently replaced
// by the default.
func TestTopParamValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, u := range []string{
		"/report?top=abc", "/report?top=-5", "/report?top=0",
		"/clusters?top=abc", "/clusters?top=-5", "/clusters?top=0",
	} {
		var e map[string]string
		if code := getStatus(t, ts.URL+u, &e); code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", u, code)
		} else if !strings.Contains(e["error"], "top") {
			t.Errorf("%s: error %q does not name the parameter", u, e["error"])
		}
	}
	// Valid values still work.
	var rp ReportPayload
	if code := getStatus(t, ts.URL+"/report?top=3", &rp); code != http.StatusOK {
		t.Errorf("/report?top=3: status %d", code)
	}
	var cp ClustersPayload
	if code := getStatus(t, ts.URL+"/clusters?top=3", &cp); code != http.StatusOK {
		t.Errorf("/clusters?top=3: status %d", code)
	}
}

// TestExtraRulesHandler: with the optional rule set registered, leading-
// wildcard traffic is detected and reported; without it, the same traffic is
// clean. (The CLI flag -extra-rules wires exactly this configuration.)
func TestExtraRulesHandler(t *testing.T) {
	base := time.Date(2026, 2, 1, 12, 0, 0, 0, time.UTC)
	log := logmodel.Log{
		{Time: base, User: "u", Statement: "SELECT name FROM Employees WHERE name LIKE '%son%'"},
		{Time: base.Add(2 * time.Second), User: "u", Statement: "SELECT name FROM Employees WHERE name LIKE '%sen%'"},
	}
	run := func(extra bool) ReportPayload {
		cfg := Config{}
		if extra {
			cfg.Stream.Config.ExtraRules = antipattern.ExtraRules(cfg.Stream.Catalog)
		}
		s, ts := newTestServer(t, cfg)
		postIngest(t, ts.URL, ndjsonBody(log))
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Close(ctx); err != nil {
			t.Fatal(err)
		}
		var rp ReportPayload
		getJSON(t, ts.URL+"/report", &rp)
		return rp
	}
	count := func(rp ReportPayload) int {
		for _, a := range rp.Report.Antipatterns {
			if a.Kind == string(antipattern.LeadingWildcard) {
				return a.Instances
			}
		}
		return 0
	}
	if n := count(run(true)); n != 2 {
		t.Errorf("with extra rules: %d LeadingWildcard instances, want 2", n)
	}
	if n := count(run(false)); n != 0 {
		t.Errorf("without extra rules: %d LeadingWildcard instances, want 0", n)
	}
}
