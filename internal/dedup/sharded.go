// Sharded duplicate deletion: the parallel variant of Remove. The sliding
// window of §5.2 compares each entry only against the previous occurrence of
// the same (user, statement) pair, so the scan decomposes perfectly along
// key boundaries: partition entries by key hash, run one independent sliding
// window per partition, and merge the keep/drop decisions back in log order.
// The result is bit-identical to Remove for every input and threshold — only
// wall-clock time changes.
package dedup

import (
	"hash/maphash"
	"time"

	"sqlclean/internal/logmodel"
	"sqlclean/internal/parallel"
)

// shardCount partitions the key space. A power of two well above the worker
// counts we target keeps the per-shard maps small and lets the pool's chunk
// oversubscription balance skewed shards (one hot statement text lands in
// one shard, but 256 shards per ≤ 32 workers leaves plenty to steal).
const shardCount = 256

// shardedMinInput is the input size below which the three extra O(n) passes
// (hash, bucket, assemble) cost more than the map work they parallelize.
// A var so tests can force the sharded path on small inputs.
var shardedMinInput = 4096

// shardSeed makes shard selection consistent within a process. It only picks
// the shard a key lives in; equality inside a shard is exact, so hash
// collisions cost balance, never correctness.
var shardSeed = maphash.MakeSeed()

// RemoveSharded is Remove with the sliding window partitioned across up to
// `workers` goroutines (0 selects GOMAXPROCS, 1 forces the serial scan).
// Output, order and statistics are identical to Remove.
func RemoveSharded(l logmodel.Log, threshold time.Duration, workers int) (logmodel.Log, Result) {
	out, _, res := removeSharded(l, threshold, workers, false)
	return out, res
}

// RemoveShardedIndexed is RemoveSharded plus the kept-entry indices, the
// parallel counterpart of RemoveIndexed.
func RemoveShardedIndexed(l logmodel.Log, threshold time.Duration, workers int) (logmodel.Log, []int, Result) {
	return removeSharded(l, threshold, workers, true)
}

func removeSharded(l logmodel.Log, threshold time.Duration, workers int, wantIndices bool) (logmodel.Log, []int, Result) {
	w := parallel.Workers(workers)
	if w <= 1 || len(l) < shardedMinInput {
		return remove(l, threshold, wantIndices)
	}

	// Pass 1 (parallel): hash every (user, statement) key to its shard.
	shardOf := make([]uint8, len(l))
	parallel.Chunks(w, len(l), func(lo, hi int) {
		var h maphash.Hash
		for i := lo; i < hi; i++ {
			h.SetSeed(shardSeed)
			h.WriteString(l[i].User)
			h.WriteByte(0)
			h.WriteString(l[i].Statement)
			shardOf[i] = uint8(h.Sum64() & (shardCount - 1))
		}
	})

	// Pass 2 (serial, O(n)): bucket indices per shard with a counting sort.
	// The sort is stable, so each shard sees its entries in log order.
	var counts [shardCount]int
	for _, s := range shardOf {
		counts[s]++
	}
	var offs [shardCount + 1]int
	for s, c := range counts {
		offs[s+1] = offs[s] + c
	}
	byShard := make([]int32, len(l))
	next := offs
	for i, s := range shardOf {
		byShard[next[s]] = int32(i)
		next[s]++
	}

	// Pass 3 (parallel): one independent sliding window per shard. Shards
	// write disjoint drop[i] slots and their own removed counter, so no
	// synchronization is needed beyond the pool's completion barrier.
	drop := make([]bool, len(l))
	var removed [shardCount]int
	parallel.ShardRun(w, shardCount, func(s int) {
		idxs := byShard[offs[s]:offs[s+1]]
		if len(idxs) == 0 {
			return
		}
		last := make(map[dupKey]time.Time, len(idxs)/2+1)
		n := 0
		for _, i := range idxs {
			e := &l[i]
			k := dupKey{user: e.User, stmt: e.Statement}
			prev, seen := last[k]
			last[k] = e.Time
			if seen && (threshold == Unrestricted || e.Time.Sub(prev) <= threshold) {
				drop[i] = true
				n++
			}
		}
		removed[s] = n
	})

	// Pass 4 (serial): assemble the kept entries in log order.
	res := Result{Threshold: threshold}
	for _, n := range removed {
		res.Removed += n
	}
	out := make(logmodel.Log, 0, len(l)-res.Removed)
	var kept []int
	if wantIndices {
		kept = make([]int, 0, len(l)-res.Removed)
	}
	for i, e := range l {
		if drop[i] {
			continue
		}
		out = append(out, e)
		if wantIndices {
			kept = append(kept, i)
		}
	}
	return out, kept, res
}
