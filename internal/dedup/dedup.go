// Package dedup implements the first pipeline stage of the paper (§5.2):
// deleting duplicate queries. Two statements are duplicates when they are
// textually identical, come from the same user, and the time difference to
// the previous occurrence is at most a threshold. Duplicates are perceived
// as unintended errors (web-form reloads, application bugs), so the count of
// removals is part of the result statistics.
package dedup

import (
	"time"

	"sqlclean/internal/logmodel"
)

// Unrestricted makes every later identical statement of the same user a
// duplicate, regardless of elapsed time (the paper's "non restricted" row in
// Table 4).
const Unrestricted = time.Duration(-1)

// Result reports what the deduplication pass did.
type Result struct {
	// Removed is the number of entries dropped as duplicates.
	Removed int
	// Threshold echoes the threshold used.
	Threshold time.Duration
}

type dupKey struct {
	user string
	stmt string
}

// Remove returns a copy of the log without duplicates, using a sliding
// window: each occurrence is compared against the previous occurrence of the
// same (user, statement) pair, kept or dropped, and then becomes the new
// reference point. A chain of reloads 0.8 s apart is therefore fully removed
// by a 1 s threshold. The input must be sorted by (Time, Seq); the output
// preserves order.
func Remove(l logmodel.Log, threshold time.Duration) (logmodel.Log, Result) {
	out, _, res := remove(l, threshold, false)
	return out, res
}

// RemoveIndexed is Remove plus the indices (into the input) of the kept
// entries, so callers can carry parallel per-entry annotations — e.g. a
// parsed log — through deduplication without recomputing them.
func RemoveIndexed(l logmodel.Log, threshold time.Duration) (logmodel.Log, []int, Result) {
	return remove(l, threshold, true)
}

func remove(l logmodel.Log, threshold time.Duration, wantIndices bool) (logmodel.Log, []int, Result) {
	last := make(map[dupKey]time.Time, len(l)/2+1)
	out := make(logmodel.Log, 0, len(l))
	var kept []int
	if wantIndices {
		kept = make([]int, 0, len(l))
	}
	res := Result{Threshold: threshold}
	for i, e := range l {
		k := dupKey{user: e.User, stmt: e.Statement}
		prev, seen := last[k]
		last[k] = e.Time
		if seen && (threshold == Unrestricted || e.Time.Sub(prev) <= threshold) {
			res.Removed++
			continue
		}
		out = append(out, e)
		if wantIndices {
			kept = append(kept, i)
		}
	}
	return out, kept, res
}
