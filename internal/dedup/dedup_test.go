package dedup

import (
	"testing"
	"time"

	"sqlclean/internal/logmodel"
)

func mk(user, stmt string, at time.Duration) logmodel.Entry {
	base := time.Date(2003, 6, 1, 0, 0, 0, 0, time.UTC)
	return logmodel.Entry{User: user, Statement: stmt, Time: base.Add(at)}
}

func TestRemovesWithinThreshold(t *testing.T) {
	l := logmodel.Log{
		mk("u", "SELECT 1", 0),
		mk("u", "SELECT 1", 500*time.Millisecond),
		mk("u", "SELECT 1", 5*time.Second),
	}
	out, res := Remove(l, time.Second)
	if len(out) != 2 || res.Removed != 1 {
		t.Fatalf("out=%d removed=%d", len(out), res.Removed)
	}
}

func TestSlidingWindowChain(t *testing.T) {
	// Reloads 0.8 s apart: each compares against the previous occurrence,
	// so the whole chain collapses at a 1 s threshold.
	l := logmodel.Log{
		mk("u", "Q", 0),
		mk("u", "Q", 800*time.Millisecond),
		mk("u", "Q", 1600*time.Millisecond),
		mk("u", "Q", 2400*time.Millisecond),
	}
	out, res := Remove(l, time.Second)
	if len(out) != 1 || res.Removed != 3 {
		t.Fatalf("out=%d removed=%d", len(out), res.Removed)
	}
}

func TestDifferentUsersAreIndependent(t *testing.T) {
	l := logmodel.Log{
		mk("u1", "Q", 0),
		mk("u2", "Q", 100*time.Millisecond),
	}
	out, res := Remove(l, time.Second)
	if len(out) != 2 || res.Removed != 0 {
		t.Fatalf("different users deduped: out=%d", len(out))
	}
}

func TestDifferentStatementsSurvive(t *testing.T) {
	l := logmodel.Log{
		mk("u", "SELECT 1", 0),
		mk("u", "SELECT 2", 0),
	}
	out, _ := Remove(l, time.Second)
	if len(out) != 2 {
		t.Fatalf("out=%d", len(out))
	}
}

func TestUnrestricted(t *testing.T) {
	l := logmodel.Log{
		mk("u", "Q", 0),
		mk("u", "Q", 24*time.Hour),
		mk("u", "Q", 48*time.Hour),
	}
	out, res := Remove(l, Unrestricted)
	if len(out) != 1 || res.Removed != 2 {
		t.Fatalf("out=%d removed=%d", len(out), res.Removed)
	}
	if res.Threshold != Unrestricted {
		t.Error("threshold not echoed")
	}
}

func TestExactThresholdBoundaryIsDuplicate(t *testing.T) {
	l := logmodel.Log{
		mk("u", "Q", 0),
		mk("u", "Q", time.Second), // exactly the threshold
	}
	out, _ := Remove(l, time.Second)
	if len(out) != 1 {
		t.Fatalf("boundary not removed: out=%d", len(out))
	}
}

func TestThresholdMonotonicity(t *testing.T) {
	// Bigger thresholds can only remove more.
	var l logmodel.Log
	for i := 0; i < 50; i++ {
		l = append(l, mk("u", "Q", time.Duration(i)*700*time.Millisecond))
		l = append(l, mk("u", "R", time.Duration(i)*3*time.Second))
	}
	prev := -1
	for _, th := range []time.Duration{0, time.Second, 2 * time.Second, 10 * time.Second, Unrestricted} {
		_, res := Remove(l, th)
		if res.Removed < prev {
			t.Fatalf("threshold %v removed %d < previous %d", th, res.Removed, prev)
		}
		prev = res.Removed
	}
}

func TestOrderPreserved(t *testing.T) {
	l := logmodel.Log{
		mk("u", "A", 0),
		mk("u", "B", time.Second),
		mk("u", "A", 2*time.Second),
		mk("u", "C", 3*time.Second),
	}
	out, _ := Remove(l, 10*time.Second)
	want := []string{"A", "B", "C"}
	if len(out) != 3 {
		t.Fatalf("out=%v", out)
	}
	for i := range want {
		if out[i].Statement != want[i] {
			t.Errorf("pos %d: %q want %q", i, out[i].Statement, want[i])
		}
	}
}

func TestEmptyLog(t *testing.T) {
	out, res := Remove(nil, time.Second)
	if len(out) != 0 || res.Removed != 0 {
		t.Fatal("empty log mishandled")
	}
}

func TestRemoveIndexed(t *testing.T) {
	l := logmodel.Log{
		mk("u", "A", 0),
		mk("u", "A", time.Second/2), // duplicate of index 0
		mk("u", "B", time.Second),
		mk("v", "A", 2*time.Second), // other user: kept
		mk("u", "B", 10*time.Second), // outside window: kept
	}
	out, kept, res := RemoveIndexed(l, time.Second)
	wantKept := []int{0, 2, 3, 4}
	if res.Removed != 1 {
		t.Fatalf("removed = %d, want 1", res.Removed)
	}
	if len(kept) != len(wantKept) {
		t.Fatalf("kept = %v, want %v", kept, wantKept)
	}
	for i, idx := range wantKept {
		if kept[i] != idx {
			t.Fatalf("kept = %v, want %v", kept, wantKept)
		}
		if out[i] != l[idx] {
			t.Fatalf("out[%d] = %+v, want input index %d", i, out[i], idx)
		}
	}
	// RemoveIndexed and Remove agree entry for entry.
	plain, pres := Remove(l, time.Second)
	if pres != res {
		t.Fatalf("results differ: %+v vs %+v", pres, res)
	}
	for i := range plain {
		if plain[i] != out[i] {
			t.Fatalf("entry %d differs between Remove and RemoveIndexed", i)
		}
	}
}
