package dedup

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"sqlclean/internal/logmodel"
	"sqlclean/internal/workload"
)

// forceSharded lowers the serial-fallback floor so small test logs still
// exercise the sharded path, restoring it on cleanup.
func forceSharded(t *testing.T) {
	t.Helper()
	old := shardedMinInput
	shardedMinInput = 0
	t.Cleanup(func() { shardedMinInput = old })
}

func logsEqual(t *testing.T, a, b logmodel.Log) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("entry %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestRemoveShardedMatchesRemove pins the headline equivalence on the real
// synthetic workload across worker counts and thresholds, including the
// unrestricted window.
func TestRemoveShardedMatchesRemove(t *testing.T) {
	log, _ := workload.Generate(workload.DefaultConfig().Scale(0.4))
	log.SortStable()
	for _, threshold := range []time.Duration{time.Second, 10 * time.Second, Unrestricted} {
		serial, kept, res := RemoveIndexed(log, threshold)
		for _, w := range []int{2, 4, 8} {
			got, gotKept, gotRes := RemoveShardedIndexed(log, threshold, w)
			if gotRes != res {
				t.Fatalf("threshold %v workers %d: result %+v vs %+v", threshold, w, gotRes, res)
			}
			logsEqual(t, got, serial)
			if len(gotKept) != len(kept) {
				t.Fatalf("kept length: %d vs %d", len(gotKept), len(kept))
			}
			for i := range kept {
				if gotKept[i] != kept[i] {
					t.Fatalf("kept[%d]: %d vs %d", i, gotKept[i], kept[i])
				}
			}
		}
	}
}

// TestRemoveThresholdBoundary pins the window edge: a repeat exactly at the
// threshold is a duplicate (the definition is ≤), one nanosecond past it is
// not — for both the serial and the sharded scan.
func TestRemoveThresholdBoundary(t *testing.T) {
	forceSharded(t)
	base := time.Date(2003, 6, 1, 0, 0, 0, 0, time.UTC)
	const threshold = time.Second
	// The reference point slides on every occurrence, kept or dropped, so
	// each diff below is against the immediately preceding same-key entry.
	log := logmodel.Log{
		{Seq: 0, Time: base, User: "u", Statement: "SELECT 1"},
		{Seq: 1, Time: base.Add(threshold), User: "u", Statement: "SELECT 1"},                          // diff exactly threshold: duplicate
		{Seq: 2, Time: base.Add(2*threshold + time.Nanosecond), User: "u", Statement: "SELECT 1"},      // diff threshold+1ns: kept
		{Seq: 3, Time: base.Add(3*threshold + time.Nanosecond), User: "u", Statement: "SELECT 1"},      // diff exactly threshold again: duplicate
		{Seq: 4, Time: base.Add(3*threshold + 2*time.Nanosecond), User: "v", Statement: "SELECT 1"},    // other user: never a duplicate
		{Seq: 5, Time: base.Add(4*threshold + 3*time.Nanosecond), User: "u", Statement: "SELECT 1"},    // diff threshold+2ns: kept
	}
	wantKept := []int64{0, 2, 4, 5}

	check := func(name string, out logmodel.Log, res Result) {
		t.Helper()
		if res.Removed != 2 {
			t.Fatalf("%s: removed %d, want 2", name, res.Removed)
		}
		if len(out) != len(wantKept) {
			t.Fatalf("%s: kept %d entries, want %d", name, len(out), len(wantKept))
		}
		for i, e := range out {
			if e.Seq != wantKept[i] {
				t.Fatalf("%s: kept[%d] = seq %d, want %d", name, i, e.Seq, wantKept[i])
			}
		}
	}
	out, res := Remove(log, threshold)
	check("serial", out, res)
	out, res = RemoveSharded(log, threshold, 4)
	check("sharded", out, res)
}

// TestRemoveShardedProperty is the randomized equivalence property: over
// 1000 seeded random logs — few users and statements, clustered timestamps,
// so duplicate chains and window edges occur constantly — the sharded scan
// must agree with the serial one on every output, index and count.
func TestRemoveShardedProperty(t *testing.T) {
	forceSharded(t)
	thresholds := []time.Duration{time.Second, 5 * time.Second, Unrestricted}
	base := time.Date(2003, 6, 1, 0, 0, 0, 0, time.UTC)
	for seed := int64(0); seed < 1000; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(100)
		log := make(logmodel.Log, n)
		tm := base
		for i := range log {
			// Steps cluster around the 1 s threshold, hitting exactly-at-
			// window spacings (0, 500ms, 1s, ...) often.
			tm = tm.Add(time.Duration(rng.Intn(5)) * 500 * time.Millisecond)
			log[i] = logmodel.Entry{
				Seq:       int64(i),
				Time:      tm,
				User:      fmt.Sprintf("u%d", rng.Intn(4)),
				Statement: fmt.Sprintf("SELECT %d", rng.Intn(6)),
			}
		}
		threshold := thresholds[rng.Intn(len(thresholds))]
		workers := 2 + rng.Intn(7)
		serial, kept, res := RemoveIndexed(log, threshold)
		got, gotKept, gotRes := RemoveShardedIndexed(log, threshold, workers)
		if gotRes != res {
			t.Fatalf("seed %d: result %+v vs %+v", seed, gotRes, res)
		}
		if len(got) != len(serial) {
			t.Fatalf("seed %d: length %d vs %d", seed, len(got), len(serial))
		}
		for i := range serial {
			if got[i] != serial[i] || gotKept[i] != kept[i] {
				t.Fatalf("seed %d: entry %d differs: %+v/%d vs %+v/%d",
					seed, i, got[i], gotKept[i], serial[i], kept[i])
			}
		}
	}
}
