// Package parallel provides the small concurrency primitives the pipeline's
// embarrassingly parallel stages are built on: a worker-count resolver and a
// bounded worker pool exposed as an ordered Map plus a chunked range runner.
//
// The primitives are deliberately deterministic: Map writes each result into
// its input's slot, and Chunks hands out disjoint contiguous index ranges, so
// output order never depends on goroutine scheduling. Callers that merge
// per-chunk aggregates are responsible for doing so in a scheduling-
// independent way (e.g. commutative counters, or collecting per-index and
// reducing serially).
//
// Observability: the Span variants attach one child span per worker
// goroutine (busy time, chunks, items — the utilization view of a fan-out),
// and Instrument wires process-wide pool counters into an obs.Registry.
// Both are nil fast paths: with no span and no registry the hot loop is
// exactly the uninstrumented code.
package parallel

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"sqlclean/internal/obs"
)

// Workers resolves a worker-count knob: n > 0 is used as given; zero or
// negative selects runtime.GOMAXPROCS(0), i.e. "all the CPUs the runtime
// will schedule on".
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// minParallel is the input size below which fan-out overhead outweighs any
// win and the primitives fall back to the calling goroutine.
const minParallel = 64

// chunksPerWorker oversubscribes the chunk count so that skewed per-item
// cost (one session with thousands of queries, one statement that is very
// slow to parse) still load-balances: a worker that drew a cheap chunk grabs
// the next one instead of idling.
const chunksPerWorker = 8

// poolMetrics are the process-wide pool counters, published by Instrument.
type poolMetrics struct {
	fanouts *obs.Counter // parallel sections entered
	chunks  *obs.Counter // chunks executed
	items   *obs.Counter // items covered by executed chunks
	busyNS  *obs.Counter // summed worker busy time
	active  *obs.Gauge   // workers currently running (Max = peak)
}

// metrics is nil until Instrument attaches a registry; the pool loads it
// once per fan-out, so uninstrumented runs pay one atomic load per Chunks
// call and nothing per chunk.
var metrics atomic.Pointer[poolMetrics]

// Instrument publishes worker-pool utilization metrics into the registry:
// parallel_fanouts_total, parallel_chunks_total, parallel_items_total,
// parallel_busy_ns_total and the parallel_workers_active gauge (whose Max
// is the peak concurrency). A nil registry detaches.
func Instrument(reg *obs.Registry) {
	if reg == nil {
		metrics.Store(nil)
		return
	}
	metrics.Store(&poolMetrics{
		fanouts: reg.Counter("parallel_fanouts_total"),
		chunks:  reg.Counter("parallel_chunks_total"),
		items:   reg.Counter("parallel_items_total"),
		busyNS:  reg.Counter("parallel_busy_ns_total"),
		active:  reg.Gauge("parallel_workers_active"),
	})
}

// Map applies fn to every element of in using up to `workers` goroutines and
// returns the results in input order. fn receives the element's index and
// value; it must be safe for concurrent use. With workers <= 1 (or a small
// input) everything runs on the calling goroutine, which keeps the serial
// path allocation- and goroutine-free.
func Map[T, R any](workers int, in []T, fn func(int, T) R) []R {
	return MapSpan(nil, workers, in, fn)
}

// MapSpan is Map with per-worker child spans attached to sp (nil sp skips
// all tracing).
func MapSpan[T, R any](sp *obs.Span, workers int, in []T, fn func(int, T) R) []R {
	out := make([]R, len(in))
	ChunksSpan(sp, workers, len(in), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = fn(i, in[i])
		}
	})
	return out
}

// Chunks partitions [0, n) into contiguous chunks and invokes fn(lo, hi)
// for each, using up to `workers` goroutines. Chunks are disjoint and cover
// the range exactly once; fn must be safe for concurrent use. The call
// returns after every chunk completed. With workers <= 1 or n < minParallel
// a single fn(0, n) call runs on the calling goroutine.
func Chunks(workers, n int, fn func(lo, hi int)) {
	ChunksSpan(nil, workers, n, fn)
}

// ShardRun invokes fn(s) once for every shard index in [0, n) using up to
// `workers` goroutines. It is Chunks without the small-input serial floor:
// shard counts are small (tens to hundreds) but each shard carries a heavy,
// independent unit of work — a per-shard dedup window, a stream partition —
// so fanning out pays even for n far below minParallel. Shards are handed
// out one at a time, which is also the load-balancing: a worker that drew a
// light shard immediately grabs the next. fn must be safe for concurrent
// use. With workers <= 1 or n <= 1 everything runs on the calling goroutine.
func ShardRun(workers, n int, fn func(s int)) {
	if n <= 0 {
		return
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	if w <= 1 {
		for s := 0; s < n; s++ {
			fn(s)
		}
		return
	}
	m := metrics.Load()
	if m != nil {
		m.fanouts.Inc()
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			if m != nil {
				m.active.Add(1)
				defer m.active.Add(-1)
			}
			var chunks int64
			for {
				s := int(next.Add(1)) - 1
				if s >= n {
					break
				}
				fn(s)
				chunks++
			}
			if m != nil {
				m.chunks.Add(chunks)
				m.items.Add(chunks)
			}
		}()
	}
	wg.Wait()
}

// ChunksSpan is Chunks with observability: when sp is non-nil and the
// parallel path is taken, each worker goroutine records a child span
// ("worker00", ...) carrying its busy time, chunk count and item count —
// idle workers show up as zero-chunk spans. When Instrument attached a
// registry, the process-wide pool counters are updated as well.
func ChunksSpan(sp *obs.Span, workers, n int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	if w <= 1 || n < minParallel {
		fn(0, n)
		return
	}

	chunk := n / (w * chunksPerWorker)
	if chunk < 1 {
		chunk = 1
	}
	m := metrics.Load()
	if m != nil {
		m.fanouts.Inc()
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		var ws *obs.Span
		if sp != nil {
			ws = sp.StartChild(fmt.Sprintf("worker%02d", g))
		}
		go func(ws *obs.Span) {
			defer wg.Done()
			if m != nil {
				m.active.Add(1)
				defer m.active.Add(-1)
			}
			var busy time.Duration
			var chunks, items int64
			observed := m != nil || ws != nil
			for {
				lo := int(next.Add(int64(chunk))) - chunk
				if lo >= n {
					break
				}
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				if observed {
					t0 := time.Now()
					fn(lo, hi)
					busy += time.Since(t0)
					chunks++
					items += int64(hi - lo)
				} else {
					fn(lo, hi)
				}
			}
			if m != nil {
				m.chunks.Add(chunks)
				m.items.Add(items)
				m.busyNS.Add(int64(busy))
			}
			if ws != nil {
				ws.AddInt("busy_ns", int64(busy))
				ws.AddInt("chunks", chunks)
				ws.AddInt("items", items)
				ws.End()
			}
		}(ws)
	}
	wg.Wait()
}
