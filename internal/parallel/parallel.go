// Package parallel provides the small concurrency primitives the pipeline's
// embarrassingly parallel stages are built on: a worker-count resolver and a
// bounded worker pool exposed as an ordered Map plus a chunked range runner.
//
// The primitives are deliberately deterministic: Map writes each result into
// its input's slot, and Chunks hands out disjoint contiguous index ranges, so
// output order never depends on goroutine scheduling. Callers that merge
// per-chunk aggregates are responsible for doing so in a scheduling-
// independent way (e.g. commutative counters, or collecting per-index and
// reducing serially).
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a worker-count knob: n > 0 is used as given; zero or
// negative selects runtime.GOMAXPROCS(0), i.e. "all the CPUs the runtime
// will schedule on".
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// minParallel is the input size below which fan-out overhead outweighs any
// win and the primitives fall back to the calling goroutine.
const minParallel = 64

// chunksPerWorker oversubscribes the chunk count so that skewed per-item
// cost (one session with thousands of queries, one statement that is very
// slow to parse) still load-balances: a worker that drew a cheap chunk grabs
// the next one instead of idling.
const chunksPerWorker = 8

// Map applies fn to every element of in using up to `workers` goroutines and
// returns the results in input order. fn receives the element's index and
// value; it must be safe for concurrent use. With workers <= 1 (or a small
// input) everything runs on the calling goroutine, which keeps the serial
// path allocation- and goroutine-free.
func Map[T, R any](workers int, in []T, fn func(int, T) R) []R {
	out := make([]R, len(in))
	Chunks(workers, len(in), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = fn(i, in[i])
		}
	})
	return out
}

// Chunks partitions [0, n) into contiguous chunks and invokes fn(lo, hi)
// for each, using up to `workers` goroutines. Chunks are disjoint and cover
// the range exactly once; fn must be safe for concurrent use. The call
// returns after every chunk completed. With workers <= 1 or n < minParallel
// a single fn(0, n) call runs on the calling goroutine.
func Chunks(workers, n int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	if w <= 1 || n < minParallel {
		fn(0, n)
		return
	}

	chunk := n / (w * chunksPerWorker)
	if chunk < 1 {
		chunk = 1
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				lo := int(next.Add(int64(chunk))) - chunk
				if lo >= n {
					return
				}
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				fn(lo, hi)
			}
		}()
	}
	wg.Wait()
}
