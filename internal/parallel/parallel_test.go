package parallel

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if got := Workers(4); got != 4 {
		t.Fatalf("Workers(4) = %d", got)
	}
	if got := Workers(1); got != 1 {
		t.Fatalf("Workers(1) = %d", got)
	}
	want := runtime.GOMAXPROCS(0)
	if got := Workers(0); got != want {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS %d", got, want)
	}
	if got := Workers(-3); got != want {
		t.Fatalf("Workers(-3) = %d, want GOMAXPROCS %d", got, want)
	}
}

func TestMapOrdered(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 16} {
		for _, n := range []int{0, 1, minParallel - 1, minParallel, 1000} {
			in := make([]int, n)
			for i := range in {
				in[i] = i
			}
			out := Map(workers, in, func(i, v int) int { return v * v })
			if len(out) != n {
				t.Fatalf("workers=%d n=%d: len(out) = %d", workers, n, len(out))
			}
			for i, v := range out {
				if v != i*i {
					t.Fatalf("workers=%d n=%d: out[%d] = %d, want %d", workers, n, i, v, i*i)
				}
			}
		}
	}
}

func TestChunksCoverExactlyOnce(t *testing.T) {
	for _, workers := range []int{1, 3, 8} {
		for _, n := range []int{0, 1, 63, 64, 65, 4096} {
			hits := make([]atomic.Int32, n)
			Chunks(workers, n, func(lo, hi int) {
				if lo < 0 || hi > n || lo >= hi {
					t.Errorf("bad chunk [%d,%d) for n=%d", lo, hi, n)
					return
				}
				for i := lo; i < hi; i++ {
					hits[i].Add(1)
				}
			})
			for i := range hits {
				if c := hits[i].Load(); c != 1 {
					t.Fatalf("workers=%d n=%d: index %d covered %d times", workers, n, i, c)
				}
			}
		}
	}
}

func TestChunksNegativeN(t *testing.T) {
	called := false
	Chunks(4, -1, func(lo, hi int) { called = true })
	if called {
		t.Fatal("fn called for negative n")
	}
}
