package experiments

import (
	"fmt"
	"sort"
	"time"

	"sqlclean/internal/antipattern"
	"sqlclean/internal/core"
	"sqlclean/internal/logmodel"
	"sqlclean/internal/overlap"
	"sqlclean/internal/parsedlog"
	"sqlclean/internal/pattern"
	"sqlclean/internal/skeleton"
	"sqlclean/internal/sqlast"
)

// runFig2a prints the frequency-by-rank series of the most popular patterns
// before and after cleaning, with antipatterns marked.
func runFig2a(e *env) {
	res := e.result()
	anti := res.AntipatternTemplates()

	fmt.Fprintln(e.w, "Before cleaning (rank, frequency, antipattern?):")
	for i, t := range res.Templates {
		if i >= 30 {
			break
		}
		mark := "pattern"
		if anti[t.Fingerprint] {
			mark = "ANTIPATTERN"
		}
		fmt.Fprintf(e.w, "  %2d %8d %s\n", i+1, t.Frequency, mark)
	}

	parsed, _ := parsedlog.Parse(res.Clean)
	after := pattern.Templates(parsed)
	fmt.Fprintln(e.w, "After cleaning (rank, frequency):")
	for i, t := range after {
		if i >= 30 {
			break
		}
		fmt.Fprintf(e.w, "  %2d %8d\n", i+1, t.Frequency)
	}
	nAntiTop15 := 0
	for i, t := range res.Templates {
		if i >= 15 {
			break
		}
		if anti[t.Fingerprint] {
			nAntiTop15++
		}
	}
	fmt.Fprintf(e.w, "antipatterns among the top-15 patterns before cleaning: %d\n", nAntiTop15)
}

// runFig2b prints frequency vs user popularity for the top patterns.
func runFig2b(e *env) {
	res := e.result()
	fmt.Fprintf(e.w, "%-4s %-9s %-9s\n", "rank", "frequency", "userPop")
	for i, t := range res.Templates {
		if i >= 50 {
			break
		}
		fmt.Fprintf(e.w, "%-4d %-9d %-9d\n", i+1, t.Frequency, t.UserPopularity)
	}
	lowPop := 0
	limit := 40
	if len(res.Templates) < limit {
		limit = len(res.Templates)
	}
	for _, t := range res.Templates[:limit] {
		if t.UserPopularity == 1 {
			lowPop++
		}
	}
	fmt.Fprintf(e.w, "patterns among the top %d run by a single user: %d\n", limit, lowPop)
}

// runFig2c compares pattern frequencies computed with full user/session
// information against the minimal input (timestamps only, §6.8).
func runFig2c(e *env) {
	res := e.result()
	stripped := e.log.StripUsers()
	res2, err := core.Run(stripped, core.Config{})
	if err != nil {
		fatalIn(e, err)
	}
	anti := res.AntipatternTemplates()
	anti2 := res2.AntipatternTemplates()

	bySkel := map[string]int{}
	for _, t := range res2.Templates {
		bySkel[t.Skeleton] = t.Frequency
	}
	fmt.Fprintf(e.w, "%-4s %-11s %-11s %-6s %-6s\n", "rank", "freq w/ FI", "freq w/o FI", "AP w/", "AP w/o")
	for i, t := range res.Templates {
		if i >= 10 {
			break
		}
		m1, m2 := "no", "no"
		if anti[t.Fingerprint] {
			m1 = "yes"
		}
		for _, t2 := range res2.Templates {
			if t2.Skeleton == t.Skeleton && anti2[t2.Fingerprint] {
				m2 = "yes"
			}
		}
		fmt.Fprintf(e.w, "%-4d %-11d %-11d %-6s %-6s\n", i+1, t.Frequency, bySkel[t.Skeleton], m1, m2)
	}
	fmt.Fprintf(e.w, "clean-log size: with info %d, without info %d (diff %.2f%%)\n",
		len(res.Clean), len(res2.Clean),
		100*float64(len(res.Clean)-len(res2.Clean))/float64(len(res.Clean)))
}

// runFig2d aggregates CTH candidates by identity and splits them into true
// and false CTHs using the generator ground truth (the paper used manual
// inspection, §6.6).
func runFig2d(e *env) {
	res := e.result()
	type row struct {
		identity string
		queries  int
		users    map[string]bool
		trueCnt  int
		inst     int
	}
	rows := map[string]*row{}
	for _, in := range res.Instances {
		if in.Kind != antipattern.CTH {
			continue
		}
		r, ok := rows[in.Identity]
		if !ok {
			r = &row{identity: in.Identity, users: map[string]bool{}}
			rows[in.Identity] = r
		}
		r.queries += len(in.Indices)
		r.users[in.User] = true
		r.inst++
		if cthIsTrue(e, in) {
			r.trueCnt++
		}
	}
	var list []*row
	for _, r := range rows {
		list = append(list, r)
	}
	sort.Slice(list, func(i, j int) bool {
		if list[i].queries != list[j].queries {
			return list[i].queries > list[j].queries
		}
		return list[i].identity < list[j].identity
	})
	fmt.Fprintf(e.w, "%-4s %-9s %-8s %-6s %s\n", "rank", "frequency", "userPop", "real?", "identity")
	for i, r := range list {
		real := "false"
		if r.trueCnt*2 > r.inst {
			real = "TRUE"
		}
		fmt.Fprintf(e.w, "%-4d %-9d %-8d %-6s %s\n", i+1, r.queries, len(r.users), real, truncate(r.identity, 90))
	}
}

// clusterLog parses a log, builds overlap boxes and clusters them.
func clusterLog(l logmodel.Log, threshold float64) (overlap.Stats, time.Duration, []overlap.Cluster, parsedlog.Log) {
	parsed, _ := parsedlog.Parse(l)
	var boxes []overlap.Box
	var kept parsedlog.Log
	// Identical statement texts share one Info; cache their boxes.
	boxCache := map[*skeleton.Info]overlap.Box{}
	for _, pe := range parsed {
		if pe.Class != sqlast.ClassSelect || pe.Info == nil {
			continue
		}
		b, ok := boxCache[pe.Info]
		if !ok {
			b = overlap.FromInfo(pe.Info)
			boxCache[pe.Info] = b
		}
		boxes = append(boxes, b)
		kept = append(kept, pe)
	}
	start := time.Now()
	clusters := overlap.ClusterBoxes(boxes, threshold)
	elapsed := time.Since(start)
	return overlap.Summarize(clusters), elapsed, clusters, kept
}

// runFig3 clusters the raw, clean and removal logs for thresholds 0.1–0.9
// and prints cluster count, average size and runtime.
func runFig3(e *env) {
	res := e.result()
	logs := []struct {
		name string
		l    logmodel.Log
	}{
		{"Raw", res.PreClean},
		{"Cleaning", res.Clean},
		{"Removal", res.Removal},
	}
	fmt.Fprintf(e.w, "%-9s %-10s %-9s %-10s %-10s\n", "log", "threshold", "clusters", "avg size", "runtime")
	for _, lg := range logs {
		for th := 0.1; th < 0.95; th += 0.1 {
			st, elapsed, _, _ := clusterLog(lg.l, th)
			fmt.Fprintf(e.w, "%-9s %-10.1f %-9d %-10.1f %v\n", lg.name, th, st.Count, st.AvgSize, elapsed.Round(time.Millisecond))
		}
	}
}

// runFig4 prints cluster sizes by rank at threshold 0.9 for the three logs,
// plus the DS-cluster comparison of Fig. 4(c): clusters holding DS-Stifle
// statements in the raw log are about twice as big as their counterparts in
// the clean log, where the union query replaces the pieces.
func runFig4(e *env) {
	res := e.result()
	const threshold = 0.9

	for _, lg := range []struct {
		name string
		l    logmodel.Log
	}{{"Raw", res.PreClean}, {"Cleaned", res.Clean}, {"Removal", res.Removal}} {
		st, _, _, _ := clusterLog(lg.l, threshold)
		fmt.Fprintf(e.w, "%s data clusters (rank: size):", lg.name)
		for i, s := range st.Sizes {
			if i >= 20 {
				fmt.Fprintf(e.w, " …(+%d more)", len(st.Sizes)-i)
				break
			}
			fmt.Fprintf(e.w, " %d:%d", i+1, s)
		}
		fmt.Fprintln(e.w)
	}

	// Fig 4(c): sizes of clusters containing DS-Stifle members (raw) vs
	// clusters containing their rewritten statements (clean).
	dsRawStmts := map[string]bool{}
	for _, in := range res.Instances {
		if in.Kind != antipattern.DSStifle {
			continue
		}
		for _, idx := range in.Indices {
			dsRawStmts[res.Parsed[idx].Statement] = true
		}
	}
	dsCleanStmts := map[string]bool{}
	for _, r := range res.Replacements {
		if r.Kind == antipattern.DSStifle {
			dsCleanStmts[r.Statement] = true
		}
	}
	rawSizes := dsClusterSizes(res.PreClean, threshold, dsRawStmts)
	cleanSizes := dsClusterSizes(res.Clean, threshold, dsCleanStmts)
	fmt.Fprintf(e.w, "%-4s %-18s %-18s\n", "rank", "DS cluster (clean)", "DS cluster (raw)")
	for i := 0; i < 20 && (i < len(rawSizes) || i < len(cleanSizes)); i++ {
		c, r := "-", "-"
		if i < len(cleanSizes) {
			c = fmt.Sprint(cleanSizes[i])
		}
		if i < len(rawSizes) {
			r = fmt.Sprint(rawSizes[i])
		}
		fmt.Fprintf(e.w, "%-4d %-18s %-18s\n", i+1, c, r)
	}
}

// dsClusterSizes returns the descending sizes of clusters that contain at
// least one of the marked statements.
func dsClusterSizes(l logmodel.Log, threshold float64, marked map[string]bool) []int {
	_, _, clusters, kept := clusterLog(l, threshold)
	var sizes []int
	for _, c := range clusters {
		has := false
		for _, m := range c.Members {
			if marked[kept[m].Statement] {
				has = true
				break
			}
		}
		if has {
			sizes = append(sizes, c.Size())
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(sizes)))
	return sizes
}

// runCTHSamples reproduces the §6.6 inspection of Tables 9 and 10: for each
// of a handful of CTH candidate instances, print the statements with their
// timestamps and the head→follower time gap. The paper's judgment
// heuristic: followers firing instantly after the head indicate programmatic
// dependency (a real CTH); a reflective pause indicates a human choosing
// freely (a false candidate).
func runCTHSamples(e *env) {
	res := e.result()
	type sample struct {
		in  antipattern.Instance
		gap time.Duration
	}
	var instant, paused *sample
	for _, in := range res.Instances {
		if in.Kind != antipattern.CTH || len(in.Indices) < 2 {
			continue
		}
		head := res.Parsed[in.Indices[0]]
		first := res.Parsed[in.Indices[1]]
		s := &sample{in: in, gap: first.Time.Sub(head.Time)}
		if s.gap < time.Second {
			if instant == nil {
				instant = s
			}
		} else if paused == nil {
			paused = s
		}
		if instant != nil && paused != nil {
			break
		}
	}
	show := func(name string, s *sample, verdict string) {
		if s == nil {
			fmt.Fprintf(e.w, "%s: (no such candidate in this workload)\n", name)
			return
		}
		fmt.Fprintf(e.w, "%s (head→follower gap %v → %s):\n", name, s.gap.Round(time.Millisecond), verdict)
		for i, idx := range s.in.Indices {
			if i >= 3 {
				fmt.Fprintf(e.w, "  … (+%d more followers)\n", len(s.in.Indices)-i)
				break
			}
			pe := res.Parsed[idx]
			fmt.Fprintf(e.w, "  %s  %s\n", pe.Time.Format("02.01.06 15:04:05.000"), truncate(pe.Statement, 90))
		}
	}
	show("Candidate A, instant follow-up (cf. paper Table 10)", instant, "likely a real CTH")
	show("Candidate B, reflective pause (cf. paper Table 9)", paused, "likely a user choosing freely")
}
