package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// TestEveryExperimentRuns executes the full registry at a small scale and
// checks each experiment emits its section and its signature content.
func TestEveryExperimentRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment")
	}
	var buf bytes.Buffer
	if err := Run(&buf, Options{Scale: 0.25, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	signatures := map[string]string{
		"table4":     "Non restricted",
		"table5":     "Size of original query log",
		"table6":     "First skeleton statement",
		"table7":     "Coverage",
		"table8":     "userPop",
		"runtime":    "statement reduction",
		"fig2a":      "antipatterns among the top-15",
		"fig2b":      "userPop",
		"fig2c":      "without info",
		"fig2d":      "real?",
		"cthsamples": "head→follower gap",
		"fig3":       "threshold",
		"fig4":       "DS cluster",
		"residue":    "solvable residue",
		"recommend":  "mass-antipattern",
		"accuracy":   "Stifle recall vs session gap",
	}
	for _, ex := range All() {
		header := "=== " + ex.Name + " —"
		if !strings.Contains(out, header) {
			t.Errorf("experiment %s produced no section", ex.Name)
		}
		sig, ok := signatures[ex.Name]
		if !ok {
			t.Errorf("experiment %s has no signature in this test — add one", ex.Name)
			continue
		}
		if !strings.Contains(out, sig) {
			t.Errorf("experiment %s output lacks %q", ex.Name, sig)
		}
	}
}

func TestRunSubsetAndUnknown(t *testing.T) {
	var buf bytes.Buffer
	if err := Run(&buf, Options{Names: []string{"table4"}, Scale: 0.1}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "=== table4") || strings.Contains(out, "=== table5") {
		t.Errorf("subset selection broken:\n%.200s", out)
	}
	if err := Run(&buf, Options{Names: []string{"nope"}}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestAllRegistryIsWellFormed(t *testing.T) {
	seen := map[string]bool{}
	for _, ex := range All() {
		if ex.Name == "" || ex.Title == "" || ex.run == nil {
			t.Errorf("malformed experiment: %+v", ex)
		}
		if seen[ex.Name] {
			t.Errorf("duplicate experiment %s", ex.Name)
		}
		seen[ex.Name] = true
	}
}
