package experiments

import (
	"fmt"
	"math/rand"
	"strconv"

	"sqlclean/internal/antipattern"
	"sqlclean/internal/core"
	"sqlclean/internal/exec"
	"sqlclean/internal/schema"
	"sqlclean/internal/sqlast"
	"sqlclean/internal/sqlparser"
	"sqlclean/internal/storage"
	"sqlclean/internal/workload"
)

// runRuntime reproduces §6.3: pick statements that form solvable Stifle
// antipatterns, run the originals and the rewrites against the in-memory
// engine, and compare virtual runtime under the client-server cost model
// (the paper: 10 222 → 254 statements, 4 450 s → 152 s, 29.27× faster). The
// paper's picked Stifles average ~40 queries per instance, so this
// experiment uses a dedicated bot-heavy workload with runs of that length.
func runRuntime(e *env) {
	wcfg := workload.DefaultConfig()
	wcfg.Seed = e.seed
	wcfg.Humans = 0
	wcfg.WebUISessions = 0
	wcfg.CTHTrueGroups = 0
	wcfg.CTHFalseGroups = 0
	wcfg.SWSBots = 0
	wcfg.SNCQueries = 0
	wcfg.RunLenMin = 30
	wcfg.RunLenMax = 50
	wcfg.DWRuns = int(60 * e.scale)
	wcfg.DSRuns = 0 // DS run length is capped by the number of select lists
	wcfg.DFRuns = int(10 * e.scale)
	log, _ := workload.Generate(wcfg)
	res, err := core.Run(log, core.Config{})
	if err != nil {
		fatalIn(e, err)
	}

	isStifle := func(k antipattern.Kind) bool {
		return k == antipattern.DWStifle || k == antipattern.DSStifle || k == antipattern.DFStifle
	}
	var originals []string
	for _, in := range res.Instances {
		if !in.Solvable || !isStifle(in.Kind) {
			continue
		}
		for _, idx := range in.Indices {
			originals = append(originals, res.Parsed[idx].Statement)
		}
	}
	var rewritten []string
	for _, r := range res.Replacements {
		if isStifle(r.Kind) {
			rewritten = append(rewritten, r.Statement)
		}
	}
	if len(rewritten) == 0 {
		fmt.Fprintln(e.w, "no solvable antipatterns found; nothing to run")
		return
	}

	db := buildRuntimeDB(res.Parsed.Raw().Clone(), originals)
	model := exec.DefaultCostModel()

	runAll := func(stmts []string) (exec.Stats, int) {
		eng := exec.New(db)
		exec.RegisterSkyFuncs(eng)
		failed := 0
		for _, s := range stmts {
			if _, err := eng.Execute(s); err != nil {
				failed++
			}
		}
		return eng.Stats, failed
	}

	origStats, origFailed := runAll(originals)
	rewStats, rewFailed := runAll(rewritten)

	origCost := origStats.Cost(model).Seconds()
	rewCost := rewStats.Cost(model).Seconds()
	fmt.Fprintf(e.w, "%-28s %12s %12s\n", "", "original", "rewritten")
	fmt.Fprintf(e.w, "%-28s %12d %12d\n", "statements", len(originals), len(rewritten))
	fmt.Fprintf(e.w, "%-28s %12d %12d\n", "rows scanned", origStats.RowsScanned, rewStats.RowsScanned)
	fmt.Fprintf(e.w, "%-28s %12d %12d\n", "rows returned", origStats.RowsReturned, rewStats.RowsReturned)
	fmt.Fprintf(e.w, "%-28s %12d %12d\n", "failed statements", origFailed, rewFailed)
	fmt.Fprintf(e.w, "%-28s %11.1fs %11.1fs\n", "virtual runtime", origCost, rewCost)
	fmt.Fprintf(e.w, "statement reduction: %.1f×, speedup: %.2f×\n",
		float64(len(originals))/float64(len(rewritten)), origCost/rewCost)
}

// buildRuntimeDB creates a database whose photoprimary/photoobjall tables
// contain the object ids the antipattern statements ask for (plus filler),
// so every original query returns a row like it did on the real system.
func buildRuntimeDB(_ interface{}, originals []string) *storage.DB {
	cat := schema.SkyServer()
	db := storage.NewDB(cat)
	rng := rand.New(rand.NewSource(7))

	// Collect the distinct objid literals mentioned in the statements.
	ids := map[int64]bool{}
	for _, s := range originals {
		for _, lit := range literalsOf(s) {
			if lit.Kind != "num" {
				continue
			}
			if v, err := strconv.ParseInt(lit.Val, 10, 64); err == nil && v > 1e15 {
				ids[v] = true
			}
		}
	}

	insertPhoto := func(table string, objid int64) {
		t, _ := db.Table(table)
		row := make(storage.Row, len(t.Def.Columns))
		for i, c := range t.Def.Columns {
			switch c.Name {
			case "objid":
				row[i] = storage.Int(objid)
			case "htmid":
				row[i] = storage.Int(rng.Int63n(1 << 40))
			case "type", "flags", "status":
				row[i] = storage.Int(rng.Int63n(10))
			default:
				row[i] = storage.Float(rng.Float64() * 360)
			}
		}
		if err := t.Insert(row); err != nil {
			panic(err)
		}
	}
	for id := range ids {
		insertPhoto("photoprimary", id)
		insertPhoto("photoobjall", id)
	}
	// Filler rows so scans are not trivially empty.
	for i := 0; i < 20000; i++ {
		insertPhoto("photoprimary", 587730000000000000+rng.Int63n(1000000000))
	}

	dbo, _ := db.Table("dbobjects")
	for _, name := range []string{"Galaxy", "Star", "photoobjall", "specobj", "photoprimary"} {
		_ = dbo.Insert(storage.Row{
			storage.Str(name), storage.Str("U"), storage.Str("public"),
			storage.Str("description of " + name), storage.Str("docs for " + name),
		})
	}
	return db
}

// literalsOf extracts the literals of a statement; parse failures yield nil.
func literalsOf(s string) []*sqlast.Literal {
	sel, err := sqlparser.ParseSelect(s)
	if err != nil {
		return nil
	}
	return sqlast.Literals(sel)
}
