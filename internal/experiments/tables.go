package experiments

import (
	"fmt"
	"sort"
	"time"

	"sqlclean/internal/antipattern"
	"sqlclean/internal/core"
	"sqlclean/internal/dedup"
	"sqlclean/internal/eval"
	"sqlclean/internal/logmodel"
	"sqlclean/internal/parsedlog"
	"sqlclean/internal/pattern"
	"sqlclean/internal/recommend"
	"sqlclean/internal/session"
)

// runTable4 sweeps the duplicate time threshold over the SELECT log, like
// the paper's Table 4 (most duplicates are caught already at 1 s).
func runTable4(e *env) {
	parsed, _ := parsedlog.Parse(e.log)
	selects := parsed.SelectsRaw()
	fmt.Fprintf(e.w, "%-14s %12s %10s\n", "threshold", "log size", "% of orig")
	fmt.Fprintf(e.w, "%-14s %12d %9.2f%%\n", "Original Log", len(selects), 100.0)
	thresholds := []struct {
		name string
		d    time.Duration
	}{
		{"1 sec", time.Second},
		{"2 sec", 2 * time.Second},
		{"5 sec", 5 * time.Second},
		{"10 sec", 10 * time.Second},
		{"Non restricted", dedup.Unrestricted},
	}
	for _, th := range thresholds {
		out, _ := dedup.Remove(selects, th.d)
		fmt.Fprintf(e.w, "%-14s %12d %9.2f%%\n", th.name, len(out), 100*float64(len(out))/float64(len(selects)))
	}
}

// runTable5 prints the results overview of the full pipeline.
func runTable5(e *env) {
	res := e.result()
	fmt.Fprint(e.w, res.Report)
	fmt.Fprintf(e.w, "Users in log                      %d\n", e.log.Users())
	// Real-CTH counts come from the generator's ground truth (the paper
	// used domain experts, §6.6).
	real, cand := 0, 0
	ids := map[string]bool{}
	realIDs := map[string]bool{}
	for _, in := range res.Instances {
		if in.Kind != antipattern.CTH {
			continue
		}
		cand++
		ids[in.Identity] = true
		if cthIsTrue(e, in) {
			real++
			realIDs[in.Identity] = true
		}
	}
	fmt.Fprintf(e.w, "Count of distinct candidate CTH   %d\n", len(ids))
	fmt.Fprintf(e.w, "Count of CTH candidate instances  %d\n", cand)
	fmt.Fprintf(e.w, "Count of distinct real CTH        %d\n", len(realIDs))
	fmt.Fprintf(e.w, "Count of real CTH instances       %d\n", real)
}

// cthIsTrue consults the ground truth: an instance is a real CTH when the
// majority of its member queries were generated as dependent follow-ups.
func cthIsTrue(e *env, in antipattern.Instance) bool {
	trueCnt := 0
	for _, idx := range in.Indices {
		seq := e.result().Parsed[idx].Seq
		if e.truth.Label(seq).Kind == "cth-true" {
			trueCnt++
		}
	}
	return trueCnt*2 > len(in.Indices)
}

// antipatternRow aggregates instances of one identity for Table 6.
type antipatternRow struct {
	kind          antipattern.Kind
	first, second string
	queries       int
	users         map[string]bool
}

// runTable6 lists the most popular antipatterns: frequency (member queries),
// type, the first two skeleton statements, distinct IPs.
func runTable6(e *env) {
	res := e.result()
	rows := map[string]*antipatternRow{}
	for _, in := range res.Instances {
		if in.Kind == antipattern.CTH || in.Kind == antipattern.SNC {
			continue // Table 6 shows the Stifle classes
		}
		key := string(in.Kind) + "|" + in.Identity
		r, ok := rows[key]
		if !ok {
			r = &antipatternRow{kind: in.Kind, first: in.First, second: in.Second, users: map[string]bool{}}
			rows[key] = r
		}
		r.queries += len(in.Indices)
		r.users[in.User] = true
	}
	var list []*antipatternRow
	for _, r := range rows {
		list = append(list, r)
	}
	sort.Slice(list, func(i, j int) bool {
		if list[i].queries != list[j].queries {
			return list[i].queries > list[j].queries
		}
		return list[i].first < list[j].first
	})
	fmt.Fprintf(e.w, "%-2s %-9s %-4s %-60s %-60s %s\n", "#", "Frequency", "Type", "First skeleton statement", "Second skeleton statement", "IPs")
	for i, r := range list {
		if i >= e.top {
			break
		}
		fmt.Fprintf(e.w, "%-2d %-9d %-4s %-60s %-60s %d\n",
			i+1, r.queries, shortKind(r.kind), truncate(r.first, 60), truncate(r.second, 60), len(r.users))
	}
}

func shortKind(k antipattern.Kind) string {
	switch k {
	case antipattern.DWStifle:
		return "DW"
	case antipattern.DSStifle:
		return "DS"
	case antipattern.DFStifle:
		return "DF"
	}
	return string(k)
}

// runTable7 lists the most popular patterns of the log after removing
// antipatterns; all of them should be meaningful information needs.
func runTable7(e *env) {
	res := e.result()
	parsed, _ := parsedlog.Parse(res.Removal)
	templates := pattern.Templates(parsed)
	total := len(res.Removal)
	fmt.Fprintf(e.w, "%-2s %-9s %-9s %-80s %s\n", "#", "Frequency", "Coverage", "Skeleton statement", "IPs")
	for i, t := range templates {
		if i >= e.top {
			break
		}
		fmt.Fprintf(e.w, "%-2d %-9d %8.2f%% %-80s %d\n",
			i+1, t.Frequency, 100*float64(t.Frequency)/float64(total), truncate(t.Skeleton, 80), t.UserPopularity)
	}
}

// runTable8 sweeps the SWS thresholds; each cell is the share of the log
// classified as sliding-window search.
func runTable8(e *env) {
	res := e.result()
	freqs := []float64{10, 1, 0.1, 0.01}
	pops := []int{1, 2, 4, 8, 16}
	grid := pattern.SWSSweep(res.Templates, len(res.PreClean), freqs, pops, 0.5)
	fmt.Fprintf(e.w, "%-14s", "userPop \\ freq")
	for _, f := range freqs {
		fmt.Fprintf(e.w, " %7.2f%%", f)
	}
	fmt.Fprintln(e.w)
	for i, p := range pops {
		fmt.Fprintf(e.w, "%-14d", p)
		for j := range freqs {
			fmt.Fprintf(e.w, " %7.1f%%", 100*grid[i][j])
		}
		fmt.Fprintln(e.w)
	}
}

// runResidue measures the §5.5 residue: after one cleaning pass, how much of
// the clean log still forms solvable antipatterns (the paper measured
// 0.09 %), and how many extra passes a fixpoint needs.
func runResidue(e *env) {
	res := e.result()
	res2, err := core.Run(res.Clean, core.Config{NoDedup: true})
	if err != nil {
		fatalIn(e, err)
	}
	solvable := 0
	for _, in := range res2.Instances {
		if in.Solvable {
			solvable += len(in.Indices)
		}
	}
	fmt.Fprintf(e.w, "clean log size                 %d\n", len(res.Clean))
	fmt.Fprintf(e.w, "solvable residue after 1 pass  %d queries (%.3f%%)\n",
		solvable, 100*float64(solvable)/float64(len(res.Clean)))

	fres, err := core.Run(e.log, core.Config{SolveToFixpoint: true})
	if err != nil {
		fatalIn(e, err)
	}
	fmt.Fprintf(e.w, "fixpoint passes                %d\n", fres.Report.SolvePasses)
	fmt.Fprintf(e.w, "fixpoint clean size            %d (single pass: %d)\n", len(fres.Clean), len(res.Clean))
}

// runRecommend evaluates the paper's §7 future-work hypothesis: a next-query
// recommender trained on the original log recommends antipattern queries at
// a much higher rate than one trained on the cleaned log.
func runRecommend(e *env) {
	res := e.result()
	anti := res.AntipatternTemplates()

	report := func(name string, l logmodel.Log, sessions []session.Session, pl parsedlog.Log) {
		if pl == nil {
			pl, _ = parsedlog.Parse(l)
		}
		if sessions == nil {
			sessions = session.Build(l, session.Options{MaxGap: 5 * time.Minute, SplitOnLabel: true})
		}
		m := recommend.Train(pl, sessions)
		rep := m.Contamination(anti)
		fmt.Fprintf(e.w, "%-9s states=%-5d observations=%-6d top1-antipattern=%6.2f%% mass-antipattern=%6.2f%%\n",
			name, rep.States, m.Observations(), 100*rep.Top1Antipattern, 100*rep.MassAntipattern)
	}
	report("raw", res.PreClean, res.Sessions, res.Parsed)
	report("cleaning", res.Clean, nil, nil)
	report("removal", res.Removal, nil, nil)
}

// runAccuracy prints detector precision/recall against the generator ground
// truth — the evaluation the paper could not perform without interviewing
// users (§6.6) — plus a session-gap sensitivity sweep.
func runAccuracy(e *env) {
	res := e.result()
	for _, m := range eval.DetectorAccuracy(res, e.truth) {
		fmt.Fprintln(e.w, m)
	}
	fmt.Fprintln(e.w, eval.TrueCTHClassification(res, e.truth))

	fmt.Fprintln(e.w, "\nStifle recall vs session gap:")
	for _, gap := range []time.Duration{200 * time.Millisecond, time.Second, 30 * time.Second, 5 * time.Minute, time.Hour} {
		r, err := core.Run(e.log, core.Config{SessionGap: gap})
		if err != nil {
			fatalIn(e, err)
		}
		ms := eval.DetectorAccuracy(r, e.truth)
		for _, m := range ms {
			if m.Name == "Stifle (any)" {
				fmt.Fprintf(e.w, "  gap=%-8v P=%.3f R=%.3f\n", gap, m.Precision(), m.Recall())
			}
		}
	}
}
