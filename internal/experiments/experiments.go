// Package experiments regenerates every table and figure of the paper's
// evaluation (§6) plus the beyond-paper experiments (residue, recommender
// contamination, detector accuracy) against the synthetic workload. The
// cmd/experiments binary is a thin wrapper; keeping the experiment bodies
// here makes them testable.
package experiments

import (
	"fmt"
	"io"
	"strings"

	"sqlclean/internal/core"
	"sqlclean/internal/logmodel"
	"sqlclean/internal/workload"
)

// env carries the shared workload and the lazily computed pipeline result.
type env struct {
	w     io.Writer
	scale float64
	seed  int64
	top   int

	log   logmodel.Log
	truth *workload.Truth
	res   *core.Result
	err   error
}

// result runs the pipeline once and caches it.
func (e *env) result() *core.Result {
	if e.res == nil && e.err == nil {
		e.res, e.err = core.Run(e.log, core.Config{})
	}
	if e.err != nil {
		panic(e.err) // recovered by Run below
	}
	return e.res
}

func fatalIn(e *env, err error) {
	panic(err)
}

// Experiment describes one runnable experiment.
type Experiment struct {
	Name  string
	Title string
	run   func(*env)
}

// All returns the experiment registry in presentation order.
func All() []Experiment {
	return []Experiment{
		{"table4", "Table 4: duplicate time threshold sweep", runTable4},
		{"table5", "Table 5: results overview", runTable5},
		{"table6", "Table 6: the most popular antipatterns", runTable6},
		{"table7", "Table 7: the most popular patterns (after cleaning)", runTable7},
		{"table8", "Table 8: SWS coverage vs frequency and user-popularity thresholds", runTable8},
		{"runtime", "§6.3: runtime effect of rewriting antipatterns", runRuntime},
		{"fig2a", "Fig. 2(a): top patterns before and after cleaning", runFig2a},
		{"fig2b", "Fig. 2(b): frequency and user popularity of the patterns", runFig2b},
		{"fig2c", "Fig. 2(c): with and without user-session information", runFig2c},
		{"fig2d", "Fig. 2(d): possible and real CTH antipatterns", runFig2d},
		{"cthsamples", "Tables 9/10: inspecting CTH candidates by time gap (§6.6)", runCTHSamples},
		{"fig3", "Fig. 3: query clustering on raw / clean / removal logs", runFig3},
		{"fig4", "Fig. 4: cluster sizes by rank; DS clusters clean vs raw", runFig4},
		{"residue", "§5.5: solvable-antipattern residue after one cleaning pass", runResidue},
		{"recommend", "§7: antipattern contamination of query recommendations", runRecommend},
		{"accuracy", "detector precision/recall against generator ground truth", runAccuracy},
	}
}

// Options configure a Run.
type Options struct {
	// Names selects experiments ("all" or names from All). Empty means all.
	Names []string
	// Scale and Seed configure the shared workload.
	Scale float64
	Seed  int64
	// Top bounds top-k tables; zero selects 5.
	Top int
}

// Run executes the selected experiments, writing their reports to w. It
// returns an error for unknown experiment names or failing pipelines.
func Run(w io.Writer, opt Options) (err error) {
	if opt.Scale == 0 {
		opt.Scale = 1
	}
	if opt.Top == 0 {
		opt.Top = 5
	}
	want := map[string]bool{}
	all := len(opt.Names) == 0
	for _, n := range opt.Names {
		n = strings.TrimSpace(n)
		if n == "all" {
			all = true
			continue
		}
		want[n] = true
	}
	known := map[string]bool{}
	for _, ex := range All() {
		known[ex.Name] = true
	}
	for n := range want {
		if !known[n] {
			return fmt.Errorf("experiments: unknown experiment %q", n)
		}
	}

	cfg := workload.DefaultConfig().Scale(opt.Scale)
	cfg.Seed = opt.Seed
	log, truth := workload.Generate(cfg)
	e := &env{w: w, scale: opt.Scale, seed: opt.Seed, top: opt.Top, log: log, truth: truth}
	fmt.Fprintf(w, "workload: %d entries, %d users (scale %.2f, seed %d)\n", len(log), log.Users(), opt.Scale, opt.Seed)

	defer func() {
		if r := recover(); r != nil {
			if e, ok := r.(error); ok {
				err = e
				return
			}
			panic(r)
		}
	}()
	for _, ex := range All() {
		if !all && !want[ex.Name] {
			continue
		}
		fmt.Fprintf(w, "\n=== %s — %s ===\n", ex.Name, ex.Title)
		ex.run(e)
	}
	return nil
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}
