package journal

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"sqlclean/internal/logmodel"
	"sqlclean/internal/obs"
)

func appendN(t *testing.T, w *Writer, from, n int) {
	t.Helper()
	for i := from; i < from+n; i++ {
		if _, err := w.Append([]byte(fmt.Sprintf("payload-%04d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
}

func replayAll(t *testing.T, dir string, from uint64) ([]string, ReplayResult) {
	t.Helper()
	var got []string
	res, err := Replay(dir, from, func(lsn uint64, payload []byte) error {
		got = append(got, fmt.Sprintf("%d:%s", lsn, payload))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return got, res
}

// TestAppendReplayRoundTrip pins the basic WAL contract: everything appended
// and committed comes back, in LSN order, with LSNs 1..n.
func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(Options{Dir: dir, Policy: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 0, 10)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, res := replayAll(t, dir, 0)
	if len(got) != 10 || res.Frames != 10 || res.Torn || res.LastLSN != 10 {
		t.Fatalf("replay: %d frames, %+v", len(got), res)
	}
	for i, g := range got {
		want := fmt.Sprintf("%d:payload-%04d", i+1, i)
		if g != want {
			t.Fatalf("frame %d: got %q want %q", i, g, want)
		}
	}
}

// TestReopenContinuesLSNs pins crash-free restart: a reopened journal keeps
// assigning LSNs after the old tail.
func TestReopenContinuesLSNs(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(Options{Dir: dir, Policy: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 0, 5)
	w.Close()

	w, err = Open(Options{Dir: dir, Policy: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	if w.LastLSN() != 5 {
		t.Fatalf("reopened LastLSN = %d, want 5", w.LastLSN())
	}
	appendN(t, w, 5, 5)
	w.Close()

	got, _ := replayAll(t, dir, 0)
	if len(got) != 10 {
		t.Fatalf("replayed %d frames, want 10", len(got))
	}
}

// TestTornTail pins crash recovery: a truncated final frame is dropped by
// Replay (Torn set) and truncated away on reopen, after which appends resume.
func TestTornTail(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(Options{Dir: dir, Policy: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 0, 4)
	w.Close()

	segs, err := listSegments(dir)
	if err != nil || len(segs) != 1 {
		t.Fatalf("segments: %v %v", segs, err)
	}
	fi, _ := os.Stat(segs[0].path)
	if err := os.Truncate(segs[0].path, fi.Size()-5); err != nil {
		t.Fatal(err)
	}

	got, res := replayAll(t, dir, 0)
	if len(got) != 3 || !res.Torn {
		t.Fatalf("after tear: %d frames, torn=%v", len(got), res.Torn)
	}

	w, err = Open(Options{Dir: dir, Policy: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	if w.LastLSN() != 3 {
		t.Fatalf("LastLSN after tear = %d, want 3", w.LastLSN())
	}
	appendN(t, w, 100, 1)
	w.Close()
	got, res = replayAll(t, dir, 0)
	if len(got) != 4 || res.Torn {
		t.Fatalf("after reopen+append: %d frames, torn=%v", len(got), res.Torn)
	}
	if got[3] != "4:payload-0100" {
		t.Fatalf("resumed frame = %q", got[3])
	}
}

// TestCorruptedFrameStopsReplay pins the CRC check: a flipped payload byte
// ends the replay at the last intact frame instead of delivering garbage.
func TestCorruptedFrameStopsReplay(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(Options{Dir: dir, Policy: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 0, 3)
	w.Close()

	segs, _ := listSegments(dir)
	data, err := os.ReadFile(segs[0].path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one byte in the middle frame's payload.
	frame := frameHeader + len("payload-0000")
	data[frame+frameHeader+3] ^= 0xff
	if err := os.WriteFile(segs[0].path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	got, res := replayAll(t, dir, 0)
	if len(got) != 1 || !res.Torn {
		t.Fatalf("after corruption: %d frames (want 1), torn=%v", len(got), res.Torn)
	}
}

// TestRotationAndTruncate pins segment rotation and snapshot truncation:
// small segments rotate on size, TruncateBefore removes exactly the segments
// a snapshot made disposable, and replay from the snapshot LSN still works.
func TestRotationAndTruncate(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(Options{Dir: dir, SegmentBytes: 128, Policy: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 0, 40)
	if w.Segments() < 3 {
		t.Fatalf("expected rotation, got %d segments", w.Segments())
	}

	// Snapshot at LSN 20: frames 1..20 are disposable.
	removed, err := w.TruncateBefore(21)
	if err != nil {
		t.Fatal(err)
	}
	if removed == 0 {
		t.Fatal("TruncateBefore removed nothing")
	}
	got, _ := replayAll(t, dir, 21)
	if len(got) != 20 {
		t.Fatalf("replay from 21: %d frames, want 20", len(got))
	}
	if got[0] != "21:payload-0020" {
		t.Fatalf("first replayed frame = %q", got[0])
	}
	// Frames below the truncation point may survive (their segment also
	// holds live frames) but must never resurface in a filtered replay.
	for _, g := range got {
		var lsn uint64
		fmt.Sscanf(g, "%d:", &lsn)
		if lsn < 21 {
			t.Fatalf("replay delivered pre-snapshot frame %q", g)
		}
	}
	w.Close()
}

// TestReplayEmptyAndMissingDir pins the fresh-start path.
func TestReplayEmptyAndMissingDir(t *testing.T) {
	got, res := replayAll(t, filepath.Join(t.TempDir(), "nope"), 0)
	if len(got) != 0 || res.Frames != 0 || res.Torn {
		t.Fatalf("missing dir: %+v", res)
	}
}

// TestFsyncPolicies exercises the three policies end to end (correctness
// only; durability against machine crash is not testable here).
func TestFsyncPolicies(t *testing.T) {
	for _, p := range []FsyncPolicy{FsyncAlways, FsyncInterval, FsyncNever} {
		t.Run(string(p), func(t *testing.T) {
			dir := t.TempDir()
			reg := obs.NewRegistry()
			w, err := Open(Options{Dir: dir, Policy: p, Interval: 10 * time.Millisecond, Metrics: reg})
			if err != nil {
				t.Fatal(err)
			}
			appendN(t, w, 0, 5)
			if err := w.Sync(); err != nil {
				t.Fatal(err)
			}
			w.Close()
			got, _ := replayAll(t, dir, 0)
			if len(got) != 5 {
				t.Fatalf("%s: replayed %d frames, want 5", p, len(got))
			}
			snap := reg.Snapshot()
			if snap.Counters["journal_appends_total"] != 5 {
				t.Fatalf("%s: appends metric = %d", p, snap.Counters["journal_appends_total"])
			}
		})
	}
	if _, err := ParseFsyncPolicy("sometimes"); err == nil {
		t.Error("ParseFsyncPolicy accepted a bogus policy")
	}
	if p, err := ParseFsyncPolicy("always"); err != nil || p != FsyncAlways {
		t.Errorf("ParseFsyncPolicy(always) = %v, %v", p, err)
	}
}

// TestEntryCodecRoundTrip pins the entry wire format, including awkward
// statements (tabs, newlines, unicode), unknown row counts and empty fields.
func TestEntryCodecRoundTrip(t *testing.T) {
	entries := []logmodel.Entry{
		{Seq: 0, Time: time.Date(2003, 6, 1, 12, 0, 0, 123456789, time.UTC), User: "alice", Session: "s1", Rows: 42, Statement: "SELECT 1"},
		{Seq: 7, Time: time.Date(2008, 1, 2, 3, 4, 5, 0, time.UTC), Rows: -1, Statement: "SELECT\tx\nFROM t -- é"},
		{Seq: 1 << 40, Time: time.Unix(0, 1).UTC(), User: "", Session: "", Rows: 0, Statement: ""},
	}
	for _, e := range entries {
		payload := EncodeEntry(nil, e)
		got, err := DecodeEntry(payload)
		if err != nil {
			t.Fatalf("decode %+v: %v", e, err)
		}
		if !reflect.DeepEqual(got, e) {
			t.Errorf("round trip: got %+v want %+v", got, e)
		}
	}
	if _, err := DecodeEntry([]byte{0x80}); err == nil {
		t.Error("DecodeEntry accepted a truncated payload")
	}
	if _, err := DecodeEntry(append(EncodeEntry(nil, entries[0]), 0)); err == nil {
		t.Error("DecodeEntry accepted trailing bytes")
	}
}
