package journal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"sqlclean/internal/logmodel"
	"sqlclean/internal/obs"
)

func appendN(t *testing.T, w *Writer, from, n int) {
	t.Helper()
	for i := from; i < from+n; i++ {
		if _, err := w.Append([]byte(fmt.Sprintf("payload-%04d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
}

func replayAll(t *testing.T, dir string, from uint64) ([]string, ReplayResult) {
	t.Helper()
	var got []string
	res, err := Replay(dir, from, func(lsn uint64, payload []byte) error {
		got = append(got, fmt.Sprintf("%d:%s", lsn, payload))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return got, res
}

// TestAppendReplayRoundTrip pins the basic WAL contract: everything appended
// and committed comes back, in LSN order, with LSNs 1..n.
func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(Options{Dir: dir, Policy: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 0, 10)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, res := replayAll(t, dir, 0)
	if len(got) != 10 || res.Frames != 10 || res.Torn || res.LastLSN != 10 {
		t.Fatalf("replay: %d frames, %+v", len(got), res)
	}
	for i, g := range got {
		want := fmt.Sprintf("%d:payload-%04d", i+1, i)
		if g != want {
			t.Fatalf("frame %d: got %q want %q", i, g, want)
		}
	}
}

// TestReopenContinuesLSNs pins crash-free restart: a reopened journal keeps
// assigning LSNs after the old tail.
func TestReopenContinuesLSNs(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(Options{Dir: dir, Policy: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 0, 5)
	w.Close()

	w, err = Open(Options{Dir: dir, Policy: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	if w.LastLSN() != 5 {
		t.Fatalf("reopened LastLSN = %d, want 5", w.LastLSN())
	}
	appendN(t, w, 5, 5)
	w.Close()

	got, _ := replayAll(t, dir, 0)
	if len(got) != 10 {
		t.Fatalf("replayed %d frames, want 10", len(got))
	}
}

// TestTornTail pins crash recovery: a truncated final frame is dropped by
// Replay (Torn set) and truncated away on reopen, after which appends resume.
func TestTornTail(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(Options{Dir: dir, Policy: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 0, 4)
	w.Close()

	segs, err := listSegments(dir)
	if err != nil || len(segs) != 1 {
		t.Fatalf("segments: %v %v", segs, err)
	}
	fi, _ := os.Stat(segs[0].path)
	if err := os.Truncate(segs[0].path, fi.Size()-5); err != nil {
		t.Fatal(err)
	}

	got, res := replayAll(t, dir, 0)
	if len(got) != 3 || !res.Torn {
		t.Fatalf("after tear: %d frames, torn=%v", len(got), res.Torn)
	}

	w, err = Open(Options{Dir: dir, Policy: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	if w.LastLSN() != 3 {
		t.Fatalf("LastLSN after tear = %d, want 3", w.LastLSN())
	}
	appendN(t, w, 100, 1)
	w.Close()
	got, res = replayAll(t, dir, 0)
	if len(got) != 4 || res.Torn {
		t.Fatalf("after reopen+append: %d frames, torn=%v", len(got), res.Torn)
	}
	if got[3] != "4:payload-0100" {
		t.Fatalf("resumed frame = %q", got[3])
	}
}

// TestCorruptedFrameStopsReplay pins the CRC check: a flipped payload byte
// ends the replay at the last intact frame instead of delivering garbage.
func TestCorruptedFrameStopsReplay(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(Options{Dir: dir, Policy: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 0, 3)
	w.Close()

	segs, _ := listSegments(dir)
	data, err := os.ReadFile(segs[0].path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one byte in the middle frame's payload.
	frame := frameHeader + len("payload-0000")
	data[frame+frameHeader+3] ^= 0xff
	if err := os.WriteFile(segs[0].path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	got, res := replayAll(t, dir, 0)
	if len(got) != 1 || !res.Torn {
		t.Fatalf("after corruption: %d frames (want 1), torn=%v", len(got), res.Torn)
	}
}

// TestRotationAndTruncate pins segment rotation and snapshot truncation:
// small segments rotate on size, TruncateBefore removes exactly the segments
// a snapshot made disposable, and replay from the snapshot LSN still works.
func TestRotationAndTruncate(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(Options{Dir: dir, SegmentBytes: 128, Policy: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 0, 40)
	if w.Segments() < 3 {
		t.Fatalf("expected rotation, got %d segments", w.Segments())
	}

	// Snapshot at LSN 20: frames 1..20 are disposable.
	removed, err := w.TruncateBefore(21)
	if err != nil {
		t.Fatal(err)
	}
	if removed == 0 {
		t.Fatal("TruncateBefore removed nothing")
	}
	got, _ := replayAll(t, dir, 21)
	if len(got) != 20 {
		t.Fatalf("replay from 21: %d frames, want 20", len(got))
	}
	if got[0] != "21:payload-0020" {
		t.Fatalf("first replayed frame = %q", got[0])
	}
	// Frames below the truncation point may survive (their segment also
	// holds live frames) but must never resurface in a filtered replay.
	for _, g := range got {
		var lsn uint64
		fmt.Sscanf(g, "%d:", &lsn)
		if lsn < 21 {
			t.Fatalf("replay delivered pre-snapshot frame %q", g)
		}
	}
	w.Close()
}

// TestReplayEmptyAndMissingDir pins the fresh-start path.
func TestReplayEmptyAndMissingDir(t *testing.T) {
	got, res := replayAll(t, filepath.Join(t.TempDir(), "nope"), 0)
	if len(got) != 0 || res.Frames != 0 || res.Torn {
		t.Fatalf("missing dir: %+v", res)
	}
}

// TestFsyncPolicies exercises the three policies end to end (correctness
// only; durability against machine crash is not testable here).
func TestFsyncPolicies(t *testing.T) {
	for _, p := range []FsyncPolicy{FsyncAlways, FsyncInterval, FsyncNever} {
		t.Run(string(p), func(t *testing.T) {
			dir := t.TempDir()
			reg := obs.NewRegistry()
			w, err := Open(Options{Dir: dir, Policy: p, Interval: 10 * time.Millisecond, Metrics: reg})
			if err != nil {
				t.Fatal(err)
			}
			appendN(t, w, 0, 5)
			if err := w.Sync(); err != nil {
				t.Fatal(err)
			}
			w.Close()
			got, _ := replayAll(t, dir, 0)
			if len(got) != 5 {
				t.Fatalf("%s: replayed %d frames, want 5", p, len(got))
			}
			snap := reg.Snapshot()
			if snap.Counters["journal_appends_total"] != 5 {
				t.Fatalf("%s: appends metric = %d", p, snap.Counters["journal_appends_total"])
			}
		})
	}
	if _, err := ParseFsyncPolicy("sometimes"); err == nil {
		t.Error("ParseFsyncPolicy accepted a bogus policy")
	}
	if p, err := ParseFsyncPolicy("always"); err != nil || p != FsyncAlways {
		t.Errorf("ParseFsyncPolicy(always) = %v, %v", p, err)
	}
}

// TestGroupCommitCoalesces pins the leader/follower protocol in its most
// deterministic configuration: all frames are appended first, then many
// commits race. Every caller targets the same LSN, so exactly one becomes the
// leader and fsyncs once; the rest are satisfied by that sync. The group
// histogram must record a single commit-path fsync covering all frames.
func TestGroupCommitCoalesces(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	w, err := Open(Options{Dir: dir, Policy: FsyncAlways, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	const frames, commits = 100, 10
	for i := 0; i < frames; i++ {
		if _, err := w.Append([]byte(fmt.Sprintf("gc-%04d", i))); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errs := make([]error, commits)
	for i := 0; i < commits; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = w.Commit()
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("commit %d: %v", i, err)
		}
	}
	snap := reg.Snapshot()
	if got := snap.Counters["journal_commits_total"]; got != commits {
		t.Errorf("journal_commits_total = %d, want %d", got, commits)
	}
	if fs := snap.Histograms["journal_fsync_ns"]; fs.Count != 1 {
		t.Errorf("fsyncs = %d, want 1 (group commit should coalesce)", fs.Count)
	}
	gc := snap.Histograms["journal_group_commit_entries"]
	if gc.Count != 1 || gc.Sum != frames {
		t.Errorf("group histogram count=%d sum=%d, want 1 fsync covering %d frames", gc.Count, gc.Sum, frames)
	}
	w.Close()
}

// TestGroupCommitConcurrentAppendCommit hammers the realistic shape — each
// goroutine appends its own frame then commits, like concurrent ingest
// requests — and pins the durability contract (every committed frame replays)
// plus the coalescing direction (never more fsyncs than commits).
func TestGroupCommitConcurrentAppendCommit(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	w, err := Open(Options{Dir: dir, Policy: FsyncAlways, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	const writers, perWriter = 16, 25
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if _, err := w.Append([]byte(fmt.Sprintf("w%02d-%04d", g, i))); err != nil {
					t.Error(err)
					return
				}
				if err := w.Commit(); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, res := replayAll(t, dir, 0)
	if len(got) != writers*perWriter || res.Torn {
		t.Fatalf("replayed %d frames (want %d), torn=%v", len(got), writers*perWriter, res.Torn)
	}
	snap := reg.Snapshot()
	fsyncs := snap.Histograms["journal_fsync_ns"].Count
	commits := snap.Counters["journal_commits_total"]
	if fsyncs > commits {
		t.Errorf("%d fsyncs for %d commits: group commit made things worse", fsyncs, commits)
	}
	t.Logf("coalescing: %d commits → %d fsyncs", commits, fsyncs)
}

// TestAppendBatchMatchesPerEntryAppend pins byte-identical journal output:
// the batched, scratch-buffer encode path must produce exactly the segment
// bytes the per-entry Append(EncodeEntry(nil, e)) path does.
func TestAppendBatchMatchesPerEntryAppend(t *testing.T) {
	entries := make([]logmodel.Entry, 50)
	for i := range entries {
		entries[i] = logmodel.Entry{
			Seq:       int64(i),
			Time:      time.Date(2004, 3, 1, 0, 0, i, i, time.UTC),
			User:      fmt.Sprintf("user-%d", i%7),
			Session:   fmt.Sprintf("sess-%d", i%3),
			Rows:      int64(i * 11),
			Statement: fmt.Sprintf("SELECT %d FROM photoobj -- pad %s", i, string(rune('a'+i%26))),
		}
	}

	dirA, dirB := t.TempDir(), t.TempDir()
	wa, err := Open(Options{Dir: dirA, Policy: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if _, err := wa.Append(EncodeEntry(nil, e)); err != nil {
			t.Fatal(err)
		}
	}
	wa.Close()

	wb, err := Open(Options{Dir: dirB, Policy: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	// Split across three calls to exercise scratch reuse between batches.
	for _, chunk := range [][]logmodel.Entry{entries[:20], entries[20:21], entries[21:]} {
		n, last, err := wb.AppendBatch(chunk)
		if err != nil || n != len(chunk) {
			t.Fatalf("AppendBatch: n=%d err=%v", n, err)
		}
		if last != wb.LastLSN() {
			t.Fatalf("AppendBatch lastLSN=%d, writer says %d", last, wb.LastLSN())
		}
	}
	wb.Close()

	segsA, _ := listSegments(dirA)
	segsB, _ := listSegments(dirB)
	if len(segsA) != 1 || len(segsB) != 1 {
		t.Fatalf("segments: %d vs %d, want 1 each", len(segsA), len(segsB))
	}
	a, _ := os.ReadFile(segsA[0].path)
	b, _ := os.ReadFile(segsB[0].path)
	if !bytes.Equal(a, b) {
		t.Fatalf("batched journal bytes differ from per-entry bytes (%d vs %d bytes)", len(a), len(b))
	}
}

// TestAppendBatchAllocFree pins the tentpole's allocation claim: once the
// scratch buffer has grown, AppendBatch performs zero allocations per call.
func TestAppendBatchAllocFree(t *testing.T) {
	w, err := Open(Options{Dir: t.TempDir(), Policy: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	batch := make([]logmodel.Entry, 8)
	for i := range batch {
		batch[i] = logmodel.Entry{
			Seq: int64(i), Time: time.Unix(1060000000+int64(i), 0).UTC(),
			User: "u", Session: "s", Rows: 3,
			Statement: "SELECT ra, dec FROM photoobj WHERE obj_id = 12345",
		}
	}
	// Warm up: grows encBuf and the bufio writer path.
	if _, _, err := w.AppendBatch(batch); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, _, err := w.AppendBatch(batch); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Errorf("AppendBatch allocs/op = %v, want 0", allocs)
	}
}

// TestEntryCodecRoundTrip pins the entry wire format, including awkward
// statements (tabs, newlines, unicode), unknown row counts and empty fields.
func TestEntryCodecRoundTrip(t *testing.T) {
	entries := []logmodel.Entry{
		{Seq: 0, Time: time.Date(2003, 6, 1, 12, 0, 0, 123456789, time.UTC), User: "alice", Session: "s1", Rows: 42, Statement: "SELECT 1"},
		{Seq: 7, Time: time.Date(2008, 1, 2, 3, 4, 5, 0, time.UTC), Rows: -1, Statement: "SELECT\tx\nFROM t -- é"},
		{Seq: 1 << 40, Time: time.Unix(0, 1).UTC(), User: "", Session: "", Rows: 0, Statement: ""},
	}
	for _, e := range entries {
		payload := EncodeEntry(nil, e)
		got, err := DecodeEntry(payload)
		if err != nil {
			t.Fatalf("decode %+v: %v", e, err)
		}
		if !reflect.DeepEqual(got, e) {
			t.Errorf("round trip: got %+v want %+v", got, e)
		}
	}
	if _, err := DecodeEntry([]byte{0x80}); err == nil {
		t.Error("DecodeEntry accepted a truncated payload")
	}
	if _, err := DecodeEntry(append(EncodeEntry(nil, entries[0]), 0)); err == nil {
		t.Error("DecodeEntry accepted trailing bytes")
	}
}
