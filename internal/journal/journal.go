// Package journal is the ingestion daemon's write-ahead log: a segmented
// append-only journal of accepted log entries, written before an entry is
// acknowledged, so that a crashed daemon can replay exactly what it had
// promised to process. The paper's subject is a five-year continuous log
// (SkyServer); a daemon cleaning such a feed restarts many times over the
// collection window, and without a journal every restart would silently drop
// all open sessions and template aggregates — precisely the long-horizon
// state the antipattern detector needs.
//
// Format. A journal is a directory of segment files named
// wal-<firstLSN:016x>.log. Each segment is a sequence of frames:
//
//	[length uint32 LE] [crc32c uint32 LE] [lsn uint64 LE] [payload]
//
// where length counts the payload bytes and the CRC (Castagnoli) covers the
// LSN and payload. LSNs are assigned by the writer, strictly increasing
// across the whole journal, which makes truncation ("everything below the
// snapshot is disposable") a pure segment-name comparison.
//
// Durability. Append buffers; Commit flushes to the OS (surviving a killed
// process) and fsyncs according to the configured policy (surviving a killed
// machine): FsyncAlways syncs every commit, FsyncInterval syncs at most once
// per interval (a background syncer bounds the tail), FsyncNever leaves
// syncing to the OS. Segment rotation always syncs the sealed segment.
//
// Recovery. Replay streams frames in LSN order, validating CRCs. A torn
// final frame — the signature of a crash mid-write — ends the replay
// cleanly; Open truncates the torn tail before appending new frames.
package journal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"sqlclean/internal/obs"
)

// FsyncPolicy selects when Commit calls fsync.
type FsyncPolicy string

const (
	// FsyncAlways fsyncs on every Commit: no acknowledged entry is lost even
	// to a machine crash, at the cost of one disk sync per ingest request.
	FsyncAlways FsyncPolicy = "always"
	// FsyncInterval fsyncs at most once per Options.Interval (plus a
	// background syncer), bounding machine-crash loss to one interval.
	FsyncInterval FsyncPolicy = "interval"
	// FsyncNever never fsyncs explicitly: a killed process loses nothing
	// (Commit still flushes to the page cache), a killed machine may lose
	// whatever the OS had not written back.
	FsyncNever FsyncPolicy = "never"
)

// ParseFsyncPolicy parses a -fsync flag value.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch FsyncPolicy(s) {
	case FsyncAlways, FsyncInterval, FsyncNever:
		return FsyncPolicy(s), nil
	}
	return "", fmt.Errorf("journal: unknown fsync policy %q (want always, interval or never)", s)
}

const (
	frameHeader = 16 // length + crc + lsn
	segPrefix   = "wal-"
	segSuffix   = ".log"
	// DefaultSegmentBytes rotates segments at 64 MiB.
	DefaultSegmentBytes = 64 << 20
	// DefaultInterval is the FsyncInterval cadence.
	DefaultInterval = time.Second
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Options configures a Writer.
type Options struct {
	// Dir is the journal directory; created if missing.
	Dir string
	// SegmentBytes rotates to a new segment once the current one exceeds
	// this size (0 selects DefaultSegmentBytes).
	SegmentBytes int64
	// Policy selects the fsync cadence (empty selects FsyncInterval).
	Policy FsyncPolicy
	// Interval is the FsyncInterval cadence (0 selects DefaultInterval).
	Interval time.Duration
	// Metrics optionally receives journal_appends_total, journal_bytes_total,
	// journal_segments, journal_rotations_total and the journal_fsync_ns
	// histogram.
	Metrics *obs.Registry
	// Logger receives structured diagnostics (torn-tail truncation on Open,
	// segment rotation, background fsync failures). Nil discards them.
	Logger *slog.Logger
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = DefaultSegmentBytes
	}
	if o.Policy == "" {
		o.Policy = FsyncInterval
	}
	if o.Interval <= 0 {
		o.Interval = DefaultInterval
	}
	if o.Logger == nil {
		o.Logger = obs.NopLogger()
	}
	return o
}

type segment struct {
	first uint64 // LSN of the segment's first frame
	path  string
}

// groupCommitBuckets are the histogram bounds for frames-per-fsync: the
// coalescing factor of the cross-request group commit.
var groupCommitBuckets = []int64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096}

// Writer appends frames to the journal. Safe for concurrent use; Append
// assigns LSNs under the writer's lock, so journal order is LSN order.
type Writer struct {
	opt Options

	mu       sync.Mutex
	f        *os.File
	bw       *bufio.Writer
	size     int64
	segs     []segment
	lastLSN  uint64
	dirty    bool // unsynced bytes since the last fsync
	lastSync time.Time
	closed   bool
	stop     chan struct{} // background syncer (FsyncInterval only)
	syncWG   sync.WaitGroup
	// encBuf is the AppendBatch entry-encoding scratch, reused across frames
	// and batches (guarded by mu): the accept path pays zero payload
	// allocations in steady state. hdr is the frame-header scratch — a local
	// array would escape (bufio.Writer.Write leaks its argument), costing one
	// allocation per frame.
	encBuf []byte
	hdr    [frameHeader]byte

	// Group-commit state (guarded by gcMu, which is only ever taken while
	// holding mu or while holding neither — mu → gcMu is the lock order).
	// syncedLSN is the highest LSN a completed fsync covers; syncing marks a
	// leader's fsync in flight. Commit callers under FsyncAlways wait on
	// gcCond until a sync — theirs or another caller's — covers their frames,
	// so concurrent commits share one fsync instead of issuing one each.
	gcMu      sync.Mutex
	gcCond    *sync.Cond
	syncedLSN uint64
	syncing   bool

	mAppends   *obs.Counter
	mBytes     *obs.Counter
	mRotations *obs.Counter
	mCommits   *obs.Counter
	gSegments  *obs.Gauge
	hFsync     *obs.Histogram
	hGroup     *obs.Histogram
}

// Open creates or reopens a journal directory for appending. A torn final
// frame left by a crash is truncated away; recovered frames stay untouched.
func Open(opt Options) (*Writer, error) {
	opt = opt.withDefaults()
	if opt.Dir == "" {
		return nil, errors.New("journal: empty directory")
	}
	if err := os.MkdirAll(opt.Dir, 0o755); err != nil {
		return nil, err
	}
	segs, err := listSegments(opt.Dir)
	if err != nil {
		return nil, err
	}
	w := &Writer{
		opt:      opt,
		segs:     segs,
		lastSync: time.Now(),
		stop:     make(chan struct{}),

		mAppends:   opt.Metrics.Counter("journal_appends_total"),
		mBytes:     opt.Metrics.Counter("journal_bytes_total"),
		mRotations: opt.Metrics.Counter("journal_rotations_total"),
		mCommits:   opt.Metrics.Counter("journal_commits_total"),
		gSegments:  opt.Metrics.Gauge("journal_segments"),
		hFsync:     opt.Metrics.Histogram("journal_fsync_ns", obs.DurationBucketsNS),
		hGroup:     opt.Metrics.Histogram("journal_group_commit_entries", groupCommitBuckets),
	}
	w.gcCond = sync.NewCond(&w.gcMu)
	// Find the journal's last valid LSN (frames are LSN-ordered, so the last
	// valid frame of the last segment carries it) and truncate any torn tail.
	for i := len(segs) - 1; i >= 0; i-- {
		valid, last, n, err := scanSegment(segs[i].path, 0, nil)
		if err != nil {
			return nil, err
		}
		if w.lastLSN == 0 && n > 0 {
			w.lastLSN = last
		}
		if i == len(segs)-1 {
			f, err := os.OpenFile(segs[i].path, os.O_RDWR, 0o644)
			if err != nil {
				return nil, err
			}
			if fi, statErr := f.Stat(); statErr == nil && fi.Size() > valid {
				opt.Logger.Warn("truncating torn journal tail",
					"component", "journal", "segment", filepath.Base(segs[i].path),
					"valid_bytes", valid, "torn_bytes", fi.Size()-valid)
			}
			if err := f.Truncate(valid); err != nil {
				f.Close()
				return nil, err
			}
			if _, err := f.Seek(valid, io.SeekStart); err != nil {
				f.Close()
				return nil, err
			}
			w.f = f
			w.bw = bufio.NewWriterSize(f, 1<<16)
			w.size = valid
		}
		if n > 0 {
			break
		}
	}
	// Everything recovered from disk needs no fsync from us.
	w.syncedLSN = w.lastLSN
	w.gSegments.Set(int64(len(w.segs)))
	if w.opt.Policy == FsyncInterval {
		w.syncWG.Add(1)
		go w.backgroundSync()
	}
	return w, nil
}

// LastLSN returns the LSN of the most recently appended frame (0 when the
// journal is empty).
func (w *Writer) LastLSN() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.lastLSN
}

// Append writes one frame and returns its LSN. The frame is buffered; call
// Commit before acknowledging it to a client.
func (w *Writer) Append(payload []byte) (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return 0, errors.New("journal: writer closed")
	}
	return w.appendFrameLocked(payload)
}

// appendFrameLocked frames one payload into the buffered writer, rotating
// first when the segment is full. Caller holds mu and has checked closed.
func (w *Writer) appendFrameLocked(payload []byte) (uint64, error) {
	lsn := w.lastLSN + 1
	if w.f == nil || (w.size > 0 && w.size+frameHeader+int64(len(payload)) > w.opt.SegmentBytes) {
		if err := w.rotateLocked(lsn); err != nil {
			return 0, err
		}
	}
	hdr := &w.hdr
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint64(hdr[8:16], lsn)
	crc := crc32.Update(0, castagnoli, hdr[8:16])
	crc = crc32.Update(crc, castagnoli, payload)
	binary.LittleEndian.PutUint32(hdr[4:8], crc)
	if _, err := w.bw.Write(hdr[:]); err != nil {
		return 0, err
	}
	if _, err := w.bw.Write(payload); err != nil {
		return 0, err
	}
	w.size += frameHeader + int64(len(payload))
	w.lastLSN = lsn
	w.dirty = true
	w.mAppends.Inc()
	w.mBytes.Add(frameHeader + int64(len(payload)))
	return lsn, nil
}

// Commit makes every appended frame crash-durable for a killed process
// (flush to the OS) and, per the fsync policy, for a killed machine.
//
// Under FsyncAlways, concurrent commits group-commit: the caller flushes its
// frames under the writer's lock, releases it, and then waits until a
// completed fsync covers its last frame. One caller — the leader — performs
// the fsync for everyone whose frames were flushed by then; the rest return
// as soon as that sync covers their LSN. 32 concurrent clients therefore
// share a handful of fsyncs instead of issuing 32, without weakening the
// guarantee: Commit still never returns before the caller's frames are
// durable.
func (w *Writer) Commit() error {
	w.mu.Lock()
	if w.closed || w.f == nil {
		w.mu.Unlock()
		return nil
	}
	w.mCommits.Inc()
	if err := w.bw.Flush(); err != nil {
		w.mu.Unlock()
		return err
	}
	target := w.lastLSN
	switch w.opt.Policy {
	case FsyncAlways:
		w.mu.Unlock()
		return w.syncTo(target)
	case FsyncInterval:
		if time.Since(w.lastSync) >= w.opt.Interval {
			err := w.fsyncLocked()
			w.mu.Unlock()
			return err
		}
	}
	w.mu.Unlock()
	return nil
}

// syncTo blocks until a completed fsync covers target. At most one caller at
// a time — the leader — performs the fsync; followers wait on the
// group-commit condition until the leader's sync satisfies them.
func (w *Writer) syncTo(target uint64) error {
	w.gcMu.Lock()
	for {
		if w.syncedLSN >= target {
			w.gcMu.Unlock()
			return nil
		}
		if w.syncing {
			// A leader's fsync is in flight; it may or may not cover our
			// frames (they could have been appended after it captured the
			// file). Wait and re-check.
			w.gcCond.Wait()
			continue
		}
		w.syncing = true
		w.gcMu.Unlock()

		// Commit-window yield before capturing the flush horizon: runnable
		// committers get one scheduler pass to append and flush their frames,
		// so the fsync below covers them too (the same idea as PostgreSQL's
		// commit_delay, paid in one Gosched instead of a timed sleep — free
		// when nothing else is runnable). Matters most when cores are scarce:
		// followers otherwise never reach the wait queue before a fast fsync
		// completes, and every commit ends up fsyncing alone.
		runtime.Gosched()

		// Flush under mu, then fsync WITHOUT mu: while the leader's fsync
		// is in flight, other callers keep appending and flushing frames,
		// so the next leader's single fsync covers that whole window of
		// commits. Holding mu across the fsync would serialize appends
		// behind the disk and defeat the coalescing.
		w.mu.Lock()
		var err error
		closed := w.closed || w.f == nil
		var f *os.File
		var covered uint64
		doSync := false
		if !closed {
			if err = w.bw.Flush(); err == nil {
				f = w.f
				covered = w.lastLSN
				doSync = w.dirty
				// Claim the flushed tail: frames appended after this point
				// re-dirty the writer and wait for the next leader.
				w.dirty = false
			}
		}
		w.mu.Unlock()

		observe := false // covered came from a commit-path fsync
		advance := false // raise the horizon to covered
		if err == nil && !closed {
			if doSync {
				start := time.Now()
				if serr := f.Sync(); serr != nil {
					// A rotation seal or Close may have fsynced and closed
					// this segment while we held no lock; their unconditional
					// sync already made every flushed frame durable. Anything
					// else is a real fsync failure: re-dirty so the next
					// leader retries, and report it.
					w.mu.Lock()
					superseded := w.f != f || w.closed
					if !superseded {
						w.dirty = true
						err = serr
					}
					w.mu.Unlock()
					advance = superseded
				} else {
					w.hFsync.Observe(int64(time.Since(start)))
					advance, observe = true, true
				}
			} else {
				// Nothing unsynced: a previous fsync or a rotation seal
				// already covered the flushed tail.
				advance = true
			}
		}

		// Horizon advance and leadership release under one lock, with ONE
		// broadcast: satisfied followers return, unsatisfied ones race for
		// the next leadership. A separate advanceSynced would broadcast
		// twice and wake every waiter an extra time per fsync.
		w.gcMu.Lock()
		w.syncing = false
		if advance && covered > w.syncedLSN {
			if observe {
				w.hGroup.Observe(int64(covered - w.syncedLSN))
			}
			w.syncedLSN = covered
		}
		w.gcCond.Broadcast()
		if err != nil || closed {
			// Closed mirrors Commit's closed-writer contract (Close already
			// flushed and synced everything it could).
			w.gcMu.Unlock()
			return err
		}
		// Loop: the completed sync advanced syncedLSN to covered, which
		// includes target (we flushed it before calling syncTo).
	}
}

// Sync flushes and fsyncs regardless of policy.
func (w *Writer) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed || w.f == nil {
		return nil
	}
	if err := w.bw.Flush(); err != nil {
		return err
	}
	return w.fsyncLocked()
}

// fsyncLocked syncs the current segment (callers flush first, so every
// appended frame is on its way to the file) and advances the group-commit
// horizon to the last flushed LSN. Caller holds mu.
func (w *Writer) fsyncLocked() error {
	if w.dirty {
		start := time.Now()
		if err := w.f.Sync(); err != nil {
			return err
		}
		w.hFsync.Observe(int64(time.Since(start)))
		w.dirty = false
		w.lastSync = time.Now()
		w.advanceSynced(w.lastLSN, true)
		return nil
	}
	// Nothing unsynced: everything flushed is already durable (a previous
	// fsync, or a rotation's seal covered it), so the horizon still advances.
	w.advanceSynced(w.lastLSN, false)
	return nil
}

// advanceSynced raises the group-commit horizon and wakes commit waiters.
// observe=true marks a commit-path fsync, whose coalesced frame count feeds
// the journal_group_commit_entries histogram. Caller must not hold gcMu
// (mu is irrelevant here: the horizon is guarded by gcMu alone).
func (w *Writer) advanceSynced(lsn uint64, observe bool) {
	w.gcMu.Lock()
	if lsn > w.syncedLSN {
		if observe {
			w.hGroup.Observe(int64(lsn - w.syncedLSN))
		}
		w.syncedLSN = lsn
		w.gcCond.Broadcast()
	}
	w.gcMu.Unlock()
}

// backgroundSync bounds the unsynced tail under FsyncInterval even when no
// Commit arrives (e.g. traffic stops right after a burst).
func (w *Writer) backgroundSync() {
	defer w.syncWG.Done()
	t := time.NewTicker(w.opt.Interval)
	defer t.Stop()
	for {
		select {
		case <-w.stop:
			return
		case <-t.C:
			w.mu.Lock()
			if !w.closed && w.f != nil && w.dirty {
				err := w.bw.Flush()
				if err == nil {
					err = w.fsyncLocked()
				}
				if err != nil {
					// The tail stays dirty; the next Commit or tick retries.
					w.opt.Logger.Error("background fsync failed",
						"component", "journal", "error", err)
				}
			}
			w.mu.Unlock()
		}
	}
}

// rotateLocked seals the current segment (flush + fsync) and starts a new one
// whose first frame will be lsn.
func (w *Writer) rotateLocked(lsn uint64) error {
	if w.f != nil {
		if err := w.bw.Flush(); err != nil {
			return err
		}
		if err := w.f.Sync(); err != nil {
			return err
		}
		if err := w.f.Close(); err != nil {
			return err
		}
		w.dirty = false
		// The seal's sync made every flushed frame durable; commit waiters
		// covered by it need no further fsync. (Not observed in the
		// group-commit histogram — that tracks commit-path fsyncs only.)
		w.advanceSynced(w.lastLSN, false)
		w.mRotations.Inc()
	}
	path := filepath.Join(w.opt.Dir, segName(lsn))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if err := syncDir(w.opt.Dir); err != nil {
		f.Close()
		return err
	}
	w.f = f
	w.bw = bufio.NewWriterSize(f, 1<<16)
	w.size = 0
	w.segs = append(w.segs, segment{first: lsn, path: path})
	w.gSegments.Set(int64(len(w.segs)))
	w.opt.Logger.Debug("rotated journal segment",
		"component", "journal", "segment", segName(lsn), "first_lsn", lsn, "segments", len(w.segs))
	return nil
}

// TruncateBefore removes every segment whose frames all have LSN < lsn —
// the segments a snapshot at lsn-1 has made disposable. The active segment
// is never removed.
func (w *Writer) TruncateBefore(lsn uint64) (removed int, err error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	for len(w.segs) > 1 && w.segs[1].first <= lsn {
		if rmErr := os.Remove(w.segs[0].path); rmErr != nil && !os.IsNotExist(rmErr) {
			return removed, rmErr
		}
		w.segs = w.segs[1:]
		removed++
	}
	if removed > 0 {
		err = syncDir(w.opt.Dir)
		w.opt.Logger.Debug("truncated journal below snapshot",
			"component", "journal", "segments_removed", removed, "below_lsn", lsn)
	}
	w.gSegments.Set(int64(len(w.segs)))
	return removed, err
}

// Segments returns the number of live segment files.
func (w *Writer) Segments() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.segs)
}

// SealedSegmentsBelow returns the paths of every sealed segment whose frames
// all have LSN < lsn — exactly the segments TruncateBefore(lsn) would remove.
// The active segment is never included, so the returned files are immutable
// and safe to read (or compact) without holding the writer's lock.
func (w *Writer) SealedSegmentsBelow(lsn uint64) []string {
	w.mu.Lock()
	defer w.mu.Unlock()
	var paths []string
	for i := 0; i+1 < len(w.segs) && w.segs[i+1].first <= lsn; i++ {
		paths = append(paths, w.segs[i].path)
	}
	return paths
}

// ScanSegmentFile streams every valid frame of one segment file through fn
// in LSN order. A torn or corrupted tail ends the scan cleanly (the same
// tolerance Replay has); an error from fn aborts it. The frame count and
// the segment's first/last valid LSNs are returned (first==last==0 when the
// segment holds no valid frames).
func ScanSegmentFile(path string, fn func(lsn uint64, payload []byte) error) (frames int, firstLSN, lastLSN uint64, err error) {
	wrapped := func(lsn uint64, payload []byte) error {
		if frames == 0 {
			firstLSN = lsn
		}
		frames++
		if fn == nil {
			return nil
		}
		return fn(lsn, payload)
	}
	_, lastLSN, _, err = scanSegment(path, 0, wrapped)
	return frames, firstLSN, lastLSN, err
}

// Close flushes, fsyncs and closes the journal.
func (w *Writer) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	close(w.stop)
	var err error
	if w.f != nil {
		if ferr := w.bw.Flush(); ferr != nil {
			err = ferr
		}
		// Sync unconditionally (not just when dirty): a group-commit leader
		// fsyncing without mu may have claimed the dirty flag without having
		// completed — or succeeded in — its fsync yet. One extra no-op fsync
		// at close is cheaper than reasoning about that race.
		if serr := w.f.Sync(); serr != nil && err == nil {
			err = serr
		}
		if cerr := w.f.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	w.mu.Unlock()
	w.syncWG.Wait()
	return err
}

// ReplayResult summarizes a Replay pass.
type ReplayResult struct {
	// Frames is the number of frames delivered to the callback.
	Frames int
	// Bytes is the number of journal bytes scanned.
	Bytes int64
	// Torn reports whether the last segment ended in a truncated or
	// corrupted frame (the normal signature of a crash mid-append).
	Torn bool
	// LastLSN is the highest valid LSN seen (0 when the journal is empty).
	LastLSN uint64
}

// Replay streams every frame with LSN >= from through fn, in LSN order.
// Segments entirely below from are skipped without reading. A torn or
// corrupted tail ends the replay cleanly (Torn is set); an error from fn
// aborts it.
func Replay(dir string, from uint64, fn func(lsn uint64, payload []byte) error) (ReplayResult, error) {
	var res ReplayResult
	segs, err := listSegments(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return res, nil
		}
		return res, err
	}
	delivered := 0
	wrapped := func(lsn uint64, payload []byte) error {
		delivered++
		if fn == nil {
			return nil
		}
		return fn(lsn, payload)
	}
	for i, seg := range segs {
		// A segment is entirely below from when the next one starts at or
		// below from (frames are strictly increasing across segments).
		if i+1 < len(segs) && segs[i+1].first <= from {
			continue
		}
		valid, last, n, err := scanSegment(seg.path, from, wrapped)
		if err != nil {
			return res, err
		}
		res.Bytes += valid
		if n > 0 {
			res.LastLSN = last
		}
		if i == len(segs)-1 {
			if fi, err := os.Stat(seg.path); err == nil && fi.Size() > valid {
				res.Torn = true
			}
		}
	}
	res.Frames = delivered
	return res, nil
}

// scanSegment reads frames from one segment, calling fn (when non-nil) for
// every frame with lsn >= from. It returns the byte offset of the end of the
// last valid frame, the last valid LSN, and the number of valid frames
// scanned. A short or CRC-corrupted tail stops the scan without error.
func scanSegment(path string, from uint64, fn func(lsn uint64, payload []byte) error) (valid int64, lastLSN uint64, n int, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, 0, err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<16)
	var hdr [frameHeader]byte
	var payload []byte
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return valid, lastLSN, n, nil // clean EOF or torn header
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		wantCRC := binary.LittleEndian.Uint32(hdr[4:8])
		lsn := binary.LittleEndian.Uint64(hdr[8:16])
		if int(length) > cap(payload) {
			payload = make([]byte, length)
		}
		payload = payload[:length]
		if _, err := io.ReadFull(br, payload); err != nil {
			return valid, lastLSN, n, nil // torn payload
		}
		crc := crc32.Update(0, castagnoli, hdr[8:16])
		crc = crc32.Update(crc, castagnoli, payload)
		if crc != wantCRC {
			return valid, lastLSN, n, nil // corrupted frame: stop here
		}
		valid += frameHeader + int64(length)
		lastLSN = lsn
		n++
		if fn != nil && lsn >= from {
			if err := fn(lsn, payload); err != nil {
				return valid, lastLSN, n, err
			}
		}
	}
}

func segName(first uint64) string {
	return fmt.Sprintf("%s%016x%s", segPrefix, first, segSuffix)
}

func listSegments(dir string) ([]segment, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []segment
	for _, ent := range ents {
		name := ent.Name()
		if ent.IsDir() || !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		hexpart := strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix)
		first, err := strconv.ParseUint(hexpart, 16, 64)
		if err != nil {
			continue
		}
		segs = append(segs, segment{first: first, path: filepath.Join(dir, name)})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].first < segs[j].first })
	return segs, nil
}

// syncDir fsyncs a directory so renames and creations in it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
