// Entry codec: the journal stores opaque frames; the ingestion daemon's
// frames are log entries in a compact binary form. The sequence number is
// encoded in the payload (it is the daemon's global arrival order, distinct
// from the journal LSN), timestamps keep full nanosecond precision, and
// strings are length-prefixed so statements may contain anything.
package journal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"sqlclean/internal/logmodel"
)

// EncodeEntry appends the wire form of e to dst and returns the result.
func EncodeEntry(dst []byte, e logmodel.Entry) []byte {
	dst = binary.AppendVarint(dst, e.Seq)
	dst = binary.AppendVarint(dst, e.Time.UnixNano())
	dst = binary.AppendVarint(dst, e.Rows)
	dst = appendString(dst, e.User)
	dst = appendString(dst, e.Session)
	dst = appendString(dst, e.Statement)
	return dst
}

// AppendBatch frames a batch of entries — one frame per entry, identical to
// Append(EncodeEntry(nil, e)) for each — under a single lock acquisition,
// encoding into the writer's reused scratch buffer so the accept path pays no
// per-entry payload allocation. Frames are buffered like Append's; call
// Commit before acknowledging them.
//
// On an I/O error mid-batch it returns how many leading entries were framed:
// the journal holds exactly that prefix, so the caller can acknowledge it and
// refuse the rest. The last framed LSN is returned for batch bookkeeping
// (meaningful when appended > 0).
func (w *Writer) AppendBatch(entries []logmodel.Entry) (appended int, lastLSN uint64, err error) {
	if len(entries) == 0 {
		return 0, 0, nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return 0, 0, errors.New("journal: writer closed")
	}
	for _, e := range entries {
		w.encBuf = EncodeEntry(w.encBuf[:0], e)
		lsn, err := w.appendFrameLocked(w.encBuf)
		if err != nil {
			return appended, lastLSN, err
		}
		appended++
		lastLSN = lsn
	}
	return appended, lastLSN, nil
}

// DecodeEntry parses a payload written by EncodeEntry.
func DecodeEntry(data []byte) (logmodel.Entry, error) {
	var e logmodel.Entry
	var ns int64
	var err error
	if e.Seq, data, err = readVarint(data); err != nil {
		return e, fmt.Errorf("journal: entry seq: %w", err)
	}
	if ns, data, err = readVarint(data); err != nil {
		return e, fmt.Errorf("journal: entry time: %w", err)
	}
	e.Time = time.Unix(0, ns).UTC()
	if e.Rows, data, err = readVarint(data); err != nil {
		return e, fmt.Errorf("journal: entry rows: %w", err)
	}
	if e.User, data, err = readString(data); err != nil {
		return e, fmt.Errorf("journal: entry user: %w", err)
	}
	if e.Session, data, err = readString(data); err != nil {
		return e, fmt.Errorf("journal: entry session: %w", err)
	}
	if e.Statement, data, err = readString(data); err != nil {
		return e, fmt.Errorf("journal: entry statement: %w", err)
	}
	if len(data) != 0 {
		return e, fmt.Errorf("journal: %d trailing bytes after entry", len(data))
	}
	return e, nil
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

var errShort = errors.New("short payload")

func readVarint(data []byte) (int64, []byte, error) {
	v, n := binary.Varint(data)
	if n <= 0 {
		return 0, nil, errShort
	}
	return v, data[n:], nil
}

func readString(data []byte) (string, []byte, error) {
	l, n := binary.Uvarint(data)
	if n <= 0 || uint64(len(data)-n) < l {
		return "", nil, errShort
	}
	return string(data[n : n+int(l)]), data[n+int(l):], nil
}
