// Package schema provides the database catalog the framework consults when
// classifying antipatterns. Definition 11 of the paper requires the Stifle's
// filter column to be a key attribute, which can only be decided against a
// schema. The catalog also records foreign-key links, used by the DF-Stifle
// rewriter to join tables that share a key.
package schema

import (
	"fmt"
	"sort"
	"strings"
)

// Column describes one column of a table.
type Column struct {
	Name string
	// Type is a coarse type tag: "int", "float", "string". Used by the
	// in-memory engine, not by detection.
	Type string
	// Key marks primary-key columns and columns that uniquely identify a
	// row (the paper's "key attributes").
	Key bool
}

// Table describes one table.
type Table struct {
	Name    string
	Columns []Column
	byName  map[string]int
}

// Column returns the column with the given (case-insensitive) name.
func (t *Table) Column(name string) (Column, bool) {
	i, ok := t.byName[strings.ToLower(name)]
	if !ok {
		return Column{}, false
	}
	return t.Columns[i], true
}

// KeyColumns returns the names of this table's key columns.
func (t *Table) KeyColumns() []string {
	var out []string
	for _, c := range t.Columns {
		if c.Key {
			out = append(out, c.Name)
		}
	}
	return out
}

// Catalog is a set of tables plus key metadata. The zero value is unusable;
// construct with New.
type Catalog struct {
	tables map[string]*Table
}

// New returns an empty catalog.
func New() *Catalog { return &Catalog{tables: map[string]*Table{}} }

// AddTable registers a table. Column and table names are matched
// case-insensitively. Adding a table that already exists replaces it.
func (c *Catalog) AddTable(name string, cols ...Column) *Table {
	t := &Table{Name: name, Columns: cols, byName: map[string]int{}}
	for i, col := range cols {
		t.byName[strings.ToLower(col.Name)] = i
	}
	c.tables[strings.ToLower(name)] = t
	return t
}

// Table returns the named table.
func (c *Catalog) Table(name string) (*Table, bool) {
	t, ok := c.tables[strings.ToLower(name)]
	return t, ok
}

// TableNames returns all table names, sorted.
func (c *Catalog) TableNames() []string {
	out := make([]string, 0, len(c.tables))
	for _, t := range c.tables {
		out = append(out, t.Name)
	}
	sort.Strings(out)
	return out
}

// IsKey reports whether column is a key attribute of the named table.
func (c *Catalog) IsKey(table, column string) bool {
	t, ok := c.Table(table)
	if !ok {
		return false
	}
	col, ok := t.Column(column)
	return ok && col.Key
}

// IsKeyInAny reports whether column is a key attribute in at least one of
// the given tables. Queries often leave columns unqualified, so the Stifle
// detector asks this weaker question over the statement's referenced tables.
// With an empty table list it falls back to scanning the whole catalog.
func (c *Catalog) IsKeyInAny(column string, tables []string) bool {
	if len(tables) == 0 {
		for _, t := range c.tables {
			if col, ok := t.Column(column); ok && col.Key {
				return true
			}
		}
		return false
	}
	for _, name := range tables {
		if c.IsKey(name, column) {
			return true
		}
	}
	return false
}

// SharedKey returns a key column present in every one of the given tables,
// if any — the join column the DF-Stifle rewriter uses. Deterministic: the
// lexicographically smallest such column wins.
func (c *Catalog) SharedKey(tables []string) (string, bool) {
	if len(tables) == 0 {
		return "", false
	}
	first, ok := c.Table(tables[0])
	if !ok {
		return "", false
	}
	var candidates []string
	for _, col := range first.Columns {
		if !col.Key {
			continue
		}
		inAll := true
		for _, other := range tables[1:] {
			t, ok := c.Table(other)
			if !ok {
				inAll = false
				break
			}
			if _, ok := t.Column(col.Name); !ok {
				inAll = false
				break
			}
		}
		if inAll {
			candidates = append(candidates, strings.ToLower(col.Name))
		}
	}
	if len(candidates) == 0 {
		return "", false
	}
	sort.Strings(candidates)
	return candidates[0], true
}

// Validate checks internal consistency (duplicate columns, empty tables) and
// returns a descriptive error for the first problem found.
func (c *Catalog) Validate() error {
	for name, t := range c.tables {
		if len(t.Columns) == 0 {
			return fmt.Errorf("schema: table %s has no columns", name)
		}
		seen := map[string]bool{}
		for _, col := range t.Columns {
			lc := strings.ToLower(col.Name)
			if seen[lc] {
				return fmt.Errorf("schema: table %s has duplicate column %s", name, col.Name)
			}
			seen[lc] = true
		}
	}
	return nil
}
