package schema

import (
	"strings"
	"testing"
)

func demo() *Catalog {
	c := New()
	c.AddTable("Employee",
		Column{Name: "empId", Type: "int", Key: true},
		Column{Name: "name", Type: "string"},
	)
	c.AddTable("EmployeeInfo",
		Column{Name: "empId", Type: "int", Key: true},
		Column{Name: "address", Type: "string"},
	)
	c.AddTable("Orders",
		Column{Name: "orderId", Type: "int", Key: true},
		Column{Name: "empId", Type: "int"},
	)
	return c
}

func TestTableLookupIsCaseInsensitive(t *testing.T) {
	c := demo()
	for _, name := range []string{"employee", "EMPLOYEE", "Employee"} {
		if _, ok := c.Table(name); !ok {
			t.Errorf("lookup %q failed", name)
		}
	}
	if _, ok := c.Table("nope"); ok {
		t.Error("unknown table found")
	}
}

func TestColumnLookup(t *testing.T) {
	c := demo()
	tbl, _ := c.Table("employee")
	col, ok := tbl.Column("EMPID")
	if !ok || !col.Key {
		t.Errorf("column: %+v ok=%v", col, ok)
	}
	if _, ok := tbl.Column("ghost"); ok {
		t.Error("unknown column found")
	}
}

func TestIsKey(t *testing.T) {
	c := demo()
	if !c.IsKey("employee", "empid") {
		t.Error("empid is a key of employee")
	}
	if c.IsKey("orders", "empid") {
		t.Error("empid is not a key of orders")
	}
	if c.IsKey("ghost", "empid") {
		t.Error("unknown table cannot have keys")
	}
}

func TestIsKeyInAny(t *testing.T) {
	c := demo()
	if !c.IsKeyInAny("empid", []string{"orders", "employee"}) {
		t.Error("empid is a key in employee")
	}
	if c.IsKeyInAny("empid", []string{"orders"}) {
		t.Error("empid is not a key in orders alone")
	}
	// Empty table list falls back to whole-catalog search.
	if !c.IsKeyInAny("orderid", nil) {
		t.Error("orderid is a key somewhere")
	}
	if c.IsKeyInAny("address", nil) {
		t.Error("address is never a key")
	}
}

func TestSharedKey(t *testing.T) {
	c := demo()
	k, ok := c.SharedKey([]string{"employee", "employeeinfo"})
	if !ok || k != "empid" {
		t.Errorf("got %q ok=%v", k, ok)
	}
	// orders has empid as a column but employee's keys must exist in all.
	k, ok = c.SharedKey([]string{"employee", "orders"})
	if !ok || k != "empid" {
		t.Errorf("employee+orders: got %q ok=%v", k, ok)
	}
	if _, ok := c.SharedKey([]string{"orders", "employeeinfo"}); ok {
		// orders' key is orderid, not present in employeeinfo.
		t.Error("no shared key expected")
	}
	if _, ok := c.SharedKey(nil); ok {
		t.Error("empty table list has no shared key")
	}
	if _, ok := c.SharedKey([]string{"ghost", "employee"}); ok {
		t.Error("unknown table has no shared key")
	}
}

func TestKeyColumns(t *testing.T) {
	c := demo()
	tbl, _ := c.Table("employee")
	keys := tbl.KeyColumns()
	if len(keys) != 1 || keys[0] != "empId" {
		t.Errorf("keys: %v", keys)
	}
}

func TestTableNamesSorted(t *testing.T) {
	c := demo()
	names := c.TableNames()
	if len(names) != 3 {
		t.Fatalf("names: %v", names)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] > names[i] {
			t.Errorf("not sorted: %v", names)
		}
	}
}

func TestValidate(t *testing.T) {
	c := demo()
	if err := c.Validate(); err != nil {
		t.Errorf("valid catalog rejected: %v", err)
	}
	c.AddTable("broken")
	if err := c.Validate(); err == nil || !strings.Contains(err.Error(), "no columns") {
		t.Errorf("want no-columns error, got %v", err)
	}
	c2 := New()
	c2.AddTable("dup", Column{Name: "a"}, Column{Name: "A"})
	if err := c2.Validate(); err == nil || !strings.Contains(err.Error(), "duplicate column") {
		t.Errorf("want duplicate-column error, got %v", err)
	}
}

func TestAddTableReplaces(t *testing.T) {
	c := demo()
	c.AddTable("employee", Column{Name: "only", Type: "int"})
	tbl, _ := c.Table("employee")
	if len(tbl.Columns) != 1 || tbl.Columns[0].Name != "only" {
		t.Errorf("replace failed: %+v", tbl.Columns)
	}
}

func TestSkyServerCatalog(t *testing.T) {
	c := SkyServer()
	if err := c.Validate(); err != nil {
		t.Fatalf("SkyServer catalog invalid: %v", err)
	}
	if !c.IsKey("photoprimary", "objid") {
		t.Error("objid must be a key of photoprimary")
	}
	if !c.IsKey("dbobjects", "name") {
		t.Error("name must be a key of dbobjects")
	}
	k, ok := c.SharedKey([]string{"photoprimary", "photoobjall"})
	if !ok || k != "objid" {
		t.Errorf("shared key: %q ok=%v", k, ok)
	}
	// The paper's HR running example must be covered too.
	if !c.IsKey("employees", "id") || !c.IsKey("employees", "empid") {
		t.Error("employees keys missing")
	}
}
