package schema

// SkyServer returns a catalog modeled on the subset of the SDSS SkyServer
// schema that the paper's case study touches: the photometric object tables
// (photoprimary, photoobjall), the spectroscopic tables (specobj,
// specobjall), metadata tables (dbobjects) and the HR-style demo tables used
// in the paper's running example (Employees, Orders).
func SkyServer() *Catalog {
	c := New()
	photoCols := []Column{
		{Name: "objid", Type: "int", Key: true},
		{Name: "ra", Type: "float"},
		{Name: "dec", Type: "float"},
		{Name: "r", Type: "float"},
		{Name: "g", Type: "float"},
		{Name: "i", Type: "float"},
		{Name: "u", Type: "float"},
		{Name: "z", Type: "float"},
		{Name: "rowc_g", Type: "float"},
		{Name: "colc_g", Type: "float"},
		{Name: "rowc_r", Type: "float"},
		{Name: "colc_r", Type: "float"},
		{Name: "rowc_i", Type: "float"},
		{Name: "colc_i", Type: "float"},
		{Name: "htmid", Type: "int"},
		{Name: "type", Type: "int"},
		{Name: "flags", Type: "int"},
		{Name: "status", Type: "int"},
	}
	c.AddTable("photoprimary", photoCols...)
	c.AddTable("photoobjall", photoCols...)
	c.AddTable("galaxy", photoCols...)
	c.AddTable("star", photoCols...)

	specCols := []Column{
		{Name: "specobjid", Type: "int", Key: true},
		{Name: "bestobjid", Type: "int", Key: true},
		{Name: "plate", Type: "int"},
		{Name: "fiberid", Type: "int"},
		{Name: "mjd", Type: "int"},
		{Name: "z", Type: "float"},
		{Name: "zerr", Type: "float"},
		{Name: "class", Type: "string"},
	}
	c.AddTable("specobj", specCols...)
	c.AddTable("specobjall", specCols...)

	// Photometric detail and cross-match tables real logs touch.
	c.AddTable("photoobj", photoCols...)
	c.AddTable("specphotoall", append(append([]Column{}, specCols...),
		Column{Name: "objid", Type: "int", Key: true},
		Column{Name: "ra", Type: "float"},
		Column{Name: "dec", Type: "float"},
	)...)
	c.AddTable("neighbors",
		Column{Name: "objid", Type: "int", Key: true},
		Column{Name: "neighborobjid", Type: "int", Key: true},
		Column{Name: "distance", Type: "float"},
		Column{Name: "type", Type: "int"},
		Column{Name: "neighbortype", Type: "int"},
	)
	c.AddTable("field",
		Column{Name: "fieldid", Type: "int", Key: true},
		Column{Name: "run", Type: "int"},
		Column{Name: "rerun", Type: "int"},
		Column{Name: "camcol", Type: "int"},
		Column{Name: "field", Type: "int"},
		Column{Name: "ra", Type: "float"},
		Column{Name: "dec", Type: "float"},
	)
	c.AddTable("platex",
		Column{Name: "plateid", Type: "int", Key: true},
		Column{Name: "plate", Type: "int"},
		Column{Name: "mjd", Type: "int"},
		Column{Name: "ra", Type: "float"},
		Column{Name: "dec", Type: "float"},
	)
	c.AddTable("first",
		Column{Name: "objid", Type: "int", Key: true},
		Column{Name: "peak", Type: "float"},
		Column{Name: "integr", Type: "float"},
	)
	c.AddTable("rosat",
		Column{Name: "objid", Type: "int", Key: true},
		Column{Name: "cps", Type: "float"},
		Column{Name: "hard1", Type: "float"},
	)
	c.AddTable("usno",
		Column{Name: "objid", Type: "int", Key: true},
		Column{Name: "propermotion", Type: "float"},
		Column{Name: "angle", Type: "float"},
	)

	c.AddTable("dbobjects",
		Column{Name: "name", Type: "string", Key: true},
		Column{Name: "type", Type: "string"},
		Column{Name: "access", Type: "string"},
		Column{Name: "description", Type: "string"},
		Column{Name: "text", Type: "string"},
	)

	c.AddTable("employees",
		Column{Name: "empid", Type: "int", Key: true},
		Column{Name: "id", Type: "int", Key: true},
		Column{Name: "name", Type: "string"},
		Column{Name: "surname", Type: "string"},
		Column{Name: "birthday", Type: "string"},
		Column{Name: "phone", Type: "string"},
		Column{Name: "department", Type: "string"},
	)
	c.AddTable("orders",
		Column{Name: "orderid", Type: "int", Key: true},
		Column{Name: "empid", Type: "int", Key: true},
		Column{Name: "orders", Type: "int"},
	)
	return c
}
