// Package rewrite implements the solving solutions of the paper (§4.2,
// §5.5): DW-Stifle instances become a single query with an IN list
// (Example 10), DS-Stifle instances a single query with the union of the
// select lists (Example 12), DF-Stifle instances one join query over the
// shared key (Example 14), and SNC comparisons become IS [NOT] NULL. CTH
// candidates have no solving solution and are left in place.
package rewrite

import (
	"fmt"

	"sqlclean/internal/antipattern"
	"sqlclean/internal/logmodel"
	"sqlclean/internal/parsedlog"
	"sqlclean/internal/schema"
	"sqlclean/internal/sqlast"
)

// Solver rewrites instances of one antipattern kind into a single statement.
type Solver interface {
	Kind() antipattern.Kind
	// Solve produces the replacement statement for the instance. It must
	// not mutate the shared ASTs in the parsed log.
	Solve(pl parsedlog.Log, inst antipattern.Instance) (string, error)
}

// Stats reports what Apply did, per antipattern kind.
type Stats struct {
	Kind antipattern.Kind
	// Solved counts instances successfully rewritten.
	Solved int
	// Failed counts instances whose solver returned an error; their
	// queries stay in the clean log untouched.
	Failed int
	// QueriesBefore and QueriesAfter count member statements before and
	// after rewriting solved instances.
	QueriesBefore, QueriesAfter int
}

// Replacement records one solved instance: the statement that replaced its
// member queries and where it sits in the clean log.
type Replacement struct {
	Kind antipattern.Kind
	// CleanIndex is the position of the replacement in Result.Clean.
	CleanIndex int
	// Statement is the solved SQL text.
	Statement string
	// Replaced is the number of original queries it stands for.
	Replaced int
}

// Result is the outcome of one Apply pass.
type Result struct {
	// Clean is the log with solvable antipattern instances rewritten.
	Clean logmodel.Log
	// Removal is the log with every antipattern instance's queries removed
	// entirely (including unsolvable kinds such as CTH) — the "removal"
	// variant of the paper's §6.9 experiment.
	Removal logmodel.Log
	// Stats aggregates per kind, ordered by kind name as produced.
	Stats []Stats
	// Replacements lists every solved instance in clean-log order.
	Replacements []Replacement
}

// DefaultSolvers returns the solvers for the built-in solvable kinds.
func DefaultSolvers(cat *schema.Catalog) []Solver {
	return []Solver{
		&DWSolver{},
		&DSSolver{},
		&DFSolver{Catalog: cat},
		&SNCSolver{},
	}
}

// Apply rewrites the parsed log: each solvable instance is replaced by its
// solved statement at the position of its first member; unsolvable-instance
// members stay. Overlapping solvable instances are applied in log order
// (first come, first solved); an instance overlapping an already-solved one
// is skipped and left untouched.
func Apply(pl parsedlog.Log, instances []antipattern.Instance, solvers []Solver) Result {
	byKind := map[antipattern.Kind]Solver{}
	for _, s := range solvers {
		byKind[s.Kind()] = s
	}

	type replacement struct {
		stmt     string
		rows     int64
		kind     antipattern.Kind
		replaced int
	}
	replaceAt := map[int]replacement{} // first index -> replacement
	drop := make([]bool, len(pl))      // true: entry consumed by a solved instance
	inAnti := make([]bool, len(pl))    // member of any antipattern instance
	statsByKind := map[antipattern.Kind]*Stats{}
	var kindOrder []antipattern.Kind

	stat := func(k antipattern.Kind) *Stats {
		s, ok := statsByKind[k]
		if !ok {
			s = &Stats{Kind: k}
			statsByKind[k] = s
			kindOrder = append(kindOrder, k)
		}
		return s
	}

	for _, inst := range instances {
		for _, idx := range inst.Indices {
			inAnti[idx] = true
		}
		if !inst.Solvable {
			continue
		}
		solver, ok := byKind[inst.Kind]
		if !ok {
			continue
		}
		// Solving proceeds in log order (§5.5); skip instances that touch
		// an already-consumed entry.
		overlap := false
		for _, idx := range inst.Indices {
			if drop[idx] || replaceAt[idx].stmt != "" {
				overlap = true
				break
			}
		}
		s := stat(inst.Kind)
		if overlap {
			continue
		}
		stmt, err := solver.Solve(pl, inst)
		if err != nil {
			s.Failed++
			continue
		}
		s.Solved++
		s.QueriesBefore += len(inst.Indices)
		s.QueriesAfter++
		rows := sumRows(pl, inst.Indices)
		replaceAt[inst.Indices[0]] = replacement{stmt: stmt, rows: rows, kind: inst.Kind, replaced: len(inst.Indices)}
		for _, idx := range inst.Indices[1:] {
			drop[idx] = true
		}
	}

	res := Result{}
	for i, e := range pl {
		if r, ok := replaceAt[i]; ok {
			ne := e.Entry
			ne.Statement = r.stmt
			ne.Rows = r.rows
			res.Replacements = append(res.Replacements, Replacement{
				Kind:       r.kind,
				CleanIndex: len(res.Clean),
				Statement:  r.stmt,
				Replaced:   r.replaced,
			})
			res.Clean = append(res.Clean, ne)
			continue
		}
		if drop[i] {
			continue
		}
		res.Clean = append(res.Clean, e.Entry)
	}
	for i, e := range pl {
		if !inAnti[i] {
			res.Removal = append(res.Removal, e.Entry)
		}
	}
	for _, k := range kindOrder {
		res.Stats = append(res.Stats, *statsByKind[k])
	}
	return res
}

func sumRows(pl parsedlog.Log, idxs []int) int64 {
	var total int64
	for _, i := range idxs {
		if pl[i].Rows < 0 {
			return -1
		}
		total += pl[i].Rows
	}
	return total
}

var printOpts = sqlast.PrintOptions{} // preserve original identifier case

func errInstance(inst antipattern.Instance, format string, args ...any) error {
	return fmt.Errorf("rewrite %s (%d queries): %s", inst.Kind, len(inst.Indices), fmt.Sprintf(format, args...))
}
