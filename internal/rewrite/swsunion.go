package rewrite

import (
	"fmt"
	"strconv"

	"sqlclean/internal/skeleton"
	"sqlclean/internal/sqlast"
)

// UnionTemplate implements §6.5's alternative to excluding sliding-window
// search traffic: "a union of the filtering conditions, i.e., replacing all
// these queries with one that yields the same result". For a template whose
// occurrences sweep numeric ranges (>=, >, <=, <, BETWEEN over the same
// columns), the union query keeps the first occurrence's shape and widens
// every range bound to the hull over all occurrences.
//
// It fails for templates whose filters are not numeric ranges (equality
// sweeps have no contiguous union).
func UnionTemplate(infos []*skeleton.Info) (string, error) {
	if len(infos) == 0 {
		return "", fmt.Errorf("rewrite: union of zero queries")
	}
	first := infos[0]

	// Hull per (column, role): role "lo" for lower bounds, "hi" for upper.
	type bound struct {
		val float64
		set bool
	}
	lo := map[string]bound{}
	hi := map[string]bound{}
	update := func(m map[string]bound, col string, v float64, better func(a, b float64) bool) {
		b := m[col]
		if !b.set || better(v, b.val) {
			m[col] = bound{val: v, set: true}
		}
	}
	less := func(a, b float64) bool { return a < b }
	more := func(a, b float64) bool { return a > b }

	for _, in := range infos {
		if in.Fingerprint != first.Fingerprint {
			return "", fmt.Errorf("rewrite: union across different templates")
		}
		for _, p := range in.Predicates {
			switch p.Op {
			case ">=", ">":
				v, err := oneNum(p)
				if err != nil {
					return "", err
				}
				update(lo, p.Column, v, less)
			case "<=", "<":
				v, err := oneNum(p)
				if err != nil {
					return "", err
				}
				update(hi, p.Column, v, more)
			case "BETWEEN":
				if len(p.Literals) != 2 {
					return "", fmt.Errorf("rewrite: BETWEEN without two literals")
				}
				a, errA := num(p.Literals[0])
				b, errB := num(p.Literals[1])
				if errA != nil || errB != nil {
					return "", fmt.Errorf("rewrite: non-numeric BETWEEN bounds")
				}
				update(lo, p.Column, a, less)
				update(hi, p.Column, b, more)
			default:
				return "", fmt.Errorf("rewrite: %s predicates have no contiguous union", p.Op)
			}
		}
	}

	// Rewrite the first statement's WHERE with the hull bounds.
	stmt := sqlast.CloneSelect(first.Stmt)
	if stmt.Where != nil {
		var rewriteBounds func(e sqlast.Expr) error
		rewriteBounds = func(e sqlast.Expr) error {
			switch x := e.(type) {
			case *sqlast.BinaryExpr:
				if x.Op == "AND" || x.Op == "OR" {
					if err := rewriteBounds(x.Left); err != nil {
						return err
					}
					return rewriteBounds(x.Right)
				}
				col, okC := x.Left.(*sqlast.ColumnRef)
				lit, okL := x.Right.(*sqlast.Literal)
				if !okC || !okL {
					return nil
				}
				name := lowerName(col)
				switch x.Op {
				case ">=", ">":
					if b, ok := lo[name]; ok && b.set {
						lit.Val = formatNum(b.val)
					}
				case "<=", "<":
					if b, ok := hi[name]; ok && b.set {
						lit.Val = formatNum(b.val)
					}
				}
			case *sqlast.BetweenExpr:
				col, okC := x.X.(*sqlast.ColumnRef)
				if !okC {
					return nil
				}
				name := lowerName(col)
				if b, ok := lo[name]; ok && b.set {
					if l, isLit := x.Lo.(*sqlast.Literal); isLit {
						l.Val = formatNum(b.val)
					}
				}
				if b, ok := hi[name]; ok && b.set {
					if l, isLit := x.Hi.(*sqlast.Literal); isLit {
						l.Val = formatNum(b.val)
					}
				}
			case *sqlast.ParenExpr:
				return rewriteBounds(x.X)
			}
			return nil
		}
		if err := rewriteBounds(stmt.Where); err != nil {
			return "", err
		}
	}
	return sqlast.Print(stmt, printOpts), nil
}

func oneNum(p skeleton.Predicate) (float64, error) {
	if len(p.Literals) != 1 {
		return 0, fmt.Errorf("rewrite: predicate on %s lacks a literal bound", p.Column)
	}
	return num(p.Literals[0])
}

func num(l sqlast.Literal) (float64, error) {
	if l.Kind != "num" {
		return 0, fmt.Errorf("rewrite: non-numeric bound %q", l.Val)
	}
	v, err := strconv.ParseFloat(l.Val, 64)
	if err != nil {
		return 0, fmt.Errorf("rewrite: bad numeric bound %q", l.Val)
	}
	return v, nil
}

func formatNum(v float64) string { return strconv.FormatFloat(v, 'f', -1, 64) }

func lowerName(c *sqlast.ColumnRef) string {
	out := make([]byte, len(c.Name))
	for i := 0; i < len(c.Name); i++ {
		ch := c.Name[i]
		if ch >= 'A' && ch <= 'Z' {
			ch += 'a' - 'A'
		}
		out[i] = ch
	}
	return string(out)
}
