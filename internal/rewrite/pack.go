package rewrite

import (
	"strings"

	"sqlclean/internal/antipattern"
	"sqlclean/internal/parsedlog"
)

// PackSolver implements the Pack refactoring of the paper's §3.1.1
// (Example 6): instead of merging an antipattern instance into one
// equivalent query, it concatenates the member statements into a single
// semicolon-separated batch. Packing removes the per-statement network
// overhead but — as the paper points out — "still requires the same amount
// of database resources": the server executes every member. It is provided
// as the comparison baseline for the merge rewrites (see
// BenchmarkAblationPackVsMerge); the pipeline uses the merge solvers by
// default.
type PackSolver struct {
	kind antipattern.Kind
}

// NewPackSolver returns a PackSolver handling the given antipattern kind.
func NewPackSolver(kind antipattern.Kind) *PackSolver { return &PackSolver{kind: kind} }

// PackSolvers returns pack solvers for every solvable Stifle class.
func PackSolvers() []Solver {
	return []Solver{
		NewPackSolver(antipattern.DWStifle),
		NewPackSolver(antipattern.DSStifle),
		NewPackSolver(antipattern.DFStifle),
	}
}

// Kind implements Solver.
func (p *PackSolver) Kind() antipattern.Kind { return p.kind }

// Solve implements Solver: the batch is the member statements joined by
// "; " in log order.
func (p *PackSolver) Solve(pl parsedlog.Log, inst antipattern.Instance) (string, error) {
	if len(inst.Indices) == 0 {
		return "", errInstance(inst, "empty instance")
	}
	parts := make([]string, 0, len(inst.Indices))
	for _, idx := range inst.Indices {
		parts = append(parts, strings.TrimSuffix(strings.TrimSpace(pl[idx].Statement), ";"))
	}
	return strings.Join(parts, "; "), nil
}
