package rewrite

import (
	"sqlclean/internal/antipattern"
	"sqlclean/internal/parsedlog"
	"sqlclean/internal/schema"
	"sqlclean/internal/sqlast"
)

// ImplicitColumnsSolver expands SELECT * into the catalog's column list for
// the antipattern.ImplicitColumns rule.
type ImplicitColumnsSolver struct {
	Catalog *schema.Catalog
}

// Kind implements Solver.
func (*ImplicitColumnsSolver) Kind() antipattern.Kind { return antipattern.ImplicitColumns }

// Solve implements Solver.
func (s *ImplicitColumnsSolver) Solve(pl parsedlog.Log, inst antipattern.Instance) (string, error) {
	in := pl[inst.Indices[0]].Info
	if in == nil || len(in.Stmt.From) != 1 {
		return "", errInstance(inst, "not a single-table select")
	}
	tr, ok := in.Stmt.From[0].(*sqlast.TableRef)
	if !ok {
		return "", errInstance(inst, "FROM entry is not a base table")
	}
	table, ok := s.Catalog.Table(tr.Name)
	if !ok {
		return "", errInstance(inst, "table %s not in catalog", tr.Name)
	}
	stmt := sqlast.CloneSelect(in.Stmt)
	stmt.Items = stmt.Items[:0]
	for _, c := range table.Columns {
		stmt.Items = append(stmt.Items, sqlast.SelectItem{Expr: &sqlast.ColumnRef{Name: c.Name}})
	}
	return sqlast.Print(stmt, printOpts), nil
}

// ExtraSolvers returns the solvers matching antipattern.ExtraRules.
func ExtraSolvers(cat *schema.Catalog) []Solver {
	return []Solver{&ImplicitColumnsSolver{Catalog: cat}}
}
