package rewrite

import (
	"strings"
	"testing"
	"time"

	"sqlclean/internal/antipattern"
	"sqlclean/internal/logmodel"
	"sqlclean/internal/parsedlog"
	"sqlclean/internal/schema"
	"sqlclean/internal/session"
	"sqlclean/internal/skeleton"
	"sqlclean/internal/sqlparser"
)

func demoCatalog() *schema.Catalog {
	c := schema.New()
	c.AddTable("employee",
		schema.Column{Name: "empid", Type: "int", Key: true},
		schema.Column{Name: "name", Type: "string"},
		schema.Column{Name: "surname", Type: "string"},
		schema.Column{Name: "address", Type: "string"},
	)
	c.AddTable("employeeinfo",
		schema.Column{Name: "empid", Type: "int", Key: true},
		schema.Column{Name: "address", Type: "string"},
		schema.Column{Name: "phone", Type: "string"},
	)
	return c
}

func parseLog(t *testing.T, stmts ...string) (parsedlog.Log, []antipattern.Instance) {
	t.Helper()
	base := time.Date(2003, 6, 1, 0, 0, 0, 0, time.UTC)
	var l logmodel.Log
	for i, s := range stmts {
		l = append(l, logmodel.Entry{Seq: int64(i), Time: base.Add(time.Duration(i) * time.Second), User: "u", Rows: 1, Statement: s})
	}
	pl, _ := parsedlog.Parse(l)
	sess := session.Build(l, session.Options{})
	reg := antipattern.DefaultRegistry(demoCatalog(), antipattern.DefaultOptions())
	return pl, reg.Detect(pl, sess)
}

func solveOne(t *testing.T, kind antipattern.Kind, stmts ...string) string {
	t.Helper()
	pl, instances := parseLog(t, stmts...)
	for _, inst := range instances {
		if inst.Kind != kind {
			continue
		}
		for _, s := range DefaultSolvers(demoCatalog()) {
			if s.Kind() == kind {
				out, err := s.Solve(pl, inst)
				if err != nil {
					t.Fatalf("solve: %v", err)
				}
				return out
			}
		}
	}
	t.Fatalf("no %s instance detected in %v", kind, stmts)
	return ""
}

func TestDWSolveExample10(t *testing.T) {
	// Paper Example 9 → Example 10.
	got := solveOne(t, antipattern.DWStifle,
		"SELECT name FROM Employee WHERE empId = 8",
		"SELECT name FROM Employee WHERE empId = 1",
	)
	want := "SELECT empId, name FROM Employee WHERE empId IN (8, 1)"
	if got != want {
		t.Errorf("got %q, want %q", got, want)
	}
}

func TestDWSolveDeduplicatesValues(t *testing.T) {
	got := solveOne(t, antipattern.DWStifle,
		"SELECT name FROM Employee WHERE empId = 8",
		"SELECT name FROM Employee WHERE empId = 1",
		"SELECT name FROM Employee WHERE empId = 8",
	)
	if strings.Count(got, "8") != 1 {
		t.Errorf("duplicate values in IN list: %q", got)
	}
}

func TestDWSolveKeepsExistingFilterColumn(t *testing.T) {
	got := solveOne(t, antipattern.DWStifle,
		"SELECT empId, name FROM Employee WHERE empId = 8",
		"SELECT empId, name FROM Employee WHERE empId = 9",
	)
	if strings.Count(strings.ToLower(got), "empid,") != 1 {
		t.Errorf("filter column duplicated: %q", got)
	}
}

func TestDWSolveStringValues(t *testing.T) {
	// String-keyed tables (like SkyServer's DBObjects) merge into an IN
	// list of quoted strings.
	cat := schema.New()
	cat.AddTable("dbobjects",
		schema.Column{Name: "name", Type: "string", Key: true},
		schema.Column{Name: "description", Type: "string"},
	)
	base := time.Date(2003, 6, 1, 0, 0, 0, 0, time.UTC)
	l := logmodel.Log{
		{Seq: 0, Time: base, User: "u", Statement: "SELECT description FROM DBObjects WHERE name = 'Galaxy'"},
		{Seq: 1, Time: base.Add(time.Second), User: "u", Statement: "SELECT description FROM DBObjects WHERE name = 'Star'"},
	}
	pl, _ := parsedlog.Parse(l)
	sess := session.Build(l, session.Options{})
	reg := antipattern.DefaultRegistry(cat, antipattern.DefaultOptions())
	instances := reg.Detect(pl, sess)
	res := Apply(pl, instances, DefaultSolvers(cat))
	if len(res.Clean) != 1 {
		t.Fatalf("clean: %v", res.Clean)
	}
	if !strings.Contains(res.Clean[0].Statement, "IN ('Galaxy', 'Star')") {
		t.Errorf("got %q", res.Clean[0].Statement)
	}
}

func TestDSSolveExample12(t *testing.T) {
	// Paper Example 11 → Example 12.
	got := solveOne(t, antipattern.DSStifle,
		"SELECT name FROM Employee WHERE empId = 8",
		"SELECT address, surname FROM Employee WHERE empId = 8",
	)
	want := "SELECT name, address, surname FROM Employee WHERE empId = 8"
	if got != want {
		t.Errorf("got %q, want %q", got, want)
	}
}

func TestDSSolveDeduplicatesColumns(t *testing.T) {
	got := solveOne(t, antipattern.DSStifle,
		"SELECT name, surname FROM Employee WHERE empId = 8",
		"SELECT surname, address FROM Employee WHERE empId = 8",
	)
	if strings.Count(strings.ToLower(got), "surname") != 1 {
		t.Errorf("duplicate column: %q", got)
	}
}

func TestDFSolveExample14(t *testing.T) {
	// Paper Example 13 → Example 14.
	got := solveOne(t, antipattern.DFStifle,
		"SELECT name FROM Employee WHERE empId = 8",
		"SELECT address FROM EmployeeInfo WHERE empId = 8",
	)
	want := "SELECT Employee.name, EmployeeInfo.address FROM Employee INNER JOIN EmployeeInfo ON Employee.empid = EmployeeInfo.empid WHERE Employee.empId = 8"
	if got != want {
		t.Errorf("got %q, want %q", got, want)
	}
}

func TestDFSolveWithAliases(t *testing.T) {
	// Definition 14 requires equal concrete WHERE clauses, so the filters
	// stay unqualified; the tables carry aliases and the solver must join
	// through them.
	got := solveOne(t, antipattern.DFStifle,
		"SELECT name FROM Employee E WHERE empId = 8",
		"SELECT address FROM EmployeeInfo EI WHERE empId = 8",
	)
	if !strings.Contains(got, "INNER JOIN") || !strings.Contains(got, "E.empid = EI.empid") {
		t.Errorf("got %q", got)
	}
	if !strings.Contains(got, "E.name") || !strings.Contains(got, "EI.address") {
		t.Errorf("select items not qualified: %q", got)
	}
}

func TestSNCSolve(t *testing.T) {
	got := solveOne(t, antipattern.SNC,
		"SELECT name FROM Employee WHERE address = NULL",
	)
	if got != "SELECT name FROM Employee WHERE address IS NULL" {
		t.Errorf("got %q", got)
	}
	got = solveOne(t, antipattern.SNC,
		"SELECT name FROM Employee WHERE address <> NULL",
	)
	if got != "SELECT name FROM Employee WHERE address IS NOT NULL" {
		t.Errorf("got %q", got)
	}
}

func TestSNCSolveNestedConjunct(t *testing.T) {
	got := solveOne(t, antipattern.SNC,
		"SELECT name FROM Employee WHERE empId = 3 AND address = NULL",
	)
	if !strings.Contains(got, "address IS NULL") || !strings.Contains(got, "empId = 3") {
		t.Errorf("got %q", got)
	}
}

func TestSolvedStatementsReparse(t *testing.T) {
	outs := []string{
		solveOne(t, antipattern.DWStifle,
			"SELECT name FROM Employee WHERE empId = 8",
			"SELECT name FROM Employee WHERE empId = 1"),
		solveOne(t, antipattern.DSStifle,
			"SELECT name FROM Employee WHERE empId = 8",
			"SELECT address FROM Employee WHERE empId = 8"),
		solveOne(t, antipattern.DFStifle,
			"SELECT name FROM Employee WHERE empId = 8",
			"SELECT phone FROM EmployeeInfo WHERE empId = 8"),
		solveOne(t, antipattern.SNC,
			"SELECT name FROM Employee WHERE address = NULL"),
	}
	for _, out := range outs {
		if _, err := sqlparser.ParseSelect(out); err != nil {
			t.Errorf("solved statement does not reparse: %q: %v", out, err)
		}
	}
}

func TestApplyEndToEnd(t *testing.T) {
	pl, instances := parseLog(t,
		// count(*) has no output columns, so it heads no CTH and joins no
		// Stifle — it stays as a plain entry.
		"SELECT count(*) FROM Employee",
		"SELECT name FROM Employee WHERE empId = 8",
		"SELECT name FROM Employee WHERE empId = 1",
		"SELECT surname FROM Employee WHERE empId = 9",
		"SELECT address FROM Employee WHERE empId = 9",
	)
	res := Apply(pl, instances, DefaultSolvers(demoCatalog()))
	if len(res.Clean) != 3 {
		t.Fatalf("clean: %v", res.Clean)
	}
	// First entry untouched, then the DW merge, then the DS merge.
	if !strings.Contains(res.Clean[1].Statement, "IN (8, 1)") {
		t.Errorf("dw merge: %q", res.Clean[1].Statement)
	}
	if !strings.Contains(res.Clean[2].Statement, "surname, address") {
		t.Errorf("ds merge: %q", res.Clean[2].Statement)
	}
	// Rows are summed across merged members.
	if res.Clean[1].Rows != 2 {
		t.Errorf("rows: %d", res.Clean[1].Rows)
	}
	// Removal drops every antipattern member.
	if len(res.Removal) != 1 {
		t.Errorf("removal: %v", res.Removal)
	}
	// Stats add up.
	total := 0
	for _, s := range res.Stats {
		total += s.Solved
		if s.QueriesAfter != s.Solved {
			t.Errorf("stats: %+v", s)
		}
	}
	if total != 2 {
		t.Errorf("solved: %d", total)
	}
	if len(res.Replacements) != 2 {
		t.Fatalf("replacements: %+v", res.Replacements)
	}
	if res.Replacements[0].CleanIndex != 1 || res.Replacements[0].Replaced != 2 {
		t.Errorf("replacement: %+v", res.Replacements[0])
	}
}

func TestApplyLeavesUnsolvableInPlace(t *testing.T) {
	pl, instances := parseLog(t,
		"SELECT empId FROM Employee WHERE address = 'sales'",
		"SELECT name FROM Employee WHERE empId = 12",
	)
	// This is a CTH candidate (head + one follower) but CTH has no solver.
	res := Apply(pl, instances, DefaultSolvers(demoCatalog()))
	if len(res.Clean) != 2 {
		t.Fatalf("clean: %v", res.Clean)
	}
	hasCTH := false
	for _, in := range instances {
		if in.Kind == antipattern.CTH {
			hasCTH = true
		}
	}
	if !hasCTH {
		t.Fatal("expected a CTH candidate")
	}
	// Removal drops the CTH members.
	if len(res.Removal) != 0 {
		t.Errorf("removal keeps CTH members: %v", res.Removal)
	}
}

func TestApplyRowsUnknownPropagates(t *testing.T) {
	base := time.Date(2003, 6, 1, 0, 0, 0, 0, time.UTC)
	l := logmodel.Log{
		{Seq: 0, Time: base, User: "u", Rows: -1, Statement: "SELECT name FROM Employee WHERE empId = 8"},
		{Seq: 1, Time: base.Add(time.Second), User: "u", Rows: 5, Statement: "SELECT name FROM Employee WHERE empId = 9"},
	}
	pl, _ := parsedlog.Parse(l)
	sess := session.Build(l, session.Options{})
	reg := antipattern.DefaultRegistry(demoCatalog(), antipattern.DefaultOptions())
	res := Apply(pl, reg.Detect(pl, sess), DefaultSolvers(demoCatalog()))
	if len(res.Clean) != 1 || res.Clean[0].Rows != -1 {
		t.Errorf("rows: %+v", res.Clean)
	}
}

func TestDFSolveFailsWithoutSharedKey(t *testing.T) {
	cat := schema.New()
	cat.AddTable("a", schema.Column{Name: "id", Type: "int", Key: true}, schema.Column{Name: "x", Type: "int"})
	cat.AddTable("b", schema.Column{Name: "bid", Type: "int", Key: true}, schema.Column{Name: "id", Type: "int", Key: true}, schema.Column{Name: "y", Type: "int"})
	// b's keys: bid (not in a) and id (in a) — shared key exists. Remove it:
	cat.AddTable("c", schema.Column{Name: "cid", Type: "int", Key: true}, schema.Column{Name: "z", Type: "int"})

	base := time.Date(2003, 6, 1, 0, 0, 0, 0, time.UTC)
	l := logmodel.Log{
		{Seq: 0, Time: base, User: "u", Statement: "SELECT x FROM a WHERE id = 1"},
		{Seq: 1, Time: base.Add(time.Second), User: "u", Statement: "SELECT z FROM c WHERE id = 1"},
	}
	pl, _ := parsedlog.Parse(l)
	sess := session.Build(l, session.Options{})
	reg := antipattern.DefaultRegistry(cat, antipattern.DefaultOptions())
	instances := reg.Detect(pl, sess)
	res := Apply(pl, instances, DefaultSolvers(cat))
	// The DF instance cannot be solved (no shared key): both queries stay.
	foundDF := false
	for _, s := range res.Stats {
		if s.Kind == antipattern.DFStifle {
			foundDF = true
			if s.Failed != 1 || s.Solved != 0 {
				t.Errorf("df stats: %+v", s)
			}
		}
	}
	if foundDF && len(res.Clean) != 2 {
		t.Errorf("clean: %v", res.Clean)
	}
}

func TestApplySkipsOverlappingInstances(t *testing.T) {
	// Craft two artificial overlapping solvable instances; the second must
	// be skipped.
	pl, _ := parseLog(t,
		"SELECT name FROM Employee WHERE empId = 8",
		"SELECT name FROM Employee WHERE empId = 1",
	)
	inst1 := antipattern.Instance{Kind: antipattern.DWStifle, Indices: []int{0, 1}, Solvable: true}
	inst2 := antipattern.Instance{Kind: antipattern.DWStifle, Indices: []int{1}, Solvable: true}
	res := Apply(pl, []antipattern.Instance{inst1, inst2}, DefaultSolvers(demoCatalog()))
	if len(res.Clean) != 1 {
		t.Fatalf("clean: %v", res.Clean)
	}
	if len(res.Replacements) != 1 {
		t.Errorf("replacements: %+v", res.Replacements)
	}
}

func TestImplicitColumnsSolver(t *testing.T) {
	base := time.Date(2003, 6, 1, 0, 0, 0, 0, time.UTC)
	l := logmodel.Log{
		{Seq: 0, Time: base, User: "u", Statement: "SELECT * FROM Employee WHERE empId = 8"},
	}
	pl, _ := parsedlog.Parse(l)
	sess := session.Build(l, session.Options{})
	cat := demoCatalog()
	reg := antipattern.NewRegistry(antipattern.ExtraRules(cat)...)
	instances := reg.Detect(pl, sess)
	res := Apply(pl, instances, ExtraSolvers(cat))
	if len(res.Clean) != 1 {
		t.Fatalf("clean: %+v", res.Clean)
	}
	want := "SELECT empid, name, surname, address FROM Employee WHERE empId = 8"
	if res.Clean[0].Statement != want {
		t.Errorf("got %q, want %q", res.Clean[0].Statement, want)
	}
	if _, err := sqlparser.ParseSelect(res.Clean[0].Statement); err != nil {
		t.Errorf("expanded statement does not reparse: %v", err)
	}
}

func parseInfos(t *testing.T, stmts ...string) []*skeleton.Info {
	t.Helper()
	var infos []*skeleton.Info
	for _, s := range stmts {
		sel, err := sqlparser.ParseSelect(s)
		if err != nil {
			t.Fatalf("parse %q: %v", s, err)
		}
		infos = append(infos, skeleton.Analyze(sel))
	}
	return infos
}

func TestUnionTemplateRanges(t *testing.T) {
	infos := parseInfos(t,
		"SELECT count(*) FROM photoprimary WHERE htmid >= 0 and htmid <= 99",
		"SELECT count(*) FROM photoprimary WHERE htmid >= 100 and htmid <= 199",
		"SELECT count(*) FROM photoprimary WHERE htmid >= 200 and htmid <= 299",
	)
	got, err := UnionTemplate(infos)
	if err != nil {
		t.Fatal(err)
	}
	want := "SELECT count(*) FROM photoprimary WHERE htmid >= 0 AND htmid <= 299"
	if got != want {
		t.Errorf("got %q, want %q", got, want)
	}
}

func TestUnionTemplateBetween(t *testing.T) {
	infos := parseInfos(t,
		"SELECT objid FROM photoprimary WHERE htmid BETWEEN 50 AND 99",
		"SELECT objid FROM photoprimary WHERE htmid BETWEEN 0 AND 49",
	)
	got, err := UnionTemplate(infos)
	if err != nil {
		t.Fatal(err)
	}
	want := "SELECT objid FROM photoprimary WHERE htmid BETWEEN 0 AND 99"
	if got != want {
		t.Errorf("got %q, want %q", got, want)
	}
}

func TestUnionTemplateRejectsNonRanges(t *testing.T) {
	infos := parseInfos(t,
		"SELECT objid FROM photoprimary WHERE objid = 1",
		"SELECT objid FROM photoprimary WHERE objid = 2",
	)
	if _, err := UnionTemplate(infos); err == nil {
		t.Fatal("equality sweeps have no contiguous union")
	}
	if _, err := UnionTemplate(nil); err == nil {
		t.Fatal("empty input must fail")
	}
	mixed := parseInfos(t,
		"SELECT objid FROM photoprimary WHERE htmid >= 0 and htmid <= 9",
		"SELECT objid FROM photoprimary WHERE htmid >= 10",
	)
	if _, err := UnionTemplate(mixed); err == nil {
		t.Fatal("different templates must fail")
	}
}
