package rewrite

import (
	"strings"

	"sqlclean/internal/antipattern"
	"sqlclean/internal/parsedlog"
	"sqlclean/internal/schema"
	"sqlclean/internal/skeleton"
	"sqlclean/internal/sqlast"
)

// ---------------------------------------------------------------------------
// DW-Stifle: same SELECT/FROM, different WHERE values → one IN query.
// ---------------------------------------------------------------------------

// DWSolver composes one query with all filter values collected into an IN
// list (paper Example 10). The filter column is prepended to the select list
// (when not already present) so individual result rows stay attributable.
type DWSolver struct{}

// Kind implements Solver.
func (*DWSolver) Kind() antipattern.Kind { return antipattern.DWStifle }

// Solve implements Solver.
func (*DWSolver) Solve(pl parsedlog.Log, inst antipattern.Instance) (string, error) {
	first := pl[inst.Indices[0]].Info
	if first == nil || first.CP() != 1 {
		return "", errInstance(inst, "first member lacks the single equality predicate")
	}
	// Collect the distinct filter values in order of appearance.
	var values []sqlast.Expr
	seen := map[string]bool{}
	for _, idx := range inst.Indices {
		in := pl[idx].Info
		if in == nil || in.CP() != 1 || len(in.Predicates[0].Literals) != 1 {
			return "", errInstance(inst, "member %d lacks a single-literal predicate", idx)
		}
		lit := in.Predicates[0].Literals[0]
		key := lit.Kind + "\x00" + lit.Val
		if seen[key] {
			continue
		}
		seen[key] = true
		l := lit
		values = append(values, &l)
	}

	stmt := sqlast.CloneSelect(first.Stmt)
	col, ok := findEqPredicateColumn(stmt.Where)
	if !ok {
		return "", errInstance(inst, "cannot locate the equality predicate in WHERE")
	}
	stmt.Where = &sqlast.InExpr{X: sqlast.CloneExpr(col), List: values}
	prependColumn(stmt, col)
	return sqlast.Print(stmt, printOpts), nil
}

// findEqPredicateColumn returns the column of the single equality predicate
// of a one-predicate WHERE clause.
func findEqPredicateColumn(where sqlast.Expr) (*sqlast.ColumnRef, bool) {
	switch x := where.(type) {
	case *sqlast.BinaryExpr:
		if x.Op != "=" {
			return nil, false
		}
		if c, ok := x.Left.(*sqlast.ColumnRef); ok && !c.Star {
			return c, true
		}
		if c, ok := x.Right.(*sqlast.ColumnRef); ok && !c.Star {
			return c, true
		}
	case *sqlast.ParenExpr:
		return findEqPredicateColumn(x.X)
	}
	return nil, false
}

// prependColumn adds col at the front of the select list unless an item
// already references it (or the list is a star).
func prependColumn(stmt *sqlast.SelectStatement, col *sqlast.ColumnRef) {
	want := strings.ToLower(col.Name)
	for _, it := range stmt.Items {
		if c, ok := it.Expr.(*sqlast.ColumnRef); ok {
			if c.Star || strings.ToLower(c.Name) == want {
				return
			}
		}
	}
	items := make([]sqlast.SelectItem, 0, len(stmt.Items)+1)
	items = append(items, sqlast.SelectItem{Expr: sqlast.CloneExpr(col)})
	items = append(items, stmt.Items...)
	stmt.Items = items
}

// ---------------------------------------------------------------------------
// DS-Stifle: same FROM/WHERE, different SELECT → union of select lists.
// ---------------------------------------------------------------------------

// DSSolver unions the select lists of the member queries into one query
// (paper Example 12).
type DSSolver struct{}

// Kind implements Solver.
func (*DSSolver) Kind() antipattern.Kind { return antipattern.DSStifle }

// Solve implements Solver.
func (*DSSolver) Solve(pl parsedlog.Log, inst antipattern.Instance) (string, error) {
	first := pl[inst.Indices[0]].Info
	if first == nil {
		return "", errInstance(inst, "first member not parsed")
	}
	stmt := sqlast.CloneSelect(first.Stmt)
	seen := map[string]bool{}
	var items []sqlast.SelectItem
	appendItems := func(in *skeleton.Info) {
		for _, it := range in.Stmt.Items {
			key := sqlast.PrintExpr(it.Expr, sqlast.PrintOptions{NormalizeIdents: true})
			if it.Alias != "" {
				key += " as " + strings.ToLower(it.Alias)
			}
			if seen[key] {
				continue
			}
			seen[key] = true
			items = append(items, sqlast.SelectItem{Expr: sqlast.CloneExpr(it.Expr), Alias: it.Alias})
		}
	}
	for _, idx := range inst.Indices {
		in := pl[idx].Info
		if in == nil {
			return "", errInstance(inst, "member %d not parsed", idx)
		}
		appendItems(in)
	}
	stmt.Items = items
	return sqlast.Print(stmt, printOpts), nil
}

// ---------------------------------------------------------------------------
// DF-Stifle: same WHERE, different FROM → join over the shared key.
// ---------------------------------------------------------------------------

// DFSolver joins the member queries' tables on a key column they share
// (paper Example 14). It requires every member to read from exactly one
// base table and the catalog to know a common key; otherwise the instance
// is reported unsolved and left in place.
type DFSolver struct {
	Catalog *schema.Catalog
}

// Kind implements Solver.
func (*DFSolver) Kind() antipattern.Kind { return antipattern.DFStifle }

// Solve implements Solver.
func (s *DFSolver) Solve(pl parsedlog.Log, inst antipattern.Instance) (string, error) {
	type member struct {
		info  *skeleton.Info
		table *sqlast.TableRef
		alias string
	}
	var members []member
	seenTables := map[string]bool{}
	for _, idx := range inst.Indices {
		in := pl[idx].Info
		if in == nil {
			return "", errInstance(inst, "member %d not parsed", idx)
		}
		if len(in.Stmt.From) != 1 {
			return "", errInstance(inst, "member reads from %d FROM entries; need exactly one table", len(in.Stmt.From))
		}
		tr, ok := in.Stmt.From[0].(*sqlast.TableRef)
		if !ok {
			return "", errInstance(inst, "member FROM entry is not a base table")
		}
		key := strings.ToLower(tr.Name)
		if seenTables[key] {
			continue // repeated table: its columns are already covered
		}
		seenTables[key] = true
		alias := tr.Alias
		if alias == "" {
			alias = tr.Name
		}
		members = append(members, member{info: in, table: tr, alias: alias})
	}
	if len(members) < 2 {
		return "", errInstance(inst, "fewer than two distinct tables")
	}
	var tables []string
	for _, m := range members {
		tables = append(tables, m.table.Name)
	}
	if s.Catalog == nil {
		return "", errInstance(inst, "no catalog for shared-key lookup")
	}
	joinKey, ok := s.Catalog.SharedKey(tables)
	if !ok {
		return "", errInstance(inst, "tables %v share no key column", tables)
	}

	stmt := &sqlast.SelectStatement{}
	seenItems := map[string]bool{}
	for _, m := range members {
		for _, it := range m.info.Stmt.Items {
			e := qualify(sqlast.CloneExpr(it.Expr), m.alias)
			key := sqlast.PrintExpr(e, sqlast.PrintOptions{NormalizeIdents: true})
			if seenItems[key] {
				continue
			}
			seenItems[key] = true
			stmt.Items = append(stmt.Items, sqlast.SelectItem{Expr: e, Alias: it.Alias})
		}
	}

	// Build the join chain m0 INNER JOIN m1 ON m0.k = m1.k INNER JOIN ...
	var src sqlast.TableSource = cloneTableRef(members[0].table)
	for _, m := range members[1:] {
		src = &sqlast.Join{
			Kind:  sqlast.InnerJoin,
			Left:  src,
			Right: cloneTableRef(m.table),
			Cond: &sqlast.BinaryExpr{
				Op:    "=",
				Left:  &sqlast.ColumnRef{Qualifier: members[0].alias, Name: joinKey},
				Right: &sqlast.ColumnRef{Qualifier: m.alias, Name: joinKey},
			},
		}
	}
	stmt.From = []sqlast.TableSource{src}
	stmt.Where = qualify(sqlast.CloneExpr(members[0].info.Stmt.Where), members[0].alias)
	return sqlast.Print(stmt, printOpts), nil
}

func cloneTableRef(t *sqlast.TableRef) *sqlast.TableRef {
	c := *t
	return &c
}

// qualify sets the qualifier of every unqualified, non-star column reference
// in the expression tree to alias, in place, and returns the expression.
func qualify(e sqlast.Expr, alias string) sqlast.Expr {
	if e == nil {
		return nil
	}
	sqlast.Walk(e, func(n sqlast.Node) bool {
		if c, ok := n.(*sqlast.ColumnRef); ok && !c.Star && c.Qualifier == "" {
			c.Qualifier = alias
		}
		// Do not descend into subqueries: their scopes differ.
		_, isSub := n.(*sqlast.SubqueryExpr)
		return !isSub
	})
	return e
}

// ---------------------------------------------------------------------------
// SNC: = NULL / <> NULL → IS [NOT] NULL.
// ---------------------------------------------------------------------------

// SNCSolver rewrites NULL (in)equality comparisons to IS [NOT] NULL
// (Definition 16's solving solution).
type SNCSolver struct{}

// Kind implements Solver.
func (*SNCSolver) Kind() antipattern.Kind { return antipattern.SNC }

// Solve implements Solver.
func (*SNCSolver) Solve(pl parsedlog.Log, inst antipattern.Instance) (string, error) {
	in := pl[inst.Indices[0]].Info
	if in == nil {
		return "", errInstance(inst, "member not parsed")
	}
	stmt := sqlast.CloneSelect(in.Stmt)
	stmt.Where = fixNullCompare(stmt.Where)
	return sqlast.Print(stmt, printOpts), nil
}

func fixNullCompare(e sqlast.Expr) sqlast.Expr {
	switch x := e.(type) {
	case nil:
		return nil
	case *sqlast.BinaryExpr:
		if x.Op == "=" || x.Op == "<>" {
			if isNullLit(x.Right) {
				return &sqlast.IsNullExpr{X: x.Left, Not: x.Op == "<>"}
			}
			if isNullLit(x.Left) {
				return &sqlast.IsNullExpr{X: x.Right, Not: x.Op == "<>"}
			}
		}
		x.Left = fixNullCompare(x.Left)
		x.Right = fixNullCompare(x.Right)
		return x
	case *sqlast.UnaryExpr:
		x.X = fixNullCompare(x.X)
		return x
	case *sqlast.ParenExpr:
		x.X = fixNullCompare(x.X)
		return x
	}
	return e
}

func isNullLit(e sqlast.Expr) bool {
	l, ok := e.(*sqlast.Literal)
	return ok && l.Kind == "null"
}
