package rewrite

import (
	"strings"
	"testing"

	"sqlclean/internal/antipattern"
	"sqlclean/internal/sqlparser"
)

func TestPackSolverJoinsStatements(t *testing.T) {
	pl, instances := parseLog(t,
		"SELECT name FROM Employee WHERE empId = 8",
		"SELECT name FROM Employee WHERE empId = 1",
	)
	var dw antipattern.Instance
	for _, in := range instances {
		if in.Kind == antipattern.DWStifle {
			dw = in
		}
	}
	if dw.Kind == "" {
		t.Fatal("no DW instance")
	}
	p := NewPackSolver(antipattern.DWStifle)
	out, err := p.Solve(pl, dw)
	if err != nil {
		t.Fatal(err)
	}
	want := "SELECT name FROM Employee WHERE empId = 8; SELECT name FROM Employee WHERE empId = 1"
	if out != want {
		t.Errorf("got %q", out)
	}
	// The batch must split back into the original statements.
	parts, err := sqlparser.SplitStatements(out)
	if err != nil || len(parts) != 2 {
		t.Errorf("split: %v %v", parts, err)
	}
}

func TestPackSolversCoverStifleKinds(t *testing.T) {
	kinds := map[antipattern.Kind]bool{}
	for _, s := range PackSolvers() {
		kinds[s.Kind()] = true
	}
	for _, k := range []antipattern.Kind{antipattern.DWStifle, antipattern.DSStifle, antipattern.DFStifle} {
		if !kinds[k] {
			t.Errorf("missing pack solver for %s", k)
		}
	}
}

func TestPackApplyEndToEnd(t *testing.T) {
	pl, instances := parseLog(t,
		"SELECT name FROM Employee WHERE empId = 8",
		"SELECT name FROM Employee WHERE empId = 1",
		"SELECT name FROM Employee WHERE empId = 3",
	)
	res := Apply(pl, instances, PackSolvers())
	if len(res.Clean) != 1 {
		t.Fatalf("clean: %+v", res.Clean)
	}
	if strings.Count(res.Clean[0].Statement, ";") != 2 {
		t.Errorf("packed statement: %q", res.Clean[0].Statement)
	}
}

func TestPackSolverEmptyInstance(t *testing.T) {
	p := NewPackSolver(antipattern.DWStifle)
	if _, err := p.Solve(nil, antipattern.Instance{Kind: antipattern.DWStifle}); err == nil {
		t.Fatal("want error for empty instance")
	}
}
