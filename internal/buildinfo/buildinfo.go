// Package buildinfo carries the version stamp shared by every binary in the
// module. The Makefile injects the values at link time:
//
//	go build -ldflags "-X sqlclean/internal/buildinfo.Version=v1.2.3 ..."
//
// Unstamped builds (plain `go build`, `go run`, tests) fall back to the Go
// toolchain's embedded VCS metadata when available, so -version and /healthz
// are never empty.
package buildinfo

import (
	"fmt"
	"runtime/debug"
)

// Set via -ldflags -X; see the Makefile's LDFLAGS.
var (
	// Version is the human-readable release (git describe).
	Version = "dev"
	// Commit is the full VCS revision.
	Commit = ""
	// Date is the build timestamp (RFC 3339).
	Date = ""
)

// vcsFallback fills Commit/Date from debug.ReadBuildInfo for unstamped
// builds. Returns silently when no VCS metadata is embedded.
func vcsFallback() {
	if Commit != "" {
		return
	}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return
	}
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			Commit = s.Value
		case "vcs.time":
			if Date == "" {
				Date = s.Value
			}
		}
	}
}

// Short returns the one-token version (e.g. "v1.2.3" or "dev").
func Short() string { return Version }

// String returns the full build stamp, e.g.
// "v1.2.3 (commit 0a1b2c3d, built 2026-08-05T12:00:00Z)".
func String() string {
	vcsFallback()
	commit := Commit
	if commit == "" {
		commit = "unknown"
	} else if len(commit) > 12 {
		commit = commit[:12]
	}
	date := Date
	if date == "" {
		date = "unknown"
	}
	return fmt.Sprintf("%s (commit %s, built %s)", Version, commit, date)
}
