package workload

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"sqlclean/internal/logmodel"
	"sqlclean/internal/schema"
)

// Retail workload: the paper's Example 7 — a shoe retailer whose BUY
// procedure issues a fixed sequence of statements per sale. Every sale
// produces the same three SELECTs (barcode lookup, stock check, price
// lookup) differing only in parameter values: the canonical *pattern* of
// Definition 7, a sequence of three query templates. Sales clerks (many
// users, same procedure) plus ad-hoc browsing noise.

// Additional label kind for retail entries.
const (
	KindSale   = "sale"
	KindBrowse = "browse"
)

// RetailConfig sizes the retail workload.
type RetailConfig struct {
	Seed  int64
	Start time.Time
	// Registers is the number of point-of-sale clients (users).
	Registers int
	// SalesPerRegister is how many BUY sequences each register runs.
	SalesPerRegister int
	// BrowseQueries is the number of ad-hoc statements interleaved.
	BrowseQueries int
}

// DefaultRetailConfig returns a ≈2k-entry retail log.
func DefaultRetailConfig() RetailConfig {
	return RetailConfig{
		Seed:             1,
		Start:            time.Date(2026, 3, 2, 8, 0, 0, 0, time.UTC),
		Registers:        8,
		SalesPerRegister: 60,
		BrowseQueries:    200,
	}
}

// RetailCatalog returns the shoe retailer's schema (paper Example 7).
func RetailCatalog() *schema.Catalog {
	c := schema.New()
	c.AddTable("barcodesinfo",
		schema.Column{Name: "id", Type: "int", Key: true},
		schema.Column{Name: "model", Type: "string"},
		schema.Column{Name: "size", Type: "int"},
	)
	c.AddTable("inpresence",
		schema.Column{Name: "model", Type: "string", Key: true},
		schema.Column{Name: "size", Type: "int"},
		schema.Column{Name: "count", Type: "int"},
	)
	c.AddTable("prices",
		schema.Column{Name: "model", Type: "string", Key: true},
		schema.Column{Name: "price", Type: "float"},
	)
	c.AddTable("sales",
		schema.Column{Name: "saleid", Type: "int", Key: true},
		schema.Column{Name: "barcode", Type: "int"},
		schema.Column{Name: "seller", Type: "string"},
	)
	return c
}

// GenerateRetail builds the retail log plus ground truth labels (KindSale
// for BUY-sequence members, KindBrowse for noise).
func GenerateRetail(cfg RetailConfig) (logmodel.Log, *Truth) {
	if cfg.Start.IsZero() {
		cfg.Start = time.Date(2026, 3, 2, 8, 0, 0, 0, time.UTC)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	models := []string{"runner", "trail", "court", "classic", "boot"}

	type item struct {
		e     logmodel.Entry
		label Label
	}
	var items []item
	group := 0

	for reg := 0; reg < cfg.Registers; reg++ {
		user := fmt.Sprintf("pos-%02d", reg+1)
		t := cfg.Start.Add(time.Duration(rng.Intn(3600)) * time.Second)
		for s := 0; s < cfg.SalesPerRegister; s++ {
			group++
			barcode := 4000000000 + rng.Int63n(999999)
			model := models[rng.Intn(len(models))]
			size := 36 + rng.Intn(12)
			// The BUY procedure: three SELECTs per sale, back to back.
			stmts := []string{
				fmt.Sprintf("SELECT model, size FROM BarCodesInfo WHERE id = %d", barcode),
				fmt.Sprintf("SELECT count FROM InPresence WHERE model = '%s' AND size = %d", model, size),
				fmt.Sprintf("SELECT price FROM Prices WHERE model = '%s'", model),
			}
			for _, stmt := range stmts {
				t = t.Add(time.Duration(30+rng.Intn(300)) * time.Millisecond)
				items = append(items, item{
					e:     logmodel.Entry{Time: t, User: user, Session: fmt.Sprintf("r%d", reg), Rows: 1, Statement: stmt},
					label: Label{Kind: KindSale, Group: group},
				})
			}
			// Time to the next customer.
			t = t.Add(time.Duration(30+rng.Intn(600)) * time.Second)
		}
	}

	for q := 0; q < cfg.BrowseQueries; q++ {
		user := fmt.Sprintf("office-%d", 1+rng.Intn(3))
		t := cfg.Start.Add(time.Duration(rng.Intn(10*3600)) * time.Second)
		var stmt string
		switch rng.Intn(3) {
		case 0:
			stmt = fmt.Sprintf("SELECT model, count FROM InPresence WHERE count < %d", 1+rng.Intn(5))
		case 1:
			stmt = fmt.Sprintf("SELECT count(*) FROM Sales WHERE seller = 'pos-%02d'", 1+rng.Intn(8))
		default:
			stmt = fmt.Sprintf("SELECT price FROM Prices WHERE price BETWEEN %d AND %d", 20+rng.Intn(40), 80+rng.Intn(60))
		}
		items = append(items, item{
			e:     logmodel.Entry{Time: t, User: user, Rows: int64(rng.Intn(20)), Statement: stmt},
			label: Label{Kind: KindBrowse},
		})
	}

	sort.SliceStable(items, func(i, j int) bool { return items[i].e.Time.Before(items[j].e.Time) })
	log := make(logmodel.Log, len(items))
	truth := &Truth{Labels: make([]Label, len(items))}
	for i, it := range items {
		it.e.Seq = int64(i)
		log[i] = it.e
		truth.Labels[i] = it.label
	}
	return log, truth
}
