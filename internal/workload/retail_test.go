package workload

import (
	"reflect"
	"testing"

	"sqlclean/internal/core"
	"sqlclean/internal/sqlparser"
)

func TestGenerateRetailDeterministic(t *testing.T) {
	a, ta := GenerateRetail(DefaultRetailConfig())
	b, tb := GenerateRetail(DefaultRetailConfig())
	if !reflect.DeepEqual(a, b) || !reflect.DeepEqual(ta.Labels, tb.Labels) {
		t.Fatal("retail generation not deterministic")
	}
}

func TestRetailStatementsParse(t *testing.T) {
	l, _ := GenerateRetail(DefaultRetailConfig())
	for _, e := range l {
		if _, err := sqlparser.ParseSelect(e.Statement); err != nil {
			t.Fatalf("%q: %v", e.Statement, err)
		}
	}
}

func TestRetailSaleSequencesDominate(t *testing.T) {
	cfg := DefaultRetailConfig()
	l, truth := GenerateRetail(cfg)
	sales := truth.Count(KindSale)
	if sales != cfg.Registers*cfg.SalesPerRegister*3 {
		t.Fatalf("sale statements: %d", sales)
	}
	res, err := core.Run(l, core.Config{Catalog: RetailCatalog()})
	if err != nil {
		t.Fatal(err)
	}
	// The BUY procedure is the paper's Definition 7 pattern: a sequence of
	// three templates. It must top the mined sequence patterns.
	if len(res.Sequences) == 0 {
		t.Fatal("no sequence patterns mined")
	}
	var best3 bool
	for _, sp := range res.Sequences {
		if len(sp.Signature) == 3 {
			// Each sale is one instance of the 3-template window.
			if sp.Frequency >= cfg.Registers*cfg.SalesPerRegister*9/10 {
				best3 = true
			}
			break
		}
	}
	if !best3 {
		t.Errorf("BUY sequence not dominant: %+v", res.Sequences[:min(3, len(res.Sequences))])
	}
	// All registers run it: userPopularity equals the register count.
	top := res.Sequences[0]
	if top.UserPopularity != cfg.Registers {
		t.Errorf("popularity: %d (want %d)", top.UserPopularity, cfg.Registers)
	}
}

func TestRetailCatalogValid(t *testing.T) {
	if err := RetailCatalog().Validate(); err != nil {
		t.Fatal(err)
	}
	if !RetailCatalog().IsKey("barcodesinfo", "id") {
		t.Error("barcode id must be a key")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
