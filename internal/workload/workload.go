// Package workload generates deterministic synthetic SkyServer-style query
// logs with ground-truth labels. It substitutes for the real (non-shippable)
// 42-million-query SkyServer log of the paper's case study: the generator
// reproduces the log's *composition* — human spatial searches, web-interface
// browsing, Stifle bots, dependent (CTH) query chains, sliding-window-search
// "machine downloads", web-form duplicate reloads and DML/DDL/error noise —
// with tunable shares, so every experiment exercises the same code paths a
// real log would.
package workload

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"sqlclean/internal/logmodel"
)

// Label records why an entry was generated.
type Label struct {
	// Kind is one of the Kind* constants.
	Kind string
	// Group ties together the members of one generated pattern instance
	// (e.g. all queries of one CTH chain share a Group).
	Group int
}

// Generator kinds.
const (
	KindHuman    = "human"
	KindWebUI    = "webui"
	KindDW       = "dw-stifle"
	KindDS       = "ds-stifle"
	KindDF       = "df-stifle"
	KindCTHTrue  = "cth-true"
	KindCTHFalse = "cth-false"
	KindSWS      = "sws"
	KindSNC      = "snc"
	KindDup      = "duplicate"
	KindNoise    = "noise"
)

// Truth is the generator's ground truth: one label per entry, indexed by
// Entry.Seq.
type Truth struct {
	Labels []Label
}

// Label returns the label of the entry with the given sequence number.
func (t *Truth) Label(seq int64) Label {
	if seq < 0 || int(seq) >= len(t.Labels) {
		return Label{}
	}
	return t.Labels[seq]
}

// Count returns how many entries carry the kind.
func (t *Truth) Count(kind string) int {
	n := 0
	for _, l := range t.Labels {
		if l.Kind == kind {
			n++
		}
	}
	return n
}

// Config sizes the generated log. All counts scale linearly via Scale.
type Config struct {
	Seed  int64
	Start time.Time

	// Humans issue spatial-search queries: many users, plausible interests.
	Humans          int
	QueriesPerHuman int
	// WebUISessions emulate the SkyServer web interface (DBObjects
	// browsing, nearest-object lookups).
	WebUISessions   int
	QueriesPerWebUI int
	// StifleBots are proprietary applications issuing object-at-a-time
	// traffic; each bot issues DWRuns/DSRuns/DFRuns runs of RunLenMin..Max
	// queries.
	StifleBots           int
	DWRuns, DSRuns       int
	DFRuns               int
	RunLenMin, RunLenMax int
	// CTH chains: a head query whose result feeds equality followers.
	// True chains are genuinely dependent; false chains merely look so.
	CTHTrueGroups, CTHFalseGroups    int
	CTHFollowersMin, CTHFollowersMax int
	// SWS bots download the database piece-wise with marching disjoint
	// ranges.
	SWSBots          int
	QueriesPerSWSBot int
	// SNCQueries compare columns to NULL with =/<>.
	SNCQueries int
	// DuplicateRate is the probability that a human/web query is followed
	// by an identical reload.
	DuplicateRate float64
	// NoiseRate is the share of DML/DDL/erroneous statements, relative to
	// the SELECT count.
	NoiseRate float64
}

// DefaultConfig produces a ≈10k-entry log whose shares mirror the paper's
// SkyServer findings (≈4 % non-SELECT noise, ≈4–5 % duplicates, ≈20–30 %
// Stifle traffic, heavyweight SWS templates, a handful of CTH chains).
func DefaultConfig() Config {
	return Config{
		Seed:             1,
		Start:            time.Date(2003, 6, 1, 0, 0, 0, 0, time.UTC),
		Humans:           60,
		QueriesPerHuman:  40,
		WebUISessions:    30,
		QueriesPerWebUI:  10,
		StifleBots:       3,
		DWRuns:           60,
		DSRuns:           25,
		DFRuns:           10,
		RunLenMin:        6,
		RunLenMax:        14,
		CTHTrueGroups:    20,
		CTHFalseGroups:   15,
		CTHFollowersMin:  3,
		CTHFollowersMax:  8,
		SWSBots:          2,
		QueriesPerSWSBot: 1200,
		SNCQueries:       20,
		DuplicateRate:    0.06,
		NoiseRate:        0.04,
	}
}

// Scale multiplies every count by f (minimum 1 where the base is non-zero).
func (c Config) Scale(f float64) Config {
	scale := func(n int) int {
		if n == 0 {
			return 0
		}
		v := int(float64(n) * f)
		if v < 1 {
			v = 1
		}
		return v
	}
	c.Humans = scale(c.Humans)
	c.WebUISessions = scale(c.WebUISessions)
	// StifleBots stays fixed: more runs, not more bots — few IPs is the point.
	c.DWRuns = scale(c.DWRuns)
	c.DSRuns = scale(c.DSRuns)
	c.DFRuns = scale(c.DFRuns)
	c.CTHTrueGroups = scale(c.CTHTrueGroups)
	c.CTHFalseGroups = scale(c.CTHFalseGroups)
	c.QueriesPerSWSBot = scale(c.QueriesPerSWSBot)
	c.SNCQueries = scale(c.SNCQueries)
	return c
}

type item struct {
	e     logmodel.Entry
	label Label
}

type builder struct {
	rng   *rand.Rand
	items []item
	group int
}

func (b *builder) nextGroup() int {
	b.group++
	return b.group
}

func (b *builder) emit(t time.Time, user, sess, stmt string, rows int64, label Label) {
	b.items = append(b.items, item{
		e:     logmodel.Entry{Time: t, User: user, Session: sess, Rows: rows, Statement: stmt},
		label: label,
	})
}

// Generate builds the log and its ground truth. The same Config (including
// Seed) always produces the same log.
func Generate(cfg Config) (logmodel.Log, *Truth) {
	if cfg.Start.IsZero() {
		cfg.Start = time.Date(2003, 6, 1, 0, 0, 0, 0, time.UTC)
	}
	if cfg.RunLenMax < cfg.RunLenMin {
		cfg.RunLenMax = cfg.RunLenMin
	}
	b := &builder{rng: rand.New(rand.NewSource(cfg.Seed))}

	genHumans(b, cfg)
	genWebUI(b, cfg)
	genStifleBots(b, cfg)
	genCTH(b, cfg)
	genSWS(b, cfg)
	genSNC(b, cfg)
	genNoise(b, cfg)

	// Merge all actors into one time-ordered log and assign Seq.
	sort.SliceStable(b.items, func(i, j int) bool {
		return b.items[i].e.Time.Before(b.items[j].e.Time)
	})
	log := make(logmodel.Log, len(b.items))
	truth := &Truth{Labels: make([]Label, len(b.items))}
	for i, it := range b.items {
		it.e.Seq = int64(i)
		log[i] = it.e
		truth.Labels[i] = it.label
	}
	return log, truth
}

// ip produces a deterministic fake IPv4 address.
func ip(rng *rand.Rand) string {
	return fmt.Sprintf("%d.%d.%d.%d", 10+rng.Intn(200), rng.Intn(256), rng.Intn(256), 1+rng.Intn(254))
}

// within returns a random instant inside the 5-year observation window.
func within(rng *rand.Rand, start time.Time) time.Time {
	return start.Add(time.Duration(rng.Int63n(int64(5 * 365 * 24 * time.Hour))))
}

// maybeDuplicate re-emits the last statement as a web-form-reload duplicate.
// Most duplicates land within 1 s (Table 4's observation); a few straggle.
func maybeDuplicate(b *builder, cfg Config, t time.Time, user, sess, stmt string, rows int64) time.Time {
	if b.rng.Float64() >= cfg.DuplicateRate {
		return t
	}
	var gap time.Duration
	switch r := b.rng.Float64(); {
	case r < 0.85:
		gap = time.Duration(100+b.rng.Intn(850)) * time.Millisecond
	case r < 0.95:
		gap = time.Duration(1+b.rng.Intn(9)) * time.Second
	default:
		gap = time.Duration(30+b.rng.Intn(90)) * time.Second
	}
	t = t.Add(gap)
	b.emit(t, user, sess, stmt, rows, Label{Kind: KindDup})
	return t
}

func genHumans(b *builder, cfg Config) {
	for h := 0; h < cfg.Humans; h++ {
		user := ip(b.rng)
		sess := fmt.Sprintf("h%d", h)
		t := within(b.rng, cfg.Start)
		// Each human has a home region of the sky.
		ra := b.rng.Float64() * 360
		dec := b.rng.Float64()*120 - 60
		for q := 0; q < cfg.QueriesPerHuman; q++ {
			t = t.Add(time.Duration(5+b.rng.Intn(120)) * time.Second)
			var stmt string
			switch b.rng.Intn(3) {
			case 0:
				stmt = fmt.Sprintf(
					"SELECT g.objid, g.ra, g.dec FROM photoobjall as g JOIN fGetNearbyObjEq(%.5f, %.5f, %.2f) as gn on g.objid=gn.objid LEFT OUTER JOIN specobj s ON s.bestobjid=gn.objid",
					ra+b.rng.Float64()-0.5, dec+b.rng.Float64()-0.5, 0.5+b.rng.Float64())
			case 1:
				stmt = fmt.Sprintf(
					"SELECT p.objid, p.ra, p.dec, p.r FROM fGetObjFromRect(%.5f, %.5f, %.5f, %.5f) n, photoprimary p WHERE n.objid=p.objid and p.r between %.1f and %.1f",
					ra, dec, ra+0.5, dec+0.5, 14.0+b.rng.Float64(), 18.0+b.rng.Float64())
			default:
				stmt = fmt.Sprintf(
					"SELECT p.objId, p.ra, p.dec FROM fGetNearbyObjEq(%.5f, %.5f, %.2f) n, photoprimary p WHERE n.objid=p.objid",
					ra+b.rng.Float64()-0.5, dec+b.rng.Float64()-0.5, 0.2+b.rng.Float64())
			}
			rows := int64(b.rng.Intn(500))
			b.emit(t, user, sess, stmt, rows, Label{Kind: KindHuman})
			t = maybeDuplicate(b, cfg, t, user, sess, stmt, rows)
			// Occasionally move to a new region.
			if b.rng.Float64() < 0.1 {
				ra = b.rng.Float64() * 360
				dec = b.rng.Float64()*120 - 60
				t = t.Add(time.Duration(10+b.rng.Intn(120)) * time.Minute)
			}
		}
	}
}

func genWebUI(b *builder, cfg Config) {
	for s := 0; s < cfg.WebUISessions; s++ {
		user := ip(b.rng)
		sess := fmt.Sprintf("w%d", s)
		t := within(b.rng, cfg.Start)
		for q := 0; q < cfg.QueriesPerWebUI; q++ {
			t = t.Add(time.Duration(3+b.rng.Intn(60)) * time.Second)
			var stmt string
			var rows int64
			switch b.rng.Intn(3) {
			case 0:
				stmt = "SELECT name, type FROM DBObjects WHERE type='U' AND name NOT IN ('LoadEvents', 'QueryResults') ORDER BY name"
				rows = 80
			case 1:
				// Browsing table documentation: description and text are
				// fetched by separate requests — the DS shape the paper's
				// biggest DS cluster shows (§6.9).
				tbl := []string{"Galaxy", "Star", "photoobjall", "specobj"}[b.rng.Intn(4)]
				col := []string{"description", "text"}[b.rng.Intn(2)]
				stmt = fmt.Sprintf("SELECT %s FROM DBObjects WHERE name='%s'", col, tbl)
				rows = 1
			default:
				stmt = fmt.Sprintf("SELECT TOP 10 * FROM dbo.fGetNearestObjEq(%.5f, %.5f, 0.1)", b.rng.Float64()*360, b.rng.Float64()*120-60)
				rows = 1
			}
			b.emit(t, user, sess, stmt, rows, Label{Kind: KindWebUI})
			t = maybeDuplicate(b, cfg, t, user, sess, stmt, rows)
		}
	}
}

func (b *builder) runLen(cfg Config) int {
	return cfg.RunLenMin + b.rng.Intn(cfg.RunLenMax-cfg.RunLenMin+1)
}

func genStifleBots(b *builder, cfg Config) {
	bands := []string{"g", "r", "i"}
	for bot := 0; bot < cfg.StifleBots; bot++ {
		user := ip(b.rng)
		sess := fmt.Sprintf("bot%d", bot)
		t := within(b.rng, cfg.Start)

		// DW runs: the same template swept over many object ids — the
		// paper's most frequent antipattern (Table 6 rows 1–3).
		band := bands[bot%len(bands)]
		for r := 0; r < cfg.DWRuns; r++ {
			g := b.nextGroup()
			n := b.runLen(cfg)
			for q := 0; q < n; q++ {
				t = t.Add(time.Duration(50+b.rng.Intn(400)) * time.Millisecond)
				objid := 587731186000000000 + b.rng.Int63n(1000000000)
				stmt := fmt.Sprintf("SELECT rowc_%s, colc_%s FROM photoprimary WHERE objid=%d", band, band, objid)
				b.emit(t, user, sess, stmt, 1, Label{Kind: KindDW, Group: g})
			}
			t = t.Add(time.Duration(1+b.rng.Intn(20)) * time.Minute)
		}

		// DS runs: different select lists over the same object (Table 6
		// rows 4–5). Each run uses distinct select lists so no statement
		// repeats within a run (a repeat would be a duplicate, not a
		// DS-Stifle).
		dsLists := []string{
			"rowc_g, colc_g", "rowc_r, colc_r", "rowc_i, colc_i",
			"ra, dec", "u, z", "flags, status", "type, htmid",
		}
		for r := 0; r < cfg.DSRuns; r++ {
			g := b.nextGroup()
			n := b.runLen(cfg)
			if n > len(dsLists) {
				n = len(dsLists)
			}
			objid := 587731186000000000 + b.rng.Int63n(1000000000)
			for q := 0; q < n; q++ {
				t = t.Add(time.Duration(50+b.rng.Intn(400)) * time.Millisecond)
				stmt := fmt.Sprintf("SELECT %s FROM photoprimary WHERE objid=%d", dsLists[q], objid)
				b.emit(t, user, sess, stmt, 1, Label{Kind: KindDS, Group: g})
			}
			t = t.Add(time.Duration(1+b.rng.Intn(20)) * time.Minute)
		}

		// DF runs: the same object looked up across redundant tables.
		for r := 0; r < cfg.DFRuns; r++ {
			g := b.nextGroup()
			objid := 587731186000000000 + b.rng.Int63n(1000000000)
			pairs := []string{
				fmt.Sprintf("SELECT ra, dec FROM photoprimary WHERE objid=%d", objid),
				fmt.Sprintf("SELECT flags, status FROM photoobjall WHERE objid=%d", objid),
			}
			for _, stmt := range pairs {
				t = t.Add(time.Duration(50+b.rng.Intn(400)) * time.Millisecond)
				b.emit(t, user, sess, stmt, 1, Label{Kind: KindDF, Group: g})
			}
			t = t.Add(time.Duration(1+b.rng.Intn(20)) * time.Minute)
		}
	}
}

func genCTH(b *builder, cfg Config) {
	followers := func() int {
		return cfg.CTHFollowersMin + b.rng.Intn(cfg.CTHFollowersMax-cfg.CTHFollowersMin+1)
	}
	// True chains come from two proprietary applications (few IPs): the
	// head's result objids feed the followers immediately.
	trueUsers := []string{ip(b.rng), ip(b.rng)}
	tables := []string{"Galaxy", "Star", "photoobjall", "specobj", "photoprimary"}
	for g := 0; g < cfg.CTHTrueGroups; g++ {
		user := trueUsers[g%len(trueUsers)]
		sess := fmt.Sprintf("cth%d", g)
		t := within(b.rng, cfg.Start)
		group := b.nextGroup()
		n := followers()
		if g%3 == 2 {
			// Family 2 (paper Table 9): list the database objects, then
			// fetch the chosen ones' documentation.
			head := "SELECT name, type FROM DBObjects WHERE type='U' ORDER BY name"
			b.emit(t, user, sess, head, int64(len(tables)), Label{Kind: KindCTHTrue, Group: group})
			for q := 0; q < n; q++ {
				t = t.Add(time.Duration(20+b.rng.Intn(200)) * time.Millisecond)
				stmt := fmt.Sprintf("SELECT access FROM DBObjects WHERE name='%s'", tables[q%len(tables)])
				b.emit(t, user, sess, stmt, 1, Label{Kind: KindCTHTrue, Group: group})
			}
			continue
		}
		// Family 1 (paper Table 10): fetch a range of objids, then ask for
		// each returned object immediately.
		lo := b.rng.Int63n(1 << 40)
		head := fmt.Sprintf("SELECT objid, ra, dec FROM photoprimary WHERE htmid between %d and %d", lo, lo+1000)
		b.emit(t, user, sess, head, int64(n), Label{Kind: KindCTHTrue, Group: group})
		base := 587731186000000000 + b.rng.Int63n(1000000000)
		for q := 0; q < n; q++ {
			t = t.Add(time.Duration(20+b.rng.Intn(200)) * time.Millisecond)
			stmt := fmt.Sprintf("SELECT u, g, r, i, z FROM photoprimary WHERE objid=%d", base+int64(q))
			b.emit(t, user, sess, stmt, 1, Label{Kind: KindCTHTrue, Group: group})
		}
	}
	// False candidates: structurally identical shape, but each from a
	// different casual user whose follow-up value does not come from the
	// head result (the user reflected and typed something else). Their user
	// popularity is high and per-identity frequency low — Fig. 2(d)'s
	// separation.
	headCols := []string{"ra", "dec", "r", "u", "z"}
	followCols := []string{"dec", "flags", "status", "type", "htmid"}
	for g := 0; g < cfg.CTHFalseGroups; g++ {
		user := ip(b.rng)
		sess := fmt.Sprintf("cthf%d", g)
		t := within(b.rng, cfg.Start)
		group := b.nextGroup()
		ra := b.rng.Float64() * 360
		// Varying the selected and fetched columns yields many distinct
		// candidate identities, like the paper's 50 hand-checked ones.
		hc := headCols[g%len(headCols)]
		fc := followCols[(g/len(headCols))%len(followCols)]
		head := fmt.Sprintf("SELECT objid, %s FROM photoobjall WHERE ra between %.3f and %.3f", hc, ra, ra+0.5)
		b.emit(t, user, sess, head, int64(b.rng.Intn(40)), Label{Kind: KindCTHFalse, Group: group})
		n := 2 + b.rng.Intn(2)
		for q := 0; q < n; q++ {
			t = t.Add(time.Duration(10+b.rng.Intn(50)) * time.Second)
			stmt := fmt.Sprintf("SELECT %s FROM photoobjall WHERE objid=%d", fc, b.rng.Int63n(1<<50))
			b.emit(t, user, sess, stmt, 1, Label{Kind: KindCTHFalse, Group: group})
		}
	}
}

func genSWS(b *builder, cfg Config) {
	for bot := 0; bot < cfg.SWSBots; bot++ {
		user := ip(b.rng)
		sess := fmt.Sprintf("sws%d", bot)
		t := within(b.rng, cfg.Start)
		window := int64(100000)
		pos := int64(0)
		for q := 0; q < cfg.QueriesPerSWSBot; q++ {
			t = t.Add(time.Duration(500+b.rng.Intn(3000)) * time.Millisecond)
			var stmt string
			if bot%2 == 0 {
				stmt = fmt.Sprintf("SELECT count(*) FROM photoprimary WHERE htmid>=%d and htmid<=%d", pos, pos+window-1)
			} else {
				stmt = fmt.Sprintf("SELECT objid, ra, dec FROM photoprimary WHERE htmid>=%d and htmid<=%d", pos, pos+window-1)
			}
			pos += window // disjoint marching windows
			b.emit(t, user, sess, stmt, int64(b.rng.Intn(1000)), Label{Kind: KindSWS})
			// A long download pauses now and then.
			if b.rng.Float64() < 0.01 {
				t = t.Add(time.Duration(10+b.rng.Intn(50)) * time.Minute)
			}
		}
	}
}

func genSNC(b *builder, cfg Config) {
	for q := 0; q < cfg.SNCQueries; q++ {
		user := ip(b.rng)
		t := within(b.rng, cfg.Start)
		op := "="
		not := ""
		if q%2 == 1 {
			op = "<>"
			not = "NOT "
		}
		_ = not
		stmt := fmt.Sprintf("SELECT objid FROM photoprimary WHERE flags %s NULL", op)
		b.emit(t, user, fmt.Sprintf("snc%d", q), stmt, 0, Label{Kind: KindSNC})
	}
}

func genNoise(b *builder, cfg Config) {
	// NoiseRate is relative to what has been generated so far (the SELECT
	// traffic).
	n := int(float64(len(b.items)) * cfg.NoiseRate)
	noise := []string{
		"INSERT INTO MyTable VALUES (1, 2, 3)",
		"UPDATE MyTable SET a = 1 WHERE b = 2",
		"DELETE FROM MyTable WHERE a = 1",
		"CREATE TABLE #results (objid bigint)",
		"DROP TABLE #results",
		"EXEC spGetNeighbors 12345",
		"SELECT FROM photoprimary",          // syntax error
		"SELECT objid FROM WHERE objid = 1", // syntax error
	}
	for q := 0; q < n; q++ {
		user := ip(b.rng)
		t := within(b.rng, cfg.Start)
		stmt := noise[b.rng.Intn(len(noise))]
		b.emit(t, user, "", stmt, -1, Label{Kind: KindNoise})
	}
}
