package workload

import (
	"reflect"
	"testing"

	"sqlclean/internal/sqlast"
	"sqlclean/internal/sqlparser"
)

func TestGenerateIsDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	l1, t1 := Generate(cfg)
	l2, t2 := Generate(cfg)
	if !reflect.DeepEqual(l1, l2) {
		t.Fatal("same config must generate the same log")
	}
	if !reflect.DeepEqual(t1.Labels, t2.Labels) {
		t.Fatal("same config must generate the same truth")
	}
}

func TestSeedChangesLog(t *testing.T) {
	cfg := DefaultConfig()
	l1, _ := Generate(cfg)
	cfg.Seed = 99
	l2, _ := Generate(cfg)
	if len(l1) == len(l2) && reflect.DeepEqual(l1, l2) {
		t.Fatal("different seeds must differ")
	}
}

func TestLogIsTimeOrderedWithSeq(t *testing.T) {
	l, _ := Generate(DefaultConfig())
	for i := 1; i < len(l); i++ {
		if l[i].Time.Before(l[i-1].Time) {
			t.Fatalf("entry %d out of order", i)
		}
		if l[i].Seq != int64(i) {
			t.Fatalf("seq %d != %d", l[i].Seq, i)
		}
	}
}

func TestTruthCoversEveryEntry(t *testing.T) {
	l, truth := Generate(DefaultConfig())
	if len(truth.Labels) != len(l) {
		t.Fatalf("labels %d, entries %d", len(truth.Labels), len(l))
	}
	for _, lab := range truth.Labels {
		if lab.Kind == "" {
			t.Fatal("unlabeled entry")
		}
	}
}

func TestAllKindsPresent(t *testing.T) {
	_, truth := Generate(DefaultConfig())
	for _, k := range []string{
		KindHuman, KindWebUI, KindDW, KindDS, KindDF,
		KindCTHTrue, KindCTHFalse, KindSWS, KindSNC, KindDup, KindNoise,
	} {
		if truth.Count(k) == 0 {
			t.Errorf("kind %s absent", k)
		}
	}
}

func TestCompositionSharesRoughlyMatchPaper(t *testing.T) {
	l, truth := Generate(DefaultConfig())
	total := float64(len(l))
	noise := float64(truth.Count(KindNoise)) / total
	if noise < 0.02 || noise > 0.07 {
		t.Errorf("noise share: %.3f", noise)
	}
	dups := float64(truth.Count(KindDup)) / total
	if dups < 0.01 || dups > 0.08 {
		t.Errorf("duplicate share: %.3f", dups)
	}
	stifle := float64(truth.Count(KindDW)+truth.Count(KindDS)+truth.Count(KindDF)) / total
	if stifle < 0.10 || stifle > 0.45 {
		t.Errorf("stifle share: %.3f", stifle)
	}
}

func TestGeneratedSelectsParse(t *testing.T) {
	l, truth := Generate(DefaultConfig())
	for i, e := range l {
		kind := truth.Labels[i].Kind
		if kind == KindNoise {
			continue // noise intentionally includes DML and broken SQL
		}
		if _, err := sqlparser.Parse(e.Statement); err != nil {
			t.Fatalf("%s statement does not parse: %q: %v", kind, e.Statement, err)
		}
	}
}

func TestNoiseContainsErrorsAndDML(t *testing.T) {
	l, truth := Generate(DefaultConfig())
	classes := map[sqlast.StatementClass]int{}
	for i, e := range l {
		if truth.Labels[i].Kind != KindNoise {
			continue
		}
		classes[sqlparser.Classify(e.Statement)]++
	}
	if classes[sqlast.ClassDML] == 0 || classes[sqlast.ClassError] == 0 {
		t.Errorf("noise classes: %v", classes)
	}
}

func TestScale(t *testing.T) {
	small, _ := Generate(DefaultConfig().Scale(0.5))
	base, _ := Generate(DefaultConfig())
	big, _ := Generate(DefaultConfig().Scale(2))
	if !(len(small) < len(base) && len(base) < len(big)) {
		t.Errorf("sizes: %d %d %d", len(small), len(base), len(big))
	}
	// Zero counts stay zero, non-zero stay at least 1.
	cfg := DefaultConfig()
	cfg.SWSBots = 0
	scaled := cfg.Scale(0.001)
	if scaled.SWSBots != 0 || scaled.Humans < 1 {
		t.Errorf("scale floor: %+v", scaled)
	}
}

func TestDuplicatesFollowTheirOriginal(t *testing.T) {
	l, truth := Generate(DefaultConfig())
	for i := range l {
		if truth.Labels[i].Kind != KindDup {
			continue
		}
		// A duplicate repeats some earlier statement by the same user.
		found := false
		for j := i - 1; j >= 0 && j >= i-50; j-- {
			if l[j].User == l[i].User && l[j].Statement == l[i].Statement {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("duplicate at %d has no nearby original", i)
		}
	}
}

func TestCTHGroupsAreDependentChains(t *testing.T) {
	l, truth := Generate(DefaultConfig())
	groups := map[int][]int{}
	for i := range l {
		lab := truth.Labels[i]
		if lab.Kind == KindCTHTrue {
			groups[lab.Group] = append(groups[lab.Group], i)
		}
	}
	if len(groups) == 0 {
		t.Fatal("no true CTH groups")
	}
	for g, idxs := range groups {
		if len(idxs) < 2 {
			t.Errorf("group %d has %d members", g, len(idxs))
		}
		user := l[idxs[0]].User
		for _, i := range idxs {
			if l[i].User != user {
				t.Errorf("group %d spans users", g)
			}
		}
	}
}

func TestTruthLabelOutOfRange(t *testing.T) {
	_, truth := Generate(DefaultConfig())
	if truth.Label(-1).Kind != "" || truth.Label(1<<40).Kind != "" {
		t.Error("out-of-range labels must be empty")
	}
}
