package exec

import (
	"strings"
	"testing"
	"time"

	"sqlclean/internal/schema"
	"sqlclean/internal/storage"
)

func demoEngine(t *testing.T) *Engine {
	t.Helper()
	cat := schema.New()
	cat.AddTable("emp",
		schema.Column{Name: "id", Type: "int", Key: true},
		schema.Column{Name: "name", Type: "string"},
		schema.Column{Name: "dep", Type: "string"},
		schema.Column{Name: "salary", Type: "int"},
		schema.Column{Name: "bonus", Type: "int"},
	)
	cat.AddTable("dep",
		schema.Column{Name: "dep", Type: "string", Key: true},
		schema.Column{Name: "city", Type: "string"},
	)
	db := storage.NewDB(cat)
	rows := []storage.Row{
		{storage.Int(1), storage.Str("ann"), storage.Str("sales"), storage.Int(100), storage.Int(10)},
		{storage.Int(2), storage.Str("bob"), storage.Str("sales"), storage.Int(80), storage.Null},
		{storage.Int(3), storage.Str("cyd"), storage.Str("eng"), storage.Int(120), storage.Int(20)},
		{storage.Int(4), storage.Str("dan"), storage.Str("eng"), storage.Int(90), storage.Int(5)},
		{storage.Int(5), storage.Str("eve"), storage.Str("hr"), storage.Int(70), storage.Null},
	}
	for _, r := range rows {
		if err := db.Insert("emp", r); err != nil {
			t.Fatal(err)
		}
	}
	for _, r := range []storage.Row{
		{storage.Str("sales"), storage.Str("Rome")},
		{storage.Str("eng"), storage.Str("Oslo")},
	} {
		if err := db.Insert("dep", r); err != nil {
			t.Fatal(err)
		}
	}
	return New(db)
}

func query(t *testing.T, e *Engine, q string) *ResultSet {
	t.Helper()
	rs, err := e.Execute(q)
	if err != nil {
		t.Fatalf("execute %q: %v", q, err)
	}
	return rs
}

func firstCol(rs *ResultSet) []string {
	var out []string
	for _, r := range rs.Rows {
		out = append(out, r[0].String())
	}
	return out
}

func TestSelectAll(t *testing.T) {
	e := demoEngine(t)
	rs := query(t, e, "SELECT * FROM emp")
	if len(rs.Rows) != 5 || len(rs.Cols) != 5 {
		t.Fatalf("rows=%d cols=%v", len(rs.Rows), rs.Cols)
	}
}

func TestFilterEquality(t *testing.T) {
	e := demoEngine(t)
	rs := query(t, e, "SELECT name FROM emp WHERE id = 3")
	if len(rs.Rows) != 1 || rs.Rows[0][0].S != "cyd" {
		t.Fatalf("rows: %v", rs.Rows)
	}
	if e.Stats.IndexLookups != 1 {
		t.Errorf("index not used: %+v", e.Stats)
	}
}

func TestFilterInUsesIndex(t *testing.T) {
	e := demoEngine(t)
	rs := query(t, e, "SELECT name FROM emp WHERE id IN (1, 3, 99)")
	if len(rs.Rows) != 2 {
		t.Fatalf("rows: %v", rs.Rows)
	}
	if e.Stats.IndexLookups != 1 || e.Stats.RowsScanned != 2 {
		t.Errorf("stats: %+v", e.Stats)
	}
}

func TestFullScanWhenNoIndex(t *testing.T) {
	e := demoEngine(t)
	query(t, e, "SELECT name FROM emp WHERE dep = 'eng'")
	if e.Stats.RowsScanned != 5 || e.Stats.IndexLookups != 0 {
		t.Errorf("stats: %+v", e.Stats)
	}
}

func TestComparisonsAndLogic(t *testing.T) {
	e := demoEngine(t)
	rs := query(t, e, "SELECT name FROM emp WHERE salary >= 90 AND dep <> 'hr' ORDER BY name")
	got := firstCol(rs)
	want := []string{"ann", "cyd", "dan"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("got %v", got)
	}
	rs = query(t, e, "SELECT name FROM emp WHERE salary < 80 OR dep = 'eng' ORDER BY name DESC")
	got = firstCol(rs)
	want = []string{"eve", "dan", "cyd"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("got %v", got)
	}
}

func TestBetweenLikeIsNull(t *testing.T) {
	e := demoEngine(t)
	if rs := query(t, e, "SELECT name FROM emp WHERE salary BETWEEN 80 AND 100 ORDER BY name"); len(rs.Rows) != 3 {
		t.Errorf("between: %v", rs.Rows)
	}
	if rs := query(t, e, "SELECT name FROM emp WHERE name LIKE 'a%'"); len(rs.Rows) != 1 {
		t.Errorf("like: %v", rs.Rows)
	}
	if rs := query(t, e, "SELECT name FROM emp WHERE name LIKE '_o_'"); len(rs.Rows) != 1 {
		t.Errorf("like underscore: %v", rs.Rows)
	}
	if rs := query(t, e, "SELECT name FROM emp WHERE bonus IS NULL ORDER BY name"); len(rs.Rows) != 2 {
		t.Errorf("is null: %v", rs.Rows)
	}
	if rs := query(t, e, "SELECT name FROM emp WHERE bonus IS NOT NULL"); len(rs.Rows) != 3 {
		t.Errorf("is not null: %v", rs.Rows)
	}
}

func TestNullComparisonsAreUnknown(t *testing.T) {
	e := demoEngine(t)
	// bonus = NULL never matches (the SNC antipattern's cause).
	if rs := query(t, e, "SELECT name FROM emp WHERE bonus = NULL"); len(rs.Rows) != 0 {
		t.Errorf("= NULL matched: %v", rs.Rows)
	}
	if rs := query(t, e, "SELECT name FROM emp WHERE bonus <> NULL"); len(rs.Rows) != 0 {
		t.Errorf("<> NULL matched: %v", rs.Rows)
	}
}

func TestArithmeticInProjectionAndFilter(t *testing.T) {
	e := demoEngine(t)
	rs := query(t, e, "SELECT salary + bonus AS total FROM emp WHERE id = 1")
	if rs.Rows[0][0].I != 110 {
		t.Fatalf("total: %v", rs.Rows[0][0])
	}
	rs = query(t, e, "SELECT name FROM emp WHERE salary * 2 > 200")
	if len(rs.Rows) != 1 {
		t.Fatalf("filter arith: %v", rs.Rows)
	}
	rs = query(t, e, "SELECT 10 % 3, 7 / 2, 2.5 * 2 FROM emp WHERE id = 1")
	if rs.Rows[0][0].I != 1 || rs.Rows[0][1].I != 3 || rs.Rows[0][2].F != 5 {
		t.Fatalf("arith: %v", rs.Rows[0])
	}
}

func TestDivisionByZero(t *testing.T) {
	e := demoEngine(t)
	if _, err := e.Execute("SELECT 1 / 0 FROM emp"); err == nil {
		t.Error("division by zero must error")
	}
}

func TestAggregates(t *testing.T) {
	e := demoEngine(t)
	rs := query(t, e, "SELECT count(*), sum(salary), min(salary), max(salary), avg(salary) FROM emp")
	r := rs.Rows[0]
	if r[0].I != 5 || r[1].I != 460 || r[2].I != 70 || r[3].I != 120 || r[4].F != 92 {
		t.Fatalf("aggregates: %v", r)
	}
	// count(col) skips NULLs; count(DISTINCT col) deduplicates.
	rs = query(t, e, "SELECT count(bonus), count(DISTINCT dep) FROM emp")
	if rs.Rows[0][0].I != 3 || rs.Rows[0][1].I != 3 {
		t.Fatalf("count variants: %v", rs.Rows[0])
	}
}

func TestGroupByHaving(t *testing.T) {
	e := demoEngine(t)
	rs := query(t, e, "SELECT dep, count(*) AS c FROM emp GROUP BY dep HAVING count(*) > 1 ORDER BY dep")
	if len(rs.Rows) != 2 {
		t.Fatalf("groups: %v", rs.Rows)
	}
	for _, r := range rs.Rows {
		if r[1].I != 2 {
			t.Errorf("group count: %v", r)
		}
	}
}

func TestDistinct(t *testing.T) {
	e := demoEngine(t)
	rs := query(t, e, "SELECT DISTINCT dep FROM emp")
	if len(rs.Rows) != 3 {
		t.Fatalf("distinct: %v", rs.Rows)
	}
}

func TestTopAndPercent(t *testing.T) {
	e := demoEngine(t)
	rs := query(t, e, "SELECT TOP 2 name FROM emp ORDER BY salary DESC")
	got := firstCol(rs)
	if len(got) != 2 || got[0] != "cyd" || got[1] != "ann" {
		t.Fatalf("top: %v", got)
	}
	rs = query(t, e, "SELECT TOP 40 PERCENT name FROM emp")
	if len(rs.Rows) != 2 {
		t.Fatalf("top percent: %v", rs.Rows)
	}
}

func TestInnerJoinHashPath(t *testing.T) {
	e := demoEngine(t)
	rs := query(t, e, "SELECT e.name, d.city FROM emp e INNER JOIN dep d ON e.dep = d.dep ORDER BY e.name")
	if len(rs.Rows) != 4 { // eve's hr department has no dep row
		t.Fatalf("join rows: %v", rs.Rows)
	}
	if rs.Rows[0][0].S != "ann" || rs.Rows[0][1].S != "Rome" {
		t.Fatalf("first row: %v", rs.Rows[0])
	}
}

func TestLeftJoinPadsNulls(t *testing.T) {
	e := demoEngine(t)
	rs := query(t, e, "SELECT e.name, d.city FROM emp e LEFT JOIN dep d ON e.dep = d.dep WHERE d.city IS NULL")
	if len(rs.Rows) != 1 || rs.Rows[0][0].S != "eve" {
		t.Fatalf("left join: %v", rs.Rows)
	}
}

func TestNestedLoopJoinOnInequality(t *testing.T) {
	e := demoEngine(t)
	rs := query(t, e, "SELECT count(*) FROM emp a INNER JOIN emp b ON a.salary > b.salary")
	if rs.Rows[0][0].I != 10 { // 5 distinct salaries → 10 ordered pairs
		t.Fatalf("count: %v", rs.Rows[0][0])
	}
}

func TestCommaFromIsCrossProduct(t *testing.T) {
	e := demoEngine(t)
	rs := query(t, e, "SELECT count(*) FROM emp, dep")
	if rs.Rows[0][0].I != 10 {
		t.Fatalf("cross product: %v", rs.Rows[0][0])
	}
}

func TestDerivedTable(t *testing.T) {
	e := demoEngine(t)
	rs := query(t, e, "SELECT s.dep FROM (SELECT dep, count(*) AS c FROM emp GROUP BY dep) s WHERE s.c = 1")
	if len(rs.Rows) != 1 || rs.Rows[0][0].S != "hr" {
		t.Fatalf("derived: %v", rs.Rows)
	}
}

func TestInSubqueryAndExists(t *testing.T) {
	e := demoEngine(t)
	rs := query(t, e, "SELECT name FROM emp WHERE dep IN (SELECT dep FROM dep WHERE city = 'Oslo')")
	if len(rs.Rows) != 2 {
		t.Fatalf("in subquery: %v", rs.Rows)
	}
	rs = query(t, e, "SELECT name FROM emp WHERE EXISTS (SELECT 1 FROM dep WHERE city = 'Nowhere')")
	if len(rs.Rows) != 0 {
		t.Fatalf("exists: %v", rs.Rows)
	}
	rs = query(t, e, "SELECT name FROM emp WHERE salary = (SELECT max(salary) FROM emp)")
	if len(rs.Rows) != 1 || rs.Rows[0][0].S != "cyd" {
		t.Fatalf("scalar subquery: %v", rs.Rows)
	}
}

func TestCaseExpression(t *testing.T) {
	e := demoEngine(t)
	rs := query(t, e, "SELECT CASE WHEN salary > 100 THEN 'high' ELSE 'low' END FROM emp WHERE id = 3")
	if rs.Rows[0][0].S != "high" {
		t.Fatalf("case: %v", rs.Rows[0][0])
	}
	rs = query(t, e, "SELECT CASE dep WHEN 'hr' THEN 1 ELSE 0 END FROM emp WHERE id = 5")
	if rs.Rows[0][0].I != 1 {
		t.Fatalf("operand case: %v", rs.Rows[0][0])
	}
}

func TestUnionVariants(t *testing.T) {
	e := demoEngine(t)
	rs := query(t, e, "SELECT dep FROM emp UNION SELECT dep FROM dep")
	if len(rs.Rows) != 3 {
		t.Fatalf("union: %v", rs.Rows)
	}
	rs = query(t, e, "SELECT dep FROM emp UNION ALL SELECT dep FROM dep")
	if len(rs.Rows) != 7 {
		t.Fatalf("union all: %v", rs.Rows)
	}
	rs = query(t, e, "SELECT dep FROM emp EXCEPT SELECT dep FROM dep")
	if len(rs.Rows) != 1 || rs.Rows[0][0].S != "hr" {
		t.Fatalf("except: %v", rs.Rows)
	}
	rs = query(t, e, "SELECT dep FROM emp INTERSECT SELECT dep FROM dep")
	if len(rs.Rows) != 2 {
		t.Fatalf("intersect: %v", rs.Rows)
	}
}

func TestScalarFunctions(t *testing.T) {
	e := demoEngine(t)
	rs := query(t, e, "SELECT upper(name), abs(0 - salary), isnull(bonus, 0) FROM emp WHERE id = 2")
	r := rs.Rows[0]
	if r[0].S != "BOB" || r[1].F != 80 || r[2].I != 0 {
		t.Fatalf("funcs: %v", r)
	}
	// Unknown scalar functions evaluate to NULL instead of failing.
	rs = query(t, e, "SELECT someexotic(name) FROM emp WHERE id = 1")
	if !rs.Rows[0][0].IsNull() {
		t.Fatalf("unknown func: %v", rs.Rows[0][0])
	}
}

func TestSelectWithoutFrom(t *testing.T) {
	e := demoEngine(t)
	rs := query(t, e, "SELECT 1 + 2")
	if len(rs.Rows) != 1 || rs.Rows[0][0].I != 3 {
		t.Fatalf("constant select: %v", rs.Rows)
	}
}

func TestErrors(t *testing.T) {
	e := demoEngine(t)
	for _, q := range []string{
		"SELECT x FROM emp",          // unknown column
		"SELECT name FROM ghost",     // unknown table
		"SELECT f(1) FROM nowhere",   // unknown table (from)
		"SELECT * FROM fNoSuch(1) n", // unknown TVF
		"INSERT INTO emp VALUES (1)", // not a select
	} {
		if _, err := e.Execute(q); err == nil {
			t.Errorf("%q: want error", q)
		}
	}
}

func TestStatsAccumulation(t *testing.T) {
	e := demoEngine(t)
	query(t, e, "SELECT * FROM emp")
	query(t, e, "SELECT * FROM emp")
	if e.Stats.Statements != 2 || e.Stats.RowsScanned != 10 || e.Stats.RowsReturned != 10 {
		t.Errorf("stats: %+v", e.Stats)
	}
	e.ResetStats()
	if e.Stats.Statements != 0 {
		t.Error("reset failed")
	}
}

func TestCostModel(t *testing.T) {
	m := CostModel{PerStatement: time.Second, PerRowScan: time.Millisecond, PerRowOut: time.Microsecond}
	s := Stats{Statements: 2, RowsScanned: 10, RowsReturned: 3}
	want := 2*time.Second + 10*time.Millisecond + 3*time.Microsecond
	if got := s.Cost(m); got != want {
		t.Errorf("cost: %v want %v", got, want)
	}
	var sum Stats
	sum.Add(s)
	sum.Add(s)
	if sum.Statements != 4 || sum.RowsScanned != 20 {
		t.Errorf("add: %+v", sum)
	}
	d := DefaultCostModel()
	if d.PerStatement <= 0 {
		t.Error("default model must charge per statement")
	}
}

func TestLikeMatcher(t *testing.T) {
	cases := []struct {
		s, pat string
		want   bool
	}{
		{"hello", "h%", true},
		{"hello", "%o", true},
		{"hello", "%ell%", true},
		{"hello", "h_llo", true},
		{"hello", "h_l_o", true},
		{"hello", "h__o", false}, // length mismatch
		{"hello", "", false},
		{"", "%", true},
		{"abc", "abc", true},
		{"ABC", "abc", true}, // case-insensitive like T-SQL defaults
	}
	for _, c := range cases {
		if got := likeMatch(c.s, c.pat); got != c.want {
			t.Errorf("likeMatch(%q, %q) = %v", c.s, c.pat, got)
		}
	}
}

func TestCastEvaluation(t *testing.T) {
	e := demoEngine(t)
	rs := query(t, e, "SELECT CAST(salary AS varchar(10)), CAST('42' AS int), CAST(3.9 AS int), CAST(id AS float) FROM emp WHERE id = 1")
	r := rs.Rows[0]
	if r[0].S != "100" || r[1].I != 42 || r[2].I != 3 || r[3].F != 1 {
		t.Fatalf("cast row: %v", r)
	}
	rs = query(t, e, "SELECT CAST(bonus AS int) FROM emp WHERE id = 2")
	if !rs.Rows[0][0].IsNull() {
		t.Fatalf("cast NULL: %v", rs.Rows[0][0])
	}
	if _, err := e.Execute("SELECT CAST(name AS int) FROM emp WHERE id = 1"); err == nil {
		t.Error("cast 'ann' to int must fail")
	}
	if _, err := e.Execute("SELECT CAST(id AS blob) FROM emp"); err == nil {
		t.Error("unsupported cast target must fail")
	}
}

func TestOrderByAggregateOutput(t *testing.T) {
	e := demoEngine(t)
	rs := query(t, e, "SELECT dep, count(*) AS c FROM emp GROUP BY dep ORDER BY c DESC, dep")
	if len(rs.Rows) != 3 {
		t.Fatalf("rows: %v", rs.Rows)
	}
	// sales(2) and eng(2) tie on count, then dep ascending; hr(1) last.
	if rs.Rows[0][0].S != "eng" || rs.Rows[1][0].S != "sales" || rs.Rows[2][0].S != "hr" {
		t.Fatalf("order: %v", rs.Rows)
	}
	// ORDER BY the aggregate expression itself (no alias).
	rs = query(t, e, "SELECT dep, sum(salary) FROM emp GROUP BY dep ORDER BY sum(salary) DESC")
	if got, _ := rs.Rows[0][1].AsFloat(); got != 210 {
		t.Fatalf("top sum: %v", rs.Rows[0])
	}
	// ORDER BY something that is not an output column must error.
	if _, err := e.Execute("SELECT dep FROM emp GROUP BY dep ORDER BY salary"); err == nil {
		t.Error("want error for non-output ORDER BY")
	}
}

func TestTopWithGroupedOrder(t *testing.T) {
	e := demoEngine(t)
	rs := query(t, e, "SELECT TOP 1 dep, count(*) AS c FROM emp GROUP BY dep ORDER BY c DESC, dep")
	if len(rs.Rows) != 1 || rs.Rows[0][0].S != "eng" {
		t.Fatalf("rows: %v", rs.Rows)
	}
}

func TestOrderByPositional(t *testing.T) {
	e := demoEngine(t)
	rs := query(t, e, "SELECT name, salary FROM emp ORDER BY 2 DESC")
	if rs.Rows[0][0].S != "cyd" {
		t.Fatalf("positional order: %v", rs.Rows)
	}
	rs = query(t, e, "SELECT dep, count(*) FROM emp GROUP BY dep ORDER BY 2 DESC, 1")
	if rs.Rows[0][0].S != "eng" || rs.Rows[2][0].S != "hr" {
		t.Fatalf("grouped positional order: %v", rs.Rows)
	}
}

func TestExplain(t *testing.T) {
	e := demoEngine(t)
	plan, err := e.Explain("SELECT name FROM emp WHERE id = 3")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "IndexLookup(emp.id =)") {
		t.Errorf("plan:\n%s", plan)
	}
	plan, _ = e.Explain("SELECT name FROM emp WHERE dep = 'x'")
	if !strings.Contains(plan, "TableScan(emp, 5 rows)") {
		t.Errorf("plan:\n%s", plan)
	}
	plan, _ = e.Explain("SELECT e.name FROM emp e JOIN dep d ON e.dep = d.dep")
	if !strings.Contains(plan, "HashJoin(INNER JOIN)") {
		t.Errorf("plan:\n%s", plan)
	}
	plan, _ = e.Explain("SELECT count(*) FROM emp a JOIN emp b ON a.salary > b.salary")
	if !strings.Contains(plan, "NestedLoopJoin") || !strings.Contains(plan, "Aggregate") {
		t.Errorf("plan:\n%s", plan)
	}
	plan, _ = e.Explain("SELECT TOP 2 dep, count(*) FROM emp GROUP BY dep ORDER BY dep")
	for _, want := range []string{"Top(2)", "Sort(dep)", "HashAggregate(group by dep)"} {
		if !strings.Contains(plan, want) {
			t.Errorf("plan missing %q:\n%s", want, plan)
		}
	}
	plan, _ = e.Explain("SELECT s.c FROM (SELECT count(*) AS c FROM emp) s")
	if !strings.Contains(plan, "Derived(s)") {
		t.Errorf("plan:\n%s", plan)
	}
	plan, _ = e.Explain("SELECT name FROM emp WHERE id IN (1, 2)")
	if !strings.Contains(plan, "IndexLookup(emp.id IN)") {
		t.Errorf("plan:\n%s", plan)
	}
	if _, err := e.Explain("SELECT broken FROM"); err == nil {
		t.Error("want parse error")
	}
}
