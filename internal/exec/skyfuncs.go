package exec

import (
	"fmt"
	"math"
	"strings"

	"sqlclean/internal/storage"
)

// RegisterSkyFuncs installs emulations of the SkyServer table-valued
// functions the paper's top patterns use (Table 7): fGetNearbyObjEq,
// fGetNearestObjEq and fGetObjFromRect. They search the photoprimary table
// by equatorial coordinates; distances use a flat-sky approximation, which
// is accurate enough for the synthetic workload and keeps the code
// dependency-free.
func RegisterSkyFuncs(e *Engine) {
	e.RegisterFunc("fGetNearbyObjEq", func(args []storage.Value) (*Relation, error) {
		ra, dec, r, err := raDecR(args)
		if err != nil {
			return nil, err
		}
		return e.searchNearby(ra, dec, r, -1)
	})
	e.RegisterFunc("fGetNearestObjEq", func(args []storage.Value) (*Relation, error) {
		ra, dec, r, err := raDecR(args)
		if err != nil {
			return nil, err
		}
		return e.searchNearby(ra, dec, r, 1)
	})
	// Aliases real logs use for the same searches.
	e.RegisterFunc("fGetNearbyObjAllEq", func(args []storage.Value) (*Relation, error) {
		ra, dec, r, err := raDecR(args)
		if err != nil {
			return nil, err
		}
		return e.searchNearby(ra, dec, r, -1)
	})
	e.RegisterFunc("fGetObjFromRectEq", func(args []storage.Value) (*Relation, error) {
		return e.rectSearch(args)
	})
	e.RegisterFunc("fGetObjFromRect", func(args []storage.Value) (*Relation, error) {
		return e.rectSearch(args)
	})
}

func (e *Engine) rectSearch(args []storage.Value) (*Relation, error) {
	if len(args) != 4 {
		return nil, fmt.Errorf("exec: rectangle search wants 4 arguments, got %d", len(args))
	}
	vals := make([]float64, 4)
	for i, a := range args {
		f, ok := a.AsFloat()
		if !ok {
			// NULL argument (unbound @variable): empty result.
			return &Relation{Cols: nearbyCols()}, nil
		}
		vals[i] = f
	}
	return e.searchRect(vals[0], vals[1], vals[2], vals[3])
}

func raDecR(args []storage.Value) (ra, dec, r float64, err error) {
	if len(args) != 3 {
		return 0, 0, 0, fmt.Errorf("exec: spatial function wants 3 arguments, got %d", len(args))
	}
	fs := make([]float64, 3)
	for i, a := range args {
		f, ok := a.AsFloat()
		if !ok {
			return math.NaN(), 0, 0, nil // NULL → empty search
		}
		fs[i] = f
	}
	return fs[0], fs[1], fs[2], nil
}

func nearbyCols() []ColInfo {
	return []ColInfo{{Name: "objid"}, {Name: "ra"}, {Name: "dec"}, {Name: "distance"}}
}

// searchNearby scans photoprimary for objects within r arcmin of (ra, dec).
// limit > 0 keeps only the closest `limit` objects.
func (e *Engine) searchNearby(ra, dec, r float64, limit int) (*Relation, error) {
	rel := &Relation{Cols: nearbyCols()}
	if math.IsNaN(ra) {
		return rel, nil
	}
	tbl, ok := e.DB.Table("photoprimary")
	if !ok {
		return nil, fmt.Errorf("exec: spatial search needs table photoprimary")
	}
	objIdx, raIdx, decIdx, err := photoCols(tbl)
	if err != nil {
		return nil, err
	}
	rDeg := r / 60 // arcmin → degrees
	type hit struct {
		row  storage.Row
		dist float64
	}
	var best []hit
	for _, row := range tbl.Rows {
		e.Stats.RowsScanned++
		rowRA, _ := row[raIdx].AsFloat()
		rowDec, _ := row[decIdx].AsFloat()
		d := math.Hypot(rowRA-ra, rowDec-dec)
		if d > rDeg {
			continue
		}
		h := hit{dist: d * 60, row: storage.Row{row[objIdx], row[raIdx], row[decIdx], storage.Float(d * 60)}}
		if limit <= 0 {
			rel.Rows = append(rel.Rows, h.row)
			continue
		}
		best = append(best, h)
	}
	if limit > 0 {
		for len(best) > 0 && len(rel.Rows) < limit {
			bi := 0
			for i := 1; i < len(best); i++ {
				if best[i].dist < best[bi].dist {
					bi = i
				}
			}
			rel.Rows = append(rel.Rows, best[bi].row)
			best = append(best[:bi], best[bi+1:]...)
		}
	}
	return rel, nil
}

func (e *Engine) searchRect(ra1, dec1, ra2, dec2 float64) (*Relation, error) {
	rel := &Relation{Cols: nearbyCols()}
	tbl, ok := e.DB.Table("photoprimary")
	if !ok {
		return nil, fmt.Errorf("exec: spatial search needs table photoprimary")
	}
	objIdx, raIdx, decIdx, err := photoCols(tbl)
	if err != nil {
		return nil, err
	}
	raLo, raHi := math.Min(ra1, ra2), math.Max(ra1, ra2)
	decLo, decHi := math.Min(dec1, dec2), math.Max(dec1, dec2)
	for _, row := range tbl.Rows {
		e.Stats.RowsScanned++
		rowRA, _ := row[raIdx].AsFloat()
		rowDec, _ := row[decIdx].AsFloat()
		if rowRA < raLo || rowRA > raHi || rowDec < decLo || rowDec > decHi {
			continue
		}
		rel.Rows = append(rel.Rows, storage.Row{row[objIdx], row[raIdx], row[decIdx], storage.Float(0)})
	}
	return rel, nil
}

func photoCols(tbl *storage.Table) (objIdx, raIdx, decIdx int, err error) {
	get := func(name string) (int, error) {
		i, ok := tbl.ColIndex(name)
		if !ok {
			return 0, fmt.Errorf("exec: table %s lacks column %s", strings.ToLower(tbl.Def.Name), name)
		}
		return i, nil
	}
	if objIdx, err = get("objid"); err != nil {
		return
	}
	if raIdx, err = get("ra"); err != nil {
		return
	}
	decIdx, err = get("dec")
	return
}
