// Package exec executes parsed SELECT statements against a storage.DB. It
// is the substrate for the paper's runtime experiment (§6.3): the same
// statements — original antipattern sequences and their rewrites — run
// against the same data, and a cost model charges the per-statement overhead
// (network round trip, parse, plan) that makes batched rewrites ~29× faster
// on the authors' testbed.
package exec

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"sqlclean/internal/sqlast"
	"sqlclean/internal/sqlparser"
	"sqlclean/internal/storage"
)

// CostModel assigns virtual time to execution work. It separates the
// network round trip (paid once per client request) from the per-statement
// server work (parse, plan, execute setup): the paper's Pack refactoring
// (Example 6) batches many statements into one request and thereby saves
// round trips but not server work, while the merge rewrites (Examples 10,
// 12, 14) save both. The defaults make one short singleton statement cost
// ≈ 0.4 s, matching the per-statement cost implied by the paper's §6.3
// numbers (10 222 statements → 4 450 s).
type CostModel struct {
	// PerRoundTrip is the network cost of one client request (Execute or
	// ExecuteBatch call).
	PerRoundTrip time.Duration
	// PerStatement is the server-side cost of one statement: parsing,
	// planning, execution setup.
	PerStatement time.Duration
	// PerRowScan is charged for every row read from a table or index.
	PerRowScan time.Duration
	// PerRowOut is charged for every result row shipped to the client.
	PerRowOut time.Duration
}

// DefaultCostModel reproduces the §6.3 regime: statement overhead dominates.
func DefaultCostModel() CostModel {
	return CostModel{
		PerRoundTrip: 350 * time.Millisecond,
		PerStatement: 50 * time.Millisecond,
		PerRowScan:   2 * time.Microsecond,
		PerRowOut:    50 * time.Microsecond,
	}
}

// Stats accumulates execution work across statements.
type Stats struct {
	// RoundTrips counts client requests (Execute and ExecuteBatch calls).
	RoundTrips int
	// Statements counts executed statements; a batch contributes one per
	// member.
	Statements   int
	RowsScanned  int64
	RowsReturned int64
	IndexLookups int64
}

// Add accumulates another Stats.
func (s *Stats) Add(o Stats) {
	s.RoundTrips += o.RoundTrips
	s.Statements += o.Statements
	s.RowsScanned += o.RowsScanned
	s.RowsReturned += o.RowsReturned
	s.IndexLookups += o.IndexLookups
}

// Cost converts the accumulated work into virtual time under the model.
func (s Stats) Cost(m CostModel) time.Duration {
	return time.Duration(s.RoundTrips)*m.PerRoundTrip +
		time.Duration(s.Statements)*m.PerStatement +
		time.Duration(s.RowsScanned)*m.PerRowScan +
		time.Duration(s.RowsReturned)*m.PerRowOut
}

// TableFunc emulates a table-valued function: it receives the evaluated
// argument values and returns a result relation.
type TableFunc func(args []storage.Value) (*Relation, error)

// Relation is an intermediate or final result: named, alias-scoped columns
// over rows.
type Relation struct {
	Cols []ColInfo
	Rows []storage.Row
}

// ColInfo names one relation column and the alias scope it belongs to.
type ColInfo struct {
	Alias string // lower-cased source alias/table name; "" for computed
	Name  string // lower-cased column name
}

// ResultSet is what Execute returns to the client.
type ResultSet struct {
	Cols []string
	Rows []storage.Row
}

// Engine executes statements. Not safe for concurrent use.
type Engine struct {
	DB    *storage.DB
	Stats Stats
	funcs map[string]TableFunc
}

// New returns an engine over the database.
func New(db *storage.DB) *Engine {
	return &Engine{DB: db, funcs: map[string]TableFunc{}}
}

// RegisterFunc installs a table-valued function under a (case-insensitive)
// name.
func (e *Engine) RegisterFunc(name string, fn TableFunc) {
	e.funcs[strings.ToLower(name)] = fn
}

// ResetStats clears the accumulated statistics.
func (e *Engine) ResetStats() { e.Stats = Stats{} }

// Execute parses and runs one SELECT statement (one round trip).
func (e *Engine) Execute(sql string) (*ResultSet, error) {
	sel, err := sqlparser.ParseSelect(sql)
	if err != nil {
		return nil, err
	}
	e.Stats.RoundTrips++
	return e.ExecuteSelect(sel)
}

// ExecuteBatch runs a semicolon-separated batch of SELECT statements in one
// round trip — the Pack refactoring of the paper's Example 6: network
// overhead is paid once, server work once per statement. It returns one
// result set per statement; on the first error it stops and returns the
// results so far.
func (e *Engine) ExecuteBatch(sql string) ([]*ResultSet, error) {
	stmts, err := sqlparser.SplitStatements(sql)
	if err != nil {
		return nil, err
	}
	e.Stats.RoundTrips++
	var out []*ResultSet
	for _, s := range stmts {
		sel, err := sqlparser.ParseSelect(s)
		if err != nil {
			return out, err
		}
		rs, err := e.ExecuteSelect(sel)
		if err != nil {
			return out, err
		}
		out = append(out, rs)
	}
	return out, nil
}

// ExecuteSelect runs a parsed SELECT statement.
func (e *Engine) ExecuteSelect(sel *sqlast.SelectStatement) (*ResultSet, error) {
	e.Stats.Statements++
	rel, err := e.evalQuery(sel)
	if err != nil {
		return nil, err
	}
	rs := &ResultSet{Rows: rel.Rows}
	for _, c := range rel.Cols {
		rs.Cols = append(rs.Cols, c.Name)
	}
	e.Stats.RowsReturned += int64(len(rs.Rows))
	return rs, nil
}

// evalQuery evaluates a (possibly UNION-chained) select into a relation.
func (e *Engine) evalQuery(sel *sqlast.SelectStatement) (*Relation, error) {
	rel, err := e.evalSimpleSelect(sel)
	if err != nil {
		return nil, err
	}
	if sel.SetOp == "" || sel.SetRight == nil {
		return rel, nil
	}
	right, err := e.evalQuery(sel.SetRight)
	if err != nil {
		return nil, err
	}
	if len(right.Cols) != len(rel.Cols) {
		return nil, fmt.Errorf("exec: %s operands have %d and %d columns", sel.SetOp, len(rel.Cols), len(right.Cols))
	}
	switch sel.SetOp {
	case "UNION ALL":
		rel.Rows = append(rel.Rows, right.Rows...)
		return rel, nil
	case "UNION":
		rel.Rows = append(rel.Rows, right.Rows...)
		rel.Rows = distinctRows(rel.Rows)
		return rel, nil
	case "EXCEPT":
		keys := rowKeySet(right.Rows)
		var kept []storage.Row
		for _, r := range distinctRows(rel.Rows) {
			if !keys[rowKey(r)] {
				kept = append(kept, r)
			}
		}
		rel.Rows = kept
		return rel, nil
	case "INTERSECT":
		keys := rowKeySet(right.Rows)
		var kept []storage.Row
		for _, r := range distinctRows(rel.Rows) {
			if keys[rowKey(r)] {
				kept = append(kept, r)
			}
		}
		rel.Rows = kept
		return rel, nil
	}
	return nil, fmt.Errorf("exec: unsupported set operation %s", sel.SetOp)
}

func rowKey(r storage.Row) string {
	var b strings.Builder
	for _, v := range r {
		b.WriteString(v.Key())
		b.WriteByte('\x01')
	}
	return b.String()
}

func rowKeySet(rows []storage.Row) map[string]bool {
	out := make(map[string]bool, len(rows))
	for _, r := range rows {
		out[rowKey(r)] = true
	}
	return out
}

func distinctRows(rows []storage.Row) []storage.Row {
	seen := map[string]bool{}
	var out []storage.Row
	for _, r := range rows {
		k := rowKey(r)
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, r)
	}
	return out
}

func (e *Engine) evalSimpleSelect(sel *sqlast.SelectStatement) (*Relation, error) {
	// FROM.
	var src *Relation
	if len(sel.From) == 0 {
		src = &Relation{Rows: []storage.Row{{}}} // one empty row: SELECT 1
	} else {
		var err error
		src, err = e.evalFromEntry(sel.From[0], sel.Where)
		if err != nil {
			return nil, err
		}
		for _, ts := range sel.From[1:] {
			next, err := e.evalFromEntry(ts, nil)
			if err != nil {
				return nil, err
			}
			src = crossProduct(src, next)
		}
	}

	// WHERE.
	if sel.Where != nil {
		var kept []storage.Row
		for _, row := range src.Rows {
			v, err := e.evalExpr(sel.Where, src.Cols, row)
			if err != nil {
				return nil, err
			}
			if v.Truth() {
				kept = append(kept, row)
			}
		}
		src.Rows = kept
	}

	// GROUP BY / aggregates.
	out, err := e.project(sel, src)
	if err != nil {
		return nil, err
	}

	// DISTINCT.
	if sel.Distinct {
		out.Rows = distinctRows(out.Rows)
	}

	// ORDER BY (over output columns or source expressions; we sort on the
	// projected relation by re-evaluating order expressions against the
	// source when possible, falling back to output column names).
	if len(sel.OrderBy) > 0 {
		if hasAggregates(sel) || len(sel.GroupBy) > 0 {
			if err := e.orderGroupedOutput(sel, out); err != nil {
				return nil, err
			}
		} else if err := e.orderRelation(sel, src, out); err != nil {
			return nil, err
		}
	}

	// TOP.
	if sel.Top != nil {
		n, err := topCount(sel, len(out.Rows))
		if err != nil {
			return nil, err
		}
		if n < len(out.Rows) {
			out.Rows = out.Rows[:n]
		}
	}
	return out, nil
}

func topCount(sel *sqlast.SelectStatement, total int) (int, error) {
	var n float64
	if _, err := fmt.Sscanf(sel.Top.Val, "%g", &n); err != nil {
		return 0, fmt.Errorf("exec: bad TOP count %q", sel.Top.Val)
	}
	if sel.TopPercent {
		c := int(float64(total) * n / 100)
		if c < 1 && total > 0 && n > 0 {
			c = 1
		}
		return c, nil
	}
	return int(n), nil
}

// orderRelation sorts out.Rows (parallel with src.Rows) by the ORDER BY
// expressions evaluated against the source relation.
func (e *Engine) orderRelation(sel *sqlast.SelectStatement, src, out *Relation) error {
	if len(out.Rows) != len(src.Rows) {
		return nil // projection changed cardinality (aggregates) — skip
	}
	type pair struct {
		keys []storage.Value
		row  storage.Row
	}
	pairs := make([]pair, len(out.Rows))
	for i := range out.Rows {
		keys := make([]storage.Value, len(sel.OrderBy))
		for k, oi := range sel.OrderBy {
			// ORDER BY <n> sorts by the n-th output column (1-based).
			if pos, ok := positionalOrder(oi.Expr, len(out.Cols)); ok {
				keys[k] = out.Rows[i][pos]
				continue
			}
			v, err := e.evalExpr(oi.Expr, src.Cols, src.Rows[i])
			if err != nil {
				// Fall back to output columns by name.
				v2, err2 := e.evalExpr(oi.Expr, out.Cols, out.Rows[i])
				if err2 != nil {
					return err
				}
				v = v2
			}
			keys[k] = v
		}
		pairs[i] = pair{keys: keys, row: out.Rows[i]}
	}
	sort.SliceStable(pairs, func(a, b int) bool {
		for k, oi := range sel.OrderBy {
			c, ok := storage.Compare(pairs[a].keys[k], pairs[b].keys[k])
			if !ok {
				// NULLs sort first ascending.
				an, bn := pairs[a].keys[k].IsNull(), pairs[b].keys[k].IsNull()
				if an != bn {
					if oi.Desc {
						return bn
					}
					return an
				}
				continue
			}
			if c == 0 {
				continue
			}
			if oi.Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	for i := range pairs {
		out.Rows[i] = pairs[i].row
	}
	return nil
}

// orderGroupedOutput sorts an aggregated result by its own output columns:
// each ORDER BY item must either name an output column (alias or plain
// name) or textually match one of the select items (e.g. "count(*)").
func (e *Engine) orderGroupedOutput(sel *sqlast.SelectStatement, out *Relation) error {
	keyIdx := make([]int, len(sel.OrderBy))
	for k, oi := range sel.OrderBy {
		idx := -1
		if pos, ok := positionalOrder(oi.Expr, len(out.Cols)); ok {
			idx = pos
		}
		if c, ok := oi.Expr.(*sqlast.ColumnRef); ok && !c.Star {
			name := strings.ToLower(c.Name)
			for i, col := range out.Cols {
				if col.Name == name {
					idx = i
					break
				}
			}
		}
		if idx < 0 {
			want := sqlast.PrintExpr(oi.Expr, sqlast.PrintOptions{NormalizeIdents: true})
			for i, it := range sel.Items {
				if sqlast.PrintExpr(it.Expr, sqlast.PrintOptions{NormalizeIdents: true}) == want {
					idx = i
					break
				}
			}
		}
		if idx < 0 {
			return fmt.Errorf("exec: ORDER BY item %d does not name an output column of the aggregation", k+1)
		}
		keyIdx[k] = idx
	}
	sort.SliceStable(out.Rows, func(a, b int) bool {
		for k, oi := range sel.OrderBy {
			va, vb := out.Rows[a][keyIdx[k]], out.Rows[b][keyIdx[k]]
			c, ok := storage.Compare(va, vb)
			if !ok {
				an, bn := va.IsNull(), vb.IsNull()
				if an != bn {
					if oi.Desc {
						return bn
					}
					return an
				}
				continue
			}
			if c == 0 {
				continue
			}
			if oi.Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	return nil
}

// positionalOrder recognizes ORDER BY <n> (1-based output column).
func positionalOrder(x sqlast.Expr, cols int) (int, bool) {
	lit, ok := x.(*sqlast.Literal)
	if !ok || lit.Kind != "num" {
		return 0, false
	}
	var n int
	if _, err := fmt.Sscanf(lit.Val, "%d", &n); err != nil || n < 1 || n > cols {
		return 0, false
	}
	return n - 1, true
}

// evalFromEntry materializes one FROM entry. where (may be nil) lets a base
// table scan use an index for equality/IN predicates on indexed columns.
func (e *Engine) evalFromEntry(ts sqlast.TableSource, where sqlast.Expr) (*Relation, error) {
	switch t := ts.(type) {
	case *sqlast.TableRef:
		return e.scanTable(t, where)
	case *sqlast.FuncSource:
		return e.callTableFunc(t)
	case *sqlast.DerivedTable:
		rel, err := e.evalQuery(t.Sub)
		if err != nil {
			return nil, err
		}
		alias := strings.ToLower(t.Alias)
		for i := range rel.Cols {
			rel.Cols[i].Alias = alias
		}
		return rel, nil
	case *sqlast.Join:
		return e.evalJoin(t)
	}
	return nil, fmt.Errorf("exec: unsupported FROM entry %T", ts)
}

func (e *Engine) scanTable(t *sqlast.TableRef, where sqlast.Expr) (*Relation, error) {
	tbl, ok := e.DB.Table(t.Name)
	if !ok {
		return nil, fmt.Errorf("exec: no table %s", t.Name)
	}
	alias := strings.ToLower(t.Alias)
	if alias == "" {
		alias = strings.ToLower(t.Name)
	}
	rel := &Relation{}
	for _, c := range tbl.Def.Columns {
		rel.Cols = append(rel.Cols, ColInfo{Alias: alias, Name: strings.ToLower(c.Name)})
	}

	// Index path: a WHERE conjunct of the form col = literal or col IN
	// (literals...) over an indexed column of this table.
	if positions, ok := e.indexCandidates(tbl, alias, where); ok {
		for _, pos := range positions {
			rel.Rows = append(rel.Rows, tbl.Rows[pos])
		}
		e.Stats.RowsScanned += int64(len(positions))
		e.Stats.IndexLookups++
		return rel, nil
	}

	rel.Rows = append(rel.Rows, tbl.Rows...)
	e.Stats.RowsScanned += int64(len(tbl.Rows))
	return rel, nil
}

// indexCandidates inspects the WHERE conjuncts for an indexable equality or
// IN predicate on the scanned table and returns candidate row positions.
func (e *Engine) indexCandidates(tbl *storage.Table, alias string, where sqlast.Expr) ([]int, bool) {
	if where == nil {
		return nil, false
	}
	var conjuncts []sqlast.Expr
	collectConjuncts(where, &conjuncts)
	for _, c := range conjuncts {
		switch x := c.(type) {
		case *sqlast.BinaryExpr:
			if x.Op != "=" {
				continue
			}
			col, lit := splitColLit(x.Left, x.Right)
			if col == nil || lit == nil {
				continue
			}
			if !colMatches(col, alias) || !tbl.HasIndex(col.Name) {
				continue
			}
			v, err := literalValue(lit)
			if err != nil {
				continue
			}
			pos, _ := tbl.Lookup(col.Name, v)
			return pos, true
		case *sqlast.InExpr:
			col, ok := x.X.(*sqlast.ColumnRef)
			if !ok || x.Not || x.Sub != nil || !colMatches(col, alias) || !tbl.HasIndex(col.Name) {
				continue
			}
			var pos []int
			seen := map[int]bool{}
			okAll := true
			for _, it := range x.List {
				lit, isLit := it.(*sqlast.Literal)
				if !isLit {
					okAll = false
					break
				}
				v, err := literalValue(lit)
				if err != nil {
					okAll = false
					break
				}
				p, _ := tbl.Lookup(col.Name, v)
				for _, i := range p {
					if !seen[i] {
						seen[i] = true
						pos = append(pos, i)
					}
				}
			}
			if okAll {
				sort.Ints(pos)
				return pos, true
			}
		}
	}
	return nil, false
}

func collectConjuncts(e sqlast.Expr, out *[]sqlast.Expr) {
	switch x := e.(type) {
	case *sqlast.BinaryExpr:
		if x.Op == "AND" {
			collectConjuncts(x.Left, out)
			collectConjuncts(x.Right, out)
			return
		}
	case *sqlast.ParenExpr:
		collectConjuncts(x.X, out)
		return
	}
	*out = append(*out, e)
}

func splitColLit(a, b sqlast.Expr) (*sqlast.ColumnRef, *sqlast.Literal) {
	if c, ok := a.(*sqlast.ColumnRef); ok && !c.Star {
		if l, ok := b.(*sqlast.Literal); ok {
			return c, l
		}
	}
	if c, ok := b.(*sqlast.ColumnRef); ok && !c.Star {
		if l, ok := a.(*sqlast.Literal); ok {
			return c, l
		}
	}
	return nil, nil
}

// colMatches reports whether the column reference can belong to the scan
// with the given alias (unqualified references match any alias).
func colMatches(c *sqlast.ColumnRef, alias string) bool {
	return c.Qualifier == "" || strings.ToLower(c.Qualifier) == alias
}

func (e *Engine) callTableFunc(t *sqlast.FuncSource) (*Relation, error) {
	fn, ok := e.funcs[strings.ToLower(t.Call.Name)]
	if !ok {
		return nil, fmt.Errorf("exec: unknown table function %s", t.Call.Name)
	}
	args := make([]storage.Value, 0, len(t.Call.Args))
	for _, a := range t.Call.Args {
		v, err := e.evalExpr(a, nil, nil)
		if err != nil {
			return nil, err
		}
		args = append(args, v)
	}
	rel, err := fn(args)
	if err != nil {
		return nil, err
	}
	alias := strings.ToLower(t.Alias)
	if alias == "" {
		alias = strings.ToLower(t.Call.Name)
	}
	for i := range rel.Cols {
		rel.Cols[i].Alias = alias
	}
	e.Stats.RowsScanned += int64(len(rel.Rows))
	return rel, nil
}

func (e *Engine) evalJoin(j *sqlast.Join) (*Relation, error) {
	left, err := e.evalFromEntry(j.Left, nil)
	if err != nil {
		return nil, err
	}
	right, err := e.evalFromEntry(j.Right, nil)
	if err != nil {
		return nil, err
	}
	switch j.Kind {
	case sqlast.CrossJoin, sqlast.CrossApply:
		return crossProduct(left, right), nil
	case sqlast.OuterApply:
		return e.outerJoinRows(left, right, nil, true, false)
	case sqlast.InnerJoin:
		return e.joinOn(left, right, j.Cond, false, false)
	case sqlast.LeftJoin:
		return e.joinOn(left, right, j.Cond, true, false)
	case sqlast.RightJoin:
		return e.joinOn(left, right, j.Cond, false, true)
	case sqlast.FullJoin:
		return e.joinOn(left, right, j.Cond, true, true)
	}
	return nil, fmt.Errorf("exec: unsupported join kind %v", j.Kind)
}

func crossProduct(a, b *Relation) *Relation {
	out := &Relation{Cols: append(append([]ColInfo{}, a.Cols...), b.Cols...)}
	for _, ra := range a.Rows {
		for _, rb := range b.Rows {
			row := make(storage.Row, 0, len(ra)+len(rb))
			row = append(row, ra...)
			row = append(row, rb...)
			out.Rows = append(out.Rows, row)
		}
	}
	return out
}

// joinOn performs a (hash when possible, else nested-loop) join.
func (e *Engine) joinOn(left, right *Relation, cond sqlast.Expr, leftOuter, rightOuter bool) (*Relation, error) {
	cols := append(append([]ColInfo{}, left.Cols...), right.Cols...)
	out := &Relation{Cols: cols}

	// Hash path: single equality between one left column and one right
	// column.
	if lIdx, rIdx, ok := equiJoinColumns(cond, left, right); ok {
		build := make(map[string][]int, len(right.Rows))
		for i, rr := range right.Rows {
			build[rr[rIdx].Key()] = append(build[rr[rIdx].Key()], i)
		}
		matchedRight := make([]bool, len(right.Rows))
		for _, lr := range left.Rows {
			matches := build[lr[lIdx].Key()]
			if lr[lIdx].IsNull() {
				matches = nil
			}
			if len(matches) == 0 {
				if leftOuter {
					out.Rows = append(out.Rows, padRow(lr, len(right.Cols), false))
				}
				continue
			}
			for _, ri := range matches {
				matchedRight[ri] = true
				row := make(storage.Row, 0, len(lr)+len(right.Rows[ri]))
				row = append(row, lr...)
				row = append(row, right.Rows[ri]...)
				out.Rows = append(out.Rows, row)
			}
		}
		if rightOuter {
			for i, m := range matchedRight {
				if !m {
					out.Rows = append(out.Rows, padRow(right.Rows[i], len(left.Cols), true))
				}
			}
		}
		return out, nil
	}

	// Nested loop.
	matchedRight := make([]bool, len(right.Rows))
	for _, lr := range left.Rows {
		matched := false
		for ri, rr := range right.Rows {
			row := make(storage.Row, 0, len(lr)+len(rr))
			row = append(row, lr...)
			row = append(row, rr...)
			v, err := e.evalExpr(cond, cols, row)
			if err != nil {
				return nil, err
			}
			if v.Truth() {
				matched = true
				matchedRight[ri] = true
				out.Rows = append(out.Rows, row)
			}
		}
		if !matched && leftOuter {
			out.Rows = append(out.Rows, padRow(lr, len(right.Cols), false))
		}
	}
	if rightOuter {
		for i, m := range matchedRight {
			if !m {
				out.Rows = append(out.Rows, padRow(right.Rows[i], len(left.Cols), true))
			}
		}
	}
	return out, nil
}

// outerJoinRows implements APPLY-style joins without a condition.
func (e *Engine) outerJoinRows(left, right *Relation, _ sqlast.Expr, leftOuter, _ bool) (*Relation, error) {
	if len(right.Rows) == 0 && leftOuter {
		out := &Relation{Cols: append(append([]ColInfo{}, left.Cols...), right.Cols...)}
		for _, lr := range left.Rows {
			out.Rows = append(out.Rows, padRow(lr, len(right.Cols), false))
		}
		return out, nil
	}
	return crossProduct(left, right), nil
}

func padRow(r storage.Row, n int, padLeft bool) storage.Row {
	row := make(storage.Row, 0, len(r)+n)
	if padLeft {
		for i := 0; i < n; i++ {
			row = append(row, storage.Null)
		}
		return append(row, r...)
	}
	row = append(row, r...)
	for i := 0; i < n; i++ {
		row = append(row, storage.Null)
	}
	return row
}

// equiJoinColumns recognizes cond of the form leftCol = rightCol and
// returns the column indexes in each relation.
func equiJoinColumns(cond sqlast.Expr, left, right *Relation) (int, int, bool) {
	be, ok := cond.(*sqlast.BinaryExpr)
	if !ok || be.Op != "=" {
		return 0, 0, false
	}
	a, okA := be.Left.(*sqlast.ColumnRef)
	b, okB := be.Right.(*sqlast.ColumnRef)
	if !okA || !okB || a.Star || b.Star {
		return 0, 0, false
	}
	la, inLeftA := findCol(left.Cols, a)
	rb, inRightB := findCol(right.Cols, b)
	if inLeftA && inRightB {
		return la, rb, true
	}
	lb, inLeftB := findCol(left.Cols, b)
	ra, inRightA := findCol(right.Cols, a)
	if inLeftB && inRightA {
		return lb, ra, true
	}
	return 0, 0, false
}

func findCol(cols []ColInfo, c *sqlast.ColumnRef) (int, bool) {
	name := strings.ToLower(c.Name)
	qual := strings.ToLower(c.Qualifier)
	for i, ci := range cols {
		if ci.Name != name {
			continue
		}
		if qual == "" || ci.Alias == qual {
			return i, true
		}
	}
	return 0, false
}
