package exec

import (
	"testing"

	"sqlclean/internal/storage"
)

func TestBitwiseOperators(t *testing.T) {
	e := demoEngine(t)
	rs := query(t, e, "SELECT 6 & 3, 6 | 3, 6 ^ 3 FROM emp WHERE id = 1")
	r := rs.Rows[0]
	if r[0].I != 2 || r[1].I != 7 || r[2].I != 5 {
		t.Fatalf("bitwise: %v", r)
	}
	// Bitwise on non-integers yields NULL.
	rs = query(t, e, "SELECT name & 1 FROM emp WHERE id = 1")
	if !rs.Rows[0][0].IsNull() {
		t.Fatalf("string bitwise: %v", rs.Rows[0][0])
	}
}

func TestUnaryOperatorsInQueries(t *testing.T) {
	e := demoEngine(t)
	rs := query(t, e, "SELECT -salary, ~id, +bonus FROM emp WHERE id = 1")
	r := rs.Rows[0]
	if r[0].I != -100 || r[1].I != ^int64(1) || r[2].I != 10 {
		t.Fatalf("unary: %v", r)
	}
	rs = query(t, e, "SELECT name FROM emp WHERE NOT dep = 'sales' AND NOT bonus IS NULL")
	if len(rs.Rows) != 2 {
		t.Fatalf("NOT: %v", rs.Rows)
	}
}

func TestStringConcatenation(t *testing.T) {
	e := demoEngine(t)
	rs := query(t, e, "SELECT name + '!' FROM emp WHERE id = 1")
	if rs.Rows[0][0].S != "ann!" {
		t.Fatalf("concat: %v", rs.Rows[0][0])
	}
}

func TestNullArithmeticPropagates(t *testing.T) {
	e := demoEngine(t)
	rs := query(t, e, "SELECT bonus + 1 FROM emp WHERE id = 2")
	if !rs.Rows[0][0].IsNull() {
		t.Fatalf("null arithmetic: %v", rs.Rows[0][0])
	}
}

func TestScalarFunctionsMore(t *testing.T) {
	e := demoEngine(t)
	rs := query(t, e, "SELECT floor(2.7), ceiling(2.1), sqrt(16), power(2, 10), round(2.567, 2), lower('AB'), ltrim('  x'), rtrim('x  ') FROM emp WHERE id = 1")
	r := rs.Rows[0]
	if r[0].F != 2 || r[1].F != 3 || r[2].F != 4 || r[3].F != 1024 {
		t.Fatalf("math funcs: %v", r)
	}
	if r[4].F != 2.57 || r[5].S != "ab" || r[6].S != "x" || r[7].S != "x" {
		t.Fatalf("string funcs: %v", r)
	}
}

func TestCoalesce(t *testing.T) {
	e := demoEngine(t)
	rs := query(t, e, "SELECT coalesce(bonus, salary, 0) FROM emp WHERE id = 2")
	if rs.Rows[0][0].I != 80 {
		t.Fatalf("coalesce: %v", rs.Rows[0][0])
	}
}

func TestMinMaxOverStrings(t *testing.T) {
	e := demoEngine(t)
	rs := query(t, e, "SELECT min(name), max(name) FROM emp")
	if rs.Rows[0][0].S != "ann" || rs.Rows[0][1].S != "eve" {
		t.Fatalf("string min/max: %v", rs.Rows[0])
	}
}

func TestAvgOfEmptyGroupIsNull(t *testing.T) {
	e := demoEngine(t)
	rs := query(t, e, "SELECT avg(salary) FROM emp WHERE id = 999")
	if !rs.Rows[0][0].IsNull() {
		t.Fatalf("empty avg: %v", rs.Rows[0][0])
	}
	rs = query(t, e, "SELECT count(*) FROM emp WHERE id = 999")
	if rs.Rows[0][0].I != 0 {
		t.Fatalf("empty count: %v", rs.Rows[0][0])
	}
}

func TestAggregateArithmetic(t *testing.T) {
	e := demoEngine(t)
	rs := query(t, e, "SELECT max(salary) - min(salary) FROM emp")
	if v, _ := rs.Rows[0][0].AsFloat(); v != 50 {
		t.Fatalf("aggregate arithmetic: %v", rs.Rows[0][0])
	}
}

func TestQualifiedStarProjection(t *testing.T) {
	e := demoEngine(t)
	rs := query(t, e, "SELECT d.* FROM emp e JOIN dep d ON e.dep = d.dep WHERE e.id = 1")
	if len(rs.Cols) != 2 || rs.Rows[0][1].S != "Rome" {
		t.Fatalf("qualified star: %v %v", rs.Cols, rs.Rows)
	}
}

func TestAmbiguousColumnPicksFirst(t *testing.T) {
	// Both emp and dep have a "dep" column; unqualified resolution takes
	// the first in relation order (documented engine behavior).
	e := demoEngine(t)
	rs := query(t, e, "SELECT dep FROM emp e JOIN dep d ON e.dep = d.dep WHERE e.id = 1")
	if rs.Rows[0][0].S != "sales" {
		t.Fatalf("resolution: %v", rs.Rows[0][0])
	}
}

func TestValueLiteralRoundTrip(t *testing.T) {
	for _, v := range []storage.Value{
		storage.Int(42), storage.Float(2.5), storage.Str("x"), storage.Null,
	} {
		e := valueLiteral(v)
		ee := &Engine{}
		got, err := ee.evalExpr(e, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got.Kind != v.Kind && !(v.Kind == storage.KindNull && got.IsNull()) {
			t.Errorf("kind: %v vs %v", got.Kind, v.Kind)
		}
		if got.String() != v.String() {
			t.Errorf("value: %v vs %v", got, v)
		}
	}
}

func TestCrossApplyAndParenJoin(t *testing.T) {
	e := demoEngine(t)
	rs := query(t, e, "SELECT count(*) FROM (emp e JOIN dep d ON e.dep = d.dep)")
	if rs.Rows[0][0].I != 4 {
		t.Fatalf("paren join: %v", rs.Rows[0][0])
	}
}

func TestRightAndFullJoin(t *testing.T) {
	e := demoEngine(t)
	// dep 'hr' has no... actually every dep row matches an emp; add one
	// that doesn't.
	if err := e.DB.Insert("dep", storage.Row{storage.Str("legal"), storage.Str("Oslo")}); err != nil {
		t.Fatal(err)
	}
	rs := query(t, e, "SELECT d.dep FROM emp e RIGHT JOIN dep d ON e.dep = d.dep WHERE e.name IS NULL")
	if len(rs.Rows) != 1 || rs.Rows[0][0].S != "legal" {
		t.Fatalf("right join: %v", rs.Rows)
	}
	rs = query(t, e, "SELECT count(*) FROM emp e FULL OUTER JOIN dep d ON e.dep = d.dep")
	// 4 matches + eve (hr unmatched) + legal unmatched = 6.
	if rs.Rows[0][0].I != 6 {
		t.Fatalf("full join: %v", rs.Rows[0][0])
	}
}
