package exec

import (
	"fmt"
	"strings"

	"sqlclean/internal/sqlast"
	"sqlclean/internal/sqlparser"
)

// Explain returns a one-node-per-line description of how the engine would
// execute the statement: access paths (index lookup vs full scan), join
// strategies (hash vs nested loop), and the filter/aggregate/sort/top
// stages. It performs no data access beyond reading table sizes.
func (e *Engine) Explain(sql string) (string, error) {
	sel, err := sqlparser.ParseSelect(sql)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	e.explainSelect(&b, sel, 0)
	return b.String(), nil
}

func indent(b *strings.Builder, depth int) {
	for i := 0; i < depth; i++ {
		b.WriteString("  ")
	}
}

func (e *Engine) explainSelect(b *strings.Builder, sel *sqlast.SelectStatement, depth int) {
	line := func(format string, args ...any) {
		indent(b, depth)
		fmt.Fprintf(b, format+"\n", args...)
	}
	if sel.Top != nil {
		pct := ""
		if sel.TopPercent {
			pct = " PERCENT"
		}
		line("Top(%s%s)", sel.Top.Val, pct)
		depth++
		line = func(format string, args ...any) {
			indent(b, depth)
			fmt.Fprintf(b, format+"\n", args...)
		}
	}
	if len(sel.OrderBy) > 0 {
		keys := make([]string, 0, len(sel.OrderBy))
		for _, oi := range sel.OrderBy {
			k := sqlast.PrintExpr(oi.Expr, sqlast.PrintOptions{NormalizeIdents: true})
			if oi.Desc {
				k += " DESC"
			}
			keys = append(keys, k)
		}
		line("Sort(%s)", strings.Join(keys, ", "))
		depth++
	}
	if sel.Distinct {
		indent(b, depth)
		b.WriteString("Distinct\n")
		depth++
	}
	if len(sel.GroupBy) > 0 || hasAggregates(sel) {
		keys := make([]string, 0, len(sel.GroupBy))
		for _, g := range sel.GroupBy {
			keys = append(keys, sqlast.PrintExpr(g, sqlast.PrintOptions{NormalizeIdents: true}))
		}
		indent(b, depth)
		if len(keys) > 0 {
			fmt.Fprintf(b, "HashAggregate(group by %s)\n", strings.Join(keys, ", "))
		} else {
			b.WriteString("Aggregate\n")
		}
		depth++
	}
	indent(b, depth)
	fmt.Fprintf(b, "Project(%d items)\n", len(sel.Items))
	depth++
	if sel.Where != nil {
		indent(b, depth)
		fmt.Fprintf(b, "Filter(%s)\n", sqlast.PrintExpr(sel.Where, sqlast.PrintOptions{NormalizeIdents: true}))
		depth++
	}
	for i, ts := range sel.From {
		e.explainSource(b, ts, sel.Where, depth, i == 0)
	}
	if len(sel.From) == 0 {
		indent(b, depth)
		b.WriteString("ConstantRow\n")
	}
	if sel.SetOp != "" && sel.SetRight != nil {
		indent(b, depth-1)
		fmt.Fprintf(b, "%s\n", sel.SetOp)
		e.explainSelect(b, sel.SetRight, depth)
	}
}

// explainSource describes one FROM entry. first marks the entry whose scan
// may use the WHERE clause for an index path (mirroring evalSimpleSelect).
func (e *Engine) explainSource(b *strings.Builder, ts sqlast.TableSource, where sqlast.Expr, depth int, first bool) {
	switch t := ts.(type) {
	case *sqlast.TableRef:
		indent(b, depth)
		tbl, ok := e.DB.Table(t.Name)
		if !ok {
			fmt.Fprintf(b, "TableScan(%s: unknown table)\n", strings.ToLower(t.Name))
			return
		}
		alias := strings.ToLower(t.Alias)
		if alias == "" {
			alias = strings.ToLower(t.Name)
		}
		if first && where != nil {
			if col, kind, ok := indexablePredicate(tbl, alias, where); ok {
				fmt.Fprintf(b, "IndexLookup(%s.%s %s)\n", strings.ToLower(t.Name), col, kind)
				return
			}
		}
		fmt.Fprintf(b, "TableScan(%s, %d rows)\n", strings.ToLower(t.Name), len(tbl.Rows))
	case *sqlast.FuncSource:
		indent(b, depth)
		fmt.Fprintf(b, "TableFunction(%s)\n", strings.ToLower(t.Call.Name))
	case *sqlast.DerivedTable:
		indent(b, depth)
		fmt.Fprintf(b, "Derived(%s)\n", strings.ToLower(t.Alias))
		e.explainSelect(b, t.Sub, depth+1)
	case *sqlast.Join:
		indent(b, depth)
		strategy := "NestedLoopJoin"
		if t.Kind == sqlast.CrossJoin || t.Kind == sqlast.CrossApply || t.Kind == sqlast.OuterApply {
			strategy = "CrossProduct"
		} else if isEquiJoin(t.Cond) {
			strategy = "HashJoin"
		}
		fmt.Fprintf(b, "%s(%s)\n", strategy, t.Kind)
		e.explainSource(b, t.Left, nil, depth+1, false)
		e.explainSource(b, t.Right, nil, depth+1, false)
	}
}

// indexablePredicate reports whether the WHERE clause carries an equality
// or IN predicate the table's hash indexes can serve.
func indexablePredicate(tbl interface {
	HasIndex(string) bool
}, alias string, where sqlast.Expr) (col, kind string, ok bool) {
	var conjuncts []sqlast.Expr
	collectConjuncts(where, &conjuncts)
	for _, c := range conjuncts {
		switch x := c.(type) {
		case *sqlast.BinaryExpr:
			if x.Op != "=" {
				continue
			}
			cr, lit := splitColLit(x.Left, x.Right)
			if cr == nil || lit == nil || !colMatches(cr, alias) {
				continue
			}
			if tbl.HasIndex(cr.Name) {
				return strings.ToLower(cr.Name), "=", true
			}
		case *sqlast.InExpr:
			cr, isCol := x.X.(*sqlast.ColumnRef)
			if !isCol || x.Not || x.Sub != nil || !colMatches(cr, alias) {
				continue
			}
			if tbl.HasIndex(cr.Name) {
				return strings.ToLower(cr.Name), "IN", true
			}
		}
	}
	return "", "", false
}

// isEquiJoin reports whether the join condition is a plain column equality
// (the hash-join path).
func isEquiJoin(cond sqlast.Expr) bool {
	be, ok := cond.(*sqlast.BinaryExpr)
	if !ok || be.Op != "=" {
		return false
	}
	_, okL := be.Left.(*sqlast.ColumnRef)
	_, okR := be.Right.(*sqlast.ColumnRef)
	return okL && okR
}
