package exec

import (
	"fmt"
	"strings"

	"sqlclean/internal/sqlast"
	"sqlclean/internal/sqlparser"
	"sqlclean/internal/storage"
)

// DMLResult reports an INSERT/UPDATE/DELETE outcome.
type DMLResult struct {
	// Affected counts inserted, updated or deleted rows.
	Affected int
}

// ExecuteStatement runs any modeled statement: SELECT returns a ResultSet,
// DML returns a DMLResult. DDL/EXEC and unmodeled DML forms are rejected.
func (e *Engine) ExecuteStatement(sql string) (*ResultSet, *DMLResult, error) {
	st, err := sqlparser.Parse(sql)
	if err != nil {
		return nil, nil, err
	}
	switch s := st.(type) {
	case *sqlast.SelectStatement:
		e.Stats.RoundTrips++
		rs, err := e.ExecuteSelect(s)
		return rs, nil, err
	case *sqlast.InsertStatement:
		e.Stats.RoundTrips++
		e.Stats.Statements++
		res, err := e.execInsert(s)
		return nil, res, err
	case *sqlast.UpdateStatement:
		e.Stats.RoundTrips++
		e.Stats.Statements++
		res, err := e.execUpdate(s)
		return nil, res, err
	case *sqlast.DeleteStatement:
		e.Stats.RoundTrips++
		e.Stats.Statements++
		res, err := e.execDelete(s)
		return nil, res, err
	case *sqlast.OtherStatement:
		return nil, nil, fmt.Errorf("exec: cannot execute %s statement", s.Class)
	}
	return nil, nil, fmt.Errorf("exec: unsupported statement %T", st)
}

func (e *Engine) execInsert(st *sqlast.InsertStatement) (*DMLResult, error) {
	tbl, ok := e.DB.Table(st.Table.Name)
	if !ok {
		return nil, fmt.Errorf("exec: no table %s", st.Table.Name)
	}
	cols := st.Columns
	if len(cols) == 0 {
		for _, c := range tbl.Def.Columns {
			cols = append(cols, c.Name)
		}
	}
	colIdx := make([]int, len(cols))
	for i, c := range cols {
		ci, ok := tbl.ColIndex(c)
		if !ok {
			return nil, fmt.Errorf("exec: table %s has no column %s", st.Table.Name, c)
		}
		colIdx[i] = ci
	}
	inserted := 0
	for _, exprs := range st.Rows {
		if len(exprs) != len(cols) {
			return nil, fmt.Errorf("exec: INSERT row has %d values, want %d", len(exprs), len(cols))
		}
		row := make(storage.Row, len(tbl.Def.Columns))
		for i := range row {
			row[i] = storage.Null
		}
		for i, x := range exprs {
			v, err := e.evalExpr(x, nil, nil)
			if err != nil {
				return nil, err
			}
			row[colIdx[i]] = v
		}
		if err := tbl.Insert(row); err != nil {
			return nil, err
		}
		inserted++
	}
	return &DMLResult{Affected: inserted}, nil
}

// matchRows returns the positions of rows satisfying where (all rows when
// nil), charging scan costs like a SELECT would.
func (e *Engine) matchRows(tbl *storage.Table, tableName string, where sqlast.Expr) ([]int, error) {
	cols := make([]ColInfo, len(tbl.Def.Columns))
	alias := strings.ToLower(tableName)
	for i, c := range tbl.Def.Columns {
		cols[i] = ColInfo{Alias: alias, Name: strings.ToLower(c.Name)}
	}
	// Index path for equality/IN predicates, like scanTable.
	var candidates []int
	if pos, ok := e.indexCandidates(tbl, alias, where); ok {
		candidates = pos
		e.Stats.IndexLookups++
	} else {
		candidates = make([]int, len(tbl.Rows))
		for i := range candidates {
			candidates[i] = i
		}
	}
	e.Stats.RowsScanned += int64(len(candidates))
	if where == nil {
		return candidates, nil
	}
	var out []int
	for _, p := range candidates {
		v, err := e.evalExpr(where, cols, tbl.Rows[p])
		if err != nil {
			return nil, err
		}
		if v.Truth() {
			out = append(out, p)
		}
	}
	return out, nil
}

func (e *Engine) execUpdate(st *sqlast.UpdateStatement) (*DMLResult, error) {
	tbl, ok := e.DB.Table(st.Table.Name)
	if !ok {
		return nil, fmt.Errorf("exec: no table %s", st.Table.Name)
	}
	matched, err := e.matchRows(tbl, st.Table.Name, st.Where)
	if err != nil {
		return nil, err
	}
	cols := make([]ColInfo, len(tbl.Def.Columns))
	alias := strings.ToLower(st.Table.Name)
	for i, c := range tbl.Def.Columns {
		cols[i] = ColInfo{Alias: alias, Name: strings.ToLower(c.Name)}
	}
	for _, p := range matched {
		for _, set := range st.Set {
			// The right-hand side may reference the row's current values
			// (count = count - 1 in the paper's BUY procedure).
			v, err := e.evalExpr(set.Value, cols, tbl.Rows[p])
			if err != nil {
				return nil, err
			}
			if err := tbl.UpdateRow(p, set.Column, v); err != nil {
				return nil, err
			}
		}
	}
	return &DMLResult{Affected: len(matched)}, nil
}

func (e *Engine) execDelete(st *sqlast.DeleteStatement) (*DMLResult, error) {
	tbl, ok := e.DB.Table(st.Table.Name)
	if !ok {
		return nil, fmt.Errorf("exec: no table %s", st.Table.Name)
	}
	matched, err := e.matchRows(tbl, st.Table.Name, st.Where)
	if err != nil {
		return nil, err
	}
	return &DMLResult{Affected: tbl.DeleteRows(matched)}, nil
}
