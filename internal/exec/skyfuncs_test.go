package exec

import (
	"testing"

	"sqlclean/internal/schema"
	"sqlclean/internal/storage"
)

func skyEngine(t *testing.T) *Engine {
	t.Helper()
	db := storage.NewDB(schema.SkyServer())
	tbl, _ := db.Table("photoprimary")
	// Objects at known positions.
	objs := []struct {
		id      int64
		ra, dec float64
	}{
		{100, 10.0, 5.0},
		{101, 10.01, 5.0},  // ~0.6 arcmin from (10, 5)
		{102, 10.05, 5.05}, // ~4 arcmin
		{103, 200.0, -40.0},
	}
	for _, o := range objs {
		row := make(storage.Row, len(tbl.Def.Columns))
		for i, c := range tbl.Def.Columns {
			switch c.Name {
			case "objid":
				row[i] = storage.Int(o.id)
			case "ra":
				row[i] = storage.Float(o.ra)
			case "dec":
				row[i] = storage.Float(o.dec)
			default:
				row[i] = storage.Float(0)
			}
		}
		if err := tbl.Insert(row); err != nil {
			t.Fatal(err)
		}
	}
	e := New(db)
	RegisterSkyFuncs(e)
	return e
}

func TestFGetNearbyObjEq(t *testing.T) {
	e := skyEngine(t)
	rs := query(t, e, "SELECT objid FROM fGetNearbyObjEq(10.0, 5.0, 1.0) n")
	if len(rs.Rows) != 2 { // objects 100 and 101 within 1 arcmin
		t.Fatalf("rows: %v", rs.Rows)
	}
	rs = query(t, e, "SELECT objid FROM fGetNearbyObjEq(10.0, 5.0, 10.0) n")
	if len(rs.Rows) != 3 {
		t.Fatalf("10 arcmin: %v", rs.Rows)
	}
}

func TestFGetNearestObjEq(t *testing.T) {
	e := skyEngine(t)
	rs := query(t, e, "SELECT objid, distance FROM dbo.fGetNearestObjEq(10.0, 5.0, 10.0) n")
	if len(rs.Rows) != 1 || rs.Rows[0][0].I != 100 {
		t.Fatalf("nearest: %v", rs.Rows)
	}
}

func TestFGetObjFromRect(t *testing.T) {
	e := skyEngine(t)
	rs := query(t, e, "SELECT objid FROM fGetObjFromRect(9.9, 4.9, 10.1, 5.1) n")
	if len(rs.Rows) != 3 { // objects 100, 101, 102 are inside the rectangle
		t.Fatalf("rect: %v", rs.Rows)
	}
	rs = query(t, e, "SELECT objid FROM fGetObjFromRect(9.9, 4.9, 10.02, 5.02) n")
	if len(rs.Rows) != 2 { // 102 falls outside the tighter rectangle
		t.Fatalf("tight rect: %v", rs.Rows)
	}
}

func TestSpatialJoinPattern(t *testing.T) {
	// The paper's Table 7 top pattern shape: TVF joined against the base
	// table by objid.
	e := skyEngine(t)
	rs := query(t, e, "SELECT p.objid, p.ra FROM fGetNearbyObjEq(10.0, 5.0, 1.0) n, photoprimary p WHERE n.objid = p.objid")
	if len(rs.Rows) != 2 {
		t.Fatalf("join: %v", rs.Rows)
	}
}

func TestSpatialFunctionsWithUnboundVariables(t *testing.T) {
	// Logged statements often keep @variables; execution treats them as
	// NULL and the search returns nothing rather than failing.
	e := skyEngine(t)
	rs := query(t, e, "SELECT objid FROM fGetNearbyObjEq(@ra, @dec, @r) n")
	if len(rs.Rows) != 0 {
		t.Fatalf("unbound vars: %v", rs.Rows)
	}
	rs = query(t, e, "SELECT objid FROM fGetObjFromRect(@a, @b, @c, @d) n")
	if len(rs.Rows) != 0 {
		t.Fatalf("unbound rect: %v", rs.Rows)
	}
}

func TestSpatialFunctionArity(t *testing.T) {
	e := skyEngine(t)
	if _, err := e.Execute("SELECT objid FROM fGetNearbyObjEq(1, 2) n"); err == nil {
		t.Error("want arity error")
	}
	if _, err := e.Execute("SELECT objid FROM fGetObjFromRect(1, 2, 3) n"); err == nil {
		t.Error("want arity error")
	}
}
