package exec

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"sqlclean/internal/sqlast"
	"sqlclean/internal/storage"
)

func literalValue(l *sqlast.Literal) (storage.Value, error) {
	switch l.Kind {
	case "null":
		return storage.Null, nil
	case "str":
		return storage.Str(l.Val), nil
	default:
		if i, err := strconv.ParseInt(l.Val, 10, 64); err == nil {
			return storage.Int(i), nil
		}
		f, err := strconv.ParseFloat(l.Val, 64)
		if err != nil {
			return storage.Null, fmt.Errorf("exec: bad numeric literal %q", l.Val)
		}
		return storage.Float(f), nil
	}
}

// evalExpr evaluates a scalar expression against one row of a relation.
// cols/row may be nil for constant expressions.
func (e *Engine) evalExpr(x sqlast.Expr, cols []ColInfo, row storage.Row) (storage.Value, error) {
	switch v := x.(type) {
	case *sqlast.Literal:
		return literalValue(v)
	case *sqlast.Variable:
		// Unbound variables evaluate to NULL; logs frequently contain
		// parameterized statements whose values the log does not carry.
		return storage.Null, nil
	case *sqlast.ColumnRef:
		if v.Star {
			return storage.Null, fmt.Errorf("exec: '*' is not a scalar")
		}
		i, ok := findCol(cols, v)
		if !ok {
			return storage.Null, fmt.Errorf("exec: unknown column %s", colName(v))
		}
		return row[i], nil
	case *sqlast.ParenExpr:
		return e.evalExpr(v.X, cols, row)
	case *sqlast.UnaryExpr:
		return e.evalUnary(v, cols, row)
	case *sqlast.BinaryExpr:
		return e.evalBinary(v, cols, row)
	case *sqlast.InExpr:
		return e.evalIn(v, cols, row)
	case *sqlast.BetweenExpr:
		val, err := e.evalExpr(v.X, cols, row)
		if err != nil {
			return storage.Null, err
		}
		lo, err := e.evalExpr(v.Lo, cols, row)
		if err != nil {
			return storage.Null, err
		}
		hi, err := e.evalExpr(v.Hi, cols, row)
		if err != nil {
			return storage.Null, err
		}
		c1, ok1 := storage.Compare(val, lo)
		c2, ok2 := storage.Compare(val, hi)
		if !ok1 || !ok2 {
			return storage.Null, nil
		}
		res := c1 >= 0 && c2 <= 0
		if v.Not {
			res = !res
		}
		return storage.Bool(res), nil
	case *sqlast.IsNullExpr:
		val, err := e.evalExpr(v.X, cols, row)
		if err != nil {
			return storage.Null, err
		}
		res := val.IsNull()
		if v.Not {
			res = !res
		}
		return storage.Bool(res), nil
	case *sqlast.LikeExpr:
		val, err := e.evalExpr(v.X, cols, row)
		if err != nil {
			return storage.Null, err
		}
		pat, err := e.evalExpr(v.Pattern, cols, row)
		if err != nil {
			return storage.Null, err
		}
		if val.IsNull() || pat.IsNull() {
			return storage.Null, nil
		}
		res := likeMatch(val.String(), pat.String())
		if v.Not {
			res = !res
		}
		return storage.Bool(res), nil
	case *sqlast.FuncCall:
		return e.evalScalarFunc(v, cols, row)
	case *sqlast.SubqueryExpr:
		rel, err := e.evalQuery(v.Sub)
		if err != nil {
			return storage.Null, err
		}
		if len(rel.Rows) == 0 || len(rel.Cols) == 0 {
			return storage.Null, nil
		}
		return rel.Rows[0][0], nil
	case *sqlast.ExistsExpr:
		rel, err := e.evalQuery(v.Sub)
		if err != nil {
			return storage.Null, err
		}
		return storage.Bool(len(rel.Rows) > 0), nil
	case *sqlast.CastExpr:
		val, err := e.evalExpr(v.X, cols, row)
		if err != nil {
			return storage.Null, err
		}
		return castValue(val, v.Type)
	case *sqlast.CaseExpr:
		return e.evalCase(v, cols, row)
	}
	return storage.Null, fmt.Errorf("exec: unsupported expression %T", x)
}

func colName(c *sqlast.ColumnRef) string {
	if c.Qualifier != "" {
		return c.Qualifier + "." + c.Name
	}
	return c.Name
}

func (e *Engine) evalUnary(v *sqlast.UnaryExpr, cols []ColInfo, row storage.Row) (storage.Value, error) {
	val, err := e.evalExpr(v.X, cols, row)
	if err != nil {
		return storage.Null, err
	}
	switch v.Op {
	case "NOT":
		if val.IsNull() {
			return storage.Null, nil
		}
		return storage.Bool(!val.Truth()), nil
	case "-":
		switch val.Kind {
		case storage.KindInt:
			return storage.Int(-val.I), nil
		case storage.KindFloat:
			return storage.Float(-val.F), nil
		case storage.KindNull:
			return storage.Null, nil
		}
		return storage.Null, fmt.Errorf("exec: cannot negate %v", val.Kind)
	case "+":
		return val, nil
	case "~":
		if val.Kind == storage.KindInt {
			return storage.Int(^val.I), nil
		}
		return storage.Null, nil
	}
	return storage.Null, fmt.Errorf("exec: unsupported unary %s", v.Op)
}

func (e *Engine) evalBinary(v *sqlast.BinaryExpr, cols []ColInfo, row storage.Row) (storage.Value, error) {
	switch v.Op {
	case "AND", "OR":
		l, err := e.evalExpr(v.Left, cols, row)
		if err != nil {
			return storage.Null, err
		}
		// Short-circuit with two-valued semantics for filtering; NULL is
		// treated as unknown-false.
		if v.Op == "AND" {
			if !l.Truth() {
				return storage.Bool(false), nil
			}
			r, err := e.evalExpr(v.Right, cols, row)
			if err != nil {
				return storage.Null, err
			}
			return storage.Bool(r.Truth()), nil
		}
		if l.Truth() {
			return storage.Bool(true), nil
		}
		r, err := e.evalExpr(v.Right, cols, row)
		if err != nil {
			return storage.Null, err
		}
		return storage.Bool(r.Truth()), nil
	}

	l, err := e.evalExpr(v.Left, cols, row)
	if err != nil {
		return storage.Null, err
	}
	r, err := e.evalExpr(v.Right, cols, row)
	if err != nil {
		return storage.Null, err
	}
	switch v.Op {
	case "=", "<>", "<", ">", "<=", ">=":
		if l.IsNull() || r.IsNull() {
			return storage.Null, nil // SQL semantics: comparisons to NULL are unknown
		}
		c, ok := storage.Compare(l, r)
		if !ok {
			return storage.Null, nil
		}
		switch v.Op {
		case "=":
			return storage.Bool(c == 0), nil
		case "<>":
			return storage.Bool(c != 0), nil
		case "<":
			return storage.Bool(c < 0), nil
		case ">":
			return storage.Bool(c > 0), nil
		case "<=":
			return storage.Bool(c <= 0), nil
		default:
			return storage.Bool(c >= 0), nil
		}
	case "+", "-", "*", "/", "%":
		return arith(v.Op, l, r)
	case "&", "|", "^":
		if l.Kind == storage.KindInt && r.Kind == storage.KindInt {
			switch v.Op {
			case "&":
				return storage.Int(l.I & r.I), nil
			case "|":
				return storage.Int(l.I | r.I), nil
			default:
				return storage.Int(l.I ^ r.I), nil
			}
		}
		return storage.Null, nil
	}
	return storage.Null, fmt.Errorf("exec: unsupported operator %s", v.Op)
}

func arith(op string, l, r storage.Value) (storage.Value, error) {
	if l.IsNull() || r.IsNull() {
		return storage.Null, nil
	}
	if op == "+" && l.Kind == storage.KindString && r.Kind == storage.KindString {
		return storage.Str(l.S + r.S), nil
	}
	if l.Kind == storage.KindInt && r.Kind == storage.KindInt {
		switch op {
		case "+":
			return storage.Int(l.I + r.I), nil
		case "-":
			return storage.Int(l.I - r.I), nil
		case "*":
			return storage.Int(l.I * r.I), nil
		case "/":
			if r.I == 0 {
				return storage.Null, fmt.Errorf("exec: division by zero")
			}
			return storage.Int(l.I / r.I), nil
		case "%":
			if r.I == 0 {
				return storage.Null, fmt.Errorf("exec: division by zero")
			}
			return storage.Int(l.I % r.I), nil
		}
	}
	lf, okL := l.AsFloat()
	rf, okR := r.AsFloat()
	if !okL || !okR {
		return storage.Null, fmt.Errorf("exec: arithmetic on non-numeric values")
	}
	switch op {
	case "+":
		return storage.Float(lf + rf), nil
	case "-":
		return storage.Float(lf - rf), nil
	case "*":
		return storage.Float(lf * rf), nil
	case "/":
		if rf == 0 {
			return storage.Null, fmt.Errorf("exec: division by zero")
		}
		return storage.Float(lf / rf), nil
	case "%":
		return storage.Float(math.Mod(lf, rf)), nil
	}
	return storage.Null, fmt.Errorf("exec: unsupported arithmetic %s", op)
}

func (e *Engine) evalIn(v *sqlast.InExpr, cols []ColInfo, row storage.Row) (storage.Value, error) {
	val, err := e.evalExpr(v.X, cols, row)
	if err != nil {
		return storage.Null, err
	}
	var candidates []storage.Value
	if v.Sub != nil {
		rel, err := e.evalQuery(v.Sub)
		if err != nil {
			return storage.Null, err
		}
		for _, r := range rel.Rows {
			if len(r) > 0 {
				candidates = append(candidates, r[0])
			}
		}
	} else {
		for _, it := range v.List {
			c, err := e.evalExpr(it, cols, row)
			if err != nil {
				return storage.Null, err
			}
			candidates = append(candidates, c)
		}
	}
	found := false
	for _, c := range candidates {
		if cmp, ok := storage.Compare(val, c); ok && cmp == 0 {
			found = true
			break
		}
	}
	if v.Not {
		found = !found
	}
	return storage.Bool(found), nil
}

func (e *Engine) evalCase(v *sqlast.CaseExpr, cols []ColInfo, row storage.Row) (storage.Value, error) {
	var operand storage.Value
	hasOperand := v.Operand != nil
	if hasOperand {
		var err error
		operand, err = e.evalExpr(v.Operand, cols, row)
		if err != nil {
			return storage.Null, err
		}
	}
	for _, w := range v.Whens {
		cond, err := e.evalExpr(w.Cond, cols, row)
		if err != nil {
			return storage.Null, err
		}
		matched := false
		if hasOperand {
			if c, ok := storage.Compare(operand, cond); ok && c == 0 {
				matched = true
			}
		} else {
			matched = cond.Truth()
		}
		if matched {
			return e.evalExpr(w.Then, cols, row)
		}
	}
	if v.Else != nil {
		return e.evalExpr(v.Else, cols, row)
	}
	return storage.Null, nil
}

// castValue converts a value to the named SQL type family.
func castValue(v storage.Value, typ string) (storage.Value, error) {
	if v.IsNull() {
		return storage.Null, nil
	}
	switch strings.ToLower(typ) {
	case "int", "bigint", "smallint", "tinyint":
		switch v.Kind {
		case storage.KindInt, storage.KindBool:
			return storage.Int(v.I), nil
		case storage.KindFloat:
			return storage.Int(int64(v.F)), nil
		case storage.KindString:
			i, err := strconv.ParseInt(strings.TrimSpace(v.S), 10, 64)
			if err != nil {
				return storage.Null, fmt.Errorf("exec: cannot cast %q to int", v.S)
			}
			return storage.Int(i), nil
		}
	case "float", "real", "decimal", "numeric", "money":
		if f, ok := v.AsFloat(); ok {
			return storage.Float(f), nil
		}
		f, err := strconv.ParseFloat(strings.TrimSpace(v.S), 64)
		if err != nil {
			return storage.Null, fmt.Errorf("exec: cannot cast %q to float", v.S)
		}
		return storage.Float(f), nil
	case "varchar", "nvarchar", "char", "nchar", "text":
		return storage.Str(v.String()), nil
	case "bit":
		if f, ok := v.AsFloat(); ok {
			return storage.Bool(f != 0), nil
		}
	}
	return storage.Null, fmt.Errorf("exec: unsupported cast target %q", typ)
}

// likeMatch implements SQL LIKE with % and _ wildcards.
func likeMatch(s, pat string) bool {
	return likeRec(strings.ToLower(s), strings.ToLower(pat))
}

func likeRec(s, pat string) bool {
	for len(pat) > 0 {
		switch pat[0] {
		case '%':
			pat = pat[1:]
			if len(pat) == 0 {
				return true
			}
			for i := 0; i <= len(s); i++ {
				if likeRec(s[i:], pat) {
					return true
				}
			}
			return false
		case '_':
			if len(s) == 0 {
				return false
			}
			s, pat = s[1:], pat[1:]
		default:
			if len(s) == 0 || s[0] != pat[0] {
				return false
			}
			s, pat = s[1:], pat[1:]
		}
	}
	return len(s) == 0
}

func (e *Engine) evalScalarFunc(v *sqlast.FuncCall, cols []ColInfo, row storage.Row) (storage.Value, error) {
	name := strings.ToLower(v.Name)
	args := make([]storage.Value, 0, len(v.Args))
	for _, a := range v.Args {
		av, err := e.evalExpr(a, cols, row)
		if err != nil {
			return storage.Null, err
		}
		args = append(args, av)
	}
	num := func(i int) (float64, bool) {
		if i >= len(args) {
			return 0, false
		}
		return args[i].AsFloat()
	}
	switch name {
	case "abs":
		if f, ok := num(0); ok {
			return storage.Float(math.Abs(f)), nil
		}
	case "floor":
		if f, ok := num(0); ok {
			return storage.Float(math.Floor(f)), nil
		}
	case "ceiling", "ceil":
		if f, ok := num(0); ok {
			return storage.Float(math.Ceil(f)), nil
		}
	case "sqrt":
		if f, ok := num(0); ok {
			return storage.Float(math.Sqrt(f)), nil
		}
	case "power":
		if a, ok := num(0); ok {
			if b, ok2 := num(1); ok2 {
				return storage.Float(math.Pow(a, b)), nil
			}
		}
	case "round":
		if f, ok := num(0); ok {
			digits := 0.0
			if d, ok2 := num(1); ok2 {
				digits = d
			}
			scale := math.Pow(10, digits)
			return storage.Float(math.Round(f*scale) / scale), nil
		}
	case "str":
		if len(args) > 0 {
			return storage.Str(args[0].String()), nil
		}
	case "upper":
		if len(args) > 0 && args[0].Kind == storage.KindString {
			return storage.Str(strings.ToUpper(args[0].S)), nil
		}
	case "lower":
		if len(args) > 0 && args[0].Kind == storage.KindString {
			return storage.Str(strings.ToLower(args[0].S)), nil
		}
	case "ltrim":
		if len(args) > 0 && args[0].Kind == storage.KindString {
			return storage.Str(strings.TrimLeft(args[0].S, " ")), nil
		}
	case "rtrim":
		if len(args) > 0 && args[0].Kind == storage.KindString {
			return storage.Str(strings.TrimRight(args[0].S, " ")), nil
		}
	case "isnull", "coalesce":
		for _, a := range args {
			if !a.IsNull() {
				return a, nil
			}
		}
		return storage.Null, nil
	}
	// Unknown scalar functions evaluate to NULL so that log replay does not
	// abort on exotic builtins.
	return storage.Null, nil
}

// ---------------------------------------------------------------------------
// Projection and aggregation
// ---------------------------------------------------------------------------

func hasAggregates(sel *sqlast.SelectStatement) bool {
	agg := false
	for _, it := range sel.Items {
		sqlast.Walk(it.Expr, func(n sqlast.Node) bool {
			if f, ok := n.(*sqlast.FuncCall); ok && isAggregate(f.Name) {
				agg = true
			}
			_, isSub := n.(*sqlast.SubqueryExpr)
			return !isSub
		})
	}
	return agg
}

func isAggregate(name string) bool {
	switch strings.ToLower(name) {
	case "count", "sum", "avg", "min", "max":
		return true
	}
	return false
}

// project evaluates the select list, handling GROUP BY and aggregates.
func (e *Engine) project(sel *sqlast.SelectStatement, src *Relation) (*Relation, error) {
	if len(sel.GroupBy) == 0 && !hasAggregates(sel) {
		return e.projectPlain(sel, src)
	}
	return e.projectGrouped(sel, src)
}

func (e *Engine) projectPlain(sel *sqlast.SelectStatement, src *Relation) (*Relation, error) {
	out := &Relation{}
	plan, err := expandItems(sel.Items, src.Cols)
	if err != nil {
		return nil, err
	}
	for _, p := range plan {
		out.Cols = append(out.Cols, ColInfo{Name: p.name})
	}
	for _, row := range src.Rows {
		res := make(storage.Row, 0, len(plan))
		for _, p := range plan {
			if p.srcIdx >= 0 {
				res = append(res, row[p.srcIdx])
				continue
			}
			v, err := e.evalExpr(p.expr, src.Cols, row)
			if err != nil {
				return nil, err
			}
			res = append(res, v)
		}
		out.Rows = append(out.Rows, res)
	}
	return out, nil
}

type projItem struct {
	name   string
	expr   sqlast.Expr
	srcIdx int // >= 0 for direct column pass-through
}

// expandItems resolves * and qualified stars into concrete source columns.
func expandItems(items []sqlast.SelectItem, cols []ColInfo) ([]projItem, error) {
	var out []projItem
	for _, it := range items {
		if c, ok := it.Expr.(*sqlast.ColumnRef); ok {
			if c.Star {
				qual := strings.ToLower(c.Qualifier)
				for i, ci := range cols {
					if qual == "" || ci.Alias == qual {
						out = append(out, projItem{name: ci.Name, srcIdx: i})
					}
				}
				continue
			}
			if i, ok := findCol(cols, c); ok {
				name := strings.ToLower(c.Name)
				if it.Alias != "" {
					name = strings.ToLower(it.Alias)
				}
				out = append(out, projItem{name: name, srcIdx: i})
				continue
			}
			return nil, fmt.Errorf("exec: unknown column %s", colName(c))
		}
		name := strings.ToLower(it.Alias)
		if name == "" {
			name = "expr"
		}
		out = append(out, projItem{name: name, expr: it.Expr, srcIdx: -1})
	}
	return out, nil
}

func (e *Engine) projectGrouped(sel *sqlast.SelectStatement, src *Relation) (*Relation, error) {
	// Partition rows by the GROUP BY key (a single group when absent).
	type group struct {
		key  string
		rows []storage.Row
	}
	var groups []*group
	byKey := map[string]*group{}
	if len(sel.GroupBy) == 0 {
		g := &group{rows: src.Rows}
		groups = append(groups, g)
	} else {
		for _, row := range src.Rows {
			var b strings.Builder
			for _, ge := range sel.GroupBy {
				v, err := e.evalExpr(ge, src.Cols, row)
				if err != nil {
					return nil, err
				}
				b.WriteString(v.Key())
				b.WriteByte('\x01')
			}
			k := b.String()
			g, ok := byKey[k]
			if !ok {
				g = &group{key: k}
				byKey[k] = g
				groups = append(groups, g)
			}
			g.rows = append(g.rows, row)
		}
	}

	out := &Relation{}
	for _, it := range sel.Items {
		name := strings.ToLower(it.Alias)
		if name == "" {
			if c, ok := it.Expr.(*sqlast.ColumnRef); ok && !c.Star {
				name = strings.ToLower(c.Name)
			} else if f, ok := it.Expr.(*sqlast.FuncCall); ok {
				name = strings.ToLower(f.Name)
			} else {
				name = "expr"
			}
		}
		out.Cols = append(out.Cols, ColInfo{Name: name})
	}

	for _, g := range groups {
		if sel.Having != nil {
			v, err := e.evalAggExpr(sel.Having, src.Cols, g.rows)
			if err != nil {
				return nil, err
			}
			if !v.Truth() {
				continue
			}
		}
		res := make(storage.Row, 0, len(sel.Items))
		for _, it := range sel.Items {
			v, err := e.evalAggExpr(it.Expr, src.Cols, g.rows)
			if err != nil {
				return nil, err
			}
			res = append(res, v)
		}
		out.Rows = append(out.Rows, res)
	}
	return out, nil
}

// evalAggExpr evaluates an expression over a group: aggregate calls consume
// the whole group, everything else is evaluated against the group's first
// row (the GROUP BY columns are constant within a group).
func (e *Engine) evalAggExpr(x sqlast.Expr, cols []ColInfo, rows []storage.Row) (storage.Value, error) {
	if f, ok := x.(*sqlast.FuncCall); ok && isAggregate(f.Name) {
		return e.evalAggregate(f, cols, rows)
	}
	switch v := x.(type) {
	case *sqlast.BinaryExpr:
		l, err := e.evalAggExpr(v.Left, cols, rows)
		if err != nil {
			return storage.Null, err
		}
		r, err := e.evalAggExpr(v.Right, cols, rows)
		if err != nil {
			return storage.Null, err
		}
		return e.evalBinary(&sqlast.BinaryExpr{Op: v.Op, Left: valueLiteral(l), Right: valueLiteral(r)}, nil, nil)
	case *sqlast.ParenExpr:
		return e.evalAggExpr(v.X, cols, rows)
	}
	if len(rows) == 0 {
		return storage.Null, nil
	}
	return e.evalExpr(x, cols, rows[0])
}

// valueLiteral wraps an evaluated value back into an AST literal so the
// scalar evaluator can combine aggregate results.
func valueLiteral(v storage.Value) sqlast.Expr {
	switch v.Kind {
	case storage.KindNull:
		return &sqlast.Literal{Kind: "null"}
	case storage.KindString:
		return &sqlast.Literal{Kind: "str", Val: v.S}
	case storage.KindFloat:
		return &sqlast.Literal{Kind: "num", Val: strconv.FormatFloat(v.F, 'g', -1, 64)}
	default:
		return &sqlast.Literal{Kind: "num", Val: strconv.FormatInt(v.I, 10)}
	}
}

func (e *Engine) evalAggregate(f *sqlast.FuncCall, cols []ColInfo, rows []storage.Row) (storage.Value, error) {
	name := strings.ToLower(f.Name)
	if name == "count" && (f.Star || len(f.Args) == 0) {
		return storage.Int(int64(len(rows))), nil
	}
	if len(f.Args) != 1 {
		return storage.Null, fmt.Errorf("exec: aggregate %s wants one argument", name)
	}
	var vals []storage.Value
	seen := map[string]bool{}
	for _, row := range rows {
		v, err := e.evalExpr(f.Args[0], cols, row)
		if err != nil {
			return storage.Null, err
		}
		if v.IsNull() {
			continue
		}
		if f.Distinct {
			k := v.Key()
			if seen[k] {
				continue
			}
			seen[k] = true
		}
		vals = append(vals, v)
	}
	switch name {
	case "count":
		return storage.Int(int64(len(vals))), nil
	case "sum", "avg":
		var total float64
		allInt := true
		for _, v := range vals {
			fv, ok := v.AsFloat()
			if !ok {
				return storage.Null, fmt.Errorf("exec: %s over non-numeric values", name)
			}
			if v.Kind != storage.KindInt {
				allInt = false
			}
			total += fv
		}
		if len(vals) == 0 {
			return storage.Null, nil
		}
		if name == "avg" {
			return storage.Float(total / float64(len(vals))), nil
		}
		if allInt {
			return storage.Int(int64(total)), nil
		}
		return storage.Float(total), nil
	case "min", "max":
		if len(vals) == 0 {
			return storage.Null, nil
		}
		best := vals[0]
		for _, v := range vals[1:] {
			c, ok := storage.Compare(v, best)
			if !ok {
				continue
			}
			if (name == "min" && c < 0) || (name == "max" && c > 0) {
				best = v
			}
		}
		return best, nil
	}
	return storage.Null, fmt.Errorf("exec: unsupported aggregate %s", name)
}
