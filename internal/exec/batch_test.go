package exec

import (
	"testing"
)

func TestExecuteBatch(t *testing.T) {
	e := demoEngine(t)
	rss, err := e.ExecuteBatch("SELECT name FROM emp WHERE id = 1; SELECT name FROM emp WHERE id = 2;")
	if err != nil {
		t.Fatal(err)
	}
	if len(rss) != 2 {
		t.Fatalf("results: %d", len(rss))
	}
	if rss[0].Rows[0][0].S != "ann" || rss[1].Rows[0][0].S != "bob" {
		t.Fatalf("rows: %v %v", rss[0].Rows, rss[1].Rows)
	}
	// One round trip, two statements — the Pack economics.
	if e.Stats.RoundTrips != 1 || e.Stats.Statements != 2 {
		t.Errorf("stats: %+v", e.Stats)
	}
}

func TestExecuteBatchVsSingletonCost(t *testing.T) {
	m := DefaultCostModel()
	single := demoEngine(t)
	for _, q := range []string{"SELECT name FROM emp WHERE id = 1", "SELECT name FROM emp WHERE id = 2"} {
		if _, err := single.Execute(q); err != nil {
			t.Fatal(err)
		}
	}
	batched := demoEngine(t)
	if _, err := batched.ExecuteBatch("SELECT name FROM emp WHERE id = 1; SELECT name FROM emp WHERE id = 2"); err != nil {
		t.Fatal(err)
	}
	if !(batched.Stats.Cost(m) < single.Stats.Cost(m)) {
		t.Errorf("batching must be cheaper: %v vs %v", batched.Stats.Cost(m), single.Stats.Cost(m))
	}
	// But the server-side statement count is identical (paper §3.1.1: Pack
	// "still requires the same amount of database resources").
	if batched.Stats.Statements != single.Stats.Statements {
		t.Errorf("statements: %d vs %d", batched.Stats.Statements, single.Stats.Statements)
	}
}

func TestExecuteBatchStopsOnError(t *testing.T) {
	e := demoEngine(t)
	rss, err := e.ExecuteBatch("SELECT name FROM emp WHERE id = 1; SELECT broken FROM nowhere; SELECT name FROM emp WHERE id = 2")
	if err == nil {
		t.Fatal("want error")
	}
	if len(rss) != 1 {
		t.Errorf("partial results: %d", len(rss))
	}
}

func TestExecuteBatchSemicolonInString(t *testing.T) {
	e := demoEngine(t)
	rss, err := e.ExecuteBatch("SELECT name FROM emp WHERE dep = 'a;b'")
	if err != nil {
		t.Fatal(err)
	}
	if len(rss) != 1 {
		t.Fatalf("string semicolon split the batch: %d results", len(rss))
	}
}
