package exec

import (
	"strings"
	"testing"

	"sqlclean/internal/storage"
	"sqlclean/internal/workload"
)

func TestInsertExecute(t *testing.T) {
	e := demoEngine(t)
	_, res, err := e.ExecuteStatement("INSERT INTO emp (id, name, dep, salary, bonus) VALUES (6, 'fay', 'hr', 60, NULL)")
	if err != nil {
		t.Fatal(err)
	}
	if res.Affected != 1 {
		t.Fatalf("affected: %d", res.Affected)
	}
	rs := query(t, e, "SELECT name FROM emp WHERE id = 6")
	if len(rs.Rows) != 1 || rs.Rows[0][0].S != "fay" {
		t.Fatalf("inserted row not found: %v", rs.Rows)
	}
}

func TestInsertPositionalAndMultiRow(t *testing.T) {
	e := demoEngine(t)
	_, res, err := e.ExecuteStatement("INSERT INTO dep VALUES ('hr', 'Bonn'), ('it', 'Graz')")
	if err != nil {
		t.Fatal(err)
	}
	if res.Affected != 2 {
		t.Fatalf("affected: %d", res.Affected)
	}
	rs := query(t, e, "SELECT count(*) FROM dep")
	if rs.Rows[0][0].I != 4 {
		t.Fatalf("count: %v", rs.Rows[0][0])
	}
}

func TestInsertErrors(t *testing.T) {
	e := demoEngine(t)
	for _, q := range []string{
		"INSERT INTO ghost VALUES (1)",
		"INSERT INTO emp (nope) VALUES (1)",
		"INSERT INTO emp (id, name) VALUES (1)", // arity
	} {
		if _, _, err := e.ExecuteStatement(q); err == nil {
			t.Errorf("%q: want error", q)
		}
	}
}

func TestUpdateExecute(t *testing.T) {
	e := demoEngine(t)
	// The paper's BUY-procedure shape: count = count - 1 referencing the
	// current row.
	_, res, err := e.ExecuteStatement("UPDATE emp SET salary = salary + 10 WHERE dep = 'sales'")
	if err != nil {
		t.Fatal(err)
	}
	if res.Affected != 2 {
		t.Fatalf("affected: %d", res.Affected)
	}
	rs := query(t, e, "SELECT salary FROM emp WHERE id = 1")
	if rs.Rows[0][0].I != 110 {
		t.Fatalf("salary: %v", rs.Rows[0][0])
	}
}

func TestUpdateMaintainsIndex(t *testing.T) {
	e := demoEngine(t)
	if _, _, err := e.ExecuteStatement("UPDATE emp SET id = 99 WHERE id = 1"); err != nil {
		t.Fatal(err)
	}
	rs := query(t, e, "SELECT name FROM emp WHERE id = 99")
	if len(rs.Rows) != 1 || rs.Rows[0][0].S != "ann" {
		t.Fatalf("index stale after update: %v", rs.Rows)
	}
	rs = query(t, e, "SELECT name FROM emp WHERE id = 1")
	if len(rs.Rows) != 0 {
		t.Fatalf("old key still indexed: %v", rs.Rows)
	}
}

func TestDeleteExecute(t *testing.T) {
	e := demoEngine(t)
	_, res, err := e.ExecuteStatement("DELETE FROM emp WHERE dep = 'eng'")
	if err != nil {
		t.Fatal(err)
	}
	if res.Affected != 2 {
		t.Fatalf("affected: %d", res.Affected)
	}
	rs := query(t, e, "SELECT count(*) FROM emp")
	if rs.Rows[0][0].I != 3 {
		t.Fatalf("remaining: %v", rs.Rows[0][0])
	}
	// Indexes rebuilt: lookups on survivors still work.
	rs = query(t, e, "SELECT name FROM emp WHERE id = 5")
	if len(rs.Rows) != 1 || rs.Rows[0][0].S != "eve" {
		t.Fatalf("post-delete lookup: %v", rs.Rows)
	}
}

func TestDeleteAllRows(t *testing.T) {
	e := demoEngine(t)
	_, res, err := e.ExecuteStatement("DELETE FROM dep")
	if err != nil {
		t.Fatal(err)
	}
	if res.Affected != 2 {
		t.Fatalf("affected: %d", res.Affected)
	}
}

func TestExecuteStatementSelectPassThrough(t *testing.T) {
	e := demoEngine(t)
	rs, dml, err := e.ExecuteStatement("SELECT name FROM emp WHERE id = 1")
	if err != nil || dml != nil || len(rs.Rows) != 1 {
		t.Fatalf("rs=%v dml=%v err=%v", rs, dml, err)
	}
}

func TestExecuteStatementRejectsDDL(t *testing.T) {
	e := demoEngine(t)
	if _, _, err := e.ExecuteStatement("DROP TABLE emp"); err == nil {
		t.Error("DDL must be rejected")
	}
}

// TestRetailBuyProcedureEndToEnd executes the paper's Example 7 BUY
// procedure — SELECT barcode, INSERT the sale, UPDATE the stock — against
// the retail schema.
func TestRetailBuyProcedureEndToEnd(t *testing.T) {
	db := storage.NewDB(workload.RetailCatalog())
	e := New(db)
	mustDML := func(q string) {
		t.Helper()
		if _, _, err := e.ExecuteStatement(q); err != nil {
			t.Fatalf("%q: %v", q, err)
		}
	}
	mustDML("INSERT INTO BarCodesInfo VALUES (4000000001, 'runner', 42)")
	mustDML("INSERT INTO InPresence VALUES ('runner', 42, 5)")
	mustDML("INSERT INTO Prices VALUES ('runner', 89.9)")

	// BUY(4000000001):
	rs := query(t, e, "SELECT model, size FROM BarCodesInfo WHERE id = 4000000001")
	model, size := rs.Rows[0][0].S, rs.Rows[0][1].I
	mustDML("INSERT INTO Sales (saleid, barcode, seller) VALUES (1, 4000000001, 'pos-01')")
	if _, res, err := e.ExecuteStatement(
		"UPDATE InPresence SET count = count - 1 WHERE model = '" + model + "'"); err != nil || res.Affected != 1 {
		t.Fatalf("update: %v %v", res, err)
	}
	_ = size
	rs = query(t, e, "SELECT count FROM InPresence WHERE model = 'runner'")
	if rs.Rows[0][0].I != 4 {
		t.Fatalf("stock after sale: %v", rs.Rows[0][0])
	}
}

func TestUnmodeledDMLDegradesToClassification(t *testing.T) {
	e := demoEngine(t)
	// INSERT ... SELECT is classified as DML but not executable.
	_, _, err := e.ExecuteStatement("INSERT INTO emp SELECT * FROM emp")
	if err == nil || !strings.Contains(err.Error(), "dml") {
		t.Fatalf("err: %v", err)
	}
}
