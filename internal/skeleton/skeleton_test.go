package skeleton

import (
	"testing"

	"sqlclean/internal/sqlparser"
)

func analyze(t *testing.T, q string) *Info {
	t.Helper()
	sel, err := sqlparser.ParseSelect(q)
	if err != nil {
		t.Fatalf("parse %q: %v", q, err)
	}
	return Analyze(sel)
}

func TestClauseSkeletons(t *testing.T) {
	in := analyze(t, "SELECT Name, Surname FROM Employee WHERE id = 12")
	if in.SSC != "name, surname" {
		t.Errorf("SSC: %q", in.SSC)
	}
	if in.SFC != "employee" {
		t.Errorf("SFC: %q", in.SFC)
	}
	if in.SWC != "id = <num>" {
		t.Errorf("SWC: %q", in.SWC)
	}
	if in.WC != "id = 12" {
		t.Errorf("WC: %q", in.WC)
	}
	if in.SC != "name, surname" || in.FC != "employee" {
		t.Errorf("SC/FC: %q / %q", in.SC, in.FC)
	}
}

func TestFingerprintEqualityAcrossValuesAndCase(t *testing.T) {
	// Definition 6: similar iff skeletons equal. Values and identifier case
	// must not matter.
	a := analyze(t, "SELECT a, b FROM T WHERE a = 0 AND b >= 3")
	b := analyze(t, "select A, B from t where A = 10 and B >= 5")
	if a.Fingerprint != b.Fingerprint {
		t.Error("fingerprints differ for similar queries")
	}
	if !TemplateEqual(a, b) {
		t.Error("TemplateEqual must hold")
	}
	c := analyze(t, "SELECT a, b FROM T WHERE a = 0 AND b > 3") // >= vs >
	if a.Fingerprint == c.Fingerprint {
		t.Error("different operators must yield different fingerprints")
	}
	d := analyze(t, "SELECT a FROM T WHERE a = 0 AND b >= 3") // different SSC
	if a.Fingerprint == d.Fingerprint {
		t.Error("different select lists must yield different fingerprints")
	}
}

func TestFingerprintOfMatchesAnalyze(t *testing.T) {
	in := analyze(t, "SELECT a FROM t WHERE a = 1")
	if FingerprintOf(in.SFC, in.SWC, in.SSC) != in.Fingerprint {
		t.Error("FingerprintOf disagrees with Analyze")
	}
}

func TestPredicateExtraction(t *testing.T) {
	cases := []struct {
		q     string
		cp    int
		first Predicate
	}{
		{"SELECT a FROM t WHERE id = 8", 1,
			Predicate{Column: "id", Op: "="}},
		{"SELECT a FROM t WHERE t.id = 8", 1,
			Predicate{Qualifier: "t", Column: "id", Op: "="}},
		{"SELECT a FROM t WHERE 8 = id", 1,
			Predicate{Column: "id", Op: "="}},
		{"SELECT a FROM t WHERE 8 < id", 1,
			Predicate{Column: "id", Op: ">"}},
		{"SELECT a FROM t WHERE id IN (1, 2, 3)", 1,
			Predicate{Column: "id", Op: "IN"}},
		{"SELECT a FROM t WHERE r BETWEEN 1 AND 2", 1,
			Predicate{Column: "r", Op: "BETWEEN"}},
		{"SELECT a FROM t WHERE x IS NULL", 1,
			Predicate{Column: "x", Op: "IS NULL"}},
		{"SELECT a FROM t WHERE x IS NOT NULL", 1,
			Predicate{Column: "x", Op: "IS NOT NULL"}},
		{"SELECT a FROM t WHERE s LIKE 'x%'", 1,
			Predicate{Column: "s", Op: "LIKE"}},
		{"SELECT a FROM t WHERE a = 1 AND b = 2", 2,
			Predicate{Column: "a", Op: "="}},
		{"SELECT a FROM t WHERE (a = 1) AND ((b = 2))", 2,
			Predicate{Column: "a", Op: "="}},
		{"SELECT a FROM t WHERE a = 1 OR b = 2", 1,
			Predicate{Op: "complex"}},
		{"SELECT a FROM t WHERE abs(a) = 1", 1,
			Predicate{Op: "complex"}},
		{"SELECT a FROM t, u WHERE t.id = u.id", 1,
			Predicate{Qualifier: "t", Column: "id", Op: "=", OtherColumn: "u.id"}},
	}
	for _, c := range cases {
		in := analyze(t, c.q)
		if in.CP() != c.cp {
			t.Errorf("%q: CP=%d, want %d", c.q, in.CP(), c.cp)
			continue
		}
		p := in.Predicates[0]
		if p.Column != c.first.Column || p.Op != c.first.Op ||
			p.Qualifier != c.first.Qualifier || p.OtherColumn != c.first.OtherColumn {
			t.Errorf("%q: got %+v, want %+v", c.q, p, c.first)
		}
	}
}

func TestPredicateLiteralCollection(t *testing.T) {
	in := analyze(t, "SELECT a FROM t WHERE id IN (8, 1, 9)")
	p := in.Predicates[0]
	if len(p.Literals) != 3 || p.Literals[0].Val != "8" || p.Literals[2].Val != "9" {
		t.Errorf("literals: %+v", p.Literals)
	}
	in = analyze(t, "SELECT a FROM t WHERE r BETWEEN 1 AND 2")
	p = in.Predicates[0]
	if len(p.Literals) != 2 || p.Literals[0].Val != "1" || p.Literals[1].Val != "2" {
		t.Errorf("between literals: %+v", p.Literals)
	}
}

func TestNullComparePredicates(t *testing.T) {
	in := analyze(t, "SELECT a FROM t WHERE x = NULL")
	if !in.Predicates[0].NullCompare {
		t.Error("x = NULL must set NullCompare")
	}
	in = analyze(t, "SELECT a FROM t WHERE x <> NULL")
	if !in.Predicates[0].NullCompare {
		t.Error("x <> NULL must set NullCompare")
	}
	in = analyze(t, "SELECT a FROM t WHERE x = 1")
	if in.Predicates[0].NullCompare {
		t.Error("x = 1 must not set NullCompare")
	}
}

func TestPredicateHelpers(t *testing.T) {
	eq := Predicate{Column: "id", Op: "="}
	if !eq.IsEquality() || !eq.IsValueFilter() {
		t.Error("equality value filter misclassified")
	}
	join := Predicate{Column: "id", Op: "=", OtherColumn: "u.id"}
	if join.IsValueFilter() {
		t.Error("join predicate is not a value filter")
	}
	complexP := Predicate{Op: "complex"}
	if complexP.IsValueFilter() || complexP.IsEquality() {
		t.Error("complex predicate misclassified")
	}
}

func TestVariablePredicateActsAsValueFilter(t *testing.T) {
	in := analyze(t, "SELECT a FROM t WHERE id = @v")
	p := in.Predicates[0]
	if !p.IsEquality() || !p.IsValueFilter() {
		t.Errorf("variable filter: %+v", p)
	}
	if len(p.Literals) != 0 {
		t.Errorf("variables carry no literal values: %+v", p.Literals)
	}
}

func TestSelectColumns(t *testing.T) {
	in := analyze(t, "SELECT E.objID, ra, count(dec) FROM t E")
	want := []string{"objid", "ra", "dec"}
	if len(in.SelectCols) != len(want) {
		t.Fatalf("cols: %v", in.SelectCols)
	}
	for i := range want {
		if in.SelectCols[i] != want[i] {
			t.Errorf("col %d: %q want %q", i, in.SelectCols[i], want[i])
		}
	}
	in = analyze(t, "SELECT * FROM t")
	if len(in.SelectCols) != 1 || in.SelectCols[0] != "*" {
		t.Errorf("star: %v", in.SelectCols)
	}
}

func TestSelectColumnsSkipSubqueries(t *testing.T) {
	in := analyze(t, "SELECT a, (SELECT max(hidden) FROM u) FROM t")
	for _, c := range in.SelectCols {
		if c == "hidden" {
			t.Error("subquery columns leaked into SelectCols")
		}
	}
}

func TestTableNames(t *testing.T) {
	in := analyze(t, "SELECT a FROM T1 JOIN t2 ON T1.x = t2.x, (SELECT b FROM T3) s WHERE a IN (SELECT c FROM t1)")
	want := map[string]bool{"t1": true, "t2": true, "t3": true}
	if len(in.TableNames) != 3 {
		t.Fatalf("tables: %v", in.TableNames)
	}
	for _, n := range in.TableNames {
		if !want[n] {
			t.Errorf("unexpected table %q", n)
		}
	}
}

func TestSkeletonTextIsCanonical(t *testing.T) {
	in := analyze(t, "SELECT Name FROM Emp WHERE id = 7")
	if in.SkeletonText() != "SELECT name FROM emp WHERE id = <num>" {
		t.Errorf("got %q", in.SkeletonText())
	}
}

func TestExtractPredicatesNilWhere(t *testing.T) {
	if ps := ExtractPredicates(nil); ps != nil {
		t.Errorf("nil where must yield nil, got %v", ps)
	}
	in := analyze(t, "SELECT a FROM t")
	if in.CP() != 0 {
		t.Errorf("CP without WHERE: %d", in.CP())
	}
}

func TestNotInIsComplex(t *testing.T) {
	in := analyze(t, "SELECT a FROM t WHERE id NOT IN (1, 2)")
	if in.Predicates[0].Op != "complex" {
		t.Errorf("NOT IN must be complex: %+v", in.Predicates[0])
	}
}
