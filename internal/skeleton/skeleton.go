// Package skeleton implements skeleton queries and query templates
// (Definitions 2–6 of the paper): the canonical, literal-masked form of a
// SELECT statement, split into the three clause skeletons SFC, SWC and SSC,
// plus the predicate summary (count CP, operator θ, filter column) that the
// antipattern definitions (Defs 11 and 15) are stated over.
package skeleton

import (
	"hash/fnv"
	"strings"

	"sqlclean/internal/sqlast"
)

// Predicate summarizes one top-level conjunct of a WHERE clause.
type Predicate struct {
	// Qualifier and Column identify the filtered column (canonical
	// lower-case). Empty Column means the conjunct is not a simple
	// column-vs-value comparison.
	Qualifier string
	Column    string
	// Op is the comparison: "=", "<>", "<", ">", "<=", ">=", "IN",
	// "BETWEEN", "LIKE", "IS NULL", "IS NOT NULL", or "complex" for
	// anything else (OR trees, function comparisons, ...).
	Op string
	// Literals holds the literal values compared against, in order.
	Literals []sqlast.Literal
	// OtherColumn is set when the right-hand side is another column
	// (join-style predicate col = col).
	OtherColumn string
	// NullCompare is true for the SNC antipattern shape: an (in)equality
	// comparison against the NULL literal (x = NULL, x <> NULL).
	NullCompare bool
}

// IsEquality reports whether θ is '=' (Defs 11 and 15 require equality).
func (p Predicate) IsEquality() bool { return p.Op == "=" }

// IsValueFilter reports whether the predicate compares the column against
// constant values (literals or variables), as opposed to another column.
func (p Predicate) IsValueFilter() bool {
	return p.Column != "" && p.OtherColumn == "" && p.Op != "complex"
}

// Info is the parsed-and-summarized form of one SELECT statement: the query
// template (SFC, SWC, SSC), the concrete clauses (FC, WC, SC), and the
// predicate summary. It retains the AST for rewriting.
type Info struct {
	Stmt *sqlast.SelectStatement

	// Skeleton clause texts (literals masked, identifiers normalized) —
	// Definition 2.
	SFC, SWC, SSC string
	// Concrete clause texts (identifiers normalized, literals kept) —
	// Definition 3.
	FC, WC, SC string

	// Fingerprint identifies the template (SFC, SWC, SSC) — Definition 4/5.
	Fingerprint uint64

	// Predicates are the top-level AND-connected conjuncts of WHERE.
	Predicates []Predicate
	// SelectCols are the canonical names of plain columns in the select
	// list ("*" for star). Columns inside function calls are included too,
	// because CTH detection asks whether an output attribute feeds a later
	// WHERE clause.
	SelectCols []string
	// TableNames are the canonical base-table names referenced anywhere in
	// the statement, deduplicated, in encounter order.
	TableNames []string

	// skel memoizes SkeletonText — sequence mining asks for it once per
	// collapsed block, far more often than once per distinct statement.
	skel string
}

// CP returns the count of predicates (Definition 11's CP).
func (in *Info) CP() int { return len(in.Predicates) }

// SkeletonText returns the full skeleton-query text (all clauses). For an
// Analyze-produced Info this is memoized; hand-built Infos fall back to
// printing the AST.
func (in *Info) SkeletonText() string {
	if in.skel != "" {
		return in.skel
	}
	return sqlast.Canonical(in.Stmt)
}

// TemplateEqual reports whether two statements have equal skeletons
// (Definition 5: SFC, SWC and SSC all equal).
func TemplateEqual(a, b *Info) bool {
	return a.SFC == b.SFC && a.SWC == b.SWC && a.SSC == b.SSC
}

var (
	maskOpts     = sqlast.PrintOptions{MaskLiterals: true, NormalizeIdents: true}
	concreteOpts = sqlast.PrintOptions{MaskLiterals: false, NormalizeIdents: true}
)

// Analyze computes the Info summary for a parsed SELECT statement.
//
// All seven derived texts (SSC/SC, SFC/FC, SWC/WC and the full skeleton) are
// rendered into one pre-grown builder and sliced out of its final string:
// the alloc profile showed per-clause builders regrowing mid-print as the
// single largest allocation source on template-heavy logs. The slices pin
// the one backing array, which is fine — they live and die together in the
// Info.
func Analyze(sel *sqlast.SelectStatement) *Info {
	in := &Info{Stmt: sel}
	var b strings.Builder
	b.Grow(512)
	appendSelectList(&b, sel, true)
	o1 := b.Len()
	appendSelectList(&b, sel, false)
	o2 := b.Len()
	appendFromList(&b, sel, true)
	o3 := b.Len()
	appendFromList(&b, sel, false)
	o4 := b.Len()
	if sel.Where != nil {
		sqlast.AppendExpr(&b, sel.Where, maskOpts)
	}
	o5 := b.Len()
	if sel.Where != nil {
		sqlast.AppendExpr(&b, sel.Where, concreteOpts)
	}
	o6 := b.Len()
	sqlast.AppendSelect(&b, sel, maskOpts)
	s := b.String()
	in.SSC, in.SC = s[:o1], s[o1:o2]
	in.SFC, in.FC = s[o2:o3], s[o3:o4]
	in.SWC, in.WC = s[o4:o5], s[o5:o6]
	in.skel = s[o6:]
	in.Fingerprint = fingerprint(in.SFC, in.SWC, in.SSC)
	in.Predicates = ExtractPredicates(sel.Where)
	in.SelectCols = selectColumns(sel)
	in.TableNames = tableNames(sel)
	return in
}

func fingerprint(sfc, swc, ssc string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(sfc))
	h.Write([]byte{0})
	h.Write([]byte(swc))
	h.Write([]byte{0})
	h.Write([]byte(ssc))
	return h.Sum64()
}

// FingerprintOf returns the template fingerprint for arbitrary clause texts.
// Exposed for tests and for the loose-matching ablation.
func FingerprintOf(sfc, swc, ssc string) uint64 { return fingerprint(sfc, swc, ssc) }

func appendSelectList(b *strings.Builder, sel *sqlast.SelectStatement, masked bool) {
	o := concreteOpts
	if masked {
		o = maskOpts
	}
	for i, it := range sel.Items {
		if i > 0 {
			b.WriteString(", ")
		}
		sqlast.AppendExpr(b, it.Expr, o)
		if it.Alias != "" {
			b.WriteString(" AS ")
			b.WriteString(strings.ToLower(it.Alias))
		}
	}
}

func appendFromList(b *strings.Builder, sel *sqlast.SelectStatement, masked bool) {
	o := concreteOpts
	if masked {
		o = maskOpts
	}
	for i, ts := range sel.From {
		if i > 0 {
			b.WriteString(", ")
		}
		sqlast.AppendTableSource(b, ts, o)
	}
}

// ExtractPredicates flattens a WHERE expression over AND and summarizes each
// conjunct. A nil expression yields nil.
func ExtractPredicates(where sqlast.Expr) []Predicate {
	if where == nil {
		return nil
	}
	conjuncts := make([]sqlast.Expr, 0, countConjuncts(where))
	flattenAnd(where, &conjuncts)
	preds := make([]Predicate, 0, len(conjuncts))
	for _, c := range conjuncts {
		preds = append(preds, summarize(c))
	}
	return preds
}

// countConjuncts sizes flattenAnd's output exactly, so the conjunct slice
// is allocated once instead of growing through appends.
func countConjuncts(e sqlast.Expr) int {
	switch x := e.(type) {
	case *sqlast.BinaryExpr:
		if x.Op == "AND" {
			return countConjuncts(x.Left) + countConjuncts(x.Right)
		}
	case *sqlast.ParenExpr:
		return countConjuncts(x.X)
	}
	return 1
}

func flattenAnd(e sqlast.Expr, out *[]sqlast.Expr) {
	switch x := e.(type) {
	case *sqlast.BinaryExpr:
		if x.Op == "AND" {
			flattenAnd(x.Left, out)
			flattenAnd(x.Right, out)
			return
		}
	case *sqlast.ParenExpr:
		flattenAnd(x.X, out)
		return
	}
	*out = append(*out, e)
}

func summarize(e sqlast.Expr) Predicate {
	switch x := e.(type) {
	case *sqlast.BinaryExpr:
		switch x.Op {
		case "=", "<>", "<", ">", "<=", ">=":
			col, colOK := asColumn(x.Left)
			if !colOK {
				// value op column — normalize by flipping.
				if rcol, ok := asColumn(x.Right); ok {
					return summarizeCmp(rcol, flipOp(x.Op), x.Left)
				}
				return Predicate{Op: "complex"}
			}
			return summarizeCmp(col, x.Op, x.Right)
		}
		return Predicate{Op: "complex"}
	case *sqlast.InExpr:
		col, ok := asColumn(x.X)
		if !ok || x.Sub != nil || x.Not {
			return Predicate{Op: "complex"}
		}
		p := Predicate{Qualifier: canon(col.Qualifier), Column: canon(col.Name), Op: "IN"}
		for _, it := range x.List {
			if lit, ok := it.(*sqlast.Literal); ok {
				p.Literals = append(p.Literals, *lit)
			}
		}
		return p
	case *sqlast.BetweenExpr:
		col, ok := asColumn(x.X)
		if !ok || x.Not {
			return Predicate{Op: "complex"}
		}
		p := Predicate{Qualifier: canon(col.Qualifier), Column: canon(col.Name), Op: "BETWEEN"}
		if lo, ok := x.Lo.(*sqlast.Literal); ok {
			p.Literals = append(p.Literals, *lo)
		}
		if hi, ok := x.Hi.(*sqlast.Literal); ok {
			p.Literals = append(p.Literals, *hi)
		}
		return p
	case *sqlast.IsNullExpr:
		col, ok := asColumn(x.X)
		if !ok {
			return Predicate{Op: "complex"}
		}
		op := "IS NULL"
		if x.Not {
			op = "IS NOT NULL"
		}
		return Predicate{Qualifier: canon(col.Qualifier), Column: canon(col.Name), Op: op}
	case *sqlast.LikeExpr:
		col, ok := asColumn(x.X)
		if !ok || x.Not {
			return Predicate{Op: "complex"}
		}
		p := Predicate{Qualifier: canon(col.Qualifier), Column: canon(col.Name), Op: "LIKE"}
		if lit, ok := x.Pattern.(*sqlast.Literal); ok {
			p.Literals = append(p.Literals, *lit)
		}
		return p
	case *sqlast.ParenExpr:
		return summarize(x.X)
	}
	return Predicate{Op: "complex"}
}

func summarizeCmp(col *sqlast.ColumnRef, op string, rhs sqlast.Expr) Predicate {
	p := Predicate{Qualifier: canon(col.Qualifier), Column: canon(col.Name), Op: op}
	switch r := rhs.(type) {
	case *sqlast.Literal:
		if r.Kind == "null" {
			p.NullCompare = op == "=" || op == "<>"
		}
		p.Literals = []sqlast.Literal{*r}
	case *sqlast.ColumnRef:
		if !r.Star {
			p.OtherColumn = canon(r.Name)
			if q := canon(r.Qualifier); q != "" {
				p.OtherColumn = q + "." + p.OtherColumn
			}
		}
	case *sqlast.Variable:
		// Variables act as parameters; treat like a literal-valued filter
		// with no recorded value.
	default:
		p.Op = "complex"
		p.Column = ""
		p.Qualifier = ""
	}
	return p
}

func flipOp(op string) string {
	switch op {
	case "<":
		return ">"
	case ">":
		return "<"
	case "<=":
		return ">="
	case ">=":
		return "<="
	}
	return op
}

func asColumn(e sqlast.Expr) (*sqlast.ColumnRef, bool) {
	switch x := e.(type) {
	case *sqlast.ColumnRef:
		if x.Star {
			return nil, false
		}
		return x, true
	case *sqlast.ParenExpr:
		return asColumn(x.X)
	}
	return nil, false
}

func canon(s string) string { return strings.ToLower(s) }

// containsStr is the membership test for the small ordered string sets
// below. Select lists and FROM clauses hold a handful of names, where a
// linear scan over the output slice beats allocating a map per statement.
func containsStr(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}

func selectColumns(sel *sqlast.SelectStatement) []string {
	var out []string
	add := func(name string) {
		if name != "" && !containsStr(out, name) {
			out = append(out, name)
		}
	}
	for _, it := range sel.Items {
		sqlast.Walk(it.Expr, func(n sqlast.Node) bool {
			if c, ok := n.(*sqlast.ColumnRef); ok {
				if c.Star {
					add("*")
				} else {
					add(canon(c.Name))
				}
			}
			// Do not descend into subqueries in the select list: their
			// output columns are not this query's output columns.
			_, isSub := n.(*sqlast.SubqueryExpr)
			return !isSub
		})
	}
	return out
}

func tableNames(sel *sqlast.SelectStatement) []string {
	var out []string
	for _, t := range sqlast.Tables(sel) {
		name := canon(t.Name)
		if !containsStr(out, name) {
			out = append(out, name)
		}
	}
	return out
}
