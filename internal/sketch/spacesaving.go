package sketch

import "sort"

// DefaultTopKCapacity is the SpaceSaving slot count when the config leaves
// it zero. The toplist surface serves "top k" for k well below this, and the
// classic guarantee says any template with frequency above observed/capacity
// is guaranteed to be tracked.
const DefaultTopKCapacity = 128

// HeavyHitter is one tracked template: Count is an upper bound on the true
// occurrence count and Err bounds the overestimation, so the true count lies
// in [Count-Err, Count].
type HeavyHitter struct {
	Fingerprint uint64 `json:"fingerprint"`
	Skeleton    string `json:"skeleton"`
	Count       int64  `json:"count"`
	Err         int64  `json:"err"`
}

type ssItem struct {
	skeleton string
	count    int64
	err      int64
}

// SpaceSaving is a bounded top-k heavy-hitter tracker over template
// fingerprints (Metwally et al.'s stream-summary, map-backed). When a new
// template arrives at capacity it replaces the current minimum, inheriting
// its count as both starting count and error bound — the invariant that
// keeps every count an overestimate by at most Err.
type SpaceSaving struct {
	capacity  int
	items     map[uint64]*ssItem
	evictions int64
	observed  int64
}

// NewSpaceSaving returns a tracker with the given slot capacity (0 selects
// DefaultTopKCapacity).
func NewSpaceSaving(capacity int) *SpaceSaving {
	if capacity <= 0 {
		capacity = DefaultTopKCapacity
	}
	return &SpaceSaving{capacity: capacity, items: make(map[uint64]*ssItem, capacity)}
}

// Capacity returns the slot count.
func (s *SpaceSaving) Capacity() int { return s.capacity }

// Len returns the number of templates currently tracked.
func (s *SpaceSaving) Len() int { return len(s.items) }

// Evictions counts min-replacements — the sketch_topk_evictions_total
// signal. Zero means every distinct template fit and all counts are exact.
func (s *SpaceSaving) Evictions() int64 { return s.evictions }

// Observed counts observations offered, tracked or not.
func (s *SpaceSaving) Observed() int64 { return s.observed }

// Observe counts one occurrence of a template, reporting whether a tracked
// minimum was evicted to admit it.
func (s *SpaceSaving) Observe(fp uint64, skeleton string) (evicted bool) {
	s.observed++
	if it, ok := s.items[fp]; ok {
		it.count++
		return false
	}
	if len(s.items) < s.capacity {
		s.items[fp] = &ssItem{skeleton: skeleton, count: 1}
		return false
	}
	// Replace the minimum-count victim; ties break on the smallest
	// fingerprint so eviction order — and therefore state — is deterministic
	// for any map iteration order.
	var victimFP uint64
	var victim *ssItem
	for ifp, it := range s.items {
		if victim == nil || it.count < victim.count || (it.count == victim.count && ifp < victimFP) {
			victimFP, victim = ifp, it
		}
	}
	min := victim.count
	delete(s.items, victimFP)
	s.items[fp] = &ssItem{skeleton: skeleton, count: min + 1, err: min}
	s.evictions++
	return true
}

// Top returns the k highest-count entries (k ≤ 0 or k > Len returns all),
// sorted by descending count with fingerprint-ascending ties.
func (s *SpaceSaving) Top(k int) []HeavyHitter {
	out := make([]HeavyHitter, 0, len(s.items))
	for fp, it := range s.items {
		out = append(out, HeavyHitter{Fingerprint: fp, Skeleton: it.skeleton, Count: it.count, Err: it.err})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Fingerprint < out[j].Fingerprint
	})
	if k > 0 && k < len(out) {
		out = out[:k]
	}
	return out
}

// Merge folds another tracker into s following the mergeable-summaries
// construction (Agarwal et al.): a template absent from one side gets that
// side's saturation floor — its minimum count if it was full, zero if not
// (a non-full tracker has seen every one of its distinct templates) — added
// to both count and error, preserving the [Count-Err, Count] containment of
// the true combined count. The union is then cut back to capacity keeping
// the largest counts (fingerprint-ascending ties), which is deterministic
// for any shard visit order.
func (s *SpaceSaving) Merge(o *SpaceSaving) {
	if o == nil {
		return
	}
	sFloor := s.saturationFloor()
	oFloor := o.saturationFloor()
	merged := make(map[uint64]*ssItem, len(s.items)+len(o.items))
	for fp, it := range s.items {
		m := &ssItem{skeleton: it.skeleton, count: it.count, err: it.err}
		if ot, ok := o.items[fp]; ok {
			m.count += ot.count
			m.err += ot.err
		} else {
			m.count += oFloor
			m.err += oFloor
		}
		merged[fp] = m
	}
	for fp, ot := range o.items {
		if _, ok := s.items[fp]; ok {
			continue
		}
		merged[fp] = &ssItem{skeleton: ot.skeleton, count: ot.count + sFloor, err: ot.err + sFloor}
	}
	if len(merged) > s.capacity {
		fps := make([]uint64, 0, len(merged))
		for fp := range merged {
			fps = append(fps, fp)
		}
		sort.Slice(fps, func(i, j int) bool {
			a, b := merged[fps[i]], merged[fps[j]]
			if a.count != b.count {
				return a.count > b.count
			}
			return fps[i] < fps[j]
		})
		for _, fp := range fps[s.capacity:] {
			delete(merged, fp)
		}
	}
	s.items = merged
	s.evictions += o.evictions
	s.observed += o.observed
}

// saturationFloor is the upper bound on the count of any template NOT in the
// tracker: the minimum tracked count once full, zero before.
func (s *SpaceSaving) saturationFloor() int64 {
	if len(s.items) < s.capacity {
		return 0
	}
	var min int64 = -1
	for _, it := range s.items {
		if min < 0 || it.count < min {
			min = it.count
		}
	}
	if min < 0 {
		return 0
	}
	return min
}

// Clone returns a deep copy.
func (s *SpaceSaving) Clone() *SpaceSaving {
	c := &SpaceSaving{
		capacity:  s.capacity,
		items:     make(map[uint64]*ssItem, len(s.items)),
		evictions: s.evictions,
		observed:  s.observed,
	}
	for fp, it := range s.items {
		cp := *it
		c.items[fp] = &cp
	}
	return c
}

// TopSnapshot serializes the tracker; entries are fingerprint-sorted so the
// encoding is deterministic.
type TopSnapshot struct {
	Capacity  int           `json:"capacity"`
	Evictions int64         `json:"evictions"`
	Observed  int64         `json:"observed"`
	Entries   []HeavyHitter `json:"entries,omitempty"`
}

// Snapshot serializes the tracker.
func (s *SpaceSaving) Snapshot() TopSnapshot {
	snap := TopSnapshot{Capacity: s.capacity, Evictions: s.evictions, Observed: s.observed}
	for fp, it := range s.items {
		snap.Entries = append(snap.Entries, HeavyHitter{
			Fingerprint: fp, Skeleton: it.skeleton, Count: it.count, Err: it.err,
		})
	}
	sort.Slice(snap.Entries, func(i, j int) bool { return snap.Entries[i].Fingerprint < snap.Entries[j].Fingerprint })
	return snap
}

// restoreSpaceSaving rebuilds a tracker from its snapshot.
func restoreSpaceSaving(snap TopSnapshot) (*SpaceSaving, error) {
	s := NewSpaceSaving(snap.Capacity)
	s.evictions = snap.Evictions
	s.observed = snap.Observed
	for _, e := range snap.Entries {
		s.items[e.Fingerprint] = &ssItem{skeleton: e.Skeleton, count: e.Count, err: e.Err}
	}
	return s, nil
}
