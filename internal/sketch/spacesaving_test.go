package sketch

import (
	"encoding/json"
	"fmt"
	"reflect"
	"testing"
)

// zipfFeed deterministically emits template fp i with weight ~ 1/(i+1),
// giving a few heavy hitters over a long tail without math/rand.
func zipfFeed(n, templates int, f func(fp uint64)) {
	for i := 0; i < n; i++ {
		// A cheap deterministic spread: pick the smallest j whose cumulative
		// harmonic share covers the rotating index.
		fp := uint64(i % templates)
		if i%3 != 0 {
			fp = uint64(i % (templates / 8)) // 1/8 of templates get 2/3 of traffic
		}
		f(fp)
	}
}

// TestSpaceSavingExactUnderCapacity: while distinct templates fit, counts are
// exact with zero error.
func TestSpaceSavingExactUnderCapacity(t *testing.T) {
	s := NewSpaceSaving(64)
	for i := 0; i < 1000; i++ {
		s.Observe(uint64(i%10), fmt.Sprintf("T%d", i%10))
	}
	if s.Evictions() != 0 {
		t.Fatalf("evictions = %d, want 0 under capacity", s.Evictions())
	}
	for _, hh := range s.Top(0) {
		if hh.Count != 100 || hh.Err != 0 {
			t.Fatalf("template %d: count=%d err=%d, want exact 100/0", hh.Fingerprint, hh.Count, hh.Err)
		}
	}
	if s.Observed() != 1000 {
		t.Fatalf("observed = %d, want 1000", s.Observed())
	}
}

// TestSpaceSavingOverestimateGuarantee: under eviction pressure every tracked
// count must still bracket the true count: trueCount ≤ Count ≤ trueCount+Err,
// and every template with true frequency > observed/capacity is tracked.
func TestSpaceSavingOverestimateGuarantee(t *testing.T) {
	const capacity, n, templates = 32, 50_000, 256
	s := NewSpaceSaving(capacity)
	truth := map[uint64]int64{}
	zipfFeed(n, templates, func(fp uint64) {
		truth[fp]++
		s.Observe(fp, "skel")
	})
	if s.Evictions() == 0 {
		t.Fatal("feed did not pressure the tracker; test is vacuous")
	}
	top := s.Top(0)
	if len(top) != capacity {
		t.Fatalf("tracking %d entries, want full capacity %d", len(top), capacity)
	}
	tracked := map[uint64]bool{}
	for _, hh := range top {
		tracked[hh.Fingerprint] = true
		tc := truth[hh.Fingerprint]
		if hh.Count < tc {
			t.Errorf("fp %d: count %d underestimates true %d", hh.Fingerprint, hh.Count, tc)
		}
		if hh.Count-hh.Err > tc {
			t.Errorf("fp %d: guaranteed floor %d exceeds true %d", hh.Fingerprint, hh.Count-hh.Err, tc)
		}
	}
	threshold := int64(n / capacity)
	for fp, tc := range truth {
		if tc > threshold && !tracked[fp] {
			t.Errorf("fp %d with true count %d > %d missing from the summary", fp, tc, threshold)
		}
	}
}

// TestSpaceSavingMergeDeterministicAndSound: merging shard partitions in a
// fixed order must be reproducible, and EVERY merge order must preserve the
// bracket guarantee against the combined truth and keep every heavy hitter.
// (Pairwise mergeable-summary merges truncate between steps, so different
// orders may legitimately differ in the tail — the sharded engine always
// merges in shard-index order.)
func TestSpaceSavingMergeDeterministicAndSound(t *testing.T) {
	const capacity, n, templates = 24, 30_000, 200
	parts := []*SpaceSaving{NewSpaceSaving(capacity), NewSpaceSaving(capacity), NewSpaceSaving(capacity)}
	truth := map[uint64]int64{}
	i := 0
	zipfFeed(n, templates, func(fp uint64) {
		truth[fp]++
		parts[i%len(parts)].Observe(fp, "skel")
		i++
	})

	mergeOrder := func(order []int) []HeavyHitter {
		m := parts[order[0]].Clone()
		for _, j := range order[1:] {
			m.Merge(parts[j].Clone())
		}
		return m.Top(0)
	}
	if !reflect.DeepEqual(mergeOrder([]int{0, 1, 2}), mergeOrder([]int{0, 1, 2})) {
		t.Fatal("repeating the same merge order gave different results")
	}
	threshold := int64(n / capacity)
	for _, order := range [][]int{{0, 1, 2}, {2, 0, 1}, {1, 2, 0}} {
		top := mergeOrder(order)
		tracked := map[uint64]bool{}
		for _, hh := range top {
			tracked[hh.Fingerprint] = true
			tc := truth[hh.Fingerprint]
			if hh.Count < tc {
				t.Errorf("order %v fp %d: count %d underestimates true %d", order, hh.Fingerprint, hh.Count, tc)
			}
			if hh.Count-hh.Err > tc {
				t.Errorf("order %v fp %d: floor %d exceeds true %d", order, hh.Fingerprint, hh.Count-hh.Err, tc)
			}
		}
		// Merged summaries keep the (2×) saturation slack of a two-step merge.
		for fp, tc := range truth {
			if tc > 2*threshold && !tracked[fp] {
				t.Errorf("order %v: fp %d with true count %d > %d missing after merge", order, fp, tc, 2*threshold)
			}
		}
	}
}

// TestSpaceSavingMergeNotFull: a non-full side contributes no saturation
// floor — merging two exact trackers stays exact.
func TestSpaceSavingMergeNotFull(t *testing.T) {
	a, b := NewSpaceSaving(64), NewSpaceSaving(64)
	for i := 0; i < 300; i++ {
		a.Observe(uint64(i%8), "s")
		b.Observe(uint64(i%12), "s")
	}
	a.Merge(b)
	for _, hh := range a.Top(0) {
		if hh.Err != 0 {
			t.Fatalf("fp %d gained error %d from a non-saturated merge", hh.Fingerprint, hh.Err)
		}
	}
}

// TestSpaceSavingTopOrderAndK pins the response ordering contract.
func TestSpaceSavingTopOrderAndK(t *testing.T) {
	s := NewSpaceSaving(16)
	for fp, c := range map[uint64]int{5: 3, 9: 7, 2: 7, 11: 1} {
		for i := 0; i < c; i++ {
			s.Observe(fp, "s")
		}
	}
	top := s.Top(3)
	if len(top) != 3 {
		t.Fatalf("Top(3) returned %d", len(top))
	}
	// Count desc, fingerprint asc on ties: 2(7), 9(7), 5(3).
	want := []uint64{2, 9, 5}
	for i, fp := range want {
		if top[i].Fingerprint != fp {
			t.Fatalf("Top order = %+v, want fingerprints %v", top, want)
		}
	}
}

// TestSpaceSavingSnapshotRoundTrip: snapshot → JSON → restore → re-snapshot
// is the identity.
func TestSpaceSavingSnapshotRoundTrip(t *testing.T) {
	s := NewSpaceSaving(8)
	zipfFeed(5_000, 64, func(fp uint64) { s.Observe(fp, fmt.Sprintf("T%d", fp)) })
	blob, err := json.Marshal(s.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var snap TopSnapshot
	if err := json.Unmarshal(blob, &snap); err != nil {
		t.Fatal(err)
	}
	got, err := restoreSpaceSaving(snap)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Snapshot(), s.Snapshot()) {
		t.Fatal("re-snapshot differs")
	}
	if got.Evictions() != s.Evictions() || got.Observed() != s.Observed() {
		t.Fatal("counters lost in round trip")
	}
}
