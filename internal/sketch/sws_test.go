package sketch

import (
	"encoding/json"
	"fmt"
	"reflect"
	"testing"
	"time"

	"sqlclean/internal/pattern"
)

// TestEvidenceUserCapExactness is the core cap argument: for any threshold
// below the cap, classification by |Users| equals classification by the true
// popularity, under any split/merge order.
func TestEvidenceUserCapExactness(t *testing.T) {
	const userCap = 8
	users := make([]string, 40)
	for i := range users {
		users[i] = fmt.Sprintf("user-%02d", (i*17)%40) // shuffled-ish, with repeats
	}
	for truePop := 1; truePop <= 20; truePop++ {
		// One evidence fed directly, and two fed disjoint halves then merged.
		whole := newEvidence()
		a, b := newEvidence(), newEvidence()
		seen := map[string]bool{}
		i := 0
		for len(seen) < truePop {
			u := fmt.Sprintf("user-%02d", i)
			i++
			if seen[u] {
				continue
			}
			seen[u] = true
			whole.observe(u, 1, userCap)
			if len(seen)%2 == 0 {
				a.observe(u, 1, userCap)
			} else {
				b.observe(u, 1, userCap)
			}
		}
		a.merge(b, userCap)
		wantLen := truePop
		if wantLen > userCap {
			wantLen = userCap
		}
		if len(whole.Users) != wantLen || len(a.Users) != wantLen {
			t.Fatalf("pop=%d: |whole|=%d |merged|=%d, want %d", truePop, len(whole.Users), len(a.Users), wantLen)
		}
		if !reflect.DeepEqual(whole.Users, a.Users) {
			t.Fatalf("pop=%d: merged kept %v, whole kept %v", truePop, a.Users, whole.Users)
		}
		for maxPop := 1; maxPop < userCap; maxPop++ {
			if (len(a.Users) <= maxPop) != (truePop <= maxPop) {
				t.Fatalf("pop=%d maxPop=%d: capped comparison diverged from truth", truePop, maxPop)
			}
		}
	}
}

// TestSWSWindowFlushInvariance: the classification must not depend on how
// evidence was windowed — tight windows with many flushes equal one window.
func TestSWSWindowFlushInvariance(t *testing.T) {
	base := time.Date(2003, 6, 1, 0, 0, 0, 0, time.UTC).UnixNano()
	hour := int64(time.Hour)

	feed := func(a *SWSAccumulator) {
		for i := 0; i < 2000; i++ {
			ts := base + int64(i)*hour/4 // spans ~500 hours
			fp := uint64(i % 7)
			user := fmt.Sprintf("u%d", i%(int(fp)+1)) // template fp has fp+1 users
			a.Observe(ts, fp, user, uint64(i))        // all-distinct WHERE hashes
		}
		// A frequent low-popularity, low-disjointness template.
		for i := 0; i < 500; i++ {
			a.Observe(base+int64(i)*hour, 99, "bot", 42)
		}
	}

	wide := NewSWSAccumulator(1000000*time.Hour, 4, 0) // everything in one window
	tight := NewSWSAccumulator(time.Hour, 2, 0)        // constant flushing
	feed(wide)
	feed(tight)
	if tight.Flushes() == 0 {
		t.Fatal("tight accumulator never flushed; invariance test is vacuous")
	}
	if wide.Flushes() != 0 {
		t.Fatalf("wide accumulator flushed %d times", wide.Flushes())
	}

	total := 2500
	for _, opt := range []pattern.SWSOptions{
		pattern.DefaultSWSOptions(),
		{FrequencyPct: 0.1, MaxUserPopularity: 4, MinDisjointRatio: 0.9},
		{FrequencyPct: 10, MaxUserPopularity: 1},
	} {
		a := wide.Classify(total, opt)
		b := tight.Classify(total, opt)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("opt %+v: windowing changed the classification: %v vs %v", opt, a, b)
		}
	}
	ev := tight.MergedEvidence()
	if ev[99].Freq != 500 || len(ev[99].WCs) != 1 || len(ev[99].Users) != 1 {
		t.Errorf("template 99 evidence = %+v, want freq 500, 1 user, 1 distinct WHERE", ev[99])
	}
}

// TestSWSMergeEqualsSequential: shard-split evidence merged in any order
// equals one accumulator that saw the whole stream.
func TestSWSMergeEqualsSequential(t *testing.T) {
	base := time.Date(2003, 6, 1, 0, 0, 0, 0, time.UTC).UnixNano()
	whole := NewSWSAccumulator(time.Hour, 6, 0)
	parts := []*SWSAccumulator{
		NewSWSAccumulator(time.Hour, 6, 0),
		NewSWSAccumulator(time.Hour, 6, 0),
		NewSWSAccumulator(time.Hour, 6, 0),
	}
	for i := 0; i < 3000; i++ {
		ts := base + int64(i)*int64(time.Minute)
		fp := uint64(i % 11)
		user := fmt.Sprintf("user-%d", i%5)
		wc := uint64(i % 97)
		whole.Observe(ts, fp, user, wc)
		// Users partition across shards like the sharded engine routes them.
		parts[(i%5)%3].Observe(ts, fp, user, wc)
	}
	merged := parts[2].Clone()
	merged.Merge(parts[0])
	merged.Merge(parts[1])
	if !reflect.DeepEqual(merged.MergedEvidence(), whole.MergedEvidence()) {
		t.Fatal("merged shard evidence differs from the sequential accumulator")
	}
	for _, total := range []int{3000, 100000} {
		opt := pattern.SWSOptions{FrequencyPct: 0.1, MaxUserPopularity: 8, MinDisjointRatio: 0.1}
		if !reflect.DeepEqual(merged.Classify(total, opt), whole.Classify(total, opt)) {
			t.Fatalf("classification diverged after merge (total=%d)", total)
		}
	}
}

// TestSWSSnapshotRoundTrip: snapshot → JSON → restore → re-snapshot is the
// identity, including window placement and flush counters.
func TestSWSSnapshotRoundTrip(t *testing.T) {
	base := time.Date(2003, 6, 1, 0, 0, 0, 0, time.UTC).UnixNano()
	a := NewSWSAccumulator(time.Hour, 3, 5)
	for i := 0; i < 1000; i++ {
		a.Observe(base+int64(i)*int64(7*time.Minute), uint64(i%13), fmt.Sprintf("u%d", i%9), uint64(i%31))
	}
	if a.Flushes() == 0 || a.Windows() != 3 {
		t.Fatalf("windows=%d flushes=%d; want a flushed, full accumulator", a.Windows(), a.Flushes())
	}
	blob, err := json.Marshal(a.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var snap SWSSnapshot
	if err := json.Unmarshal(blob, &snap); err != nil {
		t.Fatal(err)
	}
	got, err := restoreSWS(snap)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Snapshot(), a.Snapshot()) {
		t.Fatal("re-snapshot differs")
	}
	if !reflect.DeepEqual(got.MergedEvidence(), a.MergedEvidence()) {
		t.Fatal("restored evidence differs")
	}
}

// TestSketchesBundleRoundTrip covers the versioned bundle: snapshot, restore,
// version guard.
func TestSketchesBundleRoundTrip(t *testing.T) {
	sk := New(Config{HLLPrecision: 10, TopK: 16, SWSWindow: time.Hour})
	base := time.Date(2003, 6, 1, 0, 0, 0, 0, time.UTC).UnixNano()
	for i := 0; i < 2000; i++ {
		u := fmt.Sprintf("user-%d", i%300)
		sk.HLL.AddString(u)
		sk.Top.Observe(uint64(i%40), "skel")
		sk.SWS.Observe(base+int64(i)*int64(time.Minute), uint64(i%40), u, uint64(i))
	}
	blob, err := json.Marshal(sk.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(blob, &snap); err != nil {
		t.Fatal(err)
	}
	got, err := Restore(&snap)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Snapshot(), sk.Snapshot()) {
		t.Fatal("bundle re-snapshot differs")
	}
	if _, err := Restore(&Snapshot{Version: SnapshotVersion + 1}); err == nil {
		t.Error("Restore accepted a future snapshot version")
	}
	if _, err := Restore(&Snapshot{Version: 0}); err == nil {
		t.Error("Restore accepted version 0")
	}
	if New(Config{Disabled: true}) != nil {
		t.Error("Disabled config must yield a nil sketch set")
	}
}
