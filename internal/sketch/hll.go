// Package sketch holds the mergeable summaries behind the daemon's
// approximate streaming analytics: a dense HyperLogLog distinct counter
// (distinct identities), a SpaceSaving top-k heavy-hitter tracker (template
// toplist) and a windowed SWS evidence accumulator whose drain-time
// classification equals the batch pipeline's bit for bit. All three share
// the properties the sharded stream needs: bounded memory, deterministic
// state (no process-random seeds — snapshots restore across processes),
// and an order-free Merge for the cross-shard global view.
package sketch

import (
	"fmt"
	"math"
	"math/bits"
)

// hll precision limits: below 4 the estimator's constants are undefined,
// above 18 the registers (256 KiB) outweigh any accuracy gain for this
// workload.
const (
	minPrecision = 4
	maxPrecision = 18
	// DefaultPrecision gives 2^14 = 16384 registers: 16 KiB of state and a
	// standard error of 1.04/√m ≈ 0.81 %, comfortably inside the ±2 %
	// acceptance bound at 100k identities.
	DefaultPrecision = 14
)

// HLL is a dense HyperLogLog counter over 2^p six-bit ranks (stored one per
// byte — trading 25 % of the footprint for branch-free updates). The hash is
// fixed (FNV-1a finalized with splitmix64), so two processes — or two shards
// of one engine — observing the same identities produce the same registers,
// which is what makes Merge and snapshot/restore exact.
type HLL struct {
	p    uint8
	regs []uint8
}

// NewHLL returns a dense HLL with 2^precision registers; precision 0 selects
// DefaultPrecision, other values are clamped to [4, 18].
func NewHLL(precision int) *HLL {
	if precision == 0 {
		precision = DefaultPrecision
	}
	if precision < minPrecision {
		precision = minPrecision
	}
	if precision > maxPrecision {
		precision = maxPrecision
	}
	return &HLL{p: uint8(precision), regs: make([]uint8, 1<<precision)}
}

// Precision returns p; the register count is 1<<p.
func (h *HLL) Precision() int { return int(h.p) }

// Registers returns the register count m = 2^p.
func (h *HLL) Registers() int { return len(h.regs) }

// Occupied counts non-zero registers — the occupancy gauge surfaced in
// sketch_* metrics. Occupancy saturating toward m signals the estimator has
// left its linear-counting range.
func (h *HLL) Occupied() int {
	n := 0
	for _, r := range h.regs {
		if r != 0 {
			n++
		}
	}
	return n
}

// hashIdentity hashes one identity string. FNV-1a alone has poor avalanche
// in the low bits (sequential inputs land in few registers); the splitmix64
// finalizer fixes the bit mixing without pulling in a new dependency or a
// per-process seed.
func hashIdentity(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// AddString observes one identity. Adding the same string twice is a no-op
// by construction, which is why journal replays cannot inflate the estimate.
func (h *HLL) AddString(s string) { h.AddHash(hashIdentity(s)) }

// AddHash observes a pre-hashed identity: the top p bits pick the register,
// the rank is the leading-zero run of the remaining bits plus one.
func (h *HLL) AddHash(x uint64) {
	idx := x >> (64 - h.p)
	w := x<<h.p | 1<<(h.p-1) // sentinel caps the rank at 64-p+1
	rank := uint8(bits.LeadingZeros64(w)) + 1
	if rank > h.regs[idx] {
		h.regs[idx] = rank
	}
}

// alpha is the bias-correction constant α_m of the HLL estimator.
func alpha(m int) float64 {
	switch m {
	case 16:
		return 0.673
	case 32:
		return 0.697
	case 64:
		return 0.709
	}
	return 0.7213 / (1 + 1.079/float64(m))
}

// Estimate returns the distinct count estimate: the raw harmonic-mean
// estimator with the small-range linear-counting correction (E ≤ 2.5m with
// empty registers). No large-range correction is needed — the 64-bit hash
// space makes collisions negligible at any realistic cardinality.
func (h *HLL) Estimate() float64 {
	m := float64(len(h.regs))
	var sum float64
	zeros := 0
	for _, r := range h.regs {
		sum += 1 / float64(uint64(1)<<r)
		if r == 0 {
			zeros++
		}
	}
	e := alpha(len(h.regs)) * m * m / sum
	if e <= 2.5*m && zeros > 0 {
		e = m * math.Log(m/float64(zeros))
	}
	return e
}

// Count returns the estimate rounded to an integer.
func (h *HLL) Count() int64 { return int64(math.Round(h.Estimate())) }

// Merge folds another HLL into h (per-register max). Merging the union of
// two streams equals observing their concatenation in any order.
func (h *HLL) Merge(o *HLL) error {
	if o == nil {
		return nil
	}
	if o.p != h.p {
		return fmt.Errorf("sketch: cannot merge HLL precision %d into %d", o.p, h.p)
	}
	for i, r := range o.regs {
		if r > h.regs[i] {
			h.regs[i] = r
		}
	}
	return nil
}

// Clone returns a deep copy.
func (h *HLL) Clone() *HLL {
	c := &HLL{p: h.p, regs: make([]uint8, len(h.regs))}
	copy(c.regs, h.regs)
	return c
}

// HLLSnapshot is the serialized register file. Registers marshal as base64
// through encoding/json's []byte handling.
type HLLSnapshot struct {
	Precision int    `json:"precision"`
	Registers []byte `json:"registers"`
}

// Snapshot serializes the counter.
func (h *HLL) Snapshot() HLLSnapshot {
	regs := make([]byte, len(h.regs))
	copy(regs, h.regs)
	return HLLSnapshot{Precision: int(h.p), Registers: regs}
}

// restoreHLL rebuilds a counter from its snapshot.
func restoreHLL(s HLLSnapshot) (*HLL, error) {
	if s.Precision < minPrecision || s.Precision > maxPrecision {
		return nil, fmt.Errorf("sketch: snapshot HLL precision %d out of range", s.Precision)
	}
	if len(s.Registers) != 1<<s.Precision {
		return nil, fmt.Errorf("sketch: snapshot has %d HLL registers, precision %d wants %d",
			len(s.Registers), s.Precision, 1<<s.Precision)
	}
	h := &HLL{p: uint8(s.Precision), regs: make([]uint8, len(s.Registers))}
	copy(h.regs, s.Registers)
	return h, nil
}
