package sketch

import (
	"fmt"
	"time"
)

// Config sizes the sketch set. The zero value enables all three sketches
// with the package defaults; Disabled opts the whole layer out.
type Config struct {
	// Disabled turns the sketch layer off entirely (New returns nil).
	Disabled bool
	// HLLPrecision is the distinct-identity counter's p (2^p registers);
	// 0 selects DefaultPrecision (14).
	HLLPrecision int
	// TopK is the SpaceSaving slot capacity; 0 selects DefaultTopKCapacity.
	TopK int
	// SWSWindow is the event-time window width for SWS evidence; 0 selects
	// DefaultSWSWindow.
	SWSWindow time.Duration
	// SWSMaxWindows bounds the live window list; 0 selects
	// DefaultSWSMaxWindows.
	SWSMaxWindows int
	// SWSUserCap bounds each template's distinct-user evidence set; 0
	// selects DefaultSWSUserCap. Classification is exact for
	// MaxUserPopularity thresholds strictly below the cap.
	SWSUserCap int
}

// Sketches bundles the three summaries one stream processor maintains.
type Sketches struct {
	HLL *HLL
	Top *SpaceSaving
	SWS *SWSAccumulator
}

// New builds the sketch set, or nil when the config disables it — callers
// nil-check once and skip the whole layer.
func New(cfg Config) *Sketches {
	if cfg.Disabled {
		return nil
	}
	return &Sketches{
		HLL: NewHLL(cfg.HLLPrecision),
		Top: NewSpaceSaving(cfg.TopK),
		SWS: NewSWSAccumulator(cfg.SWSWindow, cfg.SWSMaxWindows, cfg.SWSUserCap),
	}
}

// Merge folds another sketch set into s — the cross-shard global view. Both
// sides must agree on the HLL precision (always true for shards built from
// one config).
func (s *Sketches) Merge(o *Sketches) error {
	if o == nil {
		return nil
	}
	if err := s.HLL.Merge(o.HLL); err != nil {
		return err
	}
	s.Top.Merge(o.Top)
	s.SWS.Merge(o.SWS)
	return nil
}

// Clone returns a deep copy.
func (s *Sketches) Clone() *Sketches {
	return &Sketches{HLL: s.HLL.Clone(), Top: s.Top.Clone(), SWS: s.SWS.Clone()}
}

// SnapshotVersion is the serialization version of Snapshot. Bump it when the
// encoding changes shape incompatibly; Restore refuses versions it does not
// know instead of silently misreading state.
const SnapshotVersion = 1

// Snapshot is the versioned serialized form of one sketch set, embedded in
// the stream's processor snapshot. Snapshots written before the sketch layer
// existed simply lack the field; the stream restores fresh sketches then.
type Snapshot struct {
	Version int         `json:"version"`
	HLL     HLLSnapshot `json:"hll"`
	Top     TopSnapshot `json:"top"`
	SWS     SWSSnapshot `json:"sws"`
}

// Snapshot serializes the sketch set (deterministic: all entry lists are
// sorted, the register file is positional).
func (s *Sketches) Snapshot() *Snapshot {
	return &Snapshot{
		Version: SnapshotVersion,
		HLL:     s.HLL.Snapshot(),
		Top:     s.Top.Snapshot(),
		SWS:     s.SWS.Snapshot(),
	}
}

// Restore rebuilds a sketch set from its snapshot. The snapshot's own
// parameters (precision, capacity, window) are authoritative — a daemon
// restarted with different sketch flags keeps the accumulated state rather
// than discarding it; new parameters apply from the next fresh start.
func Restore(snap *Snapshot) (*Sketches, error) {
	if snap.Version <= 0 || snap.Version > SnapshotVersion {
		return nil, fmt.Errorf("sketch: snapshot version %d not supported (this build reads ≤ %d)",
			snap.Version, SnapshotVersion)
	}
	hll, err := restoreHLL(snap.HLL)
	if err != nil {
		return nil, err
	}
	top, err := restoreSpaceSaving(snap.Top)
	if err != nil {
		return nil, err
	}
	sws, err := restoreSWS(snap.SWS)
	if err != nil {
		return nil, err
	}
	return &Sketches{HLL: hll, Top: top, SWS: sws}, nil
}
