package sketch

import (
	"sort"
	"time"

	"sqlclean/internal/pattern"
)

// SWS (sliding-window-search) classification needs three global per-template
// statistics the stream otherwise discards at session close: frequency,
// user popularity and the distinct-WHERE count. The accumulator keeps exactly
// that evidence, bucketed into event-time windows whose overflow folds into a
// base aggregate, so memory holds O(windows · templates) summaries while the
// drain-time classification is provably the batch answer:
//
//   - Frequency and the distinct-WHERE hash set are exact and additive
//     (sessions partition the deduped SELECT stream, windows partition the
//     sessions, shards partition the users — every occurrence is folded
//     exactly once, wherever it lands).
//   - The distinct-user set is capped at UserCap, keeping the
//     lexicographically smallest users. The smallest-k of a union equals the
//     smallest-k of the parts' smallest-k sets, so after any merge order
//     |Users| = min(true popularity, UserCap); for any threshold
//     MaxUserPopularity < UserCap the comparison |Users| ≤ threshold is
//     therefore exact even though the set itself is truncated.
//
// Classification applies pattern.IsSWS to this evidence, so equality with
// the batch pipeline is by construction, not by reimplementation.

const (
	// DefaultSWSWindow buckets session evidence into one-hour event-time
	// windows.
	DefaultSWSWindow = time.Hour
	// DefaultSWSMaxWindows bounds the live window list; the oldest window
	// flushes into the base aggregate when a newer one would exceed it.
	DefaultSWSMaxWindows = 8
	// DefaultSWSUserCap bounds each template's distinct-user set. The
	// classification is exact for every MaxUserPopularity below this; the
	// paper's Table 8 sweeps popularity 1..16, so 32 covers it with margin.
	DefaultSWSUserCap = 32
)

// Evidence is one template's accumulated SWS inputs.
type Evidence struct {
	// Freq is the exact number of (deduplicated SELECT) occurrences.
	Freq int
	// Users holds the lexicographically smallest distinct users, sorted,
	// capped at the accumulator's UserCap.
	Users []string
	// WCs is the exact set of distinct WHERE-clause hashes
	// (pattern.HashWhere), matching the batch miner's DistinctWhere.
	WCs map[uint64]struct{}
}

func newEvidence() *Evidence { return &Evidence{WCs: map[uint64]struct{}{}} }

// observe folds one occurrence in.
func (ev *Evidence) observe(user string, wcHash uint64, userCap int) {
	ev.Freq++
	ev.addUser(user, userCap)
	ev.WCs[wcHash] = struct{}{}
}

// addUser inserts user into the sorted capped set.
func (ev *Evidence) addUser(user string, userCap int) {
	i := sort.SearchStrings(ev.Users, user)
	if i < len(ev.Users) && ev.Users[i] == user {
		return
	}
	if len(ev.Users) >= userCap {
		if i >= userCap {
			return // larger than everything kept
		}
		ev.Users = ev.Users[:userCap-1] // drop the largest to make room
	}
	ev.Users = append(ev.Users, "")
	copy(ev.Users[i+1:], ev.Users[i:])
	ev.Users[i] = user
}

// merge folds other into ev (set union, re-capped).
func (ev *Evidence) merge(other *Evidence, userCap int) {
	ev.Freq += other.Freq
	for _, u := range other.Users {
		ev.addUser(u, userCap)
	}
	for wc := range other.WCs {
		ev.WCs[wc] = struct{}{}
	}
}

func (ev *Evidence) clone() *Evidence {
	c := &Evidence{Freq: ev.Freq, Users: append([]string(nil), ev.Users...), WCs: make(map[uint64]struct{}, len(ev.WCs))}
	for wc := range ev.WCs {
		c.WCs[wc] = struct{}{}
	}
	return c
}

type swsWindow struct {
	startNS int64
	byFP    map[uint64]*Evidence
}

// SWSAccumulator gathers per-template session evidence into event-time
// windows over a base aggregate. Not safe for concurrent use (the owning
// stream processor serializes access, like all its state).
type SWSAccumulator struct {
	windowNS   int64
	maxWindows int
	userCap    int
	base       map[uint64]*Evidence
	windows    []*swsWindow // startNS-ascending
	flushes    int64
}

// NewSWSAccumulator returns an accumulator; zero arguments select the
// package defaults.
func NewSWSAccumulator(window time.Duration, maxWindows, userCap int) *SWSAccumulator {
	if window <= 0 {
		window = DefaultSWSWindow
	}
	if maxWindows <= 0 {
		maxWindows = DefaultSWSMaxWindows
	}
	if userCap <= 0 {
		userCap = DefaultSWSUserCap
	}
	return &SWSAccumulator{
		windowNS:   int64(window),
		maxWindows: maxWindows,
		userCap:    userCap,
		base:       map[uint64]*Evidence{},
	}
}

// Window returns the window width.
func (a *SWSAccumulator) Window() time.Duration { return time.Duration(a.windowNS) }

// UserCap returns the per-template distinct-user cap; classification is
// exact for MaxUserPopularity thresholds strictly below it.
func (a *SWSAccumulator) UserCap() int { return a.userCap }

// Windows returns the number of live (unflushed) windows.
func (a *SWSAccumulator) Windows() int { return len(a.windows) }

// Flushes counts windows folded into the base aggregate — the
// sketch_sws_window_flushes_total signal.
func (a *SWSAccumulator) Flushes() int64 { return a.flushes }

// windowStart floors ts to its window boundary (toward -inf, so pre-epoch
// event times bucket consistently too).
func (a *SWSAccumulator) windowStart(tsNS int64) int64 {
	r := tsNS % a.windowNS
	if r < 0 {
		r += a.windowNS
	}
	return tsNS - r
}

// Observe folds one template occurrence into the window holding tsNS
// (typically the closing session's last event time) and returns how many
// windows were flushed into the base aggregate to respect the window bound.
func (a *SWSAccumulator) Observe(tsNS int64, fp uint64, user string, wcHash uint64) (flushed int) {
	start := a.windowStart(tsNS)
	w := a.window(start)
	ev, ok := w.byFP[fp]
	if !ok {
		ev = newEvidence()
		w.byFP[fp] = ev
	}
	ev.observe(user, wcHash, a.userCap)
	return a.enforceBound()
}

// window finds or inserts the window with the given start, keeping the list
// startNS-ascending (sessions mostly close in watermark order, so the common
// case appends).
func (a *SWSAccumulator) window(startNS int64) *swsWindow {
	i := sort.Search(len(a.windows), func(i int) bool { return a.windows[i].startNS >= startNS })
	if i < len(a.windows) && a.windows[i].startNS == startNS {
		return a.windows[i]
	}
	w := &swsWindow{startNS: startNS, byFP: map[uint64]*Evidence{}}
	a.windows = append(a.windows, nil)
	copy(a.windows[i+1:], a.windows[i:])
	a.windows[i] = w
	return w
}

// enforceBound flushes the oldest windows into the base aggregate until at
// most maxWindows remain. Flushing moves evidence, never drops it, so the
// merged total — and the drain-time classification — is invariant under
// window placement.
func (a *SWSAccumulator) enforceBound() (flushed int) {
	for len(a.windows) > a.maxWindows {
		w := a.windows[0]
		a.windows = a.windows[1:]
		for fp, ev := range w.byFP {
			b, ok := a.base[fp]
			if !ok {
				a.base[fp] = ev
				continue
			}
			b.merge(ev, a.userCap)
		}
		a.flushes++
		flushed++
	}
	return flushed
}

// MergedEvidence returns a deep copy of base + all windows keyed by template
// fingerprint — the global evidence the classification runs over.
func (a *SWSAccumulator) MergedEvidence() map[uint64]Evidence {
	out := make(map[uint64]*Evidence, len(a.base))
	fold := func(byFP map[uint64]*Evidence) {
		for fp, ev := range byFP {
			g, ok := out[fp]
			if !ok {
				out[fp] = ev.clone()
				continue
			}
			g.merge(ev, a.userCap)
		}
	}
	fold(a.base)
	for _, w := range a.windows {
		fold(w.byFP)
	}
	flat := make(map[uint64]Evidence, len(out))
	for fp, ev := range out {
		flat[fp] = *ev
	}
	return flat
}

// Classify runs the batch SWS predicate over the merged evidence.
// totalSelects must be the stream's deduplicated SELECT count; once every
// session has closed (drain), the result is bit-identical to
// pattern.ClassifySWS over the batch pipeline's templates, provided
// opt.MaxUserPopularity < UserCap (see the cap argument above).
func (a *SWSAccumulator) Classify(totalSelects int, opt pattern.SWSOptions) map[uint64]bool {
	out := map[uint64]bool{}
	for fp, ev := range a.MergedEvidence() {
		t := pattern.TemplateStats{
			Fingerprint:    fp,
			Frequency:      ev.Freq,
			UserPopularity: len(ev.Users),
			DistinctWhere:  len(ev.WCs),
		}
		if pattern.IsSWS(t, totalSelects, opt) {
			out[fp] = true
		}
	}
	return out
}

// Merge folds another accumulator into a: same-start windows merge, the
// other's base folds into ours, and the window bound is re-enforced.
func (a *SWSAccumulator) Merge(o *SWSAccumulator) {
	if o == nil {
		return
	}
	for fp, ev := range o.base {
		b, ok := a.base[fp]
		if !ok {
			a.base[fp] = ev.clone()
			continue
		}
		b.merge(ev, a.userCap)
	}
	for _, ow := range o.windows {
		w := a.window(ow.startNS)
		for fp, ev := range ow.byFP {
			g, ok := w.byFP[fp]
			if !ok {
				w.byFP[fp] = ev.clone()
				continue
			}
			g.merge(ev, a.userCap)
		}
	}
	a.flushes += o.flushes
	a.enforceBound()
}

// Clone returns a deep copy.
func (a *SWSAccumulator) Clone() *SWSAccumulator {
	c := &SWSAccumulator{
		windowNS:   a.windowNS,
		maxWindows: a.maxWindows,
		userCap:    a.userCap,
		base:       make(map[uint64]*Evidence, len(a.base)),
		flushes:    a.flushes,
	}
	for fp, ev := range a.base {
		c.base[fp] = ev.clone()
	}
	for _, w := range a.windows {
		cw := &swsWindow{startNS: w.startNS, byFP: make(map[uint64]*Evidence, len(w.byFP))}
		for fp, ev := range w.byFP {
			cw.byFP[fp] = ev.clone()
		}
		c.windows = append(c.windows, cw)
	}
	return c
}

// EvidenceSnapshot is one template's serialized evidence (users and WHERE
// hashes sorted for a deterministic encoding).
type EvidenceSnapshot struct {
	Fingerprint uint64   `json:"fingerprint"`
	Freq        int      `json:"freq"`
	Users       []string `json:"users,omitempty"`
	WCs         []uint64 `json:"wcs,omitempty"`
}

// WindowSnapshot is one serialized event-time window.
type WindowSnapshot struct {
	StartNS  int64              `json:"start_ns"`
	Evidence []EvidenceSnapshot `json:"evidence,omitempty"`
}

// SWSSnapshot serializes the accumulator.
type SWSSnapshot struct {
	WindowNS   int64              `json:"window_ns"`
	MaxWindows int                `json:"max_windows"`
	UserCap    int                `json:"user_cap"`
	Flushes    int64              `json:"flushes"`
	Base       []EvidenceSnapshot `json:"base,omitempty"`
	Windows    []WindowSnapshot   `json:"windows,omitempty"`
}

func snapEvidence(byFP map[uint64]*Evidence) []EvidenceSnapshot {
	if len(byFP) == 0 {
		// nil, not an empty slice: the JSON round trip (omitempty) must be
		// the identity on snapshots.
		return nil
	}
	out := make([]EvidenceSnapshot, 0, len(byFP))
	for fp, ev := range byFP {
		es := EvidenceSnapshot{Fingerprint: fp, Freq: ev.Freq, Users: append([]string(nil), ev.Users...)}
		for wc := range ev.WCs {
			es.WCs = append(es.WCs, wc)
		}
		sort.Slice(es.WCs, func(i, j int) bool { return es.WCs[i] < es.WCs[j] })
		out = append(out, es)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Fingerprint < out[j].Fingerprint })
	return out
}

func restoreEvidence(snaps []EvidenceSnapshot) map[uint64]*Evidence {
	byFP := make(map[uint64]*Evidence, len(snaps))
	for _, es := range snaps {
		ev := &Evidence{Freq: es.Freq, Users: append([]string(nil), es.Users...), WCs: make(map[uint64]struct{}, len(es.WCs))}
		for _, wc := range es.WCs {
			ev.WCs[wc] = struct{}{}
		}
		byFP[es.Fingerprint] = ev
	}
	return byFP
}

// Snapshot serializes the accumulator.
func (a *SWSAccumulator) Snapshot() SWSSnapshot {
	s := SWSSnapshot{
		WindowNS:   a.windowNS,
		MaxWindows: a.maxWindows,
		UserCap:    a.userCap,
		Flushes:    a.flushes,
		Base:       snapEvidence(a.base),
	}
	for _, w := range a.windows {
		s.Windows = append(s.Windows, WindowSnapshot{StartNS: w.startNS, Evidence: snapEvidence(w.byFP)})
	}
	return s
}

// restoreSWS rebuilds an accumulator from its snapshot.
func restoreSWS(s SWSSnapshot) (*SWSAccumulator, error) {
	a := NewSWSAccumulator(time.Duration(s.WindowNS), s.MaxWindows, s.UserCap)
	a.flushes = s.Flushes
	a.base = restoreEvidence(s.Base)
	for _, ws := range s.Windows {
		a.windows = append(a.windows, &swsWindow{startNS: ws.StartNS, byFP: restoreEvidence(ws.Evidence)})
	}
	sort.Slice(a.windows, func(i, j int) bool { return a.windows[i].startNS < a.windows[j].startNS })
	return a, nil
}
