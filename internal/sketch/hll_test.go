package sketch

import (
	"encoding/json"
	"fmt"
	"math"
	"reflect"
	"testing"
)

// TestHLLErrorBound is the acceptance bound: at 100k distinct identities the
// default-precision estimate must be within ±2 % of the exact count. The
// hash is deterministic, so this is a fixed property of the implementation,
// not a flaky statistical draw.
func TestHLLErrorBound(t *testing.T) {
	const n = 100_000
	h := NewHLL(0)
	for i := 0; i < n; i++ {
		h.AddString(fmt.Sprintf("user-%d", i))
	}
	got := h.Estimate()
	relErr := math.Abs(got-n) / n
	if relErr > 0.02 {
		t.Fatalf("estimate %.0f for %d identities: relative error %.4f > 0.02", got, n, relErr)
	}
	t.Logf("estimate %.0f for %d identities (relative error %.4f)", got, n, relErr)
}

// TestHLLErrorAcrossScales keeps the estimator honest through the
// linear-counting handover and up to 1M.
func TestHLLErrorAcrossScales(t *testing.T) {
	for _, n := range []int{10, 100, 1_000, 10_000, 1_000_000} {
		h := NewHLL(0)
		for i := 0; i < n; i++ {
			h.AddString(fmt.Sprintf("identity/%d", i))
		}
		got := h.Estimate()
		relErr := math.Abs(got-float64(n)) / float64(n)
		// Small cardinalities ride linear counting (near-exact); the large
		// end gets the same 2 % budget as the acceptance bound.
		bound := 0.02
		if relErr > bound {
			t.Errorf("n=%d: estimate %.1f, relative error %.4f > %.2f", n, got, relErr, bound)
		}
	}
}

// TestHLLIdempotentAndDuplicates pins that re-adding identities never moves
// the registers — the property that makes journal replays harmless.
func TestHLLIdempotentAndDuplicates(t *testing.T) {
	a, b := NewHLL(12), NewHLL(12)
	for i := 0; i < 5_000; i++ {
		s := fmt.Sprintf("u%d", i%500) // heavy duplication
		a.AddString(s)
	}
	for i := 0; i < 500; i++ {
		b.AddString(fmt.Sprintf("u%d", i))
	}
	if !reflect.DeepEqual(a.regs, b.regs) {
		t.Fatal("duplicated adds produced different registers than the distinct set")
	}
}

// TestHLLMergeEqualsUnion: merging shard-partitioned counters must equal one
// counter that saw everything, register for register.
func TestHLLMergeEqualsUnion(t *testing.T) {
	want := NewHLL(14)
	parts := []*HLL{NewHLL(14), NewHLL(14), NewHLL(14), NewHLL(14)}
	for i := 0; i < 20_000; i++ {
		s := fmt.Sprintf("user-%d", i)
		want.AddString(s)
		parts[i%len(parts)].AddString(s)
	}
	merged := parts[0].Clone()
	for _, p := range parts[1:] {
		if err := merged.Merge(p); err != nil {
			t.Fatal(err)
		}
	}
	if !reflect.DeepEqual(merged.regs, want.regs) {
		t.Fatal("merged registers differ from the union counter")
	}
	if err := merged.Merge(NewHLL(10)); err == nil {
		t.Error("Merge accepted a precision mismatch")
	}
}

// TestHLLSnapshotRoundTrip: snapshot → JSON → restore → re-snapshot must be
// the identity, and restore must reject corrupt register files.
func TestHLLSnapshotRoundTrip(t *testing.T) {
	h := NewHLL(11)
	for i := 0; i < 10_000; i++ {
		h.AddString(fmt.Sprintf("id-%d", i))
	}
	blob, err := json.Marshal(h.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var snap HLLSnapshot
	if err := json.Unmarshal(blob, &snap); err != nil {
		t.Fatal(err)
	}
	got, err := restoreHLL(snap)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, h) {
		t.Fatal("restored HLL differs")
	}
	if !reflect.DeepEqual(got.Snapshot(), h.Snapshot()) {
		t.Fatal("re-snapshot differs")
	}
	if _, err := restoreHLL(HLLSnapshot{Precision: 11, Registers: make([]byte, 7)}); err == nil {
		t.Error("restore accepted a truncated register file")
	}
	if _, err := restoreHLL(HLLSnapshot{Precision: 99}); err == nil {
		t.Error("restore accepted an out-of-range precision")
	}
}

// TestHLLOccupied pins the occupancy gauge semantics.
func TestHLLOccupied(t *testing.T) {
	h := NewHLL(8)
	if h.Occupied() != 0 {
		t.Fatalf("fresh counter occupancy = %d", h.Occupied())
	}
	h.AddString("alice")
	if h.Occupied() != 1 {
		t.Fatalf("one identity occupancy = %d, want 1", h.Occupied())
	}
	if h.Registers() != 256 {
		t.Fatalf("Registers() = %d, want 256", h.Registers())
	}
}
