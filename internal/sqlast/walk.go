package sqlast

// Walk calls fn for every node in the tree rooted at n, in depth-first
// pre-order. If fn returns false for a node, its children are skipped.
func Walk(n Node, fn func(Node) bool) {
	if n == nil || !fn(n) {
		return
	}
	switch x := n.(type) {
	case *SelectStatement:
		for _, it := range x.Items {
			Walk(it.Expr, fn)
		}
		for _, ts := range x.From {
			Walk(ts, fn)
		}
		if x.Where != nil {
			Walk(x.Where, fn)
		}
		for _, g := range x.GroupBy {
			Walk(g, fn)
		}
		if x.Having != nil {
			Walk(x.Having, fn)
		}
		for _, oi := range x.OrderBy {
			Walk(oi.Expr, fn)
		}
		if x.SetRight != nil {
			Walk(x.SetRight, fn)
		}
	case *TableRef, *Literal, *ColumnRef, *Variable, *OtherStatement:
		// leaves
	case *FuncSource:
		Walk(x.Call, fn)
	case *DerivedTable:
		Walk(x.Sub, fn)
	case *Join:
		Walk(x.Left, fn)
		Walk(x.Right, fn)
		if x.Cond != nil {
			Walk(x.Cond, fn)
		}
	case *BinaryExpr:
		Walk(x.Left, fn)
		Walk(x.Right, fn)
	case *UnaryExpr:
		Walk(x.X, fn)
	case *ParenExpr:
		Walk(x.X, fn)
	case *FuncCall:
		for _, a := range x.Args {
			Walk(a, fn)
		}
	case *InExpr:
		Walk(x.X, fn)
		for _, it := range x.List {
			Walk(it, fn)
		}
		if x.Sub != nil {
			Walk(x.Sub, fn)
		}
	case *BetweenExpr:
		Walk(x.X, fn)
		Walk(x.Lo, fn)
		Walk(x.Hi, fn)
	case *IsNullExpr:
		Walk(x.X, fn)
	case *LikeExpr:
		Walk(x.X, fn)
		Walk(x.Pattern, fn)
	case *ExistsExpr:
		Walk(x.Sub, fn)
	case *SubqueryExpr:
		Walk(x.Sub, fn)
	case *CastExpr:
		Walk(x.X, fn)
	case *CaseExpr:
		if x.Operand != nil {
			Walk(x.Operand, fn)
		}
		for _, w := range x.Whens {
			Walk(w.Cond, fn)
			Walk(w.Then, fn)
		}
		if x.Else != nil {
			Walk(x.Else, fn)
		}
	}
}

// Tables returns every base table referenced anywhere in the statement,
// including inside joins, derived tables and subqueries, in encounter order.
func Tables(s *SelectStatement) []*TableRef {
	var out []*TableRef
	Walk(s, func(n Node) bool {
		if t, ok := n.(*TableRef); ok {
			out = append(out, t)
		}
		return true
	})
	return out
}

// Columns returns every column reference anywhere in the statement in
// encounter order (star references included).
func Columns(s *SelectStatement) []*ColumnRef {
	var out []*ColumnRef
	Walk(s, func(n Node) bool {
		if c, ok := n.(*ColumnRef); ok {
			out = append(out, c)
		}
		return true
	})
	return out
}

// Literals returns every literal in the statement in encounter order.
func Literals(s *SelectStatement) []*Literal {
	var out []*Literal
	Walk(s, func(n Node) bool {
		if l, ok := n.(*Literal); ok {
			out = append(out, l)
		}
		return true
	})
	return out
}

// CloneExpr returns a deep copy of an expression tree.
func CloneExpr(e Expr) Expr {
	switch x := e.(type) {
	case nil:
		return nil
	case *Literal:
		c := *x
		return &c
	case *ColumnRef:
		c := *x
		return &c
	case *Variable:
		c := *x
		return &c
	case *BinaryExpr:
		return &BinaryExpr{Op: x.Op, Left: CloneExpr(x.Left), Right: CloneExpr(x.Right)}
	case *UnaryExpr:
		return &UnaryExpr{Op: x.Op, X: CloneExpr(x.X)}
	case *ParenExpr:
		return &ParenExpr{X: CloneExpr(x.X)}
	case *FuncCall:
		c := &FuncCall{Schema: x.Schema, Name: x.Name, Distinct: x.Distinct, Star: x.Star}
		for _, a := range x.Args {
			c.Args = append(c.Args, CloneExpr(a))
		}
		return c
	case *InExpr:
		c := &InExpr{X: CloneExpr(x.X), Not: x.Not, Sub: CloneSelect(x.Sub)}
		for _, it := range x.List {
			c.List = append(c.List, CloneExpr(it))
		}
		return c
	case *BetweenExpr:
		return &BetweenExpr{X: CloneExpr(x.X), Not: x.Not, Lo: CloneExpr(x.Lo), Hi: CloneExpr(x.Hi)}
	case *IsNullExpr:
		return &IsNullExpr{X: CloneExpr(x.X), Not: x.Not}
	case *LikeExpr:
		return &LikeExpr{X: CloneExpr(x.X), Not: x.Not, Pattern: CloneExpr(x.Pattern)}
	case *ExistsExpr:
		return &ExistsExpr{Sub: CloneSelect(x.Sub)}
	case *SubqueryExpr:
		return &SubqueryExpr{Sub: CloneSelect(x.Sub)}
	case *CastExpr:
		return &CastExpr{X: CloneExpr(x.X), Type: x.Type, TypeArgs: append([]string(nil), x.TypeArgs...)}
	case *CaseExpr:
		c := &CaseExpr{Operand: CloneExpr(x.Operand), Else: CloneExpr(x.Else)}
		for _, w := range x.Whens {
			c.Whens = append(c.Whens, CaseWhen{Cond: CloneExpr(w.Cond), Then: CloneExpr(w.Then)})
		}
		return c
	}
	return e
}

// CloneTableSource returns a deep copy of a FROM entry.
func CloneTableSource(ts TableSource) TableSource {
	switch t := ts.(type) {
	case nil:
		return nil
	case *TableRef:
		c := *t
		return &c
	case *FuncSource:
		return &FuncSource{Call: CloneExpr(t.Call).(*FuncCall), Alias: t.Alias}
	case *DerivedTable:
		return &DerivedTable{Sub: CloneSelect(t.Sub), Alias: t.Alias}
	case *Join:
		return &Join{Kind: t.Kind, Left: CloneTableSource(t.Left), Right: CloneTableSource(t.Right), Cond: CloneExpr(t.Cond)}
	}
	return ts
}

// CloneSelect returns a deep copy of a SELECT statement. Nil in, nil out.
func CloneSelect(s *SelectStatement) *SelectStatement {
	if s == nil {
		return nil
	}
	c := &SelectStatement{
		Distinct:   s.Distinct,
		TopPercent: s.TopPercent,
		Where:      CloneExpr(s.Where),
		Having:     CloneExpr(s.Having),
		SetOp:      s.SetOp,
		SetRight:   CloneSelect(s.SetRight),
	}
	if s.Top != nil {
		t := *s.Top
		c.Top = &t
	}
	for _, it := range s.Items {
		c.Items = append(c.Items, SelectItem{Expr: CloneExpr(it.Expr), Alias: it.Alias})
	}
	for _, ts := range s.From {
		c.From = append(c.From, CloneTableSource(ts))
	}
	for _, g := range s.GroupBy {
		c.GroupBy = append(c.GroupBy, CloneExpr(g))
	}
	for _, oi := range s.OrderBy {
		c.OrderBy = append(c.OrderBy, OrderItem{Expr: CloneExpr(oi.Expr), Desc: oi.Desc})
	}
	return c
}
