package sqlast

import (
	"strings"

	"sqlclean/internal/sqltoken"
)

// PrintOptions control how an AST is rendered back to SQL text.
type PrintOptions struct {
	// MaskLiterals replaces every Literal with a placeholder: <num> for
	// numbers, <str> for strings. NULL is preserved (it is a semantic
	// marker, not a parameter). This produces the skeleton query of the
	// paper's Definition 2.
	MaskLiterals bool
	// NormalizeIdents lower-cases identifiers (SQL identifiers are
	// case-insensitive) so that textually different but equivalent queries
	// print identically. Used for fingerprinting.
	NormalizeIdents bool
}

// Canonical prints a statement in fully normalized form (masked literals,
// normalized identifiers) — the skeleton-query text used as a template
// fingerprint component.
func Canonical(s *SelectStatement) string {
	return Print(s, PrintOptions{MaskLiterals: true, NormalizeIdents: true})
}

// Print renders a SELECT statement as SQL text under the given options.
// The output is deterministic: same AST and options, same string.
func Print(s *SelectStatement, o PrintOptions) string {
	var b strings.Builder
	p := printer{b: &b, o: o}
	p.selectStmt(s)
	return b.String()
}

// PrintStatement renders any modeled statement (SELECT or typed DML).
// OtherStatements render as their raw text.
func PrintStatement(st Statement, o PrintOptions) string {
	var b strings.Builder
	p := printer{b: &b, o: o}
	switch s := st.(type) {
	case *SelectStatement:
		p.selectStmt(s)
	case *InsertStatement:
		p.ws("INSERT INTO ")
		p.tableSource(s.Table)
		if len(s.Columns) > 0 {
			p.ws(" (")
			for i, c := range s.Columns {
				if i > 0 {
					p.ws(", ")
				}
				p.ident(c)
			}
			p.ws(")")
		}
		p.ws(" VALUES ")
		for i, row := range s.Rows {
			if i > 0 {
				p.ws(", ")
			}
			p.ws("(")
			for j, x := range row {
				if j > 0 {
					p.ws(", ")
				}
				p.expr(x)
			}
			p.ws(")")
		}
	case *UpdateStatement:
		p.ws("UPDATE ")
		p.tableSource(s.Table)
		p.ws(" SET ")
		for i, set := range s.Set {
			if i > 0 {
				p.ws(", ")
			}
			p.ident(set.Column)
			p.ws(" = ")
			p.expr(set.Value)
		}
		if s.Where != nil {
			p.ws(" WHERE ")
			p.expr(s.Where)
		}
	case *DeleteStatement:
		p.ws("DELETE FROM ")
		p.tableSource(s.Table)
		if s.Where != nil {
			p.ws(" WHERE ")
			p.expr(s.Where)
		}
	case *OtherStatement:
		p.ws(s.Raw)
	}
	return b.String()
}

// PrintExpr renders a single expression under the given options.
func PrintExpr(e Expr, o PrintOptions) string {
	var b strings.Builder
	p := printer{b: &b, o: o}
	p.expr(e)
	return b.String()
}

// PrintTableSource renders a single FROM entry under the given options.
func PrintTableSource(ts TableSource, o PrintOptions) string {
	var b strings.Builder
	p := printer{b: &b, o: o}
	p.tableSource(ts)
	return b.String()
}

// AppendExpr renders e into b under the given options, saving the
// intermediate string PrintExpr would allocate.
func AppendExpr(b *strings.Builder, e Expr, o PrintOptions) {
	p := printer{b: b, o: o}
	p.expr(e)
}

// AppendTableSource renders a FROM entry into b under the given options.
func AppendTableSource(b *strings.Builder, ts TableSource, o PrintOptions) {
	p := printer{b: b, o: o}
	p.tableSource(ts)
}

// AppendSelect renders a whole SELECT statement into b under the given
// options, saving the intermediate string Print would allocate.
func AppendSelect(b *strings.Builder, s *SelectStatement, o PrintOptions) {
	p := printer{b: b, o: o}
	p.selectStmt(s)
}

type printer struct {
	b *strings.Builder
	o PrintOptions
}

func (p *printer) ws(s string) { p.b.WriteString(s) }
func (p *printer) ident(s string) {
	// needsQuoting is case-insensitive, so it can run before normalization;
	// that lets the unquoted path lower ASCII bytes straight into the
	// builder instead of allocating a strings.ToLower copy per identifier.
	if needsQuoting(s) {
		if p.o.NormalizeIdents {
			s = strings.ToLower(s)
		}
		// T-SQL bracket quoting; ']' inside a name cannot round-trip
		// through the lexer, so it is dropped rather than emitting an
		// unparseable identifier.
		p.ws("[")
		p.ws(strings.ReplaceAll(s, "]", ""))
		p.ws("]")
		return
	}
	if !p.o.NormalizeIdents {
		p.ws(s)
		return
	}
	i := 0
	for i < len(s) {
		c := s[i]
		if c >= 0x80 || ('A' <= c && c <= 'Z') {
			break
		}
		i++
	}
	if i == len(s) { // already lower-case ASCII — write the original slice
		p.ws(s)
		return
	}
	p.ws(s[:i])
	rest := s[i:]
	var buf [64]byte
	for len(rest) > 0 {
		n := len(rest)
		if n > len(buf) {
			n = len(buf)
		}
		for j := 0; j < n; j++ {
			c := rest[j]
			if c >= 0x80 {
				// Non-ASCII identifier: defer to Unicode-correct lowering.
				p.b.Write(buf[:j])
				p.ws(strings.ToLower(rest[j:]))
				return
			}
			if 'A' <= c && c <= 'Z' {
				c += 'a' - 'A'
			}
			buf[j] = c
		}
		p.b.Write(buf[:n])
		rest = rest[n:]
	}
}

// startsWithIdentEq reports whether printing the expression would begin
// with a bare identifier followed by '=' — the shape the parser reads as a
// T-SQL alias assignment in a select list.
func startsWithIdentEq(x Expr) bool {
	be, ok := x.(*BinaryExpr)
	if !ok || be.Op != "=" {
		return false
	}
	c, ok := be.Left.(*ColumnRef)
	return ok && !c.Star && c.Qualifier == ""
}

// needsUnaryParens reports whether a unary operand must be parenthesized to
// avoid token gluing ("--", "+-", binary-expression precedence).
func needsUnaryParens(op string, x Expr) bool {
	if op == "NOT" {
		return false
	}
	switch v := x.(type) {
	case *UnaryExpr:
		return true
	case *Literal:
		return v.Kind == "num" && strings.HasPrefix(v.Val, "-")
	case *BinaryExpr:
		return true
	}
	return false
}

// needsQuoting reports whether an identifier must be bracket-quoted to
// reparse: empty names, names with characters outside the identifier
// alphabet, names starting with a digit, and reserved words.
func needsQuoting(s string) bool {
	if s == "" {
		return true
	}
	if _, kw := sqltoken.KeywordCanon(s); kw {
		return true
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == '#', c >= 0x80:
		case c >= '0' && c <= '9', c == '$':
			// Digits and '$' are identifier characters only after the
			// first byte (mirrors the lexer's isIdentStart/isIdentPart).
			if i == 0 {
				return true
			}
		default:
			return true
		}
	}
	return false
}

func (p *printer) selectStmt(s *SelectStatement) {
	p.ws("SELECT ")
	if s.Distinct {
		p.ws("DISTINCT ")
	}
	if s.Top != nil {
		p.ws("TOP ")
		p.literal(s.Top)
		if s.TopPercent {
			p.ws(" PERCENT")
		}
		p.ws(" ")
	}
	for i, it := range s.Items {
		if i > 0 {
			p.ws(", ")
		}
		// An expression starting with a bare identifier and '=' would
		// reparse as T-SQL's "alias = expr" form; print aliased items that
		// way so the round trip is exact, and parenthesize unaliased ones.
		if startsWithIdentEq(it.Expr) {
			if it.Alias != "" {
				p.ident(it.Alias)
				p.ws(" = ")
				p.expr(it.Expr)
				continue
			}
			p.ws("(")
			p.expr(it.Expr)
			p.ws(")")
			continue
		}
		p.expr(it.Expr)
		if it.Alias != "" {
			p.ws(" AS ")
			p.ident(it.Alias)
		}
	}
	if len(s.From) > 0 {
		p.ws(" FROM ")
		for i, ts := range s.From {
			if i > 0 {
				p.ws(", ")
			}
			p.tableSource(ts)
		}
	}
	if s.Where != nil {
		p.ws(" WHERE ")
		p.expr(s.Where)
	}
	if len(s.GroupBy) > 0 {
		p.ws(" GROUP BY ")
		for i, e := range s.GroupBy {
			if i > 0 {
				p.ws(", ")
			}
			p.expr(e)
		}
	}
	if s.Having != nil {
		p.ws(" HAVING ")
		p.expr(s.Having)
	}
	if len(s.OrderBy) > 0 {
		p.ws(" ORDER BY ")
		for i, oi := range s.OrderBy {
			if i > 0 {
				p.ws(", ")
			}
			p.expr(oi.Expr)
			if oi.Desc {
				p.ws(" DESC")
			}
		}
	}
	if s.SetOp != "" && s.SetRight != nil {
		p.ws(" ")
		p.ws(s.SetOp)
		p.ws(" ")
		p.selectStmt(s.SetRight)
	}
}

func (p *printer) tableSource(ts TableSource) {
	switch t := ts.(type) {
	case *TableRef:
		if t.Schema != "" {
			p.ident(t.Schema)
			p.ws(".")
		}
		p.ident(t.Name)
		if t.Alias != "" {
			p.ws(" AS ")
			p.ident(t.Alias)
		}
	case *FuncSource:
		p.expr(t.Call)
		if t.Alias != "" {
			p.ws(" AS ")
			p.ident(t.Alias)
		}
	case *DerivedTable:
		p.ws("(")
		p.selectStmt(t.Sub)
		p.ws(")")
		if t.Alias != "" {
			p.ws(" AS ")
			p.ident(t.Alias)
		}
	case *Join:
		p.tableSource(t.Left)
		p.ws(" ")
		p.ws(t.Kind.String())
		p.ws(" ")
		p.tableSource(t.Right)
		if t.Cond != nil {
			p.ws(" ON ")
			p.expr(t.Cond)
		}
	}
}

func (p *printer) literal(l *Literal) {
	switch l.Kind {
	case "null":
		p.ws("NULL")
	case "str":
		if p.o.MaskLiterals {
			p.ws("<str>")
			return
		}
		p.ws("'")
		p.ws(strings.ReplaceAll(l.Val, "'", "''"))
		p.ws("'")
	default: // num
		if p.o.MaskLiterals {
			p.ws("<num>")
			return
		}
		p.ws(l.Val)
	}
}

func (p *printer) expr(e Expr) {
	switch x := e.(type) {
	case *Literal:
		p.literal(x)
	case *ColumnRef:
		if x.Qualifier != "" {
			p.ident(x.Qualifier)
			p.ws(".")
		}
		if x.Star {
			p.ws("*")
		} else {
			p.ident(x.Name)
		}
	case *Variable:
		p.ws(x.Name)
	case *BinaryExpr:
		p.expr(x.Left)
		p.ws(" ")
		p.ws(x.Op)
		p.ws(" ")
		p.expr(x.Right)
	case *UnaryExpr:
		p.ws(x.Op)
		if x.Op == "NOT" {
			p.ws(" ")
		}
		// Parenthesize nested sign operands: "- -1" would otherwise print
		// as "--1", which lexes as a line comment.
		if needsUnaryParens(x.Op, x.X) {
			p.ws("(")
			p.expr(x.X)
			p.ws(")")
			return
		}
		p.expr(x.X)
	case *ParenExpr:
		p.ws("(")
		p.expr(x.X)
		p.ws(")")
	case *FuncCall:
		if x.Schema != "" {
			p.ident(x.Schema)
			p.ws(".")
		}
		// Function names that are keywords (count, left, cast-like
		// builtins) parse fine before '(' and must not be bracketed.
		name := x.Name
		if p.o.NormalizeIdents {
			name = strings.ToLower(name)
		}
		p.ws(name)
		p.ws("(")
		if x.Distinct {
			p.ws("DISTINCT ")
		}
		if x.Star {
			p.ws("*")
		}
		for i, a := range x.Args {
			if i > 0 {
				p.ws(", ")
			}
			p.expr(a)
		}
		p.ws(")")
	case *InExpr:
		p.expr(x.X)
		if x.Not {
			p.ws(" NOT")
		}
		p.ws(" IN (")
		if x.Sub != nil {
			p.selectStmt(x.Sub)
		} else {
			for i, it := range x.List {
				if i > 0 {
					p.ws(", ")
				}
				p.expr(it)
			}
		}
		p.ws(")")
	case *BetweenExpr:
		p.expr(x.X)
		if x.Not {
			p.ws(" NOT")
		}
		p.ws(" BETWEEN ")
		p.expr(x.Lo)
		p.ws(" AND ")
		p.expr(x.Hi)
	case *IsNullExpr:
		p.expr(x.X)
		p.ws(" IS ")
		if x.Not {
			p.ws("NOT ")
		}
		p.ws("NULL")
	case *LikeExpr:
		p.expr(x.X)
		if x.Not {
			p.ws(" NOT")
		}
		p.ws(" LIKE ")
		p.expr(x.Pattern)
	case *ExistsExpr:
		p.ws("EXISTS (")
		p.selectStmt(x.Sub)
		p.ws(")")
	case *SubqueryExpr:
		p.ws("(")
		p.selectStmt(x.Sub)
		p.ws(")")
	case *CastExpr:
		p.ws("CAST(")
		p.expr(x.X)
		p.ws(" AS ")
		p.ident(x.Type)
		if len(x.TypeArgs) > 0 {
			p.ws("(")
			p.ws(strings.Join(x.TypeArgs, ", "))
			p.ws(")")
		}
		p.ws(")")
	case *CaseExpr:
		p.ws("CASE")
		if x.Operand != nil {
			p.ws(" ")
			p.expr(x.Operand)
		}
		for _, w := range x.Whens {
			p.ws(" WHEN ")
			p.expr(w.Cond)
			p.ws(" THEN ")
			p.expr(w.Then)
		}
		if x.Else != nil {
			p.ws(" ELSE ")
			p.expr(x.Else)
		}
		p.ws(" END")
	}
}
