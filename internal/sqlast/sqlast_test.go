package sqlast

import (
	"testing"
)

// buildSample constructs an AST equivalent to:
// SELECT TOP 5 e.name AS n, count(*) FROM emp AS e INNER JOIN dep AS d ON
// e.did = d.id WHERE e.age > 30 AND e.city = 'Rome' GROUP BY e.did HAVING
// count(*) > 2 ORDER BY n DESC
func buildSample() *SelectStatement {
	return &SelectStatement{
		Top: &Literal{Kind: "num", Val: "5"},
		Items: []SelectItem{
			{Expr: &ColumnRef{Qualifier: "e", Name: "name"}, Alias: "n"},
			{Expr: &FuncCall{Name: "count", Star: true}},
		},
		From: []TableSource{
			&Join{
				Kind:  InnerJoin,
				Left:  &TableRef{Name: "emp", Alias: "e"},
				Right: &TableRef{Name: "dep", Alias: "d"},
				Cond: &BinaryExpr{Op: "=",
					Left:  &ColumnRef{Qualifier: "e", Name: "did"},
					Right: &ColumnRef{Qualifier: "d", Name: "id"}},
			},
		},
		Where: &BinaryExpr{Op: "AND",
			Left: &BinaryExpr{Op: ">",
				Left:  &ColumnRef{Qualifier: "e", Name: "age"},
				Right: &Literal{Kind: "num", Val: "30"}},
			Right: &BinaryExpr{Op: "=",
				Left:  &ColumnRef{Qualifier: "e", Name: "city"},
				Right: &Literal{Kind: "str", Val: "Rome"}},
		},
		GroupBy: []Expr{&ColumnRef{Qualifier: "e", Name: "did"}},
		Having: &BinaryExpr{Op: ">",
			Left:  &FuncCall{Name: "count", Star: true},
			Right: &Literal{Kind: "num", Val: "2"}},
		OrderBy: []OrderItem{{Expr: &ColumnRef{Name: "n"}, Desc: true}},
	}
}

func TestPrintPlain(t *testing.T) {
	got := Print(buildSample(), PrintOptions{})
	want := "SELECT TOP 5 e.name AS n, count(*) FROM emp AS e INNER JOIN dep AS d ON e.did = d.id WHERE e.age > 30 AND e.city = 'Rome' GROUP BY e.did HAVING count(*) > 2 ORDER BY n DESC"
	if got != want {
		t.Errorf("got:\n%s\nwant:\n%s", got, want)
	}
}

func TestPrintMasked(t *testing.T) {
	got := Print(buildSample(), PrintOptions{MaskLiterals: true})
	want := "SELECT TOP <num> e.name AS n, count(*) FROM emp AS e INNER JOIN dep AS d ON e.did = d.id WHERE e.age > <num> AND e.city = <str> GROUP BY e.did HAVING count(*) > <num> ORDER BY n DESC"
	if got != want {
		t.Errorf("got:\n%s\nwant:\n%s", got, want)
	}
}

func TestPrintNormalizesIdentifiers(t *testing.T) {
	s := &SelectStatement{
		Items: []SelectItem{{Expr: &ColumnRef{Qualifier: "E", Name: "Name"}}},
		From:  []TableSource{&TableRef{Schema: "DBO", Name: "Employees", Alias: "E"}},
	}
	got := Print(s, PrintOptions{NormalizeIdents: true})
	want := "SELECT e.name FROM dbo.employees AS e"
	if got != want {
		t.Errorf("got %q, want %q", got, want)
	}
}

func TestPrintStringEscaping(t *testing.T) {
	s := &SelectStatement{
		Items: []SelectItem{{Expr: &Literal{Kind: "str", Val: "it's"}}},
	}
	got := Print(s, PrintOptions{})
	if got != "SELECT 'it''s'" {
		t.Errorf("got %q", got)
	}
}

func TestPrintNullPreservedUnderMasking(t *testing.T) {
	s := &SelectStatement{
		Items: []SelectItem{{Expr: &ColumnRef{Star: true}}},
		From:  []TableSource{&TableRef{Name: "t"}},
		Where: &BinaryExpr{Op: "=", Left: &ColumnRef{Name: "a"}, Right: &Literal{Kind: "null"}},
	}
	got := Print(s, PrintOptions{MaskLiterals: true})
	if got != "SELECT * FROM t WHERE a = NULL" {
		t.Errorf("got %q", got)
	}
}

func TestPrintExprVariants(t *testing.T) {
	cases := []struct {
		e    Expr
		want string
	}{
		{&InExpr{X: &ColumnRef{Name: "a"}, List: []Expr{&Literal{Kind: "num", Val: "1"}, &Literal{Kind: "num", Val: "2"}}}, "a IN (1, 2)"},
		{&InExpr{X: &ColumnRef{Name: "a"}, Not: true, List: []Expr{&Literal{Kind: "str", Val: "x"}}}, "a NOT IN ('x')"},
		{&BetweenExpr{X: &ColumnRef{Name: "r"}, Lo: &Literal{Kind: "num", Val: "1"}, Hi: &Literal{Kind: "num", Val: "2"}}, "r BETWEEN 1 AND 2"},
		{&IsNullExpr{X: &ColumnRef{Name: "a"}}, "a IS NULL"},
		{&IsNullExpr{X: &ColumnRef{Name: "a"}, Not: true}, "a IS NOT NULL"},
		{&LikeExpr{X: &ColumnRef{Name: "s"}, Pattern: &Literal{Kind: "str", Val: "x%"}}, "s LIKE 'x%'"},
		{&UnaryExpr{Op: "NOT", X: &ColumnRef{Name: "b"}}, "NOT b"},
		{&ParenExpr{X: &ColumnRef{Name: "b"}}, "(b)"},
		{&Variable{Name: "@ra"}, "@ra"},
		{&ColumnRef{Qualifier: "p", Star: true}, "p.*"},
		{&CaseExpr{
			Whens: []CaseWhen{{Cond: &BinaryExpr{Op: ">", Left: &ColumnRef{Name: "x"}, Right: &Literal{Kind: "num", Val: "0"}}, Then: &Literal{Kind: "str", Val: "pos"}}},
			Else:  &Literal{Kind: "str", Val: "neg"},
		}, "CASE WHEN x > 0 THEN 'pos' ELSE 'neg' END"},
		{&FuncCall{Schema: "dbo", Name: "fn", Args: []Expr{&Variable{Name: "@x"}}}, "dbo.fn(@x)"},
		{&FuncCall{Name: "count", Distinct: true, Args: []Expr{&ColumnRef{Name: "a"}}}, "count(DISTINCT a)"},
	}
	for _, c := range cases {
		if got := PrintExpr(c.e, PrintOptions{}); got != c.want {
			t.Errorf("got %q, want %q", got, c.want)
		}
	}
}

func TestPrintSetOps(t *testing.T) {
	s := &SelectStatement{
		Items:    []SelectItem{{Expr: &ColumnRef{Name: "a"}}},
		From:     []TableSource{&TableRef{Name: "t1"}},
		SetOp:    "UNION ALL",
		SetRight: &SelectStatement{Items: []SelectItem{{Expr: &ColumnRef{Name: "a"}}}, From: []TableSource{&TableRef{Name: "t2"}}},
	}
	if got := Print(s, PrintOptions{}); got != "SELECT a FROM t1 UNION ALL SELECT a FROM t2" {
		t.Errorf("got %q", got)
	}
}

func TestPrintTableSourceVariants(t *testing.T) {
	dt := &DerivedTable{
		Sub:   &SelectStatement{Items: []SelectItem{{Expr: &ColumnRef{Name: "a"}}}, From: []TableSource{&TableRef{Name: "t"}}},
		Alias: "sub",
	}
	if got := PrintTableSource(dt, PrintOptions{}); got != "(SELECT a FROM t) AS sub" {
		t.Errorf("got %q", got)
	}
	fs := &FuncSource{Call: &FuncCall{Schema: "dbo", Name: "f", Args: []Expr{&Literal{Kind: "num", Val: "1"}}}, Alias: "n"}
	if got := PrintTableSource(fs, PrintOptions{}); got != "dbo.f(1) AS n" {
		t.Errorf("got %q", got)
	}
	cj := &Join{Kind: CrossJoin, Left: &TableRef{Name: "a"}, Right: &TableRef{Name: "b"}}
	if got := PrintTableSource(cj, PrintOptions{}); got != "a CROSS JOIN b" {
		t.Errorf("got %q", got)
	}
}

func TestJoinKindStrings(t *testing.T) {
	cases := map[JoinKind]string{
		InnerJoin:  "INNER JOIN",
		LeftJoin:   "LEFT OUTER JOIN",
		RightJoin:  "RIGHT OUTER JOIN",
		FullJoin:   "FULL OUTER JOIN",
		CrossJoin:  "CROSS JOIN",
		CrossApply: "CROSS APPLY",
		OuterApply: "OUTER APPLY",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("%d: got %q want %q", k, k.String(), want)
		}
	}
}

func TestStatementClassStrings(t *testing.T) {
	cases := map[StatementClass]string{
		ClassSelect: "select", ClassDML: "dml", ClassDDL: "ddl",
		ClassExec: "exec", ClassError: "error",
	}
	for c, want := range cases {
		if c.String() != want {
			t.Errorf("got %q want %q", c.String(), want)
		}
	}
}

func TestWalkVisitsAllNodes(t *testing.T) {
	s := buildSample()
	count := 0
	Walk(s, func(n Node) bool {
		count++
		return true
	})
	// Statement + 2 items (colref, funccall) + join + 2 tables + cond (3
	// nodes) + where (3 binary + 2 cols + 2 lits = wait, count exactly):
	if count < 15 {
		t.Errorf("expected a full traversal, visited only %d nodes", count)
	}
}

func TestWalkPruning(t *testing.T) {
	s := buildSample()
	sawColumns := 0
	Walk(s, func(n Node) bool {
		if _, ok := n.(*BinaryExpr); ok {
			return false // prune below binary expressions
		}
		if _, ok := n.(*ColumnRef); ok {
			sawColumns++
		}
		return true
	})
	// Columns inside WHERE/ON are below BinaryExprs and must be pruned;
	// e.name in the select list and e.did in GROUP BY remain, plus n in
	// ORDER BY.
	if sawColumns != 3 {
		t.Errorf("got %d columns, want 3", sawColumns)
	}
}

func TestTablesColumnsLiterals(t *testing.T) {
	s := buildSample()
	tabs := Tables(s)
	if len(tabs) != 2 || tabs[0].Name != "emp" || tabs[1].Name != "dep" {
		t.Errorf("tables: %v", tabs)
	}
	cols := Columns(s)
	if len(cols) == 0 {
		t.Error("no columns found")
	}
	lits := Literals(s)
	// 30, 'Rome' and 2; TOP's literal is a field of the statement, not a
	// walked child.
	if len(lits) != 3 {
		t.Errorf("literals: %d", len(lits))
	}
}

func TestCloneSelectIsDeep(t *testing.T) {
	s := buildSample()
	c := CloneSelect(s)
	if Print(s, PrintOptions{}) != Print(c, PrintOptions{}) {
		t.Fatal("clone prints differently")
	}
	// Mutate the clone; the original must not change.
	c.Items[0].Expr.(*ColumnRef).Name = "changed"
	c.Where.(*BinaryExpr).Left.(*BinaryExpr).Right.(*Literal).Val = "99"
	c.From[0].(*Join).Left.(*TableRef).Name = "other"
	if s.Items[0].Expr.(*ColumnRef).Name != "name" {
		t.Error("clone shares select items with original")
	}
	if s.Where.(*BinaryExpr).Left.(*BinaryExpr).Right.(*Literal).Val != "30" {
		t.Error("clone shares where literals with original")
	}
	if s.From[0].(*Join).Left.(*TableRef).Name != "emp" {
		t.Error("clone shares from entries with original")
	}
}

func TestCloneExprCoversAllVariants(t *testing.T) {
	exprs := []Expr{
		&Literal{Kind: "num", Val: "1"},
		&ColumnRef{Name: "a"},
		&Variable{Name: "@v"},
		&BinaryExpr{Op: "+", Left: &Literal{Kind: "num", Val: "1"}, Right: &Literal{Kind: "num", Val: "2"}},
		&UnaryExpr{Op: "-", X: &ColumnRef{Name: "a"}},
		&ParenExpr{X: &ColumnRef{Name: "a"}},
		&FuncCall{Name: "f", Args: []Expr{&ColumnRef{Name: "a"}}},
		&InExpr{X: &ColumnRef{Name: "a"}, List: []Expr{&Literal{Kind: "num", Val: "1"}}},
		&BetweenExpr{X: &ColumnRef{Name: "a"}, Lo: &Literal{Kind: "num", Val: "0"}, Hi: &Literal{Kind: "num", Val: "9"}},
		&IsNullExpr{X: &ColumnRef{Name: "a"}},
		&LikeExpr{X: &ColumnRef{Name: "a"}, Pattern: &Literal{Kind: "str", Val: "%"}},
		&ExistsExpr{Sub: buildSample()},
		&SubqueryExpr{Sub: buildSample()},
		&CaseExpr{Whens: []CaseWhen{{Cond: &ColumnRef{Name: "c"}, Then: &Literal{Kind: "num", Val: "1"}}}},
	}
	for _, e := range exprs {
		c := CloneExpr(e)
		if PrintExpr(e, PrintOptions{}) != PrintExpr(c, PrintOptions{}) {
			t.Errorf("clone of %T prints differently", e)
		}
	}
	if CloneExpr(nil) != nil {
		t.Error("CloneExpr(nil) must be nil")
	}
	if CloneSelect(nil) != nil {
		t.Error("CloneSelect(nil) must be nil")
	}
}

func TestCanonicalEqualsMaskedNormalizedPrint(t *testing.T) {
	s := buildSample()
	if Canonical(s) != Print(s, PrintOptions{MaskLiterals: true, NormalizeIdents: true}) {
		t.Error("Canonical must be the masked normalized print")
	}
}
