// Package sqlast defines the abstract syntax tree for the SELECT dialect
// understood by the framework, together with a deterministic printer and a
// generic tree walker. Skeleton queries (literals masked by placeholders) are
// produced by printing with masking enabled; see package skeleton.
package sqlast

// Node is implemented by every AST node.
type Node interface{ node() }

// Expr is implemented by every expression node.
type Expr interface {
	Node
	expr()
}

// Statement is implemented by every top-level statement.
type Statement interface {
	Node
	stmt()
}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

// Literal is a constant in the query text. Skeletonization replaces Literals
// with placeholders.
type Literal struct {
	// Kind is one of "num", "str", "null".
	Kind string
	// Val holds the literal text for numbers and the unquoted content for
	// strings; empty for NULL.
	Val string
}

// ColumnRef is a possibly qualified column reference such as p.objID or
// name. Star references (p.* or *) have Star set and Name empty.
type ColumnRef struct {
	Qualifier string // table or alias, may be empty
	Name      string
	Star      bool
}

// Variable is a T-SQL variable reference such as @ra.
type Variable struct{ Name string }

// BinaryExpr is a binary operation. Op is upper-cased for word operators
// (AND, OR, LIKE) and literal for symbols (=, <>, <=, +, ...).
type BinaryExpr struct {
	Op          string
	Left, Right Expr
}

// UnaryExpr is NOT x or -x or +x or ~x.
type UnaryExpr struct {
	Op string
	X  Expr
}

// ParenExpr preserves explicit grouping so printing round-trips precedence.
type ParenExpr struct{ X Expr }

// FuncCall is a scalar or aggregate function call, e.g. count(*),
// dbo.fGetNearbyObjEq(@ra, @dec, @r), str(p.ra, 12, 7).
type FuncCall struct {
	Schema   string // optional, e.g. "dbo"
	Name     string
	Distinct bool // COUNT(DISTINCT x)
	Star     bool // COUNT(*)
	Args     []Expr
}

// InExpr is x [NOT] IN (list...) or x [NOT] IN (subquery).
type InExpr struct {
	X    Expr
	Not  bool
	List []Expr
	Sub  *SelectStatement // non-nil for IN (SELECT ...)
}

// BetweenExpr is x [NOT] BETWEEN lo AND hi.
type BetweenExpr struct {
	X      Expr
	Not    bool
	Lo, Hi Expr
}

// IsNullExpr is x IS [NOT] NULL.
type IsNullExpr struct {
	X   Expr
	Not bool
}

// LikeExpr is x [NOT] LIKE pattern.
type LikeExpr struct {
	X       Expr
	Not     bool
	Pattern Expr
}

// ExistsExpr is EXISTS (subquery).
type ExistsExpr struct{ Sub *SelectStatement }

// SubqueryExpr is a scalar subquery used as an expression.
type SubqueryExpr struct{ Sub *SelectStatement }

// CastExpr is CAST(x AS type) — CONVERT(type, x) parses to the same node.
// TypeArgs hold optional length/precision arguments (varchar(30)).
type CastExpr struct {
	X        Expr
	Type     string
	TypeArgs []string
}

// CaseExpr is CASE [operand] WHEN ... THEN ... [ELSE ...] END.
type CaseExpr struct {
	Operand Expr // may be nil (searched CASE)
	Whens   []CaseWhen
	Else    Expr // may be nil
}

// CaseWhen is one WHEN/THEN arm of a CaseExpr.
type CaseWhen struct {
	Cond Expr
	Then Expr
}

func (*Literal) node()      {}
func (*ColumnRef) node()    {}
func (*Variable) node()     {}
func (*BinaryExpr) node()   {}
func (*UnaryExpr) node()    {}
func (*ParenExpr) node()    {}
func (*FuncCall) node()     {}
func (*InExpr) node()       {}
func (*BetweenExpr) node()  {}
func (*IsNullExpr) node()   {}
func (*LikeExpr) node()     {}
func (*ExistsExpr) node()   {}
func (*SubqueryExpr) node() {}
func (*CastExpr) node()     {}
func (*CaseExpr) node()     {}

func (*Literal) expr()      {}
func (*ColumnRef) expr()    {}
func (*Variable) expr()     {}
func (*BinaryExpr) expr()   {}
func (*UnaryExpr) expr()    {}
func (*ParenExpr) expr()    {}
func (*FuncCall) expr()     {}
func (*InExpr) expr()       {}
func (*BetweenExpr) expr()  {}
func (*IsNullExpr) expr()   {}
func (*LikeExpr) expr()     {}
func (*ExistsExpr) expr()   {}
func (*SubqueryExpr) expr() {}
func (*CastExpr) expr()     {}
func (*CaseExpr) expr()     {}

// ---------------------------------------------------------------------------
// SELECT statement
// ---------------------------------------------------------------------------

// SelectItem is one element of the select list.
type SelectItem struct {
	Expr  Expr
	Alias string // optional AS alias
}

// TableSource is implemented by things that can appear in FROM: base tables,
// table-valued functions, derived tables, and joins.
type TableSource interface {
	Node
	tableSource()
}

// TableRef is a base table reference, optionally schema-qualified and
// aliased: photoprimary p, dbo.SpecObjAll AS s.
type TableRef struct {
	Schema string
	Name   string
	Alias  string
}

// FuncSource is a table-valued function in FROM, e.g.
// dbo.fGetNearbyObjEq(@ra,@dec,@r) AS n.
type FuncSource struct {
	Call  *FuncCall
	Alias string
}

// DerivedTable is a parenthesized subquery in FROM with an alias.
type DerivedTable struct {
	Sub   *SelectStatement
	Alias string
}

// JoinKind distinguishes join varieties.
type JoinKind int

// Join kinds.
const (
	InnerJoin JoinKind = iota
	LeftJoin
	RightJoin
	FullJoin
	CrossJoin
	CrossApply
	OuterApply
)

func (k JoinKind) String() string {
	switch k {
	case InnerJoin:
		return "INNER JOIN"
	case LeftJoin:
		return "LEFT OUTER JOIN"
	case RightJoin:
		return "RIGHT OUTER JOIN"
	case FullJoin:
		return "FULL OUTER JOIN"
	case CrossJoin:
		return "CROSS JOIN"
	case CrossApply:
		return "CROSS APPLY"
	case OuterApply:
		return "OUTER APPLY"
	}
	return "JOIN"
}

// Join combines two table sources. Cond is nil for CROSS JOIN and APPLY.
type Join struct {
	Kind        JoinKind
	Left, Right TableSource
	Cond        Expr
}

func (*TableRef) node()     {}
func (*FuncSource) node()   {}
func (*DerivedTable) node() {}
func (*Join) node()         {}

func (*TableRef) tableSource()     {}
func (*FuncSource) tableSource()   {}
func (*DerivedTable) tableSource() {}
func (*Join) tableSource()         {}

// OrderItem is one ORDER BY element.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// SelectStatement is a full SELECT query, possibly with UNION branches
// chained via SetOp/SetRight.
type SelectStatement struct {
	Distinct bool
	// Top is the TOP n row limit; nil when absent.
	Top *Literal
	// TopPercent is set for TOP n PERCENT.
	TopPercent bool
	Items      []SelectItem
	// From holds the comma-separated FROM entries; joins nest inside a
	// single entry. Empty for FROM-less selects (SELECT 1).
	From    []TableSource
	Where   Expr // nil when absent
	GroupBy []Expr
	Having  Expr
	OrderBy []OrderItem
	// SetOp is "", "UNION", "UNION ALL", "EXCEPT" or "INTERSECT"; when
	// non-empty SetRight is the right-hand query.
	SetOp    string
	SetRight *SelectStatement
}

func (*SelectStatement) node() {}
func (*SelectStatement) stmt() {}

// ---------------------------------------------------------------------------
// Non-SELECT statements (classified, not deeply modeled)
// ---------------------------------------------------------------------------

// StatementClass labels what kind of statement a log entry holds.
type StatementClass int

// Statement classes.
const (
	ClassSelect StatementClass = iota
	ClassDML                   // INSERT, UPDATE, DELETE, TRUNCATE
	ClassDDL                   // CREATE, DROP, ALTER, GRANT, REVOKE
	ClassExec                  // EXEC/EXECUTE procedure calls, DECLARE blocks
	ClassError                 // failed to parse
)

func (c StatementClass) String() string {
	switch c {
	case ClassSelect:
		return "select"
	case ClassDML:
		return "dml"
	case ClassDDL:
		return "ddl"
	case ClassExec:
		return "exec"
	case ClassError:
		return "error"
	}
	return "unknown"
}

// OtherStatement records a recognized-but-not-modeled statement (DDL, EXEC,
// or DML the parser could not model). Raw preserves the original text.
type OtherStatement struct {
	Class StatementClass
	Verb  string // leading keyword, e.g. "INSERT"
	Raw   string
}

func (*OtherStatement) node() {}
func (*OtherStatement) stmt() {}

// ---------------------------------------------------------------------------
// DML statements (modeled so the engine can execute OLTP workloads; the
// cleaning pipeline itself only classifies them, per the paper's SELECT-only
// scope)
// ---------------------------------------------------------------------------

// InsertStatement is INSERT INTO table [(cols)] VALUES (exprs)[, (exprs)...].
type InsertStatement struct {
	Table   *TableRef
	Columns []string // empty: positional over the table's full column list
	Rows    [][]Expr
}

// UpdateStatement is UPDATE table SET col = expr[, ...] [WHERE cond].
type UpdateStatement struct {
	Table *TableRef
	Set   []SetClause
	Where Expr // nil: all rows
}

// SetClause is one col = expr assignment of an UPDATE.
type SetClause struct {
	Column string
	Value  Expr
}

// DeleteStatement is DELETE FROM table [WHERE cond].
type DeleteStatement struct {
	Table *TableRef
	Where Expr // nil: all rows
}

func (*InsertStatement) node() {}
func (*InsertStatement) stmt() {}
func (*UpdateStatement) node() {}
func (*UpdateStatement) stmt() {}
func (*DeleteStatement) node() {}
func (*DeleteStatement) stmt() {}
