package overlap

import (
	"math/rand"
	"reflect"
	"testing"
)

func randomBoxes(rng *rand.Rand, n int) []Box {
	tables := []string{"t1", "t2", "t3"}
	cols := []string{"a", "b", "c"}
	out := make([]Box, n)
	for i := range out {
		b := Box{Tables: map[string]bool{tables[rng.Intn(len(tables))]: true}, Dims: map[string]Dim{}}
		for d := 0; d <= rng.Intn(2); d++ {
			col := cols[rng.Intn(len(cols))]
			switch rng.Intn(3) {
			case 0:
				v := float64(rng.Intn(5))
				b.Dims[col] = Dim{Interval: Interval{Lo: v, Hi: v}}
			case 1:
				lo := float64(rng.Intn(5)) * 10
				b.Dims[col] = Dim{Interval: Interval{Lo: lo, Hi: lo + 10}}
			default:
				b.Dims[col] = Dim{Set: map[string]bool{string(rune('x' + rng.Intn(3))): true}}
			}
		}
		out[i] = b
	}
	return out
}

func TestClusterBoxesFastEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		boxes := randomBoxes(rng, 200)
		for _, th := range []float64{0.1, 0.5, 0.9} {
			slow := ClusterBoxes(boxes, th)
			fast := ClusterBoxesFast(boxes, th)
			if len(slow) != len(fast) {
				t.Fatalf("trial %d th %.1f: %d vs %d clusters", trial, th, len(slow), len(fast))
			}
			for i := range slow {
				if slow[i].Representative != fast[i].Representative {
					t.Fatalf("trial %d th %.1f cluster %d: representative %d vs %d",
						trial, th, i, slow[i].Representative, fast[i].Representative)
				}
				if !reflect.DeepEqual(slow[i].Members, fast[i].Members) {
					t.Fatalf("trial %d th %.1f cluster %d: members differ\nslow: %v\nfast: %v",
						trial, th, i, slow[i].Members, fast[i].Members)
				}
			}
		}
	}
}

func TestClusterBoxesFastZeroThresholdFallback(t *testing.T) {
	boxes := randomBoxes(rand.New(rand.NewSource(1)), 30)
	slow := ClusterBoxes(boxes, 0)
	fast := ClusterBoxesFast(boxes, 0)
	if !reflect.DeepEqual(slow, fast) {
		t.Fatal("zero-threshold results differ")
	}
	if len(fast) != len(boxes) {
		t.Fatalf("threshold 0 must make singletons: %d clusters", len(fast))
	}
}

func TestSignatureDistinguishesBoxes(t *testing.T) {
	a := Box{Tables: map[string]bool{"t": true}, Dims: map[string]Dim{"a": {Interval: Interval{Lo: 1, Hi: 2}}}}
	b := Box{Tables: map[string]bool{"t": true}, Dims: map[string]Dim{"a": {Interval: Interval{Lo: 1, Hi: 3}}}}
	c := Box{Tables: map[string]bool{"t": true}, Dims: map[string]Dim{"a": {Set: map[string]bool{"x": true}}}}
	if signature(a) == signature(b) || signature(a) == signature(c) {
		t.Error("signatures collide")
	}
	// Map iteration order must not leak into the signature.
	d1 := Box{Tables: map[string]bool{"t1": true, "t2": true}, Dims: map[string]Dim{
		"a": {Set: map[string]bool{"x": true, "y": true}},
		"b": {Interval: Interval{Lo: 0, Hi: 1}},
	}}
	d2 := Box{Tables: map[string]bool{"t2": true, "t1": true}, Dims: map[string]Dim{
		"b": {Interval: Interval{Lo: 0, Hi: 1}},
		"a": {Set: map[string]bool{"y": true, "x": true}},
	}}
	for i := 0; i < 20; i++ {
		if signature(d1) != signature(d2) {
			t.Fatal("signature not canonical")
		}
	}
}
