package overlap

import (
	"testing"

	"sqlclean/internal/skeleton"
	"sqlclean/internal/sqlparser"
)

func box(t *testing.T, q string) Box {
	t.Helper()
	sel, err := sqlparser.ParseSelect(q)
	if err != nil {
		t.Fatalf("parse %q: %v", q, err)
	}
	return FromInfo(skeleton.Analyze(sel))
}

func TestIdenticalQueriesOverlapFully(t *testing.T) {
	a := box(t, "SELECT x FROM t WHERE id = 5")
	b := box(t, "SELECT y FROM t WHERE id = 5")
	if got := Overlap(a, b); got != 1 {
		t.Errorf("overlap: %v", got)
	}
	if Distance(a, b) != 0 {
		t.Error("distance must be 0")
	}
}

func TestDifferentValuesAreDisjoint(t *testing.T) {
	a := box(t, "SELECT x FROM t WHERE id = 5")
	b := box(t, "SELECT x FROM t WHERE id = 6")
	if got := Overlap(a, b); got != 0 {
		t.Errorf("overlap: %v", got)
	}
}

func TestDifferentTablesNeverOverlap(t *testing.T) {
	a := box(t, "SELECT x FROM t1 WHERE id = 5")
	b := box(t, "SELECT x FROM t2 WHERE id = 5")
	if got := Overlap(a, b); got != 0 {
		t.Errorf("overlap: %v", got)
	}
}

func TestRangeOverlapIsProportional(t *testing.T) {
	a := box(t, "SELECT x FROM t WHERE r BETWEEN 0 AND 10")
	b := box(t, "SELECT x FROM t WHERE r BETWEEN 5 AND 15")
	got := Overlap(a, b)
	// Intersection [5,10] = 5, union hull [0,15] = 15 → 1/3.
	if got < 0.33 || got > 0.34 {
		t.Errorf("overlap: %v", got)
	}
}

func TestDisjointRangesSlidingWindows(t *testing.T) {
	a := box(t, "SELECT count(*) FROM t WHERE h >= 0 AND h <= 99")
	b := box(t, "SELECT count(*) FROM t WHERE h >= 100 AND h <= 199")
	if got := Overlap(a, b); got > 0.001 {
		t.Errorf("SWS windows must be (near) disjoint: %v", got)
	}
}

func TestStringEqualitySets(t *testing.T) {
	a := box(t, "SELECT x FROM t WHERE name = 'Galaxy'")
	b := box(t, "SELECT x FROM t WHERE name = 'Galaxy'")
	c := box(t, "SELECT x FROM t WHERE name = 'Star'")
	if Overlap(a, b) != 1 {
		t.Error("same string: want 1")
	}
	if Overlap(a, c) != 0 {
		t.Error("different string: want 0")
	}
}

func TestCaseInsensitiveStringValues(t *testing.T) {
	a := box(t, "SELECT x FROM t WHERE name = 'galaxy'")
	b := box(t, "SELECT x FROM t WHERE name = 'GALAXY'")
	if Overlap(a, b) != 1 {
		t.Error("string comparison must be case-insensitive")
	}
}

func TestInListOverlap(t *testing.T) {
	a := box(t, "SELECT x FROM t WHERE id IN (1, 2, 3)")
	b := box(t, "SELECT x FROM t WHERE id IN (2, 3, 4)")
	got := Overlap(a, b)
	// |{2,3}| / |{1,2,3,4}| = 0.5.
	if got != 0.5 {
		t.Errorf("overlap: %v", got)
	}
}

func TestUnconstrainedColumnIsFullDomain(t *testing.T) {
	a := box(t, "SELECT x FROM t WHERE id = 5 AND r BETWEEN 0 AND 10")
	b := box(t, "SELECT x FROM t WHERE id = 5")
	got := Overlap(a, b)
	// Same id point; r constrained vs full domain → tiny but nonzero.
	if got <= 0 || got >= 0.01 {
		t.Errorf("overlap: %v", got)
	}
}

func TestHalfOpenRanges(t *testing.T) {
	a := box(t, "SELECT x FROM t WHERE r > 10")
	b := box(t, "SELECT x FROM t WHERE r < 5")
	if got := Overlap(a, b); got != 0 {
		t.Errorf("disjoint half-open ranges: %v", got)
	}
	c := box(t, "SELECT x FROM t WHERE r > 10")
	if got := Overlap(a, c); got != 1 {
		t.Errorf("identical half-open ranges: %v", got)
	}
}

func TestConjunctionTightensInterval(t *testing.T) {
	a := box(t, "SELECT x FROM t WHERE h >= 10 AND h <= 20")
	b := box(t, "SELECT x FROM t WHERE h BETWEEN 10 AND 20")
	if got := Overlap(a, b); got != 1 {
		t.Errorf(">=/<= pair must equal BETWEEN: %v", got)
	}
}

func TestOverlapIsSymmetric(t *testing.T) {
	qs := []string{
		"SELECT x FROM t WHERE id = 5",
		"SELECT x FROM t WHERE r BETWEEN 0 AND 10",
		"SELECT x FROM t WHERE r BETWEEN 5 AND 15",
		"SELECT x FROM t WHERE name = 'a'",
		"SELECT x FROM t",
	}
	for i := range qs {
		for j := range qs {
			a, b := box(t, qs[i]), box(t, qs[j])
			if Overlap(a, b) != Overlap(b, a) {
				t.Errorf("asymmetric for %q vs %q", qs[i], qs[j])
			}
		}
	}
}

func TestOverlapBounded(t *testing.T) {
	qs := []string{
		"SELECT x FROM t WHERE id = 5",
		"SELECT x FROM t WHERE id IN (1,2)",
		"SELECT x FROM t WHERE r > 3",
		"SELECT x FROM t",
		"SELECT x FROM t WHERE name = 'v' AND r BETWEEN 1 AND 2",
	}
	for i := range qs {
		for j := range qs {
			v := Overlap(box(t, qs[i]), box(t, qs[j]))
			if v < 0 || v > 1 {
				t.Errorf("overlap out of range: %v", v)
			}
		}
	}
}

func TestClusterBoxesLeader(t *testing.T) {
	boxes := []Box{
		box(t, "SELECT x FROM t WHERE id = 1"),
		box(t, "SELECT y FROM t WHERE id = 1"), // same region
		box(t, "SELECT x FROM t WHERE id = 2"), // new region
		box(t, "SELECT x FROM t WHERE id = 1"), // back to first
	}
	clusters := ClusterBoxes(boxes, 0.5)
	if len(clusters) != 2 {
		t.Fatalf("clusters: %+v", clusters)
	}
	if len(clusters[0].Members) != 3 || len(clusters[1].Members) != 1 {
		t.Errorf("membership: %+v", clusters)
	}
	if clusters[0].Representative != 0 {
		t.Errorf("leader: %+v", clusters[0])
	}
}

func TestSummarize(t *testing.T) {
	clusters := []Cluster{
		{Members: []int{0, 1, 2}},
		{Members: []int{3}},
		{Members: []int{4, 5}},
	}
	st := Summarize(clusters)
	if st.Count != 3 || st.AvgSize != 2 {
		t.Errorf("stats: %+v", st)
	}
	if st.Sizes[0] != 3 || st.Sizes[1] != 2 || st.Sizes[2] != 1 {
		t.Errorf("sizes not descending: %v", st.Sizes)
	}
	empty := Summarize(nil)
	if empty.Count != 0 || empty.AvgSize != 0 {
		t.Errorf("empty: %+v", empty)
	}
}

func TestClusterEmptyInput(t *testing.T) {
	if got := ClusterBoxes(nil, 0.5); len(got) != 0 {
		t.Errorf("got %v", got)
	}
}

func TestCombineDimsConjunction(t *testing.T) {
	// Two numeric constraints on one column intersect.
	a := box(t, "SELECT x FROM t WHERE h >= 10 AND h >= 20")
	b := box(t, "SELECT x FROM t WHERE h >= 20")
	if Overlap(a, b) != 1 {
		t.Error("tighter bound must win in a conjunction")
	}
	// Two string sets intersect.
	c := box(t, "SELECT x FROM t WHERE name = 'a' AND name = 'a'")
	d := box(t, "SELECT x FROM t WHERE name = 'a'")
	if Overlap(c, d) != 1 {
		t.Error("repeated string equality must intersect to itself")
	}
}

func TestComplexPredicatesIgnored(t *testing.T) {
	// OR trees contribute no box constraint: the query may touch anything
	// in the table, so it overlaps fully with an unconstrained query.
	a := box(t, "SELECT x FROM t WHERE a = 1 OR b = 2")
	b := box(t, "SELECT x FROM t")
	if Overlap(a, b) != 1 {
		t.Errorf("complex-only constraints: %v", Overlap(a, b))
	}
}

func TestMixedSetAndInterval(t *testing.T) {
	a := box(t, "SELECT x FROM t WHERE name = 'a'")
	b := box(t, "SELECT x FROM t WHERE name LIKE 'a%'") // LIKE → no box dim? LIKE extracts no Dim
	// b has no 'name' constraint, so the comparison is set vs full domain.
	got := Overlap(a, b)
	if got != 0 {
		t.Errorf("set vs full-domain: %v", got)
	}
}
