// Package overlap reproduces the downstream analysis of the paper's §6.9:
// the user-interest clustering of Nguyen et al. [1]. Each query is reduced
// to the region of the data space it accesses — per-column intervals or
// value sets derived from its WHERE clause plus the set of tables it reads —
// and two queries are clustered together when the overlap of their regions
// exceeds a threshold. The paper observed that the distance is almost always
// 0 (identical regions) or 1 (disjoint regions); the box model reproduces
// exactly that behaviour.
package overlap

import (
	"math"
	"sort"
	"strconv"
	"strings"

	"sqlclean/internal/skeleton"
)

// Interval is a numeric range; Lo > Hi encodes the empty interval.
type Interval struct {
	Lo, Hi float64
}

// full is the clamped "whole domain" used for unbounded predicates.
var full = Interval{Lo: -1e12, Hi: 1e12}

func (iv Interval) empty() bool { return iv.Lo > iv.Hi }

func (iv Interval) length() float64 {
	if iv.empty() {
		return 0
	}
	return iv.Hi - iv.Lo
}

func intersect(a, b Interval) Interval {
	return Interval{Lo: math.Max(a.Lo, b.Lo), Hi: math.Min(a.Hi, b.Hi)}
}

func hull(a, b Interval) Interval {
	return Interval{Lo: math.Min(a.Lo, b.Lo), Hi: math.Max(a.Hi, b.Hi)}
}

// Dim constrains one column: either a numeric interval or a discrete value
// set (string equality / IN lists).
type Dim struct {
	Interval Interval
	Set      map[string]bool // non-nil for discrete constraints
}

// Box is the accessed region of one query.
type Box struct {
	// Tables are the lower-cased base tables the query reads. Queries over
	// disjoint table sets never overlap.
	Tables map[string]bool
	// Dims maps lower-cased column names to their constraint.
	Dims map[string]Dim
}

// FromInfo derives the box of a query from its skeleton summary.
func FromInfo(in *skeleton.Info) Box {
	b := Box{Tables: map[string]bool{}, Dims: map[string]Dim{}}
	for _, t := range in.TableNames {
		b.Tables[t] = true
	}
	for _, p := range in.Predicates {
		if p.Column == "" || p.Op == "complex" {
			continue
		}
		d, ok := dimFromPredicate(p)
		if !ok {
			continue
		}
		if prev, exists := b.Dims[p.Column]; exists {
			b.Dims[p.Column] = combineDims(prev, d)
			continue
		}
		b.Dims[p.Column] = d
	}
	return b
}

func dimFromPredicate(p skeleton.Predicate) (Dim, bool) {
	num := func(i int) (float64, bool) {
		if i >= len(p.Literals) || p.Literals[i].Kind != "num" {
			return 0, false
		}
		f, err := strconv.ParseFloat(p.Literals[i].Val, 64)
		return f, err == nil
	}
	switch p.Op {
	case "=":
		if v, ok := num(0); ok {
			return Dim{Interval: Interval{Lo: v, Hi: v}}, true
		}
		if len(p.Literals) == 1 && p.Literals[0].Kind == "str" {
			return Dim{Set: map[string]bool{strings.ToLower(p.Literals[0].Val): true}}, true
		}
	case "<", "<=":
		if v, ok := num(0); ok {
			return Dim{Interval: Interval{Lo: full.Lo, Hi: v}}, true
		}
	case ">", ">=":
		if v, ok := num(0); ok {
			return Dim{Interval: Interval{Lo: v, Hi: full.Hi}}, true
		}
	case "BETWEEN":
		lo, ok1 := num(0)
		hi, ok2 := num(1)
		if ok1 && ok2 {
			return Dim{Interval: Interval{Lo: lo, Hi: hi}}, true
		}
	case "IN":
		set := map[string]bool{}
		numeric := true
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, l := range p.Literals {
			if l.Kind == "num" {
				f, err := strconv.ParseFloat(l.Val, 64)
				if err == nil {
					lo = math.Min(lo, f)
					hi = math.Max(hi, f)
					set[l.Val] = true
					continue
				}
			}
			numeric = false
			set[strings.ToLower(l.Val)] = true
		}
		if len(set) == 0 {
			return Dim{}, false
		}
		if numeric {
			// Discrete numeric sets behave like value sets for overlap.
			return Dim{Set: set, Interval: Interval{Lo: lo, Hi: hi}}, true
		}
		return Dim{Set: set}, true
	}
	return Dim{}, false
}

func combineDims(a, b Dim) Dim {
	if a.Set != nil && b.Set != nil {
		out := map[string]bool{}
		for k := range a.Set {
			if b.Set[k] {
				out[k] = true
			}
		}
		return Dim{Set: out}
	}
	return Dim{Interval: intersect(orFull(a.Interval), orFull(b.Interval))}
}

func orFull(iv Interval) Interval {
	if iv == (Interval{}) {
		return full
	}
	return iv
}

// Overlap returns the overlap of two boxes in [0, 1]: the product over the
// union of constrained columns of per-dimension intersection-over-union.
// Disjoint table sets yield 0; identical constraints yield 1.
func Overlap(a, b Box) float64 {
	shared := false
	for t := range a.Tables {
		if b.Tables[t] {
			shared = true
			break
		}
	}
	if !shared && (len(a.Tables) > 0 || len(b.Tables) > 0) {
		return 0
	}
	ratio := 1.0
	cols := map[string]bool{}
	for c := range a.Dims {
		cols[c] = true
	}
	for c := range b.Dims {
		cols[c] = true
	}
	for c := range cols {
		da, okA := a.Dims[c]
		db, okB := b.Dims[c]
		if !okA {
			da = Dim{Interval: full}
		}
		if !okB {
			db = Dim{Interval: full}
		}
		ratio *= dimOverlap(da, db)
		if ratio == 0 {
			return 0
		}
	}
	return ratio
}

func dimOverlap(a, b Dim) float64 {
	if a.Set != nil && b.Set != nil {
		inter, union := 0, len(a.Set)
		for k := range b.Set {
			if a.Set[k] {
				inter++
			} else {
				union++
			}
		}
		if union == 0 {
			return 1
		}
		return float64(inter) / float64(union)
	}
	if a.Set != nil || b.Set != nil {
		// A value set against an interval: overlap is the fraction of set
		// members inside the interval, damped by the interval's size; the
		// paper's observation that mixed constraints rarely overlap is
		// preserved by returning 0 unless both are points.
		sa, iv := a, orFull(b.Interval)
		if b.Set != nil {
			sa, iv = b, orFull(a.Interval)
		}
		if iv.length() == 0 {
			// Point interval vs set: overlap 1/|set| when the point is in
			// the set.
			if sa.Set[strconv.FormatFloat(iv.Lo, 'g', -1, 64)] {
				return 1 / float64(len(sa.Set))
			}
		}
		return 0
	}
	ia, ib := orFull(a.Interval), orFull(b.Interval)
	inter := intersect(ia, ib)
	if inter.empty() {
		return 0
	}
	u := hull(ia, ib).length()
	if u == 0 {
		return 1 // both are the same point
	}
	if inter.length() == 0 {
		// Point inside a wider interval: infinitesimal overlap.
		return 0
	}
	return inter.length() / u
}

// Distance is 1 − Overlap.
func Distance(a, b Box) float64 { return 1 - Overlap(a, b) }

// ---------------------------------------------------------------------------
// Threshold clustering
// ---------------------------------------------------------------------------

// Cluster is one group of queries; Members are indices into the clustered
// slice.
type Cluster struct {
	// Representative is the index of the first member (the leader).
	Representative int
	Members        []int
}

// Size returns the number of members.
func (c Cluster) Size() int { return len(c.Members) }

// ClusterBoxes runs leader clustering: each box joins the first cluster
// whose representative is at distance below threshold, or founds a new
// cluster. Worst case O(n·k) with k clusters — the O(n²) regime the paper's
// runtime plot shows.
func ClusterBoxes(boxes []Box, threshold float64) []Cluster {
	var clusters []Cluster
	for i, b := range boxes {
		placed := false
		for ci := range clusters {
			rep := boxes[clusters[ci].Representative]
			if Distance(b, rep) < threshold {
				clusters[ci].Members = append(clusters[ci].Members, i)
				placed = true
				break
			}
		}
		if !placed {
			clusters = append(clusters, Cluster{Representative: i, Members: []int{i}})
		}
	}
	return clusters
}

// Stats summarizes a clustering.
type Stats struct {
	Count   int
	AvgSize float64
	// Sizes are the cluster sizes in descending order (Fig. 4's rank
	// plots).
	Sizes []int
}

// Summarize computes clustering statistics.
func Summarize(clusters []Cluster) Stats {
	st := Stats{Count: len(clusters)}
	total := 0
	for _, c := range clusters {
		total += c.Size()
		st.Sizes = append(st.Sizes, c.Size())
	}
	if st.Count > 0 {
		st.AvgSize = float64(total) / float64(st.Count)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(st.Sizes)))
	return st
}
