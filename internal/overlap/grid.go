package overlap

import (
	"math"
	"sort"
	"strconv"

	"sqlclean/internal/parallel"
)

// This file removes the quadratic tail from leader clustering. ClusterBoxes
// compares every box against every existing leader, which degenerates to
// O(n²) exactly when the log is interesting: SkyServer's marching-window
// bots produce tens of thousands of *distinct* boxes, so the signature
// dedup in fast.go stops helping. The grid path buckets leaders by
// (column, constraint locality) so a box probes only the leaders it could
// possibly merge with, and the pruning is EXACT: the output is
// byte-identical to ClusterBoxes for every threshold.
//
// Why pruning can be exact. Let s = 1 − threshold. A box b joins leader r
// iff Distance(b, r) < threshold, i.e. Overlap(b, r) > s. Overlap is a
// product of per-column factors, each in [0, 1], so Overlap ≤ every factor:
// if ANY single column's factor is ≤ s the pair cannot merge. The grid
// picks one "anchor" column of b whose factor against an unconstrained
// leader (the full domain) is ≤ s; then every leader that does not
// constrain the anchor column is pruned outright, and the leaders that do
// constrain it are indexed so that only the ones whose per-column factor
// can exceed s are probed:
//
//   - set constraints: Jaccard > s ≥ 0 needs a shared element (or two empty
//     sets), so set leaders are indexed under each element;
//   - point intervals: the only non-zero interval partner is the identical
//     point (factor 1), and a set partner needs the formatted point as a
//     member (factor 1/|set|) — both are hash lookups;
//   - proper intervals: factor inter/hull > s bounds the hull by
//     len(b)/s, so a matching leader's Lo lies within R = len(b)/s of b's
//     Lo; quantizing leader Lo into cells of width w makes that a probe of
//     the cells covering [Lo−R, Lo+R]. Any fixed w is exact — w only
//     tunes how many leaders share a cell.
//
// Boxes with no qualifying anchor (no dims at all, or s = 0 with only
// proper intervals whose full-domain factor is positive) fall back to a
// table-keyed index, which is still exact because disjoint table sets give
// Overlap 0.

// Counters reports the work a grid clustering run did versus what the
// serial leader scan would have done on the same input. All counts refer to
// pairwise Overlap evaluations (the expensive unit of clustering work), not
// wall clock.
type Counters struct {
	// Boxes is the number of boxes clustered.
	Boxes int64
	// Comparisons is the number of Overlap evaluations performed.
	Comparisons int64
	// CellsProbed is the number of grid cells examined for interval
	// anchors.
	CellsProbed int64
	// ScanComparisons is the number of Overlap evaluations the plain
	// ClusterBoxes leader scan would have performed. Because grid output is
	// identical to the scan's, this counterfactual is exact: a box that
	// joined cluster ci would have been compared against leaders 0..ci,
	// and a box that founded a cluster against every prior leader.
	ScanComparisons int64
}

// Avoided is the number of pairwise comparisons the grid pruned away.
func (c Counters) Avoided() int64 { return c.ScanComparisons - c.Comparisons }

// Add accumulates other into c.
func (c *Counters) Add(other Counters) {
	c.Boxes += other.Boxes
	c.Comparisons += other.Comparisons
	c.CellsProbed += other.CellsProbed
	c.ScanComparisons += other.ScanComparisons
}

// ClusterBoxesGrid is ClusterBoxes with exact grid pruning: identical
// output, near-linear on logs whose boxes are local (the common case — real
// predicates constrain a few columns with bounded ranges).
func ClusterBoxesGrid(boxes []Box, threshold float64) []Cluster {
	return ClusterBoxesGridCounted(boxes, threshold, nil)
}

// ClusterBoxesGridCounted is ClusterBoxesGrid with work counters; ctr may
// be nil.
func ClusterBoxesGridCounted(boxes []Box, threshold float64, ctr *Counters) []Cluster {
	if cl, done := trivialClusters(boxes, threshold, ctr); done {
		return cl
	}
	if ctr != nil {
		ctr.Boxes += int64(len(boxes))
	}
	g := newGridIndex(boxes, threshold)
	var clusters []Cluster
	var cand []int
	for i, b := range boxes {
		cand = g.lookup(b, cand[:0], ctr)
		joined := -1
		for _, ci := range cand {
			if ctr != nil {
				ctr.Comparisons++
			}
			if Distance(b, boxes[clusters[ci].Representative]) < threshold {
				joined = ci
				break
			}
		}
		if joined >= 0 {
			clusters[joined].Members = append(clusters[joined].Members, i)
			if ctr != nil {
				ctr.ScanComparisons += int64(joined) + 1
			}
			continue
		}
		if ctr != nil {
			ctr.ScanComparisons += int64(len(clusters))
		}
		g.add(b, len(clusters))
		clusters = append(clusters, Cluster{Representative: i, Members: []int{i}})
	}
	return clusters
}

// ClusterBoxesGridParallel clusters with grid pruning using up to `workers`
// goroutines. Output is byte-identical to ClusterBoxes for every worker
// count: boxes are processed in input-order batches; a parallel phase
// matches each batch box against the leaders founded before the batch
// (read-only index), and a serial merge phase resolves intra-batch
// founding in input order. A pre-batch match always wins because pre-batch
// clusters precede batch-founded ones in founding order.
func ClusterBoxesGridParallel(boxes []Box, threshold float64, workers int) []Cluster {
	return ClusterBoxesGridParallelCounted(boxes, threshold, workers, nil)
}

// ClusterBoxesGridParallelCounted is ClusterBoxesGridParallel with work
// counters; ctr may be nil. Cluster output does not depend on the worker
// count; the counter totals can (batch boundaries shift which phase pays
// for a probe), but ScanComparisons and the final clustering never do.
func ClusterBoxesGridParallelCounted(boxes []Box, threshold float64, workers int, ctr *Counters) []Cluster {
	w := parallel.Workers(workers)
	if w <= 1 || len(boxes) < 2*gridMinBatch || threshold <= 0 || threshold > 1 {
		return ClusterBoxesGridCounted(boxes, threshold, ctr)
	}
	if ctr != nil {
		ctr.Boxes += int64(len(boxes))
	}
	g := newGridIndex(boxes, threshold)
	var clusters []Cluster

	batch := len(boxes) / (w * 4)
	if batch < gridMinBatch {
		batch = gridMinBatch
	}
	if batch > gridMaxBatch {
		batch = gridMaxBatch
	}

	type probe struct {
		match        int // first matching pre-batch cluster, or -1
		comps, cells int64
	}
	var scratch []int
	for start := 0; start < len(boxes); start += batch {
		end := start + batch
		if end > len(boxes) {
			end = len(boxes)
		}
		res := parallel.Map(w, boxes[start:end], func(_ int, b Box) probe {
			var local Counters
			cand := g.lookup(b, nil, &local)
			m := -1
			for _, ci := range cand {
				local.Comparisons++
				if Distance(b, boxes[clusters[ci].Representative]) < threshold {
					m = ci
					break
				}
			}
			return probe{match: m, comps: local.Comparisons, cells: local.CellsProbed}
		})

		firstBatch := len(clusters)
		for off, pr := range res {
			i := start + off
			if ctr != nil {
				ctr.Comparisons += pr.comps
				ctr.CellsProbed += pr.cells
			}
			ci := pr.match
			if ci < 0 && len(clusters) > firstBatch {
				// No pre-batch leader matched; probe the leaders founded
				// earlier in this batch, in founding order.
				scratch = g.lookup(boxes[i], scratch[:0], ctr)
				for _, c := range scratch[sort.SearchInts(scratch, firstBatch):] {
					if ctr != nil {
						ctr.Comparisons++
					}
					if Distance(boxes[i], boxes[clusters[c].Representative]) < threshold {
						ci = c
						break
					}
				}
			}
			if ci >= 0 {
				clusters[ci].Members = append(clusters[ci].Members, i)
				if ctr != nil {
					ctr.ScanComparisons += int64(ci) + 1
				}
				continue
			}
			if ctr != nil {
				ctr.ScanComparisons += int64(len(clusters))
			}
			g.add(boxes[i], len(clusters))
			clusters = append(clusters, Cluster{Representative: i, Members: []int{i}})
		}
	}
	return clusters
}

const (
	gridMinBatch = 256
	gridMaxBatch = 8192
)

// trivialClusters handles the degenerate thresholds where no Overlap call
// is ever needed: threshold ≤ 0 never merges (Distance ≥ 0), threshold > 1
// always merges (Distance ≤ 1).
func trivialClusters(boxes []Box, threshold float64, ctr *Counters) ([]Cluster, bool) {
	n := int64(len(boxes))
	if threshold <= 0 {
		if ctr != nil {
			ctr.Boxes += n
			ctr.ScanComparisons += n * (n - 1) / 2
		}
		out := make([]Cluster, len(boxes))
		for i := range boxes {
			out[i] = Cluster{Representative: i, Members: []int{i}}
		}
		return out, true
	}
	if threshold > 1 {
		if ctr != nil {
			ctr.Boxes += n
			if n > 1 {
				ctr.ScanComparisons += n - 1
			}
		}
		if len(boxes) == 0 {
			return nil, true
		}
		members := make([]int, len(boxes))
		for i := range members {
			members[i] = i
		}
		return []Cluster{{Representative: 0, Members: members}}, true
	}
	return nil, false
}

// ---------------------------------------------------------------------------
// The leader index
// ---------------------------------------------------------------------------

// Per-column key namespaces. One map per column holds discrete constraints:
// set elements and formatted point/empty-interval values share the "s" space
// because dimOverlap matches a set element against the formatted Lo of a
// zero-length interval; numerically-keyed points get an extra "p" entry so
// that -0 and +0 (distinct strings, equal points) still find each other.
const (
	keySetPrefix   = "s\x00"
	keyPointPrefix = "p\x00"
	keyEmptySet    = "e"
)

type anchorKind int

const (
	anchorNone anchorKind = iota
	anchorSet
	anchorEmptyInterval
	anchorPoint
	anchorInterval
)

type gridIndex struct {
	threshold float64
	s         float64 // 1 − threshold: the factor every column must beat
	byTable   map[string][]int
	elems     map[string]map[string][]int // col -> discrete key -> leaders
	cells     map[string]map[int64][]int  // col -> cell(Lo/width) -> leaders
	flat      map[string][]int            // col -> all proper-interval leaders
	width     map[string]float64          // col -> cell width
}

func newGridIndex(boxes []Box, threshold float64) *gridIndex {
	g := &gridIndex{
		threshold: threshold,
		s:         1 - threshold,
		byTable:   map[string][]int{},
		elems:     map[string]map[string][]int{},
		cells:     map[string]map[int64][]int{},
		flat:      map[string][]int{},
		width:     map[string]float64{},
	}
	// Cell width per column: the median proper-interval length in the
	// input. Any positive width keeps pruning exact; matching the typical
	// constraint size keeps both the cells-per-probe and the
	// leaders-per-cell counts small.
	lengths := map[string][]float64{}
	for _, b := range boxes {
		for col, d := range b.Dims {
			if d.Set != nil {
				continue
			}
			if l := orFull(d.Interval).length(); l > 0 {
				lengths[col] = append(lengths[col], l)
			}
		}
	}
	for col, ls := range lengths {
		sort.Float64s(ls)
		w := ls[len(ls)/2]
		if !(w > 0 && w < math.MaxFloat64) {
			w = 1
		}
		g.width[col] = w
	}
	return g
}

func (g *gridIndex) colWidth(col string) float64 {
	if w, ok := g.width[col]; ok {
		return w
	}
	return 1
}

func cellOf(x, w float64) int64 {
	c := math.Floor(x / w)
	const clamp = 1e18
	if c < -clamp {
		return -clamp
	}
	if c > clamp {
		return clamp
	}
	return int64(c)
}

// pointKey formats a point numerically: −0 folds to +0 so equal points map
// to equal keys.
func pointKey(p float64) string {
	if p == 0 {
		p = 0 // fold −0
	}
	return strconv.FormatFloat(p, 'g', -1, 64)
}

// add indexes the representative of a newly founded cluster.
func (g *gridIndex) add(b Box, ci int) {
	if len(b.Tables) == 0 {
		g.byTable[""] = append(g.byTable[""], ci)
	} else {
		for t := range b.Tables {
			g.byTable[t] = append(g.byTable[t], ci)
		}
	}
	for col, d := range b.Dims {
		em := g.elems[col]
		if em == nil {
			em = map[string][]int{}
			g.elems[col] = em
		}
		if d.Set != nil {
			if len(d.Set) == 0 {
				em[keyEmptySet] = append(em[keyEmptySet], ci)
			}
			for v := range d.Set {
				em[keySetPrefix+v] = append(em[keySetPrefix+v], ci)
			}
			continue
		}
		iv := orFull(d.Interval)
		switch {
		case iv.empty():
			// An empty interval still matches a set containing its
			// formatted Lo (dimOverlap's zero-length branch), so it lives
			// in the "s" space; no interval partner can match it.
			k := keySetPrefix + strconv.FormatFloat(iv.Lo, 'g', -1, 64)
			em[k] = append(em[k], ci)
		case iv.length() == 0:
			k := keySetPrefix + strconv.FormatFloat(iv.Lo, 'g', -1, 64)
			em[k] = append(em[k], ci)
			pk := keyPointPrefix + pointKey(iv.Lo)
			em[pk] = append(em[pk], ci)
		default:
			c := cellOf(iv.Lo, g.colWidth(col))
			cm := g.cells[col]
			if cm == nil {
				cm = map[int64][]int{}
				g.cells[col] = cm
			}
			cm[c] = append(cm[c], ci)
			g.flat[col] = append(g.flat[col], ci)
		}
	}
}

// anchor picks the column of b that prunes best: a column whose factor
// against an unconstrained leader is ≤ s, preferring the probe kinds with
// the cheapest lookups. Returns anchorNone when no column qualifies (then
// the caller falls back to the table index).
func (g *gridIndex) anchor(b Box) (string, Dim, anchorKind) {
	bestKind := anchorNone
	bestCol := ""
	bestDim := Dim{}
	bestSize := math.MaxFloat64
	consider := func(col string, d Dim, kind anchorKind, size float64) {
		if kind == anchorNone {
			return
		}
		better := kind < bestKind || bestKind == anchorNone
		if kind == bestKind {
			better = size < bestSize || (size == bestSize && col < bestCol)
		}
		if better {
			bestKind, bestCol, bestDim, bestSize = kind, col, d, size
		}
	}
	for col, d := range b.Dims {
		if d.Set != nil {
			consider(col, d, anchorSet, float64(len(d.Set)))
			continue
		}
		iv := orFull(d.Interval)
		switch {
		case iv.empty():
			consider(col, d, anchorEmptyInterval, 0)
		case iv.length() == 0:
			consider(col, d, anchorPoint, 0)
		default:
			// A proper interval qualifies only when its factor against
			// the full domain cannot beat s.
			if dimOverlap(d, Dim{Interval: full}) <= g.s {
				consider(col, d, anchorInterval, iv.length())
			}
		}
	}
	return bestCol, bestDim, bestKind
}

// lookup returns the founding-order-sorted cluster indices whose leaders
// could be within threshold of b. The set is a superset of the true
// matches (the caller verifies with Distance) and exact: every leader with
// Overlap(b, leader) > s is included.
func (g *gridIndex) lookup(b Box, out []int, ctr *Counters) []int {
	col, d, kind := g.anchor(b)
	switch kind {
	case anchorNone:
		// No prunable column: any leader sharing a table (or, for a
		// table-less box, any table-less leader) might match.
		if len(b.Tables) == 0 {
			out = append(out, g.byTable[""]...)
		} else {
			for t := range b.Tables {
				out = append(out, g.byTable[t]...)
			}
		}
	case anchorSet:
		em := g.elems[col]
		if len(d.Set) == 0 {
			out = append(out, em[keyEmptySet]...)
		}
		for v := range d.Set {
			out = append(out, em[keySetPrefix+v]...)
		}
	case anchorEmptyInterval:
		iv := orFull(d.Interval)
		out = append(out, g.elems[col][keySetPrefix+strconv.FormatFloat(iv.Lo, 'g', -1, 64)]...)
	case anchorPoint:
		em := g.elems[col]
		iv := orFull(d.Interval)
		out = append(out, em[keySetPrefix+strconv.FormatFloat(iv.Lo, 'g', -1, 64)]...)
		out = append(out, em[keyPointPrefix+pointKey(iv.Lo)]...)
	case anchorInterval:
		iv := orFull(d.Interval)
		flat := g.flat[col]
		probedCells := false
		if g.s > 0 {
			// A leader with factor > s sits within R of b's Lo (hull <
			// inter/s ≤ len(b)/s); the tiny inflation and the ±1 cell
			// absorb floating-point rounding — a superset stays exact.
			r := iv.length() / g.s
			r += r * 1e-9
			w := g.colWidth(col)
			cLo := cellOf(iv.Lo-r, w) - 1
			cHi := cellOf(iv.Lo+r, w) + 1
			if n := cHi - cLo + 1; n > 0 && n <= int64(len(flat)) {
				cm := g.cells[col]
				for c := cLo; c <= cHi; c++ {
					if ctr != nil {
						ctr.CellsProbed++
					}
					out = append(out, cm[c]...)
				}
				probedCells = true
			}
		}
		if !probedCells {
			out = append(out, flat...)
		}
	}
	return sortedUnique(out)
}

// sortedUnique sorts xs ascending and removes duplicates in place.
func sortedUnique(xs []int) []int {
	if len(xs) < 2 {
		return xs
	}
	sort.Ints(xs)
	out := xs[:1]
	for _, x := range xs[1:] {
		if x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}
