package overlap

import (
	"fmt"
	"math/rand"
	"reflect"
	"strconv"
	"testing"
)

// Thresholds the equivalence suite sweeps: the degenerate ends, the paper's
// operating point (0.9), and two mid-range values.
var gridThresholds = []float64{0, 0.1, 0.5, 0.9, 1.0}

var gridWorkerCounts = []int{1, 2, 4, 8}

// randGridBox draws a box from a deliberately nasty distribution: small
// value pools (so identical and near-identical boxes recur), every Dim
// shape dimOverlap distinguishes (proper/point/empty/full/zero-value
// intervals, string sets, numeric IN sets), and interval endpoints placed
// both on and just off integer cell boundaries.
func randGridBox(r *rand.Rand) Box {
	b := Box{Tables: map[string]bool{}, Dims: map[string]Dim{}}
	tables := []string{"photoobj", "specobj", "neighbors"}
	for _, t := range tables {
		if r.Intn(3) == 0 {
			b.Tables[t] = true
		}
	}
	cols := []string{"ra", "dec", "htmid", "objid", "name"}
	for _, c := range cols {
		if r.Intn(2) != 0 {
			continue
		}
		switch r.Intn(7) {
		case 0: // proper interval, length 1, lo on a small lattice
			lo := float64(r.Intn(20))
			b.Dims[c] = Dim{Interval: Interval{Lo: lo, Hi: lo + 1}}
		case 1: // proper interval straddling integer boundaries
			lo := float64(r.Intn(20)) - 0.5
			b.Dims[c] = Dim{Interval: Interval{Lo: lo, Hi: lo + float64(1+r.Intn(3))}}
		case 2: // point (some collide with set members below)
			b.Dims[c] = Dim{Interval: Interval{Lo: float64(r.Intn(6)), Hi: float64(r.Intn(6))}}
			v := float64(r.Intn(6))
			b.Dims[c] = Dim{Interval: Interval{Lo: v, Hi: v}}
		case 3: // empty interval (contradictory range predicate)
			lo := float64(r.Intn(6))
			b.Dims[c] = Dim{Interval: Interval{Lo: lo, Hi: lo - 1}}
		case 4: // string set
			set := map[string]bool{}
			for i := 0; i <= r.Intn(3); i++ {
				set[fmt.Sprintf("v%d", r.Intn(6))] = true
			}
			b.Dims[c] = Dim{Set: set}
		case 5: // numeric IN: set plus covering interval, as dimFromPredicate builds
			set := map[string]bool{}
			lo, hi := 1e18, -1e18
			for i := 0; i <= r.Intn(3); i++ {
				v := float64(r.Intn(6))
				set[strconv.FormatFloat(v, 'g', -1, 64)] = true
				if v < lo {
					lo = v
				}
				if v > hi {
					hi = v
				}
			}
			b.Dims[c] = Dim{Set: set, Interval: Interval{Lo: lo, Hi: hi}}
		case 6: // unconstrained encodings: explicit full or the zero value
			if r.Intn(2) == 0 {
				b.Dims[c] = Dim{Interval: full}
			} else {
				b.Dims[c] = Dim{}
			}
		}
	}
	return b
}

func requireSameClustering(t *testing.T, want, got []Cluster, label string) {
	t.Helper()
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("%s diverged from ClusterBoxes:\n want %+v\n  got %+v", label, want, got)
	}
}

// checkGridEquivalence asserts that the grid path — serial and parallel at
// every worker count — is byte-identical to the quadratic leader scan.
func checkGridEquivalence(t *testing.T, boxes []Box, threshold float64) {
	t.Helper()
	want := ClusterBoxes(boxes, threshold)
	var ctr Counters
	got := ClusterBoxesGridCounted(boxes, threshold, &ctr)
	requireSameClustering(t, want, got, fmt.Sprintf("grid(t=%g)", threshold))
	if ctr.Comparisons > ctr.ScanComparisons {
		t.Fatalf("t=%g: grid did more comparisons (%d) than the scan would (%d)",
			threshold, ctr.Comparisons, ctr.ScanComparisons)
	}
	for _, w := range gridWorkerCounts {
		var pctr Counters
		gotP := ClusterBoxesGridParallelCounted(boxes, threshold, w, &pctr)
		requireSameClustering(t, want, gotP, fmt.Sprintf("grid-parallel(t=%g,w=%d)", threshold, w))
		if pctr.ScanComparisons != ctr.ScanComparisons {
			t.Fatalf("t=%g w=%d: counterfactual scan count changed: %d vs %d",
				threshold, w, pctr.ScanComparisons, ctr.ScanComparisons)
		}
	}
}

func TestGridEquivalenceRandom(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		r := rand.New(rand.NewSource(seed))
		n := 200 + r.Intn(100)
		boxes := make([]Box, n)
		for i := range boxes {
			boxes[i] = randGridBox(r)
		}
		for _, th := range gridThresholds {
			checkGridEquivalence(t, boxes, th)
		}
	}
}

// TestGridEquivalenceLargeBatched uses enough boxes that the parallel
// driver actually batches (len ≥ 2·gridMinBatch) instead of falling back to
// the serial path.
func TestGridEquivalenceLargeBatched(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	boxes := make([]Box, 1500)
	for i := range boxes {
		boxes[i] = randGridBox(r)
	}
	for _, th := range []float64{0.1, 0.9, 1.0} {
		checkGridEquivalence(t, boxes, th)
	}
}

func TestGridEquivalenceAllIdentical(t *testing.T) {
	proto := Box{
		Tables: map[string]bool{"photoobj": true},
		Dims:   map[string]Dim{"ra": {Interval: Interval{Lo: 10, Hi: 20}}},
	}
	boxes := make([]Box, 600)
	for i := range boxes {
		boxes[i] = proto
	}
	for _, th := range gridThresholds {
		checkGridEquivalence(t, boxes, th)
	}
}

func TestGridEquivalenceAllDisjoint(t *testing.T) {
	boxes := make([]Box, 600)
	for i := range boxes {
		lo := float64(i) * 1000
		boxes[i] = Box{
			Tables: map[string]bool{"photoobj": true},
			Dims:   map[string]Dim{"htmid": {Interval: Interval{Lo: lo, Hi: lo + 100}}},
		}
	}
	for _, th := range gridThresholds {
		checkGridEquivalence(t, boxes, th)
	}
}

// TestGridEquivalenceCellStraddlers places interval boxes so that matching
// pairs sit on opposite sides of every cell boundary: marching windows
// shifted by a fraction of the (median-length) cell width.
func TestGridEquivalenceCellStraddlers(t *testing.T) {
	var boxes []Box
	for i := 0; i < 300; i++ {
		lo := float64(i)*0.25 - 1e-9 // quarter-width steps, epsilon off the lattice
		boxes = append(boxes, Box{
			Tables: map[string]bool{"specobj": true},
			Dims:   map[string]Dim{"dec": {Interval: Interval{Lo: lo, Hi: lo + 1}}},
		})
	}
	for _, th := range gridThresholds {
		checkGridEquivalence(t, boxes, th)
	}
}

// TestGridEquivalenceNoDims covers boxes prunable only by table: mixtures
// of overlapping, disjoint, and empty table sets with no predicates.
func TestGridEquivalenceNoDims(t *testing.T) {
	tableSets := []map[string]bool{
		{"photoobj": true},
		{"specobj": true},
		{"photoobj": true, "specobj": true},
		{},
	}
	var boxes []Box
	for i := 0; i < 200; i++ {
		boxes = append(boxes, Box{Tables: tableSets[i%len(tableSets)], Dims: map[string]Dim{}})
	}
	for _, th := range gridThresholds {
		checkGridEquivalence(t, boxes, th)
	}
}

// TestGridEquivalenceSignedZero pins the −0/+0 corner: equal points with
// different decimal formats must still cluster together.
func TestGridEquivalenceSignedZero(t *testing.T) {
	negZero := math_Copysign0()
	boxes := []Box{
		{Tables: map[string]bool{"t": true}, Dims: map[string]Dim{"x": {Interval: Interval{Lo: 0, Hi: 0}}}},
		{Tables: map[string]bool{"t": true}, Dims: map[string]Dim{"x": {Interval: Interval{Lo: negZero, Hi: negZero}}}},
		{Tables: map[string]bool{"t": true}, Dims: map[string]Dim{"x": {Set: map[string]bool{"-0": true}}}},
		{Tables: map[string]bool{"t": true}, Dims: map[string]Dim{"x": {Set: map[string]bool{"0": true}}}},
	}
	for _, th := range gridThresholds {
		checkGridEquivalence(t, boxes, th)
	}
}

func math_Copysign0() float64 {
	z := 0.0
	return -z
}

// TestGridDeterminism re-runs the parallel driver and requires identical
// output every time at every worker count.
func TestGridDeterminism(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	boxes := make([]Box, 1200)
	for i := range boxes {
		boxes[i] = randGridBox(r)
	}
	want := ClusterBoxesGridParallel(boxes, 0.9, 1)
	for _, w := range gridWorkerCounts {
		for run := 0; run < 3; run++ {
			got := ClusterBoxesGridParallel(boxes, 0.9, w)
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("workers=%d run=%d produced a different clustering", w, run)
			}
		}
	}
}

// TestGridPruning10kDistinct is the acceptance gate: on 10k distinct
// SkyServer-shaped boxes (marching htmid windows over a handful of window
// sizes), the grid must evaluate at least 5× fewer pairwise overlaps than
// the leader scan. ScanComparisons is the exact counterfactual because the
// grid's output is identical to the scan's.
func TestGridPruning10kDistinct(t *testing.T) {
	boxes := skyserverDistinctBoxes(10000)
	var ctr Counters
	ClusterBoxesGridCounted(boxes, 0.9, &ctr)
	if ctr.Comparisons == 0 {
		t.Fatal("counter not wired: zero comparisons recorded")
	}
	if ctr.ScanComparisons < 5*ctr.Comparisons {
		t.Fatalf("grid pruning below 5x: %d comparisons vs %d for the scan (%.1fx)",
			ctr.Comparisons, ctr.ScanComparisons,
			float64(ctr.ScanComparisons)/float64(ctr.Comparisons))
	}
	t.Logf("grid: %d overlap calls, scan: %d (%.1fx fewer, %d cells probed)",
		ctr.Comparisons, ctr.ScanComparisons,
		float64(ctr.ScanComparisons)/float64(ctr.Comparisons), ctr.CellsProbed)
}

// skyserverDistinctBoxes builds n distinct boxes shaped like the SkyServer
// SWS bots: htmid windows marching across the sky, a few window widths,
// occasional ra/dec range constraints.
func skyserverDistinctBoxes(n int) []Box {
	widths := []float64{1e5, 2e5, 5e5}
	boxes := make([]Box, n)
	for i := range boxes {
		w := widths[i%len(widths)]
		lo := float64(i) * 1e5
		b := Box{
			Tables: map[string]bool{"photoobj": true},
			Dims:   map[string]Dim{"htmid": {Interval: Interval{Lo: lo, Hi: lo + w}}},
		}
		if i%7 == 0 {
			ra := float64(i % 360)
			b.Dims["ra"] = Dim{Interval: Interval{Lo: ra, Hi: ra + 0.5}}
		}
		boxes[i] = b
	}
	return boxes
}

// TestClusterBoxesFastStillEquivalent guards the fast path's preallocated
// expansion against the quadratic reference on the random distribution.
func TestClusterBoxesFastStillEquivalent(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	boxes := make([]Box, 400)
	for i := range boxes {
		boxes[i] = randGridBox(r)
	}
	for _, th := range gridThresholds {
		want := ClusterBoxes(boxes, th)
		got := ClusterBoxesFast(boxes, th)
		requireSameClustering(t, want, got, fmt.Sprintf("fast(t=%g)", th))
		for _, w := range gridWorkerCounts {
			gotFG := ClusterBoxesFastGrid(boxes, th, w, nil)
			requireSameClustering(t, want, gotFG, fmt.Sprintf("fast-grid(t=%g,w=%d)", th, w))
		}
	}
}
