package overlap

import (
	"sort"
	"strconv"
	"strings"
)

// The paper observes that the overlap distance "very often yields 0 (queries
// are identical) and 1 (queries do not have any overlap)" (§6.9): real logs
// repeat a few thousand distinct access regions millions of times. The fast
// clustering path exploits that: identical boxes are grouped by a canonical
// signature first, leader clustering runs over the (few) distinct boxes
// only, and every member inherits its representative's cluster. The result
// is identical to ClusterBoxes for every threshold, because a box is always
// at distance 0 from an identical box and the leader algorithm assigns each
// distinct box deterministically.

// Signature canonically encodes a box: identical boxes — and only identical
// boxes — share a signature. Callers use it to deduplicate boxes before
// clustering (the server's box registry does this at ingest time).
func Signature(b Box) string { return signature(b) }

// signature canonically encodes a box: sorted tables, then sorted dims.
func signature(b Box) string {
	var sb strings.Builder
	tables := make([]string, 0, len(b.Tables))
	for t := range b.Tables {
		tables = append(tables, t)
	}
	sort.Strings(tables)
	for _, t := range tables {
		sb.WriteString(t)
		sb.WriteByte(',')
	}
	sb.WriteByte('|')
	cols := make([]string, 0, len(b.Dims))
	for c := range b.Dims {
		cols = append(cols, c)
	}
	sort.Strings(cols)
	for _, c := range cols {
		d := b.Dims[c]
		sb.WriteString(c)
		sb.WriteByte('=')
		if d.Set != nil {
			vals := make([]string, 0, len(d.Set))
			for v := range d.Set {
				vals = append(vals, v)
			}
			sort.Strings(vals)
			sb.WriteString(strings.Join(vals, "\x02"))
		} else {
			sb.WriteString(strconv.FormatFloat(d.Interval.Lo, 'g', -1, 64))
			sb.WriteByte(':')
			sb.WriteString(strconv.FormatFloat(d.Interval.Hi, 'g', -1, 64))
		}
		sb.WriteByte(';')
	}
	return sb.String()
}

// ClusterBoxesFast is ClusterBoxes with identical-box deduplication: it
// produces exactly the same clustering (same leaders, same membership) in
// O(n + d·k) instead of O(n·k), where d is the number of distinct boxes.
func ClusterBoxesFast(boxes []Box, threshold float64) []Cluster {
	if threshold <= 0 {
		// With a non-positive threshold even identical boxes (distance 0)
		// do not merge, so deduplication would change the result.
		return ClusterBoxes(boxes, threshold)
	}
	distinct, members := dedupBoxes(boxes)
	return expandClusters(ClusterBoxes(distinct, threshold), members, len(boxes))
}

// ClusterBoxesFastGrid composes both scaling levers: signature dedup
// shrinks n to the distinct boxes, grid pruning with the parallel driver
// removes the quadratic leader scan over those. Output is identical to
// ClusterBoxes for every threshold and worker count. ctr (may be nil)
// counts the clustering work over the distinct boxes.
func ClusterBoxesFastGrid(boxes []Box, threshold float64, workers int, ctr *Counters) []Cluster {
	if threshold <= 0 {
		return ClusterBoxesGridCounted(boxes, threshold, ctr)
	}
	distinct, members := dedupBoxes(boxes)
	dc := ClusterBoxesGridParallelCounted(distinct, threshold, workers, ctr)
	return expandClusters(dc, members, len(boxes))
}

// dedupBoxes groups input indices by box signature, keeping
// first-occurrence order: distinct[i] is the first box with its signature,
// members[i] the input indices sharing it (ascending).
func dedupBoxes(boxes []Box) (distinct []Box, members [][]int) {
	bySig := map[string]int{} // signature -> distinct index
	for i, b := range boxes {
		sig := signature(b)
		di, ok := bySig[sig]
		if !ok {
			di = len(distinct)
			bySig[sig] = di
			distinct = append(distinct, b)
			members = append(members, nil)
		}
		members[di] = append(members[di], i)
	}
	return distinct, members
}

// expandClusters maps a clustering of distinct boxes back to original
// indices. Cluster and member order must match what ClusterBoxes would
// produce on the full input: clusters are founded by first occurrence, and
// within a cluster the original indices appear in input order. One backing
// array serves every cluster's member slice: total membership is exactly n,
// so a single allocation replaces the per-cluster append-growth (which
// reallocated log₂(size) times per cluster).
func expandClusters(distinctClusters []Cluster, members [][]int, n int) []Cluster {
	out := make([]Cluster, len(distinctClusters))
	backing := make([]int, 0, n)
	for ci, dc := range distinctClusters {
		start := len(backing)
		for _, di := range dc.Members {
			backing = append(backing, members[di]...)
		}
		all := backing[start:len(backing):len(backing)]
		sort.Ints(all)
		out[ci] = Cluster{Representative: all[0], Members: all}
	}
	// Clusters themselves ordered by their representative (first founder).
	sort.Slice(out, func(i, j int) bool { return out[i].Representative < out[j].Representative })
	return out
}
