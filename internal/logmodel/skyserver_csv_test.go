package logmodel

import (
	"strings"
	"testing"
	"time"
)

func TestReadSkyServerCSVTheTime(t *testing.T) {
	in := strings.Join([]string{
		`theTime,clientIP,seq,rows,statement`,
		`2007-06-13 12:18:46,10.1.2.3,77,12,"SELECT name, type FROM DBObjects WHERE type='U'"`,
		`2007-06-13 12:19:13.250,10.1.2.3,78,1,SELECT description FROM DBObjects WHERE name='Galaxy'`,
	}, "\n")
	l, err := ReadSkyServerCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(l) != 2 {
		t.Fatalf("entries: %d", len(l))
	}
	if l[0].User != "10.1.2.3" || l[0].Session != "77" || l[0].Rows != 12 {
		t.Errorf("entry: %+v", l[0])
	}
	if !strings.HasPrefix(l[0].Statement, "SELECT name, type") {
		t.Errorf("statement: %q", l[0].Statement)
	}
	want := time.Date(2007, 6, 13, 12, 18, 46, 0, time.UTC)
	if !l[0].Time.Equal(want) {
		t.Errorf("time: %v", l[0].Time)
	}
	if l[1].Seq != 1 {
		t.Errorf("seq: %d", l[1].Seq)
	}
}

func TestReadSkyServerCSVSplitTime(t *testing.T) {
	in := strings.Join([]string{
		`yy,mm,dd,hh,mi,ss,clientIP,statement`,
		`2003,6,1,8,30,15,10.0.0.1,SELECT 1`,
	}, "\n")
	l, err := ReadSkyServerCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	want := time.Date(2003, 6, 1, 8, 30, 15, 0, time.UTC)
	if !l[0].Time.Equal(want) {
		t.Errorf("time: %v", l[0].Time)
	}
	if l[0].Rows != -1 {
		t.Errorf("missing rows column must yield -1, got %d", l[0].Rows)
	}
}

func TestReadSkyServerCSVIgnoresExtraColumns(t *testing.T) {
	in := strings.Join([]string{
		`theTime,server,dbname,access,elapsed,busy,clientIP,statement,error`,
		`2003-06-01 00:00:00,srv1,BestDR1,web,0.1,0.05,10.0.0.1,SELECT 2,0`,
	}, "\n")
	l, err := ReadSkyServerCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if l[0].Statement != "SELECT 2" || l[0].User != "10.0.0.1" {
		t.Errorf("entry: %+v", l[0])
	}
}

func TestReadSkyServerCSVErrors(t *testing.T) {
	cases := map[string]string{
		"no statement": "theTime,clientIP\n2003-06-01 00:00:00,10.0.0.1\n",
		"no timestamp": "clientIP,statement\n10.0.0.1,SELECT 1\n",
		"bad time":     "theTime,statement\nnot-a-time,SELECT 1\n",
		"bad split":    "yy,mm,dd,hh,mi,ss,statement\n2003,x,1,0,0,0,SELECT 1\n",
	}
	for name, in := range cases {
		if _, err := ReadSkyServerCSV(strings.NewReader(in)); err == nil {
			t.Errorf("%s: want error", name)
		}
	}
}

func TestReadSkyServerCSVQuotedStatement(t *testing.T) {
	in := "theTime,statement\n" +
		`2003-06-01 00:00:00,"SELECT a, b FROM t WHERE s = 'x,y'"` + "\n"
	l, err := ReadSkyServerCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if l[0].Statement != "SELECT a, b FROM t WHERE s = 'x,y'" {
		t.Errorf("statement: %q", l[0].Statement)
	}
}
