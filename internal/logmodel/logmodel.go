// Package logmodel defines the query-log representation shared by every
// stage of the framework: one Entry per logged statement, plus a streaming
// TSV reader and writer so that large logs never need to be held as raw
// text. The SkyServer log columns the paper relies on — statement,
// timestamp, client IP, session label and result-row count — are all
// modeled; only statement and timestamp are mandatory (paper §6.8).
package logmodel

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"

	"sqlclean/internal/parallel"
)

// Entry is one record of a SQL query log.
type Entry struct {
	// Seq is the 0-based position in the original log; it breaks ties when
	// two statements share a timestamp and keeps ordering stable.
	Seq int64
	// Time is when the statement was executed.
	Time time.Time
	// User identifies the requester (an IP address in SkyServer). Empty
	// when the log carries no user information.
	User string
	// Session is the user-session label, if logged.
	Session string
	// Rows is the result-row count reported by the server; -1 when unknown.
	Rows int64
	// Statement is the raw SQL text.
	Statement string
}

// Log is an in-memory query log.
type Log []Entry

// entryLess is the (Time, Seq) pipeline order every stage assumes.
func entryLess(a, b *Entry) bool {
	if !a.Time.Equal(b.Time) {
		return a.Time.Before(b.Time)
	}
	return a.Seq < b.Seq
}

// SortStable orders the log by (Time, Seq). All pipeline stages assume this
// order.
func (l Log) SortStable() {
	sort.SliceStable(l, func(i, j int) bool {
		return entryLess(&l[i], &l[j])
	})
}

// IsSorted reports whether the log is already in (Time, Seq) order — true
// for any log that came out of ScanTSV on a time-ordered file, which lets
// the pipeline skip the input sort entirely.
func (l Log) IsSorted() bool {
	for i := 1; i < len(l); i++ {
		if entryLess(&l[i], &l[i-1]) {
			return false
		}
	}
	return true
}

// sortMinParallel is the log size below which a parallel sort's fan-out and
// merge-buffer overhead cannot win over one in-place stable sort.
const sortMinParallel = 4096

// SortStableParallel is SortStable using up to `workers` goroutines: the log
// is cut into contiguous runs sorted concurrently, then stably merged
// pairwise (ties prefer the left run). Because a stable sort's output is
// unique, the result is bit-identical to SortStable for every worker count.
func (l Log) SortStableParallel(workers int) {
	w := parallel.Workers(workers)
	n := len(l)
	if w <= 1 || n < sortMinParallel {
		l.SortStable()
		return
	}
	bounds := make([]int, 0, w+1)
	chunk := (n + w - 1) / w
	for lo := 0; lo < n; lo += chunk {
		bounds = append(bounds, lo)
	}
	bounds = append(bounds, n)
	parallel.ShardRun(w, len(bounds)-1, func(i int) {
		l[bounds[i]:bounds[i+1]].SortStable()
	})

	buf := make(Log, n)
	src, dst := l, buf
	for len(bounds) > 2 {
		type span struct{ lo, mid, hi int }
		merges := make([]span, 0, len(bounds)/2+1)
		nb := make([]int, 0, len(bounds)/2+2)
		i := 0
		for ; i+2 < len(bounds); i += 2 {
			merges = append(merges, span{bounds[i], bounds[i+1], bounds[i+2]})
			nb = append(nb, bounds[i])
		}
		if i+2 == len(bounds) {
			// Odd run count: the last run has no partner this round and is
			// carried through (mergeRuns with mid == hi is a copy).
			merges = append(merges, span{bounds[i], bounds[i+1], bounds[i+1]})
			nb = append(nb, bounds[i])
		}
		nb = append(nb, n)
		parallel.ShardRun(w, len(merges), func(k int) {
			s := merges[k]
			mergeRuns(dst, src, s.lo, s.mid, s.hi)
		})
		src, dst = dst, src
		bounds = nb
	}
	if &src[0] != &l[0] {
		copy(l, src)
	}
}

// mergeRuns stably merges the sorted runs src[lo:mid] and src[mid:hi] into
// dst[lo:hi], preferring the left run on ties so relative order of equal
// entries is preserved.
func mergeRuns(dst, src Log, lo, mid, hi int) {
	i, j, k := lo, mid, lo
	for i < mid && j < hi {
		if entryLess(&src[j], &src[i]) {
			dst[k] = src[j]
			j++
		} else {
			dst[k] = src[i]
			i++
		}
		k++
	}
	if i < mid {
		copy(dst[k:hi], src[i:mid])
	} else {
		copy(dst[k:hi], src[j:hi])
	}
}

// Users returns the number of distinct users in the log.
func (l Log) Users() int {
	set := map[string]bool{}
	for _, e := range l {
		set[e.User] = true
	}
	return len(set)
}

// StripUsers returns a copy of the log with user and session information
// removed, emulating the minimal-input experiment of paper §6.8.
func (l Log) StripUsers() Log {
	out := make(Log, len(l))
	for i, e := range l {
		e.User = ""
		e.Session = ""
		out[i] = e
	}
	return out
}

// Clone returns a deep copy of the log (entries are value types).
func (l Log) Clone() Log {
	out := make(Log, len(l))
	copy(out, l)
	return out
}

// ---------------------------------------------------------------------------
// TSV serialization
// ---------------------------------------------------------------------------

// TimeFormat is the on-disk timestamp layout.
const TimeFormat = "2006-01-02T15:04:05.000"

// escape replaces tab and newline characters inside statements so one entry
// stays one TSV line.
func escape(s string) string {
	r := strings.NewReplacer("\\", `\\`, "\t", `\t`, "\n", `\n`, "\r", `\r`)
	return r.Replace(s)
}

func unescape(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	for i := 0; i < len(s); i++ {
		if s[i] != '\\' || i+1 >= len(s) {
			b.WriteByte(s[i])
			continue
		}
		i++
		switch s[i] {
		case 't':
			b.WriteByte('\t')
		case 'n':
			b.WriteByte('\n')
		case 'r':
			b.WriteByte('\r')
		case '\\':
			b.WriteByte('\\')
		default:
			b.WriteByte('\\')
			b.WriteByte(s[i])
		}
	}
	return b.String()
}

// WriteTSV writes the log as tab-separated lines:
// time, user, session, rows, statement.
func WriteTSV(w io.Writer, l Log) error {
	bw := bufio.NewWriter(w)
	for _, e := range l {
		rows := ""
		if e.Rows >= 0 {
			rows = strconv.FormatInt(e.Rows, 10)
		}
		if _, err := fmt.Fprintf(bw, "%s\t%s\t%s\t%s\t%s\n",
			e.Time.UTC().Format(TimeFormat), escape(e.User), escape(e.Session), rows, escape(e.Statement)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// LineError is a TSV parse failure that knows which input line it came
// from. Line counts every line of the input, including blank lines the
// scanner skips — it is the number an editor or a `sed -n Np` would show.
type LineError struct {
	Line int
	Err  error
}

func (e *LineError) Error() string { return fmt.Sprintf("logmodel: line %d: %v", e.Line, e.Err) }

func (e *LineError) Unwrap() error { return e.Err }

// ScanTSV streams a TSV log entry by entry, calling fn for each record —
// constant memory regardless of log size. Seq numbers are assigned in file
// order. fn returning an error stops the scan and propagates the error.
// Parse failures are returned as *LineError.
func ScanTSV(r io.Reader, fn func(Entry) error) error {
	return ScanTSVLines(r, func(_ int, e Entry) error { return fn(e) })
}

// ScanTSVLines is ScanTSV with the input's real 1-based line number passed
// to the callback. Entry indices and line numbers diverge whenever the
// input has blank lines, so any caller reporting a position to a human (or
// an HTTP client retrying a failed batch) needs the line, not the count of
// entries seen so far.
func ScanTSVLines(r io.Reader, fn func(line int, e Entry) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	lineNo := 0
	seq := int64(0)
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		e, err := parseTSVLine(line)
		if err != nil {
			return &LineError{Line: lineNo, Err: err}
		}
		e.Seq = seq
		seq++
		if err := fn(lineNo, e); err != nil {
			return err
		}
	}
	return sc.Err()
}

func parseTSVLine(line string) (Entry, error) {
	parts := strings.SplitN(line, "\t", 5)
	if len(parts) != 5 {
		return Entry{}, fmt.Errorf("expected 5 tab-separated fields, got %d", len(parts))
	}
	t, err := time.Parse(TimeFormat, parts[0])
	if err != nil {
		return Entry{}, fmt.Errorf("bad timestamp: %v", err)
	}
	rows := int64(-1)
	if parts[3] != "" {
		rows, err = strconv.ParseInt(parts[3], 10, 64)
		if err != nil {
			return Entry{}, fmt.Errorf("bad row count: %v", err)
		}
	}
	return Entry{
		Time:      t,
		User:      unescape(parts[1]),
		Session:   unescape(parts[2]),
		Rows:      rows,
		Statement: unescape(parts[4]),
	}, nil
}

// ReadTSV reads a log previously written by WriteTSV. Seq numbers are
// assigned in file order.
func ReadTSV(r io.Reader) (Log, error) {
	var out Log
	err := ScanTSV(r, func(e Entry) error {
		out = append(out, e)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
