// Package logmodel defines the query-log representation shared by every
// stage of the framework: one Entry per logged statement, plus a streaming
// TSV reader and writer so that large logs never need to be held as raw
// text. The SkyServer log columns the paper relies on — statement,
// timestamp, client IP, session label and result-row count — are all
// modeled; only statement and timestamp are mandatory (paper §6.8).
package logmodel

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Entry is one record of a SQL query log.
type Entry struct {
	// Seq is the 0-based position in the original log; it breaks ties when
	// two statements share a timestamp and keeps ordering stable.
	Seq int64
	// Time is when the statement was executed.
	Time time.Time
	// User identifies the requester (an IP address in SkyServer). Empty
	// when the log carries no user information.
	User string
	// Session is the user-session label, if logged.
	Session string
	// Rows is the result-row count reported by the server; -1 when unknown.
	Rows int64
	// Statement is the raw SQL text.
	Statement string
}

// Log is an in-memory query log.
type Log []Entry

// SortStable orders the log by (Time, Seq). All pipeline stages assume this
// order.
func (l Log) SortStable() {
	sort.SliceStable(l, func(i, j int) bool {
		if !l[i].Time.Equal(l[j].Time) {
			return l[i].Time.Before(l[j].Time)
		}
		return l[i].Seq < l[j].Seq
	})
}

// Users returns the number of distinct users in the log.
func (l Log) Users() int {
	set := map[string]bool{}
	for _, e := range l {
		set[e.User] = true
	}
	return len(set)
}

// StripUsers returns a copy of the log with user and session information
// removed, emulating the minimal-input experiment of paper §6.8.
func (l Log) StripUsers() Log {
	out := make(Log, len(l))
	for i, e := range l {
		e.User = ""
		e.Session = ""
		out[i] = e
	}
	return out
}

// Clone returns a deep copy of the log (entries are value types).
func (l Log) Clone() Log {
	out := make(Log, len(l))
	copy(out, l)
	return out
}

// ---------------------------------------------------------------------------
// TSV serialization
// ---------------------------------------------------------------------------

// TimeFormat is the on-disk timestamp layout.
const TimeFormat = "2006-01-02T15:04:05.000"

// escape replaces tab and newline characters inside statements so one entry
// stays one TSV line.
func escape(s string) string {
	r := strings.NewReplacer("\\", `\\`, "\t", `\t`, "\n", `\n`, "\r", `\r`)
	return r.Replace(s)
}

func unescape(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	for i := 0; i < len(s); i++ {
		if s[i] != '\\' || i+1 >= len(s) {
			b.WriteByte(s[i])
			continue
		}
		i++
		switch s[i] {
		case 't':
			b.WriteByte('\t')
		case 'n':
			b.WriteByte('\n')
		case 'r':
			b.WriteByte('\r')
		case '\\':
			b.WriteByte('\\')
		default:
			b.WriteByte('\\')
			b.WriteByte(s[i])
		}
	}
	return b.String()
}

// WriteTSV writes the log as tab-separated lines:
// time, user, session, rows, statement.
func WriteTSV(w io.Writer, l Log) error {
	bw := bufio.NewWriter(w)
	for _, e := range l {
		rows := ""
		if e.Rows >= 0 {
			rows = strconv.FormatInt(e.Rows, 10)
		}
		if _, err := fmt.Fprintf(bw, "%s\t%s\t%s\t%s\t%s\n",
			e.Time.UTC().Format(TimeFormat), escape(e.User), escape(e.Session), rows, escape(e.Statement)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// LineError is a TSV parse failure that knows which input line it came
// from. Line counts every line of the input, including blank lines the
// scanner skips — it is the number an editor or a `sed -n Np` would show.
type LineError struct {
	Line int
	Err  error
}

func (e *LineError) Error() string { return fmt.Sprintf("logmodel: line %d: %v", e.Line, e.Err) }

func (e *LineError) Unwrap() error { return e.Err }

// ScanTSV streams a TSV log entry by entry, calling fn for each record —
// constant memory regardless of log size. Seq numbers are assigned in file
// order. fn returning an error stops the scan and propagates the error.
// Parse failures are returned as *LineError.
func ScanTSV(r io.Reader, fn func(Entry) error) error {
	return ScanTSVLines(r, func(_ int, e Entry) error { return fn(e) })
}

// ScanTSVLines is ScanTSV with the input's real 1-based line number passed
// to the callback. Entry indices and line numbers diverge whenever the
// input has blank lines, so any caller reporting a position to a human (or
// an HTTP client retrying a failed batch) needs the line, not the count of
// entries seen so far.
func ScanTSVLines(r io.Reader, fn func(line int, e Entry) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	lineNo := 0
	seq := int64(0)
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		e, err := parseTSVLine(line)
		if err != nil {
			return &LineError{Line: lineNo, Err: err}
		}
		e.Seq = seq
		seq++
		if err := fn(lineNo, e); err != nil {
			return err
		}
	}
	return sc.Err()
}

func parseTSVLine(line string) (Entry, error) {
	parts := strings.SplitN(line, "\t", 5)
	if len(parts) != 5 {
		return Entry{}, fmt.Errorf("expected 5 tab-separated fields, got %d", len(parts))
	}
	t, err := time.Parse(TimeFormat, parts[0])
	if err != nil {
		return Entry{}, fmt.Errorf("bad timestamp: %v", err)
	}
	rows := int64(-1)
	if parts[3] != "" {
		rows, err = strconv.ParseInt(parts[3], 10, 64)
		if err != nil {
			return Entry{}, fmt.Errorf("bad row count: %v", err)
		}
	}
	return Entry{
		Time:      t,
		User:      unescape(parts[1]),
		Session:   unescape(parts[2]),
		Rows:      rows,
		Statement: unescape(parts[4]),
	}, nil
}

// ReadTSV reads a log previously written by WriteTSV. Seq numbers are
// assigned in file order.
func ReadTSV(r io.Reader) (Log, error) {
	var out Log
	err := ScanTSV(r, func(e Entry) error {
		out = append(out, e)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
