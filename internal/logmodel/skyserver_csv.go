package logmodel

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// ReadSkyServerCSV reads a query log in the CSV export format of the
// SkyServer SqlLog table (see http://skyserver.sdss.org/log/ for the column
// description). The first row must be a header. Recognized columns
// (case-insensitive):
//
//   - timestamp: either a single "theTime" column
//     ("2006-01-02 15:04:05[.000]") or the split "yy","mm","dd","hh","mi",
//     "ss" columns;
//   - statement text: "statement", "stmt" or "sql" (required);
//   - user: "clientIP" or "requestor";
//   - session: "seq" or "logID";
//   - result rows: "rows".
//
// Unrecognized columns are ignored, so full SqlLog exports load as-is.
func ReadSkyServerCSV(r io.Reader) (Log, error) {
	cr := csv.NewReader(r)
	cr.LazyQuotes = true
	cr.FieldsPerRecord = -1

	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("logmodel: reading CSV header: %w", err)
	}
	col := map[string]int{}
	for i, h := range header {
		col[strings.ToLower(strings.TrimSpace(h))] = i
	}
	find := func(names ...string) (int, bool) {
		for _, n := range names {
			if i, ok := col[n]; ok {
				return i, true
			}
		}
		return 0, false
	}

	stmtIdx, ok := find("statement", "stmt", "sql")
	if !ok {
		return nil, fmt.Errorf("logmodel: CSV header lacks a statement column (statement/stmt/sql)")
	}
	timeIdx, hasTime := find("thetime", "time", "timestamp")
	yyIdx, hasSplit := find("yy")
	var mmIdx, ddIdx, hhIdx, miIdx, ssIdx int
	if hasSplit {
		for _, f := range []struct {
			name string
			dst  *int
		}{{"mm", &mmIdx}, {"dd", &ddIdx}, {"hh", &hhIdx}, {"mi", &miIdx}, {"ss", &ssIdx}} {
			i, ok := find(f.name)
			if !ok {
				hasSplit = false
				break
			}
			*f.dst = i
		}
	}
	if !hasTime && !hasSplit {
		return nil, fmt.Errorf("logmodel: CSV header lacks a timestamp (theTime or yy/mm/dd/hh/mi/ss)")
	}
	userIdx, hasUser := find("clientip", "requestor", "user")
	sessIdx, hasSess := find("seq", "logid", "session")
	rowsIdx, hasRows := find("rows")

	var out Log
	line := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		line++
		if err != nil {
			return nil, fmt.Errorf("logmodel: CSV line %d: %w", line, err)
		}
		get := func(i int) string {
			if i < len(rec) {
				return strings.TrimSpace(rec[i])
			}
			return ""
		}
		var ts time.Time
		if hasTime {
			ts, err = parseSkyTime(get(timeIdx))
			if err != nil {
				return nil, fmt.Errorf("logmodel: CSV line %d: %v", line, err)
			}
		} else {
			ts, err = assembleSplitTime(get(yyIdx), get(mmIdx), get(ddIdx), get(hhIdx), get(miIdx), get(ssIdx))
			if err != nil {
				return nil, fmt.Errorf("logmodel: CSV line %d: %v", line, err)
			}
		}
		e := Entry{
			Seq:       int64(len(out)),
			Time:      ts,
			Rows:      -1,
			Statement: get(stmtIdx),
		}
		if hasUser {
			e.User = get(userIdx)
		}
		if hasSess {
			e.Session = get(sessIdx)
		}
		if hasRows {
			if v, err := strconv.ParseInt(get(rowsIdx), 10, 64); err == nil {
				e.Rows = v
			}
		}
		out = append(out, e)
	}
	return out, nil
}

var skyTimeLayouts = []string{
	"2006-01-02 15:04:05.000",
	"2006-01-02 15:04:05",
	"2006-01-02T15:04:05.000",
	"2006-01-02T15:04:05",
	"1/2/2006 3:04:05 PM",
}

func parseSkyTime(s string) (time.Time, error) {
	for _, layout := range skyTimeLayouts {
		if t, err := time.Parse(layout, s); err == nil {
			return t, nil
		}
	}
	return time.Time{}, fmt.Errorf("unrecognized timestamp %q", s)
}

func assembleSplitTime(yy, mm, dd, hh, mi, ss string) (time.Time, error) {
	var parts [6]int
	for i, s := range []string{yy, mm, dd, hh, mi, ss} {
		v, err := strconv.Atoi(s)
		if err != nil {
			return time.Time{}, fmt.Errorf("bad time component %q", s)
		}
		parts[i] = v
	}
	return time.Date(parts[0], time.Month(parts[1]), parts[2], parts[3], parts[4], parts[5], 0, time.UTC), nil
}
