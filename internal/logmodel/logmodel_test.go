package logmodel

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func sample() Log {
	base := time.Date(2003, 6, 1, 12, 0, 0, 0, time.UTC)
	return Log{
		{Seq: 0, Time: base, User: "10.0.0.1", Session: "s1", Rows: 3, Statement: "SELECT a FROM t"},
		{Seq: 1, Time: base.Add(time.Second), User: "10.0.0.2", Session: "s2", Rows: -1, Statement: "SELECT b FROM t WHERE x = 'it''s'"},
		{Seq: 2, Time: base.Add(2 * time.Second), User: "10.0.0.1", Session: "s1", Rows: 0, Statement: "SELECT c\nFROM t\tWHERE y = 1"},
	}
}

func TestTSVRoundTrip(t *testing.T) {
	in := sample()
	var buf bytes.Buffer
	if err := WriteTSV(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadTSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip mismatch:\nin:  %+v\nout: %+v", in, out)
	}
}

func TestTSVEscaping(t *testing.T) {
	in := Log{{Time: time.Unix(0, 0).UTC(), Statement: "line1\nline2\tend\\slash\rcr", Rows: -1}}
	var buf bytes.Buffer
	if err := WriteTSV(&buf, in); err != nil {
		t.Fatal(err)
	}
	// One entry, one line.
	if n := strings.Count(buf.String(), "\n"); n != 1 {
		t.Fatalf("entry spans %d lines: %q", n, buf.String())
	}
	out, err := ReadTSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if out[0].Statement != in[0].Statement {
		t.Errorf("got %q, want %q", out[0].Statement, in[0].Statement)
	}
}

func TestTSVRoundTripProperty(t *testing.T) {
	f := func(stmt, user string, rows int64) bool {
		if rows < 0 {
			rows = -1
		}
		in := Log{{Time: time.Unix(1234567, 0).UTC(), User: user, Rows: rows, Statement: stmt}}
		var buf bytes.Buffer
		if err := WriteTSV(&buf, in); err != nil {
			return false
		}
		out, err := ReadTSV(&buf)
		if err != nil {
			return false
		}
		if len(out) != 1 && !(stmt == "" && user == "") {
			// An entirely empty line is skipped; accept that corner.
			return len(out) == 0
		}
		if len(out) == 0 {
			return true
		}
		return out[0].Statement == stmt && out[0].User == user && out[0].Rows == rows
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestReadTSVErrors(t *testing.T) {
	cases := map[string]string{
		"too few fields": "2003-06-01T00:00:00.000\tonly\tthree\tfields\n",
		"bad timestamp":  "not-a-time\tu\ts\t1\tSELECT 1\n",
		"bad row count":  "2003-06-01T00:00:00.000\tu\ts\tx\tSELECT 1\n",
	}
	for name, in := range cases {
		if _, err := ReadTSV(strings.NewReader(in)); err == nil {
			t.Errorf("%s: want error", name)
		}
	}
}

func TestReadTSVSkipsEmptyLines(t *testing.T) {
	in := "2003-06-01T00:00:00.000\tu\ts\t1\tSELECT 1\n\n2003-06-01T00:00:01.000\tu\ts\t1\tSELECT 2\n"
	out, err := ReadTSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("got %d entries", len(out))
	}
}

func TestSortStable(t *testing.T) {
	base := time.Unix(1000, 0).UTC()
	l := Log{
		{Seq: 2, Time: base.Add(time.Second)},
		{Seq: 1, Time: base},
		{Seq: 0, Time: base.Add(time.Second)},
	}
	l.SortStable()
	if l[0].Seq != 1 || l[1].Seq != 0 || l[2].Seq != 2 {
		t.Errorf("order: %v", l)
	}
}

func TestUsers(t *testing.T) {
	if got := sample().Users(); got != 2 {
		t.Errorf("users: %d", got)
	}
	var empty Log
	if empty.Users() != 0 {
		t.Error("empty log has no users")
	}
}

func TestStripUsers(t *testing.T) {
	in := sample()
	out := in.StripUsers()
	for _, e := range out {
		if e.User != "" || e.Session != "" {
			t.Errorf("entry not stripped: %+v", e)
		}
	}
	// Original untouched.
	if in[0].User == "" {
		t.Error("StripUsers mutated the original")
	}
	if out[1].Statement != in[1].Statement {
		t.Error("statements must be preserved")
	}
}

func TestClone(t *testing.T) {
	in := sample()
	c := in.Clone()
	c[0].Statement = "changed"
	if in[0].Statement == "changed" {
		t.Error("clone shares backing array")
	}
}

func TestUnescapeOddTrailingBackslash(t *testing.T) {
	// A lone trailing backslash must survive.
	if got := unescape(`abc\`); got != `abc\` {
		t.Errorf("got %q", got)
	}
	if got := unescape(`a\x`); got != `a\x` {
		t.Errorf("unknown escape: got %q", got)
	}
}
