package logmodel

import (
	"bytes"
	"testing"
	"time"
)

// FuzzTSVRoundTrip checks that any statement/user/session content survives
// a TSV write-read cycle byte-for-byte.
func FuzzTSVRoundTrip(f *testing.F) {
	f.Add("SELECT a FROM t", "10.0.0.1", "s1", int64(5))
	f.Add("multi\nline\tstmt\\", "", "", int64(-3))
	f.Add("", "u", "s", int64(0))
	f.Fuzz(func(t *testing.T, stmt, user, sess string, rows int64) {
		if rows < 0 {
			rows = -1
		}
		in := Log{{Time: time.Unix(99, 0).UTC(), User: user, Session: sess, Rows: rows, Statement: stmt}}
		var buf bytes.Buffer
		if err := WriteTSV(&buf, in); err != nil {
			t.Fatal(err)
		}
		out, err := ReadTSV(&buf)
		if err != nil {
			t.Fatalf("read back: %v", err)
		}
		if stmt == "" && user == "" && sess == "" && rows == -1 {
			return // a fully empty entry may serialize to a blank-ish line
		}
		if len(out) != 1 {
			t.Fatalf("entries: %d", len(out))
		}
		e := out[0]
		if e.Statement != stmt || e.User != user || e.Session != sess || e.Rows != rows {
			t.Fatalf("mismatch: %+v", e)
		}
	})
}
