package logmodel

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"
)

// scrambledLog builds a log with heavy timestamp ties (stability matters)
// in a deterministically shuffled order.
func scrambledLog(n int, seed int64) Log {
	rng := rand.New(rand.NewSource(seed))
	base := time.Date(2003, 6, 1, 0, 0, 0, 0, time.UTC)
	l := make(Log, n)
	for i := range l {
		l[i] = Entry{
			Seq:       int64(i),
			Time:      base.Add(time.Duration(rng.Intn(n/8+1)) * time.Second),
			User:      fmt.Sprintf("u%d", i%13),
			Statement: fmt.Sprintf("SELECT a FROM t WHERE id = %d", i),
		}
	}
	rng.Shuffle(n, func(i, j int) { l[i], l[j] = l[j], l[i] })
	return l
}

func TestIsSorted(t *testing.T) {
	l := scrambledLog(500, 1)
	if l.IsSorted() {
		t.Fatal("shuffled log reported as sorted")
	}
	l.SortStable()
	if !l.IsSorted() {
		t.Fatal("sorted log reported as unsorted")
	}
	if !(Log{}).IsSorted() || !(Log{{Seq: 1}}).IsSorted() {
		t.Fatal("empty/singleton logs must count as sorted")
	}
}

// TestSortStableParallelMatchesSerial pins the parallel merge sort to the
// serial stable sort byte for byte — a stable sort's output is unique, so
// any divergence is a bug — across sizes straddling the parallel threshold
// and several worker counts.
func TestSortStableParallelMatchesSerial(t *testing.T) {
	for _, n := range []int{0, 1, 100, 4095, 4096, 10000} {
		want := scrambledLog(n, int64(n)+7)
		got1 := want.Clone()
		want.SortStable()
		for _, workers := range []int{1, 2, 3, 4, 8} {
			got := got1.Clone()
			got.SortStableParallel(workers)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("n=%d workers=%d: parallel sort differs from SortStable", n, workers)
			}
		}
	}
}
