// Package parsedlog is the "Parsed Query Log" stage of the paper's Fig. 1:
// every log entry annotated with its statement class and, for SELECT
// statements, the skeleton/template summary from package skeleton. Identical
// statement texts share one parse result, which matters a lot on real logs
// where a handful of templates cover millions of entries.
package parsedlog

import (
	"sqlclean/internal/logmodel"
	"sqlclean/internal/skeleton"
	"sqlclean/internal/sqlast"
	"sqlclean/internal/sqlparser"
)

// Entry is one log entry plus its parse result.
type Entry struct {
	logmodel.Entry
	Class sqlast.StatementClass
	// Info is the skeleton summary; nil unless Class is ClassSelect. It is
	// shared between entries with identical statement text — treat it as
	// immutable and clone the AST before rewriting.
	Info *skeleton.Info
	// Err is the parse error for ClassError entries.
	Err error
}

// Log is a parsed query log.
type Log []Entry

// Stats counts entries per statement class.
type Stats struct {
	Selects int
	DML     int
	DDL     int
	Exec    int
	Errors  int
}

// Total returns the number of classified entries.
func (s Stats) Total() int { return s.Selects + s.DML + s.DDL + s.Exec + s.Errors }

type cached struct {
	class sqlast.StatementClass
	info  *skeleton.Info
	err   error
}

// Parser parses log entries with a statement-text cache.
type Parser struct {
	cache map[string]cached
}

// NewParser returns a Parser with an empty cache.
func NewParser() *Parser { return &Parser{cache: map[string]cached{}} }

// ParseEntry parses one log entry.
func (p *Parser) ParseEntry(e logmodel.Entry) Entry {
	c, ok := p.cache[e.Statement]
	if !ok {
		c = parseOne(e.Statement)
		p.cache[e.Statement] = c
	}
	return Entry{Entry: e, Class: c.class, Info: c.info, Err: c.err}
}

func parseOne(stmt string) cached {
	st, err := sqlparser.Parse(stmt)
	if err != nil {
		return cached{class: sqlast.ClassError, err: err}
	}
	switch s := st.(type) {
	case *sqlast.SelectStatement:
		return cached{class: sqlast.ClassSelect, info: skeleton.Analyze(s)}
	case *sqlast.InsertStatement, *sqlast.UpdateStatement, *sqlast.DeleteStatement:
		return cached{class: sqlast.ClassDML}
	case *sqlast.OtherStatement:
		return cached{class: s.Class}
	}
	return cached{class: sqlast.ClassError}
}

// Parse parses a whole log and returns the annotated entries plus class
// counts.
func Parse(l logmodel.Log) (Log, Stats) {
	p := NewParser()
	out := make(Log, 0, len(l))
	var st Stats
	for _, e := range l {
		pe := p.ParseEntry(e)
		out = append(out, pe)
		switch pe.Class {
		case sqlast.ClassSelect:
			st.Selects++
		case sqlast.ClassDML:
			st.DML++
		case sqlast.ClassDDL:
			st.DDL++
		case sqlast.ClassExec:
			st.Exec++
		default:
			st.Errors++
		}
	}
	return out, st
}

// Selects returns a new log (and parallel logmodel.Log) containing only the
// successfully parsed SELECT entries, preserving order.
func (l Log) Selects() Log {
	out := make(Log, 0, len(l))
	for _, e := range l {
		if e.Class == sqlast.ClassSelect {
			out = append(out, e)
		}
	}
	return out
}

// Raw converts back to a plain logmodel.Log.
func (l Log) Raw() logmodel.Log {
	out := make(logmodel.Log, len(l))
	for i, e := range l {
		out[i] = e.Entry
	}
	return out
}
