// Package parsedlog is the "Parsed Query Log" stage of the paper's Fig. 1:
// every log entry annotated with its statement class and, for SELECT
// statements, the skeleton/template summary from package skeleton. Identical
// statement texts share one parse result, which matters a lot on real logs
// where a handful of templates cover millions of entries.
//
// The Parser is safe for concurrent use and its hit path is contention-free:
// each shard publishes an immutable read map (RCU-style), so a cache hit is
// one atomic load plus a map lookup with no lock and no shared-cacheline
// write. Misses take the shard mutex, land in a dirty map, and are
// periodically promoted into a fresh read snapshot; a per-statement
// singleflight guarantees each unique text is parsed exactly once even when
// many goroutines race on it — so the "identical texts share one
// *skeleton.Info" invariant holds under ParseParallel exactly as it does
// serially.
//
// The cache also interns statement texts: every Entry returned for the same
// statement carries the first-seen string instance, so dedup keys, template
// aggregates and the clean log all share one string per distinct statement
// instead of retaining millions of equal copies.
package parsedlog

import (
	"hash/maphash"
	"sync"
	"sync/atomic"

	"sqlclean/internal/logmodel"
	"sqlclean/internal/obs"
	"sqlclean/internal/parallel"
	"sqlclean/internal/skeleton"
	"sqlclean/internal/sqlast"
	"sqlclean/internal/sqlparser"
)

// Entry is one log entry plus its parse result.
type Entry struct {
	logmodel.Entry
	Class sqlast.StatementClass
	// Info is the skeleton summary; nil unless Class is ClassSelect. It is
	// shared between entries with identical statement text — treat it as
	// immutable and clone the AST before rewriting.
	Info *skeleton.Info
	// Err is the parse error for ClassError entries.
	Err error
}

// Log is a parsed query log.
type Log []Entry

// Stats counts entries per statement class.
type Stats struct {
	Selects int
	DML     int
	DDL     int
	Exec    int
	Errors  int
}

// Total returns the number of classified entries.
func (s Stats) Total() int { return s.Selects + s.DML + s.DDL + s.Exec + s.Errors }

// count adds one entry of the given class.
func (s *Stats) count(c sqlast.StatementClass) {
	switch c {
	case sqlast.ClassSelect:
		s.Selects++
	case sqlast.ClassDML:
		s.DML++
	case sqlast.ClassDDL:
		s.DDL++
	case sqlast.ClassExec:
		s.Exec++
	default:
		s.Errors++
	}
}

// Add merges another count into s.
func (s *Stats) Add(o Stats) {
	s.Selects += o.Selects
	s.DML += o.DML
	s.DDL += o.DDL
	s.Exec += o.Exec
	s.Errors += o.Errors
}

type cached struct {
	class sqlast.StatementClass
	info  *skeleton.Info
	err   error
}

// result is one cache slot with singleflight semantics: the goroutine that
// inserted the slot (or any later one — sync.Once picks a single winner)
// parses; everyone else blocks on the Once and then reads the shared value.
// done flips after the parse completed, so an instrumented lookup can tell
// a plain cache hit from a singleflight wait.
type result struct {
	once sync.Once
	done atomic.Bool
	// stmt is the interned statement text: the first string instance that
	// reached the cache. Every Entry for this slot carries it, so all
	// downstream stages share one string per distinct statement.
	stmt string
	c    cached
}

// shardCount shards the statement-text cache. 32 is a power of two (cheap
// masking) comfortably above the core counts we target, so two workers
// rarely contend on one shard's miss lock, while the per-shard map overhead
// stays negligible. The hit path never locks at all.
const shardCount = 32

// shard is one cache partition with an RCU read path: read holds an
// immutable snapshot consulted without any lock, dirty (guarded by mu) is
// the authoritative map that accumulates misses. When dirty has outgrown
// the last snapshot enough, a fresh copy is published — the copy cost
// amortizes to O(1) per insert under the doubling policy in lookup.
type shard struct {
	read atomic.Pointer[map[string]*result]

	mu        sync.Mutex
	dirty     map[string]*result
	published int // len(dirty) at the last snapshot publish
}

// publishLocked snapshots dirty into a fresh immutable read map. Caller
// holds mu.
func (sh *shard) publishLocked() {
	m := make(map[string]*result, 2*len(sh.dirty))
	for k, v := range sh.dirty {
		m[k] = v
	}
	sh.read.Store(&m)
	sh.published = len(sh.dirty)
}

// hashSeed makes shard selection consistent within a process. It only picks
// the shard a statement lives in, so the per-run randomness of maphash never
// leaks into results. maphash is used (rather than FNV) because it runs at
// hardware-hash speed on long statement texts; the hash is computed outside
// any lock.
var hashSeed = maphash.MakeSeed()

// parserMetrics are the hot-path cache counters Instrument attaches.
type parserMetrics struct {
	entries *obs.Counter // ParseEntry calls
	misses  *obs.Counter // this call created the slot and parses
	hits    *obs.Counter // slot existed with a finished parse
	waits   *obs.Counter // slot existed but the parse was in flight (singleflight wait)
}

// Parser parses log entries with a statement-text cache. It is safe for
// concurrent use by multiple goroutines.
type Parser struct {
	shards [shardCount]shard
	// met is nil unless Instrument attached a registry. It is read without
	// synchronization, so Instrument must be called before parsing starts.
	met *parserMetrics
}

// Instrument attaches cache-effectiveness counters (parse_entries_total,
// parse_cache_hits_total, parse_cache_misses_total,
// parse_singleflight_waits_total) to the parser. Call before the first
// ParseEntry; a nil registry leaves the parser on the zero-overhead path.
func (p *Parser) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	p.met = &parserMetrics{
		entries: reg.Counter("parse_entries_total"),
		misses:  reg.Counter("parse_cache_misses_total"),
		hits:    reg.Counter("parse_cache_hits_total"),
		waits:   reg.Counter("parse_singleflight_waits_total"),
	}
}

// NewParser returns a Parser with an empty cache.
func NewParser() *Parser {
	p := &Parser{}
	for i := range p.shards {
		p.shards[i].dirty = map[string]*result{}
	}
	return p
}

// lookup returns the cache slot for a statement, creating it if needed, and
// reports whether this caller created it. The fast path — the statement is
// in the shard's published read snapshot — is lock-free: one hash, one
// atomic load, one map lookup.
func (p *Parser) lookup(stmt string) (*result, bool) {
	sh := &p.shards[maphash.String(hashSeed, stmt)&(shardCount-1)]
	if m := sh.read.Load(); m != nil {
		if r, ok := (*m)[stmt]; ok {
			return r, false
		}
	}
	sh.mu.Lock()
	r, ok := sh.dirty[stmt]
	if !ok {
		r = &result{stmt: stmt}
		sh.dirty[stmt] = r
		// Publish a fresh read snapshot once dirty has roughly doubled
		// since the last publish (the +8 floor keeps tiny caches from
		// republishing on every insert). Total copy work is O(n) amortized.
		if len(sh.dirty) >= 2*sh.published+8 {
			sh.publishLocked()
		}
	}
	sh.mu.Unlock()
	return r, !ok
}

// ParseEntry parses one log entry, consulting the shared cache. The
// returned Entry carries the interned statement text (the first-seen string
// instance for this statement), never e.Statement itself.
func (p *Parser) ParseEntry(e logmodel.Entry) Entry {
	r, created := p.lookup(e.Statement)
	if m := p.met; m != nil {
		m.entries.Inc()
		switch {
		case created:
			m.misses.Inc()
		case r.done.Load():
			m.hits.Inc()
		default:
			m.waits.Inc()
		}
	}
	r.once.Do(func() {
		r.c = parseOne(r.stmt)
		r.done.Store(true)
	})
	e.Statement = r.stmt
	return Entry{Entry: e, Class: r.c.class, Info: r.c.info, Err: r.c.err}
}

// Intern returns the cache's canonical string instance for a statement text
// (inserting a slot if the statement was never seen). Content is always
// equal to stmt; only the backing allocation is shared.
func (p *Parser) Intern(stmt string) string {
	r, _ := p.lookup(stmt)
	return r.stmt
}

func parseOne(stmt string) cached {
	st, err := sqlparser.Parse(stmt)
	if err != nil {
		return cached{class: sqlast.ClassError, err: err}
	}
	switch s := st.(type) {
	case *sqlast.SelectStatement:
		return cached{class: sqlast.ClassSelect, info: skeleton.Analyze(s)}
	case *sqlast.InsertStatement, *sqlast.UpdateStatement, *sqlast.DeleteStatement:
		return cached{class: sqlast.ClassDML}
	case *sqlast.OtherStatement:
		return cached{class: s.Class}
	}
	return cached{class: sqlast.ClassError}
}

// Parse annotates a whole log on the calling goroutine, reusing the
// parser's cache across calls (statements already seen are not re-parsed).
func (p *Parser) Parse(l logmodel.Log) (Log, Stats) {
	out := make(Log, 0, len(l))
	var st Stats
	for _, e := range l {
		pe := p.ParseEntry(e)
		out = append(out, pe)
		st.count(pe.Class)
	}
	return out, st
}

// ParseParallel annotates a whole log using up to `workers` goroutines
// (0 selects GOMAXPROCS, 1 is the serial path). The result is identical to
// Parse: entries keep log order and identical texts share one
// *skeleton.Info. Only wall-clock time differs.
func (p *Parser) ParseParallel(l logmodel.Log, workers int) (Log, Stats) {
	return p.ParseParallelSpan(l, workers, nil)
}

// ParseParallelSpan is ParseParallel with per-worker child spans attached
// to sp (nil sp skips tracing; the result is unchanged either way).
func (p *Parser) ParseParallelSpan(l logmodel.Log, workers int, sp *obs.Span) (Log, Stats) {
	if parallel.Workers(workers) <= 1 {
		return p.Parse(l)
	}
	out := make(Log, len(l))
	var mu sync.Mutex
	var st Stats
	parallel.ChunksSpan(sp, workers, len(l), func(lo, hi int) {
		var local Stats
		for i := lo; i < hi; i++ {
			pe := p.ParseEntry(l[i])
			out[i] = pe
			local.count(pe.Class)
		}
		mu.Lock()
		st.Add(local)
		mu.Unlock()
	})
	return out, st
}

// Parse parses a whole log with a fresh cache and returns the annotated
// entries plus class counts.
func Parse(l logmodel.Log) (Log, Stats) {
	return NewParser().Parse(l)
}

// ParseParallel parses a whole log with a fresh cache using up to `workers`
// goroutines; see Parser.ParseParallel.
func ParseParallel(l logmodel.Log, workers int) (Log, Stats) {
	return NewParser().ParseParallel(l, workers)
}

// Selects returns a new log (and parallel logmodel.Log) containing only the
// successfully parsed SELECT entries, preserving order.
func (l Log) Selects() Log {
	out := make(Log, 0, len(l))
	for _, e := range l {
		if e.Class == sqlast.ClassSelect {
			out = append(out, e)
		}
	}
	return out
}

// SelectsRaw returns the SELECT-only entries as a plain logmodel.Log in one
// pass — Selects().Raw() without materialising the intermediate parsed copy.
func (l Log) SelectsRaw() logmodel.Log {
	out := make(logmodel.Log, 0, len(l))
	for _, e := range l {
		if e.Class == sqlast.ClassSelect {
			out = append(out, e.Entry)
		}
	}
	return out
}

// Subset returns the entries at the given indices, in the order given —
// the way dedup's kept-index list is carried through without re-parsing.
func (l Log) Subset(indices []int) Log {
	out := make(Log, len(indices))
	for i, idx := range indices {
		out[i] = l[idx]
	}
	return out
}

// Raw converts back to a plain logmodel.Log.
func (l Log) Raw() logmodel.Log {
	out := make(logmodel.Log, len(l))
	for i, e := range l {
		out[i] = e.Entry
	}
	return out
}
