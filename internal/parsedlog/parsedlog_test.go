package parsedlog

import (
	"testing"
	"time"

	"sqlclean/internal/logmodel"
	"sqlclean/internal/sqlast"
)

func mkLog(stmts ...string) logmodel.Log {
	base := time.Date(2003, 6, 1, 0, 0, 0, 0, time.UTC)
	var l logmodel.Log
	for i, s := range stmts {
		l = append(l, logmodel.Entry{Seq: int64(i), Time: base.Add(time.Duration(i) * time.Second), User: "u", Statement: s})
	}
	return l
}

func TestParseClassifies(t *testing.T) {
	l := mkLog(
		"SELECT a FROM t",
		"INSERT INTO t VALUES (1)",
		"CREATE TABLE x (a int)",
		"EXEC sp_x",
		"SELECT FROM t",
	)
	pl, st := Parse(l)
	if st.Selects != 1 || st.DML != 1 || st.DDL != 1 || st.Exec != 1 || st.Errors != 1 {
		t.Fatalf("stats: %+v", st)
	}
	if st.Total() != 5 {
		t.Errorf("total: %d", st.Total())
	}
	if pl[0].Info == nil || pl[0].Class != sqlast.ClassSelect {
		t.Errorf("select entry: %+v", pl[0])
	}
	if pl[1].Info != nil {
		t.Error("DML entry must have no Info")
	}
	if pl[4].Err == nil {
		t.Error("error entry must carry the parse error")
	}
}

func TestParseCacheSharesInfo(t *testing.T) {
	l := mkLog("SELECT a FROM t WHERE id = 1", "SELECT a FROM t WHERE id = 1")
	pl, _ := Parse(l)
	if pl[0].Info != pl[1].Info {
		t.Error("identical statements must share one Info")
	}
	l2 := mkLog("SELECT a FROM t WHERE id = 1", "SELECT a FROM t WHERE id = 2")
	pl2, _ := Parse(l2)
	if pl2[0].Info == pl2[1].Info {
		t.Error("different statements must not share Info")
	}
	// Same template, still distinct Info structs.
	if pl2[0].Info.Fingerprint != pl2[1].Info.Fingerprint {
		t.Error("same template must share a fingerprint")
	}
}

func TestSelectsFilter(t *testing.T) {
	l := mkLog("SELECT a FROM t", "DROP TABLE t", "SELECT b FROM t")
	pl, _ := Parse(l)
	sel := pl.Selects()
	if len(sel) != 2 {
		t.Fatalf("selects: %d", len(sel))
	}
	if sel[0].Statement != "SELECT a FROM t" || sel[1].Statement != "SELECT b FROM t" {
		t.Errorf("order: %+v", sel)
	}
}

func TestRawRoundTrip(t *testing.T) {
	l := mkLog("SELECT a FROM t", "SELECT b FROM t")
	pl, _ := Parse(l)
	raw := pl.Raw()
	if len(raw) != 2 || raw[0].Statement != l[0].Statement || raw[1].Seq != l[1].Seq {
		t.Errorf("raw: %+v", raw)
	}
}

func TestParserReuse(t *testing.T) {
	p := NewParser()
	e1 := p.ParseEntry(logmodel.Entry{Statement: "SELECT a FROM t"})
	e2 := p.ParseEntry(logmodel.Entry{Statement: "SELECT a FROM t"})
	if e1.Info != e2.Info {
		t.Error("parser cache not shared across calls")
	}
}
