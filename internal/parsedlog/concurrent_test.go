package parsedlog

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"sqlclean/internal/logmodel"
	"sqlclean/internal/sqlast"
)

// statement soup with deliberate overlap between goroutines: a mix of
// SELECTs, DML, DDL and broken statements so every class crosses the cache.
func soupStatement(i int) string {
	switch i % 6 {
	case 0:
		return fmt.Sprintf("SELECT a FROM t WHERE id = %d", i%17)
	case 1:
		return fmt.Sprintf("SELECT a, b FROM photoprimary WHERE objid = %d", i%11)
	case 2:
		return "SELECT x FROM t WHERE y = NULL"
	case 3:
		return fmt.Sprintf("INSERT INTO t VALUES (%d)", i%7)
	case 4:
		return fmt.Sprintf("CREATE TABLE t%d (a int)", i%5)
	default:
		return fmt.Sprintf("SELECT a FROM WHERE %d", i%3) // broken
	}
}

// TestParserConcurrentHammer drives one Parser from 16 goroutines with
// overlapping statement sets (run with -race). Every goroutine must see the
// same classification as a serial reference parse, and identical texts must
// share one *skeleton.Info pointer across goroutines — the singleflight
// invariant.
func TestParserConcurrentHammer(t *testing.T) {
	const goroutines = 16
	const perG = 300

	// Serial reference.
	ref := map[string]Entry{}
	refParser := NewParser()
	for i := 0; i < perG; i++ {
		s := soupStatement(i)
		ref[s] = refParser.ParseEntry(logmodel.Entry{Statement: s})
	}

	p := NewParser()
	results := make([]map[string]Entry, goroutines)
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			got := map[string]Entry{}
			// Each goroutine walks the soup from a different offset so the
			// same texts are requested in different orders, racing on the
			// cache slots.
			for k := 0; k < perG; k++ {
				s := soupStatement((k + g*7) % perG)
				got[s] = p.ParseEntry(logmodel.Entry{Statement: s})
			}
			results[g] = got
		}(g)
	}
	wg.Wait()

	for g, got := range results {
		if len(got) != len(ref) {
			t.Fatalf("goroutine %d saw %d unique statements, want %d", g, len(got), len(ref))
		}
		for s, e := range got {
			want := ref[s]
			if e.Class != want.Class {
				t.Fatalf("goroutine %d: class mismatch for %q: %v != %v", g, s, e.Class, want.Class)
			}
			if (e.Err == nil) != (want.Err == nil) {
				t.Fatalf("goroutine %d: error mismatch for %q", g, s)
			}
			if e.Info != nil && !reflect.DeepEqual(e.Info.Fingerprint, want.Info.Fingerprint) {
				t.Fatalf("goroutine %d: fingerprint mismatch for %q", g, s)
			}
			// The singleflight invariant: all goroutines share one Info.
			if e.Info != results[0][s].Info {
				t.Fatalf("goroutine %d: Info for %q not shared (singleflight violated)", g, s)
			}
		}
	}
}

// TestParseParallelMatchesSerial checks ParseParallel returns exactly the
// serial result (order, stats, Info sharing) for several worker counts.
func TestParseParallelMatchesSerial(t *testing.T) {
	var l logmodel.Log
	for i := 0; i < 500; i++ {
		l = append(l, logmodel.Entry{Seq: int64(i), Statement: soupStatement(i)})
	}
	want, wantStats := Parse(l)
	for _, workers := range []int{2, 4, 8} {
		got, gotStats := ParseParallel(l, workers)
		if gotStats != wantStats {
			t.Fatalf("workers=%d: stats %+v, want %+v", workers, gotStats, wantStats)
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: len %d, want %d", workers, len(got), len(want))
		}
		for i := range got {
			if got[i].Class != want[i].Class || got[i].Statement != want[i].Statement {
				t.Fatalf("workers=%d: entry %d differs: %+v vs %+v", workers, i, got[i], want[i])
			}
			if (got[i].Info == nil) != (want[i].Info == nil) {
				t.Fatalf("workers=%d: entry %d Info presence differs", workers, i)
			}
			if got[i].Info != nil && got[i].Info.Fingerprint != want[i].Info.Fingerprint {
				t.Fatalf("workers=%d: entry %d fingerprint differs", workers, i)
			}
		}
		// Identical texts share one Info within the parallel result.
		byStmt := map[string]*Entry{}
		for i := range got {
			e := &got[i]
			if e.Class != sqlast.ClassSelect {
				continue
			}
			if prev, ok := byStmt[e.Statement]; ok && prev.Info != e.Info {
				t.Fatalf("workers=%d: %q parsed twice (Info not shared)", workers, e.Statement)
			}
			byStmt[e.Statement] = e
		}
	}
}

// TestSelectsRawMatchesSelectsRaw pins SelectsRaw to the two-step spelling.
func TestSelectsRawMatchesSelectsRaw(t *testing.T) {
	l := mkLog("SELECT a FROM t", "DROP TABLE t", "SELECT b FROM t", "bogus (")
	pl, _ := Parse(l)
	want := pl.Selects().Raw()
	got := pl.SelectsRaw()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("SelectsRaw = %+v, want %+v", got, want)
	}
}

// TestSubset checks index-based carry-through.
func TestSubset(t *testing.T) {
	l := mkLog("SELECT a FROM t", "SELECT b FROM t", "SELECT c FROM t")
	pl, _ := Parse(l)
	sub := pl.Subset([]int{2, 0})
	if len(sub) != 2 || sub[0].Statement != "SELECT c FROM t" || sub[1].Statement != "SELECT a FROM t" {
		t.Fatalf("subset: %+v", sub)
	}
	if sub[0].Info != pl[2].Info {
		t.Fatal("subset must share parse results")
	}
}
