package parsedlog

import (
	"fmt"
	"sync"
	"testing"
	"unsafe"

	"sqlclean/internal/logmodel"
)

// TestParserReadPathHammer races the RCU read path (run with -race): a
// pre-warmed parser serves hits from its published read snapshots while
// other goroutines keep inserting fresh statements, forcing concurrent
// snapshot republishes. Every hit must return the interned first-seen
// statement string (same backing array, not just equal content) and the
// shared *skeleton.Info.
func TestParserReadPathHammer(t *testing.T) {
	const goroutines = 16
	const warm = 200

	p := NewParser()
	interned := make(map[string]string, warm)
	for i := 0; i < warm; i++ {
		s := soupStatement(i)
		e := p.ParseEntry(logmodel.Entry{Statement: s})
		interned[s] = e.Statement
	}

	strData := func(s string) *byte { return unsafe.StringData(s) }

	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			for k := 0; k < 2000; k++ {
				if g%4 == 0 && k%5 == 0 {
					// Writer goroutines keep the dirty maps growing so read
					// snapshots republish while readers are mid-lookup.
					s := soupStatement(warm + g*2000 + k)
					p.ParseEntry(logmodel.Entry{Statement: s})
					continue
				}
				// Force a fresh string allocation with the warm content, so a
				// pointer match below can only come from interning.
				s := string([]byte(soupStatement(k % warm)))
				e := p.ParseEntry(logmodel.Entry{Statement: s})
				want := interned[soupStatement(k%warm)]
				if e.Statement != want {
					t.Errorf("goroutine %d: statement content diverged", g)
					return
				}
				if strData(e.Statement) != strData(want) {
					t.Errorf("goroutine %d: statement %q not interned (different backing array)", g, want)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestIntern pins the canonical-instance contract: Intern returns the same
// backing string for equal content, including for statements that were never
// parsed, and ParseEntry carries that instance on its entries.
func TestIntern(t *testing.T) {
	p := NewParser()
	a := p.Intern("SELECT a FROM t")
	b := p.Intern(string([]byte("SELECT a FROM t")))
	if a != b {
		t.Fatalf("Intern content mismatch: %q vs %q", a, b)
	}
	if unsafe.StringData(a) != unsafe.StringData(b) {
		t.Fatal("Intern returned two different backing arrays for equal content")
	}
	e := p.ParseEntry(logmodel.Entry{Statement: string([]byte("SELECT a FROM t"))})
	if unsafe.StringData(e.Statement) != unsafe.StringData(a) {
		t.Fatal("ParseEntry did not return the interned statement instance")
	}
}

// TestReadSnapshotPromotion checks the publish policy actually promotes
// entries into the lock-free read map: after enough inserts into one shard,
// a lookup must be served from the read snapshot (observable as hit metrics
// continuing to work and the slot surviving across publishes).
func TestReadSnapshotPromotion(t *testing.T) {
	p := NewParser()
	stmts := make([]string, 1000)
	for i := range stmts {
		stmts[i] = fmt.Sprintf("SELECT a FROM t WHERE id = %d", i)
		p.ParseEntry(logmodel.Entry{Statement: stmts[i]})
	}
	published := 0
	for i := range p.shards {
		if m := p.shards[i].read.Load(); m != nil {
			published += len(*m)
		}
	}
	if published == 0 {
		t.Fatal("no shard ever published a read snapshot after 1000 inserts")
	}
	// Slots must be stable across publishes: re-parsing returns the same
	// interned instance and Info as the first pass.
	for _, s := range stmts {
		e1 := p.ParseEntry(logmodel.Entry{Statement: s})
		e2 := p.ParseEntry(logmodel.Entry{Statement: string([]byte(s))})
		if e1.Info != e2.Info || unsafe.StringData(e1.Statement) != unsafe.StringData(e2.Statement) {
			t.Fatalf("slot for %q not stable across snapshot publishes", s)
		}
	}
}
