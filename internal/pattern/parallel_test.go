package pattern

import (
	"reflect"
	"testing"
	"time"

	"sqlclean/internal/parsedlog"
	"sqlclean/internal/session"
	"sqlclean/internal/workload"
)

// TestTemplatesParallelDeterminism is the acceptance test for parallel
// template mining: every worker count must return byte-identical output to
// the serial aggregation on a seeded workload — same stats, same descriptive
// fields (Example from the first occurrence), same tie-break order.
func TestTemplatesParallelDeterminism(t *testing.T) {
	log, _ := workload.Generate(workload.DefaultConfig().Scale(0.1))
	pl, _ := parsedlog.Parse(log)
	want := Templates(pl)
	if len(want) == 0 {
		t.Fatal("seeded workload produced no templates")
	}
	for _, workers := range []int{1, 2, 4, 8} {
		got := TemplatesParallel(pl, workers)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: Templates differ from serial (%d vs %d entries)", workers, len(got), len(want))
		}
	}
}

// TestSequencesParallelDeterminism pins cross-worker determinism of sequence
// mining: identical patterns, frequencies, user popularity, and — the subtle
// part — identical descriptive Skeletons, which must come from the pattern's
// first instance in session order regardless of how sessions were chunked.
func TestSequencesParallelDeterminism(t *testing.T) {
	log, _ := workload.Generate(workload.DefaultConfig().Scale(0.1))
	pl, _ := parsedlog.Parse(log)
	sessions := session.Build(log, session.Options{MaxGap: 5 * time.Minute, SplitOnLabel: true})
	for _, maxLen := range []int{2, 3, 4} {
		want := Sequences(pl, sessions, maxLen)
		if maxLen == 3 && len(want) == 0 {
			t.Fatal("seeded workload produced no sequences")
		}
		for _, workers := range []int{1, 2, 4, 8} {
			got := SequencesParallel(pl, sessions, maxLen, workers)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("maxLen=%d workers=%d: Sequences differ from serial (%d vs %d patterns)",
					maxLen, workers, len(got), len(want))
			}
		}
	}
}
