package pattern

// SWS (sliding-window-search) classification, §6.5 of the paper: frequent
// patterns with very low user popularity whose instances sweep disjoint
// regions of the data space are "machine downloads" — bots copying the
// database piece-wise. They are not antipatterns (no performance harm) but
// they are noise for user-interest analyses, so the framework can label and
// optionally exclude them.

import (
	"sqlclean/internal/obs"
	"sqlclean/internal/parallel"
)

// SWSOptions are the two thresholds of the paper's Table 8 plus the
// disjointness requirement.
type SWSOptions struct {
	// FrequencyPct classifies only templates whose frequency is at least
	// this percentage of the total SELECT count (Table 8 columns: 10, 1,
	// 0.1, 0.01).
	FrequencyPct float64
	// MaxUserPopularity classifies only templates issued by at most this
	// many users (Table 8 rows: 1, 2, 4, 8, 16).
	MaxUserPopularity int
	// MinDisjointRatio requires the share of distinct WHERE clauses among
	// the occurrences to be at least this value — the "disjoint filtering
	// conditions" property. Zero disables the check.
	MinDisjointRatio float64
}

// DefaultSWSOptions match the paper's headline setting: 1 % frequency,
// popularity ≤ 2, mostly-disjoint filters.
func DefaultSWSOptions() SWSOptions {
	return SWSOptions{FrequencyPct: 1, MaxUserPopularity: 2, MinDisjointRatio: 0.5}
}

// IsSWS reports whether one template qualifies as SWS under the options,
// given the total number of SELECT statements in the log.
func IsSWS(t TemplateStats, totalSelects int, opt SWSOptions) bool {
	if totalSelects == 0 || t.Frequency == 0 {
		return false
	}
	// A template issued without user information cannot be attributed, so
	// popularity filtering is impossible (paper §6.8); treat popularity 1
	// with empty users the same as any other.
	freqPct := 100 * float64(t.Frequency) / float64(totalSelects)
	if freqPct < opt.FrequencyPct {
		return false
	}
	if t.UserPopularity > opt.MaxUserPopularity {
		return false
	}
	if opt.MinDisjointRatio > 0 && t.DisjointRatio() < opt.MinDisjointRatio {
		return false
	}
	// A sliding window search needs more than one window.
	return t.Frequency >= 2
}

// ClassifySWS returns the fingerprints of all SWS templates.
func ClassifySWS(templates []TemplateStats, totalSelects int, opt SWSOptions) map[uint64]bool {
	return ClassifySWSParallel(templates, totalSelects, opt, 1)
}

// ClassifySWSParallel evaluates the per-template SWS predicate with up to
// `workers` goroutines (0 selects GOMAXPROCS, 1 is the serial path).
// Classification is per template and order-free, so the result set is
// identical to ClassifySWS for every worker count.
func ClassifySWSParallel(templates []TemplateStats, totalSelects int, opt SWSOptions, workers int) map[uint64]bool {
	return ClassifySWSParallelSpan(templates, totalSelects, opt, workers, nil)
}

// ClassifySWSParallelSpan is ClassifySWSParallel with per-worker child
// spans attached to sp (nil sp skips tracing; the result is unchanged
// either way).
func ClassifySWSParallelSpan(templates []TemplateStats, totalSelects int, opt SWSOptions, workers int, sp *obs.Span) map[uint64]bool {
	verdicts := parallel.MapSpan(sp, workers, templates, func(_ int, t TemplateStats) bool {
		return IsSWS(t, totalSelects, opt)
	})
	out := map[uint64]bool{}
	for i, sws := range verdicts {
		if sws {
			out[templates[i].Fingerprint] = true
		}
	}
	return out
}

// SWSCoverage returns the fraction (0..1) of the log's SELECT statements
// covered by SWS templates under the options — one cell of Table 8.
func SWSCoverage(templates []TemplateStats, totalSelects int, opt SWSOptions) float64 {
	if totalSelects == 0 {
		return 0
	}
	covered := 0
	for _, t := range templates {
		if IsSWS(t, totalSelects, opt) {
			covered += t.Frequency
		}
	}
	return float64(covered) / float64(totalSelects)
}

// SWSSweep evaluates SWSCoverage over a grid of thresholds and returns a
// matrix indexed [popularity][frequency], reproducing Table 8.
func SWSSweep(templates []TemplateStats, totalSelects int, freqPcts []float64, popularities []int, minDisjoint float64) [][]float64 {
	out := make([][]float64, len(popularities))
	for i, pop := range popularities {
		out[i] = make([]float64, len(freqPcts))
		for j, f := range freqPcts {
			out[i][j] = SWSCoverage(templates, totalSelects, SWSOptions{
				FrequencyPct:      f,
				MaxUserPopularity: pop,
				MinDisjointRatio:  minDisjoint,
			})
		}
	}
	return out
}
