// Package pattern mines query templates and patterns from a parsed query
// log: template occurrence statistics (frequency and userPopularity,
// Definitions 9–10), multi-template sequence patterns, and the
// sliding-window-search (SWS) classification of §6.5.
package pattern

import (
	"hash/fnv"
	"sort"
	"strconv"

	"sqlclean/internal/parsedlog"
	"sqlclean/internal/session"
	"sqlclean/internal/sqlast"
)

// TemplateStats aggregates all occurrences of one query template
// (Definition 4: the triple of clause skeletons).
type TemplateStats struct {
	Fingerprint uint64
	// Skeleton is the full skeleton-query text (all clauses, masked).
	Skeleton      string
	SFC, SWC, SSC string
	// Frequency is the occurrence count (Definition 9 at template
	// granularity: every occurrence is an instance of the length-1
	// pattern).
	Frequency int
	// UserPopularity is the number of distinct users (IPs) that issued the
	// template (Definition 10).
	UserPopularity int
	// DistinctWhere is the number of distinct concrete WHERE clauses among
	// the occurrences. DistinctWhere close to Frequency means the
	// occurrences sweep disjoint filter values — the SWS signature.
	DistinctWhere int
	// Example is one concrete statement text.
	Example string
}

// DisjointRatio is DistinctWhere / Frequency; 1.0 means every occurrence
// filtered a different region.
func (t TemplateStats) DisjointRatio() float64 {
	if t.Frequency == 0 {
		return 0
	}
	return float64(t.DistinctWhere) / float64(t.Frequency)
}

// Templates computes per-template statistics over the SELECT entries of a
// parsed log, sorted by descending frequency (ties broken by skeleton text
// for determinism).
func Templates(pl parsedlog.Log) []TemplateStats {
	type agg struct {
		stats TemplateStats
		users map[string]struct{}
		wcs   map[uint64]struct{}
	}
	byFP := map[uint64]*agg{}
	var order []uint64
	for _, e := range pl {
		if e.Class != sqlast.ClassSelect || e.Info == nil {
			continue
		}
		fp := e.Info.Fingerprint
		a, ok := byFP[fp]
		if !ok {
			a = &agg{
				stats: TemplateStats{
					Fingerprint: fp,
					Skeleton:    e.Info.SkeletonText(),
					SFC:         e.Info.SFC,
					SWC:         e.Info.SWC,
					SSC:         e.Info.SSC,
					Example:     e.Statement,
				},
				users: map[string]struct{}{},
				wcs:   map[uint64]struct{}{},
			}
			byFP[fp] = a
			order = append(order, fp)
		}
		a.stats.Frequency++
		a.users[e.User] = struct{}{}
		a.wcs[hashStr(e.Info.WC)] = struct{}{}
	}
	out := make([]TemplateStats, 0, len(order))
	for _, fp := range order {
		a := byFP[fp]
		a.stats.UserPopularity = len(a.users)
		a.stats.DistinctWhere = len(a.wcs)
		out = append(out, a.stats)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Frequency != out[j].Frequency {
			return out[i].Frequency > out[j].Frequency
		}
		return out[i].Skeleton < out[j].Skeleton
	})
	return out
}

func hashStr(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// ---------------------------------------------------------------------------
// Multi-template sequence patterns
// ---------------------------------------------------------------------------

// SeqPattern is a pattern of several templates (Definition 7) identified by
// its collapsed signature: the sequence of template fingerprints with
// consecutive repeats collapsed, so that runs of different lengths of the
// same shape count as the same pattern.
type SeqPattern struct {
	Signature []uint64
	// Skeletons holds the skeleton text for each signature element.
	Skeletons []string
	// Frequency is the number of instances (maximal matching runs).
	Frequency int
	// Queries is the total number of log entries covered by all instances.
	Queries int
	// UserPopularity is the number of distinct users with at least one
	// instance.
	UserPopularity int
}

func sigKey(sig []uint64) string {
	var b []byte
	for i, fp := range sig {
		if i > 0 {
			b = append(b, '|')
		}
		b = strconv.AppendUint(b, fp, 16)
	}
	return string(b)
}

// Sequences mines collapsed-signature patterns of length 2..maxLen from the
// sessions of a parsed log. Within each session the template stream is
// collapsed (consecutive repeats merged) and every window of length 2..maxLen
// over the collapsed stream counts as one instance of the corresponding
// pattern. Results are sorted by descending frequency.
func Sequences(pl parsedlog.Log, sessions []session.Session, maxLen int) []SeqPattern {
	if maxLen < 2 {
		maxLen = 2
	}
	type agg struct {
		p     SeqPattern
		users map[string]struct{}
	}
	byKey := map[string]*agg{}
	var order []string

	for _, sess := range sessions {
		// Collapse the session's template stream.
		type block struct {
			fp    uint64
			skel  string
			count int
		}
		var blocks []block
		for _, idx := range sess.Indices {
			e := pl[idx]
			if e.Class != sqlast.ClassSelect || e.Info == nil {
				// Non-select entries break the stream.
				blocks = append(blocks, block{fp: 0})
				continue
			}
			fp := e.Info.Fingerprint
			if n := len(blocks); n > 0 && blocks[n-1].fp == fp {
				blocks[n-1].count++
				continue
			}
			blocks = append(blocks, block{fp: fp, skel: e.Info.SkeletonText(), count: 1})
		}
		for winLen := 2; winLen <= maxLen; winLen++ {
			for i := 0; i+winLen <= len(blocks); i++ {
				ok := true
				queries := 0
				sig := make([]uint64, 0, winLen)
				skels := make([]string, 0, winLen)
				for _, b := range blocks[i : i+winLen] {
					if b.fp == 0 {
						ok = false
						break
					}
					sig = append(sig, b.fp)
					skels = append(skels, b.skel)
					queries += b.count
				}
				if !ok {
					continue
				}
				k := sigKey(sig)
				a, seen := byKey[k]
				if !seen {
					a = &agg{p: SeqPattern{Signature: sig, Skeletons: skels}, users: map[string]struct{}{}}
					byKey[k] = a
					order = append(order, k)
				}
				a.p.Frequency++
				a.p.Queries += queries
				a.users[sess.User] = struct{}{}
			}
		}
	}

	out := make([]SeqPattern, 0, len(order))
	for _, k := range order {
		a := byKey[k]
		a.p.UserPopularity = len(a.users)
		out = append(out, a.p)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Frequency != out[j].Frequency {
			return out[i].Frequency > out[j].Frequency
		}
		return sigKey(out[i].Signature) < sigKey(out[j].Signature)
	})
	return out
}
