// Package pattern mines query templates and patterns from a parsed query
// log: template occurrence statistics (frequency and userPopularity,
// Definitions 9–10), multi-template sequence patterns, and the
// sliding-window-search (SWS) classification of §6.5.
package pattern

import (
	"sort"
	"strconv"
	"sync"

	"sqlclean/internal/parallel"
	"sqlclean/internal/parsedlog"
	"sqlclean/internal/session"
	"sqlclean/internal/sqlast"
)

// TemplateStats aggregates all occurrences of one query template
// (Definition 4: the triple of clause skeletons).
type TemplateStats struct {
	Fingerprint uint64
	// Skeleton is the full skeleton-query text (all clauses, masked).
	Skeleton      string
	SFC, SWC, SSC string
	// Frequency is the occurrence count (Definition 9 at template
	// granularity: every occurrence is an instance of the length-1
	// pattern).
	Frequency int
	// UserPopularity is the number of distinct users (IPs) that issued the
	// template (Definition 10).
	UserPopularity int
	// DistinctWhere is the number of distinct concrete WHERE clauses among
	// the occurrences. DistinctWhere close to Frequency means the
	// occurrences sweep disjoint filter values — the SWS signature.
	DistinctWhere int
	// Example is one concrete statement text.
	Example string
}

// DisjointRatio is DistinctWhere / Frequency; 1.0 means every occurrence
// filtered a different region.
func (t TemplateStats) DisjointRatio() float64 {
	if t.Frequency == 0 {
		return 0
	}
	return float64(t.DistinctWhere) / float64(t.Frequency)
}

// tmplAgg is the per-template accumulator. The distinct-user and
// distinct-WHERE sets are not maps but append-only slices with a
// consecutive-repeat filter, sorted and deduplicated once at finalize:
// template aggregation is the hottest loop of the mining stage and the
// per-occurrence map inserts (two hashed writes per entry) dominated its
// allocation profile. firstIdx is the log index of the template's first
// occurrence — the key that makes the parallel merge deterministic.
type tmplAgg struct {
	stats    TemplateStats
	firstIdx int
	users    []string
	wcs      []uint64
}

// observe folds one occurrence into the aggregate. The last-element checks
// skip the common run of one user (or one WHERE text) issuing the template
// repeatedly; full dedup happens in finalize.
func (a *tmplAgg) observe(user string, wcHash uint64) {
	a.stats.Frequency++
	if n := len(a.users); n == 0 || a.users[n-1] != user {
		a.users = append(a.users, user)
	}
	if n := len(a.wcs); n == 0 || a.wcs[n-1] != wcHash {
		a.wcs = append(a.wcs, wcHash)
	}
}

func (a *tmplAgg) finalize() TemplateStats {
	a.stats.UserPopularity = countDistinctStrings(a.users)
	a.stats.DistinctWhere = countDistinctU64(a.wcs)
	return a.stats
}

func countDistinctStrings(s []string) int {
	if len(s) < 2 {
		return len(s)
	}
	sort.Strings(s)
	n := 1
	for i := 1; i < len(s); i++ {
		if s[i] != s[i-1] {
			n++
		}
	}
	return n
}

func countDistinctU64(s []uint64) int {
	if len(s) < 2 {
		return len(s)
	}
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	n := 1
	for i := 1; i < len(s); i++ {
		if s[i] != s[i-1] {
			n++
		}
	}
	return n
}

// Templates computes per-template statistics over the SELECT entries of a
// parsed log, sorted by descending frequency (ties broken by skeleton text
// for determinism).
func Templates(pl parsedlog.Log) []TemplateStats {
	return TemplatesParallel(pl, 1)
}

// TemplatesParallel is Templates using up to `workers` goroutines
// (0 selects GOMAXPROCS, 1 is the serial path). Each worker aggregates a
// contiguous chunk of the log into fingerprint-keyed partials; partials are
// merged under a lock with commutative updates (sums, list concatenation,
// min-firstIdx winner for the descriptive fields), so the result is
// bit-identical to the serial run for every worker count.
func TemplatesParallel(pl parsedlog.Log, workers int) []TemplateStats {
	aggregate := func(byFP map[uint64]*tmplAgg, lo, hi int) {
		for i := lo; i < hi; i++ {
			e := &pl[i]
			if e.Class != sqlast.ClassSelect || e.Info == nil {
				continue
			}
			fp := e.Info.Fingerprint
			a, ok := byFP[fp]
			if !ok {
				a = newTmplAgg(e, i)
				byFP[fp] = a
			}
			a.observe(e.User, hashStr(e.Info.WC))
		}
	}

	byFP := map[uint64]*tmplAgg{}
	if parallel.Workers(workers) <= 1 {
		aggregate(byFP, 0, len(pl))
	} else {
		var mu sync.Mutex
		parallel.Chunks(workers, len(pl), func(lo, hi int) {
			local := map[uint64]*tmplAgg{}
			aggregate(local, lo, hi)
			mu.Lock()
			mergeTmpl(byFP, local)
			mu.Unlock()
		})
	}

	out := make([]TemplateStats, 0, len(byFP))
	aggs := make([]*tmplAgg, 0, len(byFP))
	for _, a := range byFP {
		aggs = append(aggs, a)
	}
	// Restore the serial first-encounter order before the stable sort so
	// every worker count yields the same slice, byte for byte.
	sort.Slice(aggs, func(i, j int) bool { return aggs[i].firstIdx < aggs[j].firstIdx })
	for _, a := range aggs {
		out = append(out, a.finalize())
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Frequency != out[j].Frequency {
			return out[i].Frequency > out[j].Frequency
		}
		return out[i].Skeleton < out[j].Skeleton
	})
	return out
}

func newTmplAgg(e *parsedlog.Entry, idx int) *tmplAgg {
	return &tmplAgg{
		stats: TemplateStats{
			Fingerprint: e.Info.Fingerprint,
			Skeleton:    e.Info.SkeletonText(),
			SFC:         e.Info.SFC,
			SWC:         e.Info.SWC,
			SSC:         e.Info.SSC,
			Example:     e.Statement,
		},
		firstIdx: idx,
	}
}

// mergeTmpl folds a chunk's partial aggregates into the global map. All
// updates are order-independent: counts add, set slices concatenate (the
// finalize dedup is order-blind), and the template's descriptive fields
// (skeleton texts, example) follow the minimal firstIdx so the earliest
// occurrence wins exactly as it does serially.
func mergeTmpl(dst, src map[uint64]*tmplAgg) {
	for fp, a := range src {
		g, ok := dst[fp]
		if !ok {
			dst[fp] = a
			continue
		}
		if a.firstIdx < g.firstIdx {
			g.stats.Skeleton, g.stats.SFC, g.stats.SWC, g.stats.SSC = a.stats.Skeleton, a.stats.SFC, a.stats.SWC, a.stats.SSC
			g.stats.Example = a.stats.Example
			g.firstIdx = a.firstIdx
		}
		g.stats.Frequency += a.stats.Frequency
		g.users = append(g.users, a.users...)
		g.wcs = append(g.wcs, a.wcs...)
	}
}

// HashWhere is the hash the template miner applies to concrete WHERE
// clauses when counting DistinctWhere. It is part of the streaming
// contract: the sketch layer's SWS evidence must hash WHERE texts with
// exactly this function, or its drain-time DisjointRatio would diverge
// from the batch pipeline's.
func HashWhere(wc string) uint64 { return hashStr(wc) }

// hashStr is an inline FNV-1a over the string bytes — hash/fnv's
// interface-based writer escapes to the heap, which showed up as one
// allocation per log entry in the aggregation loop.
func hashStr(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// ---------------------------------------------------------------------------
// Multi-template sequence patterns
// ---------------------------------------------------------------------------

// SeqPattern is a pattern of several templates (Definition 7) identified by
// its collapsed signature: the sequence of template fingerprints with
// consecutive repeats collapsed, so that runs of different lengths of the
// same shape count as the same pattern.
type SeqPattern struct {
	Signature []uint64
	// Skeletons holds the skeleton text for each signature element.
	Skeletons []string
	// Frequency is the number of instances (maximal matching runs).
	Frequency int
	// Queries is the total number of log entries covered by all instances.
	Queries int
	// UserPopularity is the number of distinct users with at least one
	// instance.
	UserPopularity int
}

func sigKey(sig []uint64) string {
	var b []byte
	for i, fp := range sig {
		if i > 0 {
			b = append(b, '|')
		}
		b = strconv.AppendUint(b, fp, 16)
	}
	return string(b)
}

// seqAgg accumulates one collapsed-signature pattern. firstSess/firstWin
// locate the pattern's first instance (session index, then window ordinal
// within that session's scan) so the parallel merge picks the same
// descriptive Skeletons the serial scan would.
type seqAgg struct {
	p         SeqPattern
	firstSess int
	firstWin  int
	users     []string
}

// seqBlock is one run of a collapsed session stream; fp 0 marks a
// non-SELECT stream breaker.
type seqBlock struct {
	fp    uint64
	skel  string
	count int
}

// Sequences mines collapsed-signature patterns of length 2..maxLen from the
// sessions of a parsed log. Within each session the template stream is
// collapsed (consecutive repeats merged) and every window of length 2..maxLen
// over the collapsed stream counts as one instance of the corresponding
// pattern. Results are sorted by descending frequency.
func Sequences(pl parsedlog.Log, sessions []session.Session, maxLen int) []SeqPattern {
	return SequencesParallel(pl, sessions, maxLen, 1)
}

// mineSessions scans sessions[lo:hi] into byKey. blocks and keyBuf are
// caller-owned scratch reused across sessions — the per-session block slice
// was one of the mining stage's main allocators.
func mineSessions(pl parsedlog.Log, sessions []session.Session, maxLen, lo, hi int, byKey map[string]*seqAgg) {
	blocks := make([]seqBlock, 0, 64)
	var keyBuf []byte
	for si := lo; si < hi; si++ {
		sess := &sessions[si]
		blocks = blocks[:0]
		for _, idx := range sess.Indices {
			e := &pl[idx]
			if e.Class != sqlast.ClassSelect || e.Info == nil {
				// Non-select entries break the stream.
				blocks = append(blocks, seqBlock{fp: 0})
				continue
			}
			fp := e.Info.Fingerprint
			if n := len(blocks); n > 0 && blocks[n-1].fp == fp {
				blocks[n-1].count++
				continue
			}
			blocks = append(blocks, seqBlock{fp: fp, skel: e.Info.SkeletonText(), count: 1})
		}
		win := 0
		for winLen := 2; winLen <= maxLen; winLen++ {
			for i := 0; i+winLen <= len(blocks); i++ {
				ok := true
				queries := 0
				keyBuf = keyBuf[:0]
				for j, b := range blocks[i : i+winLen] {
					if b.fp == 0 {
						ok = false
						break
					}
					if j > 0 {
						keyBuf = append(keyBuf, '|')
					}
					keyBuf = append(keyBuf, strconv.FormatUint(b.fp, 16)...)
					queries += b.count
				}
				if !ok {
					continue
				}
				// map lookup with a []byte key: the compiler elides the
				// string conversion, so seen windows allocate nothing.
				a, seen := byKey[string(keyBuf)]
				if !seen {
					sig := make([]uint64, 0, winLen)
					skels := make([]string, 0, winLen)
					for _, b := range blocks[i : i+winLen] {
						sig = append(sig, b.fp)
						skels = append(skels, b.skel)
					}
					a = &seqAgg{
						p:         SeqPattern{Signature: sig, Skeletons: skels},
						firstSess: si,
						firstWin:  win,
					}
					byKey[string(keyBuf)] = a
				}
				a.p.Frequency++
				a.p.Queries += queries
				if n := len(a.users); n == 0 || a.users[n-1] != sess.User {
					a.users = append(a.users, sess.User)
				}
				win++
			}
		}
	}
}

// SequencesParallel is Sequences using up to `workers` goroutines: sessions
// fan out across workers, each mining into a local signature-keyed partial,
// and partials merge with commutative updates (the earliest instance, by
// session index then window ordinal, keeps the descriptive fields). The
// result is bit-identical to the serial run for every worker count.
func SequencesParallel(pl parsedlog.Log, sessions []session.Session, maxLen, workers int) []SeqPattern {
	if maxLen < 2 {
		maxLen = 2
	}
	byKey := map[string]*seqAgg{}
	if parallel.Workers(workers) <= 1 {
		mineSessions(pl, sessions, maxLen, 0, len(sessions), byKey)
	} else {
		var mu sync.Mutex
		parallel.Chunks(workers, len(sessions), func(lo, hi int) {
			local := map[string]*seqAgg{}
			mineSessions(pl, sessions, maxLen, lo, hi, local)
			mu.Lock()
			mergeSeq(byKey, local)
			mu.Unlock()
		})
	}

	out := make([]SeqPattern, 0, len(byKey))
	for _, a := range byKey {
		a.p.UserPopularity = countDistinctStrings(a.users)
		out = append(out, a.p)
	}
	// The comparator is a total order (collapsed signatures are unique per
	// pattern), so sorting from any map-iteration order is deterministic.
	sort.Slice(out, func(i, j int) bool {
		if out[i].Frequency != out[j].Frequency {
			return out[i].Frequency > out[j].Frequency
		}
		return sigLess(out[i].Signature, out[j].Signature)
	})
	return out
}

// mergeSeq folds a chunk's partial pattern aggregates into the global map.
func mergeSeq(dst, src map[string]*seqAgg) {
	for k, a := range src {
		g, ok := dst[k]
		if !ok {
			dst[k] = a
			continue
		}
		if a.firstSess < g.firstSess || (a.firstSess == g.firstSess && a.firstWin < g.firstWin) {
			g.p.Signature, g.p.Skeletons = a.p.Signature, a.p.Skeletons
			g.firstSess, g.firstWin = a.firstSess, a.firstWin
		}
		g.p.Frequency += a.p.Frequency
		g.p.Queries += a.p.Queries
		g.users = append(g.users, a.users...)
	}
}

// sigLess orders signatures exactly like a byte comparison of their
// '|'-joined hex key strings, without materializing the keys. The subtle
// case is one element's hex being a prefix of the other's: the next virtual
// byte is then '|' (or end of key), and '|' sorts above every hex digit.
func sigLess(a, b []uint64) bool {
	var ba, bb [16]byte
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] == b[i] {
			continue
		}
		ha := strconv.AppendUint(ba[:0], a[i], 16)
		hb := strconv.AppendUint(bb[:0], b[i], 16)
		m := len(ha)
		if len(hb) < m {
			m = len(hb)
		}
		for j := 0; j < m; j++ {
			if ha[j] != hb[j] {
				return ha[j] < hb[j]
			}
		}
		if len(ha) < len(hb) {
			// a's key continues with '|' (> any hex digit) or ends here.
			return i == len(a)-1
		}
		// b's key continues with '|' or ends here.
		return i != len(b)-1
	}
	return len(a) < len(b)
}
