package pattern

import (
	"testing"
	"time"

	"sqlclean/internal/logmodel"
	"sqlclean/internal/parsedlog"
	"sqlclean/internal/session"
)

func buildLog(entries ...logmodel.Entry) (parsedlog.Log, []session.Session) {
	base := time.Date(2003, 6, 1, 0, 0, 0, 0, time.UTC)
	for i := range entries {
		entries[i].Seq = int64(i)
		entries[i].Time = base.Add(time.Duration(i) * time.Second)
	}
	pl, _ := parsedlog.Parse(entries)
	sess := session.Build(entries, session.Options{})
	return pl, sess
}

func e(user, stmt string) logmodel.Entry {
	return logmodel.Entry{User: user, Statement: stmt}
}

func TestTemplatesFrequencyAndPopularity(t *testing.T) {
	pl, _ := buildLog(
		e("u1", "SELECT a FROM t WHERE id = 1"),
		e("u1", "SELECT a FROM t WHERE id = 2"),
		e("u2", "SELECT a FROM t WHERE id = 3"),
		e("u2", "SELECT b FROM t WHERE id = 3"),
		e("u3", "INSERT INTO t VALUES (1)"), // ignored: not a SELECT
	)
	ts := Templates(pl)
	if len(ts) != 2 {
		t.Fatalf("templates: %+v", ts)
	}
	top := ts[0]
	if top.Frequency != 3 || top.UserPopularity != 2 {
		t.Errorf("top: %+v", top)
	}
	if top.Skeleton != "SELECT a FROM t WHERE id = <num>" {
		t.Errorf("skeleton: %q", top.Skeleton)
	}
	if top.DistinctWhere != 3 {
		t.Errorf("distinct where: %d", top.DistinctWhere)
	}
	if top.Example == "" {
		t.Error("missing example")
	}
}

func TestTemplatesSortedByFrequencyThenSkeleton(t *testing.T) {
	pl, _ := buildLog(
		e("u", "SELECT b FROM t"),
		e("u", "SELECT a FROM t"),
	)
	ts := Templates(pl)
	if len(ts) != 2 || ts[0].Skeleton > ts[1].Skeleton {
		t.Errorf("tie-break order: %+v", ts)
	}
}

func TestDisjointRatio(t *testing.T) {
	pl, _ := buildLog(
		e("u", "SELECT a FROM t WHERE id = 1"),
		e("u", "SELECT a FROM t WHERE id = 1"),
		e("u", "SELECT a FROM t WHERE id = 2"),
		e("u", "SELECT a FROM t WHERE id = 3"),
	)
	ts := Templates(pl)
	if got := ts[0].DisjointRatio(); got != 0.75 {
		t.Errorf("ratio: %v", got)
	}
	var zero TemplateStats
	if zero.DisjointRatio() != 0 {
		t.Error("zero frequency ratio must be 0")
	}
}

func TestSequencesMining(t *testing.T) {
	pl, sess := buildLog(
		// Session of u: A A B | then A B again later (same session, gaps
		// are 1 s so no split).
		e("u", "SELECT a FROM t WHERE id = 1"),
		e("u", "SELECT a FROM t WHERE id = 2"),
		e("u", "SELECT b FROM u2 WHERE k = 1"),
		e("u", "SELECT a FROM t WHERE id = 3"),
		e("u", "SELECT b FROM u2 WHERE k = 9"),
	)
	seqs := Sequences(pl, sess, 2)
	if len(seqs) == 0 {
		t.Fatal("no sequences found")
	}
	top := seqs[0]
	// Collapsed stream is A B A B → windows AB, BA, AB → AB twice.
	if top.Frequency != 2 || len(top.Signature) != 2 {
		t.Fatalf("top: %+v", top)
	}
	// The first AB window covers 3 queries (A collapsed 2 + B 1), the
	// second 2 queries.
	if top.Queries != 5 {
		t.Errorf("queries covered: %d", top.Queries)
	}
	if top.UserPopularity != 1 {
		t.Errorf("popularity: %d", top.UserPopularity)
	}
}

func TestSequencesBrokenByNonSelect(t *testing.T) {
	pl, sess := buildLog(
		e("u", "SELECT a FROM t WHERE id = 1"),
		e("u", "INSERT INTO x VALUES (1)"),
		e("u", "SELECT b FROM u2 WHERE k = 1"),
	)
	seqs := Sequences(pl, sess, 3)
	if len(seqs) != 0 {
		t.Errorf("sequences across a non-select: %+v", seqs)
	}
}

func TestSequencesMaxLenFloor(t *testing.T) {
	pl, sess := buildLog(
		e("u", "SELECT a FROM t WHERE id = 1"),
		e("u", "SELECT b FROM u2 WHERE k = 1"),
	)
	// maxLen below 2 is clamped to 2.
	seqs := Sequences(pl, sess, 0)
	if len(seqs) != 1 {
		t.Errorf("got %+v", seqs)
	}
}

func TestIsSWS(t *testing.T) {
	base := TemplateStats{Frequency: 100, UserPopularity: 1, DistinctWhere: 100}
	opt := SWSOptions{FrequencyPct: 1, MaxUserPopularity: 2, MinDisjointRatio: 0.5}
	if !IsSWS(base, 1000, opt) {
		t.Error("archetypal SWS not classified")
	}
	lowFreq := base
	lowFreq.Frequency = 5
	lowFreq.DistinctWhere = 5
	if IsSWS(lowFreq, 1000, opt) {
		t.Error("infrequent template classified")
	}
	popular := base
	popular.UserPopularity = 10
	if IsSWS(popular, 1000, opt) {
		t.Error("popular template classified")
	}
	repeats := base
	repeats.DistinctWhere = 10 // mostly repeated filters
	if IsSWS(repeats, 1000, opt) {
		t.Error("non-disjoint template classified")
	}
	if IsSWS(base, 0, opt) {
		t.Error("empty log cannot classify")
	}
	one := TemplateStats{Frequency: 1, UserPopularity: 1, DistinctWhere: 1}
	if IsSWS(one, 1, SWSOptions{FrequencyPct: 1, MaxUserPopularity: 1}) {
		t.Error("single occurrence is not a sliding window")
	}
}

func TestSWSCoverageAndSweep(t *testing.T) {
	templates := []TemplateStats{
		{Fingerprint: 1, Frequency: 500, UserPopularity: 1, DistinctWhere: 500},
		{Fingerprint: 2, Frequency: 300, UserPopularity: 5, DistinctWhere: 300},
		{Fingerprint: 3, Frequency: 200, UserPopularity: 50, DistinctWhere: 10},
	}
	total := 1000
	opt := SWSOptions{FrequencyPct: 1, MaxUserPopularity: 2, MinDisjointRatio: 0.5}
	if got := SWSCoverage(templates, total, opt); got != 0.5 {
		t.Errorf("coverage: %v", got)
	}
	set := ClassifySWS(templates, total, opt)
	if !set[1] || set[2] || set[3] {
		t.Errorf("classification: %v", set)
	}

	grid := SWSSweep(templates, total, []float64{10, 1}, []int{1, 8}, 0.5)
	// Coverage must be monotone: lower frequency threshold and higher
	// popularity threshold can only include more.
	if grid[0][0] > grid[0][1] || grid[0][1] > grid[1][1] {
		t.Errorf("sweep not monotone: %v", grid)
	}
	if grid[1][1] != 0.8 { // templates 1 and 2 qualify at pop<=8, freq>=1%
		t.Errorf("corner: %v", grid[1][1])
	}
}

func TestSWSCoverageEmptyLog(t *testing.T) {
	if SWSCoverage(nil, 0, DefaultSWSOptions()) != 0 {
		t.Error("empty coverage must be 0")
	}
}

func TestSequencesUserPopularity(t *testing.T) {
	base := time.Date(2003, 6, 1, 0, 0, 0, 0, time.UTC)
	var l logmodel.Log
	add := func(i int, user, stmt string) {
		l = append(l, logmodel.Entry{Seq: int64(len(l)), Time: base.Add(time.Duration(i) * time.Second), User: user, Statement: stmt})
	}
	// Two users each run the A→B sequence.
	add(0, "u1", "SELECT a FROM t WHERE id = 1")
	add(1, "u1", "SELECT b FROM u2 WHERE k = 1")
	add(2, "u2", "SELECT a FROM t WHERE id = 9")
	add(3, "u2", "SELECT b FROM u2 WHERE k = 9")
	pl, _ := parsedlog.Parse(l)
	sess := session.Build(l, session.Options{})
	seqs := Sequences(pl, sess, 2)
	if len(seqs) != 1 || seqs[0].Frequency != 2 || seqs[0].UserPopularity != 2 {
		t.Fatalf("seqs: %+v", seqs)
	}
}
