// Per-endpoint HTTP middleware metrics. The registry has no label support
// by design (flat atomic names), so the endpoint name is baked into the
// metric name:
//
//	http_<endpoint>_requests_total        requests served
//	http_<endpoint>_latency_ns            handler latency histogram
//	http_<endpoint>_response_bytes_total  response body bytes written
//	http_<endpoint>_status_Nxx_total      responses per status class (2..5)
//
// A p50/p95/p99 over the latency histogram (HistogramSnapshot.Quantile) is
// what /statusz renders as the node's ingest latency story.
package obs

import (
	"fmt"
	"net/http"
	"time"
)

// statusWriter captures the status code and body size a handler produced.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

// InstrumentHandler wraps h with the per-endpoint metrics above. endpoint
// must be a metric-name-safe token ("ingest", "report"). A nil registry
// returns h untouched — the zero-overhead path.
func InstrumentHandler(reg *Registry, endpoint string, h http.Handler) http.Handler {
	if reg == nil {
		return h
	}
	requests := reg.Counter(fmt.Sprintf("http_%s_requests_total", endpoint))
	latency := reg.Histogram(fmt.Sprintf("http_%s_latency_ns", endpoint), DurationBucketsNS)
	respBytes := reg.Counter(fmt.Sprintf("http_%s_response_bytes_total", endpoint))
	var classes [6]*Counter
	for i := 2; i <= 5; i++ {
		classes[i] = reg.Counter(fmt.Sprintf("http_%s_status_%dxx_total", endpoint, i))
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w}
		h.ServeHTTP(sw, r)
		requests.Inc()
		latency.Observe(int64(time.Since(start)))
		respBytes.Add(sw.bytes)
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		if c := sw.status / 100; c >= 2 && c <= 5 {
			classes[c].Inc()
		}
	})
}
