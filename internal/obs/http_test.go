package obs

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestDebugMuxEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("parse_entries_total").Add(42)
	srv := httptest.NewServer(NewDebugMux(reg))
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "sqlclean_parse_entries_total 42") {
		t.Errorf("/metrics: code=%d body=%q", code, body)
	}
	if code, body := get("/debug/vars"); code != 200 || !strings.Contains(body, "sqlclean_metrics") {
		t.Errorf("/debug/vars: code=%d body missing registry (len %d)", code, len(body))
	}
	if code, _ := get("/debug/pprof/"); code != 200 {
		t.Errorf("/debug/pprof/: code=%d", code)
	}
	if code, _ := get("/debug/pprof/cmdline"); code != 200 {
		t.Errorf("/debug/pprof/cmdline: code=%d", code)
	}
}

func TestServeBindsAndShutsDown(t *testing.T) {
	addr, srv, err := Serve("127.0.0.1:0", NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client := http.Client{Timeout: 2 * time.Second}
	resp, err := client.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatalf("GET live server: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("/metrics on live server: %d", resp.StatusCode)
	}
}
