package obs

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"strings"
	"testing"
)

func TestNewLoggerJSON(t *testing.T) {
	var buf bytes.Buffer
	lg, err := NewLogger(&buf, "info", "json")
	if err != nil {
		t.Fatal(err)
	}
	lg = lg.With("component", "test")
	lg.Debug("hidden")
	lg.Info("visible", "trace_id", "deadbeef00000000", "accepted", 3)
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1 {
		t.Fatalf("got %d lines, want 1 (debug filtered): %q", len(lines), buf.String())
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("not JSON: %v (%q)", err, lines[0])
	}
	if rec["msg"] != "visible" || rec["component"] != "test" || rec["trace_id"] != "deadbeef00000000" {
		t.Errorf("record: %+v", rec)
	}
}

func TestNewLoggerText(t *testing.T) {
	var buf bytes.Buffer
	lg, err := NewLogger(&buf, "warn", "text")
	if err != nil {
		t.Fatal(err)
	}
	lg.Info("hidden")
	lg.Warn("shown", "k", "v")
	out := buf.String()
	if strings.Contains(out, "hidden") || !strings.Contains(out, "shown") || !strings.Contains(out, "k=v") {
		t.Errorf("text output: %q", out)
	}
}

func TestNewLoggerErrors(t *testing.T) {
	if _, err := NewLogger(&bytes.Buffer{}, "loud", "text"); err == nil {
		t.Error("bad level accepted")
	}
	if _, err := NewLogger(&bytes.Buffer{}, "info", "xml"); err == nil {
		t.Error("bad format accepted")
	}
}

func TestParseLogLevel(t *testing.T) {
	for in, want := range map[string]slog.Level{
		"debug": slog.LevelDebug, "info": slog.LevelInfo, "": slog.LevelInfo,
		"warn": slog.LevelWarn, "warning": slog.LevelWarn, "ERROR": slog.LevelError,
	} {
		got, err := ParseLogLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLogLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
}

func TestNopLogger(t *testing.T) {
	lg := NopLogger()
	// Must be callable at every level without output or panic, and disabled
	// so call sites pay only the level check.
	lg.Error("nothing")
	if lg.Enabled(nil, slog.LevelError) {
		t.Error("nop logger claims to be enabled at error level")
	}
}
