package obs

import (
	"math"
	"testing"
)

func TestHistogramQuantile(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat", []int64{10, 100, 1000})
	// 50 observations in (0,10], 40 in (10,100], 10 in (100,1000].
	for i := 0; i < 50; i++ {
		h.Observe(5)
	}
	for i := 0; i < 40; i++ {
		h.Observe(50)
	}
	for i := 0; i < 10; i++ {
		h.Observe(500)
	}
	s := reg.Snapshot().Histograms["lat"]

	// p50 lands exactly on the edge of the first bucket.
	if q := s.Quantile(0.5); math.Abs(q-10) > 1e-9 {
		t.Errorf("p50 = %v, want 10", q)
	}
	// p90 at the edge of the second.
	if q := s.Quantile(0.9); math.Abs(q-100) > 1e-9 {
		t.Errorf("p90 = %v, want 100", q)
	}
	// p95 interpolates halfway through the third bucket.
	if q := s.Quantile(0.95); math.Abs(q-550) > 1e-9 {
		t.Errorf("p95 = %v, want 550", q)
	}
	// p0 and p100 clamp sanely.
	if q := s.Quantile(0); q < 0 || q > 10 {
		t.Errorf("p0 = %v, want within first bucket", q)
	}
	if q := s.Quantile(1); math.Abs(q-1000) > 1e-9 {
		t.Errorf("p100 = %v, want 1000", q)
	}
}

func TestHistogramQuantileInfBucket(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat", []int64{10})
	h.Observe(5)
	h.Observe(1e6) // +Inf bucket
	s := reg.Snapshot().Histograms["lat"]
	// The +Inf bucket cannot be interpolated: clamp to the highest bound.
	if q := s.Quantile(0.99); math.Abs(q-10) > 1e-9 {
		t.Errorf("p99 = %v, want clamp to 10", q)
	}
}

func TestHistogramQuantileEmpty(t *testing.T) {
	var s HistogramSnapshot
	if q := s.Quantile(0.5); q != 0 {
		t.Errorf("empty histogram p50 = %v, want 0", q)
	}
}
