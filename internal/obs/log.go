// Structured leveled logging: a thin construction layer over log/slog that
// gives every binary in the module the same two flags (-log-level,
// -log-format) and every component the same attribute vocabulary. The
// convention is one logger per process, specialized per component with
//
//	logger.With("component", "server")
//
// and correlated with the request-trace surface (requests.go) by always
// attaching "trace_id" to request-scoped lines — `grep <trace_id>` over a
// JSON log then reconstructs one request's story across components.
package obs

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// ParseLogLevel maps a -log-level flag value to a slog.Level.
func ParseLogLevel(s string) (slog.Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return slog.LevelDebug, nil
	case "info", "":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("obs: unknown log level %q (want debug, info, warn or error)", s)
}

// NewLogger builds the process logger writing to w. level is debug|info|
// warn|error (empty selects info); format is text|json (empty selects text).
// JSON output is one object per line — machine-ingestable, greppable by
// trace ID.
func NewLogger(w io.Writer, level, format string) (*slog.Logger, error) {
	lv, err := ParseLogLevel(level)
	if err != nil {
		return nil, err
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch strings.ToLower(format) {
	case "text", "":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	}
	return nil, fmt.Errorf("obs: unknown log format %q (want text or json)", format)
}

// nopLevel sits above every real level, so the nop logger's handler refuses
// all records before formatting anything.
const nopLevel = slog.Level(127)

// NopLogger returns a logger that discards everything — the default for
// library layers (server, journal) whose caller did not wire logging up.
// Enabled() is false at every level, so call sites pay one level check.
func NopLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{Level: nopLevel}))
}
