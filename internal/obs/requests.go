// Request-scoped tracing: every request gets a ReqTrace that accumulates
// per-stage timings (admission, journal group-commit, shard enqueue, session
// emit, ...) and integer attributes; completed traces land in a fixed-size
// ring buffer plus a bounded slowest-first list, served over HTTP as
// GET /debug/requests — the x/net/trace idea without the dependency.
//
// The design is lock-cheap by construction: a trace is touched by its one
// request goroutine (stages, attrs) under a mutex nobody contends on, plus
// an atomic pending counter that lets asynchronous completions (a shard
// drain applying the request's last entry) stamp the final stage without
// holding any server-wide lock. The RequestLog itself takes one short mutex
// per completed request — ring insert and slowest update — never per entry.
//
// Everything is nil-safe: a nil *RequestLog hands out nil traces whose
// methods all no-op, preserving the obs package's zero-overhead contract
// when tracing is disabled.
package obs

import (
	"crypto/rand"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// TraceStage is one timed stage of a request, in the order recorded.
type TraceStage struct {
	Name       string `json:"name"`
	DurationNS int64  `json:"duration_ns"`
}

// ReqTrace is one request's trace. Create through RequestLog.Start (or
// StartWithID to honor a caller-supplied ID), record stages and attributes
// while handling, Finish when the response is written, and use the pending
// counter to stamp a final stage when asynchronous work completes.
type ReqTrace struct {
	id    string
	start time.Time
	owner *RequestLog

	// pending counts outstanding asynchronous completions (queued entries
	// not yet applied, plus one reference held by the handler itself); the
	// decrement that reaches zero stamps the closing stage.
	pending atomic.Int64

	mu      sync.Mutex
	stages  []TraceStage
	attrs   map[string]int64
	status  int
	outcome string
	syncNS  int64 // request duration at Finish
	totalNS int64 // duration until the last pending completion
	done    bool
}

// traceBase seeds TraceID with process-random bits so two daemons never
// collide; the multiplied counter (a bijection on uint64) keeps every ID in
// one process distinct.
var (
	traceBase = func() uint64 {
		var b [8]byte
		if _, err := rand.Read(b[:]); err != nil {
			return uint64(time.Now().UnixNano())
		}
		return binary.LittleEndian.Uint64(b[:])
	}()
	traceSeq atomic.Uint64
)

// TraceID returns a fresh 16-hex-digit request identifier, unique within the
// process and unlikely to collide across processes.
func TraceID() string {
	return fmt.Sprintf("%016x", traceBase^(traceSeq.Add(1)*0x9e3779b97f4a7c15))
}

// ID returns the trace identifier ("" on a nil receiver).
func (t *ReqTrace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Began returns the trace's start time (zero on a nil receiver).
func (t *ReqTrace) Began() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.start
}

// Stage appends one named stage duration. No-op on a nil receiver.
func (t *ReqTrace) Stage(name string, d time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.stages = append(t.stages, TraceStage{Name: name, DurationNS: int64(d)})
	t.mu.Unlock()
}

// SetInt stores an integer attribute (accepted counts, byte sizes). No-op on
// a nil receiver.
func (t *ReqTrace) SetInt(key string, v int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.attrs == nil {
		t.attrs = map[string]int64{}
	}
	t.attrs[key] = v
	t.mu.Unlock()
}

// AddPending registers n future asynchronous completions (negative undoes a
// registration that never handed the work off). No-op on a nil receiver.
func (t *ReqTrace) AddPending(n int64) {
	if t == nil {
		return
	}
	t.pending.Add(n)
}

// DonePending marks one asynchronous completion. The call that drops the
// counter to zero stamps stage (duration = time since the trace started) and
// freezes the trace's total duration. No-op on a nil receiver.
func (t *ReqTrace) DonePending(stage string) {
	if t == nil {
		return
	}
	if t.pending.Add(-1) != 0 {
		return
	}
	d := time.Since(t.start)
	t.mu.Lock()
	t.stages = append(t.stages, TraceStage{Name: stage, DurationNS: int64(d)})
	t.totalNS = int64(d)
	t.mu.Unlock()
}

// Finish freezes the synchronous (request) duration, records the response
// status and outcome, and publishes the trace into its RequestLog's ring and
// slowest views. Idempotent; no-op on a nil receiver. Asynchronous stages
// may still be stamped after Finish — the views render the live pointer.
func (t *ReqTrace) Finish(status int, outcome string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.done {
		t.mu.Unlock()
		return
	}
	t.done = true
	t.status = status
	t.outcome = outcome
	t.syncNS = int64(time.Since(t.start))
	if t.totalNS < t.syncNS {
		t.totalNS = t.syncNS
	}
	syncNS := t.syncNS
	t.mu.Unlock()
	if t.owner != nil {
		t.owner.record(t, syncNS)
	}
}

// SyncDuration returns the request duration frozen by Finish, or the running
// duration while the request is still active (0 on a nil receiver).
func (t *ReqTrace) SyncDuration() time.Duration {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.done {
		return time.Duration(t.syncNS)
	}
	return time.Since(t.start)
}

// ReqTraceSnapshot is the immutable JSON view of one trace.
type ReqTraceSnapshot struct {
	ID    string    `json:"id"`
	Start time.Time `json:"start"`
	// DurationNS is the synchronous request duration (to response written).
	DurationNS int64 `json:"duration_ns"`
	// TotalNS extends DurationNS to the last asynchronous completion — for
	// an ingest request, until its last entry was applied and emitted.
	TotalNS int64            `json:"total_ns"`
	Status  int              `json:"status"`
	Outcome string           `json:"outcome,omitempty"`
	Active  bool             `json:"active,omitempty"`
	Attrs   map[string]int64 `json:"attrs,omitempty"`
	Stages  []TraceStage     `json:"stages,omitempty"`
}

// Snapshot copies the trace. A nil trace snapshots to the zero value.
func (t *ReqTrace) Snapshot() ReqTraceSnapshot {
	if t == nil {
		return ReqTraceSnapshot{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	s := ReqTraceSnapshot{
		ID:         t.id,
		Start:      t.start,
		DurationNS: t.syncNS,
		TotalNS:    t.totalNS,
		Status:     t.status,
		Outcome:    t.outcome,
		Active:     !t.done,
	}
	if s.Active {
		s.DurationNS = int64(time.Since(t.start))
	}
	if len(t.attrs) > 0 {
		s.Attrs = make(map[string]int64, len(t.attrs))
		for k, v := range t.attrs {
			s.Attrs[k] = v
		}
	}
	s.Stages = append([]TraceStage(nil), t.stages...)
	return s
}

// RequestLog keeps the most recent completed traces in a ring buffer and the
// slowest completed traces in a bounded list. The zero value is not usable —
// NewRequestLog — but a nil *RequestLog is the disabled fast path.
type RequestLog struct {
	mu      sync.Mutex
	ring    []*ReqTrace // newest at (next-1+len)%len once full
	next    int
	filled  bool
	slow    []*ReqTrace // sorted by sync duration, slowest first
	slowCap int
}

// NewRequestLog returns a request log keeping the last recent completed
// traces (0 selects 256) and the slowest slowest (0 selects 32).
func NewRequestLog(recent, slowest int) *RequestLog {
	if recent <= 0 {
		recent = 256
	}
	if slowest <= 0 {
		slowest = 32
	}
	return &RequestLog{ring: make([]*ReqTrace, recent), slowCap: slowest}
}

// Start creates a trace with a fresh ID. A nil log returns a nil trace.
func (l *RequestLog) Start() *ReqTrace { return l.StartWithID(TraceID()) }

// StartWithID creates a trace honoring a caller-supplied identifier (an
// upstream X-Trace-Id). Empty or oversized IDs fall back to a fresh one. A
// nil log returns a nil trace.
func (l *RequestLog) StartWithID(id string) *ReqTrace {
	if l == nil {
		return nil
	}
	if id == "" || len(id) > 64 {
		id = TraceID()
	}
	return &ReqTrace{id: id, start: time.Now(), owner: l}
}

// record publishes a finished trace: one ring slot write plus an insertion
// into the slowest list when it qualifies.
func (l *RequestLog) record(t *ReqTrace, syncNS int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.ring[l.next] = t
	l.next++
	if l.next == len(l.ring) {
		l.next = 0
		l.filled = true
	}
	if len(l.slow) < l.slowCap || syncNS > l.slow[len(l.slow)-1].slowKey() {
		i := sort.Search(len(l.slow), func(i int) bool { return l.slow[i].slowKey() < syncNS })
		l.slow = append(l.slow, nil)
		copy(l.slow[i+1:], l.slow[i:])
		l.slow[i] = t
		if len(l.slow) > l.slowCap {
			l.slow = l.slow[:l.slowCap]
		}
	}
}

// slowKey reads the frozen sync duration for slowest-list ordering.
func (t *ReqTrace) slowKey() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.syncNS
}

// Recent returns up to n completed traces, newest first (nil on a nil log).
func (l *RequestLog) Recent(n int) []ReqTraceSnapshot {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	var ts []*ReqTrace
	size := l.next
	if l.filled {
		size = len(l.ring)
	}
	for i := 0; i < size && i < n; i++ {
		ts = append(ts, l.ring[(l.next-1-i+len(l.ring))%len(l.ring)])
	}
	l.mu.Unlock()
	out := make([]ReqTraceSnapshot, len(ts))
	for i, t := range ts {
		out[i] = t.Snapshot()
	}
	return out
}

// Slowest returns up to n completed traces, slowest first (nil on a nil log).
func (l *RequestLog) Slowest(n int) []ReqTraceSnapshot {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	ts := make([]*ReqTrace, 0, n)
	for i := 0; i < len(l.slow) && i < n; i++ {
		ts = append(ts, l.slow[i])
	}
	l.mu.Unlock()
	out := make([]ReqTraceSnapshot, len(ts))
	for i, t := range ts {
		out[i] = t.Snapshot()
	}
	return out
}

// requestsPayload is the GET /debug/requests document.
type requestsPayload struct {
	View     string             `json:"view"`
	Requests []ReqTraceSnapshot `json:"requests"`
}

// ServeHTTP renders the trace views as JSON:
//
//	GET /debug/requests?n=32            the n most recent completed traces
//	GET /debug/requests?view=slow&n=32  the n slowest completed traces
func (l *RequestLog) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	n := 32
	if v := r.URL.Query().Get("n"); v != "" {
		if parsed, err := strconv.Atoi(v); err == nil && parsed > 0 {
			n = parsed
		}
	}
	view := r.URL.Query().Get("view")
	var p requestsPayload
	switch view {
	case "slow", "slowest":
		p = requestsPayload{View: "slowest", Requests: l.Slowest(n)}
	default:
		p = requestsPayload{View: "recent", Requests: l.Recent(n)}
	}
	if p.Requests == nil {
		p.Requests = []ReqTraceSnapshot{}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(p)
}
