// Package obs is the pipeline's observability substrate: a dependency-free
// metrics registry (atomic counters, gauges with high-water marks, fixed-
// bucket histograms), lightweight span tracing for the stage-timing tree,
// a progress reporter, and an opt-in debug HTTP endpoint exposing pprof,
// expvar and a Prometheus-text rendering of the registry.
//
// Everything is built for a nil fast path: every metric method is a no-op on
// a nil receiver, and a nil *Registry hands out nil metrics, so
// uninstrumented runs pay one nil check per call site and nothing else. That
// is the contract the pipeline's hot paths (statement parsing, worker
// chunks, session eviction) rely on — see BenchmarkObsOverhead.
package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one. No-op on a nil receiver.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n. No-op on a nil receiver.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value that additionally tracks its
// high-water mark — the memory-bound proof for values like "open sessions".
type Gauge struct {
	v   atomic.Int64
	max atomic.Int64
}

// Set stores v and raises the high-water mark if exceeded. No-op on nil.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
	g.raise(v)
}

// Add adds delta and raises the high-water mark if exceeded. No-op on nil.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.raise(g.v.Add(delta))
}

func (g *Gauge) raise(v int64) {
	for {
		cur := g.max.Load()
		if v <= cur || g.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current value (0 on a nil receiver).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Max returns the high-water mark (0 on a nil receiver).
func (g *Gauge) Max() int64 {
	if g == nil {
		return 0
	}
	return g.max.Load()
}

// Histogram is a fixed-bucket histogram: counts per upper bound plus an
// implicit +Inf bucket, with a running sum and count. Buckets are chosen at
// registration and never change, so observation is lock-free.
type Histogram struct {
	bounds []int64        // ascending upper bounds (inclusive)
	counts []atomic.Int64 // len(bounds)+1; last is +Inf
	sum    atomic.Int64
	count  atomic.Int64
}

// Observe records one value. No-op on a nil receiver.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// Count returns the number of observations (0 on a nil receiver).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations (0 on a nil receiver).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// DurationBucketsNS are the default histogram bounds for durations, in
// nanoseconds: 1µs to 1min, one decade apart plus a 10s step.
var DurationBucketsNS = []int64{
	1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10, 6e10,
}

// SizeBuckets are the default histogram bounds for cardinalities (session
// lengths, chunk sizes): decades from 1 to 10M.
var SizeBuckets = []int64{1, 10, 100, 1e3, 1e4, 1e5, 1e6, 1e7}

// Text is a mutex-guarded string metric (e.g. the current pipeline stage),
// exposed on /metrics as an info-style gauge with a value label.
type Text struct {
	mu sync.Mutex
	s  string
}

// Set stores s. No-op on a nil receiver.
func (t *Text) Set(s string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.s = s
	t.mu.Unlock()
}

// Get returns the current string ("" on a nil receiver).
func (t *Text) Get() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.s
}

// Registry is a named collection of metrics. Metric lookup is get-or-create
// and safe for concurrent use; each kind has its own namespace. The zero
// value is not usable — NewRegistry — but a nil *Registry is: it hands out
// nil metrics whose methods are all no-ops, which is the uninstrumented
// fast path.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	texts    map[string]*Text

	// rc is the registry's singleton runtime collector (see Runtime): two
	// scrape surfaces sharing a registry must share the GC-delta state or
	// go_gc_runs_total counts every cycle once per surface.
	rcOnce sync.Once
	rc     *RuntimeCollector
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
		texts:    map[string]*Text{},
	}
}

// Counter returns the named counter, creating it on first use. A nil
// registry returns a nil (no-op) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. A nil registry
// returns a nil (no-op) gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bounds
// on first use (later calls reuse the first bounds). A nil registry returns
// a nil (no-op) histogram.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
		r.hists[name] = h
	}
	return h
}

// Text returns the named text metric, creating it on first use. A nil
// registry returns a nil (no-op) text.
func (r *Registry) Text(name string) *Text {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.texts[name]
	if !ok {
		t = &Text{}
		r.texts[name] = t
	}
	return t
}

// GaugeSnapshot is one gauge's value and high-water mark.
type GaugeSnapshot struct {
	Value int64 `json:"value"`
	Max   int64 `json:"max"`
}

// HistogramSnapshot is one histogram's buckets and aggregates.
type HistogramSnapshot struct {
	Bounds []int64 `json:"bounds"`
	Counts []int64 `json:"counts"` // len(Bounds)+1; last is +Inf
	Sum    int64   `json:"sum"`
	Count  int64   `json:"count"`
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) of the recorded values with
// linear interpolation inside the containing bucket — the same estimate
// Prometheus's histogram_quantile makes. Values in the +Inf bucket clamp to
// the highest finite bound. Returns 0 on an empty histogram.
func (h HistogramSnapshot) Quantile(q float64) float64 {
	if h.Count <= 0 || len(h.Bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.Count)
	var cum float64
	for i, bound := range h.Bounds {
		in := float64(h.Counts[i])
		if cum+in >= rank {
			lo := float64(0)
			if i > 0 {
				lo = float64(h.Bounds[i-1])
			}
			if in == 0 {
				return lo // rank fell exactly on the edge of an empty bucket
			}
			return lo + (float64(bound)-lo)*(rank-cum)/in
		}
		cum += in
	}
	return float64(h.Bounds[len(h.Bounds)-1])
}

// Snapshot is a point-in-time copy of every metric. Individual values are
// read atomically; the snapshot as a whole is not transactional (concurrent
// writers may land between reads), which is the usual scrape semantics.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]GaugeSnapshot     `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
	Texts      map[string]string            `json:"texts,omitempty"`
}

// Snapshot copies every metric's current value. A nil registry returns the
// zero snapshot.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.counters) > 0 {
		s.Counters = make(map[string]int64, len(r.counters))
		for name, c := range r.counters {
			s.Counters[name] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]GaugeSnapshot, len(r.gauges))
		for name, g := range r.gauges {
			s.Gauges[name] = GaugeSnapshot{Value: g.Value(), Max: g.Max()}
		}
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.hists))
		for name, h := range r.hists {
			hs := HistogramSnapshot{
				Bounds: append([]int64(nil), h.bounds...),
				Counts: make([]int64, len(h.counts)),
				Sum:    h.Sum(),
				Count:  h.Count(),
			}
			for i := range h.counts {
				hs.Counts[i] = h.counts[i].Load()
			}
			s.Histograms[name] = hs
		}
	}
	if len(r.texts) > 0 {
		s.Texts = make(map[string]string, len(r.texts))
		for name, t := range r.texts {
			s.Texts[name] = t.Get()
		}
	}
	return s
}

// promPrefix namespaces every exposed metric.
const promPrefix = "sqlclean_"

// WritePrometheus renders the registry in the Prometheus text exposition
// format, metrics sorted by name. A nil registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	s := r.Snapshot()
	var b strings.Builder
	for _, name := range sortedKeys(s.Counters) {
		fmt.Fprintf(&b, "# TYPE %s%s counter\n%s%s %d\n", promPrefix, name, promPrefix, name, s.Counters[name])
	}
	for _, name := range sortedKeys(s.Gauges) {
		g := s.Gauges[name]
		fmt.Fprintf(&b, "# TYPE %s%s gauge\n%s%s %d\n", promPrefix, name, promPrefix, name, g.Value)
		fmt.Fprintf(&b, "# TYPE %s%s_max gauge\n%s%s_max %d\n", promPrefix, name, promPrefix, name, g.Max)
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		fmt.Fprintf(&b, "# TYPE %s%s histogram\n", promPrefix, name)
		cum := int64(0)
		for i, bound := range h.Bounds {
			cum += h.Counts[i]
			fmt.Fprintf(&b, "%s%s_bucket{le=\"%d\"} %d\n", promPrefix, name, bound, cum)
		}
		fmt.Fprintf(&b, "%s%s_bucket{le=\"+Inf\"} %d\n", promPrefix, name, h.Count)
		fmt.Fprintf(&b, "%s%s_sum %d\n", promPrefix, name, h.Sum)
		fmt.Fprintf(&b, "%s%s_count %d\n", promPrefix, name, h.Count)
	}
	for _, name := range sortedKeys(s.Texts) {
		fmt.Fprintf(&b, "# TYPE %s%s_info gauge\n%s%s_info{value=%q} 1\n", promPrefix, name, promPrefix, name, s.Texts[name])
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
