package obs

import (
	"strings"
	"sync"
	"testing"
)

// TestRegistryConcurrentHammer drives one registry from 16 goroutines (run
// with -race, mirroring internal/parsedlog's concurrent hammer): every
// goroutine races on metric creation and updates while snapshots are taken
// concurrently. After the join the final snapshot must be exactly
// consistent with the work done.
func TestRegistryConcurrentHammer(t *testing.T) {
	const goroutines = 16
	const perG = 2000

	reg := NewRegistry()
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				// Get-or-create races deliberately: every goroutine looks the
				// metrics up by name every iteration.
				reg.Counter("hammer_total").Inc()
				reg.Gauge("hammer_level").Set(int64(i))
				reg.Histogram("hammer_sizes", SizeBuckets).Observe(int64(i % 1000))
				reg.Text("hammer_stage").Set("stage")
				if i%100 == 0 {
					// Concurrent scrapes must never see torn metric maps.
					_ = reg.Snapshot()
					_ = reg.WritePrometheus(&strings.Builder{})
				}
			}
		}(g)
	}
	wg.Wait()

	s := reg.Snapshot()
	if got := s.Counters["hammer_total"]; got != goroutines*perG {
		t.Errorf("counter = %d, want %d", got, goroutines*perG)
	}
	if got := s.Gauges["hammer_level"].Max; got != perG-1 {
		t.Errorf("gauge max = %d, want %d", got, perG-1)
	}
	h := s.Histograms["hammer_sizes"]
	if h.Count != goroutines*perG {
		t.Errorf("histogram count = %d, want %d", h.Count, goroutines*perG)
	}
	var bucketSum int64
	for _, c := range h.Counts {
		bucketSum += c
	}
	if bucketSum != h.Count {
		t.Errorf("bucket sum %d != count %d", bucketSum, h.Count)
	}
	if s.Texts["hammer_stage"] != "stage" {
		t.Errorf("text = %q", s.Texts["hammer_stage"])
	}
}

// TestNilFastPath pins the no-sink contract: every metric operation on a
// nil registry and nil metrics must be a safe no-op.
func TestNilFastPath(t *testing.T) {
	var reg *Registry
	c := reg.Counter("x")
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Error("nil counter accumulated")
	}
	g := reg.Gauge("x")
	g.Set(3)
	g.Add(2)
	if g.Value() != 0 || g.Max() != 0 {
		t.Error("nil gauge accumulated")
	}
	h := reg.Histogram("x", SizeBuckets)
	h.Observe(1)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil histogram accumulated")
	}
	tx := reg.Text("x")
	tx.Set("y")
	if tx.Get() != "" {
		t.Error("nil text accumulated")
	}
	if s := reg.Snapshot(); s.Counters != nil || s.Gauges != nil {
		t.Error("nil registry snapshot not empty")
	}
	if err := reg.WritePrometheus(&strings.Builder{}); err != nil {
		t.Errorf("nil registry prometheus: %v", err)
	}
}

func TestGaugeHighWaterMark(t *testing.T) {
	g := NewRegistry().Gauge("g")
	g.Set(5)
	g.Set(2)
	g.Add(1)
	if g.Value() != 3 {
		t.Errorf("value = %d, want 3", g.Value())
	}
	if g.Max() != 5 {
		t.Errorf("max = %d, want 5", g.Max())
	}
	g.Add(10)
	if g.Max() != 13 {
		t.Errorf("max = %d, want 13", g.Max())
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewRegistry().Histogram("h", []int64{10, 100})
	for _, v := range []int64{1, 10, 11, 100, 101, 5000} {
		h.Observe(v)
	}
	s := histSnapshot(h)
	want := []int64{2, 2, 2} // ≤10: {1,10}; ≤100: {11,100}; +Inf: {101,5000}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d", i, s.Counts[i], w)
		}
	}
	if s.Sum != 1+10+11+100+101+5000 {
		t.Errorf("sum = %d", s.Sum)
	}
}

// histSnapshot snapshots a single histogram for tests.
func histSnapshot(h *Histogram) HistogramSnapshot {
	hs := HistogramSnapshot{
		Bounds: append([]int64(nil), h.bounds...),
		Counts: make([]int64, len(h.counts)),
		Sum:    h.Sum(),
		Count:  h.Count(),
	}
	for i := range h.counts {
		hs.Counts[i] = h.counts[i].Load()
	}
	return hs
}

func TestWritePrometheusFormat(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("runs_total").Add(3)
	reg.Gauge("open").Set(7)
	reg.Histogram("lat_ns", []int64{100}).Observe(50)
	reg.Text("stage").Set("parse")

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE sqlclean_runs_total counter",
		"sqlclean_runs_total 3",
		"sqlclean_open 7",
		"sqlclean_open_max 7",
		`sqlclean_lat_ns_bucket{le="100"} 1`,
		`sqlclean_lat_ns_bucket{le="+Inf"} 1`,
		"sqlclean_lat_ns_sum 50",
		"sqlclean_lat_ns_count 1",
		`sqlclean_stage_info{value="parse"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
}
