package obs

import (
	"encoding/json"
	"sync"
	"testing"
)

func TestSpanTree(t *testing.T) {
	root := StartSpan("pipeline")
	parse := root.StartChild("parse")
	parse.SetInt("in", 100)
	parse.AddInt("selects", 40)
	parse.AddInt("selects", 2)
	parse.End()
	detect := root.StartChild("detect")
	detect.End()
	root.End()

	st := root.Snapshot()
	if st.Name != "pipeline" || len(st.Children) != 2 {
		t.Fatalf("tree shape: %+v", st)
	}
	p := st.Find("parse")
	if p == nil {
		t.Fatal("parse stage missing")
	}
	if p.Attrs["in"] != 100 || p.Attrs["selects"] != 42 {
		t.Errorf("parse attrs: %v", p.Attrs)
	}
	if st.DurationNS <= 0 || p.DurationNS <= 0 {
		t.Errorf("durations not recorded: root=%d parse=%d", st.DurationNS, p.DurationNS)
	}
	if st.Find("missing") != nil {
		t.Error("Find invented a stage")
	}

	// The snapshot must be JSON-serializable (it rides in -json output).
	if _, err := json.Marshal(st); err != nil {
		t.Fatalf("marshal: %v", err)
	}
}

// TestSpanConcurrentChildren pins the contract the worker pool relies on:
// concurrent StartChild/AddInt on one parent span (run with -race).
func TestSpanConcurrentChildren(t *testing.T) {
	root := StartSpan("stage")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ws := root.StartChild("worker")
			for i := 0; i < 100; i++ {
				ws.AddInt("items", 1)
			}
			ws.End()
		}()
	}
	wg.Wait()
	root.End()
	st := root.Snapshot()
	if len(st.Children) != 8 {
		t.Fatalf("children = %d, want 8", len(st.Children))
	}
	for _, c := range st.Children {
		if c.Attrs["items"] != 100 {
			t.Errorf("worker items = %d, want 100", c.Attrs["items"])
		}
	}
}

func TestNilSpanNoOps(t *testing.T) {
	var s *Span
	c := s.StartChild("x")
	if c != nil {
		t.Fatal("nil span produced a child")
	}
	c.SetInt("k", 1)
	c.AddInt("k", 1)
	c.End()
	if c.Duration() != 0 || c.Name() != "" {
		t.Error("nil span accumulated state")
	}
	if st := c.Snapshot(); st.Name != "" || st.Children != nil {
		t.Error("nil span snapshot not zero")
	}
}
