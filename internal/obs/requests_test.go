package obs

import (
	"encoding/json"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

func TestTraceIDUnique(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 1000; i++ {
		id := TraceID()
		if len(id) != 16 {
			t.Fatalf("TraceID %q: want 16 hex chars", id)
		}
		if seen[id] {
			t.Fatalf("duplicate trace ID %q", id)
		}
		seen[id] = true
	}
}

func TestReqTraceLifecycle(t *testing.T) {
	l := NewRequestLog(8, 4)
	tr := l.Start()
	if tr.ID() == "" {
		t.Fatal("empty trace ID")
	}
	tr.Stage("admission", time.Microsecond)
	tr.Stage("enqueue", 2*time.Microsecond)
	tr.SetInt("accepted", 7)

	// Two queued entries plus the handler's own reference.
	tr.AddPending(1) // handler
	tr.AddPending(2) // entries
	tr.DonePending("emit")
	tr.Finish(200, "ok")
	s := tr.Snapshot()
	if s.Active {
		t.Error("trace still active after Finish")
	}
	if s.TotalNS < s.DurationNS {
		t.Errorf("total %d < sync %d", s.TotalNS, s.DurationNS)
	}
	if hasStage(s, "emit") {
		t.Error("emit stamped before the last pending completion")
	}
	tr.DonePending("emit")
	tr.DonePending("emit")
	s = tr.Snapshot()
	if !hasStage(s, "emit") {
		t.Errorf("emit stage missing after final completion: %+v", s.Stages)
	}
	if s.Attrs["accepted"] != 7 {
		t.Errorf("attrs: %+v", s.Attrs)
	}

	rec := l.Recent(10)
	if len(rec) != 1 || rec[0].ID != tr.ID() {
		t.Fatalf("recent: %+v", rec)
	}
	// The ring holds the live pointer: the emit stage stamped after Finish
	// must be visible in the view.
	if !hasStage(rec[0], "emit") {
		t.Errorf("recent view missing post-Finish emit stage: %+v", rec[0].Stages)
	}
}

func hasStage(s ReqTraceSnapshot, name string) bool {
	for _, st := range s.Stages {
		if st.Name == name {
			return true
		}
	}
	return false
}

func TestRequestLogRingEviction(t *testing.T) {
	l := NewRequestLog(4, 2)
	var ids []string
	for i := 0; i < 6; i++ {
		tr := l.Start()
		ids = append(ids, tr.ID())
		tr.Finish(200, "ok")
	}
	rec := l.Recent(10)
	if len(rec) != 4 {
		t.Fatalf("recent kept %d, want ring size 4", len(rec))
	}
	// Newest first: 5,4,3,2.
	for i, want := range []string{ids[5], ids[4], ids[3], ids[2]} {
		if rec[i].ID != want {
			t.Errorf("recent[%d] = %s, want %s", i, rec[i].ID, want)
		}
	}
}

func TestRequestLogSlowest(t *testing.T) {
	l := NewRequestLog(16, 3)
	durations := []time.Duration{3 * time.Millisecond, time.Millisecond, 5 * time.Millisecond, 2 * time.Millisecond}
	var ids []string
	for _, d := range durations {
		tr := l.StartWithID("")
		ids = append(ids, tr.ID())
		tr.mu.Lock()
		tr.start = time.Now().Add(-d) // synthesize a known duration
		tr.mu.Unlock()
		tr.Finish(200, "ok")
	}
	slow := l.Slowest(10)
	if len(slow) != 3 {
		t.Fatalf("slowest kept %d, want 3", len(slow))
	}
	// 5ms, 3ms, 2ms — the 1ms one evicted.
	if slow[0].ID != ids[2] || slow[1].ID != ids[0] || slow[2].ID != ids[3] {
		t.Errorf("slowest order: %v %v %v (ids %v)", slow[0].ID, slow[1].ID, slow[2].ID, ids)
	}
	for i := 1; i < len(slow); i++ {
		if slow[i].DurationNS > slow[i-1].DurationNS {
			t.Errorf("slowest not ordered: %d before %d", slow[i-1].DurationNS, slow[i].DurationNS)
		}
	}
}

func TestRequestLogHTTP(t *testing.T) {
	l := NewRequestLog(8, 4)
	tr := l.StartWithID("feedface00000001")
	tr.Stage("journal", time.Millisecond)
	tr.Finish(429, "queue full")

	for _, view := range []string{"", "slow"} {
		req := httptest.NewRequest("GET", "/debug/requests?n=5&view="+view, nil)
		rw := httptest.NewRecorder()
		l.ServeHTTP(rw, req)
		var p struct {
			View     string             `json:"view"`
			Requests []ReqTraceSnapshot `json:"requests"`
		}
		if err := json.Unmarshal(rw.Body.Bytes(), &p); err != nil {
			t.Fatalf("view %q: %v", view, err)
		}
		if len(p.Requests) != 1 || p.Requests[0].ID != "feedface00000001" || p.Requests[0].Status != 429 {
			t.Errorf("view %q: %+v", view, p)
		}
	}
}

func TestRequestLogNilSafe(t *testing.T) {
	var l *RequestLog
	tr := l.Start()
	if tr != nil {
		t.Fatal("nil log returned a trace")
	}
	// All trace methods must be no-ops on nil.
	tr.Stage("x", time.Second)
	tr.SetInt("k", 1)
	tr.AddPending(1)
	tr.DonePending("emit")
	tr.Finish(200, "ok")
	_ = tr.Snapshot()
	_ = tr.ID()
	_ = tr.SyncDuration()
	if l.Recent(5) != nil || l.Slowest(5) != nil {
		t.Error("nil log returned snapshots")
	}
}

// TestRequestLogConcurrent hammers record/stage/view paths; run with -race.
func TestRequestLogConcurrent(t *testing.T) {
	l := NewRequestLog(32, 8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tr := l.Start()
				tr.AddPending(2)
				tr.Stage("enqueue", time.Microsecond)
				go tr.DonePending("emit")
				tr.Finish(200, "ok")
				tr.DonePending("emit")
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 500; i++ {
			l.Recent(16)
			l.Slowest(16)
		}
	}()
	wg.Wait()
	<-done
	if len(l.Recent(64)) != 32 {
		t.Errorf("ring should be full at 32, got %d", len(l.Recent(64)))
	}
}
