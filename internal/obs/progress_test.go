package obs

import (
	"bytes"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// syncBuffer guards a bytes.Buffer: Progress emits from its own goroutine.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestProgressReportsStageCountAndETA(t *testing.T) {
	var buf syncBuffer
	var done atomic.Int64
	done.Store(25)
	p := NewProgress(&buf, time.Millisecond, func() ProgressSample {
		return ProgressSample{Stage: "parse", Done: done.Load(), Total: 100}
	})
	p.Start()
	deadline := time.Now().Add(2 * time.Second)
	for !strings.Contains(buf.String(), "parse") {
		if time.Now().After(deadline) {
			t.Fatalf("no progress line after 2s: %q", buf.String())
		}
		time.Sleep(time.Millisecond)
	}
	p.Stop()

	out := buf.String()
	if !strings.Contains(out, "25/100") {
		t.Errorf("missing done/total: %q", out)
	}
	if !strings.Contains(out, "stmts") || !strings.Contains(out, "elapsed") {
		t.Errorf("missing rate/elapsed: %q", out)
	}
	// Done < Total with a positive rate must render an ETA.
	if !strings.Contains(out, "ETA") {
		t.Errorf("missing ETA: %q", out)
	}
	// Stop prints a final newline so the shell prompt is not glued to the bar.
	if !strings.HasSuffix(out, "\n") {
		t.Errorf("missing trailing newline: %q", out)
	}
}

func TestProgressUnknownTotalSuppressesETA(t *testing.T) {
	var buf syncBuffer
	p := NewProgress(&buf, time.Millisecond, func() ProgressSample {
		return ProgressSample{Stage: "stream", Done: 42} // Total 0: streaming input
	})
	p.Start()
	deadline := time.Now().Add(2 * time.Second)
	for !strings.Contains(buf.String(), "stream") {
		if time.Now().After(deadline) {
			t.Fatalf("no progress line after 2s: %q", buf.String())
		}
		time.Sleep(time.Millisecond)
	}
	p.Stop()
	out := buf.String()
	if strings.Contains(out, "ETA") {
		t.Errorf("ETA rendered with unknown total: %q", out)
	}
	if strings.Contains(out, "/0") {
		t.Errorf("zero total rendered: %q", out)
	}
}

func TestProgressStopIdempotentAndFinalLine(t *testing.T) {
	var buf syncBuffer
	p := NewProgress(&buf, time.Hour, func() ProgressSample {
		return ProgressSample{Stage: "final", Done: 7}
	})
	p.Start()
	p.Stop() // before any tick: Stop itself must emit the final line
	p.Stop() // second Stop is a no-op, not a double print or panic
	out := buf.String()
	if got := strings.Count(out, "final"); got != 1 {
		t.Errorf("final line printed %d times, want 1: %q", got, out)
	}
}

func TestProgressDefaultInterval(t *testing.T) {
	p := NewProgress(&bytes.Buffer{}, 0, func() ProgressSample { return ProgressSample{} })
	if p.interval != time.Second {
		t.Errorf("default interval = %v, want 1s", p.interval)
	}
}
