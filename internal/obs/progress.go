package obs

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// ProgressSample is one observation of how far the run has come. Total may
// be 0 when unknown (streaming input), which suppresses the ETA.
type ProgressSample struct {
	Stage string
	Done  int64
	Total int64
}

// Progress periodically renders a one-line status (stage, count, rate, ETA)
// to a writer — the live view of a long run, typically stderr. The sample
// function is called on every tick from the reporter's goroutine, so it
// must be safe to call concurrently with the run (registry metrics are).
type Progress struct {
	w        io.Writer
	interval time.Duration
	sample   func() ProgressSample

	start    time.Time
	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// NewProgress returns an unstarted progress reporter ticking at the given
// interval (0 selects 1 s).
func NewProgress(w io.Writer, interval time.Duration, sample func() ProgressSample) *Progress {
	if interval <= 0 {
		interval = time.Second
	}
	return &Progress{w: w, interval: interval, sample: sample, stop: make(chan struct{})}
}

// Start launches the reporting goroutine.
func (p *Progress) Start() {
	p.start = time.Now()
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		t := time.NewTicker(p.interval)
		defer t.Stop()
		for {
			select {
			case <-p.stop:
				return
			case <-t.C:
				p.emit()
			}
		}
	}()
}

// Stop halts the reporter, prints one final line, and waits for the
// goroutine to exit. Safe to call more than once.
func (p *Progress) Stop() {
	p.stopOnce.Do(func() {
		close(p.stop)
		p.wg.Wait()
		p.emit()
		fmt.Fprintln(p.w)
	})
}

func (p *Progress) emit() {
	s := p.sample()
	elapsed := time.Since(p.start)
	rate := float64(s.Done) / elapsed.Seconds()
	line := fmt.Sprintf("\rprogress: %-10s %d", s.Stage, s.Done)
	if s.Total > 0 {
		line += fmt.Sprintf("/%d", s.Total)
	}
	line += fmt.Sprintf(" stmts (%.0f/s", rate)
	if s.Total > 0 && rate > 0 && s.Done < s.Total {
		eta := time.Duration(float64(s.Total-s.Done)/rate) * time.Second
		line += fmt.Sprintf(", ETA %s", eta.Round(time.Second))
	}
	line += fmt.Sprintf(", elapsed %s)", elapsed.Round(100*time.Millisecond))
	fmt.Fprint(p.w, line)
}
