package obs

import (
	"sync"
	"time"
)

// Span is one node of the stage-timing tree: a named duration with integer
// attributes (cardinalities, counts) and child spans. Spans are cheap — a
// timestamp at start, one at End, and a small struct — so the pipeline
// records them unconditionally; the per-item hot-path metrics are what the
// nil fast path gates.
//
// A nil *Span is a valid no-op: StartChild returns nil, End and the attr
// setters do nothing. That lets the worker-pool layer thread an optional
// span through without branching at call sites.
//
// Concurrency: StartChild, AddInt and SetInt are safe for concurrent use on
// one span (parallel stages add worker children concurrently). Each child
// span must still be Ended by its single owner.
type Span struct {
	name  string
	start time.Time
	done  bool
	dur   time.Duration

	mu       sync.Mutex
	attrs    map[string]int64
	children []*Span
}

// StartSpan starts a root span.
func StartSpan(name string) *Span {
	return &Span{name: name, start: time.Now()}
}

// StartChild starts and attaches a child span. Returns nil on a nil
// receiver.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{name: name, start: time.Now()}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// End freezes the span's duration. Idempotent; no-op on a nil receiver.
func (s *Span) End() {
	if s == nil || s.done {
		return
	}
	s.done = true
	s.dur = time.Since(s.start)
}

// Name returns the span's name ("" on a nil receiver).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Duration returns the frozen duration, or the running duration if the span
// has not Ended yet (0 on a nil receiver).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	if s.done {
		return s.dur
	}
	return time.Since(s.start)
}

// SetInt stores an integer attribute. No-op on a nil receiver.
func (s *Span) SetInt(key string, v int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.attrs == nil {
		s.attrs = map[string]int64{}
	}
	s.attrs[key] = v
	s.mu.Unlock()
}

// AddInt accumulates into an integer attribute. No-op on a nil receiver.
func (s *Span) AddInt(key string, v int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.attrs == nil {
		s.attrs = map[string]int64{}
	}
	s.attrs[key] += v
	s.mu.Unlock()
}

// StageTiming is the immutable, JSON-serializable snapshot of a span tree —
// what core.Result.Report carries and -json emits.
type StageTiming struct {
	Name       string           `json:"name"`
	DurationNS int64            `json:"duration_ns"`
	Attrs      map[string]int64 `json:"attrs,omitempty"`
	Children   []StageTiming    `json:"children,omitempty"`
}

// Snapshot copies the span tree. A nil span snapshots to the zero value.
func (s *Span) Snapshot() StageTiming {
	if s == nil {
		return StageTiming{}
	}
	st := StageTiming{Name: s.name, DurationNS: int64(s.Duration())}
	s.mu.Lock()
	if len(s.attrs) > 0 {
		st.Attrs = make(map[string]int64, len(s.attrs))
		for k, v := range s.attrs {
			st.Attrs[k] = v
		}
	}
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	for _, c := range children {
		st.Children = append(st.Children, c.Snapshot())
	}
	return st
}

// Find returns the first node named name in a pre-order walk of the tree,
// or nil.
func (st *StageTiming) Find(name string) *StageTiming {
	if st == nil {
		return nil
	}
	if st.Name == name {
		return st
	}
	for i := range st.Children {
		if found := st.Children[i].Find(name); found != nil {
			return found
		}
	}
	return nil
}
