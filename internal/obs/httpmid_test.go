package obs

import (
	"net/http"
	"net/http/httptest"
	"testing"
)

func TestInstrumentHandler(t *testing.T) {
	reg := NewRegistry()
	h := InstrumentHandler(reg, "report", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("fail") != "" {
			http.Error(w, "nope", http.StatusTooManyRequests)
			return
		}
		w.Write([]byte("hello")) // implicit 200
	}))

	for _, url := range []string{"/report", "/report", "/report?fail=1"} {
		rw := httptest.NewRecorder()
		h.ServeHTTP(rw, httptest.NewRequest("GET", url, nil))
	}

	s := reg.Snapshot()
	if n := s.Counters["http_report_requests_total"]; n != 3 {
		t.Errorf("requests_total = %d, want 3", n)
	}
	if n := s.Counters["http_report_status_2xx_total"]; n != 2 {
		t.Errorf("status_2xx = %d, want 2", n)
	}
	if n := s.Counters["http_report_status_4xx_total"]; n != 1 {
		t.Errorf("status_4xx = %d, want 1", n)
	}
	if n := s.Counters["http_report_response_bytes_total"]; n < 10 {
		t.Errorf("response_bytes = %d, want ≥ 10 (two hellos + error body)", n)
	}
	lat := s.Histograms["http_report_latency_ns"]
	if lat.Count != 3 {
		t.Errorf("latency observations = %d, want 3", lat.Count)
	}
	if q := lat.Quantile(0.5); q <= 0 {
		t.Errorf("latency p50 = %v, want > 0", q)
	}
}

func TestInstrumentHandlerNilRegistry(t *testing.T) {
	base := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {})
	if got := InstrumentHandler(nil, "x", base); got == nil {
		t.Fatal("nil registry must still return a handler")
	}
}
