package obs

import (
	"runtime"
	"testing"
)

func TestRuntimeCollector(t *testing.T) {
	reg := NewRegistry()
	c := NewRuntimeCollector(reg)
	runtime.GC()
	c.Collect()
	s := reg.Snapshot()
	if g := s.Gauges["go_goroutines"].Value; g < 1 {
		t.Errorf("go_goroutines = %d, want ≥ 1", g)
	}
	if h := s.Gauges["go_heap_inuse_bytes"].Value; h <= 0 {
		t.Errorf("go_heap_inuse_bytes = %d, want > 0", h)
	}
	if s.Counters["go_gc_runs_total"] < 1 {
		t.Errorf("go_gc_runs_total = %d, want ≥ 1 after runtime.GC", s.Counters["go_gc_runs_total"])
	}
	if ph := s.Histograms["go_gc_pause_ns"]; ph.Count < 1 {
		t.Errorf("go_gc_pause_ns observed %d pauses, want ≥ 1", ph.Count)
	}

	// A second collection must only add the GC cycles that actually ran.
	before := reg.Snapshot().Counters["go_gc_runs_total"]
	runtime.GC()
	runtime.GC()
	c.Collect()
	after := reg.Snapshot().Counters["go_gc_runs_total"]
	if after < before+2 {
		t.Errorf("gc runs went %d → %d, want +2 or more", before, after)
	}
}

func TestRuntimeCollectorNil(t *testing.T) {
	var c *RuntimeCollector
	c.Collect() // must not panic
	if NewRuntimeCollector(nil) != nil {
		t.Error("nil registry should produce a nil collector")
	}
}
