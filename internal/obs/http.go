package obs

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// expvarOnce guards the process-wide expvar publication (expvar.Publish
// panics on duplicate names; one debug server per process is the intended
// shape anyway).
var expvarOnce sync.Once

// NewDebugMux returns a mux serving the standard Go debug surface plus the
// registry:
//
//	/metrics        Prometheus text exposition of the registry
//	/debug/pprof/   CPU, heap, goroutine, ... profiles
//	/debug/vars     expvar (with the registry under "sqlclean_metrics")
func NewDebugMux(reg *Registry) *http.ServeMux {
	expvarOnce.Do(func() {
		expvar.Publish("sqlclean_metrics", expvar.Func(func() any { return reg.Snapshot() }))
	})
	// Runtime stats refresh lazily, at scrape time: the registry is passive,
	// and a mux nobody scrapes should cost nothing. The collector is the
	// registry's shared one so other scrape surfaces see the same GC deltas.
	rc := reg.Runtime()
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		rc.Collect()
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve starts the debug server on addr (e.g. ":6060") in a background
// goroutine and returns the bound address (useful with ":0") plus the
// server for shutdown. The server lives until closed or process exit.
func Serve(addr string, reg *Registry) (string, *http.Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: NewDebugMux(reg)}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), srv, nil
}
